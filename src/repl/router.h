#ifndef SCISPARQL_REPL_ROUTER_H_
#define SCISPARQL_REPL_ROUTER_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "client/server.h"
#include "common/status.h"
#include "engine/query_api.h"
#include "repl/wire.h"

namespace scisparql {
namespace repl {

/// Client-side LSN-bounded routing over one primary and N replicas.
///
/// Updates (and CHECKPOINT, and anything not classified as a read) go to
/// the primary; the update ack's commit LSN is remembered as the session's
/// write horizon. Read-class and prepared statements fan out across the
/// replicas round-robin. With read_your_writes on (the default), a read
/// is only served by a replica whose applied LSN has reached the write
/// horizon: the router probes the candidate's LSN, skips stale replicas,
/// briefly waits for them to catch up, and ultimately falls back to the
/// primary — a read after an acked write can never observe pre-update
/// state, no matter which backend answers.
///
/// A replica that fails transport-wise is quarantined and traffic routes
/// around it (RemoteSession's own retry/backoff covers transient blips
/// below that). Quarantine escalates: each consecutive failed redial
/// doubles the hold-off (capped at 8x `health_backoff`), and a successful
/// redial resets it — a replica that dies and rejoins re-enters the
/// rotation at full cadence.
///
/// Failover awareness: the router tracks the highest fencing term it has
/// seen in probes and update acks. When the primary refuses cleanly
/// ("send writes to the primary" from a demoted node, "primary is
/// fenced" during a failover) or fails transport-wise, the router
/// re-probes every endpoint it knows, adopts the highest-term primary it
/// finds, and — only for the clean refusals, which prove the statement
/// never executed — resends the write. A write that failed mid-flight is
/// never resent (it may have committed); the caller gets the error and
/// retries under its own idempotency rules, but the router has already
/// moved its session so that retry lands on the new primary. Reads are
/// idempotent and always retried after a re-discovery. Not thread-safe:
/// one router per client thread, like RemoteSession itself.
class ReplicaRouter {
 public:
  struct Endpoint {
    std::string host;
    int port = 0;
  };

  struct RouterOptions {
    client::RemoteSession::RetryOptions retry;
    std::chrono::milliseconds timeout{5000};

    /// Enforce the session's write horizon on replica reads.
    bool read_your_writes = true;

    /// Total time to wait for *some* replica to reach the required LSN
    /// before falling back to the primary.
    std::chrono::milliseconds staleness_wait{250};

    /// Base quarantine for a transport-failed replica; consecutive
    /// failures escalate it (doubling, capped at 8x).
    std::chrono::milliseconds health_backoff{500};

    /// Total time RediscoverPrimary keeps sweeping the endpoints for a
    /// node that answers as primary before giving up.
    std::chrono::milliseconds rediscovery_window{2000};

    /// Per-endpoint dial/probe budget during a re-discovery sweep.
    std::chrono::milliseconds rediscovery_probe_timeout{250};
  };

  struct RouterStats {
    uint64_t primary_reads = 0;    ///< Reads served by the primary.
    uint64_t replica_reads = 0;    ///< Reads served by replicas.
    uint64_t writes = 0;           ///< Statements routed to the primary.
    uint64_t stale_skips = 0;      ///< Replica skipped: LSN behind horizon.
    uint64_t failovers = 0;        ///< Replica quarantined after an error.
    uint64_t rediscoveries = 0;    ///< Primary re-discovery sweeps run.
    uint64_t moved_retries = 0;    ///< Writes resent after a clean refusal.
    uint64_t quarantined = 0;      ///< Replicas currently out of rotation.
  };

  /// Connects to the primary (fatal on failure) and to each replica
  /// (failures tolerated — the endpoint starts quarantined and is redialed
  /// lazily). With no replicas the router degenerates to a plain primary
  /// session.
  static Result<ReplicaRouter> Connect(const Endpoint& primary,
                                       const std::vector<Endpoint>& replicas,
                                       RouterOptions options);
  static Result<ReplicaRouter> Connect(const Endpoint& primary,
                                       const std::vector<Endpoint>& replicas);

  /// Unified execution with routing. Reads may be served by any
  /// sufficiently fresh backend; everything else goes to the primary and
  /// advances the write horizon from the ack's LSN.
  Result<QueryOutcome> Execute(const QueryRequest& req);

  /// Read-class execution with an explicit staleness bound: only backends
  /// at or past `min_lsn` may answer. Execute() calls this with the write
  /// horizon; callers with cross-session tokens can pass their own.
  Result<QueryOutcome> ExecuteRead(const QueryRequest& req, uint64_t min_lsn);

  Result<sparql::QueryResult> Query(const std::string& text);
  Result<std::string> Run(const std::string& text);

  /// The LSN of this session's last acked write (0 = none yet).
  uint64_t last_write_lsn() const { return last_write_lsn_; }
  /// Highest fencing term observed in probes and update acks.
  uint64_t known_term() const { return known_term_; }
  /// "host:port" of the endpoint currently holding the primary session.
  std::string primary_endpoint() const;
  RouterStats stats() const;  ///< By value: `quarantined` is computed.
  size_t replica_count() const { return replicas_.size(); }

  /// Probes every known endpoint for a live primary at a term >= the
  /// highest this router has seen, sweeping for up to
  /// `rediscovery_window`, and re-points the primary session at the best
  /// one found. Execute() calls this on primary failure; it is public so
  /// harnesses can force a re-discovery. True when a primary was adopted.
  bool RediscoverPrimary();

 private:
  struct ReplicaSlot {
    Endpoint endpoint;
    std::unique_ptr<client::RemoteSession> session;  // null = not connected
    uint64_t known_lsn = 0;  ///< Last LSN this replica reported.
    std::chrono::steady_clock::time_point quarantined_until{};
    int strikes = 0;  ///< Consecutive failures; scales the quarantine.
  };

  ReplicaRouter(RouterOptions options, Endpoint primary_endpoint,
                std::unique_ptr<client::RemoteSession> primary);

  /// Ensures the slot has a live session (redials past quarantine).
  Status EnsureSlot(ReplicaSlot* slot);
  void Quarantine(ReplicaSlot* slot);
  /// One attempt against one replica; distinguishes transport failures
  /// (quarantine + try elsewhere) from semantic errors (return to caller).
  Result<QueryOutcome> TryReplica(ReplicaSlot* slot, const QueryRequest& req,
                                  uint64_t min_lsn, bool* transport_failed);

  /// Notes a term observed on the wire (monotone max).
  void ObserveTerm(uint64_t term);

  RouterOptions options_;
  Endpoint primary_endpoint_;
  /// The endpoint the session was configured with, immutable. Stays in
  /// the re-discovery sweep even after an adoption moves
  /// primary_endpoint_ elsewhere — a later election can hand the primary
  /// role back to the original node.
  Endpoint configured_primary_;
  std::unique_ptr<client::RemoteSession> primary_;
  std::vector<ReplicaSlot> replicas_;
  size_t next_replica_ = 0;  ///< Round-robin cursor.
  uint64_t last_write_lsn_ = 0;
  uint64_t known_term_ = 0;
  RouterStats stats_;
};

}  // namespace repl
}  // namespace scisparql

#endif  // SCISPARQL_REPL_ROUTER_H_
