#ifndef SCISPARQL_REPL_ROUTER_H_
#define SCISPARQL_REPL_ROUTER_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "client/server.h"
#include "common/status.h"
#include "engine/query_api.h"
#include "repl/wire.h"

namespace scisparql {
namespace repl {

/// Client-side LSN-bounded routing over one primary and N replicas.
///
/// Updates (and CHECKPOINT, and anything not classified as a read) go to
/// the primary; the update ack's commit LSN is remembered as the session's
/// write horizon. Read-class and prepared statements fan out across the
/// replicas round-robin. With read_your_writes on (the default), a read
/// is only served by a replica whose applied LSN has reached the write
/// horizon: the router probes the candidate's LSN, skips stale replicas,
/// briefly waits for them to catch up, and ultimately falls back to the
/// primary — a read after an acked write can never observe pre-update
/// state, no matter which backend answers.
///
/// A replica that fails transport-wise is quarantined for
/// `health_backoff` and traffic routes around it (RemoteSession's own
/// retry/backoff covers transient blips below that). Not thread-safe:
/// one router per client thread, like RemoteSession itself.
class ReplicaRouter {
 public:
  struct Endpoint {
    std::string host;
    int port = 0;
  };

  struct RouterOptions {
    client::RemoteSession::RetryOptions retry;
    std::chrono::milliseconds timeout{5000};

    /// Enforce the session's write horizon on replica reads.
    bool read_your_writes = true;

    /// Total time to wait for *some* replica to reach the required LSN
    /// before falling back to the primary.
    std::chrono::milliseconds staleness_wait{250};

    /// How long a transport-failed replica stays out of rotation.
    std::chrono::milliseconds health_backoff{500};
  };

  struct RouterStats {
    uint64_t primary_reads = 0;    ///< Reads served by the primary.
    uint64_t replica_reads = 0;    ///< Reads served by replicas.
    uint64_t writes = 0;           ///< Statements routed to the primary.
    uint64_t stale_skips = 0;      ///< Replica skipped: LSN behind horizon.
    uint64_t failovers = 0;        ///< Replica quarantined after an error.
  };

  /// Connects to the primary (fatal on failure) and to each replica
  /// (failures tolerated — the endpoint starts quarantined and is redialed
  /// lazily). With no replicas the router degenerates to a plain primary
  /// session.
  static Result<ReplicaRouter> Connect(const Endpoint& primary,
                                       const std::vector<Endpoint>& replicas,
                                       RouterOptions options);
  static Result<ReplicaRouter> Connect(const Endpoint& primary,
                                       const std::vector<Endpoint>& replicas);

  /// Unified execution with routing. Reads may be served by any
  /// sufficiently fresh backend; everything else goes to the primary and
  /// advances the write horizon from the ack's LSN.
  Result<QueryOutcome> Execute(const QueryRequest& req);

  /// Read-class execution with an explicit staleness bound: only backends
  /// at or past `min_lsn` may answer. Execute() calls this with the write
  /// horizon; callers with cross-session tokens can pass their own.
  Result<QueryOutcome> ExecuteRead(const QueryRequest& req, uint64_t min_lsn);

  Result<sparql::QueryResult> Query(const std::string& text);
  Result<std::string> Run(const std::string& text);

  /// The LSN of this session's last acked write (0 = none yet).
  uint64_t last_write_lsn() const { return last_write_lsn_; }
  const RouterStats& stats() const { return stats_; }
  size_t replica_count() const { return replicas_.size(); }

 private:
  struct ReplicaSlot {
    Endpoint endpoint;
    std::unique_ptr<client::RemoteSession> session;  // null = not connected
    uint64_t known_lsn = 0;  ///< Last LSN this replica reported.
    std::chrono::steady_clock::time_point quarantined_until{};
  };

  ReplicaRouter(RouterOptions options,
                std::unique_ptr<client::RemoteSession> primary);

  /// Ensures the slot has a live session (redials past quarantine).
  Status EnsureSlot(ReplicaSlot* slot);
  void Quarantine(ReplicaSlot* slot);
  /// One attempt against one replica; distinguishes transport failures
  /// (quarantine + try elsewhere) from semantic errors (return to caller).
  Result<QueryOutcome> TryReplica(ReplicaSlot* slot, const QueryRequest& req,
                                  uint64_t min_lsn, bool* transport_failed);

  RouterOptions options_;
  std::unique_ptr<client::RemoteSession> primary_;
  std::vector<ReplicaSlot> replicas_;
  size_t next_replica_ = 0;  ///< Round-robin cursor.
  uint64_t last_write_lsn_ = 0;
  RouterStats stats_;
};

}  // namespace repl
}  // namespace scisparql

#endif  // SCISPARQL_REPL_ROUTER_H_
