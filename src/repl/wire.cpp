#include "repl/wire.h"

#include "client/server.h"
#include "rdf/term_codec.h"

namespace scisparql {
namespace repl {

namespace {

using rdf::GetString;
using rdf::GetU32;
using rdf::GetU64;
using rdf::PutString;
using rdf::PutU32;
using rdf::PutU64;

/// Strips the [0x02][verb] envelope, enforcing the expected verb.
Result<std::string> Unwrap(const std::string& payload, char verb,
                           const char* what) {
  if (payload.size() < 2 || payload[0] != kReplMarker || payload[1] != verb) {
    return Status::IoError(std::string("malformed ") + what + " payload");
  }
  return payload.substr(2);
}

}  // namespace

std::string EncodeProbeRequest() {
  return std::string() + kReplMarker + kReplProbe;
}

std::string EncodeSnapshotRequest() {
  return std::string() + kReplMarker + kReplSnapshot;
}

std::string EncodeFetchRequest(const ReplFetchRequest& req) {
  std::string out;
  out.push_back(kReplMarker);
  out.push_back(kReplFetch);
  PutString(&out, req.replica_id);
  PutU64(&out, req.after_lsn);
  PutU64(&out, req.applied_lsn);
  PutU32(&out, req.max_bytes);
  PutU64(&out, req.term);
  return out;
}

Result<ReplFetchRequest> DecodeFetchRequest(const std::string& payload) {
  SCISPARQL_ASSIGN_OR_RETURN(std::string body,
                             Unwrap(payload, kReplFetch, "repl fetch"));
  ReplFetchRequest req;
  size_t pos = 0;
  if (!GetString(body, &pos, &req.replica_id) ||
      !GetU64(body, &pos, &req.after_lsn) ||
      !GetU64(body, &pos, &req.applied_lsn) ||
      !GetU32(body, &pos, &req.max_bytes) ||
      !GetU64(body, &pos, &req.term) || pos != body.size()) {
    return Status::IoError("malformed repl fetch body");
  }
  return req;
}

std::string EncodeProbeReply(const ReplProbeReply& reply) {
  std::string out;
  out.push_back(kReplMarker);
  out.push_back(kReplProbeReply);
  PutU64(&out, reply.lsn);
  out.push_back(reply.replica ? 1 : 0);
  PutU64(&out, reply.term);
  PutString(&out, reply.node_id);
  return out;
}

Result<ReplProbeReply> DecodeProbeReply(const std::string& payload) {
  SCISPARQL_ASSIGN_OR_RETURN(std::string body,
                             Unwrap(payload, kReplProbeReply, "repl probe"));
  ReplProbeReply reply;
  size_t pos = 0;
  if (!GetU64(body, &pos, &reply.lsn) || pos >= body.size()) {
    return Status::IoError("malformed repl probe body");
  }
  reply.replica = body[pos++] != 0;
  if (!GetU64(body, &pos, &reply.term) ||
      !GetString(body, &pos, &reply.node_id) || pos != body.size()) {
    return Status::IoError("malformed repl probe body");
  }
  return reply;
}

std::string EncodeBatchReply(const ReplBatchReply& reply) {
  std::string out;
  out.push_back(kReplMarker);
  out.push_back(kReplBatchReply);
  PutU64(&out, reply.primary_lsn);
  PutU64(&out, reply.last_lsn);
  out.push_back(reply.truncated ? 1 : 0);
  PutString(&out, reply.frames);
  PutU64(&out, reply.term);
  return out;
}

Result<ReplBatchReply> DecodeBatchReply(const std::string& payload) {
  SCISPARQL_ASSIGN_OR_RETURN(std::string body,
                             Unwrap(payload, kReplBatchReply, "repl batch"));
  ReplBatchReply reply;
  size_t pos = 0;
  if (!GetU64(body, &pos, &reply.primary_lsn) ||
      !GetU64(body, &pos, &reply.last_lsn) || pos >= body.size()) {
    return Status::IoError("malformed repl batch body");
  }
  reply.truncated = body[pos++] != 0;
  if (!GetString(body, &pos, &reply.frames) ||
      !GetU64(body, &pos, &reply.term) || pos != body.size()) {
    return Status::IoError("malformed repl batch frames");
  }
  return reply;
}

std::string EncodeSnapshotBody(
    const std::vector<std::pair<std::string, std::string>>& sections,
    uint64_t lsn, uint64_t term) {
  std::string out;
  PutU64(&out, lsn);
  PutU32(&out, static_cast<uint32_t>(sections.size()));
  for (const auto& [iri, turtle] : sections) {
    PutString(&out, iri);
    PutString(&out, turtle);
  }
  PutU64(&out, term);
  return out;
}

Status DecodeSnapshotBody(
    const std::string& body,
    std::vector<std::pair<std::string, std::string>>* sections,
    uint64_t* lsn, uint64_t* term) {
  *term = 0;
  size_t pos = 0;
  uint32_t n = 0;
  if (!GetU64(body, &pos, lsn) || !GetU32(body, &pos, &n)) {
    return Status::IoError("malformed repl snapshot header");
  }
  sections->clear();
  for (uint32_t i = 0; i < n; ++i) {
    std::string iri, turtle;
    if (!GetString(body, &pos, &iri) || !GetString(body, &pos, &turtle)) {
      return Status::IoError("malformed repl snapshot section");
    }
    sections->emplace_back(std::move(iri), std::move(turtle));
  }
  // Pre-failover snapshot bodies end here; newer ones append the term.
  if (pos < body.size() && !GetU64(body, &pos, term)) {
    return Status::IoError("malformed repl snapshot term");
  }
  if (pos != body.size()) {
    return Status::IoError("trailing bytes in repl snapshot body");
  }
  return Status::OK();
}

std::string EncodeSnapshotReply(const ReplSnapshotReply& reply) {
  std::string out;
  out.push_back(kReplMarker);
  out.push_back(kReplSnapshotReply);
  out += EncodeSnapshotBody(reply.sections, reply.lsn, reply.term);
  return out;
}

Result<ReplSnapshotReply> DecodeSnapshotReply(const std::string& payload) {
  SCISPARQL_ASSIGN_OR_RETURN(
      std::string body, Unwrap(payload, kReplSnapshotReply, "repl snapshot"));
  ReplSnapshotReply reply;
  SCISPARQL_RETURN_NOT_OK(
      DecodeSnapshotBody(body, &reply.sections, &reply.lsn, &reply.term));
  return reply;
}

Result<ReplProbeReply> ProbeLsn(client::RemoteSession* session) {
  SCISPARQL_ASSIGN_OR_RETURN(
      std::string payload,
      session->Call(EncodeProbeRequest(), /*retry_safe=*/true));
  return DecodeProbeReply(payload);
}

Result<ReplBatchReply> FetchBatch(client::RemoteSession* session,
                                  const ReplFetchRequest& req) {
  SCISPARQL_ASSIGN_OR_RETURN(
      std::string payload,
      session->Call(EncodeFetchRequest(req), /*retry_safe=*/true));
  return DecodeBatchReply(payload);
}

Result<ReplSnapshotReply> FetchSnapshot(client::RemoteSession* session) {
  // Snapshots can dwarf the frame budget of normal traffic but stay under
  // the protocol's 64 MiB frame cap; idempotent, so retry-safe.
  SCISPARQL_ASSIGN_OR_RETURN(
      std::string payload,
      session->Call(EncodeSnapshotRequest(), /*retry_safe=*/true));
  return DecodeSnapshotReply(payload);
}

}  // namespace repl
}  // namespace scisparql
