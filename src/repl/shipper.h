#ifndef SCISPARQL_REPL_SHIPPER_H_
#define SCISPARQL_REPL_SHIPPER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "engine/ssdm.h"
#include "repl/wire.h"

namespace scisparql {
namespace sched {
class QueryScheduler;
}  // namespace sched

namespace repl {

/// Primary-side WAL shipper: answers the replication verbs on behalf of an
/// SsdmServer. Shipping is pull-based — each replica polls with its last
/// applied LSN and the shipper streams raw committed WAL frames straight
/// out of the segment files, so a fetch never takes the engine lock: the
/// durability manager's atomic durable LSN gates what is visible, and
/// ReadWalShipment only returns whole committed batches. Only the snapshot
/// verb touches the dataset, and it goes through the scheduler as a
/// read-class statement (consistent cut under the shared lock).
///
/// The shipper also keeps a per-replica registry (applied LSN, lag,
/// last-seen time) fed by the fetch requests themselves, exported as
/// ssdm_repl_* metrics.
///
/// Fencing: a fetch carries the replica's term. A fetch with a term NEWER
/// than this engine's means the cluster moved on while we were primary —
/// the request is answered WrongTerm and the stale-term callback fires so
/// the failover coordinator can demote. (Fetches with older terms are
/// served; the reply's term tells the replica to adopt ours.)
class WalShipper {
 public:
  explicit WalShipper(SSDM* engine);

  /// State of one polling replica, keyed by its self-reported id.
  struct ReplicaState {
    uint64_t applied_lsn = 0;  ///< Replica's last applied LSN.
    uint64_t shipped_lsn = 0;  ///< Last LSN this shipper sent it.
    uint64_t fetches = 0;
    std::chrono::steady_clock::time_point last_seen{};
  };

  /// Serves one replication request (payload starting with kReplMarker);
  /// returns the response payload. `sched` runs the snapshot statement —
  /// it must be the scheduler serializing all other engine access.
  Result<std::string> Handle(const std::string& request,
                             sched::QueryScheduler* sched);

  std::vector<std::pair<std::string, ReplicaState>> replicas() const;

  /// Fires (with the observed newer term) whenever a fetch arrives whose
  /// term exceeds the engine's — the demotion trigger. Invoked on a
  /// connection I/O thread; keep it cheap.
  void set_on_stale_term(std::function<void(uint64_t)> fn);

  /// Blocks until some replica reports `lsn` applied, or `timeout`
  /// expires. The semi-synchronous ack wait: fetch requests double as the
  /// acknowledgement channel (a replica fetching with applied_lsn >= lsn
  /// has the write).
  bool WaitForReplicaLsn(uint64_t lsn, std::chrono::milliseconds timeout);

  /// True when this primary has replicas (some replica has fetched at
  /// least once) but none fetched within `window` — the self-fencing
  /// lease check. A primary that never had replicas is never fenced.
  bool FencedOut(std::chrono::milliseconds window) const;

 private:
  Result<std::string> HandleFetch(const std::string& request);
  Result<std::string> HandleSnapshot(sched::QueryScheduler* sched);
  void NoteReplica(const ReplFetchRequest& req, uint64_t shipped_lsn,
                   uint64_t primary_lsn);

  SSDM* engine_;

  mutable std::mutex mu_;
  std::condition_variable cv_;  ///< Signaled on every NoteReplica.
  std::map<std::string, ReplicaState> replicas_;
  std::chrono::steady_clock::time_point last_fetch_{};
  std::function<void(uint64_t)> on_stale_term_;
  uint64_t max_applied_lsn_ = 0;  ///< Highest applied LSN any replica sent.
};

}  // namespace repl
}  // namespace scisparql

#endif  // SCISPARQL_REPL_SHIPPER_H_
