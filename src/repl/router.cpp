#include "repl/router.h"

#include <thread>

#include "engine/ssdm.h"

namespace scisparql {
namespace repl {

namespace {

bool IsTransportError(const Status& st) {
  // IoError: broken pipe / refused connection. Unavailable: the backend
  // answered but cannot serve (overload, shutdown) — also worth routing
  // around. Semantic errors (parse, NotFound, ...) would fail identically
  // everywhere, so they are not.
  return st.code() == StatusCode::kIoError ||
         st.code() == StatusCode::kUnavailable;
}

bool IsReadRequest(const QueryRequest& req) {
  return req.prepared.has_value() ||
         SSDM::ClassifyStatement(req.text) == sched::StatementClass::kRead;
}

}  // namespace

ReplicaRouter::ReplicaRouter(RouterOptions options,
                             std::unique_ptr<client::RemoteSession> primary)
    : options_(options), primary_(std::move(primary)) {}

Result<ReplicaRouter> ReplicaRouter::Connect(
    const Endpoint& primary, const std::vector<Endpoint>& replicas) {
  return Connect(primary, replicas, RouterOptions());
}

Result<ReplicaRouter> ReplicaRouter::Connect(
    const Endpoint& primary, const std::vector<Endpoint>& replicas,
    RouterOptions options) {
  SCISPARQL_ASSIGN_OR_RETURN(
      client::RemoteSession session,
      client::RemoteSession::Connect(primary.host, primary.port,
                                     options.timeout, options.retry));
  ReplicaRouter router(
      options,
      std::make_unique<client::RemoteSession>(std::move(session)));
  for (const Endpoint& ep : replicas) {
    ReplicaSlot slot;
    slot.endpoint = ep;
    // Dial eagerly but tolerate failure: a replica that is still starting
    // begins quarantined and joins the rotation once EnsureSlot redials.
    Result<client::RemoteSession> s = client::RemoteSession::Connect(
        ep.host, ep.port, options.timeout, options.retry);
    if (s.ok()) {
      slot.session =
          std::make_unique<client::RemoteSession>(std::move(*s));
    } else {
      slot.quarantined_until =
          std::chrono::steady_clock::now() + options.health_backoff;
    }
    router.replicas_.push_back(std::move(slot));
  }
  return router;
}

Status ReplicaRouter::EnsureSlot(ReplicaSlot* slot) {
  if (slot->session != nullptr) return Status::OK();
  Result<client::RemoteSession> s = client::RemoteSession::Connect(
      slot->endpoint.host, slot->endpoint.port, options_.timeout,
      options_.retry);
  if (!s.ok()) {
    Quarantine(slot);
    return s.status();
  }
  slot->session = std::make_unique<client::RemoteSession>(std::move(*s));
  return Status::OK();
}

void ReplicaRouter::Quarantine(ReplicaSlot* slot) {
  slot->session.reset();
  slot->known_lsn = 0;
  slot->quarantined_until =
      std::chrono::steady_clock::now() + options_.health_backoff;
  ++stats_.failovers;
}

Result<QueryOutcome> ReplicaRouter::TryReplica(ReplicaSlot* slot,
                                               const QueryRequest& req,
                                               uint64_t min_lsn,
                                               bool* transport_failed) {
  *transport_failed = false;
  Status ready = EnsureSlot(slot);
  if (!ready.ok()) {
    *transport_failed = true;
    return ready;
  }
  if (min_lsn > 0 && slot->known_lsn < min_lsn) {
    // The cached LSN is stale the moment it's read, but only in the safe
    // direction (the stream is monotone): probe to refresh, and skip the
    // replica when it genuinely hasn't caught up.
    Result<ReplProbeReply> probe = ProbeLsn(slot->session.get());
    if (!probe.ok()) {
      *transport_failed = IsTransportError(probe.status());
      if (*transport_failed) Quarantine(slot);
      return probe.status();
    }
    slot->known_lsn = probe->lsn;
    if (slot->known_lsn < min_lsn) {
      ++stats_.stale_skips;
      return Status::Unavailable("replica behind the required LSN");
    }
  }
  Result<QueryOutcome> out = slot->session->Execute(req);
  if (!out.ok() && IsTransportError(out.status())) {
    *transport_failed = true;
    Quarantine(slot);
  }
  return out;
}

Result<QueryOutcome> ReplicaRouter::Execute(const QueryRequest& req) {
  if (IsReadRequest(req)) {
    return ExecuteRead(req,
                       options_.read_your_writes ? last_write_lsn_ : 0);
  }
  // Everything else — updates, CHECKPOINT, DEFINE, PREPARE — belongs on
  // the primary; replicas reject it anyway.
  ++stats_.writes;
  Result<QueryOutcome> out = primary_->Execute(req);
  if (out.ok() && out->kind() == QueryOutcome::Kind::kUpdateCount) {
    uint64_t lsn = std::get<QueryOutcome::UpdateCount>(out->value).lsn;
    if (lsn > last_write_lsn_) last_write_lsn_ = lsn;
  }
  return out;
}

Result<QueryOutcome> ReplicaRouter::ExecuteRead(const QueryRequest& req,
                                                uint64_t min_lsn) {
  if (replicas_.empty()) {
    ++stats_.primary_reads;
    return primary_->Execute(req);
  }
  auto deadline = std::chrono::steady_clock::now() + options_.staleness_wait;
  bool first_pass = true;
  for (;;) {
    size_t skipped_stale = 0;
    for (size_t i = 0; i < replicas_.size(); ++i) {
      ReplicaSlot* slot = &replicas_[next_replica_++ % replicas_.size()];
      if (std::chrono::steady_clock::now() < slot->quarantined_until) {
        continue;
      }
      bool transport_failed = false;
      Result<QueryOutcome> out =
          TryReplica(slot, req, min_lsn, &transport_failed);
      if (out.ok()) {
        ++stats_.replica_reads;
        return out;
      }
      if (transport_failed) continue;  // quarantined; next candidate
      if (out.status().code() == StatusCode::kUnavailable) {
        ++skipped_stale;
        continue;  // behind the horizon; another replica may be ahead
      }
      return out;  // semantic error: identical everywhere
    }
    // Every replica is down or behind. Stale replicas are worth a short
    // wait (the stream is live); dead ones are not — fall through to the
    // primary, which is always fresh.
    if (skipped_stale == 0 || !first_pass ||
        std::chrono::steady_clock::now() >= deadline) {
      break;
    }
    std::this_thread::sleep_until(
        std::min(deadline, std::chrono::steady_clock::now() +
                               std::chrono::milliseconds(20)));
    first_pass = std::chrono::steady_clock::now() < deadline;
  }
  ++stats_.primary_reads;
  return primary_->Execute(req);
}

Result<sparql::QueryResult> ReplicaRouter::Query(const std::string& text) {
  QueryRequest req;
  req.text = text;
  SCISPARQL_ASSIGN_OR_RETURN(QueryOutcome out, Execute(req));
  if (out.kind() != QueryOutcome::Kind::kRows) {
    return Status::InvalidArgument("statement is not a SELECT query");
  }
  return std::move(out.rows());
}

Result<std::string> ReplicaRouter::Run(const std::string& text) {
  QueryRequest req;
  req.text = text;
  SCISPARQL_ASSIGN_OR_RETURN(QueryOutcome out, Execute(req));
  if (out.kind() == QueryOutcome::Kind::kInfo) return out.info();
  return std::string();
}

}  // namespace repl
}  // namespace scisparql
