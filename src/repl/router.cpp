#include "repl/router.h"

#include <algorithm>
#include <thread>

#include "engine/ssdm.h"

namespace scisparql {
namespace repl {

namespace {

bool IsTransportError(const Status& st) {
  // IoError: broken pipe / refused connection. Unavailable: the backend
  // answered but cannot serve (overload, shutdown) — also worth routing
  // around. Semantic errors (parse, NotFound, ...) would fail identically
  // everywhere, so they are not.
  return st.code() == StatusCode::kIoError ||
         st.code() == StatusCode::kUnavailable;
}

bool IsReadRequest(const QueryRequest& req) {
  return req.prepared.has_value() ||
         SSDM::ClassifyStatement(req.text) == sched::StatementClass::kRead;
}

/// A clean refusal that proves the statement never executed: a demoted
/// node bouncing writes toward the primary, or a fenced primary refusing
/// them while a failover is in progress. Safe to resend elsewhere —
/// unlike a transport failure, where the statement may have committed.
bool IsMovedResponse(const Status& st) {
  if (st.code() != StatusCode::kUnavailable) return false;
  const std::string& m = st.message();
  return m.find("send writes to the primary") != std::string::npos ||
         m.find("primary is fenced") != std::string::npos;
}

}  // namespace

ReplicaRouter::ReplicaRouter(RouterOptions options, Endpoint primary_endpoint,
                             std::unique_ptr<client::RemoteSession> primary)
    : options_(options),
      primary_endpoint_(primary_endpoint),
      configured_primary_(std::move(primary_endpoint)),
      primary_(std::move(primary)) {}

Result<ReplicaRouter> ReplicaRouter::Connect(
    const Endpoint& primary, const std::vector<Endpoint>& replicas) {
  return Connect(primary, replicas, RouterOptions());
}

Result<ReplicaRouter> ReplicaRouter::Connect(
    const Endpoint& primary, const std::vector<Endpoint>& replicas,
    RouterOptions options) {
  SCISPARQL_ASSIGN_OR_RETURN(
      client::RemoteSession session,
      client::RemoteSession::Connect(primary.host, primary.port,
                                     options.timeout, options.retry));
  ReplicaRouter router(
      options, primary,
      std::make_unique<client::RemoteSession>(std::move(session)));
  for (const Endpoint& ep : replicas) {
    ReplicaSlot slot;
    slot.endpoint = ep;
    // Dial eagerly but tolerate failure: a replica that is still starting
    // begins quarantined and joins the rotation once EnsureSlot redials.
    Result<client::RemoteSession> s = client::RemoteSession::Connect(
        ep.host, ep.port, options.timeout, options.retry);
    if (s.ok()) {
      slot.session =
          std::make_unique<client::RemoteSession>(std::move(*s));
    } else {
      slot.quarantined_until =
          std::chrono::steady_clock::now() + options.health_backoff;
    }
    router.replicas_.push_back(std::move(slot));
  }
  return router;
}

Status ReplicaRouter::EnsureSlot(ReplicaSlot* slot) {
  if (slot->session != nullptr) return Status::OK();
  Result<client::RemoteSession> s = client::RemoteSession::Connect(
      slot->endpoint.host, slot->endpoint.port, options_.timeout,
      options_.retry);
  if (!s.ok()) {
    Quarantine(slot);
    return s.status();
  }
  slot->session = std::make_unique<client::RemoteSession>(std::move(*s));
  slot->strikes = 0;  // back in rotation at full cadence
  return Status::OK();
}

void ReplicaRouter::Quarantine(ReplicaSlot* slot) {
  slot->session.reset();
  slot->known_lsn = 0;
  // Escalate on consecutive failures so a dead replica costs ever fewer
  // redials, but cap it so a rejoin is noticed within 8 backoff periods.
  int scale = 1 << std::min(slot->strikes, 3);
  slot->quarantined_until =
      std::chrono::steady_clock::now() + options_.health_backoff * scale;
  ++slot->strikes;
  ++stats_.failovers;
}

void ReplicaRouter::ObserveTerm(uint64_t term) {
  if (term > known_term_) known_term_ = term;
}

std::string ReplicaRouter::primary_endpoint() const {
  return primary_endpoint_.host + ":" +
         std::to_string(primary_endpoint_.port);
}

ReplicaRouter::RouterStats ReplicaRouter::stats() const {
  RouterStats s = stats_;
  s.quarantined = 0;
  auto now = std::chrono::steady_clock::now();
  for (const ReplicaSlot& slot : replicas_) {
    if (now < slot.quarantined_until) ++s.quarantined;
  }
  return s;
}

bool ReplicaRouter::RediscoverPrimary() {
  ++stats_.rediscoveries;
  // Sweep every endpoint we know — the configured primary plus all
  // replicas (after a failover the new primary IS one of the replicas) —
  // and adopt the best claimant: a non-replica node at the highest term
  // not below anything this session has already observed.
  std::vector<Endpoint> candidates;
  candidates.push_back(primary_endpoint_);
  if (configured_primary_.host != primary_endpoint_.host ||
      configured_primary_.port != primary_endpoint_.port) {
    candidates.push_back(configured_primary_);
  }
  for (const ReplicaSlot& slot : replicas_) {
    candidates.push_back(slot.endpoint);
  }
  client::RemoteSession::RetryOptions probe_retry;
  probe_retry.max_attempts = 1;
  auto deadline =
      std::chrono::steady_clock::now() + options_.rediscovery_window;
  for (;;) {
    const Endpoint* best = nullptr;
    uint64_t best_term = 0;
    for (const Endpoint& ep : candidates) {
      Result<client::RemoteSession> s = client::RemoteSession::Connect(
          ep.host, ep.port, options_.rediscovery_probe_timeout, probe_retry);
      if (!s.ok()) continue;
      client::RemoteSession session = std::move(*s);
      Result<ReplProbeReply> probe = ProbeLsn(&session);
      if (!probe.ok() || probe->replica) continue;
      if (probe->term < known_term_) continue;  // deposed claimant
      if (best == nullptr || probe->term > best_term) {
        best = &ep;
        best_term = probe->term;
      }
    }
    if (best != nullptr) {
      Result<client::RemoteSession> s = client::RemoteSession::Connect(
          best->host, best->port, options_.timeout, options_.retry);
      if (s.ok()) {
        primary_endpoint_ = *best;
        primary_ =
            std::make_unique<client::RemoteSession>(std::move(*s));
        ObserveTerm(best_term);
        return true;
      }
    }
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

Result<QueryOutcome> ReplicaRouter::TryReplica(ReplicaSlot* slot,
                                               const QueryRequest& req,
                                               uint64_t min_lsn,
                                               bool* transport_failed) {
  *transport_failed = false;
  Status ready = EnsureSlot(slot);
  if (!ready.ok()) {
    *transport_failed = true;
    return ready;
  }
  if (min_lsn > 0 && slot->known_lsn < min_lsn) {
    // The cached LSN is stale the moment it's read, but only in the safe
    // direction (the stream is monotone): probe to refresh, and skip the
    // replica when it genuinely hasn't caught up.
    Result<ReplProbeReply> probe = ProbeLsn(slot->session.get());
    if (!probe.ok()) {
      *transport_failed = IsTransportError(probe.status());
      if (*transport_failed) Quarantine(slot);
      return probe.status();
    }
    slot->known_lsn = probe->lsn;
    ObserveTerm(probe->term);
    if (slot->known_lsn < min_lsn) {
      ++stats_.stale_skips;
      return Status::Unavailable("replica behind the required LSN");
    }
  }
  Result<QueryOutcome> out = slot->session->Execute(req);
  if (!out.ok() && IsTransportError(out.status())) {
    *transport_failed = true;
    Quarantine(slot);
  }
  return out;
}

Result<QueryOutcome> ReplicaRouter::Execute(const QueryRequest& req) {
  if (IsReadRequest(req)) {
    return ExecuteRead(req,
                       options_.read_your_writes ? last_write_lsn_ : 0);
  }
  // Everything else — updates, CHECKPOINT, DEFINE, PREPARE — belongs on
  // the primary; replicas reject it anyway.
  ++stats_.writes;
  Result<QueryOutcome> out = primary_->Execute(req);
  if (!out.ok()) {
    if (IsMovedResponse(out.status())) {
      // The node refused cleanly, so the statement never ran: find the
      // real primary and resend.
      if (RediscoverPrimary()) {
        ++stats_.moved_retries;
        out = primary_->Execute(req);
      }
    } else if (IsTransportError(out.status())) {
      // The statement was in flight when the connection died — it may or
      // may not have committed, so it is NOT resent. Re-discover anyway:
      // the caller's own retry (under its idempotency rules) should land
      // on the new primary, not the dead socket.
      RediscoverPrimary();
    }
  }
  if (out.ok() && out->kind() == QueryOutcome::Kind::kUpdateCount) {
    const auto& ack = std::get<QueryOutcome::UpdateCount>(out->value);
    if (ack.term != 0 && ack.term < known_term_) {
      // An ack from a timeline this session already knows is dead: a
      // deposed primary that has not yet noticed. The write may vanish
      // with its timeline — do not advance the horizon, do not resend
      // (it DID execute somewhere); surface it and move the session.
      RediscoverPrimary();
      return Status::Unavailable(
          "update was acked by a deposed primary (term " +
          std::to_string(ack.term) + " < " + std::to_string(known_term_) +
          "); the write may not survive the failover");
    }
    ObserveTerm(ack.term);
    if (ack.lsn > last_write_lsn_) last_write_lsn_ = ack.lsn;
  }
  return out;
}

Result<QueryOutcome> ReplicaRouter::ExecuteRead(const QueryRequest& req,
                                                uint64_t min_lsn) {
  if (replicas_.empty()) {
    ++stats_.primary_reads;
    return primary_->Execute(req);
  }
  auto deadline = std::chrono::steady_clock::now() + options_.staleness_wait;
  bool first_pass = true;
  for (;;) {
    size_t skipped_stale = 0;
    for (size_t i = 0; i < replicas_.size(); ++i) {
      ReplicaSlot* slot = &replicas_[next_replica_++ % replicas_.size()];
      if (std::chrono::steady_clock::now() < slot->quarantined_until) {
        continue;
      }
      bool transport_failed = false;
      Result<QueryOutcome> out =
          TryReplica(slot, req, min_lsn, &transport_failed);
      if (out.ok()) {
        ++stats_.replica_reads;
        return out;
      }
      if (transport_failed) continue;  // quarantined; next candidate
      if (out.status().code() == StatusCode::kUnavailable) {
        ++skipped_stale;
        continue;  // behind the horizon; another replica may be ahead
      }
      return out;  // semantic error: identical everywhere
    }
    // Every replica is down or behind. Stale replicas are worth a short
    // wait (the stream is live); dead ones are not — fall through to the
    // primary, which is always fresh.
    if (skipped_stale == 0 || !first_pass ||
        std::chrono::steady_clock::now() >= deadline) {
      break;
    }
    std::this_thread::sleep_until(
        std::min(deadline, std::chrono::steady_clock::now() +
                               std::chrono::milliseconds(20)));
    first_pass = std::chrono::steady_clock::now() < deadline;
  }
  ++stats_.primary_reads;
  Result<QueryOutcome> out = primary_->Execute(req);
  if (!out.ok() && IsTransportError(out.status()) && RediscoverPrimary()) {
    // Reads are idempotent: after adopting the new primary, retry there.
    out = primary_->Execute(req);
  }
  return out;
}

Result<sparql::QueryResult> ReplicaRouter::Query(const std::string& text) {
  QueryRequest req;
  req.text = text;
  SCISPARQL_ASSIGN_OR_RETURN(QueryOutcome out, Execute(req));
  if (out.kind() != QueryOutcome::Kind::kRows) {
    return Status::InvalidArgument("statement is not a SELECT query");
  }
  return std::move(out.rows());
}

Result<std::string> ReplicaRouter::Run(const std::string& text) {
  QueryRequest req;
  req.text = text;
  SCISPARQL_ASSIGN_OR_RETURN(QueryOutcome out, Execute(req));
  if (out.kind() == QueryOutcome::Kind::kInfo) return out.info();
  return std::string();
}

}  // namespace repl
}  // namespace scisparql
