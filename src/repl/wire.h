#ifndef SCISPARQL_REPL_WIRE_H_
#define SCISPARQL_REPL_WIRE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace scisparql {
namespace client {
class RemoteSession;
}  // namespace client

namespace repl {

/// Replication wire protocol, layered on the existing length-prefixed
/// frames of the client protocol (client/protocol.h). A request payload
/// whose first byte is 0x02 is a replication request — no SciSPARQL
/// statement starts with that byte, and the structured-query marker is
/// 0x01, so the three request families share one frame format and one
/// server port.
///
///   requests:  [0x02]['L']                                  LSN probe
///              [0x02]['F'][string replica_id][u64 after_lsn]
///                         [u64 applied_lsn][u32 max_bytes]
///                         [u64 term]                         fetch batches
///              [0x02]['S']                                  snapshot
///   responses: [0x02]['A'][u64 lsn][u8 role][u64 term]
///                         [string node_id]                   probe reply
///              [0x02]['B'][u64 primary_lsn][u64 last_lsn]
///                         [u8 truncated][string frames]
///                         [u64 term]                         batch reply
///              [0x02]['T'][snapshot body]                   snapshot reply
///
/// Errors reuse the query protocol's 'E' payload (status code byte +
/// message), so RemoteSession's error mapping applies unchanged. The
/// fetch reply's `frames` are raw committed WAL batches exactly as they
/// appear in the primary's segment files — CRC32C framing included — so a
/// durable replica can write them through byte-identically and replay
/// stays on one shared code path. `after_lsn` past the primary's WAL
/// retention answers OutOfRange: the replica must bootstrap from a
/// snapshot ('S') and resume the stream at the snapshot's LSN.
///
/// Every reply carries the answering node's fencing term; a fetch carries
/// the replica's, and a primary holding a NEWER term answers WrongTerm —
/// the replica is streaming from a deposed timeline and must re-discover.
///
/// The snapshot body is also the payload of the engine's `REPL SNAPSHOT`
/// Info outcome (the shipper wraps it in the 'T' envelope):
///
///   [u64 lsn][u32 n]([string graph_iri][string turtle])*[u64 term]
///
/// ("" = default graph; the trailing term is absent in pre-failover
/// snapshots and decodes as 0.)

constexpr char kReplMarker = '\x02';

constexpr char kReplProbe = 'L';
constexpr char kReplFetch = 'F';
constexpr char kReplSnapshot = 'S';

constexpr char kReplProbeReply = 'A';
constexpr char kReplBatchReply = 'B';
constexpr char kReplSnapshotReply = 'T';

/// Fetch request: "ship me committed batches past `after_lsn`". The
/// replica reports its identity and applied LSN so the primary's shipper
/// can account lag per replica without a separate heartbeat verb.
struct ReplFetchRequest {
  std::string replica_id;
  uint64_t after_lsn = 0;
  uint64_t applied_lsn = 0;
  uint32_t max_bytes = 4u << 20;
  uint64_t term = 0;  ///< The replica's fencing term (0 = don't care).
};

struct ReplProbeReply {
  uint64_t lsn = 0;
  bool replica = false;   ///< Role of the answering engine.
  uint64_t term = 0;      ///< The answering engine's fencing term.
  std::string node_id;    ///< Stable identity (election tie-breaks).
};

struct ReplBatchReply {
  uint64_t primary_lsn = 0;  ///< Primary's LSN at reply time (lag basis).
  uint64_t last_lsn = 0;     ///< Commit LSN of the final shipped batch.
  bool truncated = false;    ///< max_bytes cut the run short; fetch again.
  std::string frames;        ///< Raw WAL frames; empty = caught up.
  uint64_t term = 0;         ///< The shipper's fencing term at reply time.
};

struct ReplSnapshotReply {
  uint64_t lsn = 0;
  uint64_t term = 0;
  std::vector<std::pair<std::string, std::string>> sections;
};

std::string EncodeProbeRequest();
std::string EncodeFetchRequest(const ReplFetchRequest& req);
std::string EncodeSnapshotRequest();
Result<ReplFetchRequest> DecodeFetchRequest(const std::string& payload);

std::string EncodeProbeReply(const ReplProbeReply& reply);
std::string EncodeBatchReply(const ReplBatchReply& reply);
Result<ReplProbeReply> DecodeProbeReply(const std::string& payload);
Result<ReplBatchReply> DecodeBatchReply(const std::string& payload);

/// The snapshot body (without the 0x02/'T' envelope) — produced by the
/// engine's REPL SNAPSHOT statement, consumed by
/// SSDM::BootstrapFromReplication.
std::string EncodeSnapshotBody(
    const std::vector<std::pair<std::string, std::string>>& sections,
    uint64_t lsn, uint64_t term);
Status DecodeSnapshotBody(
    const std::string& body,
    std::vector<std::pair<std::string, std::string>>* sections,
    uint64_t* lsn, uint64_t* term);

std::string EncodeSnapshotReply(const ReplSnapshotReply& reply);
Result<ReplSnapshotReply> DecodeSnapshotReply(const std::string& payload);

/// Round-trip helpers over an established RemoteSession. Probe and fetch
/// are idempotent, so they ride the session's read-retry policy.
Result<ReplProbeReply> ProbeLsn(client::RemoteSession* session);
Result<ReplBatchReply> FetchBatch(client::RemoteSession* session,
                                  const ReplFetchRequest& req);
Result<ReplSnapshotReply> FetchSnapshot(client::RemoteSession* session);

}  // namespace repl
}  // namespace scisparql

#endif  // SCISPARQL_REPL_WIRE_H_
