#include "repl/shipper.h"

#include "engine/durability.h"
#include "obs/metrics.h"
#include "sched/scheduler.h"
#include "storage/wal.h"

namespace scisparql {
namespace repl {

namespace {

obs::Counter& FetchCounter() {
  return obs::DefaultMetrics().GetCounter(
      "ssdm_repl_fetches_total", "",
      "Replication fetch requests served by the WAL shipper.");
}

obs::Counter& ShippedBytesCounter() {
  return obs::DefaultMetrics().GetCounter(
      "ssdm_repl_bytes_shipped_total", "",
      "Raw WAL bytes shipped to replicas.");
}

obs::Counter& SnapshotCounter() {
  return obs::DefaultMetrics().GetCounter(
      "ssdm_repl_snapshots_shipped_total", "",
      "Bootstrap snapshots shipped to replicas that fell behind WAL "
      "retention.");
}

obs::Gauge& PrimaryLsnGauge() {
  return obs::DefaultMetrics().GetGauge(
      "ssdm_repl_primary_lsn", "",
      "The primary's durable LSN as of the last replication request.");
}

obs::Gauge& ReplicaLsnGauge(const std::string& id) {
  return obs::DefaultMetrics().GetGauge(
      "ssdm_repl_replica_applied_lsn", "replica=\"" + id + "\"",
      "Last applied LSN each replica reported with its fetch.");
}

obs::Gauge& ReplicaLagGauge(const std::string& id) {
  return obs::DefaultMetrics().GetGauge(
      "ssdm_repl_replica_lag", "replica=\"" + id + "\"",
      "Primary durable LSN minus the replica's applied LSN, per replica.");
}

obs::Counter& WrongTermCounter() {
  return obs::DefaultMetrics().GetCounter(
      "ssdm_repl_wrong_term_total", "",
      "Replication requests rejected for carrying a stale fencing term.");
}

}  // namespace

WalShipper::WalShipper(SSDM* engine) : engine_(engine) {}

Result<std::string> WalShipper::Handle(const std::string& request,
                                       sched::QueryScheduler* sched) {
  if (request.size() < 2 || request[0] != kReplMarker) {
    return Status::IoError("malformed replication request");
  }
  switch (request[1]) {
    case kReplProbe: {
      ReplProbeReply reply;
      reply.lsn = engine_->last_lsn();
      reply.replica = engine_->replica_mode();
      reply.term = engine_->term();
      reply.node_id = engine_->node_id();
      return EncodeProbeReply(reply);
    }
    case kReplFetch:
      return HandleFetch(request);
    case kReplSnapshot:
      return HandleSnapshot(sched);
    default:
      return Status::InvalidArgument("unknown replication verb");
  }
}

Result<std::string> WalShipper::HandleFetch(const std::string& request) {
  SCISPARQL_ASSIGN_OR_RETURN(ReplFetchRequest req,
                             DecodeFetchRequest(request));
  // A fetch from the future: some node promoted past us. Refuse — our WAL
  // may already have diverged from the new timeline — and wake the
  // coordinator so this node demotes instead of shipping stale history.
  if (req.term > engine_->term()) {
    WrongTermCounter().Add();
    std::function<void(uint64_t)> stale;
    {
      std::lock_guard<std::mutex> lock(mu_);
      stale = on_stale_term_;
    }
    if (stale) stale(req.term);
    return Status::WrongTerm(
        "fetch term " + std::to_string(req.term) +
        " is newer than this node's term " + std::to_string(engine_->term()));
  }
  engine::DurabilityManager* dm = engine_->durability();
  if (dm == nullptr) {
    return Status::FailedPrecondition(
        "engine has no durable store: nothing to ship (call Open() on the "
        "primary first)");
  }
  // The durable LSN is the shipping horizon: every batch at or below it is
  // fully on disk (written and fsynced before the LSN advanced), so the
  // segment scan below cannot hand out more than recovery would replay.
  const uint64_t durable = engine_->last_lsn();
  ReplBatchReply reply;
  reply.primary_lsn = durable;
  reply.last_lsn = req.after_lsn;
  if (req.after_lsn < durable) {
    SCISPARQL_ASSIGN_OR_RETURN(
        storage::WalShipment shipment,
        storage::ReadWalShipment(dm->vfs(), dm->wal_dir(), req.after_lsn,
                                 req.max_bytes));
    reply.last_lsn = shipment.last_lsn;
    reply.truncated = shipment.truncated;
    reply.frames = std::move(shipment.frames);
  }
  reply.term = engine_->term();
  FetchCounter().Add();
  ShippedBytesCounter().Add(reply.frames.size());
  NoteReplica(req, reply.last_lsn, durable);
  return EncodeBatchReply(reply);
}

Result<std::string> WalShipper::HandleSnapshot(
    sched::QueryScheduler* sched) {
  // The engine renders the export itself (REPL SNAPSHOT classifies as a
  // read), so the cut is consistent under whatever lock the scheduler
  // grants — concurrent updates serialize around it.
  QueryRequest req;
  req.text = "REPL SNAPSHOT";
  Result<QueryOutcome> out =
      sched != nullptr
          ? sched->Execute(std::move(req))
          : engine_->Execute(req, nullptr);
  SCISPARQL_RETURN_NOT_OK(out.status());
  if (out->kind() != QueryOutcome::Kind::kInfo) {
    return Status::Internal("REPL SNAPSHOT returned a non-Info outcome");
  }
  SnapshotCounter().Add();
  std::string payload;
  payload.push_back(kReplMarker);
  payload.push_back(kReplSnapshotReply);
  payload += out->info();
  return payload;
}

void WalShipper::NoteReplica(const ReplFetchRequest& req,
                             uint64_t shipped_lsn, uint64_t primary_lsn) {
  PrimaryLsnGauge().Set(static_cast<int64_t>(primary_lsn));
  if (req.replica_id.empty()) return;
  ReplicaLsnGauge(req.replica_id)
      .Set(static_cast<int64_t>(req.applied_lsn));
  ReplicaLagGauge(req.replica_id)
      .Set(static_cast<int64_t>(
          primary_lsn > req.applied_lsn ? primary_lsn - req.applied_lsn : 0));
  std::lock_guard<std::mutex> lock(mu_);
  ReplicaState& state = replicas_[req.replica_id];
  state.applied_lsn = req.applied_lsn;
  state.shipped_lsn = shipped_lsn;
  ++state.fetches;
  state.last_seen = std::chrono::steady_clock::now();
  last_fetch_ = state.last_seen;
  if (req.applied_lsn > max_applied_lsn_) max_applied_lsn_ = req.applied_lsn;
  cv_.notify_all();
}

void WalShipper::set_on_stale_term(std::function<void(uint64_t)> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  on_stale_term_ = std::move(fn);
}

bool WalShipper::WaitForReplicaLsn(uint64_t lsn,
                                   std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  return cv_.wait_for(lock, timeout,
                      [&] { return max_applied_lsn_ >= lsn; });
}

bool WalShipper::FencedOut(std::chrono::milliseconds window) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (replicas_.empty()) return false;
  return std::chrono::steady_clock::now() - last_fetch_ > window;
}

std::vector<std::pair<std::string, WalShipper::ReplicaState>>
WalShipper::replicas() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {replicas_.begin(), replicas_.end()};
}

}  // namespace repl
}  // namespace scisparql
