#ifndef SCISPARQL_REPL_FAILOVER_H_
#define SCISPARQL_REPL_FAILOVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "client/server.h"
#include "common/status.h"
#include "engine/ssdm.h"
#include "repl/replica.h"

namespace scisparql {
namespace repl {

/// Automatic primary failover: failure detection, deterministic candidate
/// selection, and fenced promotion. One coordinator runs per node,
/// alongside its SsdmServer, and owns the node's ReplicaApplier (if any).
///
/// Replica ticks probe the current primary every `probe_interval`;
/// `liveness_misses` consecutive failures (refused dials, black-holed
/// connects, timeouts) trigger an election. Elections are quorum-free and
/// deterministic: every reachable node is probed, and
///
///   - a reachable live primary at a term >= ours is simply (re)adopted —
///     someone else already won;
///   - otherwise the winner is the replica with the highest applied LSN,
///     node id as the tie-break (highest wins). Every surviving replica
///     probes the same peers, so all of them compute the same winner.
///
/// Only the winner acts: it stops its applier and promotes its engine
/// under the scheduler's exclusive lock — replay is already at tip (the
/// applier streamed to its last fetch), so promotion is just the fencing
/// term bump (a WAL record that ships to every future follower) plus the
/// role flip. Losers back off and re-probe until the winner's promotion
/// becomes visible, then re-point their appliers at it.
///
/// Primary ticks watch for deposition: a peer probing as a primary with a
/// higher term, or the shipper observing a higher-term fetch (the
/// stale-term callback), demotes this node — engine back to replica mode,
/// applier restarted against the new primary with force_resync, because a
/// deposed primary's WAL may hold writes the new timeline never had.
///
/// What this does NOT give: with no quorum, replicas partitioned from
/// each other can both promote (split brain). The fencing term bounds the
/// damage — whichever promotion any node or router observes last (highest
/// term) wins, stale primaries fence themselves (`fence_timeout`) and are
/// refused by term-checked fetches — but writes acked by an abandoned
/// timeline under sync_ack_timeout=0 are lost. Run with sync-ack on when
/// that matters.
class FailoverCoordinator {
 public:
  struct Peer {
    std::string host = "127.0.0.1";
    int port = 0;
  };

  struct Options {
    /// Other nodes' client ports (NOT this node's own).
    std::vector<Peer> peers;

    /// Where this node's applier points at startup. Port 0 = this node
    /// starts as the primary (no applier until deposed).
    Peer initial_primary;

    std::chrono::milliseconds probe_interval{100};
    /// Consecutive failed probes of the primary before an election.
    int liveness_misses = 5;
    /// Per-probe connect/read budget. Bounds the accept-then-hang case:
    /// a black-holed primary costs one probe_timeout, not forever.
    std::chrono::milliseconds probe_timeout{250};
    /// Loser's pause between election rounds while the winner promotes.
    std::chrono::milliseconds election_backoff{150};

    /// Template for appliers this coordinator creates (replica_id, retry,
    /// poll cadence, durability knobs). primary_host/port/force_resync
    /// are overwritten per adoption.
    ReplicaApplier::Options applier;
  };

  /// `engine` and `server` must outlive the coordinator; the server must
  /// already be started (the coordinator uses its scheduler and shipper).
  FailoverCoordinator(SSDM* engine, client::SsdmServer* server,
                      Options options);
  ~FailoverCoordinator();

  FailoverCoordinator(const FailoverCoordinator&) = delete;
  FailoverCoordinator& operator=(const FailoverCoordinator&) = delete;

  /// Starts the applier (when initial_primary is set), hooks the
  /// shipper's stale-term callback, and starts the tick thread.
  Status Start();

  /// Stops the tick thread and the owned applier. Idempotent.
  void Stop();

  bool is_primary() const { return !engine_->replica_mode(); }
  /// "host:port" of the primary this node follows; "" while primary.
  std::string current_primary() const;

  uint64_t elections() const { return elections_.load(); }
  uint64_t promotions() const { return promotions_.load(); }
  uint64_t demotions() const { return demotions_.load(); }

  /// Blocks until this node becomes the primary (true) or `timeout`.
  bool WaitForPrimaryRole(std::chrono::milliseconds timeout);

  /// The applier currently streaming into this node (null while primary).
  ReplicaApplier* applier() { return applier_.get(); }

 private:
  struct PeerView {
    Peer peer;
    bool reachable = false;
    bool replica = false;
    uint64_t lsn = 0;
    uint64_t term = 0;
    std::string node_id;
  };

  void Loop();
  void ReplicaTick();
  void PrimaryTick();
  /// Probes one peer with a single short-timeout dial (no retries — a
  /// dead peer must cost one probe_timeout, not a backoff ladder).
  PeerView ProbePeer(const Peer& peer);
  std::vector<PeerView> ProbeAllPeers();
  /// Full election round; may promote self or adopt a discovered primary.
  void RunElection();
  /// Stops any applier and starts a fresh one against `primary`.
  void AdoptPrimary(const Peer& primary, bool force_resync);
  /// Stops the applier and promotes the engine to term
  /// max(`observed_term`, ours) + 1 under the exclusive lock.
  void PromoteSelf(uint64_t observed_term);

  SSDM* engine_;
  client::SsdmServer* server_;
  Options options_;

  std::unique_ptr<ReplicaApplier> applier_;
  std::thread thread_;

  mutable std::mutex mu_;  // guards running_, primary_; cv pairs with it
  std::condition_variable cv_;
  bool running_ = false;
  Peer primary_;  ///< Who the applier follows; port 0 while primary.

  int misses_ = 0;  // tick-thread only
  /// Highest term seen in a rejected fetch (shipper callback) — a
  /// deposition signal for the primary tick.
  std::atomic<uint64_t> observed_term_{0};

  std::atomic<uint64_t> elections_{0};
  std::atomic<uint64_t> promotions_{0};
  std::atomic<uint64_t> demotions_{0};
};

}  // namespace repl
}  // namespace scisparql

#endif  // SCISPARQL_REPL_FAILOVER_H_
