#ifndef SCISPARQL_REPL_REPLICA_H_
#define SCISPARQL_REPL_REPLICA_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "client/server.h"
#include "common/status.h"
#include "engine/ssdm.h"
#include "repl/wire.h"

namespace scisparql {
namespace repl {

/// Replica-side apply loop: connects to a primary's server, streams
/// committed WAL batches from its shipper, and applies them continuously
/// to a local SSDM engine while that engine serves read-class and prepared
/// queries. Starting the applier flips the engine into replica mode
/// (client writes answered Unavailable, pointing at the primary); applying
/// goes through the scheduler's exclusive path so it interleaves cleanly
/// with served reads.
///
/// Falling behind the primary's WAL retention surfaces as OutOfRange on
/// fetch; the applier then pulls a full snapshot and re-bases
/// (SSDM::BootstrapFromReplication) before resuming the stream. A durable
/// replica writes the stream through to its own WAL and checkpoints
/// periodically, so a restart recovers locally and rejoins the stream at
/// its last applied LSN instead of re-bootstrapping.
///
/// Fencing terms: every fetch carries the local term, and on each
/// (re)connect the applier probes the primary first. A primary at a term
/// NEWER than ours means a promotion happened while we were away — our
/// WAL may have diverged — so the applier re-bases from a snapshot before
/// streaming. Term equality proves the local WAL is a prefix of the
/// primary's stream (the promotion record itself ships through the WAL),
/// so resuming by LSN is safe. A primary at an OLDER term is stale; the
/// applier refuses it and waits for the coordinator to re-point it.
class ReplicaApplier {
 public:
  struct Options {
    std::string replica_id = "replica";
    std::string primary_host = "127.0.0.1";
    int primary_port = 0;

    /// Connect/fetch retry and socket-timeout policy toward the primary.
    client::RemoteSession::RetryOptions retry;
    std::chrono::milliseconds session_timeout{5000};

    /// Idle poll cadence once caught up (a shipped batch restarts the next
    /// fetch immediately).
    std::chrono::milliseconds poll_interval{50};

    /// Per-fetch shipping budget; bigger batches amortize round-trips,
    /// smaller ones bound how long the apply path holds the engine.
    uint32_t max_fetch_bytes = 4u << 20;

    /// Durable replicas checkpoint their local store after this many
    /// streamed bytes, bounding restart replay. 0 disables.
    uint64_t checkpoint_every_bytes = 32ull << 20;

    /// Discard local state and re-base from a snapshot on first connect,
    /// regardless of LSN. A demoted ex-primary must set this: its WAL may
    /// hold writes the new timeline never acknowledged.
    bool force_resync = false;
  };

  ReplicaApplier(SSDM* engine, Options options);
  ~ReplicaApplier();

  ReplicaApplier(const ReplicaApplier&) = delete;
  ReplicaApplier& operator=(const ReplicaApplier&) = delete;

  /// Enters replica mode on the engine and starts the apply thread. When
  /// `sched` is non-null every engine mutation goes through
  /// sched->ExecuteExclusive (required when the engine serves concurrent
  /// reads through that scheduler); null applies directly, for embedded
  /// single-threaded use. Idempotent while running.
  Status Start(sched::QueryScheduler* sched = nullptr);

  /// Stops and joins the apply thread. The engine stays in replica mode —
  /// read-only until a new applier (or process restart) takes over.
  void Stop();

  /// Highest LSN applied locally (the engine's view).
  uint64_t applied_lsn() const { return engine_->last_lsn(); }
  /// The primary's durable LSN as of the last successful fetch.
  uint64_t primary_lsn() const {
    return primary_lsn_.load(std::memory_order_acquire);
  }
  uint64_t lag() const {
    uint64_t p = primary_lsn(), a = applied_lsn();
    return p > a ? p - a : 0;
  }
  uint64_t applies() const { return applies_.load(); }
  uint64_t bytes_received() const { return bytes_received_.load(); }
  uint64_t bootstraps() const { return bootstraps_.load(); }
  bool connected() const { return connected_.load(); }
  std::string last_error() const;

  /// Blocks until the local applied LSN reaches `lsn` (true) or `timeout`
  /// elapses (false) — the replica half of read-your-writes.
  bool WaitForLsn(uint64_t lsn, std::chrono::milliseconds timeout);

 private:
  void Loop();
  /// One connect-if-needed + fetch + apply round. Returns true when a
  /// batch was applied (poll again immediately), false when caught up or
  /// the round failed (sleep before the next round).
  bool PollOnce();
  /// Pulls a full snapshot and re-bases the local store (the OutOfRange
  /// and missed-promotion paths). True on success.
  bool Resync();
  Status ApplyExclusive(const std::function<Status(SSDM*)>& fn);
  void SetError(const Status& st);

  SSDM* engine_;
  Options options_;
  sched::QueryScheduler* sched_ = nullptr;

  std::unique_ptr<client::RemoteSession> session_;
  std::thread thread_;

  mutable std::mutex mu_;  // guards running_, last_error_; cv pairs with it
  std::condition_variable cv_;
  bool running_ = false;
  std::string last_error_;

  std::atomic<uint64_t> primary_lsn_{0};
  std::atomic<uint64_t> applies_{0};
  std::atomic<uint64_t> bytes_received_{0};
  std::atomic<uint64_t> bootstraps_{0};
  std::atomic<bool> connected_{false};
  uint64_t bytes_since_checkpoint_ = 0;  // apply-thread only
  bool resync_pending_ = false;          // apply-thread only (set in Start)
};

}  // namespace repl
}  // namespace scisparql

#endif  // SCISPARQL_REPL_REPLICA_H_
