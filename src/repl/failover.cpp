#include "repl/failover.h"

#include <algorithm>

#include "obs/metrics.h"
#include "repl/shipper.h"
#include "repl/wire.h"
#include "sched/scheduler.h"

namespace scisparql {
namespace repl {

namespace {

obs::Counter& ElectionsCounter() {
  return obs::DefaultMetrics().GetCounter(
      "ssdm_repl_elections_total", "",
      "Election rounds run by this node's failover coordinator.");
}

std::string Describe(const FailoverCoordinator::Peer& peer) {
  return peer.host + ":" + std::to_string(peer.port);
}

}  // namespace

FailoverCoordinator::FailoverCoordinator(SSDM* engine,
                                         client::SsdmServer* server,
                                         Options options)
    : engine_(engine), server_(server), options_(std::move(options)) {
  primary_ = options_.initial_primary;
}

FailoverCoordinator::~FailoverCoordinator() { Stop(); }

Status FailoverCoordinator::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_) return Status::OK();
  }
  if (server_->shipper() == nullptr || server_->scheduler() == nullptr) {
    return Status::FailedPrecondition(
        "failover coordinator requires a started server");
  }
  // A fetch carrying a newer term is the earliest deposition signal a
  // primary can get — note it and let the next tick act on it.
  server_->shipper()->set_on_stale_term([this](uint64_t t) {
    uint64_t cur = observed_term_.load(std::memory_order_relaxed);
    while (t > cur && !observed_term_.compare_exchange_weak(cur, t)) {
    }
    cv_.notify_all();
  });
  if (options_.initial_primary.port != 0) {
    AdoptPrimary(options_.initial_primary, options_.applier.force_resync);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    running_ = true;
  }
  thread_ = std::thread([this]() { Loop(); });
  return Status::OK();
}

void FailoverCoordinator::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_ && !thread_.joinable()) return;
    running_ = false;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  if (applier_ != nullptr) applier_->Stop();
}

std::string FailoverCoordinator::current_primary() const {
  std::lock_guard<std::mutex> lock(mu_);
  return primary_.port != 0 ? Describe(primary_) : std::string();
}

bool FailoverCoordinator::WaitForPrimaryRole(
    std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  return cv_.wait_for(lock, timeout,
                      [&]() { return !engine_->replica_mode(); });
}

void FailoverCoordinator::Loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, options_.probe_interval,
                   [this]() { return !running_; });
      if (!running_) return;
    }
    if (engine_->replica_mode()) {
      ReplicaTick();
    } else {
      PrimaryTick();
    }
  }
}

FailoverCoordinator::PeerView FailoverCoordinator::ProbePeer(
    const Peer& peer) {
  PeerView view;
  view.peer = peer;
  // One short-timeout dial, no retry ladder: a dead or black-holed peer
  // must cost exactly one probe_timeout.
  client::RemoteSession::RetryOptions retry;
  retry.max_attempts = 1;
  Result<client::RemoteSession> s = client::RemoteSession::Connect(
      peer.host, peer.port, options_.probe_timeout, retry);
  if (!s.ok()) return view;
  client::RemoteSession session = std::move(*s);
  Result<ReplProbeReply> reply = ProbeLsn(&session);
  if (!reply.ok()) return view;
  view.reachable = true;
  view.replica = reply->replica;
  view.lsn = reply->lsn;
  view.term = reply->term;
  view.node_id = reply->node_id;
  return view;
}

std::vector<FailoverCoordinator::PeerView>
FailoverCoordinator::ProbeAllPeers() {
  std::vector<PeerView> views;
  views.reserve(options_.peers.size());
  for (const Peer& peer : options_.peers) views.push_back(ProbePeer(peer));
  return views;
}

void FailoverCoordinator::ReplicaTick() {
  Peer primary;
  {
    std::lock_guard<std::mutex> lock(mu_);
    primary = primary_;
  }
  if (primary.port == 0) {
    // Nothing to follow (misconfiguration or a failed promotion): find a
    // primary or become one.
    RunElection();
    return;
  }
  PeerView view = ProbePeer(primary);
  if (view.reachable && !view.replica && view.term >= engine_->term()) {
    misses_ = 0;  // healthy primary
    return;
  }
  if (view.reachable) {
    // It answered, but as a replica (it was deposed) or at a stale term
    // (the cluster moved past it). No point counting misses — elect now.
    misses_ = 0;
    RunElection();
    return;
  }
  if (++misses_ >= options_.liveness_misses) {
    misses_ = 0;
    RunElection();
  }
}

void FailoverCoordinator::PrimaryTick() {
  // Deposition watch: find any peer acting as primary at a newer term —
  // either because the shipper flagged a newer-term fetch, or simply by
  // probing (a restarted ex-primary discovers its successor this way).
  std::vector<PeerView> views = ProbeAllPeers();
  const PeerView* newer = nullptr;
  for (const PeerView& v : views) {
    if (v.reachable && !v.replica && v.term > engine_->term() &&
        (newer == nullptr || v.term > newer->term)) {
      newer = &v;
    }
  }
  if (newer == nullptr) {
    // A stale-term fetch without a visible successor: stay put (the fence
    // lease already blocks writes) and keep probing until the new primary
    // becomes reachable.
    return;
  }
  demotions_.fetch_add(1);
  Status st = server_->scheduler()->ExecuteExclusive([&](SSDM* engine) {
    engine->DemoteToReplica(newer->term, Describe(newer->peer));
    return Status::OK();
  });
  (void)st;  // DemoteToReplica itself cannot fail
  // Our WAL may hold writes the new timeline never acknowledged —
  // force_resync discards them for a snapshot of the winner's state.
  AdoptPrimary(newer->peer, /*force_resync=*/true);
  misses_ = 0;
}

void FailoverCoordinator::RunElection() {
  elections_.fetch_add(1);
  ElectionsCounter().Add();
  std::vector<PeerView> views = ProbeAllPeers();
  uint64_t my_term = engine_->term();
  uint64_t max_term = my_term;
  const PeerView* live_primary = nullptr;
  for (const PeerView& v : views) {
    if (!v.reachable) continue;
    max_term = std::max(max_term, v.term);
    if (!v.replica && v.term >= my_term &&
        (live_primary == nullptr || v.term > live_primary->term)) {
      live_primary = &v;
    }
  }
  if (live_primary != nullptr) {
    // Someone already won (or the "failure" was our link, not the
    // primary). Follow it; the applier's own term probe decides whether a
    // snapshot re-base is needed.
    AdoptPrimary(live_primary->peer, /*force_resync=*/false);
    misses_ = 0;
    return;
  }
  // Deterministic candidate selection: highest applied LSN wins, node id
  // breaks ties. Every reachable replica probes the same peers, so every
  // survivor computes the same winner; only the winner acts.
  uint64_t my_lsn = engine_->last_lsn();
  const std::string& my_id = engine_->node_id();
  bool self_wins = true;
  for (const PeerView& v : views) {
    if (!v.reachable || !v.replica) continue;
    if (v.lsn > my_lsn || (v.lsn == my_lsn && v.node_id > my_id)) {
      self_wins = false;
      break;
    }
  }
  if (self_wins) {
    PromoteSelf(max_term);
    return;
  }
  // Loser: give the winner a beat to promote, then the next tick's probe
  // of the old primary fails again, re-enters here, and finds the winner
  // as a live primary.
  std::this_thread::sleep_for(options_.election_backoff);
}

void FailoverCoordinator::PromoteSelf(uint64_t observed_term) {
  if (applier_ != nullptr) {
    applier_->Stop();  // replay is at tip: the applier streamed to its
    applier_.reset();  // last fetch, and the old primary is gone
  }
  uint64_t new_term = std::max(observed_term, engine_->term()) + 1;
  Status st = server_->scheduler()->ExecuteExclusive(
      [&](SSDM* engine) { return engine->Promote(new_term); });
  if (!st.ok()) {
    // Could not write the term bump (e.g. local store degraded). Stay a
    // replica; the next tick re-elects — with this node's store broken,
    // another candidate takes over.
    Peer old;
    {
      std::lock_guard<std::mutex> lock(mu_);
      old = primary_;
    }
    if (old.port != 0) AdoptPrimary(old, /*force_resync=*/false);
    return;
  }
  promotions_.fetch_add(1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    primary_ = Peer{};
  }
  cv_.notify_all();
}

void FailoverCoordinator::AdoptPrimary(const Peer& primary,
                                       bool force_resync) {
  if (applier_ != nullptr) applier_->Stop();
  applier_.reset();
  ReplicaApplier::Options o = options_.applier;
  o.primary_host = primary.host;
  o.primary_port = primary.port;
  o.force_resync = force_resync;
  applier_ = std::make_unique<ReplicaApplier>(engine_, o);
  Status st = applier_->Start(server_->scheduler());
  (void)st;  // Start only fails before the server runs
  {
    std::lock_guard<std::mutex> lock(mu_);
    primary_ = primary;
  }
  cv_.notify_all();
}

}  // namespace repl
}  // namespace scisparql
