#include "repl/replica.h"

#include "engine/durability.h"
#include "obs/metrics.h"
#include "sched/scheduler.h"

namespace scisparql {
namespace repl {

namespace {

obs::Gauge& AppliedLsnGauge(const std::string& id) {
  return obs::DefaultMetrics().GetGauge(
      "ssdm_repl_applied_lsn", "replica=\"" + id + "\"",
      "LSN this replica has applied locally.");
}

obs::Gauge& ConnectedGauge(const std::string& id) {
  return obs::DefaultMetrics().GetGauge(
      "ssdm_repl_connected", "replica=\"" + id + "\"",
      "1 while the replica's apply loop holds a session to the primary.");
}

obs::Counter& AppliesCounter(const std::string& id) {
  return obs::DefaultMetrics().GetCounter(
      "ssdm_repl_applies_total", "replica=\"" + id + "\"",
      "Shipped batch runs applied by this replica.");
}

obs::Counter& ReceivedBytesCounter(const std::string& id) {
  return obs::DefaultMetrics().GetCounter(
      "ssdm_repl_bytes_received_total", "replica=\"" + id + "\"",
      "Raw WAL bytes received from the primary.");
}

obs::Counter& BootstrapCounter(const std::string& id) {
  return obs::DefaultMetrics().GetCounter(
      "ssdm_repl_bootstraps_total", "replica=\"" + id + "\"",
      "Full snapshot re-bases after falling behind WAL retention.");
}

}  // namespace

ReplicaApplier::ReplicaApplier(SSDM* engine, Options options)
    : engine_(engine), options_(std::move(options)) {}

ReplicaApplier::~ReplicaApplier() { Stop(); }

Status ReplicaApplier::Start(sched::QueryScheduler* sched) {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return Status::OK();
  sched_ = sched;
  resync_pending_ = options_.force_resync;
  engine_->EnterReplicaMode(options_.primary_host + ":" +
                            std::to_string(options_.primary_port));
  running_ = true;
  thread_ = std::thread([this]() { Loop(); });
  return Status::OK();
}

void ReplicaApplier::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_ && !thread_.joinable()) return;
    running_ = false;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  session_.reset();
  connected_.store(false);
  ConnectedGauge(options_.replica_id).Set(0);
}

std::string ReplicaApplier::last_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_error_;
}

void ReplicaApplier::SetError(const Status& st) {
  std::lock_guard<std::mutex> lock(mu_);
  last_error_ = st.ToString();
}

bool ReplicaApplier::WaitForLsn(uint64_t lsn,
                                std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  return cv_.wait_for(lock, timeout,
                      [&]() { return engine_->last_lsn() >= lsn; });
}

Status ReplicaApplier::ApplyExclusive(
    const std::function<Status(SSDM*)>& fn) {
  if (sched_ != nullptr) return sched_->ExecuteExclusive(fn);
  return fn(engine_);
}

void ReplicaApplier::Loop() {
  while (true) {
    bool progressed = PollOnce();
    std::unique_lock<std::mutex> lock(mu_);
    if (!running_) return;
    if (!progressed) {
      // Caught up (or failed): idle until the next poll tick. Stop() wakes
      // the wait so shutdown never stalls a full interval.
      cv_.wait_for(lock, options_.poll_interval, [this]() { return !running_; });
      if (!running_) return;
    }
  }
}

bool ReplicaApplier::PollOnce() {
  if (session_ == nullptr) {
    Result<client::RemoteSession> s = client::RemoteSession::Connect(
        options_.primary_host, options_.primary_port,
        options_.session_timeout, options_.retry);
    if (!s.ok()) {
      SetError(s.status());
      connected_.store(false);
      ConnectedGauge(options_.replica_id).Set(0);
      return false;
    }
    session_ = std::make_unique<client::RemoteSession>(std::move(*s));
    // Probe before streaming: the primary's term decides whether our local
    // WAL is resumable (same term ⇒ prefix of its stream) or poisoned by a
    // missed promotion (newer term ⇒ full re-base).
    Result<ReplProbeReply> probe = ProbeLsn(session_.get());
    if (!probe.ok()) {
      SetError(probe.status());
      session_.reset();
      return false;
    }
    if (probe->replica) {
      SetError(Status::Unavailable(
          "configured primary is itself a replica; awaiting failover"));
      session_.reset();
      return false;
    }
    if (probe->term < engine_->term()) {
      SetError(Status::WrongTerm(
          "primary " + probe->node_id + " is at stale term " +
          std::to_string(probe->term) + " (ours is " +
          std::to_string(engine_->term()) + ")"));
      session_.reset();
      return false;
    }
    if (probe->term > engine_->term()) resync_pending_ = true;
    connected_.store(true);
    ConnectedGauge(options_.replica_id).Set(1);
  }

  if (resync_pending_) {
    if (!Resync()) return false;
    resync_pending_ = false;
    return true;
  }

  ReplFetchRequest fetch;
  fetch.replica_id = options_.replica_id;
  fetch.after_lsn = engine_->last_lsn();
  fetch.applied_lsn = fetch.after_lsn;
  fetch.max_bytes = options_.max_fetch_bytes;
  fetch.term = engine_->term();
  Result<ReplBatchReply> reply = FetchBatch(session_.get(), fetch);
  if (!reply.ok()) {
    if (reply.status().code() == StatusCode::kOutOfRange) {
      // Fell behind WAL retention: full resync, then resume streaming from
      // the snapshot's LSN.
      return Resync();
    }
    SetError(reply.status());
    // Transport trouble (or a WrongTerm from a stale primary): drop the
    // session so the next round redials — and re-probes — with backoff.
    session_.reset();
    connected_.store(false);
    ConnectedGauge(options_.replica_id).Set(0);
    return false;
  }
  if (reply->term > engine_->term()) {
    // The stream itself ships the kTermBump record, but the reply header
    // may carry the news first (frames still in flight). Adopt eagerly so
    // our next fetch is not mistaken for a stale one.
    engine_->AdoptTerm(reply->term);
  }

  primary_lsn_.store(reply->primary_lsn, std::memory_order_release);
  if (reply->frames.empty()) {
    cv_.notify_all();  // callers waiting on an LSN we already hold
    return false;      // caught up; idle until the next tick
  }

  bytes_received_.fetch_add(reply->frames.size());
  ReceivedBytesCounter(options_.replica_id).Add(reply->frames.size());
  Status applied = ApplyExclusive([&](SSDM* engine) {
    return engine->ApplyReplicationFrames(reply->frames);
  });
  if (!applied.ok()) {
    SetError(applied);
    return false;
  }
  applies_.fetch_add(1);
  AppliesCounter(options_.replica_id).Add();
  AppliedLsnGauge(options_.replica_id)
      .Set(static_cast<int64_t>(engine_->last_lsn()));
  cv_.notify_all();

  // Bound restart replay on durable replicas: checkpoint after enough
  // streamed bytes. Failure degrades the local store (sticky read-only
  // inside the engine) but never stops replication.
  bytes_since_checkpoint_ += reply->frames.size();
  if (options_.checkpoint_every_bytes > 0 &&
      bytes_since_checkpoint_ >= options_.checkpoint_every_bytes &&
      engine_->durability() != nullptr && !engine_->read_only()) {
    bytes_since_checkpoint_ = 0;
    Status ck = ApplyExclusive([](SSDM* engine) {
      return engine->CheckpointAsReplica().status();
    });
    if (!ck.ok()) SetError(ck);
  }
  return true;
}

bool ReplicaApplier::Resync() {
  Result<ReplSnapshotReply> snap = FetchSnapshot(session_.get());
  if (!snap.ok()) {
    SetError(snap.status());
    return false;
  }
  Status applied = ApplyExclusive([&](SSDM* engine) {
    // Adopt the snapshot's term before re-basing so the checkpoint inside
    // Bootstrap stamps it into the new store's footer.
    engine->AdoptTerm(snap->term);
    return engine->BootstrapFromReplication(snap->sections, snap->lsn);
  });
  if (!applied.ok()) {
    SetError(applied);
    return false;
  }
  bootstraps_.fetch_add(1);
  BootstrapCounter(options_.replica_id).Add();
  primary_lsn_.store(std::max(primary_lsn_.load(), snap->lsn),
                     std::memory_order_release);
  AppliedLsnGauge(options_.replica_id)
      .Set(static_cast<int64_t>(engine_->last_lsn()));
  cv_.notify_all();
  return true;
}

}  // namespace repl
}  // namespace scisparql
