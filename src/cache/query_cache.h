#ifndef SCISPARQL_CACHE_QUERY_CACHE_H_
#define SCISPARQL_CACHE_QUERY_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cache/plan_memo.h"
#include "common/status.h"
#include "engine/query_api.h"
#include "rdf/graph.h"
#include "sparql/ast.h"
#include "sparql/functions.h"

namespace scisparql {
namespace cache {

/// Per-instance cache counters, snapshotted for tests and the shell. The
/// same events are mirrored into the process-wide obs registry under
/// ssdm_cache_* families.
struct CacheCounters {
  uint64_t plan_hits = 0;
  uint64_t plan_misses = 0;
  uint64_t plan_invalidations = 0;  ///< memoized BGP orders dropped
  uint64_t result_hits = 0;
  uint64_t result_misses = 0;
  uint64_t result_invalidations = 0;
  uint64_t result_evictions = 0;

  std::string ToString() const;
};

/// A PREPARE'd statement: named, with positional ?parameters and a parsed
/// body shared by every EXECUTE. `generation` distinguishes re-PREPAREs of
/// the same name in result-cache keys, and `memo` carries the body's BGP
/// join orders across executions.
struct PreparedStatement {
  std::string name;
  std::vector<std::string> params;
  std::shared_ptr<const ast::SelectQuery> body;
  uint64_t generation = 1;
  std::shared_ptr<PlanMemo> memo;
};

/// What a query's result depends on, for invalidation. Graph dependencies
/// are recorded by IRI ("" = the default graph) with the version() observed
/// at execution time — never by pointer, so a dropped graph cannot dangle.
struct ResultDeps {
  /// Sentinel version for "this named graph did not exist"; the entry stays
  /// valid only while the graph remains absent.
  static constexpr uint64_t kAbsentGraph = ~0ull;

  std::vector<std::pair<std::string, uint64_t>> graphs;
  /// True when the query's reach cannot be pinned to specific graphs
  /// (variable GRAPH clause, SciSPARQL-defined function calls): all graph
  /// versions are recorded and the named-graph count must not change.
  bool whole_dataset = false;
  size_t named_count = 0;
  /// FunctionRegistry::generation() at execution, or 0 when the query
  /// calls no registry function (then redefinitions don't invalidate it).
  uint64_t registry_generation = 0;
};

/// Static cacheability analysis of a query body (AST walk).
struct CacheAnalysis {
  /// False when the query calls a foreign/unknown or non-deterministic
  /// function (RAND, NOW, UUID, ...) — its outcome must not be cached.
  bool cacheable = true;
  bool whole_dataset = false;
  /// Constant graph IRIs referenced via GRAPH / FROM / FROM NAMED.
  std::set<std::string> graphs;
  /// True when a SciSPARQL-defined function (parameterized view) is
  /// called: the result then also depends on the registry generation.
  bool uses_registry = false;
};

CacheAnalysis AnalyzeQuery(const ast::SelectQuery& q,
                           const sparql::FunctionRegistry* registry);

/// Builds ResultDeps for a query against the current dataset state from
/// its analysis (records versions of the referenced — or all — graphs).
ResultDeps DepsFor(const CacheAnalysis& analysis, const Dataset& dataset,
                   uint64_t registry_generation);

/// Two-layer query cache behind the QueryRequest/QueryOutcome API, plus
/// the prepared-statement registry.
///
///  - Plan cache: normalized statement text -> parsed AST + a PlanMemo of
///    optimized BGP orders. The AST is data-independent; the memo entries
///    are keyed with graph version() snapshots and revalidated on drift
///    (see PlanMemo).
///  - Result cache (opt-in): read-only SELECT/ASK outcomes under an LRU
///    byte budget that counts materialized array payloads. Entries are
///    validated against their ResultDeps on every lookup and swept eagerly
///    after updates, so an INSERT into a referenced graph observably
///    invalidates them.
///
/// An epoch bump (InvalidateAll — LoadSnapshot, CLEAR ALL) drops every
/// cached result and every memoized join order at once, covering the cases
/// where graph *objects* are destroyed rather than mutated. Parsed ASTs
/// are data-independent and survive the bump.
///
/// Thread-safe: lookups run concurrently under the scheduler's shared
/// engine lock; sweeps run under its exclusive lock but take the internal
/// mutex anyway.
class QueryCache {
 public:
  struct Config {
    bool plan_cache = true;
    /// The result cache is opt-in (SSDM::EnableResultCache).
    bool result_cache = false;
    size_t result_budget_bytes = 8u << 20;
  };

  struct CachedPlan {
    ast::Statement stmt;
    std::shared_ptr<PlanMemo> memo;
  };

  QueryCache() = default;
  explicit QueryCache(const Config& config) : config_(config) {}

  const Config& config() const { return config_; }
  void Configure(const Config& c);

  // --- Plan cache. ---

  bool LookupPlan(const std::string& key, CachedPlan* out);
  void StorePlan(const std::string& key, CachedPlan plan);

  // --- Result cache. ---

  /// Validates the entry's deps against the live dataset before serving
  /// it; a stale entry is dropped (counted as an invalidation) and the
  /// lookup misses. `count_miss` lets the scheduler's speculative fast
  /// path probe without inflating the miss counter.
  bool LookupResult(const std::string& key, const Dataset& dataset,
                    uint64_t registry_generation, QueryOutcome* out,
                    bool count_miss = true);

  void StoreResult(const std::string& key, const QueryOutcome& outcome,
                   ResultDeps deps);

  /// Eagerly drops result entries and memoized plans stale against the
  /// current dataset — called after every successful update so the obs
  /// invalidation counters move with the write, not the next read.
  void Sweep(const Dataset& dataset, uint64_t registry_generation);

  /// Epoch bump: drops all results and memoized orders (graph objects
  /// were destroyed, not just mutated — LoadSnapshot, CLEAR ALL). Parsed
  /// ASTs stay valid and are kept.
  void InvalidateAll();
  uint64_t epoch() const;

  // --- Prepared statements. ---

  Status DefinePrepared(const std::string& name,
                        std::vector<std::string> params,
                        std::shared_ptr<const ast::SelectQuery> body);
  std::shared_ptr<const PreparedStatement> FindPrepared(
      const std::string& name) const;
  std::vector<std::string> PreparedNames() const;

  // --- Introspection. ---

  CacheCounters counters() const;
  size_t result_bytes() const;
  size_t result_entries() const;
  size_t plan_entries() const;

  /// Approximate retained bytes of an outcome (terms + materialized array
  /// payloads); used for the LRU budget.
  static size_t EstimateOutcomeBytes(const QueryOutcome& outcome);

 private:
  struct ResultEntry {
    QueryOutcome outcome;
    ResultDeps deps;
    size_t bytes = 0;
    uint64_t epoch = 0;
    std::list<std::string>::iterator lru_pos;
  };

  bool DepsValid(const ResultDeps& deps, const Dataset& dataset,
                 uint64_t registry_generation) const;
  void EraseResultLocked(std::unordered_map<std::string, ResultEntry>::iterator
                             it);
  void UpdateGaugesLocked();

  mutable std::mutex mu_;
  Config config_;
  uint64_t epoch_ = 1;

  std::unordered_map<std::string, CachedPlan> plans_;

  std::unordered_map<std::string, ResultEntry> results_;
  std::list<std::string> lru_;  ///< front = most recently used
  size_t result_bytes_ = 0;

  std::map<std::string, std::shared_ptr<const PreparedStatement>> prepared_;

  CacheCounters counters_;
};

}  // namespace cache
}  // namespace scisparql

#endif  // SCISPARQL_CACHE_QUERY_CACHE_H_
