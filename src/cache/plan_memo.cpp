#include "cache/plan_memo.h"

#include "obs/metrics.h"

namespace scisparql {
namespace cache {

namespace {

obs::Counter& PlanInvalidations() {
  static obs::Counter& c = obs::DefaultMetrics().GetCounter(
      "ssdm_cache_plan_invalidations_total", "",
      "Memoized BGP join orders dropped because the underlying graph's "
      "version advanced.");
  return c;
}

}  // namespace

bool PlanMemo::Lookup(const std::string& sig, const void* graph,
                      uint64_t version, Entry* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(sig);
  if (it == map_.end()) return false;
  if (it->second.graph != graph || it->second.graph_version != version) {
    map_.erase(it);
    ++invalidations_;
    PlanInvalidations().Add();
    return false;
  }
  *out = it->second;
  return true;
}

void PlanMemo::Insert(const std::string& sig, Entry e) {
  std::lock_guard<std::mutex> lock(mu_);
  if (map_.size() >= kMaxEntries) map_.clear();
  map_[sig] = std::move(e);
}

void PlanMemo::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
}

size_t PlanMemo::SweepAgainst(
    const std::vector<std::pair<const void*, uint64_t>>& live) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t dropped = 0;
  for (auto it = map_.begin(); it != map_.end();) {
    bool valid = false;
    for (const auto& [g, v] : live) {
      if (it->second.graph == g) {
        valid = it->second.graph_version == v;
        break;
      }
    }
    if (valid) {
      ++it;
    } else {
      it = map_.erase(it);
      ++dropped;
    }
  }
  if (dropped > 0) {
    invalidations_ += dropped;
    PlanInvalidations().Add(dropped);
  }
  return dropped;
}

size_t PlanMemo::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

uint64_t PlanMemo::invalidations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return invalidations_;
}

}  // namespace cache
}  // namespace scisparql
