#ifndef SCISPARQL_CACHE_PLAN_MEMO_H_
#define SCISPARQL_CACHE_PLAN_MEMO_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace scisparql {
namespace cache {

/// Memo of optimized BGP join orders for one cached statement. The
/// executor plans basic graph patterns at execution time (bound variables
/// are resolved to constants first), so the memo key is a signature of the
/// *resolved* pattern descriptions plus the pushed filter hints — not the
/// query text. Each entry remembers the graph it was planned against and
/// that graph's version(); a lookup whose version differs drops the entry
/// and reports an invalidation, so join-order decisions are revalidated
/// after data drift instead of blindly reused.
///
/// The memo never dereferences its stored graph pointer — it is an
/// identity only — so entries cannot touch freed graphs. The owning
/// QueryCache clears memos wholesale on epoch bumps (LoadSnapshot,
/// CLEAR ALL), which is when graph objects actually die.
///
/// Thread-safe: the scheduler runs concurrent readers over shared plans.
class PlanMemo {
 public:
  struct Entry {
    std::vector<size_t> order;  ///< position -> input pattern index
    std::vector<int64_t> est;   ///< cumulative row estimate per step
    bool reordered = false;
    const void* graph = nullptr;  ///< identity of the graph planned against
    uint64_t graph_version = 0;   ///< its version() at planning time
  };

  /// True (and *out filled) when `sig` is memoized against exactly this
  /// (graph, version). A stale entry is erased and counted as a plan
  /// invalidation.
  bool Lookup(const std::string& sig, const void* graph, uint64_t version,
              Entry* out);

  void Insert(const std::string& sig, Entry e);

  /// Drops every memoized order.
  void Clear();

  /// Drops entries whose graph is absent from `live` or present with a
  /// different version; returns how many were dropped. `live` pairs graph
  /// identities with their current version().
  size_t SweepAgainst(
      const std::vector<std::pair<const void*, uint64_t>>& live);

  size_t size() const;

  /// Stale entries dropped by Lookup/SweepAgainst over this memo's
  /// lifetime.
  uint64_t invalidations() const;

 private:
  /// Safety valve: a prepared statement executed with ever-changing
  /// arguments produces a new signature per argument set; cap the map so
  /// it cannot grow without bound.
  static constexpr size_t kMaxEntries = 512;

  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> map_;
  uint64_t invalidations_ = 0;
};

}  // namespace cache
}  // namespace scisparql

#endif  // SCISPARQL_CACHE_PLAN_MEMO_H_
