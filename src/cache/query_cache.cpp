#include "cache/query_cache.h"

#include <sstream>

#include "obs/metrics.h"
#include "rdf/dictionary.h"

namespace scisparql {
namespace cache {

namespace {

obs::Counter& CacheCounter(const char* layer, const char* event,
                           const char* help) {
  return obs::DefaultMetrics().GetCounter(
      std::string("ssdm_cache_") + layer + "_" + event + "_total", "", help);
}

obs::Counter& PlanHits() {
  static obs::Counter& c = CacheCounter(
      "plan", "hits", "Statements served from the parsed-plan cache.");
  return c;
}
obs::Counter& PlanMisses() {
  static obs::Counter& c = CacheCounter(
      "plan", "misses", "Statements that had to be parsed from scratch.");
  return c;
}
obs::Counter& ResultHits() {
  static obs::Counter& c = CacheCounter(
      "result", "hits", "Read-only outcomes served from the result cache.");
  return c;
}
obs::Counter& ResultMisses() {
  static obs::Counter& c = CacheCounter(
      "result", "misses", "Result-cache lookups that found no valid entry.");
  return c;
}
obs::Counter& ResultInvalidations() {
  static obs::Counter& c = CacheCounter(
      "result", "invalidations",
      "Cached outcomes dropped because a referenced graph's version "
      "advanced (or an epoch bump emptied the cache).");
  return c;
}
obs::Counter& ResultEvictions() {
  static obs::Counter& c = CacheCounter(
      "result", "evictions",
      "Cached outcomes evicted by the LRU byte budget.");
  return c;
}
obs::Gauge& ResultBytesGauge() {
  static obs::Gauge& g = obs::DefaultMetrics().GetGauge(
      "ssdm_cache_result_bytes", "",
      "Bytes retained by the result cache (terms + materialized array "
      "payloads).");
  return g;
}
obs::Gauge& ResultEntriesGauge() {
  static obs::Gauge& g = obs::DefaultMetrics().GetGauge(
      "ssdm_cache_result_entries", "",
      "Entries resident in the result cache.");
  return g;
}

/// QueryOutcome as a whole is move-only (the Graph alternative owns its
/// indexes); the two cacheable alternatives — rows and ask — copy fine, so
/// the cache copies per-alternative.
bool CopyReadOutcome(const QueryOutcome& in, QueryOutcome* out) {
  switch (in.kind()) {
    case QueryOutcome::Kind::kRows:
      out->value = std::get<sparql::QueryResult>(in.value);
      return true;
    case QueryOutcome::Kind::kAsk:
      out->value = std::get<bool>(in.value);
      return true;
    default:
      return false;
  }
}

/// Builtins whose value depends on more than their arguments: caching a
/// result computed from them would freeze time / randomness.
bool IsNonDeterministic(const std::string& fn) {
  return fn == "RAND" || fn == "NOW" || fn == "UUID" || fn == "STRUUID" ||
         fn == "BNODE";
}

struct AnalysisWalker {
  const sparql::FunctionRegistry* registry;
  CacheAnalysis* out;

  void Expr(const ast::Expr* e) {
    if (e == nullptr) return;
    if (e->kind == ast::Expr::Kind::kCall) {
      Call(e->fn);
      for (const auto& a : e->args) Expr(a.get());
    }
    Expr(e->left.get());
    Expr(e->right.get());
    Expr(e->agg_arg.get());
    Expr(e->base.get());
    for (const auto& s : e->subscripts) {
      Expr(s.index.get());
      Expr(s.lo.get());
      Expr(s.hi.get());
      Expr(s.stride.get());
    }
    if (e->exists_pattern != nullptr) Pattern(*e->exists_pattern);
  }

  void Call(const std::string& fn) {
    if (sparql::IsBuiltinFunction(fn)) {
      if (IsNonDeterministic(fn)) out->cacheable = false;
      return;
    }
    if (registry != nullptr && registry->FindDefined(fn) != nullptr) {
      // A parameterized view's body may read any graph; pin the result to
      // the whole dataset and the registry generation.
      out->uses_registry = true;
      out->whole_dataset = true;
      return;
    }
    // Foreign (C++) functions may close over arbitrary state, and unknown
    // names will error anyway: don't cache either.
    out->cacheable = false;
  }

  void Pattern(const ast::GraphPattern& p) {
    for (const ast::PatternElement& el : p.elements) {
      switch (el.kind) {
        case ast::PatternElement::Kind::kTriple:
        case ast::PatternElement::Kind::kValues:
          break;
        case ast::PatternElement::Kind::kOptional:
        case ast::PatternElement::Kind::kMinus:
        case ast::PatternElement::Kind::kGroup:
          if (el.child != nullptr) Pattern(*el.child);
          break;
        case ast::PatternElement::Kind::kGraph:
          if (el.graph_name.is_var) {
            out->whole_dataset = true;  // reach depends on live graph set
          } else {
            out->graphs.insert(el.graph_name.term.iri());
          }
          if (el.child != nullptr) Pattern(*el.child);
          break;
        case ast::PatternElement::Kind::kUnion:
          for (const auto& b : el.branches) {
            if (b != nullptr) Pattern(*b);
          }
          break;
        case ast::PatternElement::Kind::kFilter:
        case ast::PatternElement::Kind::kBind:
          Expr(el.expr.get());
          break;
        case ast::PatternElement::Kind::kSubSelect:
          if (el.subquery != nullptr) Query(*el.subquery);
          break;
      }
    }
  }

  void Query(const ast::SelectQuery& q) {
    for (const std::string& g : q.from) out->graphs.insert(g);
    for (const std::string& g : q.from_named) out->graphs.insert(g);
    for (const auto& proj : q.projections) Expr(proj.expr.get());
    Pattern(q.where);
    for (const auto& e : q.group_by) Expr(e.get());
    for (const auto& e : q.having) Expr(e.get());
    for (const auto& k : q.order_by) Expr(k.expr.get());
  }
};

}  // namespace

std::string CacheCounters::ToString() const {
  std::ostringstream out;
  out << "plan_hits=" << plan_hits << " plan_misses=" << plan_misses
      << " plan_invalidations=" << plan_invalidations
      << " result_hits=" << result_hits << " result_misses=" << result_misses
      << " result_invalidations=" << result_invalidations
      << " result_evictions=" << result_evictions;
  return out.str();
}

CacheAnalysis AnalyzeQuery(const ast::SelectQuery& q,
                           const sparql::FunctionRegistry* registry) {
  CacheAnalysis out;
  AnalysisWalker walker{registry, &out};
  walker.Query(q);
  return out;
}

ResultDeps DepsFor(const CacheAnalysis& analysis, const Dataset& dataset,
                   uint64_t registry_generation) {
  ResultDeps deps;
  deps.registry_generation =
      analysis.uses_registry ? registry_generation : 0;
  if (analysis.whole_dataset) {
    deps.whole_dataset = true;
    deps.named_count = dataset.named_graphs().size();
    deps.graphs.emplace_back("", dataset.default_graph().version());
    for (const auto& [iri, graph] : dataset.named_graphs()) {
      deps.graphs.emplace_back(iri, graph.version());
    }
    return deps;
  }
  // Every query reads the default graph (BGPs outside GRAPH clauses).
  deps.graphs.emplace_back("", dataset.default_graph().version());
  for (const std::string& iri : analysis.graphs) {
    const Graph* g = dataset.FindNamed(iri);
    deps.graphs.emplace_back(
        iri, g == nullptr ? ResultDeps::kAbsentGraph : g->version());
  }
  return deps;
}

void QueryCache::Configure(const Config& c) {
  std::lock_guard<std::mutex> lock(mu_);
  config_ = c;
  if (!config_.plan_cache) plans_.clear();
  // Shrink to a lowered budget (or drop everything when disabled).
  while (!lru_.empty() &&
         (!config_.result_cache || result_bytes_ > config_.result_budget_bytes)) {
    auto it = results_.find(lru_.back());
    EraseResultLocked(it);
  }
  UpdateGaugesLocked();
}

bool QueryCache::LookupPlan(const std::string& key, CachedPlan* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!config_.plan_cache) return false;
  auto it = plans_.find(key);
  if (it == plans_.end()) {
    ++counters_.plan_misses;
    PlanMisses().Add();
    return false;
  }
  ++counters_.plan_hits;
  PlanHits().Add();
  *out = it->second;
  return true;
}

void QueryCache::StorePlan(const std::string& key, CachedPlan plan) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!config_.plan_cache) return;
  // Same bound rationale as PlanMemo: statements are typically few, but a
  // text-generating client must not grow the map without limit.
  if (plans_.size() >= 1024) plans_.clear();
  plans_[key] = std::move(plan);
}

bool QueryCache::DepsValid(const ResultDeps& deps, const Dataset& dataset,
                           uint64_t registry_generation) const {
  if (deps.registry_generation != 0 &&
      deps.registry_generation != registry_generation) {
    return false;
  }
  if (deps.whole_dataset &&
      dataset.named_graphs().size() != deps.named_count) {
    return false;
  }
  for (const auto& [iri, version] : deps.graphs) {
    const Graph* g =
        iri.empty() ? &dataset.default_graph() : dataset.FindNamed(iri);
    if (version == ResultDeps::kAbsentGraph) {
      if (g != nullptr) return false;
      continue;
    }
    if (g == nullptr || g->version() != version) return false;
  }
  return true;
}

void QueryCache::EraseResultLocked(
    std::unordered_map<std::string, ResultEntry>::iterator it) {
  result_bytes_ -= it->second.bytes;
  lru_.erase(it->second.lru_pos);
  results_.erase(it);
}

void QueryCache::UpdateGaugesLocked() {
  ResultBytesGauge().Set(static_cast<int64_t>(result_bytes_));
  ResultEntriesGauge().Set(static_cast<int64_t>(results_.size()));
}

bool QueryCache::LookupResult(const std::string& key, const Dataset& dataset,
                              uint64_t registry_generation, QueryOutcome* out,
                              bool count_miss) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!config_.result_cache) return false;
  auto it = results_.find(key);
  if (it == results_.end()) {
    if (count_miss) {
      ++counters_.result_misses;
      ResultMisses().Add();
    }
    return false;
  }
  if (it->second.epoch != epoch_ ||
      !DepsValid(it->second.deps, dataset, registry_generation)) {
    EraseResultLocked(it);
    ++counters_.result_invalidations;
    ResultInvalidations().Add();
    UpdateGaugesLocked();
    if (count_miss) {
      ++counters_.result_misses;
      ResultMisses().Add();
    }
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  ++counters_.result_hits;
  ResultHits().Add();
  CopyReadOutcome(it->second.outcome, out);
  return true;
}

void QueryCache::StoreResult(const std::string& key,
                             const QueryOutcome& outcome, ResultDeps deps) {
  QueryOutcome::Kind kind = outcome.kind();
  if (kind != QueryOutcome::Kind::kRows && kind != QueryOutcome::Kind::kAsk) {
    return;  // only read-only SELECT/ASK outcomes are cacheable
  }
  size_t bytes = EstimateOutcomeBytes(outcome);
  std::lock_guard<std::mutex> lock(mu_);
  if (!config_.result_cache || bytes > config_.result_budget_bytes) return;
  auto it = results_.find(key);
  if (it != results_.end()) EraseResultLocked(it);
  while (result_bytes_ + bytes > config_.result_budget_bytes &&
         !lru_.empty()) {
    EraseResultLocked(results_.find(lru_.back()));
    ++counters_.result_evictions;
    ResultEvictions().Add();
  }
  lru_.push_front(key);
  ResultEntry entry;
  CopyReadOutcome(outcome, &entry.outcome);
  entry.deps = std::move(deps);
  entry.bytes = bytes;
  entry.epoch = epoch_;
  entry.lru_pos = lru_.begin();
  results_.emplace(key, std::move(entry));
  result_bytes_ += bytes;
  UpdateGaugesLocked();
}

void QueryCache::Sweep(const Dataset& dataset, uint64_t registry_generation) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t dropped = 0;
  for (auto it = results_.begin(); it != results_.end();) {
    auto next = std::next(it);
    if (it->second.epoch != epoch_ ||
        !DepsValid(it->second.deps, dataset, registry_generation)) {
      EraseResultLocked(it);
      ++dropped;
    }
    it = next;
  }
  if (dropped > 0) {
    counters_.result_invalidations += dropped;
    ResultInvalidations().Add(dropped);
    UpdateGaugesLocked();
  }
  // Revalidate memoized BGP orders against the live graphs too, so the
  // plan layer's invalidation counter moves with the write as well.
  std::vector<std::pair<const void*, uint64_t>> live;
  live.emplace_back(&dataset.default_graph(),
                    dataset.default_graph().version());
  for (const auto& [iri, graph] : dataset.named_graphs()) {
    (void)iri;
    live.emplace_back(&graph, graph.version());
  }
  size_t plan_dropped = 0;
  for (auto& [key, plan] : plans_) {
    (void)key;
    if (plan.memo != nullptr) plan_dropped += plan.memo->SweepAgainst(live);
  }
  for (auto& [name, ps] : prepared_) {
    (void)name;
    if (ps->memo != nullptr) plan_dropped += ps->memo->SweepAgainst(live);
  }
  counters_.plan_invalidations += plan_dropped;
}

void QueryCache::InvalidateAll() {
  std::lock_guard<std::mutex> lock(mu_);
  ++epoch_;
  size_t dropped = results_.size();
  results_.clear();
  lru_.clear();
  result_bytes_ = 0;
  if (dropped > 0) {
    counters_.result_invalidations += dropped;
    ResultInvalidations().Add(dropped);
  }
  size_t plan_dropped = 0;
  for (auto& [key, plan] : plans_) {
    (void)key;
    if (plan.memo != nullptr) {
      plan_dropped += plan.memo->size();
      plan.memo->Clear();
    }
  }
  for (auto& [name, ps] : prepared_) {
    (void)name;
    if (ps->memo != nullptr) {
      plan_dropped += ps->memo->size();
      ps->memo->Clear();
    }
  }
  counters_.plan_invalidations += plan_dropped;
  UpdateGaugesLocked();
}

uint64_t QueryCache::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

Status QueryCache::DefinePrepared(
    const std::string& name, std::vector<std::string> params,
    std::shared_ptr<const ast::SelectQuery> body) {
  if (name.empty()) {
    return Status::InvalidArgument("prepared statement needs a name");
  }
  if (body == nullptr) {
    return Status::InvalidArgument("prepared statement needs a query body");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto ps = std::make_shared<PreparedStatement>();
  ps->name = name;
  ps->params = std::move(params);
  ps->body = std::move(body);
  auto it = prepared_.find(name);
  ps->generation = it == prepared_.end() ? 1 : it->second->generation + 1;
  ps->memo = std::make_shared<PlanMemo>();
  prepared_[name] = std::move(ps);
  return Status::OK();
}

std::shared_ptr<const PreparedStatement> QueryCache::FindPrepared(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = prepared_.find(name);
  return it == prepared_.end() ? nullptr : it->second;
}

std::vector<std::string> QueryCache::PreparedNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(prepared_.size());
  for (const auto& [name, ps] : prepared_) {
    (void)ps;
    names.push_back(name);
  }
  return names;
}

CacheCounters QueryCache::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

size_t QueryCache::result_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return result_bytes_;
}

size_t QueryCache::result_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return results_.size();
}

size_t QueryCache::plan_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return plans_.size();
}

namespace {

size_t TermBytes(const Term& t) {
  // Struct + inline string payloads (lexical form, language tag / datatype
  // IRI) + array elements. String-heavy result sets used to evade the
  // budget because only the array share was charged.
  size_t bytes = sizeof(Term) + TermStringBytes(t);
  if (t.IsArray() && t.array() != nullptr) {
    bytes += static_cast<size_t>(t.array()->NumElements()) * 8;
  }
  return bytes;
}

}  // namespace

size_t QueryCache::EstimateOutcomeBytes(const QueryOutcome& outcome) {
  size_t bytes = sizeof(QueryOutcome);
  switch (outcome.kind()) {
    case QueryOutcome::Kind::kRows: {
      const sparql::QueryResult& r = outcome.rows();
      for (const std::string& c : r.columns) bytes += c.size() + 16;
      for (const auto& row : r.rows) {
        bytes += sizeof(row);
        for (const Term& t : row) bytes += TermBytes(t);
      }
      break;
    }
    case QueryOutcome::Kind::kGraph: {
      // CONSTRUCT / DESCRIBE result: triple structs plus the
      // dictionary-resident string bytes (each distinct term's strings
      // are interned once in the graph's dictionary).
      const Graph& g = outcome.graph();
      bytes += g.size() * sizeof(Triple) + g.dict().string_bytes();
      break;
    }
    case QueryOutcome::Kind::kInfo:
      bytes += outcome.info().size();
      break;
    default:
      break;
  }
  return bytes;
}

}  // namespace cache
}  // namespace scisparql
