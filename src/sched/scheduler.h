#ifndef SCISPARQL_SCHED_SCHEDULER_H_
#define SCISPARQL_SCHED_SCHEDULER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "engine/ssdm.h"
#include "sched/query_context.h"

namespace scisparql {
namespace sched {

/// Tuning knobs for the query scheduler.
struct SchedulerOptions {
  /// Fixed worker-pool size (clamped to >= 1).
  int workers = 4;

  /// Admission-queue bound: statements submitted while this many are
  /// already waiting are rejected with Unavailable instead of queueing
  /// unboundedly (backpressure toward the clients).
  size_t queue_capacity = 64;

  /// Deadline applied to queries submitted without one; zero = none.
  std::chrono::milliseconds default_timeout{0};
};

/// Scheduler counters, exposed through the STATS protocol verb and the
/// SsdmServer accessors. Latency sums are wall-clock execution time (lock
/// wait included — that *is* the latency a client observes) per class.
struct SchedulerStats {
  uint64_t admitted = 0;    ///< Accepted into the queue.
  uint64_t rejected = 0;    ///< Turned away at admission (queue full).
  uint64_t completed = 0;   ///< Executed and returned OK.
  uint64_t failed = 0;      ///< Executed and returned a non-OK status.
  uint64_t timed_out = 0;   ///< Ended with DeadlineExceeded (incl. in queue).
  uint64_t cancelled = 0;   ///< Ended with Cancelled.
  uint64_t reads = 0;       ///< Statements run under the shared lock.
  uint64_t writes = 0;      ///< Statements run under the exclusive lock.
  uint64_t cache_fast_path = 0;  ///< Reads served from the result cache at
                                 ///< Submit, skipping the admission queue.
  uint64_t read_micros = 0;   ///< Sum of read execution latencies (us).
  uint64_t write_micros = 0;  ///< Sum of write execution latencies (us).
  size_t queue_depth = 0;       ///< Waiting tasks right now.
  size_t queue_high_water = 0;  ///< Deepest the queue has been.

  /// "admitted=12 rejected=0 ..." — the STATS verb payload.
  std::string ToString() const;
};

/// Concurrent query scheduler for an SSDM engine: a fixed-size worker pool
/// fed by a bounded admission queue, with a reader-writer concurrency
/// model over the engine (parallel SELECTs, exclusive updates), per-query
/// deadlines and cooperative cancellation.
///
/// All statement execution routed through the scheduler is serialized
/// against the engine correctly; callers must not mutate the engine
/// directly while the scheduler is running.
class QueryScheduler {
 public:
  using Callback = std::function<void(Result<SSDM::ExecResult>)>;
  using OutcomeCallback = std::function<void(Result<QueryOutcome>)>;

  /// `engine` must outlive the scheduler. The worker pool starts
  /// immediately.
  explicit QueryScheduler(SSDM* engine, SchedulerOptions options = {});
  ~QueryScheduler();

  QueryScheduler(const QueryScheduler&) = delete;
  QueryScheduler& operator=(const QueryScheduler&) = delete;

  /// Stops accepting work, joins the workers, and fails queued tasks with
  /// Unavailable. Idempotent.
  void Stop();

  /// Non-blocking admission of a unified request: classifies the
  /// statement, converts the request's timeout into an absolute deadline
  /// *at admission* (so queue wait counts against it), applies the default
  /// deadline when the request has none, and enqueues. Returns Unavailable
  /// immediately when the queue is full or the scheduler is stopped;
  /// `done` then never runs. `done` is invoked on a worker thread exactly
  /// once otherwise.
  ///
  /// Fast path: when the engine's result cache holds a still-valid outcome
  /// for an untraced read, `done` runs inline on the submitter's thread and
  /// the request never enters the admission queue (counted in
  /// SchedulerStats::cache_fast_path). The probe uses try_lock_shared, so
  /// it never blocks the submitter behind a writer — contention simply
  /// falls back to normal admission.
  Status Submit(QueryRequest req, OutcomeCallback done);

  /// Synchronous convenience: Submit + wait.
  Result<QueryOutcome> Execute(QueryRequest req);

  /// Deprecated string-based admission; wraps Submit(QueryRequest).
  Status Submit(std::string statement, QueryContext ctx, Callback done);

  /// Deprecated synchronous convenience over the legacy result shape.
  Result<SSDM::ExecResult> Execute(const std::string& statement,
                                   QueryContext ctx = QueryContext());

  /// Runs `fn` on the caller's thread holding the engine lock exclusively,
  /// bypassing admission and classification. This is the hook for internal
  /// engine maintenance that is not a client statement — a replication
  /// applier mutating the dataset between the reads this scheduler serves.
  /// Client writes must keep going through Submit: this path ignores the
  /// queue bound, deadlines, and the rejects_writes() admission check (a
  /// replica rejects client writers but must still apply its stream).
  Status ExecuteExclusive(const std::function<Status(SSDM*)>& fn);

  SchedulerStats stats() const;
  const SchedulerOptions& options() const { return options_; }

 private:
  struct Task {
    QueryRequest req;
    QueryContext ctx;
    OutcomeCallback done;
    StatementClass cls;
    std::chrono::steady_clock::time_point enqueued;
  };

  Status SubmitTask(QueryRequest req, QueryContext ctx, OutcomeCallback done);
  void WorkerLoop();
  Result<QueryOutcome> RunTask(const Task& task);
  void FinishTask(const Task& task, const Status& status,
                  std::chrono::microseconds elapsed);

  SSDM* engine_;
  const SchedulerOptions options_;

  /// Reader-writer gate over the engine: shared for kRead, exclusive for
  /// kWrite.
  std::shared_mutex engine_mu_;

  mutable std::mutex mu_;  // guards queue_, stats_, running_
  std::condition_variable cv_;
  std::deque<Task> queue_;
  bool running_ = false;
  SchedulerStats stats_;
  std::vector<std::thread> workers_;
};

}  // namespace sched
}  // namespace scisparql

#endif  // SCISPARQL_SCHED_SCHEDULER_H_
