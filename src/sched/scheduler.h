#ifndef SCISPARQL_SCHED_SCHEDULER_H_
#define SCISPARQL_SCHED_SCHEDULER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "engine/ssdm.h"
#include "sched/query_context.h"

namespace scisparql {
namespace sched {

/// Tuning knobs for the query scheduler.
struct SchedulerOptions {
  /// Fixed worker-pool size (clamped to >= 1).
  int workers = 4;

  /// Admission-queue bound: statements submitted while this many are
  /// already waiting are rejected with Unavailable instead of queueing
  /// unboundedly (backpressure toward the clients).
  size_t queue_capacity = 64;

  /// Deadline applied to queries submitted without one; zero = none.
  std::chrono::milliseconds default_timeout{0};

  /// How often the background compactor wakes to check the differential
  /// indexes.
  std::chrono::milliseconds compact_interval{10};

  /// Pending delta operations (across all graphs) above which the
  /// compactor takes the exclusive lock and folds them into the base
  /// indexes.
  size_t compact_threshold = 512;
};

/// Scheduler counters, exposed through the STATS protocol verb and the
/// SsdmServer accessors. Latency sums are wall-clock execution time (lock
/// wait included — that *is* the latency a client observes) per class.
struct SchedulerStats {
  uint64_t admitted = 0;    ///< Accepted into the queue.
  uint64_t rejected = 0;    ///< Turned away at admission (queue full).
  uint64_t completed = 0;   ///< Executed and returned OK.
  uint64_t failed = 0;      ///< Executed and returned a non-OK status.
  uint64_t timed_out = 0;   ///< Ended with DeadlineExceeded (incl. in queue).
  uint64_t cancelled = 0;   ///< Ended with Cancelled.
  uint64_t reads = 0;       ///< Statements run under the shared lock.
  uint64_t writes = 0;      ///< Write/exclusive-class statements run.
  uint64_t escalated = 0;   ///< Shared-lock writes re-run exclusively
                            ///< (needed to create a named graph etc.).
  uint64_t compactions = 0;  ///< Background delta folds into the base
                             ///< indexes.
  uint64_t cache_fast_path = 0;  ///< Reads served from the result cache at
                                 ///< Submit, skipping the admission queue.
  uint64_t read_micros = 0;   ///< Sum of read execution latencies (us).
  uint64_t write_micros = 0;  ///< Sum of write execution latencies (us).
  size_t queue_depth = 0;       ///< Waiting tasks right now.
  size_t queue_high_water = 0;  ///< Deepest the queue has been.

  /// "admitted=12 rejected=0 ..." — the STATS verb payload.
  std::string ToString() const;
};

/// Concurrent query scheduler for an SSDM engine: a fixed-size worker pool
/// fed by a bounded admission queue, a three-class concurrency model over
/// the engine, per-query deadlines and cooperative cancellation.
///
/// Reads run in parallel under the shared lock. Write-class statements
/// (INSERT/DELETE updates) ALSO run under the shared lock: while the
/// scheduler is attached the engine is in concurrent-write mode, so
/// updates append into per-graph differential indexes and group-commit
/// their WAL batches — several writers make progress per fsync. A write
/// that turns out to need engine exclusivity (it would create a named
/// graph) is re-run under the exclusive lock (SchedulerStats::escalated).
/// Exclusive-class statements (LOAD, CLEAR, DEFINE, PREPARE, CHECKPOINT)
/// take the lock exclusively. A background compactor folds accumulated
/// deltas into the base indexes under brief exclusive sections.
///
/// All statement execution routed through the scheduler is serialized
/// against the engine correctly; callers must not mutate the engine
/// directly while the scheduler is running.
class QueryScheduler {
 public:
  using OutcomeCallback = std::function<void(Result<QueryOutcome>)>;

  /// `engine` must outlive the scheduler. The worker pool starts
  /// immediately.
  explicit QueryScheduler(SSDM* engine, SchedulerOptions options = {});
  ~QueryScheduler();

  QueryScheduler(const QueryScheduler&) = delete;
  QueryScheduler& operator=(const QueryScheduler&) = delete;

  /// Stops accepting work, joins the workers, and fails queued tasks with
  /// Unavailable. Idempotent.
  void Stop();

  /// Non-blocking admission of a unified request: classifies the
  /// statement, converts the request's timeout into an absolute deadline
  /// *at admission* (so queue wait counts against it), applies the default
  /// deadline when the request has none, and enqueues. Returns Unavailable
  /// immediately when the queue is full or the scheduler is stopped;
  /// `done` then never runs. `done` is invoked on a worker thread exactly
  /// once otherwise.
  ///
  /// Fast path: when the engine's result cache holds a still-valid outcome
  /// for an untraced read, `done` runs inline on the submitter's thread and
  /// the request never enters the admission queue (counted in
  /// SchedulerStats::cache_fast_path). The probe uses try_lock_shared, so
  /// it never blocks the submitter behind a writer — contention simply
  /// falls back to normal admission.
  Status Submit(QueryRequest req, OutcomeCallback done);

  /// Synchronous convenience: Submit + wait.
  Result<QueryOutcome> Execute(QueryRequest req);

  /// Runs `fn` on the caller's thread holding the engine lock exclusively,
  /// bypassing admission and classification. This is the hook for internal
  /// engine maintenance that is not a client statement — a replication
  /// applier mutating the dataset between the reads this scheduler serves.
  /// Client writes must keep going through Submit: this path ignores the
  /// queue bound, deadlines, and the rejects_writes() admission check (a
  /// replica rejects client writers but must still apply its stream).
  Status ExecuteExclusive(const std::function<Status(SSDM*)>& fn);

  SchedulerStats stats() const;
  const SchedulerOptions& options() const { return options_; }

 private:
  struct Task {
    QueryRequest req;
    QueryContext ctx;
    OutcomeCallback done;
    StatementClass cls;
    std::chrono::steady_clock::time_point enqueued;
  };

  Status SubmitTask(QueryRequest req, QueryContext ctx, OutcomeCallback done);
  void WorkerLoop();
  void CompactorLoop();
  Result<QueryOutcome> RunTask(const Task& task);
  void FinishTask(const Task& task, const Status& status,
                  std::chrono::microseconds elapsed);

  SSDM* engine_;
  const SchedulerOptions options_;

  /// Gate over the engine: shared for kRead and kWrite (delta admission),
  /// exclusive for kExclusive, escalated writes and compaction.
  std::shared_mutex engine_mu_;

  mutable std::mutex mu_;  // guards queue_, stats_, running_
  std::condition_variable cv_;
  std::condition_variable compact_cv_;
  std::deque<Task> queue_;
  bool running_ = false;
  SchedulerStats stats_;
  std::vector<std::thread> workers_;
  std::thread compactor_;
};

}  // namespace sched
}  // namespace scisparql

#endif  // SCISPARQL_SCHED_SCHEDULER_H_
