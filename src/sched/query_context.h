#ifndef SCISPARQL_SCHED_QUERY_CONTEXT_H_
#define SCISPARQL_SCHED_QUERY_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <memory>

#include "common/status.h"

namespace scisparql {
namespace sched {

/// Concurrency class of a statement, decided before execution so the
/// scheduler can pick the right engine lock: read statements (SELECT, ASK,
/// CONSTRUCT, DESCRIBE) run in parallel under a shared lock; write
/// statements (updates, LOAD, CLEAR, DEFINE FUNCTION) take it exclusively.
enum class StatementClass { kRead, kWrite };

/// Per-query execution context threaded from the scheduler (or any direct
/// caller) through ExecOptions into the executor's hot loops: a wall-clock
/// deadline and a cooperative cancellation flag. Both are observed at the
/// engine's iteration points (BGP join loop, property-path closure,
/// aggregate and MAP/CONDENSE loops), so a timed-out or disconnected query
/// stops mid-flight instead of running to completion.
///
/// The context is passive: whoever owns the query sets `cancel`; the
/// executor only reads it. A default-constructed context never expires and
/// is never cancelled, which keeps the uncontexted call paths free.
struct QueryContext {
  using Clock = std::chrono::steady_clock;

  /// Absolute deadline; `Clock::time_point::max()` means none.
  Clock::time_point deadline = Clock::time_point::max();

  /// Shared so a connection handler can flip it after the query was handed
  /// to a worker. Null means not cancellable.
  std::shared_ptr<std::atomic<bool>> cancel;

  static QueryContext WithTimeout(std::chrono::milliseconds timeout) {
    QueryContext ctx;
    ctx.deadline = Clock::now() + timeout;
    return ctx;
  }

  bool has_deadline() const { return deadline != Clock::time_point::max(); }

  bool cancelled() const {
    return cancel != nullptr && cancel->load(std::memory_order_relaxed);
  }

  bool expired() const {
    return has_deadline() && Clock::now() >= deadline;
  }

  /// The check the executor's loops run (amortized): Cancelled beats
  /// DeadlineExceeded so an explicit cancel reports as such even after the
  /// deadline has also passed.
  Status Check() const {
    if (cancelled()) return Status::Cancelled("query cancelled");
    if (expired()) {
      return Status::DeadlineExceeded("query deadline exceeded");
    }
    return Status::OK();
  }
};

}  // namespace sched
}  // namespace scisparql

#endif  // SCISPARQL_SCHED_QUERY_CONTEXT_H_
