#ifndef SCISPARQL_SCHED_QUERY_CONTEXT_H_
#define SCISPARQL_SCHED_QUERY_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <memory>

#include "common/status.h"

namespace scisparql {
namespace sched {

/// Concurrency class of a statement, decided before execution so the
/// scheduler can pick the right engine lock: read statements (SELECT, ASK,
/// CONSTRUCT, DESCRIBE) run in parallel under a shared lock; write
/// statements (INSERT/DELETE data and pattern updates) also run under the
/// shared lock — they append into per-graph differential indexes and
/// group-commit their WAL batches, so several writers make progress
/// concurrently; exclusive statements (LOAD, CLEAR, DEFINE FUNCTION,
/// PREPARE, CHECKPOINT, anything unrecognized) mutate engine or dataset
/// structure and take the lock exclusively.
enum class StatementClass { kRead, kWrite, kExclusive };

/// Per-query execution context threaded from the scheduler (or any direct
/// caller) through ExecOptions into the executor's hot loops: a wall-clock
/// deadline and a cooperative cancellation flag. Both are observed at the
/// engine's iteration points (BGP join loop, property-path closure,
/// aggregate and MAP/CONDENSE loops), so a timed-out or disconnected query
/// stops mid-flight instead of running to completion.
///
/// The context is passive: whoever owns the query sets `cancel`; the
/// executor only reads it. A default-constructed context never expires and
/// is never cancelled, which keeps the uncontexted call paths free.
struct QueryContext {
  using Clock = std::chrono::steady_clock;

  /// Absolute deadline; `Clock::time_point::max()` means none.
  Clock::time_point deadline = Clock::time_point::max();

  /// Shared so a connection handler can flip it after the query was handed
  /// to a worker. Null means not cancellable.
  std::shared_ptr<std::atomic<bool>> cancel;

  /// True when the statement runs with the engine held exclusively (no
  /// concurrent readers or writers). Direct callers own the engine, so the
  /// default is true; the scheduler clears it for write-class statements
  /// admitted under the shared lock, and the engine answers with the
  /// FailedPrecondition retry sentinel (SSDM::NeedsExclusiveRetry) when
  /// such a statement turns out to need exclusivity after parsing — e.g.
  /// it would create a named graph — so the scheduler re-runs it under
  /// the exclusive lock.
  bool exclusive = true;

  static QueryContext WithTimeout(std::chrono::milliseconds timeout) {
    QueryContext ctx;
    ctx.deadline = Clock::now() + timeout;
    return ctx;
  }

  bool has_deadline() const { return deadline != Clock::time_point::max(); }

  bool cancelled() const {
    return cancel != nullptr && cancel->load(std::memory_order_relaxed);
  }

  bool expired() const {
    return has_deadline() && Clock::now() >= deadline;
  }

  /// The check the executor's loops run (amortized): Cancelled beats
  /// DeadlineExceeded so an explicit cancel reports as such even after the
  /// deadline has also passed.
  Status Check() const {
    if (cancelled()) return Status::Cancelled("query cancelled");
    if (expired()) {
      return Status::DeadlineExceeded("query deadline exceeded");
    }
    return Status::OK();
  }
};

}  // namespace sched
}  // namespace scisparql

#endif  // SCISPARQL_SCHED_QUERY_CONTEXT_H_
