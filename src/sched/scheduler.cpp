#include "sched/scheduler.h"

#include <future>
#include <sstream>
#include <utility>

#include "obs/metrics.h"

namespace scisparql {
namespace sched {

namespace {

/// Scheduler metrics, registered once and shared by every scheduler in the
/// process (handles are stable; all mutations are sharded atomics).
struct SchedMetrics {
  obs::Counter& admitted;
  obs::Counter& rejected;
  obs::Counter& completed;
  obs::Counter& failed;
  obs::Counter& timed_out;
  obs::Counter& cancelled;
  obs::Counter& escalated;
  obs::Counter& compactions;
  obs::Gauge& queue_depth;
  obs::Histogram& wait_micros;
  obs::Histogram& read_micros;
  obs::Histogram& write_micros;
};

SchedMetrics& Metrics() {
  obs::MetricsRegistry& reg = obs::DefaultMetrics();
  static SchedMetrics* m = new SchedMetrics{
      reg.GetCounter("ssdm_sched_admitted_total", "",
                     "Statements accepted into the admission queue."),
      reg.GetCounter("ssdm_sched_rejected_total", "",
                     "Statements rejected at admission (queue full or "
                     "scheduler stopped)."),
      reg.GetCounter("ssdm_sched_completed_total", "",
                     "Scheduled statements that finished OK."),
      reg.GetCounter("ssdm_sched_failed_total", "",
                     "Scheduled statements that finished with an error."),
      reg.GetCounter("ssdm_sched_timeout_total", "",
                     "Scheduled statements that exceeded their deadline."),
      reg.GetCounter("ssdm_sched_cancelled_total", "",
                     "Scheduled statements cancelled by their owner."),
      reg.GetCounter("ssdm_sched_escalated_total", "",
                     "Shared-lock write statements re-run under the "
                     "exclusive lock."),
      reg.GetCounter("ssdm_sched_compactions_total", "",
                     "Background folds of differential indexes into the "
                     "base indexes."),
      reg.GetGauge("ssdm_sched_queue_depth", "",
                   "Tasks waiting in the admission queue right now."),
      reg.GetHistogram("ssdm_sched_wait_micros", "",
                       "Time from admission to a worker picking the task "
                       "up, in microseconds."),
      reg.GetHistogram("ssdm_query_micros", "class=\"read\"",
                       "End-to-end execution latency of scheduled "
                       "statements, in microseconds, by concurrency class."),
      reg.GetHistogram("ssdm_query_micros", "class=\"write\"",
                       "End-to-end execution latency of scheduled "
                       "statements, in microseconds, by concurrency class."),
  };
  return *m;
}

}  // namespace

std::string SchedulerStats::ToString() const {
  std::ostringstream out;
  out << "admitted=" << admitted << " rejected=" << rejected
      << " completed=" << completed << " failed=" << failed
      << " timed_out=" << timed_out << " cancelled=" << cancelled
      << " reads=" << reads << " writes=" << writes
      << " escalated=" << escalated << " compactions=" << compactions
      << " cache_fast_path=" << cache_fast_path
      << " read_micros=" << read_micros << " write_micros=" << write_micros
      << " queue_depth=" << queue_depth
      << " queue_high_water=" << queue_high_water;
  return out.str();
}

QueryScheduler::QueryScheduler(SSDM* engine, SchedulerOptions options)
    : engine_(engine), options_([&options]() {
        if (options.workers < 1) options.workers = 1;
        if (options.queue_capacity < 1) options.queue_capacity = 1;
        return options;
      }()) {
  running_ = true;
  // While the scheduler is attached, updates go through the differential
  // write path so the workers can run them under the shared lock.
  engine_->BeginConcurrentWrites();
  workers_.reserve(static_cast<size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
  compactor_ = std::thread([this]() { CompactorLoop(); });
}

QueryScheduler::~QueryScheduler() { Stop(); }

void QueryScheduler::Stop() {
  std::deque<Task> orphaned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    running_ = false;
    orphaned.swap(queue_);
  }
  cv_.notify_all();
  compact_cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  if (compactor_.joinable()) compactor_.join();
  // Workers and compactor are gone, so the engine is held exclusively by
  // this thread in effect; the final release folds remaining deltas and
  // returns the graphs to base mode.
  engine_->EndConcurrentWrites();
  for (Task& t : orphaned) {
    if (t.done) t.done(Status::Unavailable("scheduler stopped"));
  }
}

Status QueryScheduler::Submit(QueryRequest req, OutcomeCallback done) {
  // Cached-read fast path: an untraced read whose outcome is still valid
  // in the engine's result cache is served inline without queueing. The
  // shared-lock probe is non-blocking — if a writer holds the engine, the
  // request just takes the normal admission path.
  if (req.trace_sink == nullptr && done != nullptr) {
    bool is_read =
        req.prepared.has_value() ||
        SSDM::ClassifyStatement(req.text) == StatementClass::kRead;
    if (is_read && engine_mu_.try_lock_shared()) {
      QueryOutcome hit;
      bool served = engine_->TryCachedResult(req, &hit);
      engine_mu_.unlock_shared();
      if (served) {
        {
          std::lock_guard<std::mutex> lock(mu_);
          if (!running_) {
            ++stats_.rejected;
            Metrics().rejected.Add();
            return Status::Unavailable("scheduler stopped");
          }
          ++stats_.cache_fast_path;
        }
        done(std::move(hit));
        return Status::OK();
      }
    }
  }
  QueryContext ctx;
  if (req.timeout.count() > 0) {
    ctx = QueryContext::WithTimeout(req.timeout);
  }
  ctx.cancel = req.cancel;
  return SubmitTask(std::move(req), std::move(ctx), std::move(done));
}

Status QueryScheduler::SubmitTask(QueryRequest req, QueryContext ctx,
                                  OutcomeCallback done) {
  if (!ctx.has_deadline() && options_.default_timeout.count() > 0) {
    ctx.deadline = QueryContext::Clock::now() + options_.default_timeout;
  }
  Task task;
  // Structured prepared calls have no text to classify; they always run a
  // PREPARE'd query body, so they are reads.
  task.cls = req.prepared.has_value() ? StatementClass::kRead
                                      : SSDM::ClassifyStatement(req.text);
  task.req = std::move(req);
  task.ctx = std::move(ctx);
  task.done = std::move(done);
  task.enqueued = std::chrono::steady_clock::now();
  // Degraded or replica-mode engines reject writers at admission so they
  // don't occupy queue slots (reads keep flowing under the shared lock).
  // The engine re-checks at execution for writes already queued when the
  // flip happened.
  if (task.cls != StatementClass::kRead && engine_->rejects_writes()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.rejected;
    Metrics().rejected.Add();
    return Status::Unavailable(engine_->write_reject_reason());
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) {
      ++stats_.rejected;
      Metrics().rejected.Add();
      return Status::Unavailable("scheduler stopped");
    }
    if (queue_.size() >= options_.queue_capacity) {
      ++stats_.rejected;
      Metrics().rejected.Add();
      return Status::Unavailable("server overloaded: admission queue full");
    }
    queue_.push_back(std::move(task));
    ++stats_.admitted;
    stats_.queue_depth = queue_.size();
    if (queue_.size() > stats_.queue_high_water) {
      stats_.queue_high_water = queue_.size();
    }
    Metrics().admitted.Add();
    Metrics().queue_depth.Set(static_cast<int64_t>(queue_.size()));
  }
  cv_.notify_one();
  return Status::OK();
}

Result<QueryOutcome> QueryScheduler::Execute(QueryRequest req) {
  auto promise = std::make_shared<std::promise<Result<QueryOutcome>>>();
  std::future<Result<QueryOutcome>> future = promise->get_future();
  Status admitted = Submit(std::move(req), [promise](Result<QueryOutcome> r) {
    promise->set_value(std::move(r));
  });
  if (!admitted.ok()) return admitted;
  return future.get();
}

Status QueryScheduler::ExecuteExclusive(
    const std::function<Status(SSDM*)>& fn) {
  std::unique_lock<std::shared_mutex> lock(engine_mu_);
  return fn(engine_);
}

void QueryScheduler::WorkerLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return !running_ || !queue_.empty(); });
      if (!running_) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      stats_.queue_depth = queue_.size();
      Metrics().queue_depth.Set(static_cast<int64_t>(queue_.size()));
    }
    auto start = std::chrono::steady_clock::now();
    Metrics().wait_micros.Observe(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            start - task.enqueued)
            .count()));
    Result<QueryOutcome> result = RunTask(task);
    auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - start);
    FinishTask(task, result.status(), elapsed);
    if (task.done) task.done(std::move(result));
  }
}

Result<QueryOutcome> QueryScheduler::RunTask(const Task& task) {
  // A query that spent its whole deadline waiting in the queue fails
  // without touching the engine (and without taking the shared lock).
  Status preflight = task.ctx.Check();
  if (!preflight.ok()) return preflight;

  if (task.cls == StatementClass::kRead) {
    std::shared_lock<std::shared_mutex> lock(engine_mu_);
    return engine_->Execute(task.req, &task.ctx);
  }
  if (task.cls == StatementClass::kWrite) {
    // Differential write path: run under the shared lock with the
    // exclusivity bit cleared; the engine appends into per-graph deltas
    // and group-commits the WAL batch alongside concurrent writers.
    {
      std::shared_lock<std::shared_mutex> lock(engine_mu_);
      QueryContext shared_ctx = task.ctx;
      shared_ctx.exclusive = false;
      Result<QueryOutcome> r = engine_->Execute(task.req, &shared_ctx);
      if (r.ok() || !SSDM::NeedsExclusiveRetry(r.status())) return r;
    }
    // The statement needs engine exclusivity after all (e.g. it creates a
    // named graph): fall through and re-run under the exclusive lock.
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.escalated;
    }
    Metrics().escalated.Add();
  }
  std::unique_lock<std::shared_mutex> lock(engine_mu_);
  return engine_->Execute(task.req, &task.ctx);
}

void QueryScheduler::CompactorLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (running_) {
    compact_cv_.wait_for(lock, options_.compact_interval);
    if (!running_) break;
    lock.unlock();
    // The probe walks the dataset's graph map, which a replica resync
    // (snapshot re-base) replaces wholesale under the exclusive lock —
    // so even the cheap read needs the shared lock.
    size_t pending = 0;
    {
      std::shared_lock<std::shared_mutex> engine_lock(engine_mu_);
      pending = engine_->PendingDeltaOps();
    }
    size_t folded = 0;
    if (pending >= options_.compact_threshold) {
      std::unique_lock<std::shared_mutex> engine_lock(engine_mu_);
      folded = engine_->FoldDeltas();
    }
    lock.lock();
    if (folded > 0) {
      ++stats_.compactions;
      Metrics().compactions.Add();
    }
  }
}

void QueryScheduler::FinishTask(const Task& task, const Status& status,
                                std::chrono::microseconds elapsed) {
  uint64_t micros = static_cast<uint64_t>(elapsed.count());
  if (task.cls == StatementClass::kRead) {
    Metrics().read_micros.Observe(micros);
  } else {
    Metrics().write_micros.Observe(micros);
  }
  if (status.ok()) {
    Metrics().completed.Add();
  } else if (status.code() == StatusCode::kDeadlineExceeded) {
    Metrics().timed_out.Add();
  } else if (status.code() == StatusCode::kCancelled) {
    Metrics().cancelled.Add();
  } else {
    Metrics().failed.Add();
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (task.cls == StatementClass::kRead) {
    ++stats_.reads;
    stats_.read_micros += micros;
  } else {
    ++stats_.writes;
    stats_.write_micros += micros;
  }
  if (status.ok()) {
    ++stats_.completed;
  } else if (status.code() == StatusCode::kDeadlineExceeded) {
    ++stats_.timed_out;
  } else if (status.code() == StatusCode::kCancelled) {
    ++stats_.cancelled;
  } else {
    ++stats_.failed;
  }
}

SchedulerStats QueryScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace sched
}  // namespace scisparql
