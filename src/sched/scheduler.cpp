#include "sched/scheduler.h"

#include <future>
#include <sstream>
#include <utility>

namespace scisparql {
namespace sched {

std::string SchedulerStats::ToString() const {
  std::ostringstream out;
  out << "admitted=" << admitted << " rejected=" << rejected
      << " completed=" << completed << " failed=" << failed
      << " timed_out=" << timed_out << " cancelled=" << cancelled
      << " reads=" << reads << " writes=" << writes
      << " read_micros=" << read_micros << " write_micros=" << write_micros
      << " queue_depth=" << queue_depth
      << " queue_high_water=" << queue_high_water;
  return out.str();
}

QueryScheduler::QueryScheduler(SSDM* engine, SchedulerOptions options)
    : engine_(engine), options_([&options]() {
        if (options.workers < 1) options.workers = 1;
        if (options.queue_capacity < 1) options.queue_capacity = 1;
        return options;
      }()) {
  running_ = true;
  workers_.reserve(static_cast<size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

QueryScheduler::~QueryScheduler() { Stop(); }

void QueryScheduler::Stop() {
  std::deque<Task> orphaned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    running_ = false;
    orphaned.swap(queue_);
  }
  cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  for (Task& t : orphaned) {
    if (t.done) t.done(Status::Unavailable("scheduler stopped"));
  }
}

Status QueryScheduler::Submit(std::string statement, QueryContext ctx,
                              Callback done) {
  if (!ctx.has_deadline() && options_.default_timeout.count() > 0) {
    ctx.deadline = QueryContext::Clock::now() + options_.default_timeout;
  }
  Task task;
  task.cls = SSDM::ClassifyStatement(statement);
  task.text = std::move(statement);
  task.ctx = std::move(ctx);
  task.done = std::move(done);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) {
      ++stats_.rejected;
      return Status::Unavailable("scheduler stopped");
    }
    if (queue_.size() >= options_.queue_capacity) {
      ++stats_.rejected;
      return Status::Unavailable("server overloaded: admission queue full");
    }
    queue_.push_back(std::move(task));
    ++stats_.admitted;
    stats_.queue_depth = queue_.size();
    if (queue_.size() > stats_.queue_high_water) {
      stats_.queue_high_water = queue_.size();
    }
  }
  cv_.notify_one();
  return Status::OK();
}

Result<SSDM::ExecResult> QueryScheduler::Execute(const std::string& statement,
                                                 QueryContext ctx) {
  auto promise = std::make_shared<std::promise<Result<SSDM::ExecResult>>>();
  std::future<Result<SSDM::ExecResult>> future = promise->get_future();
  Status admitted =
      Submit(statement, std::move(ctx),
             [promise](Result<SSDM::ExecResult> r) {
               promise->set_value(std::move(r));
             });
  if (!admitted.ok()) return admitted;
  return future.get();
}

void QueryScheduler::WorkerLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return !running_ || !queue_.empty(); });
      if (!running_) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      stats_.queue_depth = queue_.size();
    }
    auto start = std::chrono::steady_clock::now();
    Result<SSDM::ExecResult> result = RunTask(task);
    auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - start);
    FinishTask(task, result.status(), elapsed);
    if (task.done) task.done(std::move(result));
  }
}

Result<SSDM::ExecResult> QueryScheduler::RunTask(const Task& task) {
  // A query that spent its whole deadline waiting in the queue fails
  // without touching the engine (and without taking the shared lock).
  Status preflight = task.ctx.Check();
  if (!preflight.ok()) return preflight;

  if (task.cls == StatementClass::kRead) {
    std::shared_lock<std::shared_mutex> lock(engine_mu_);
    return engine_->Execute(task.text, &task.ctx);
  }
  std::unique_lock<std::shared_mutex> lock(engine_mu_);
  return engine_->Execute(task.text, &task.ctx);
}

void QueryScheduler::FinishTask(const Task& task, const Status& status,
                                std::chrono::microseconds elapsed) {
  std::lock_guard<std::mutex> lock(mu_);
  if (task.cls == StatementClass::kRead) {
    ++stats_.reads;
    stats_.read_micros += static_cast<uint64_t>(elapsed.count());
  } else {
    ++stats_.writes;
    stats_.write_micros += static_cast<uint64_t>(elapsed.count());
  }
  if (status.ok()) {
    ++stats_.completed;
  } else if (status.code() == StatusCode::kDeadlineExceeded) {
    ++stats_.timed_out;
  } else if (status.code() == StatusCode::kCancelled) {
    ++stats_.cancelled;
  } else {
    ++stats_.failed;
  }
}

SchedulerStats QueryScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace sched
}  // namespace scisparql
