#ifndef SCISPARQL_ARRAY_ARRAY_H_
#define SCISPARQL_ARRAY_ARRAY_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

namespace scisparql {

/// Element types supported by SciSPARQL numeric arrays. The paper's model
/// (Section 5.2) stores homogeneous numeric multidimensional arrays; we
/// support 64-bit integers and IEEE doubles, both 8 bytes wide so views can
/// share buffers uniformly.
enum class ElementType : uint8_t {
  kInt64 = 0,
  kDouble = 1,
};

/// Size in bytes of one element of the given type (always 8 here, kept as a
/// function so the storage layer does not hard-code it).
inline int64_t ElementSize(ElementType) { return 8; }

const char* ElementTypeName(ElementType t);

/// A resolved (0-based) subscript applied to one array dimension, produced
/// from the language-level 1-based dereference syntax `?a[i, lo:hi:stride]`.
struct Sub {
  /// kIndex selects a single coordinate and removes the dimension;
  /// kRange keeps the dimension with `count` elements starting at `lo`
  /// with step `step` (step may be negative).
  enum class Kind : uint8_t { kIndex, kRange };

  Kind kind = Kind::kIndex;
  int64_t index = 0;  ///< for kIndex
  int64_t lo = 0;     ///< for kRange: first selected coordinate
  int64_t count = 0;  ///< for kRange: number of selected coordinates
  int64_t step = 1;   ///< for kRange: distance between coordinates

  static Sub Index(int64_t i) {
    Sub s;
    s.kind = Kind::kIndex;
    s.index = i;
    return s;
  }
  static Sub Range(int64_t lo, int64_t count, int64_t step = 1) {
    Sub s;
    s.kind = Kind::kRange;
    s.lo = lo;
    s.count = count;
    s.step = step;
    return s;
  }
  /// Selects the whole dimension of length `n`.
  static Sub All(int64_t n) { return Range(0, n, 1); }
};

/// Dense numeric multidimensional array with NumPy-style view semantics:
/// the logical array is defined by (shape, strides, offset) over a shared
/// element buffer, so slicing is O(rank) and never copies. Layout of a
/// freshly created array is row-major ("C order"), matching the linear
/// chunked layout used by the external storage back-ends (Chapter 6).
class NumericArray {
 public:
  /// Empty rank-1 array of doubles.
  NumericArray();

  /// Allocates a zero-initialized array.
  static NumericArray Zeros(ElementType etype, std::vector<int64_t> shape);

  /// Builds an array from row-major data. Fails if the element count does
  /// not match the shape product.
  static Result<NumericArray> FromInts(std::vector<int64_t> shape,
                                       std::vector<int64_t> data);
  static Result<NumericArray> FromDoubles(std::vector<int64_t> shape,
                                          std::vector<double> data);

  /// Wraps an existing raw buffer (used by the storage layer when
  /// materializing proxies). `buffer` holds `offset + max-span` elements.
  static NumericArray FromBuffer(ElementType etype,
                                 std::vector<int64_t> shape,
                                 std::shared_ptr<std::vector<uint8_t>> buffer);

  ElementType etype() const { return etype_; }
  int rank() const { return static_cast<int>(shape_.size()); }
  const std::vector<int64_t>& shape() const { return shape_; }
  const std::vector<int64_t>& strides() const { return strides_; }
  int64_t offset() const { return offset_; }

  /// Product of the shape; the number of logical elements in this view.
  int64_t NumElements() const;

  /// True when logical order coincides with a contiguous buffer span.
  bool IsContiguous() const;

  /// --- Multi-index element access (0-based, bounds-checked). ---
  Result<double> GetDouble(std::span<const int64_t> idx) const;
  Result<int64_t> GetInt(std::span<const int64_t> idx) const;
  Status Set(std::span<const int64_t> idx, double v);
  Status Set(std::span<const int64_t> idx, int64_t v);

  /// --- Linear access in logical row-major order (unchecked, for ops). ---
  double DoubleAt(int64_t linear) const;
  int64_t IntAt(int64_t linear) const;
  void SetDoubleAt(int64_t linear, double v);
  void SetIntAt(int64_t linear, int64_t v);

  /// Maps a logical linear index of this view to the element offset within
  /// the underlying buffer. Exposed so the storage layer can translate view
  /// elements to stored addresses.
  int64_t BufferIndex(int64_t linear) const;

  /// Applies one subscript per dimension; kIndex entries reduce the rank.
  /// Subscripts must already be 0-based and validated against the shape by
  /// `ValidateSubs`. The result shares this array's buffer.
  Result<NumericArray> View(std::span<const Sub> subs) const;

  /// Returns a compact row-major copy of this view.
  NumericArray Compact() const;

  /// Numeric element-wise equality (integer 2 equals double 2.0), the array
  /// equality semantics of SciSPARQL Section 4.1.6.
  bool NumericEquals(const NumericArray& other) const;

  /// Renders e.g. "[[1, 2], [3, 4]]", eliding elements beyond `max_elems`.
  std::string ToString(int64_t max_elems = 64) const;

  /// Validates a language-produced subscript list against `shape`:
  /// checks rank and bounds. Returns the normalized subs.
  static Result<std::vector<Sub>> ValidateSubs(
      const std::vector<int64_t>& shape, std::span<const Sub> subs);

  /// Row-major strides for a given shape.
  static std::vector<int64_t> RowMajorStrides(
      const std::vector<int64_t>& shape);

 private:
  ElementType etype_;
  std::shared_ptr<std::vector<uint8_t>> buffer_;
  int64_t offset_ = 0;                // in elements
  std::vector<int64_t> shape_;
  std::vector<int64_t> strides_;      // in elements

  const uint8_t* data() const { return buffer_->data(); }
  uint8_t* data() { return buffer_->data(); }
};

/// Aggregate operations shared by in-memory arrays and storage back-ends
/// (the AAPR interface of Section 6.1 delegates these when supported).
enum class AggOp : uint8_t { kSum, kMin, kMax, kAvg, kCount };

const char* AggOpName(AggOp op);

/// Term-level array abstraction: either a resident NumericArray or a lazy
/// proxy referring to an external back-end (defined in storage/). RDF terms
/// hold `std::shared_ptr<ArrayValue>`.
class ArrayValue {
 public:
  virtual ~ArrayValue() = default;

  virtual ElementType etype() const = 0;
  virtual const std::vector<int64_t>& shape() const = 0;
  int rank() const { return static_cast<int>(shape().size()); }
  int64_t NumElements() const;

  /// True for resident arrays; false for proxies whose elements still live
  /// in an external back-end.
  virtual bool resident() const = 0;

  /// Single element as double (integers are widened).
  virtual Result<double> ElementAsDouble(std::span<const int64_t> idx) const = 0;

  /// Applies subscripts lazily; proxies accumulate them without touching
  /// storage (the "lazy fashion" of the abstract / Section 5.2).
  virtual Result<std::shared_ptr<ArrayValue>> Subscript(
      std::span<const Sub> subs) const = 0;

  /// Produces a resident array; for proxies this is the APR call.
  virtual Result<NumericArray> Materialize() const = 0;

  /// Aggregate over all elements; back-ends may push this down (AAPR).
  virtual Result<double> Aggregate(AggOp op) const;

  /// Short description for diagnostics ("resident 3x4 Double", ...).
  virtual std::string Describe() const;
};

/// ArrayValue wrapping a resident NumericArray.
class ResidentArray : public ArrayValue {
 public:
  explicit ResidentArray(NumericArray array) : array_(std::move(array)) {}

  static std::shared_ptr<ArrayValue> Make(NumericArray array) {
    return std::make_shared<ResidentArray>(std::move(array));
  }

  ElementType etype() const override { return array_.etype(); }
  const std::vector<int64_t>& shape() const override { return array_.shape(); }
  bool resident() const override { return true; }
  Result<double> ElementAsDouble(std::span<const int64_t> idx) const override;
  Result<std::shared_ptr<ArrayValue>> Subscript(
      std::span<const Sub> subs) const override;
  Result<NumericArray> Materialize() const override { return array_; }

  const NumericArray& array() const { return array_; }

 private:
  NumericArray array_;
};

}  // namespace scisparql

#endif  // SCISPARQL_ARRAY_ARRAY_H_
