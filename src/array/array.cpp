#include "array/array.h"

#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>

#include "common/string_util.h"

namespace scisparql {

const char* ElementTypeName(ElementType t) {
  switch (t) {
    case ElementType::kInt64:
      return "Int64";
    case ElementType::kDouble:
      return "Double";
  }
  return "?";
}

const char* AggOpName(AggOp op) {
  switch (op) {
    case AggOp::kSum:
      return "sum";
    case AggOp::kMin:
      return "min";
    case AggOp::kMax:
      return "max";
    case AggOp::kAvg:
      return "avg";
    case AggOp::kCount:
      return "count";
  }
  return "?";
}

namespace {

int64_t ShapeProduct(const std::vector<int64_t>& shape) {
  int64_t n = 1;
  for (int64_t d : shape) n *= d;
  return n;
}

}  // namespace

NumericArray::NumericArray()
    : etype_(ElementType::kDouble),
      buffer_(std::make_shared<std::vector<uint8_t>>()),
      shape_{0},
      strides_{1} {}

std::vector<int64_t> NumericArray::RowMajorStrides(
    const std::vector<int64_t>& shape) {
  std::vector<int64_t> strides(shape.size(), 1);
  for (int i = static_cast<int>(shape.size()) - 2; i >= 0; --i) {
    strides[i] = strides[i + 1] * shape[i + 1];
  }
  return strides;
}

NumericArray NumericArray::Zeros(ElementType etype,
                                 std::vector<int64_t> shape) {
  NumericArray a;
  a.etype_ = etype;
  a.shape_ = std::move(shape);
  a.strides_ = RowMajorStrides(a.shape_);
  a.offset_ = 0;
  a.buffer_ = std::make_shared<std::vector<uint8_t>>(
      static_cast<size_t>(ShapeProduct(a.shape_) * ElementSize(etype)), 0);
  return a;
}

Result<NumericArray> NumericArray::FromInts(std::vector<int64_t> shape,
                                            std::vector<int64_t> data) {
  if (ShapeProduct(shape) != static_cast<int64_t>(data.size())) {
    return Status::InvalidArgument("array data does not match shape");
  }
  NumericArray a = Zeros(ElementType::kInt64, std::move(shape));
  std::memcpy(a.data(), data.data(), data.size() * sizeof(int64_t));
  return a;
}

Result<NumericArray> NumericArray::FromDoubles(std::vector<int64_t> shape,
                                               std::vector<double> data) {
  if (ShapeProduct(shape) != static_cast<int64_t>(data.size())) {
    return Status::InvalidArgument("array data does not match shape");
  }
  NumericArray a = Zeros(ElementType::kDouble, std::move(shape));
  std::memcpy(a.data(), data.data(), data.size() * sizeof(double));
  return a;
}

NumericArray NumericArray::FromBuffer(
    ElementType etype, std::vector<int64_t> shape,
    std::shared_ptr<std::vector<uint8_t>> buffer) {
  NumericArray a;
  a.etype_ = etype;
  a.shape_ = std::move(shape);
  a.strides_ = RowMajorStrides(a.shape_);
  a.offset_ = 0;
  a.buffer_ = std::move(buffer);
  return a;
}

int64_t NumericArray::NumElements() const { return ShapeProduct(shape_); }

bool NumericArray::IsContiguous() const {
  return strides_ == RowMajorStrides(shape_);
}

namespace {

/// Element offset within the buffer for a multi-index, or -1 on bounds error.
int64_t ResolveIndex(const std::vector<int64_t>& shape,
                     const std::vector<int64_t>& strides, int64_t offset,
                     std::span<const int64_t> idx) {
  if (idx.size() != shape.size()) return -1;
  int64_t pos = offset;
  for (size_t i = 0; i < idx.size(); ++i) {
    if (idx[i] < 0 || idx[i] >= shape[i]) return -1;
    pos += idx[i] * strides[i];
  }
  return pos;
}

}  // namespace

Result<double> NumericArray::GetDouble(std::span<const int64_t> idx) const {
  int64_t pos = ResolveIndex(shape_, strides_, offset_, idx);
  if (pos < 0) return Status::OutOfRange("array subscript out of bounds");
  if (etype_ == ElementType::kDouble) {
    double v;
    std::memcpy(&v, data() + pos * 8, 8);
    return v;
  }
  int64_t v;
  std::memcpy(&v, data() + pos * 8, 8);
  return static_cast<double>(v);
}

Result<int64_t> NumericArray::GetInt(std::span<const int64_t> idx) const {
  int64_t pos = ResolveIndex(shape_, strides_, offset_, idx);
  if (pos < 0) return Status::OutOfRange("array subscript out of bounds");
  if (etype_ == ElementType::kInt64) {
    int64_t v;
    std::memcpy(&v, data() + pos * 8, 8);
    return v;
  }
  double v;
  std::memcpy(&v, data() + pos * 8, 8);
  return static_cast<int64_t>(v);
}

Status NumericArray::Set(std::span<const int64_t> idx, double v) {
  int64_t pos = ResolveIndex(shape_, strides_, offset_, idx);
  if (pos < 0) return Status::OutOfRange("array subscript out of bounds");
  if (etype_ == ElementType::kDouble) {
    std::memcpy(data() + pos * 8, &v, 8);
  } else {
    int64_t i = static_cast<int64_t>(v);
    std::memcpy(data() + pos * 8, &i, 8);
  }
  return Status::OK();
}

Status NumericArray::Set(std::span<const int64_t> idx, int64_t v) {
  int64_t pos = ResolveIndex(shape_, strides_, offset_, idx);
  if (pos < 0) return Status::OutOfRange("array subscript out of bounds");
  if (etype_ == ElementType::kInt64) {
    std::memcpy(data() + pos * 8, &v, 8);
  } else {
    double d = static_cast<double>(v);
    std::memcpy(data() + pos * 8, &d, 8);
  }
  return Status::OK();
}

int64_t NumericArray::BufferIndex(int64_t linear) const {
  int64_t pos = offset_;
  for (int i = rank() - 1; i >= 0; --i) {
    int64_t dim = shape_[i];
    if (dim > 0) {
      pos += (linear % dim) * strides_[i];
      linear /= dim;
    }
  }
  return pos;
}

double NumericArray::DoubleAt(int64_t linear) const {
  int64_t pos = BufferIndex(linear);
  if (etype_ == ElementType::kDouble) {
    double v;
    std::memcpy(&v, data() + pos * 8, 8);
    return v;
  }
  int64_t v;
  std::memcpy(&v, data() + pos * 8, 8);
  return static_cast<double>(v);
}

int64_t NumericArray::IntAt(int64_t linear) const {
  int64_t pos = BufferIndex(linear);
  if (etype_ == ElementType::kInt64) {
    int64_t v;
    std::memcpy(&v, data() + pos * 8, 8);
    return v;
  }
  double v;
  std::memcpy(&v, data() + pos * 8, 8);
  return static_cast<int64_t>(v);
}

void NumericArray::SetDoubleAt(int64_t linear, double v) {
  int64_t pos = BufferIndex(linear);
  if (etype_ == ElementType::kDouble) {
    std::memcpy(data() + pos * 8, &v, 8);
  } else {
    int64_t i = static_cast<int64_t>(v);
    std::memcpy(data() + pos * 8, &i, 8);
  }
}

void NumericArray::SetIntAt(int64_t linear, int64_t v) {
  int64_t pos = BufferIndex(linear);
  if (etype_ == ElementType::kInt64) {
    std::memcpy(data() + pos * 8, &v, 8);
  } else {
    double d = static_cast<double>(v);
    std::memcpy(data() + pos * 8, &d, 8);
  }
}

Result<std::vector<Sub>> NumericArray::ValidateSubs(
    const std::vector<int64_t>& shape, std::span<const Sub> subs) {
  if (subs.size() != shape.size()) {
    return Status::InvalidArgument(
        "subscript count does not match array rank");
  }
  std::vector<Sub> out(subs.begin(), subs.end());
  for (size_t i = 0; i < out.size(); ++i) {
    Sub& s = out[i];
    if (s.kind == Sub::Kind::kIndex) {
      if (s.index < 0 || s.index >= shape[i]) {
        return Status::OutOfRange("array subscript out of bounds");
      }
    } else {
      if (s.step == 0) return Status::InvalidArgument("zero subscript step");
      if (s.count < 0) s.count = 0;
      // A degenerate range never advances, so its step is irrelevant;
      // normalizing it keeps the view's stride products small.
      if (s.count <= 1) s.step = 1;
      if (s.count > 0) {
        // 128-bit: (count - 1) * step can exceed the int64 range for
        // adversarial subs, and the wrapped value could pass the bounds
        // check below.
        __int128 last = static_cast<__int128>(s.lo) +
                        static_cast<__int128>(s.count - 1) * s.step;
        if (s.lo < 0 || s.lo >= shape[i] || last < 0 || last >= shape[i]) {
          return Status::OutOfRange("array range subscript out of bounds");
        }
      }
    }
  }
  return out;
}

Result<NumericArray> NumericArray::View(std::span<const Sub> subs) const {
  SCISPARQL_ASSIGN_OR_RETURN(std::vector<Sub> valid,
                             ValidateSubs(shape_, subs));
  NumericArray v;
  v.etype_ = etype_;
  v.buffer_ = buffer_;
  v.offset_ = offset_;
  v.shape_.clear();
  v.strides_.clear();
  for (size_t i = 0; i < valid.size(); ++i) {
    const Sub& s = valid[i];
    if (s.kind == Sub::Kind::kIndex) {
      v.offset_ += s.index * strides_[i];
    } else {
      v.offset_ += s.lo * strides_[i];
      v.shape_.push_back(s.count);
      v.strides_.push_back(s.step * strides_[i]);
    }
  }
  if (v.shape_.empty()) {
    // Full dereference: represent the scalar as a one-element vector; the
    // expression layer unwraps it into a scalar term.
    v.shape_.push_back(1);
    v.strides_.push_back(1);
  }
  return v;
}

NumericArray NumericArray::Compact() const {
  if (IsContiguous() && offset_ == 0 &&
      static_cast<int64_t>(buffer_->size()) == NumElements() * 8) {
    return *this;
  }
  NumericArray out = Zeros(etype_, shape_);
  int64_t n = NumElements();
  for (int64_t i = 0; i < n; ++i) {
    if (etype_ == ElementType::kDouble) {
      out.SetDoubleAt(i, DoubleAt(i));
    } else {
      out.SetIntAt(i, IntAt(i));
    }
  }
  return out;
}

bool NumericArray::NumericEquals(const NumericArray& other) const {
  if (shape_ != other.shape_) return false;
  int64_t n = NumElements();
  for (int64_t i = 0; i < n; ++i) {
    if (DoubleAt(i) != other.DoubleAt(i)) return false;
  }
  return true;
}

namespace {

void RenderDim(const NumericArray& a, std::vector<int64_t>& idx, size_t dim,
               int64_t* budget, std::ostringstream& out) {
  out << "[";
  for (int64_t i = 0; i < a.shape()[dim]; ++i) {
    if (i > 0) out << ", ";
    if (*budget <= 0) {
      out << "...";
      break;
    }
    idx[dim] = i;
    if (dim + 1 == static_cast<size_t>(a.rank())) {
      --*budget;
      if (a.etype() == ElementType::kInt64) {
        out << a.GetInt(idx).value();
      } else {
        out << FormatDouble(a.GetDouble(idx).value());
      }
    } else {
      RenderDim(a, idx, dim + 1, budget, out);
    }
  }
  out << "]";
}

}  // namespace

std::string NumericArray::ToString(int64_t max_elems) const {
  std::ostringstream out;
  std::vector<int64_t> idx(rank(), 0);
  int64_t budget = max_elems;
  RenderDim(*this, idx, 0, &budget, out);
  return out.str();
}

int64_t ArrayValue::NumElements() const {
  int64_t n = 1;
  for (int64_t d : shape()) n *= d;
  return n;
}

Result<double> ArrayValue::Aggregate(AggOp op) const {
  SCISPARQL_ASSIGN_OR_RETURN(NumericArray a, Materialize());
  int64_t n = a.NumElements();
  if (op == AggOp::kCount) return static_cast<double>(n);
  if (n == 0) {
    if (op == AggOp::kSum) return 0.0;
    return Status::InvalidArgument("aggregate over empty array");
  }
  double acc = (op == AggOp::kMin)   ? std::numeric_limits<double>::infinity()
               : (op == AggOp::kMax) ? -std::numeric_limits<double>::infinity()
                                     : 0.0;
  for (int64_t i = 0; i < n; ++i) {
    double v = a.DoubleAt(i);
    switch (op) {
      case AggOp::kSum:
      case AggOp::kAvg:
        acc += v;
        break;
      case AggOp::kMin:
        acc = std::min(acc, v);
        break;
      case AggOp::kMax:
        acc = std::max(acc, v);
        break;
      case AggOp::kCount:
        break;
    }
  }
  if (op == AggOp::kAvg) acc /= static_cast<double>(n);
  return acc;
}

std::string ArrayValue::Describe() const {
  std::ostringstream out;
  out << (resident() ? "resident " : "proxy ");
  const auto& sh = shape();
  for (size_t i = 0; i < sh.size(); ++i) {
    if (i > 0) out << "x";
    out << sh[i];
  }
  out << " " << ElementTypeName(etype());
  return out.str();
}

Result<double> ResidentArray::ElementAsDouble(
    std::span<const int64_t> idx) const {
  return array_.GetDouble(idx);
}

Result<std::shared_ptr<ArrayValue>> ResidentArray::Subscript(
    std::span<const Sub> subs) const {
  SCISPARQL_ASSIGN_OR_RETURN(NumericArray view, array_.View(subs));
  return Make(std::move(view));
}

}  // namespace scisparql
