#include "array/ops.h"

#include <cmath>

namespace scisparql {

const char* BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kAdd:
      return "+";
    case BinOp::kSub:
      return "-";
    case BinOp::kMul:
      return "*";
    case BinOp::kDiv:
      return "/";
    case BinOp::kMod:
      return "mod";
    case BinOp::kPow:
      return "pow";
  }
  return "?";
}

namespace {

bool IntClosed(BinOp op) {
  return op == BinOp::kAdd || op == BinOp::kSub || op == BinOp::kMul ||
         op == BinOp::kMod;
}

Result<double> ApplyDouble(BinOp op, double x, double y) {
  switch (op) {
    case BinOp::kAdd:
      return x + y;
    case BinOp::kSub:
      return x - y;
    case BinOp::kMul:
      return x * y;
    case BinOp::kDiv:
      if (y == 0) return Status::TypeError("division by zero");
      return x / y;
    case BinOp::kMod:
      if (y == 0) return Status::TypeError("modulo by zero");
      return std::fmod(x, y);
    case BinOp::kPow:
      return std::pow(x, y);
  }
  return Status::Internal("unknown binop");
}

Result<int64_t> ApplyInt(BinOp op, int64_t x, int64_t y) {
  switch (op) {
    case BinOp::kAdd:
      return x + y;
    case BinOp::kSub:
      return x - y;
    case BinOp::kMul:
      return x * y;
    case BinOp::kMod:
      if (y == 0) return Status::TypeError("modulo by zero");
      return x % y;
    default:
      return Status::Internal("non-integer binop");
  }
}

}  // namespace

Result<NumericArray> ElementwiseBinary(BinOp op, const NumericArray& a,
                                       const NumericArray& b) {
  if (a.shape() != b.shape()) {
    return Status::TypeError("array arithmetic requires equal shapes");
  }
  bool as_int = a.etype() == ElementType::kInt64 &&
                b.etype() == ElementType::kInt64 && IntClosed(op);
  NumericArray out = NumericArray::Zeros(
      as_int ? ElementType::kInt64 : ElementType::kDouble, a.shape());
  int64_t n = a.NumElements();
  for (int64_t i = 0; i < n; ++i) {
    if (as_int) {
      SCISPARQL_ASSIGN_OR_RETURN(int64_t v,
                                 ApplyInt(op, a.IntAt(i), b.IntAt(i)));
      out.SetIntAt(i, v);
    } else {
      SCISPARQL_ASSIGN_OR_RETURN(double v,
                                 ApplyDouble(op, a.DoubleAt(i), b.DoubleAt(i)));
      out.SetDoubleAt(i, v);
    }
  }
  return out;
}

Result<NumericArray> ScalarBinary(BinOp op, const NumericArray& a, double b,
                                  bool scalar_on_left) {
  NumericArray out = NumericArray::Zeros(ElementType::kDouble, a.shape());
  int64_t n = a.NumElements();
  for (int64_t i = 0; i < n; ++i) {
    double x = a.DoubleAt(i);
    SCISPARQL_ASSIGN_OR_RETURN(
        double v, scalar_on_left ? ApplyDouble(op, b, x) : ApplyDouble(op, x, b));
    out.SetDoubleAt(i, v);
  }
  return out;
}

Result<NumericArray> ScalarBinaryInt(BinOp op, const NumericArray& a,
                                     int64_t b, bool scalar_on_left) {
  if (a.etype() != ElementType::kInt64 || !IntClosed(op)) {
    return ScalarBinary(op, a, static_cast<double>(b), scalar_on_left);
  }
  NumericArray out = NumericArray::Zeros(ElementType::kInt64, a.shape());
  int64_t n = a.NumElements();
  for (int64_t i = 0; i < n; ++i) {
    int64_t x = a.IntAt(i);
    SCISPARQL_ASSIGN_OR_RETURN(
        int64_t v, scalar_on_left ? ApplyInt(op, b, x) : ApplyInt(op, x, b));
    out.SetIntAt(i, v);
  }
  return out;
}

Result<NumericArray> UnaryNamed(const std::string& name,
                                const NumericArray& a) {
  double (*fn)(double) = nullptr;
  if (name == "abs") {
    fn = [](double x) { return std::fabs(x); };
  } else if (name == "round") {
    fn = [](double x) { return std::round(x); };
  } else if (name == "floor") {
    fn = [](double x) { return std::floor(x); };
  } else if (name == "ceil") {
    fn = [](double x) { return std::ceil(x); };
  } else if (name == "sqrt") {
    fn = [](double x) { return std::sqrt(x); };
  } else if (name == "exp") {
    fn = [](double x) { return std::exp(x); };
  } else if (name == "ln") {
    fn = [](double x) { return std::log(x); };
  } else if (name == "log10") {
    fn = [](double x) { return std::log10(x); };
  } else if (name == "neg") {
    fn = [](double x) { return -x; };
  } else {
    return Status::NotFound("unknown unary array function: " + name);
  }
  // abs/round/floor/ceil/neg preserve integer type.
  bool keep_int = a.etype() == ElementType::kInt64 &&
                  (name == "abs" || name == "round" || name == "floor" ||
                   name == "ceil" || name == "neg");
  NumericArray out = NumericArray::Zeros(
      keep_int ? ElementType::kInt64 : ElementType::kDouble, a.shape());
  int64_t n = a.NumElements();
  for (int64_t i = 0; i < n; ++i) {
    double v = fn(a.DoubleAt(i));
    if (keep_int) {
      out.SetIntAt(i, static_cast<int64_t>(v));
    } else {
      out.SetDoubleAt(i, v);
    }
  }
  return out;
}

Result<NumericArray> Map(const NumericArray& a,
                         const std::function<Result<double>(double)>& fn) {
  NumericArray out = NumericArray::Zeros(ElementType::kDouble, a.shape());
  int64_t n = a.NumElements();
  for (int64_t i = 0; i < n; ++i) {
    SCISPARQL_ASSIGN_OR_RETURN(double v, fn(a.DoubleAt(i)));
    out.SetDoubleAt(i, v);
  }
  return out;
}

Result<NumericArray> Map2(
    const NumericArray& a, const NumericArray& b,
    const std::function<Result<double>(double, double)>& fn) {
  if (a.shape() != b.shape()) {
    return Status::TypeError("MAP over arrays of different shapes");
  }
  NumericArray out = NumericArray::Zeros(ElementType::kDouble, a.shape());
  int64_t n = a.NumElements();
  for (int64_t i = 0; i < n; ++i) {
    SCISPARQL_ASSIGN_OR_RETURN(double v, fn(a.DoubleAt(i), b.DoubleAt(i)));
    out.SetDoubleAt(i, v);
  }
  return out;
}

Result<double> Condense(
    const NumericArray& a,
    const std::function<Result<double>(double, double)>& fn) {
  int64_t n = a.NumElements();
  if (n == 0) return Status::InvalidArgument("CONDENSE over empty array");
  double acc = a.DoubleAt(0);
  for (int64_t i = 1; i < n; ++i) {
    SCISPARQL_ASSIGN_OR_RETURN(acc, fn(acc, a.DoubleAt(i)));
  }
  return acc;
}

Result<NumericArray> Transpose(const NumericArray& a) {
  if (a.rank() != 2) {
    return Status::InvalidArgument("transpose requires a 2-D array");
  }
  NumericArray t =
      NumericArray::Zeros(a.etype(), {a.shape()[1], a.shape()[0]});
  for (int64_t i = 0; i < a.shape()[0]; ++i) {
    for (int64_t j = 0; j < a.shape()[1]; ++j) {
      int64_t src[] = {i, j};
      int64_t dst[] = {j, i};
      if (a.etype() == ElementType::kInt64) {
        SCISPARQL_ASSIGN_OR_RETURN(int64_t x, a.GetInt(src));
        SCISPARQL_RETURN_NOT_OK(t.Set(dst, x));
      } else {
        SCISPARQL_ASSIGN_OR_RETURN(double x, a.GetDouble(src));
        SCISPARQL_RETURN_NOT_OK(t.Set(dst, x));
      }
    }
  }
  return t;
}

Result<NumericArray> Reshape(const NumericArray& a,
                             std::vector<int64_t> shape) {
  int64_t n = 1;
  for (int64_t d : shape) n *= d;
  if (n != a.NumElements()) {
    return Status::InvalidArgument("reshape changes element count");
  }
  NumericArray compact = a.Compact();
  NumericArray out = NumericArray::Zeros(a.etype(), std::move(shape));
  for (int64_t i = 0; i < n; ++i) {
    if (a.etype() == ElementType::kInt64) {
      out.SetIntAt(i, compact.IntAt(i));
    } else {
      out.SetDoubleAt(i, compact.DoubleAt(i));
    }
  }
  return out;
}

NumericArray Iota(int64_t lo, int64_t count, int64_t step) {
  NumericArray out = NumericArray::Zeros(ElementType::kInt64, {count});
  for (int64_t i = 0; i < count; ++i) out.SetIntAt(i, lo + i * step);
  return out;
}

}  // namespace scisparql
