#ifndef SCISPARQL_ARRAY_OPS_H_
#define SCISPARQL_ARRAY_OPS_H_

#include <functional>
#include <string>

#include "array/array.h"

namespace scisparql {

/// Element-wise array operations implementing SciSPARQL array arithmetic
/// (Section 4.1.4) and the second-order array-algebra primitives
/// (Section 4.3.1). All functions operate on resident arrays; the expression
/// layer materializes proxies (APR) before calling them, or pushes the
/// operation down to the back-end when the back-end advertises support.

enum class BinOp : uint8_t { kAdd, kSub, kMul, kDiv, kMod, kPow };

const char* BinOpName(BinOp op);

/// `a op b` where both operands have identical shape. Result element type is
/// Int64 only when both inputs are Int64 and the op is closed over integers
/// (kAdd/kSub/kMul/kMod); kDiv and kPow always yield doubles.
Result<NumericArray> ElementwiseBinary(BinOp op, const NumericArray& a,
                                       const NumericArray& b);

/// `a op scalar` / `scalar op a` (broadcast of a scalar over the array).
Result<NumericArray> ScalarBinary(BinOp op, const NumericArray& a, double b,
                                  bool scalar_on_left);
Result<NumericArray> ScalarBinaryInt(BinOp op, const NumericArray& a,
                                     int64_t b, bool scalar_on_left);

/// Unary element-wise transform with a named double->double function:
/// "abs", "round", "floor", "ceil", "sqrt", "exp", "ln", "log10", "neg".
Result<NumericArray> UnaryNamed(const std::string& name,
                                const NumericArray& a);

/// Second-order mapper: the ARRAY-algebra MAP. Applies `fn` to every
/// element (as double) producing a double array of the same shape.
/// `fn` returning a non-ok Result aborts the mapping.
Result<NumericArray> Map(const NumericArray& a,
                         const std::function<Result<double>(double)>& fn);

/// Binary mapper over two same-shape arrays (MAP with two array args).
Result<NumericArray> Map2(
    const NumericArray& a, const NumericArray& b,
    const std::function<Result<double>(double, double)>& fn);

/// Second-order CONDENSE: folds all elements with `fn`, starting from the
/// first element (arrays must be non-empty).
Result<double> Condense(const NumericArray& a,
                        const std::function<Result<double>(double, double)>& fn);

/// Transposes a 2-D array (view, no copy).
Result<NumericArray> Transpose(const NumericArray& a);

/// Reshapes to `shape` (copying when the view is not contiguous).
Result<NumericArray> Reshape(const NumericArray& a,
                             std::vector<int64_t> shape);

/// Generator: [lo, lo+step, ...] with `count` elements.
NumericArray Iota(int64_t lo, int64_t count, int64_t step = 1);

}  // namespace scisparql

#endif  // SCISPARQL_ARRAY_OPS_H_
