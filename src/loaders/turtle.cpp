#include "loaders/turtle.h"

#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>

#include "common/string_util.h"
#include "rdf/write_batch.h"
#include "sparql/lexer.h"

namespace scisparql {
namespace loaders {

namespace {

using sparql::Token;
using sparql::TokenType;

class TurtleParser {
 public:
  TurtleParser(std::vector<Token> tokens, Graph* graph, PrefixMap prefixes)
      : tokens_(std::move(tokens)),
        graph_(graph),
        prefixes_(std::move(prefixes)) {}

  Status Run() {
    while (Peek().type != TokenType::kEof) {
      SCISPARQL_RETURN_NOT_OK(ParseStatement());
    }
    return Status::OK();
  }

  /// The staged mutations; the caller applies them in one Graph::Apply so
  /// a document is either loaded whole or (on a parse error) not at all.
  WriteBatch TakeBatch() { return std::move(batch_); }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() {
    const Token& t = tokens_[pos_];
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return t;
  }
  Status Error(const std::string& msg) const {
    const Token& t = Peek();
    return Status::ParseError("Turtle: " + msg + " (near '" + t.text +
                              "' at line " + std::to_string(t.line) + ")");
  }
  Status ExpectPunct(const char* p) {
    if (!Peek().IsPunct(p)) {
      return Error(std::string("expected '") + p + "'");
    }
    Advance();
    return Status::OK();
  }

  Status ParseStatement() {
    const Token& t = Peek();
    // @prefix / @base arrive as language-tag tokens from the shared lexer.
    if (t.type == TokenType::kLangTag &&
        (t.text == "prefix" || t.text == "base")) {
      bool is_prefix = t.text == "prefix";
      Advance();
      if (is_prefix) {
        std::string prefix;
        if (Peek().type == TokenType::kPname) {
          std::string pname = Advance().text;
          prefix = pname.substr(0, pname.find(':'));
        } else if (Peek().IsPunct(":")) {
          Advance();  // empty prefix declaration "@prefix : <...>"
        } else {
          return Error("expected prefix declaration");
        }
        if (Peek().type != TokenType::kIri) {
          return Error("expected IRI in @prefix");
        }
        prefixes_.Set(prefix, Advance().text);
      } else {
        if (Peek().type != TokenType::kIri) {
          return Error("expected IRI in @base");
        }
        base_ = Advance().text;
      }
      return ExpectPunct(".");
    }
    // SPARQL-style PREFIX / BASE (no trailing dot).
    if (t.IsKeyword("PREFIX")) {
      Advance();
      std::string prefix;
      if (Peek().type == TokenType::kPname) {
        std::string pname = Advance().text;
        prefix = pname.substr(0, pname.find(':'));
      } else if (Peek().IsPunct(":")) {
        Advance();
      } else {
        return Error("expected prefix declaration");
      }
      if (Peek().type != TokenType::kIri) return Error("expected IRI");
      prefixes_.Set(prefix, Advance().text);
      return Status::OK();
    }
    if (t.IsKeyword("BASE")) {
      Advance();
      if (Peek().type != TokenType::kIri) return Error("expected IRI");
      base_ = Advance().text;
      return Status::OK();
    }

    SCISPARQL_ASSIGN_OR_RETURN(Term subject, ParseNode());
    SCISPARQL_RETURN_NOT_OK(ParsePredicateObjectList(subject));
    return ExpectPunct(".");
  }

  Status ParsePredicateObjectList(const Term& subject) {
    while (true) {
      SCISPARQL_ASSIGN_OR_RETURN(Term predicate, ParseIri());
      while (true) {
        SCISPARQL_ASSIGN_OR_RETURN(Term object, ParseNode());
        batch_.Add(subject, predicate, object);
        if (Peek().IsPunct(",")) {
          Advance();
          continue;
        }
        break;
      }
      if (Peek().IsPunct(";")) {
        Advance();
        if (Peek().IsPunct(".") || Peek().IsPunct("]") ||
            Peek().type == TokenType::kEof) {
          break;  // trailing semicolon
        }
        continue;
      }
      break;
    }
    return Status::OK();
  }

  Result<Term> ParseIri() {
    const Token& t = Peek();
    if (t.type == TokenType::kIri) {
      return Term::Iri(Resolve(Advance().text));
    }
    if (t.type == TokenType::kPname) {
      auto full = prefixes_.Expand(t.text);
      if (!full.has_value()) {
        return Error("unknown prefix in '" + t.text + "'");
      }
      Advance();
      return Term::Iri(*full);
    }
    if (t.IsKeyword("a")) {
      Advance();
      return Term::Iri(vocab::kRdfType);
    }
    return Error("expected an IRI");
  }

  std::string Resolve(const std::string& iri) {
    if (!base_.empty() && iri.find(':') == std::string::npos) {
      return base_ + iri;
    }
    return iri;
  }

  Result<Term> ParseNode() {
    // Signed numbers inside collections: the shared lexer can emit the
    // sign as punctuation after another number ("(1 -2)"), so fold it here.
    if (Peek().IsPunct("-") || Peek().IsPunct("+")) {
      bool neg = Peek().IsPunct("-");
      const Token& next = Peek(1);
      if (next.type == TokenType::kInteger) {
        Advance();
        int64_t v = std::atoll(Advance().text.c_str());
        return Term::Integer(neg ? -v : v);
      }
      if (next.type == TokenType::kDecimal ||
          next.type == TokenType::kDouble) {
        Advance();
        double v = std::atof(Advance().text.c_str());
        return Term::Double(neg ? -v : v);
      }
    }
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kIri:
      case TokenType::kPname:
        return ParseIri();
      case TokenType::kBlank:
        return Term::Blank(Advance().text);
      case TokenType::kInteger:
        return Term::Integer(std::atoll(Advance().text.c_str()));
      case TokenType::kDecimal:
      case TokenType::kDouble:
        return Term::Double(std::atof(Advance().text.c_str()));
      case TokenType::kString: {
        std::string value = Advance().text;
        if (Peek().type == TokenType::kLangTag) {
          return Term::LangString(std::move(value), Advance().text);
        }
        if (Peek().type == TokenType::kDtypeMarker) {
          Advance();
          SCISPARQL_ASSIGN_OR_RETURN(Term dt, ParseIri());
          const std::string& iri = dt.iri();
          if (iri == vocab::kXsdInteger) {
            return Term::Integer(std::atoll(value.c_str()));
          }
          if (iri == vocab::kXsdDouble || iri == vocab::kXsdDecimal) {
            return Term::Double(std::atof(value.c_str()));
          }
          if (iri == vocab::kXsdBoolean) {
            return Term::Boolean(value == "true" || value == "1");
          }
          if (iri == vocab::kXsdString) {
            return Term::String(std::move(value));
          }
          return Term::TypedLiteral(std::move(value), iri);
        }
        return Term::String(std::move(value));
      }
      case TokenType::kKeyword:
        if (t.IsKeyword("true")) {
          Advance();
          return Term::Boolean(true);
        }
        if (t.IsKeyword("false")) {
          Advance();
          return Term::Boolean(false);
        }
        if (t.IsKeyword("a")) return ParseIri();
        return Error("unexpected keyword '" + t.text + "'");
      default:
        break;
    }
    if (t.IsPunct("[")) {
      Advance();
      Term node = Term::Blank(graph_->FreshBlankLabel());
      if (!Peek().IsPunct("]")) {
        SCISPARQL_RETURN_NOT_OK(ParsePredicateObjectList(node));
      }
      SCISPARQL_RETURN_NOT_OK(ExpectPunct("]"));
      return node;
    }
    if (t.IsPunct("(")) {
      Advance();
      std::vector<Term> items;
      while (!Peek().IsPunct(")")) {
        SCISPARQL_ASSIGN_OR_RETURN(Term item, ParseNode());
        items.push_back(std::move(item));
      }
      Advance();  // )
      if (items.empty()) return Term::Iri(vocab::kRdfNil);
      Term head = Term::Blank(graph_->FreshBlankLabel());
      Term cur = head;
      for (size_t i = 0; i < items.size(); ++i) {
        batch_.Add(cur, Term::Iri(vocab::kRdfFirst), items[i]);
        Term next = i + 1 < items.size()
                        ? Term::Blank(graph_->FreshBlankLabel())
                        : Term::Iri(vocab::kRdfNil);
        batch_.Add(cur, Term::Iri(vocab::kRdfRest), next);
        cur = next;
      }
      return head;
    }
    return Error("expected a node");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  Graph* graph_;  // blank-label allocation only; mutations go to batch_
  WriteBatch batch_;
  PrefixMap prefixes_;
  std::string base_;
};

// --- Collection consolidation (Section 5.3.2). ---

/// Recursive structure of a parsed candidate collection.
struct ListValue {
  bool is_number = false;
  bool is_int = false;
  double number = 0;
  int64_t int_value = 0;
  std::vector<ListValue> children;  // when !is_number
};

/// Walks an rdf:first/rdf:rest chain; returns nullopt when the structure is
/// not a well-formed list of numbers / nested lists.
std::optional<ListValue> WalkList(const Graph& g, const Term& head,
                                  std::vector<Triple>* scaffolding) {
  ListValue out;
  Term node = head;
  const Term first_p = Term::Iri(vocab::kRdfFirst);
  const Term rest_p = Term::Iri(vocab::kRdfRest);
  const Term nil = Term::Iri(vocab::kRdfNil);
  while (!(node == nil)) {
    std::vector<Triple> firsts = g.MatchAll(node, first_p, Term());
    std::vector<Triple> rests = g.MatchAll(node, rest_p, Term());
    if (firsts.size() != 1 || rests.size() != 1) return std::nullopt;
    const Term& item = firsts[0].o;
    ListValue child;
    if (item.kind() == Term::Kind::kInteger) {
      child.is_number = child.is_int = true;
      child.int_value = item.integer();
      child.number = static_cast<double>(item.integer());
    } else if (item.kind() == Term::Kind::kDouble) {
      child.is_number = true;
      child.number = item.dbl();
    } else if (item.IsBlank() || item == nil) {
      auto nested = WalkList(g, item, scaffolding);
      if (!nested.has_value()) return std::nullopt;
      child = std::move(*nested);
    } else {
      return std::nullopt;
    }
    out.children.push_back(std::move(child));
    scaffolding->push_back(firsts[0]);
    scaffolding->push_back(rests[0]);
    node = rests[0].o;
  }
  return out;
}

/// Derives the shape of a nested list; nullopt when ragged or leaves mix
/// numbers and sublists.
bool DeriveShape(const ListValue& v, std::vector<int64_t>* shape, int depth,
                 bool* all_int) {
  if (v.is_number) {
    if (!v.is_int) *all_int = false;
    return depth == static_cast<int>(shape->size());
  }
  if (depth == static_cast<int>(shape->size())) {
    shape->push_back(static_cast<int64_t>(v.children.size()));
  } else if ((*shape)[depth] != static_cast<int64_t>(v.children.size())) {
    return false;
  }
  for (const ListValue& c : v.children) {
    if (c.is_number != v.children[0].is_number) return false;
    if (!DeriveShape(c, shape, depth + 1, all_int)) return false;
  }
  return true;
}

void FlattenInto(const ListValue& v, std::vector<double>* dbl,
                 std::vector<int64_t>* ints) {
  if (v.is_number) {
    dbl->push_back(v.number);
    ints->push_back(v.int_value);
    return;
  }
  for (const ListValue& c : v.children) FlattenInto(c, dbl, ints);
}

}  // namespace

Result<int> ConsolidateCollections(Graph* graph) {
  const Term first_p = Term::Iri(vocab::kRdfFirst);
  const Term rest_p = Term::Iri(vocab::kRdfRest);

  // Entry points: triples (s, p, head) where p is not part of the list
  // scaffolding and head starts an rdf list.
  std::vector<Triple> entries;
  graph->ForEach([&](const Triple& t) {
    if (t.p == first_p || t.p == rest_p) return;
    if (!t.o.IsBlank()) return;
    if (graph->Contains(t.o, first_p, Term())) entries.push_back(t);
  });

  int consolidated = 0;
  for (const Triple& entry : entries) {
    std::vector<Triple> scaffolding;
    auto list = WalkList(*graph, entry.o, &scaffolding);
    if (!list.has_value() || list->children.empty()) continue;
    std::vector<int64_t> shape;
    bool all_int = true;
    if (!DeriveShape(*list, &shape, 0, &all_int)) continue;
    std::vector<double> dbls;
    std::vector<int64_t> ints;
    FlattenInto(*list, &dbls, &ints);

    Result<NumericArray> array =
        all_int ? NumericArray::FromInts(shape, std::move(ints))
                : NumericArray::FromDoubles(shape, std::move(dbls));
    if (!array.ok()) continue;

    WriteBatch batch;
    batch.RemoveAll(entry);
    for (const Triple& t : scaffolding) batch.RemoveAll(t);
    batch.Add(entry.s, entry.p,
              Term::Array(ResidentArray::Make(std::move(*array))));
    graph->Apply(std::move(batch));
    ++consolidated;
  }
  return consolidated;
}

Status LoadTurtleString(const std::string& text, Graph* graph,
                        const TurtleOptions& options) {
  SCISPARQL_ASSIGN_OR_RETURN(std::vector<Token> tokens,
                             sparql::Tokenize(text));
  TurtleParser parser(std::move(tokens), graph, options.prefixes);
  SCISPARQL_RETURN_NOT_OK(parser.Run());
  graph->Apply(parser.TakeBatch());
  if (options.consolidate_collections) {
    SCISPARQL_ASSIGN_OR_RETURN(int n, ConsolidateCollections(graph));
    (void)n;
  }
  return Status::OK();
}

Status LoadTurtleFile(const std::string& path, Graph* graph,
                      const TurtleOptions& options) {
  std::ifstream in(path);
  if (!in.good()) return Status::IoError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return LoadTurtleString(buf.str(), graph, options);
}

namespace {

void WriteArrayAsCollection(const NumericArray& a, std::vector<int64_t>& idx,
                            size_t dim, std::ostringstream& out) {
  out << "(";
  for (int64_t i = 0; i < a.shape()[dim]; ++i) {
    if (i > 0) out << " ";
    idx[dim] = i;
    if (dim + 1 == static_cast<size_t>(a.rank())) {
      if (a.etype() == ElementType::kInt64) {
        out << a.GetInt(idx).value();
      } else {
        out << FormatDouble(a.GetDouble(idx).value());
      }
    } else {
      WriteArrayAsCollection(a, idx, dim + 1, out);
    }
  }
  out << ")";
}

std::string TermToTurtle(const Term& t, const PrefixMap& prefixes) {
  switch (t.kind()) {
    case Term::Kind::kIri:
      return prefixes.Compact(t.iri());
    case Term::Kind::kArray: {
      auto m = t.array()->Materialize();
      if (!m.ok()) return "()";
      std::ostringstream out;
      std::vector<int64_t> idx(m->rank(), 0);
      WriteArrayAsCollection(*m, idx, 0, out);
      return out.str();
    }
    default:
      return t.ToString();
  }
}

}  // namespace

std::string WriteTurtle(const Graph& graph, const PrefixMap& prefixes) {
  std::ostringstream out;
  for (const auto& [prefix, ns] : prefixes.entries()) {
    out << "@prefix " << prefix << ": <" << ns << "> .\n";
  }
  out << "\n";
  graph.ForEach([&](const Triple& t) {
    out << TermToTurtle(t.s, prefixes) << " " << TermToTurtle(t.p, prefixes)
        << " " << TermToTurtle(t.o, prefixes) << " .\n";
  });
  return out.str();
}

}  // namespace loaders
}  // namespace scisparql
