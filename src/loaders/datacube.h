#ifndef SCISPARQL_LOADERS_DATACUBE_H_
#define SCISPARQL_LOADERS_DATACUBE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "rdf/graph.h"

namespace scisparql {
namespace loaders {

/// Statistics returned by the Data Cube consolidation pass.
struct DataCubeStats {
  int datasets = 0;
  int observations = 0;
  size_t triples_before = 0;
  size_t triples_after = 0;
};

/// Consolidates RDF Data Cube datasets (Section 5.3.3): observations of a
/// qb:DataSet are folded into one numeric multidimensional array per
/// measure property, with one dictionary (RDF collection of the distinct
/// sorted dimension values) per dimension property. This drastically
/// reduces graph size while preserving all information.
///
/// Dimension/measure roles are read from the dataset's qb:structure
/// (qb:component / qb:dimension / qb:measure) when present; otherwise a
/// heuristic is used (numeric-valued properties are measures, the rest are
/// dimensions).
///
/// For a dataset node D with dimensions p1..pk (with n1..nk distinct
/// values) and a measure m, the pass:
///   * removes every qb:Observation of D and its triples,
///   * adds (D, <p_i + "#index">, collection of sorted distinct values),
///   * adds (D, <m + "#array">, array of shape n1 x ... x nk),
/// where cells not covered by an observation are NaN.
Result<DataCubeStats> ConsolidateDataCubes(Graph* graph);

}  // namespace loaders
}  // namespace scisparql

#endif  // SCISPARQL_LOADERS_DATACUBE_H_
