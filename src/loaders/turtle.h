#ifndef SCISPARQL_LOADERS_TURTLE_H_
#define SCISPARQL_LOADERS_TURTLE_H_

#include <string>

#include "common/status.h"
#include "rdf/graph.h"
#include "rdf/namespaces.h"

namespace scisparql {
namespace loaders {

/// Options controlling Turtle import.
struct TurtleOptions {
  /// Recognize nested RDF collections of numbers and consolidate them into
  /// array values (Section 5.3.2): the 13-triple linked-list encoding of a
  /// 2x2 matrix becomes a single triple with an array value.
  bool consolidate_collections = true;

  /// Prefixes pre-loaded before parsing (the file's own @prefix directives
  /// extend these).
  PrefixMap prefixes = PrefixMap::WithDefaults();
};

/// Parses a Turtle document and adds its triples to `graph`. Supports
/// prefixes, base, a/true/false keywords, ; and , lists, blank node
/// property lists, collections, numeric/boolean/typed/lang literals.
Status LoadTurtleString(const std::string& text, Graph* graph,
                        const TurtleOptions& options = TurtleOptions());

Status LoadTurtleFile(const std::string& path, Graph* graph,
                      const TurtleOptions& options = TurtleOptions());

/// Serializes a graph to Turtle (arrays render as nested collections so the
/// output round-trips through LoadTurtleString with consolidation on).
std::string WriteTurtle(const Graph& graph, const PrefixMap& prefixes);

/// Scans `graph` for nested RDF collections of numbers hanging off
/// non-collection triples and replaces each with a consolidated array
/// value, deleting the rdf:first/rdf:rest scaffolding. Returns the number
/// of collections consolidated. (Used both by the loader and as a
/// standalone pass, e.g. after INSERT DATA.)
Result<int> ConsolidateCollections(Graph* graph);

}  // namespace loaders
}  // namespace scisparql

#endif  // SCISPARQL_LOADERS_TURTLE_H_
