#include "loaders/datacube.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "rdf/namespaces.h"
#include "rdf/write_batch.h"

namespace scisparql {
namespace loaders {

namespace {

/// Reads dimension/measure property IRIs from the dataset's data structure
/// definition, if it has one.
void ReadStructure(const Graph& g, const Term& dataset,
                   std::set<std::string>* dimensions,
                   std::set<std::string>* measures) {
  const Term structure_p = Term::Iri(vocab::kQbStructure);
  const Term component_p = Term::Iri(vocab::kQbComponent);
  const Term dimension_p = Term::Iri(vocab::kQbDimension);
  const Term measure_p = Term::Iri(vocab::kQbMeasure);
  for (const Triple& s : g.MatchAll(dataset, structure_p, Term())) {
    for (const Triple& c : g.MatchAll(s.o, component_p, Term())) {
      for (const Triple& d : g.MatchAll(c.o, dimension_p, Term())) {
        if (d.o.IsIri()) dimensions->insert(d.o.iri());
      }
      for (const Triple& m : g.MatchAll(c.o, measure_p, Term())) {
        if (m.o.IsIri()) measures->insert(m.o.iri());
      }
    }
  }
}

}  // namespace

Result<DataCubeStats> ConsolidateDataCubes(Graph* graph) {
  DataCubeStats stats;
  stats.triples_before = graph->size();

  const Term type_p = Term::Iri(vocab::kRdfType);
  const Term observation_t = Term::Iri(vocab::kQbObservation);
  const Term dataset_p = Term::Iri(vocab::kQbDataSetProp);

  // Group observations by dataset.
  std::map<Term, std::vector<Term>, bool (*)(const Term&, const Term&)>
      by_dataset([](const Term& a, const Term& b) {
        return Term::Compare(a, b) < 0;
      });
  for (const Triple& t : graph->MatchAll(Term(), type_p, observation_t)) {
    for (const Triple& d : graph->MatchAll(t.s, dataset_p, Term())) {
      by_dataset[d.o].push_back(t.s);
    }
  }

  for (auto& [dataset, observations] : by_dataset) {
    std::set<std::string> dim_props;
    std::set<std::string> measure_props;
    ReadStructure(*graph, dataset, &dim_props, &measure_props);

    // Collect per-observation property values.
    struct Obs {
      std::map<std::string, Term> values;
    };
    std::vector<Obs> rows;
    std::set<std::string> all_props;
    for (const Term& obs : observations) {
      Obs row;
      bool valid = true;
      graph->Match(obs, Term(), Term(), [&](const Triple& t) -> bool {
        if (!t.p.IsIri()) return true;
        const std::string& p = t.p.iri();
        if (p == vocab::kRdfType || p == vocab::kQbDataSetProp) return true;
        if (row.values.count(p) > 0) valid = false;  // multi-valued: skip
        row.values[p] = t.o;
        all_props.insert(p);
        return true;
      });
      if (valid) rows.push_back(std::move(row));
    }
    if (rows.empty()) continue;

    if (dim_props.empty() && measure_props.empty()) {
      // Heuristic classification when no DSD is present: properties whose
      // values are doubles in every observation are measures; integers,
      // IRIs and strings act as dimensions (integer-coded coordinates like
      // years are far more common than integer measures).
      for (const std::string& p : all_props) {
        bool all_double = true;
        for (const Obs& row : rows) {
          auto it = row.values.find(p);
          if (it != row.values.end() &&
              it->second.kind() != Term::Kind::kDouble) {
            all_double = false;
            break;
          }
        }
        if (all_double) {
          measure_props.insert(p);
        } else {
          dim_props.insert(p);
        }
      }
    }
    if (measure_props.empty() || dim_props.empty()) continue;

    // Dictionaries: sorted distinct values per dimension.
    std::vector<std::string> dims(dim_props.begin(), dim_props.end());
    std::vector<std::vector<Term>> dicts(dims.size());
    for (size_t d = 0; d < dims.size(); ++d) {
      std::vector<Term> values;
      for (const Obs& row : rows) {
        auto it = row.values.find(dims[d]);
        if (it == row.values.end()) continue;
        values.push_back(it->second);
      }
      std::sort(values.begin(), values.end(),
                [](const Term& a, const Term& b) {
                  return Term::Compare(a, b) < 0;
                });
      values.erase(std::unique(values.begin(), values.end(),
                               [](const Term& a, const Term& b) {
                                 return Term::Compare(a, b) == 0;
                               }),
                   values.end());
      dicts[d] = std::move(values);
    }
    std::vector<int64_t> shape;
    for (const auto& dict : dicts) {
      shape.push_back(static_cast<int64_t>(dict.size()));
    }

    auto coordinate = [&](const Obs& row, std::vector<int64_t>* idx) -> bool {
      idx->clear();
      for (size_t d = 0; d < dims.size(); ++d) {
        auto it = row.values.find(dims[d]);
        if (it == row.values.end()) return false;
        auto pos = std::lower_bound(
            dicts[d].begin(), dicts[d].end(), it->second,
            [](const Term& a, const Term& b) {
              return Term::Compare(a, b) < 0;
            });
        idx->push_back(pos - dicts[d].begin());
      }
      return true;
    };

    // One array per measure; uncovered cells stay NaN.
    // The whole consolidation of one dataset — new arrays, dictionary
    // collections, observation teardown — lands as one atomic batch.
    WriteBatch batch;
    for (const std::string& m : measure_props) {
      NumericArray array = NumericArray::Zeros(ElementType::kDouble, shape);
      int64_t n = array.NumElements();
      for (int64_t i = 0; i < n; ++i) {
        array.SetDoubleAt(i, std::nan(""));
      }
      std::vector<int64_t> idx;
      for (const Obs& row : rows) {
        auto it = row.values.find(m);
        if (it == row.values.end() || !coordinate(row, &idx)) continue;
        auto v = it->second.AsDouble();
        if (!v.ok()) continue;
        (void)array.Set(idx, *v);
      }
      batch.Add(dataset, Term::Iri(m + "#array"),
                Term::Array(ResidentArray::Make(std::move(array))));
    }

    // Dictionaries become RDF collections.
    for (size_t d = 0; d < dims.size(); ++d) {
      Term head = dicts[d].empty() ? Term::Iri(vocab::kRdfNil)
                                   : Term::Blank(graph->FreshBlankLabel());
      Term cur = head;
      for (size_t i = 0; i < dicts[d].size(); ++i) {
        batch.Add(cur, Term::Iri(vocab::kRdfFirst), dicts[d][i]);
        Term next = i + 1 < dicts[d].size()
                        ? Term::Blank(graph->FreshBlankLabel())
                        : Term::Iri(vocab::kRdfNil);
        batch.Add(cur, Term::Iri(vocab::kRdfRest), next);
        cur = next;
      }
      batch.Add(dataset, Term::Iri(dims[d] + "#index"), head);
    }

    // Remove the observation sub-graphs.
    for (const Term& obs : observations) {
      for (const Triple& t : graph->MatchAll(obs, Term(), Term())) {
        batch.RemoveAll(t);
      }
      ++stats.observations;
    }
    graph->Apply(std::move(batch));
    ++stats.datasets;
  }

  stats.triples_after = graph->size();
  return stats;
}

}  // namespace loaders
}  // namespace scisparql
