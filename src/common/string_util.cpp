#include "common/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstring>

namespace scisparql {

std::vector<std::string> SplitString(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string AsciiToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string EscapeTurtleString(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

bool ParseUint64(std::string_view s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) return false;
  *out = v;
  return true;
}

size_t Utf8SequenceLength(std::string_view s, size_t i) {
  unsigned char lead = static_cast<unsigned char>(s[i]);
  size_t n = 1;
  if ((lead & 0xE0) == 0xC0) {
    n = 2;
  } else if ((lead & 0xF0) == 0xE0) {
    n = 3;
  } else if ((lead & 0xF8) == 0xF0) {
    n = 4;
  } else {
    // ASCII byte or a stray continuation/invalid byte: one "code point".
    return 1;
  }
  // A truncated or broken sequence counts only its valid continuation
  // bytes, so malformed input still advances and never loops.
  size_t have = 1;
  while (have < n && i + have < s.size() &&
         (static_cast<unsigned char>(s[i + have]) & 0xC0) == 0x80) {
    ++have;
  }
  return have;
}

size_t Utf8Length(std::string_view s) {
  size_t count = 0;
  for (size_t i = 0; i < s.size(); i += Utf8SequenceLength(s, i)) ++count;
  return count;
}

std::string Utf8Substr(std::string_view s, int64_t start, int64_t len) {
  // Positions p kept: start <= p and (len < 0 or p < start + len), 1-based.
  // Computing the exclusive end in the caller's coordinates first keeps the
  // below-1 start semantics exact without overflow gymnastics.
  if (len == 0) return std::string();
  int64_t first = start < 1 ? 1 : start;
  int64_t end = 0;  // exclusive; 0 = unbounded
  if (len > 0) {
    // start + len can't overflow into nonsense for in-range int64 inputs
    // the parser produces, but saturate defensively anyway.
    end = (start > INT64_MAX - len) ? INT64_MAX : start + len;
    if (end <= first) return std::string();
  }
  std::string out;
  int64_t pos = 1;
  for (size_t i = 0; i < s.size();) {
    size_t n = Utf8SequenceLength(s, i);
    if (end != 0 && pos >= end) break;
    if (pos >= first) out.append(s.substr(i, n));
    i += n;
    ++pos;
  }
  return out;
}

std::string NormalizeQueryText(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  size_t i = 0;
  const size_t n = text.size();
  auto copy_quoted = [&](std::string_view delim) {
    out.append(delim);
    i += delim.size();
    while (i < n) {
      if (text[i] == '\\' && delim.size() == 1 && i + 1 < n) {
        out.push_back(text[i]);
        out.push_back(text[i + 1]);
        i += 2;
        continue;
      }
      if (text.substr(i, delim.size()) == delim) {
        out.append(delim);
        i += delim.size();
        return;
      }
      out.push_back(text[i]);
      ++i;
    }
  };
  bool pending_space = false;
  while (i < n) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = true;
      ++i;
      continue;
    }
    if (c == '#') {  // comment to end of line
      while (i < n && text[i] != '\n') ++i;
      pending_space = true;
      continue;
    }
    if (pending_space && !out.empty()) out.push_back(' ');
    pending_space = false;
    if (text.substr(i, 3) == "\"\"\"" || text.substr(i, 3) == "'''") {
      copy_quoted(text.substr(i, 3));
    } else if (c == '"' || c == '\'') {
      copy_quoted(text.substr(i, 1));
    } else if (c == '<') {
      // IRI token: copy verbatim up to '>' (IRIs cannot contain spaces,
      // but keep the raw bytes to be safe).
      while (i < n && text[i] != '>') out.push_back(text[i++]);
      if (i < n) out.push_back(text[i++]);
    } else {
      out.push_back(c);
      ++i;
    }
  }
  return out;
}

std::string FormatDouble(double v) {
  // Try increasing precision until the value round-trips, so serialized
  // query results compare exactly in tests.
  char buf[64];
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    double back = 0;
    std::sscanf(buf, "%lf", &back);
    if (back == v) break;
  }
  // Ensure the lexical form is recognizably floating point.
  if (std::strpbrk(buf, ".eE") == nullptr &&
      std::strcmp(buf, "inf") != 0 && std::strcmp(buf, "-inf") != 0 &&
      std::strcmp(buf, "nan") != 0) {
    std::strcat(buf, ".0");
  }
  return buf;
}

}  // namespace scisparql
