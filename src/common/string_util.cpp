#include "common/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstring>

namespace scisparql {

std::vector<std::string> SplitString(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string AsciiToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string EscapeTurtleString(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

bool ParseUint64(std::string_view s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) return false;
  *out = v;
  return true;
}

std::string FormatDouble(double v) {
  // Try increasing precision until the value round-trips, so serialized
  // query results compare exactly in tests.
  char buf[64];
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    double back = 0;
    std::sscanf(buf, "%lf", &back);
    if (back == v) break;
  }
  // Ensure the lexical form is recognizably floating point.
  if (std::strpbrk(buf, ".eE") == nullptr &&
      std::strcmp(buf, "inf") != 0 && std::strcmp(buf, "-inf") != 0 &&
      std::strcmp(buf, "nan") != 0) {
    std::strcat(buf, ".0");
  }
  return buf;
}

}  // namespace scisparql
