#ifndef SCISPARQL_COMMON_CRC32C_H_
#define SCISPARQL_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace scisparql {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78) —
/// the checksum framing every durable byte in the system: WAL records,
/// snapshot sections and KV log entries. Chosen over plain CRC-32 for its
/// better burst-error detection; computed with a slicing-by-4 table walk,
/// fast enough that checksumming is never the bottleneck next to fsync.
///
/// Values are stored *masked* (rotated + offset, the Castagnoli-mask trick
/// LevelDB/RocksDB use) so a CRC accidentally computed over bytes that
/// themselves contain a CRC does not verify.
uint32_t Crc32c(const void* data, size_t n);
inline uint32_t Crc32c(std::string_view s) { return Crc32c(s.data(), s.size()); }

/// Extends `crc` (an unmasked running value; start from 0) with more bytes.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

/// Masking for stored checksums: Mask before writing, Unmask after reading.
inline uint32_t Crc32cMask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}
inline uint32_t Crc32cUnmask(uint32_t masked) {
  uint32_t rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace scisparql

#endif  // SCISPARQL_COMMON_CRC32C_H_
