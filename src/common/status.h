#ifndef SCISPARQL_COMMON_STATUS_H_
#define SCISPARQL_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace scisparql {

/// Error categories used across the library. Public API entry points never
/// throw; they return Status (or Result<T>) instead.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Caller passed something malformed.
  kParseError,        ///< SciSPARQL / Turtle / Data Cube syntax error.
  kTypeError,         ///< Runtime type mismatch in expression evaluation.
  kNotFound,          ///< Requested entity does not exist.
  kAlreadyExists,     ///< Attempt to create a duplicate entity.
  kOutOfRange,        ///< Subscript outside the array bounds.
  kIoError,           ///< File / storage back-end failure.
  kUnsupported,       ///< Feature not supported by this back-end.
  kInternal,          ///< Invariant violation inside the engine.
  kCancelled,         ///< Query cancelled cooperatively (client gone).
  kDeadlineExceeded,  ///< Query exceeded its deadline mid-flight.
  kUnavailable,       ///< Server overloaded; retry later (admission control).
  // New codes append here: the numeric values travel as wire-protocol
  // error bytes, so reordering the list would change meanings remotely.
  kFailedPrecondition,  ///< Operation requires a state the system is not in.
  kWrongTerm,           ///< Replication request carried a stale fencing term.
};

/// Returns a short human-readable name ("ParseError", ...) for a code.
const char* StatusCodeName(StatusCode code);

/// Lightweight success-or-error value, modeled after the Arrow/Abseil style.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status ParseError(std::string m) {
    return Status(StatusCode::kParseError, std::move(m));
  }
  static Status TypeError(std::string m) {
    return Status(StatusCode::kTypeError, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status OutOfRange(std::string m) {
    return Status(StatusCode::kOutOfRange, std::move(m));
  }
  static Status IoError(std::string m) {
    return Status(StatusCode::kIoError, std::move(m));
  }
  static Status Unsupported(std::string m) {
    return Status(StatusCode::kUnsupported, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status Cancelled(std::string m) {
    return Status(StatusCode::kCancelled, std::move(m));
  }
  static Status DeadlineExceeded(std::string m) {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status WrongTerm(std::string m) {
    return Status(StatusCode::kWrongTerm, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "ParseError: unexpected token".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Value-or-error result. On error the value is absent; accessing the value
/// of an errored Result is a programming error (asserted in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value keeps call sites terse
  /// (`return my_array;`), mirroring arrow::Result.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit construction from a non-OK Status (`return st;`).
  Result(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  T&& operator*() && { return std::move(*value_); }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status out of the enclosing function.
#define SCISPARQL_RETURN_NOT_OK(expr)             \
  do {                                            \
    ::scisparql::Status _st = (expr);             \
    if (!_st.ok()) return _st;                    \
  } while (0)

/// Evaluates a Result<T> expression and either assigns its value to `lhs`
/// or propagates its error Status.
#define SCISPARQL_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                    \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value();

#define SCISPARQL_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define SCISPARQL_ASSIGN_OR_RETURN_NAME(a, b) \
  SCISPARQL_ASSIGN_OR_RETURN_CONCAT(a, b)

#define SCISPARQL_ASSIGN_OR_RETURN(lhs, expr)                            \
  SCISPARQL_ASSIGN_OR_RETURN_IMPL(                                       \
      SCISPARQL_ASSIGN_OR_RETURN_NAME(_result_tmp_, __LINE__), lhs, expr)

}  // namespace scisparql

#endif  // SCISPARQL_COMMON_STATUS_H_
