#include "common/status.h"

namespace scisparql {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kWrongTerm:
      return "WrongTerm";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace scisparql
