#ifndef SCISPARQL_COMMON_STRING_UTIL_H_
#define SCISPARQL_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace scisparql {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> SplitString(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// True if `s` begins with / ends with the given prefix or suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Joins the elements of `parts` with `sep` between them.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// ASCII lower-casing (SPARQL keywords are case-insensitive).
std::string AsciiToLower(std::string_view s);
std::string AsciiToUpper(std::string_view s);

/// Case-insensitive ASCII equality, used for keyword recognition.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Escapes a string for embedding inside a Turtle/SPARQL double-quoted
/// literal (backslash, quote, newline, tab, carriage return).
std::string EscapeTurtleString(std::string_view s);

/// Parses a non-negative decimal integer; returns false on overflow or
/// non-digit characters.
bool ParseUint64(std::string_view s, uint64_t* out);

/// 64-bit hash combiner (boost-style) used by the containers in this repo.
inline size_t HashCombine(size_t seed, size_t v) {
  return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// Formats a double the way SPARQL serializes xsd:double lexical forms:
/// shortest representation that round-trips.
std::string FormatDouble(double v);

}  // namespace scisparql

#endif  // SCISPARQL_COMMON_STRING_UTIL_H_
