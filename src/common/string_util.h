#ifndef SCISPARQL_COMMON_STRING_UTIL_H_
#define SCISPARQL_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace scisparql {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> SplitString(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// True if `s` begins with / ends with the given prefix or suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Joins the elements of `parts` with `sep` between them.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// ASCII lower-casing (SPARQL keywords are case-insensitive).
std::string AsciiToLower(std::string_view s);
std::string AsciiToUpper(std::string_view s);

/// Case-insensitive ASCII equality, used for keyword recognition.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Escapes a string for embedding inside a Turtle/SPARQL double-quoted
/// literal (backslash, quote, newline, tab, carriage return).
std::string EscapeTurtleString(std::string_view s);

/// Parses a non-negative decimal integer; returns false on overflow or
/// non-digit characters.
bool ParseUint64(std::string_view s, uint64_t* out);

// --- UTF-8 code-point helpers (shared by the SPARQL string built-ins,
// which are specified over characters, not bytes). Lone continuation or
// otherwise malformed bytes are treated as one code point each, so the
// functions never reject input and never split a valid multi-byte
// sequence.

/// Number of code points in `s`.
size_t Utf8Length(std::string_view s);

/// Byte length of the UTF-8 sequence starting at `s[i]` (>= 1; clamped to
/// the end of the string for truncated sequences).
size_t Utf8SequenceLength(std::string_view s, size_t i);

/// fn:substring semantics over code points, with SPARQL/XPath 1-based
/// positions: returns the characters at positions p satisfying
/// `start <= p` and, when `len >= 0`, `p < start + len`. A start below 1
/// therefore shortens the effective length instead of clamping — e.g.
/// SUBSTR("hello", 0, 3) = "he" and SUBSTR("hello", -1, 2) = "".
/// `len < 0` means "to the end of the string".
std::string Utf8Substr(std::string_view s, int64_t start, int64_t len = -1);

/// Normalizes a SciSPARQL statement for use as a cache key: collapses
/// whitespace runs to one space, drops comments, and trims — while leaving
/// quoted literals ("...", '...', and their long forms) and <IRI> tokens
/// untouched, so semantically distinct statements never collide.
std::string NormalizeQueryText(std::string_view text);

/// 64-bit hash combiner (boost-style) used by the containers in this repo.
inline size_t HashCombine(size_t seed, size_t v) {
  return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// Formats a double the way SPARQL serializes xsd:double lexical forms:
/// shortest representation that round-trips.
std::string FormatDouble(double v);

}  // namespace scisparql

#endif  // SCISPARQL_COMMON_STRING_UTIL_H_
