#include "common/crc32c.h"

#include <array>

namespace scisparql {

namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli

struct Tables {
  // Four tables: slicing-by-4 processes one aligned word per iteration.
  uint32_t t[4][256];

  Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xff];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xff];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xff];
    }
  }
};

const Tables& GetTables() {
  static const Tables tables;
  return tables;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const Tables& tb = GetTables();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  // Head: byte-at-a-time up to 4-byte alignment.
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 3u) != 0) {
    crc = (crc >> 8) ^ tb.t[0][(crc ^ *p++) & 0xff];
    --n;
  }
  // Body: four bytes per step.
  while (n >= 4) {
    uint32_t word;
    __builtin_memcpy(&word, p, 4);
    crc ^= word;
    crc = tb.t[3][crc & 0xff] ^ tb.t[2][(crc >> 8) & 0xff] ^
          tb.t[1][(crc >> 16) & 0xff] ^ tb.t[0][crc >> 24];
    p += 4;
    n -= 4;
  }
  // Tail.
  while (n-- > 0) {
    crc = (crc >> 8) ^ tb.t[0][(crc ^ *p++) & 0xff];
  }
  return ~crc;
}

uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

}  // namespace scisparql
