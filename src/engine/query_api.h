#ifndef SCISPARQL_ENGINE_QUERY_API_H_
#define SCISPARQL_ENGINE_QUERY_API_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "obs/trace.h"
#include "rdf/graph.h"
#include "sparql/executor.h"

namespace scisparql {

/// One statement to execute, with everything that shapes its execution:
/// the unified entry point of the engine, the scheduler, the embedded
/// Session and the remote protocol. The grown-by-accretion surface
/// (Execute/Query/Ask/Construct/Run + EXPLAIN/STATS string verbs) now
/// funnels through this one shape.
struct QueryRequest {
  QueryRequest() = default;
  /// Implicit from statement text: `Execute("SELECT ...")` keeps reading
  /// naturally while every call funnels through the unified request shape.
  QueryRequest(std::string statement) : text(std::move(statement)) {}
  QueryRequest(const char* statement) : text(statement) {}

  /// The SciSPARQL statement — any form, including the introspection
  /// verbs (EXPLAIN [ANALYZE] <query>, STATS, METRICS).
  std::string text;

  /// Execution-option overrides; the engine's session defaults apply when
  /// unset. (Only the planner flags travel over the wire; storage/APR
  /// configuration stays server-side.)
  std::optional<sparql::ExecOptions> options;

  /// Wall-clock budget for this statement; zero = none. Queue wait counts
  /// against it when the request goes through the scheduler.
  std::chrono::milliseconds timeout{0};

  /// Optional cooperative-cancellation flag: the owner sets it, the
  /// executor's hot loops observe it.
  std::shared_ptr<std::atomic<bool>> cancel;

  /// When non-null, the engine records the structured trace (span tree
  /// parse -> optimize -> execute -> serialize, with per-scan rows in/out)
  /// into this sink. Null = tracing off; the hot paths then cost one
  /// branch. Not owned; must outlive the call.
  obs::QueryTrace* trace_sink = nullptr;

  /// Structured prepared-statement execution: when set, `text` is ignored
  /// and the statement PREPARE'd under `name` runs with these ground
  /// arguments — equivalent to `EXECUTE name(args...)` but skipping the
  /// parser entirely. This is what the wire protocol's prepared-exec frame
  /// decodes into.
  struct PreparedCall {
    std::string name;
    std::vector<Term> args;
  };
  std::optional<PreparedCall> prepared;
};

/// The result of executing a QueryRequest — a tagged variant over the five
/// statement shapes. The variant's alternative order IS the Kind order, so
/// kind() is just the index.
struct QueryOutcome {
  enum class Kind {
    kRows = 0,     ///< SELECT
    kGraph,        ///< CONSTRUCT / DESCRIBE
    kAsk,          ///< ASK
    kUpdateCount,  ///< updates, LOAD, CLEAR, DEFINE (triples touched)
    kInfo,         ///< EXPLAIN [ANALYZE] / STATS / METRICS text
  };

  struct UpdateCount {
    int64_t count = 0;
    /// Commit LSN the update reached durably (0 when the engine has no
    /// durable store). This is the read-your-writes token: a client that
    /// got `lsn` acked can demand reads from replicas at or past it.
    uint64_t lsn = 0;
    /// Fencing term of the primary that executed the update (0 when the
    /// engine has never replicated). A router tracks the maximum it has
    /// seen to recognize acks from a deposed primary.
    uint64_t term = 0;
  };
  struct Info {
    std::string text;
  };

  std::variant<sparql::QueryResult, Graph, bool, UpdateCount, Info> value;

  Kind kind() const { return static_cast<Kind>(value.index()); }

  sparql::QueryResult& rows() { return std::get<sparql::QueryResult>(value); }
  const sparql::QueryResult& rows() const {
    return std::get<sparql::QueryResult>(value);
  }
  Graph& graph() { return std::get<Graph>(value); }
  const Graph& graph() const { return std::get<Graph>(value); }
  bool ask() const { return std::get<bool>(value); }
  int64_t update_count() const { return std::get<UpdateCount>(value).count; }
  const std::string& info() const { return std::get<Info>(value).text; }
};

}  // namespace scisparql

#endif  // SCISPARQL_ENGINE_QUERY_API_H_
