#ifndef SCISPARQL_ENGINE_DURABILITY_H_
#define SCISPARQL_ENGINE_DURABILITY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "sparql/executor.h"
#include "storage/vfs.h"
#include "storage/wal.h"

namespace scisparql {
namespace engine {

/// MutationSink that buffers one statement's physical mutations as WAL
/// records. The engine installs a fresh instance per update statement and
/// hands the buffer to DurabilityManager::LogStatement afterwards.
class WalCapture : public sparql::MutationSink {
 public:
  void OnAdd(const std::string& graph_iri, const Triple& t) override {
    records_.push_back(
        {storage::WalRecord::Type::kAdd, 0, graph_iri, t});
  }
  void OnRemove(const std::string& graph_iri, const Triple& t) override {
    records_.push_back(
        {storage::WalRecord::Type::kRemove, 0, graph_iri, t});
  }
  void OnClear(const std::string& graph_iri) override {
    records_.push_back(
        {storage::WalRecord::Type::kClearGraph, 0, graph_iri, Triple()});
  }
  void OnClearAll() override {
    records_.push_back({storage::WalRecord::Type::kClearAll, 0, "", Triple()});
  }

  std::vector<storage::WalRecord>& records() { return records_; }

 private:
  std::vector<storage::WalRecord> records_;
};

/// Holds the durable-store state of one SSDM engine: the directory layout
/// (`<dir>/snap-*.ssnp` snapshots, `<dir>/wal/wal-*.log` segments), the
/// WAL writer, the read-only degradation flag and the durability metrics.
/// Recovery itself is orchestrated by SSDM::Open, which needs the engine's
/// loaders, caches and statistics; this class owns everything below that.
class DurabilityManager {
 public:
  /// What recovery found; kept for introspection and reported as a trace
  /// line in the CHECKPOINT/Open summaries.
  struct RecoveryInfo {
    std::string snapshot_path;       ///< "" when no snapshot existed.
    uint64_t snapshots_skipped = 0;  ///< Corrupt snapshots fallen past.
    uint64_t records_replayed = 0;
    uint64_t batches_replayed = 0;
    bool torn_tail = false;
    uint64_t next_lsn = 1;
    std::string ToString() const;
  };

  /// Creates `dir` (and `dir`/wal) if needed. Does not open the WAL writer
  /// yet — SSDM::Open calls StartWal once replay determined the next LSN.
  static Result<std::unique_ptr<DurabilityManager>> Open(storage::Vfs* vfs,
                                                         std::string dir);

  storage::Vfs* vfs() const { return vfs_; }
  const std::string& dir() const { return dir_; }
  std::string wal_dir() const { return dir_ + "/wal"; }

  Status StartWal(uint64_t next_lsn);
  storage::WalWriter* wal() { return wal_.get(); }

  /// Last LSN made durable in this store (the newest commit marker on
  /// disk; 0 = none). Updated after every successful append and readable
  /// without the engine lock — the WAL shipper polls it to decide whether
  /// a replica is caught up, and the update path stamps it into the ack.
  uint64_t durable_lsn() const {
    return durable_lsn_.load(std::memory_order_acquire);
  }
  void set_durable_lsn(uint64_t lsn) {
    durable_lsn_.store(lsn, std::memory_order_release);
  }
  /// Monotonic advance — concurrent committers finish out of order, so each
  /// publishes its own commit LSN and the gauge keeps the maximum.
  void AdvanceDurableLsn(uint64_t lsn) {
    uint64_t cur = durable_lsn_.load(std::memory_order_relaxed);
    while (cur < lsn && !durable_lsn_.compare_exchange_weak(
                            cur, lsn, std::memory_order_release,
                            std::memory_order_relaxed)) {
    }
  }

  /// Group-commits one statement's records (plus a commit marker); returns
  /// once they are durable — possibly sharing a single fsync with other
  /// concurrent committers. `commit_lsn`, when non-null, receives this
  /// batch's commit-marker LSN (the caller's read-your-writes ack token).
  /// An I/O failure here means an acknowledged update could be lost, so it
  /// flips the engine read-only and returns Unavailable. An empty buffer
  /// is a no-op (nothing to make durable).
  Status LogStatement(std::vector<storage::WalRecord>* records,
                      uint64_t* commit_lsn = nullptr);

  /// Replica write-through: appends a shipped run of committed batches
  /// verbatim (`last_lsn` = the run's final commit LSN) with the same
  /// fsync and read-only degradation semantics as LogStatement. A failure
  /// here flips the store read-only so the local log never grows a gap —
  /// the replica keeps applying in memory and restarts fall back to
  /// snapshot + stream.
  Status LogShippedFrames(const std::string& frames, uint64_t last_lsn);

  // --- Read-only degradation. ---

  bool read_only() const {
    return read_only_.load(std::memory_order_acquire);
  }
  void EnterReadOnly(const std::string& reason);
  std::string read_only_reason() const;

  // --- Snapshot sequencing (monotonic; recovery seeds it from the highest
  // on-disk seq). ---

  void set_snapshot_seq(uint64_t seq) { snapshot_seq_ = seq; }
  uint64_t AllocateSnapshotSeq() { return ++snapshot_seq_; }

  /// LSN covered by the newest durable snapshot (0 = none yet). Checkpoint
  /// truncates the WAL only below the *previous* snapshot's LSN, so the
  /// retained fallback snapshot plus the kept WAL can still recover
  /// everything if the new snapshot turns out corrupt.
  void set_last_snapshot_lsn(uint64_t lsn) { last_snapshot_lsn_ = lsn; }
  uint64_t last_snapshot_lsn() const { return last_snapshot_lsn_; }

  // --- Accounting. ---

  void RecordRecovery(const RecoveryInfo& info);
  const RecoveryInfo& recovery() const { return recovery_; }
  void RecordCheckpoint();
  void RecordSnapshotFallback(uint64_t n);

 private:
  DurabilityManager(storage::Vfs* vfs, std::string dir);

  storage::Vfs* vfs_;
  std::string dir_;
  std::unique_ptr<storage::WalWriter> wal_;
  uint64_t snapshot_seq_ = 0;
  uint64_t last_snapshot_lsn_ = 0;
  std::atomic<uint64_t> durable_lsn_{0};

  std::atomic<bool> read_only_{false};
  mutable std::mutex reason_mu_;
  std::string read_only_reason_;

  RecoveryInfo recovery_;

  obs::Counter& wal_appends_;
  obs::Counter& wal_records_;
  obs::Counter& wal_bytes_;
  obs::Counter& wal_fsyncs_;
  obs::Counter& wal_errors_;
  obs::Counter& checkpoints_;
  obs::Counter& recovery_records_;
  obs::Counter& recovery_torn_tail_;
  obs::Counter& recovery_fallback_;
  obs::Gauge& read_only_gauge_;
};

}  // namespace engine
}  // namespace scisparql

#endif  // SCISPARQL_ENGINE_DURABILITY_H_
