#include "engine/ssdm.h"

#include <cctype>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "loaders/turtle.h"
#include "obs/metrics.h"
#include "sparql/calculus.h"

namespace scisparql {

SSDM::SSDM() : prefixes_(PrefixMap::WithDefaults()) {
  EnsureStats(&dataset_.default_graph());
  exec_options_.stats = &stats_;
}

void SSDM::EnsureStats(Graph* graph) {
  const opt::GraphStats* existing = stats_.Find(graph);
  // graph() == nullptr means a previous graph at this address was dropped
  // and the collector orphaned; re-attach rebuilds from current content.
  if (existing == nullptr || existing->graph() == nullptr) {
    stats_.Attach(graph);
  }
}

Status SSDM::LoadTurtleFile(const std::string& path,
                            const std::string& graph_iri) {
  Graph* g = graph_iri.empty() ? &dataset_.default_graph()
                               : &dataset_.GetOrCreateNamed(graph_iri);
  EnsureStats(g);
  loaders::TurtleOptions opts;
  opts.prefixes = prefixes_;
  return loaders::LoadTurtleFile(path, g, opts);
}

Status SSDM::LoadTurtleString(const std::string& text,
                              const std::string& graph_iri) {
  Graph* g = graph_iri.empty() ? &dataset_.default_graph()
                               : &dataset_.GetOrCreateNamed(graph_iri);
  EnsureStats(g);
  loaders::TurtleOptions opts;
  opts.prefixes = prefixes_;
  return loaders::LoadTurtleString(text, g, opts);
}

sched::StatementClass SSDM::ClassifyStatement(const std::string& text) {
  size_t i = 0;
  const size_t n = text.size();
  auto word_at = [&](size_t pos) -> std::string {
    std::string w;
    while (pos < n && (std::isalpha(static_cast<unsigned char>(text[pos])) !=
                       0)) {
      w.push_back(static_cast<char>(
          std::toupper(static_cast<unsigned char>(text[pos]))));
      ++pos;
    }
    return w;
  };
  while (i < n) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
    } else if (c == '#') {  // comment to end of line
      while (i < n && text[i] != '\n') ++i;
    } else if (c == '<') {  // IRI token (a prolog PREFIX/BASE argument)
      while (i < n && text[i] != '>') ++i;
      if (i < n) ++i;
    } else if (std::isalpha(static_cast<unsigned char>(c)) != 0) {
      std::string w = word_at(i);
      if (w == "PREFIX" || w == "BASE") {
        i += w.size();
        // Skip the prefix label up to ':' so e.g. "PREFIX select:" cannot
        // confuse the classifier; the IRI is skipped by the '<' branch.
        while (i < n && text[i] != ':' && text[i] != '<' && text[i] != '\n') {
          ++i;
        }
        if (i < n && text[i] == ':') ++i;
        continue;
      }
      if (w == "SELECT" || w == "ASK" || w == "CONSTRUCT" ||
          w == "DESCRIBE" || w == "EXPLAIN" || w == "STATS" ||
          w == "METRICS" || w == "EXECUTE") {
        // EXECUTE runs a PREPARE'd body, which is always a query form.
        return sched::StatementClass::kRead;
      }
      return sched::StatementClass::kWrite;
    } else {
      // Anything else before the statement keyword: not a query form.
      return sched::StatementClass::kWrite;
    }
  }
  return sched::StatementClass::kWrite;
}

namespace {

/// Per-statement-kind execution counters (registered once, bumped with one
/// sharded atomic add per statement).
obs::Counter& StatementCounter(const char* kind) {
  return obs::DefaultMetrics().GetCounter(
      "ssdm_statements_total", std::string("kind=\"") + kind + "\"",
      "Statements executed by the engine, by statement kind.");
}

}  // namespace

std::string SSDM::CacheKeyFor(const std::string& text) const {
  // The same text parses differently under a different prefix table, so
  // the key carries a fingerprint of the session prefixes.
  size_t fp = 0;
  for (const auto& [prefix, iri] : prefixes_.entries()) {
    fp = HashCombine(fp, std::hash<std::string>{}(prefix));
    fp = HashCombine(fp, std::hash<std::string>{}(iri));
  }
  std::string key = NormalizeQueryText(text);
  key += '\x1f';
  key += std::to_string(fp);
  return key;
}

void SSDM::EnableResultCache(size_t budget_bytes) {
  cache::QueryCache::Config c = cache_.config();
  c.result_cache = true;
  c.result_budget_bytes = budget_bytes;
  cache_.Configure(c);
}

void SSDM::DisableResultCache() {
  cache::QueryCache::Config c = cache_.config();
  c.result_cache = false;
  cache_.Configure(c);
}

namespace {

/// Result-cache key for a prepared call: name + definition generation +
/// rendered arguments. Returns false (uncacheable call) when an argument
/// is an array — rendering one would materialize the payload.
bool PreparedResultKey(const cache::PreparedStatement& ps,
                       const std::vector<Term>& args, std::string* out) {
  std::string key = "\x1d";
  key += "EXECUTE";
  key += '\x1f';
  key += ps.name;
  key += '\x1f';
  key += std::to_string(ps.generation);
  for (const Term& a : args) {
    if (a.kind() == Term::Kind::kArray) return false;
    key += '\x1f';
    key += a.ToString();
  }
  *out = std::move(key);
  return true;
}

}  // namespace

bool SSDM::TryCachedResult(const QueryRequest& req, QueryOutcome* out) {
  if (req.trace_sink != nullptr || !cache_.config().result_cache) {
    return false;
  }
  std::string key;
  if (req.prepared.has_value()) {
    std::shared_ptr<const cache::PreparedStatement> ps =
        cache_.FindPrepared(req.prepared->name);
    if (ps == nullptr || !PreparedResultKey(*ps, req.prepared->args, &key)) {
      return false;
    }
  } else {
    key = CacheKeyFor(req.text);
  }
  return cache_.LookupResult(key, dataset_, registry_.generation(), out,
                             /*count_miss=*/false);
}

Result<QueryOutcome> SSDM::RunQueryForm(const ast::SelectQuery& q,
                                        sparql::Executor& exec,
                                        obs::TraceSpan* exec_span) {
  switch (q.form) {
    case ast::SelectQuery::Form::kSelect: {
      SCISPARQL_ASSIGN_OR_RETURN(sparql::QueryResult rows, exec.Select(q));
      StatementCounter("select").Add();
      if (exec_span != nullptr) {
        exec_span->SetAttr("rows", static_cast<int64_t>(rows.rows.size()));
      }
      return QueryOutcome{std::move(rows)};
    }
    case ast::SelectQuery::Form::kAsk: {
      SCISPARQL_ASSIGN_OR_RETURN(bool b, exec.Ask(q));
      StatementCounter("ask").Add();
      return QueryOutcome{b};
    }
    case ast::SelectQuery::Form::kConstruct: {
      SCISPARQL_ASSIGN_OR_RETURN(Graph g, exec.Construct(q));
      StatementCounter("construct").Add();
      if (exec_span != nullptr) {
        exec_span->SetAttr("triples", static_cast<int64_t>(g.size()));
      }
      return QueryOutcome{std::move(g)};
    }
    case ast::SelectQuery::Form::kDescribe: {
      SCISPARQL_ASSIGN_OR_RETURN(Graph g, exec.Describe(q));
      StatementCounter("describe").Add();
      return QueryOutcome{std::move(g)};
    }
  }
  return Status::Internal("unknown query form");
}

Result<QueryOutcome> SSDM::RunPrepared(const std::string& name,
                                       const std::vector<Term>& args,
                                       const sparql::ExecOptions& base_options,
                                       const sched::QueryContext* ctx,
                                       obs::QueryTrace* trace) {
  std::shared_ptr<const cache::PreparedStatement> ps = cache_.FindPrepared(name);
  if (ps == nullptr) {
    return Status::NotFound("no prepared statement named '" + name + "'");
  }
  if (args.size() != ps->params.size()) {
    return Status::InvalidArgument(
        "prepared statement '" + name + "' takes " +
        std::to_string(ps->params.size()) + " argument(s), got " +
        std::to_string(args.size()));
  }

  std::string key;
  bool keyable = PreparedResultKey(*ps, args, &key);
  bool use_result_cache =
      keyable && trace == nullptr && cache_.config().result_cache;
  if (use_result_cache) {
    QueryOutcome hit;
    if (cache_.LookupResult(key, dataset_, registry_.generation(), &hit)) {
      StatementCounter(hit.kind() == QueryOutcome::Kind::kAsk ? "ask"
                                                              : "select")
          .Add();
      return hit;
    }
  }

  // Bind the parameters by prepending a single-row VALUES block to a
  // shallow copy of the shared body: the executor's sideways information
  // passing then treats them as constants everywhere (BGPs, FILTERs,
  // projections), and the plan memo keys on the resolved constants.
  ast::SelectQuery bound = *ps->body;
  if (!ps->params.empty()) {
    ast::PatternElement values;
    values.kind = ast::PatternElement::Kind::kValues;
    values.values.vars = ps->params;
    values.values.rows.push_back(args);
    bound.where.elements.insert(bound.where.elements.begin(),
                                std::move(values));
  }

  sparql::ExecOptions options = base_options;
  options.stats = &stats_;
  options.query = ctx;
  options.trace = trace;
  options.plan_memo = ps->memo.get();
  sparql::Executor exec(&dataset_, &registry_, options);

  obs::TraceSpan* exec_span =
      trace != nullptr ? trace->AddChild(nullptr, "execute") : nullptr;
  if (trace != nullptr) trace->set_attach_point(exec_span);
  obs::SpanTimer exec_timer(exec_span);
  SCISPARQL_ASSIGN_OR_RETURN(QueryOutcome out,
                             RunQueryForm(bound, exec, exec_span));
  exec_timer.Stop();

  if (use_result_cache) {
    cache::CacheAnalysis analysis = cache::AnalyzeQuery(bound, &registry_);
    if (analysis.cacheable) {
      cache_.StoreResult(key, out,
                         cache::DepsFor(analysis, dataset_,
                                        registry_.generation()));
    }
  }
  return out;
}

Result<QueryOutcome> SSDM::Execute(const QueryRequest& req,
                                   const sched::QueryContext* ctx) {
  // Build a context from the request when the caller didn't hand one down
  // (the scheduler computes its own at admission, with queue wait already
  // counted against the deadline).
  sched::QueryContext local_ctx;
  if (ctx == nullptr && (req.timeout.count() > 0 || req.cancel != nullptr)) {
    if (req.timeout.count() > 0) {
      local_ctx = sched::QueryContext::WithTimeout(req.timeout);
    }
    local_ctx.cancel = req.cancel;
    ctx = &local_ctx;
  }

  // Structured prepared execution skips the parser entirely.
  if (req.prepared.has_value()) {
    return RunPrepared(req.prepared->name, req.prepared->args,
                       req.options.has_value() ? *req.options : exec_options_,
                       ctx, req.trace_sink);
  }

  // Introspection statements (not part of the query grammar). All are
  // classified as reads, so the scheduler serves them under its shared
  // lock like any query.
  std::string_view trimmed = StripWhitespace(req.text);
  auto leading_word = [](std::string_view sv) {
    std::string w;
    for (char c : sv) {
      if (std::isalpha(static_cast<unsigned char>(c)) == 0) break;
      w.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
    }
    return w;
  };
  std::string head = leading_word(trimmed);
  if (head == "STATS" && head.size() == trimmed.size()) {
    StatementCounter("info").Add();
    return QueryOutcome{QueryOutcome::Info{StatsReport()}};
  }
  if (head == "METRICS" && head.size() == trimmed.size()) {
    StatementCounter("info").Add();
    return QueryOutcome{
        QueryOutcome::Info{obs::DefaultMetrics().RenderPrometheusText()}};
  }
  if (head == "EXPLAIN" && trimmed.size() > head.size()) {
    std::string_view rest = StripWhitespace(trimmed.substr(head.size()));
    std::string second = leading_word(rest);
    if (second == "ANALYZE" && rest.size() > second.size()) {
      // EXPLAIN ANALYZE: execute the statement with a local trace sink and
      // return the rendered span tree (phase timings plus the same
      // per-scan actual cardinalities EXPLAIN reports).
      obs::QueryTrace trace;
      QueryRequest sub = req;
      sub.text = std::string(rest.substr(second.size()));
      sub.trace_sink = &trace;
      SCISPARQL_ASSIGN_OR_RETURN(QueryOutcome sub_out, Execute(sub, ctx));
      (void)sub_out;
      StatementCounter("info").Add();
      return QueryOutcome{QueryOutcome::Info{trace.Render()}};
    }
    StatementCounter("info").Add();
    SCISPARQL_ASSIGN_OR_RETURN(std::string plan,
                               Explain(std::string(rest)));
    return QueryOutcome{QueryOutcome::Info{std::move(plan)}};
  }

  obs::QueryTrace* trace = req.trace_sink;
  obs::SpanTimer total_timer(trace != nullptr ? trace->root() : nullptr);

  const std::string cache_key = CacheKeyFor(req.text);
  obs::TraceSpan* cache_span =
      trace != nullptr ? trace->AddChild(nullptr, "cache") : nullptr;
  obs::SpanTimer cache_timer(cache_span);

  // Result cache: serve a still-valid read outcome without parsing. Text
  // EXECUTE is excluded — its result key must carry the prepared-statement
  // generation (re-PREPARE changes the result under identical text), so
  // RunPrepared owns that lookup.
  bool result_cacheable_form =
      ClassifyStatement(req.text) == sched::StatementClass::kRead &&
      head != "EXECUTE" && head != "EXPLAIN" && head != "STATS" &&
      head != "METRICS";
  bool use_result_cache = result_cacheable_form && trace == nullptr &&
                          cache_.config().result_cache;
  if (use_result_cache) {
    QueryOutcome hit;
    if (cache_.LookupResult(cache_key, dataset_, registry_.generation(),
                            &hit)) {
      StatementCounter(hit.kind() == QueryOutcome::Kind::kAsk ? "ask"
                                                              : "select")
          .Add();
      return hit;
    }
  }

  // Plan cache: normalized text -> parsed AST + memoized BGP orders. The
  // memo's shared_ptr is held locally so a concurrent clear of the plan
  // map cannot free it mid-execution.
  ast::Statement stmt;
  std::shared_ptr<cache::PlanMemo> memo;
  bool plan_hit = false;
  {
    cache::QueryCache::CachedPlan cached;
    if (cache_.LookupPlan(cache_key, &cached)) {
      stmt = std::move(cached.stmt);
      memo = std::move(cached.memo);
      plan_hit = true;
    }
  }
  if (cache_span != nullptr) {
    cache_span->SetAttr("plan", plan_hit ? "hit" : "miss");
  }
  cache_timer.Stop();

  if (!plan_hit) {
    obs::TraceSpan* parse_span =
        trace != nullptr ? trace->AddChild(nullptr, "parse") : nullptr;
    obs::SpanTimer parse_timer(parse_span);
    SCISPARQL_ASSIGN_OR_RETURN(stmt,
                               sparql::ParseStatement(req.text, prefixes_));
    parse_timer.Stop();
    // Only query forms are worth caching: the AST is data-independent and
    // parses dominate short statements. Updates, DEFINE and PREPARE have
    // side effects on execution, so they always take the full path.
    if (std::holds_alternative<std::shared_ptr<ast::SelectQuery>>(
            stmt.node)) {
      memo = std::make_shared<cache::PlanMemo>();
      cache_.StorePlan(cache_key, {stmt, memo});
    }
  }

  sparql::ExecOptions options =
      req.options.has_value() ? *req.options : exec_options_;
  // Engine-owned state always wins over caller-supplied option structs:
  // the statistics registry belongs to this engine, and the per-call
  // context/trace come from the request.
  options.stats = &stats_;
  options.query = ctx;
  options.trace = trace;
  options.plan_memo = memo.get();
  sparql::Executor exec(&dataset_, &registry_, options);

  if (auto* def = std::get_if<ast::FunctionDef>(&stmt.node)) {
    SCISPARQL_RETURN_NOT_OK(registry_.Define(*def));
    StatementCounter("define").Add();
    // The generation bump makes result entries that called registry
    // functions stale; drop them now so the counters move with the DEFINE.
    cache_.Sweep(dataset_, registry_.generation());
    return QueryOutcome{QueryOutcome::UpdateCount{0}};
  }
  if (auto* prep = std::get_if<ast::PrepareStmt>(&stmt.node)) {
    SCISPARQL_RETURN_NOT_OK(cache_.DefinePrepared(
        prep->name, prep->params,
        std::shared_ptr<const ast::SelectQuery>(prep->body)));
    StatementCounter("prepare").Add();
    return QueryOutcome{QueryOutcome::UpdateCount{0}};
  }
  if (auto* call = std::get_if<ast::ExecuteStmt>(&stmt.node)) {
    return RunPrepared(call->name, call->args, options, ctx, trace);
  }

  obs::TraceSpan* exec_span =
      trace != nullptr ? trace->AddChild(nullptr, "execute") : nullptr;
  if (trace != nullptr) trace->set_attach_point(exec_span);
  obs::SpanTimer exec_timer(exec_span);

  if (auto* update = std::get_if<ast::UpdateOp>(&stmt.node)) {
    SCISPARQL_ASSIGN_OR_RETURN(int64_t n, exec.Update(*update));
    StatementCounter("update").Add();
    if (exec_span != nullptr) exec_span->SetAttr("triples_touched", n);
    if (update->kind == ast::UpdateOp::Kind::kClear && update->clear_all) {
      // CLEAR ALL destroys the named graph objects: epoch-bump both cache
      // layers rather than chase dead pointers.
      cache_.InvalidateAll();
    } else {
      cache_.Sweep(dataset_, registry_.generation());
    }
    return QueryOutcome{QueryOutcome::UpdateCount{n}};
  }
  const auto& q = std::get<std::shared_ptr<ast::SelectQuery>>(stmt.node);
  SCISPARQL_ASSIGN_OR_RETURN(QueryOutcome out,
                             RunQueryForm(*q, exec, exec_span));
  exec_timer.Stop();
  if (use_result_cache) {
    cache::CacheAnalysis analysis = cache::AnalyzeQuery(*q, &registry_);
    if (analysis.cacheable) {
      cache_.StoreResult(cache_key, out,
                         cache::DepsFor(analysis, dataset_,
                                        registry_.generation()));
    }
  }
  return out;
}

Result<SSDM::ExecResult> SSDM::Execute(const std::string& text,
                                       const sched::QueryContext* ctx) {
  QueryRequest req;
  req.text = text;
  SCISPARQL_ASSIGN_OR_RETURN(QueryOutcome out, Execute(req, ctx));
  return ToExecResult(std::move(out));
}

SSDM::ExecResult SSDM::ToExecResult(QueryOutcome out) {
  ExecResult r;
  switch (out.kind()) {
    case QueryOutcome::Kind::kRows:
      r.kind = ExecResult::Kind::kRows;
      r.rows = std::move(out.rows());
      break;
    case QueryOutcome::Kind::kGraph:
      r.kind = ExecResult::Kind::kGraph;
      r.graph = std::move(out.graph());
      break;
    case QueryOutcome::Kind::kAsk:
      r.kind = ExecResult::Kind::kBool;
      r.boolean = out.ask();
      break;
    case QueryOutcome::Kind::kUpdateCount:
      r.kind = ExecResult::Kind::kOk;
      break;
    case QueryOutcome::Kind::kInfo:
      r.kind = ExecResult::Kind::kInfo;
      r.info = out.info();
      break;
  }
  return r;
}

Result<sparql::QueryResult> SSDM::Query(const std::string& text) {
  SCISPARQL_ASSIGN_OR_RETURN(ExecResult r, Execute(text));
  if (r.kind != ExecResult::Kind::kRows) {
    return Status::InvalidArgument("statement is not a SELECT query");
  }
  return std::move(r.rows);
}

Result<bool> SSDM::Ask(const std::string& text) {
  SCISPARQL_ASSIGN_OR_RETURN(ExecResult r, Execute(text));
  if (r.kind != ExecResult::Kind::kBool) {
    return Status::InvalidArgument("statement is not an ASK query");
  }
  return r.boolean;
}

Result<Graph> SSDM::Construct(const std::string& text) {
  SCISPARQL_ASSIGN_OR_RETURN(ExecResult r, Execute(text));
  if (r.kind != ExecResult::Kind::kGraph) {
    return Status::InvalidArgument("statement is not a CONSTRUCT query");
  }
  return std::move(r.graph);
}

Status SSDM::Run(const std::string& text) {
  SCISPARQL_ASSIGN_OR_RETURN(ExecResult r, Execute(text));
  (void)r;
  return Status::OK();
}

Result<std::string> SSDM::Explain(const std::string& text) {
  SCISPARQL_ASSIGN_OR_RETURN(auto q, sparql::ParseQuery(text, prefixes_));
  sparql::Executor exec(&dataset_, &registry_, exec_options_);
  return exec.Explain(*q);
}

std::string SSDM::StatsReport() const {
  std::ostringstream out;
  out << "optimizer statistics (" << (exec_options_.optimize_join_order
                                          ? "join reordering on"
                                          : "join reordering off")
      << "):\n";
  out << stats_.ReportText();
  return out.str();
}

Result<std::string> SSDM::Translate(const std::string& text) {
  SCISPARQL_ASSIGN_OR_RETURN(auto q, sparql::ParseQuery(text, prefixes_));
  if (!exec_options_.optimize_join_order) {
    return sparql::RenderCalculus(*q);
  }
  return sparql::RenderCalculus(*q, &dataset_.default_graph(), &stats_);
}

void SSDM::RegisterForeign(
    const std::string& name,
    std::function<Result<Term>(std::span<const Term>)> fn, int arity,
    double cost) {
  sparql::ForeignFunction f;
  f.fn = std::move(fn);
  f.arity = arity;
  f.cost = cost;
  registry_.RegisterForeign(name, std::move(f));
}

void SSDM::AttachStorage(std::shared_ptr<ArrayStorage> storage) {
  storages_[storage->name()] = std::move(storage);
}

std::shared_ptr<ArrayStorage> SSDM::FindStorage(
    const std::string& name) const {
  auto it = storages_.find(name);
  return it == storages_.end() ? nullptr : it->second;
}

Result<Term> SSDM::StoreArray(const NumericArray& array,
                              const std::string& storage_name,
                              int64_t chunk_elems) {
  std::shared_ptr<ArrayStorage> storage = FindStorage(storage_name);
  if (storage == nullptr) {
    return Status::NotFound("no attached storage: " + storage_name);
  }
  SCISPARQL_ASSIGN_OR_RETURN(ArrayId id, storage->Store(array, chunk_elems));
  return OpenStoredArray(storage_name, id);
}

namespace {
// Snapshot section marker. '#' makes it a comment to any plain Turtle
// tool; the loader splits on it before parsing.
constexpr const char* kGraphMarker = "#%GRAPH ";
}  // namespace

Status SSDM::SaveSnapshot(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) return Status::IoError("cannot write snapshot: " + path);
  out << loaders::WriteTurtle(dataset_.default_graph(), prefixes_);
  for (const auto& [iri, graph] : dataset_.named_graphs()) {
    out << kGraphMarker << iri << "\n";
    out << loaders::WriteTurtle(graph, prefixes_);
  }
  if (!out.good()) return Status::IoError("snapshot write failed");
  return Status::OK();
}

Status SSDM::LoadSnapshot(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return Status::IoError("cannot read snapshot: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();

  Dataset fresh;
  std::string current_graph;  // "" = default
  size_t pos = 0;
  auto flush_section = [&](const std::string& section) -> Status {
    Graph* g = current_graph.empty()
                   ? &fresh.default_graph()
                   : &fresh.GetOrCreateNamed(current_graph);
    loaders::TurtleOptions opts;
    opts.prefixes = prefixes_;
    return loaders::LoadTurtleString(section, g, opts);
  };
  while (pos <= text.size()) {
    size_t marker = text.find(kGraphMarker, pos);
    // A marker only counts at the start of a line.
    while (marker != std::string::npos && marker != 0 &&
           text[marker - 1] != '\n') {
      marker = text.find(kGraphMarker, marker + 1);
    }
    size_t end = marker == std::string::npos ? text.size() : marker;
    SCISPARQL_RETURN_NOT_OK(flush_section(text.substr(pos, end - pos)));
    if (marker == std::string::npos) break;
    size_t line_end = text.find('\n', marker);
    if (line_end == std::string::npos) line_end = text.size();
    current_graph = std::string(StripWhitespace(text.substr(
        marker + std::strlen(kGraphMarker),
        line_end - marker - std::strlen(kGraphMarker))));
    pos = line_end + 1;
  }
  // Replacing the dataset invalidates every statistics collector (named
  // graph objects die; the default graph keeps its address but gets new
  // content and a null listener from the moved-in graph). Drop them while
  // the old graphs are still alive, then re-attach against the new state.
  stats_.Clear();
  dataset_ = std::move(fresh);
  // Graph objects were just destroyed and replaced: bump the cache epoch so
  // neither layer can serve (or revalidate against) the old dataset.
  cache_.InvalidateAll();
  EnsureStats(&dataset_.default_graph());
  for (const auto& [iri, graph] : dataset_.named_graphs()) {
    (void)graph;
    EnsureStats(dataset_.FindNamed(iri));
  }
  return Status::OK();
}

Result<Term> SSDM::OpenStoredArray(const std::string& storage_name,
                                   ArrayId id) {
  std::shared_ptr<ArrayStorage> storage = FindStorage(storage_name);
  if (storage == nullptr) {
    return Status::NotFound("no attached storage: " + storage_name);
  }
  SCISPARQL_ASSIGN_OR_RETURN(
      std::shared_ptr<ArrayProxy> proxy,
      ArrayProxy::Open(std::move(storage), id, exec_options_.apr));
  return Term::Array(std::move(proxy));
}

}  // namespace scisparql
