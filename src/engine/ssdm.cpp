#include "engine/ssdm.h"

#include <cctype>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "loaders/turtle.h"
#include "obs/metrics.h"
#include "sparql/calculus.h"

namespace scisparql {

SSDM::SSDM() : prefixes_(PrefixMap::WithDefaults()) {
  EnsureStats(&dataset_.default_graph());
  exec_options_.stats = &stats_;
}

void SSDM::EnsureStats(Graph* graph) {
  const opt::GraphStats* existing = stats_.Find(graph);
  // graph() == nullptr means a previous graph at this address was dropped
  // and the collector orphaned; re-attach rebuilds from current content.
  if (existing == nullptr || existing->graph() == nullptr) {
    stats_.Attach(graph);
  }
}

Status SSDM::LoadTurtleFile(const std::string& path,
                            const std::string& graph_iri) {
  Graph* g = graph_iri.empty() ? &dataset_.default_graph()
                               : &dataset_.GetOrCreateNamed(graph_iri);
  EnsureStats(g);
  loaders::TurtleOptions opts;
  opts.prefixes = prefixes_;
  return loaders::LoadTurtleFile(path, g, opts);
}

Status SSDM::LoadTurtleString(const std::string& text,
                              const std::string& graph_iri) {
  Graph* g = graph_iri.empty() ? &dataset_.default_graph()
                               : &dataset_.GetOrCreateNamed(graph_iri);
  EnsureStats(g);
  loaders::TurtleOptions opts;
  opts.prefixes = prefixes_;
  return loaders::LoadTurtleString(text, g, opts);
}

sched::StatementClass SSDM::ClassifyStatement(const std::string& text) {
  size_t i = 0;
  const size_t n = text.size();
  auto word_at = [&](size_t pos) -> std::string {
    std::string w;
    while (pos < n && (std::isalpha(static_cast<unsigned char>(text[pos])) !=
                       0)) {
      w.push_back(static_cast<char>(
          std::toupper(static_cast<unsigned char>(text[pos]))));
      ++pos;
    }
    return w;
  };
  while (i < n) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
    } else if (c == '#') {  // comment to end of line
      while (i < n && text[i] != '\n') ++i;
    } else if (c == '<') {  // IRI token (a prolog PREFIX/BASE argument)
      while (i < n && text[i] != '>') ++i;
      if (i < n) ++i;
    } else if (std::isalpha(static_cast<unsigned char>(c)) != 0) {
      std::string w = word_at(i);
      if (w == "PREFIX" || w == "BASE") {
        i += w.size();
        // Skip the prefix label up to ':' so e.g. "PREFIX select:" cannot
        // confuse the classifier; the IRI is skipped by the '<' branch.
        while (i < n && text[i] != ':' && text[i] != '<' && text[i] != '\n') {
          ++i;
        }
        if (i < n && text[i] == ':') ++i;
        continue;
      }
      if (w == "SELECT" || w == "ASK" || w == "CONSTRUCT" ||
          w == "DESCRIBE" || w == "EXPLAIN" || w == "STATS" ||
          w == "METRICS") {
        return sched::StatementClass::kRead;
      }
      return sched::StatementClass::kWrite;
    } else {
      // Anything else before the statement keyword: not a query form.
      return sched::StatementClass::kWrite;
    }
  }
  return sched::StatementClass::kWrite;
}

namespace {

/// Per-statement-kind execution counters (registered once, bumped with one
/// sharded atomic add per statement).
obs::Counter& StatementCounter(const char* kind) {
  return obs::DefaultMetrics().GetCounter(
      "ssdm_statements_total", std::string("kind=\"") + kind + "\"",
      "Statements executed by the engine, by statement kind.");
}

}  // namespace

Result<QueryOutcome> SSDM::Execute(const QueryRequest& req,
                                   const sched::QueryContext* ctx) {
  // Build a context from the request when the caller didn't hand one down
  // (the scheduler computes its own at admission, with queue wait already
  // counted against the deadline).
  sched::QueryContext local_ctx;
  if (ctx == nullptr && (req.timeout.count() > 0 || req.cancel != nullptr)) {
    if (req.timeout.count() > 0) {
      local_ctx = sched::QueryContext::WithTimeout(req.timeout);
    }
    local_ctx.cancel = req.cancel;
    ctx = &local_ctx;
  }

  // Introspection statements (not part of the query grammar). All are
  // classified as reads, so the scheduler serves them under its shared
  // lock like any query.
  std::string_view trimmed = StripWhitespace(req.text);
  auto leading_word = [](std::string_view sv) {
    std::string w;
    for (char c : sv) {
      if (std::isalpha(static_cast<unsigned char>(c)) == 0) break;
      w.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
    }
    return w;
  };
  std::string head = leading_word(trimmed);
  if (head == "STATS" && head.size() == trimmed.size()) {
    StatementCounter("info").Add();
    return QueryOutcome{QueryOutcome::Info{StatsReport()}};
  }
  if (head == "METRICS" && head.size() == trimmed.size()) {
    StatementCounter("info").Add();
    return QueryOutcome{
        QueryOutcome::Info{obs::DefaultMetrics().RenderPrometheusText()}};
  }
  if (head == "EXPLAIN" && trimmed.size() > head.size()) {
    std::string_view rest = StripWhitespace(trimmed.substr(head.size()));
    std::string second = leading_word(rest);
    if (second == "ANALYZE" && rest.size() > second.size()) {
      // EXPLAIN ANALYZE: execute the statement with a local trace sink and
      // return the rendered span tree (phase timings plus the same
      // per-scan actual cardinalities EXPLAIN reports).
      obs::QueryTrace trace;
      QueryRequest sub = req;
      sub.text = std::string(rest.substr(second.size()));
      sub.trace_sink = &trace;
      SCISPARQL_ASSIGN_OR_RETURN(QueryOutcome sub_out, Execute(sub, ctx));
      (void)sub_out;
      StatementCounter("info").Add();
      return QueryOutcome{QueryOutcome::Info{trace.Render()}};
    }
    StatementCounter("info").Add();
    SCISPARQL_ASSIGN_OR_RETURN(std::string plan,
                               Explain(std::string(rest)));
    return QueryOutcome{QueryOutcome::Info{std::move(plan)}};
  }

  obs::QueryTrace* trace = req.trace_sink;
  obs::SpanTimer total_timer(trace != nullptr ? trace->root() : nullptr);

  obs::TraceSpan* parse_span =
      trace != nullptr ? trace->AddChild(nullptr, "parse") : nullptr;
  obs::SpanTimer parse_timer(parse_span);
  SCISPARQL_ASSIGN_OR_RETURN(ast::Statement stmt,
                             sparql::ParseStatement(req.text, prefixes_));
  parse_timer.Stop();

  sparql::ExecOptions options =
      req.options.has_value() ? *req.options : exec_options_;
  // Engine-owned state always wins over caller-supplied option structs:
  // the statistics registry belongs to this engine, and the per-call
  // context/trace come from the request.
  options.stats = &stats_;
  options.query = ctx;
  options.trace = trace;
  sparql::Executor exec(&dataset_, &registry_, options);

  obs::TraceSpan* exec_span =
      trace != nullptr ? trace->AddChild(nullptr, "execute") : nullptr;
  if (trace != nullptr) trace->set_attach_point(exec_span);
  obs::SpanTimer exec_timer(exec_span);

  if (auto* def = std::get_if<ast::FunctionDef>(&stmt.node)) {
    SCISPARQL_RETURN_NOT_OK(registry_.Define(*def));
    StatementCounter("define").Add();
    return QueryOutcome{QueryOutcome::UpdateCount{0}};
  }
  if (auto* update = std::get_if<ast::UpdateOp>(&stmt.node)) {
    SCISPARQL_ASSIGN_OR_RETURN(int64_t n, exec.Update(*update));
    StatementCounter("update").Add();
    if (exec_span != nullptr) exec_span->SetAttr("triples_touched", n);
    return QueryOutcome{QueryOutcome::UpdateCount{n}};
  }
  const auto& q = std::get<std::shared_ptr<ast::SelectQuery>>(stmt.node);
  switch (q->form) {
    case ast::SelectQuery::Form::kSelect: {
      SCISPARQL_ASSIGN_OR_RETURN(sparql::QueryResult rows, exec.Select(*q));
      StatementCounter("select").Add();
      if (exec_span != nullptr) {
        exec_span->SetAttr("rows",
                           static_cast<int64_t>(rows.rows.size()));
      }
      return QueryOutcome{std::move(rows)};
    }
    case ast::SelectQuery::Form::kAsk: {
      SCISPARQL_ASSIGN_OR_RETURN(bool b, exec.Ask(*q));
      StatementCounter("ask").Add();
      return QueryOutcome{b};
    }
    case ast::SelectQuery::Form::kConstruct: {
      SCISPARQL_ASSIGN_OR_RETURN(Graph g, exec.Construct(*q));
      StatementCounter("construct").Add();
      if (exec_span != nullptr) {
        exec_span->SetAttr("triples", static_cast<int64_t>(g.size()));
      }
      return QueryOutcome{std::move(g)};
    }
    case ast::SelectQuery::Form::kDescribe: {
      SCISPARQL_ASSIGN_OR_RETURN(Graph g, exec.Describe(*q));
      StatementCounter("describe").Add();
      return QueryOutcome{std::move(g)};
    }
  }
  return Status::Internal("unknown query form");
}

Result<SSDM::ExecResult> SSDM::Execute(const std::string& text,
                                       const sched::QueryContext* ctx) {
  QueryRequest req;
  req.text = text;
  SCISPARQL_ASSIGN_OR_RETURN(QueryOutcome out, Execute(req, ctx));
  return ToExecResult(std::move(out));
}

SSDM::ExecResult SSDM::ToExecResult(QueryOutcome out) {
  ExecResult r;
  switch (out.kind()) {
    case QueryOutcome::Kind::kRows:
      r.kind = ExecResult::Kind::kRows;
      r.rows = std::move(out.rows());
      break;
    case QueryOutcome::Kind::kGraph:
      r.kind = ExecResult::Kind::kGraph;
      r.graph = std::move(out.graph());
      break;
    case QueryOutcome::Kind::kAsk:
      r.kind = ExecResult::Kind::kBool;
      r.boolean = out.ask();
      break;
    case QueryOutcome::Kind::kUpdateCount:
      r.kind = ExecResult::Kind::kOk;
      break;
    case QueryOutcome::Kind::kInfo:
      r.kind = ExecResult::Kind::kInfo;
      r.info = out.info();
      break;
  }
  return r;
}

Result<sparql::QueryResult> SSDM::Query(const std::string& text) {
  SCISPARQL_ASSIGN_OR_RETURN(ExecResult r, Execute(text));
  if (r.kind != ExecResult::Kind::kRows) {
    return Status::InvalidArgument("statement is not a SELECT query");
  }
  return std::move(r.rows);
}

Result<bool> SSDM::Ask(const std::string& text) {
  SCISPARQL_ASSIGN_OR_RETURN(ExecResult r, Execute(text));
  if (r.kind != ExecResult::Kind::kBool) {
    return Status::InvalidArgument("statement is not an ASK query");
  }
  return r.boolean;
}

Result<Graph> SSDM::Construct(const std::string& text) {
  SCISPARQL_ASSIGN_OR_RETURN(ExecResult r, Execute(text));
  if (r.kind != ExecResult::Kind::kGraph) {
    return Status::InvalidArgument("statement is not a CONSTRUCT query");
  }
  return std::move(r.graph);
}

Status SSDM::Run(const std::string& text) {
  SCISPARQL_ASSIGN_OR_RETURN(ExecResult r, Execute(text));
  (void)r;
  return Status::OK();
}

Result<std::string> SSDM::Explain(const std::string& text) {
  SCISPARQL_ASSIGN_OR_RETURN(auto q, sparql::ParseQuery(text, prefixes_));
  sparql::Executor exec(&dataset_, &registry_, exec_options_);
  return exec.Explain(*q);
}

std::string SSDM::StatsReport() const {
  std::ostringstream out;
  out << "optimizer statistics (" << (exec_options_.optimize_join_order
                                          ? "join reordering on"
                                          : "join reordering off")
      << "):\n";
  out << stats_.ReportText();
  return out.str();
}

Result<std::string> SSDM::Translate(const std::string& text) {
  SCISPARQL_ASSIGN_OR_RETURN(auto q, sparql::ParseQuery(text, prefixes_));
  if (!exec_options_.optimize_join_order) {
    return sparql::RenderCalculus(*q);
  }
  return sparql::RenderCalculus(*q, &dataset_.default_graph(), &stats_);
}

void SSDM::RegisterForeign(
    const std::string& name,
    std::function<Result<Term>(std::span<const Term>)> fn, int arity,
    double cost) {
  sparql::ForeignFunction f;
  f.fn = std::move(fn);
  f.arity = arity;
  f.cost = cost;
  registry_.RegisterForeign(name, std::move(f));
}

void SSDM::AttachStorage(std::shared_ptr<ArrayStorage> storage) {
  storages_[storage->name()] = std::move(storage);
}

std::shared_ptr<ArrayStorage> SSDM::FindStorage(
    const std::string& name) const {
  auto it = storages_.find(name);
  return it == storages_.end() ? nullptr : it->second;
}

Result<Term> SSDM::StoreArray(const NumericArray& array,
                              const std::string& storage_name,
                              int64_t chunk_elems) {
  std::shared_ptr<ArrayStorage> storage = FindStorage(storage_name);
  if (storage == nullptr) {
    return Status::NotFound("no attached storage: " + storage_name);
  }
  SCISPARQL_ASSIGN_OR_RETURN(ArrayId id, storage->Store(array, chunk_elems));
  return OpenStoredArray(storage_name, id);
}

namespace {
// Snapshot section marker. '#' makes it a comment to any plain Turtle
// tool; the loader splits on it before parsing.
constexpr const char* kGraphMarker = "#%GRAPH ";
}  // namespace

Status SSDM::SaveSnapshot(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) return Status::IoError("cannot write snapshot: " + path);
  out << loaders::WriteTurtle(dataset_.default_graph(), prefixes_);
  for (const auto& [iri, graph] : dataset_.named_graphs()) {
    out << kGraphMarker << iri << "\n";
    out << loaders::WriteTurtle(graph, prefixes_);
  }
  if (!out.good()) return Status::IoError("snapshot write failed");
  return Status::OK();
}

Status SSDM::LoadSnapshot(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return Status::IoError("cannot read snapshot: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();

  Dataset fresh;
  std::string current_graph;  // "" = default
  size_t pos = 0;
  auto flush_section = [&](const std::string& section) -> Status {
    Graph* g = current_graph.empty()
                   ? &fresh.default_graph()
                   : &fresh.GetOrCreateNamed(current_graph);
    loaders::TurtleOptions opts;
    opts.prefixes = prefixes_;
    return loaders::LoadTurtleString(section, g, opts);
  };
  while (pos <= text.size()) {
    size_t marker = text.find(kGraphMarker, pos);
    // A marker only counts at the start of a line.
    while (marker != std::string::npos && marker != 0 &&
           text[marker - 1] != '\n') {
      marker = text.find(kGraphMarker, marker + 1);
    }
    size_t end = marker == std::string::npos ? text.size() : marker;
    SCISPARQL_RETURN_NOT_OK(flush_section(text.substr(pos, end - pos)));
    if (marker == std::string::npos) break;
    size_t line_end = text.find('\n', marker);
    if (line_end == std::string::npos) line_end = text.size();
    current_graph = std::string(StripWhitespace(text.substr(
        marker + std::strlen(kGraphMarker),
        line_end - marker - std::strlen(kGraphMarker))));
    pos = line_end + 1;
  }
  // Replacing the dataset invalidates every statistics collector (named
  // graph objects die; the default graph keeps its address but gets new
  // content and a null listener from the moved-in graph). Drop them while
  // the old graphs are still alive, then re-attach against the new state.
  stats_.Clear();
  dataset_ = std::move(fresh);
  EnsureStats(&dataset_.default_graph());
  for (const auto& [iri, graph] : dataset_.named_graphs()) {
    (void)graph;
    EnsureStats(dataset_.FindNamed(iri));
  }
  return Status::OK();
}

Result<Term> SSDM::OpenStoredArray(const std::string& storage_name,
                                   ArrayId id) {
  std::shared_ptr<ArrayStorage> storage = FindStorage(storage_name);
  if (storage == nullptr) {
    return Status::NotFound("no attached storage: " + storage_name);
  }
  SCISPARQL_ASSIGN_OR_RETURN(
      std::shared_ptr<ArrayProxy> proxy,
      ArrayProxy::Open(std::move(storage), id, exec_options_.apr));
  return Term::Array(std::move(proxy));
}

}  // namespace scisparql
