#include "engine/ssdm.h"

#include <cctype>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "loaders/turtle.h"
#include "sparql/calculus.h"

namespace scisparql {

SSDM::SSDM() : prefixes_(PrefixMap::WithDefaults()) {
  EnsureStats(&dataset_.default_graph());
  exec_options_.stats = &stats_;
}

void SSDM::EnsureStats(Graph* graph) {
  const opt::GraphStats* existing = stats_.Find(graph);
  // graph() == nullptr means a previous graph at this address was dropped
  // and the collector orphaned; re-attach rebuilds from current content.
  if (existing == nullptr || existing->graph() == nullptr) {
    stats_.Attach(graph);
  }
}

Status SSDM::LoadTurtleFile(const std::string& path,
                            const std::string& graph_iri) {
  Graph* g = graph_iri.empty() ? &dataset_.default_graph()
                               : &dataset_.GetOrCreateNamed(graph_iri);
  EnsureStats(g);
  loaders::TurtleOptions opts;
  opts.prefixes = prefixes_;
  return loaders::LoadTurtleFile(path, g, opts);
}

Status SSDM::LoadTurtleString(const std::string& text,
                              const std::string& graph_iri) {
  Graph* g = graph_iri.empty() ? &dataset_.default_graph()
                               : &dataset_.GetOrCreateNamed(graph_iri);
  EnsureStats(g);
  loaders::TurtleOptions opts;
  opts.prefixes = prefixes_;
  return loaders::LoadTurtleString(text, g, opts);
}

sched::StatementClass SSDM::ClassifyStatement(const std::string& text) {
  size_t i = 0;
  const size_t n = text.size();
  auto word_at = [&](size_t pos) -> std::string {
    std::string w;
    while (pos < n && (std::isalpha(static_cast<unsigned char>(text[pos])) !=
                       0)) {
      w.push_back(static_cast<char>(
          std::toupper(static_cast<unsigned char>(text[pos]))));
      ++pos;
    }
    return w;
  };
  while (i < n) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
    } else if (c == '#') {  // comment to end of line
      while (i < n && text[i] != '\n') ++i;
    } else if (c == '<') {  // IRI token (a prolog PREFIX/BASE argument)
      while (i < n && text[i] != '>') ++i;
      if (i < n) ++i;
    } else if (std::isalpha(static_cast<unsigned char>(c)) != 0) {
      std::string w = word_at(i);
      if (w == "PREFIX" || w == "BASE") {
        i += w.size();
        // Skip the prefix label up to ':' so e.g. "PREFIX select:" cannot
        // confuse the classifier; the IRI is skipped by the '<' branch.
        while (i < n && text[i] != ':' && text[i] != '<' && text[i] != '\n') {
          ++i;
        }
        if (i < n && text[i] == ':') ++i;
        continue;
      }
      if (w == "SELECT" || w == "ASK" || w == "CONSTRUCT" ||
          w == "DESCRIBE" || w == "EXPLAIN" || w == "STATS") {
        return sched::StatementClass::kRead;
      }
      return sched::StatementClass::kWrite;
    } else {
      // Anything else before the statement keyword: not a query form.
      return sched::StatementClass::kWrite;
    }
  }
  return sched::StatementClass::kWrite;
}

Result<SSDM::ExecResult> SSDM::Execute(const std::string& text,
                                       const sched::QueryContext* ctx) {
  // Introspection statements (not part of the query grammar). Both are
  // classified as reads, so the scheduler serves them under its shared
  // lock like any query.
  std::string_view trimmed = StripWhitespace(text);
  auto leading_word = [&]() {
    std::string w;
    for (char c : trimmed) {
      if (std::isalpha(static_cast<unsigned char>(c)) == 0) break;
      w.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
    }
    return w;
  };
  std::string head = leading_word();
  if (head == "STATS" && head.size() == trimmed.size()) {
    ExecResult out;
    out.kind = ExecResult::Kind::kInfo;
    out.info = StatsReport();
    return out;
  }
  if (head == "EXPLAIN" && trimmed.size() > head.size()) {
    ExecResult out;
    SCISPARQL_ASSIGN_OR_RETURN(
        out.info, Explain(std::string(trimmed.substr(head.size()))));
    out.kind = ExecResult::Kind::kInfo;
    return out;
  }

  SCISPARQL_ASSIGN_OR_RETURN(ast::Statement stmt,
                             sparql::ParseStatement(text, prefixes_));
  sparql::ExecOptions options = exec_options_;
  options.query = ctx;
  sparql::Executor exec(&dataset_, &registry_, options);
  ExecResult out;

  if (auto* def = std::get_if<ast::FunctionDef>(&stmt.node)) {
    SCISPARQL_RETURN_NOT_OK(registry_.Define(*def));
    out.kind = ExecResult::Kind::kOk;
    return out;
  }
  if (auto* update = std::get_if<ast::UpdateOp>(&stmt.node)) {
    SCISPARQL_RETURN_NOT_OK(exec.Update(*update));
    out.kind = ExecResult::Kind::kOk;
    return out;
  }
  const auto& q = std::get<std::shared_ptr<ast::SelectQuery>>(stmt.node);
  switch (q->form) {
    case ast::SelectQuery::Form::kSelect: {
      SCISPARQL_ASSIGN_OR_RETURN(out.rows, exec.Select(*q));
      out.kind = ExecResult::Kind::kRows;
      return out;
    }
    case ast::SelectQuery::Form::kAsk: {
      SCISPARQL_ASSIGN_OR_RETURN(out.boolean, exec.Ask(*q));
      out.kind = ExecResult::Kind::kBool;
      return out;
    }
    case ast::SelectQuery::Form::kConstruct: {
      SCISPARQL_ASSIGN_OR_RETURN(out.graph, exec.Construct(*q));
      out.kind = ExecResult::Kind::kGraph;
      return out;
    }
    case ast::SelectQuery::Form::kDescribe: {
      SCISPARQL_ASSIGN_OR_RETURN(out.graph, exec.Describe(*q));
      out.kind = ExecResult::Kind::kGraph;
      return out;
    }
  }
  return Status::Internal("unknown query form");
}

Result<sparql::QueryResult> SSDM::Query(const std::string& text) {
  SCISPARQL_ASSIGN_OR_RETURN(ExecResult r, Execute(text));
  if (r.kind != ExecResult::Kind::kRows) {
    return Status::InvalidArgument("statement is not a SELECT query");
  }
  return std::move(r.rows);
}

Result<bool> SSDM::Ask(const std::string& text) {
  SCISPARQL_ASSIGN_OR_RETURN(ExecResult r, Execute(text));
  if (r.kind != ExecResult::Kind::kBool) {
    return Status::InvalidArgument("statement is not an ASK query");
  }
  return r.boolean;
}

Result<Graph> SSDM::Construct(const std::string& text) {
  SCISPARQL_ASSIGN_OR_RETURN(ExecResult r, Execute(text));
  if (r.kind != ExecResult::Kind::kGraph) {
    return Status::InvalidArgument("statement is not a CONSTRUCT query");
  }
  return std::move(r.graph);
}

Status SSDM::Run(const std::string& text) {
  SCISPARQL_ASSIGN_OR_RETURN(ExecResult r, Execute(text));
  (void)r;
  return Status::OK();
}

Result<std::string> SSDM::Explain(const std::string& text) {
  SCISPARQL_ASSIGN_OR_RETURN(auto q, sparql::ParseQuery(text, prefixes_));
  sparql::Executor exec(&dataset_, &registry_, exec_options_);
  return exec.Explain(*q);
}

std::string SSDM::StatsReport() const {
  std::ostringstream out;
  out << "optimizer statistics (" << (exec_options_.optimize_join_order
                                          ? "join reordering on"
                                          : "join reordering off")
      << "):\n";
  out << stats_.ReportText();
  return out.str();
}

Result<std::string> SSDM::Translate(const std::string& text) {
  SCISPARQL_ASSIGN_OR_RETURN(auto q, sparql::ParseQuery(text, prefixes_));
  if (!exec_options_.optimize_join_order) {
    return sparql::RenderCalculus(*q);
  }
  return sparql::RenderCalculus(*q, &dataset_.default_graph(), &stats_);
}

void SSDM::RegisterForeign(
    const std::string& name,
    std::function<Result<Term>(std::span<const Term>)> fn, int arity,
    double cost) {
  sparql::ForeignFunction f;
  f.fn = std::move(fn);
  f.arity = arity;
  f.cost = cost;
  registry_.RegisterForeign(name, std::move(f));
}

void SSDM::AttachStorage(std::shared_ptr<ArrayStorage> storage) {
  storages_[storage->name()] = std::move(storage);
}

std::shared_ptr<ArrayStorage> SSDM::FindStorage(
    const std::string& name) const {
  auto it = storages_.find(name);
  return it == storages_.end() ? nullptr : it->second;
}

Result<Term> SSDM::StoreArray(const NumericArray& array,
                              const std::string& storage_name,
                              int64_t chunk_elems) {
  std::shared_ptr<ArrayStorage> storage = FindStorage(storage_name);
  if (storage == nullptr) {
    return Status::NotFound("no attached storage: " + storage_name);
  }
  SCISPARQL_ASSIGN_OR_RETURN(ArrayId id, storage->Store(array, chunk_elems));
  return OpenStoredArray(storage_name, id);
}

namespace {
// Snapshot section marker. '#' makes it a comment to any plain Turtle
// tool; the loader splits on it before parsing.
constexpr const char* kGraphMarker = "#%GRAPH ";
}  // namespace

Status SSDM::SaveSnapshot(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) return Status::IoError("cannot write snapshot: " + path);
  out << loaders::WriteTurtle(dataset_.default_graph(), prefixes_);
  for (const auto& [iri, graph] : dataset_.named_graphs()) {
    out << kGraphMarker << iri << "\n";
    out << loaders::WriteTurtle(graph, prefixes_);
  }
  if (!out.good()) return Status::IoError("snapshot write failed");
  return Status::OK();
}

Status SSDM::LoadSnapshot(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return Status::IoError("cannot read snapshot: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();

  Dataset fresh;
  std::string current_graph;  // "" = default
  size_t pos = 0;
  auto flush_section = [&](const std::string& section) -> Status {
    Graph* g = current_graph.empty()
                   ? &fresh.default_graph()
                   : &fresh.GetOrCreateNamed(current_graph);
    loaders::TurtleOptions opts;
    opts.prefixes = prefixes_;
    return loaders::LoadTurtleString(section, g, opts);
  };
  while (pos <= text.size()) {
    size_t marker = text.find(kGraphMarker, pos);
    // A marker only counts at the start of a line.
    while (marker != std::string::npos && marker != 0 &&
           text[marker - 1] != '\n') {
      marker = text.find(kGraphMarker, marker + 1);
    }
    size_t end = marker == std::string::npos ? text.size() : marker;
    SCISPARQL_RETURN_NOT_OK(flush_section(text.substr(pos, end - pos)));
    if (marker == std::string::npos) break;
    size_t line_end = text.find('\n', marker);
    if (line_end == std::string::npos) line_end = text.size();
    current_graph = std::string(StripWhitespace(text.substr(
        marker + std::strlen(kGraphMarker),
        line_end - marker - std::strlen(kGraphMarker))));
    pos = line_end + 1;
  }
  // Replacing the dataset invalidates every statistics collector (named
  // graph objects die; the default graph keeps its address but gets new
  // content and a null listener from the moved-in graph). Drop them while
  // the old graphs are still alive, then re-attach against the new state.
  stats_.Clear();
  dataset_ = std::move(fresh);
  EnsureStats(&dataset_.default_graph());
  for (const auto& [iri, graph] : dataset_.named_graphs()) {
    (void)graph;
    EnsureStats(dataset_.FindNamed(iri));
  }
  return Status::OK();
}

Result<Term> SSDM::OpenStoredArray(const std::string& storage_name,
                                   ArrayId id) {
  std::shared_ptr<ArrayStorage> storage = FindStorage(storage_name);
  if (storage == nullptr) {
    return Status::NotFound("no attached storage: " + storage_name);
  }
  SCISPARQL_ASSIGN_OR_RETURN(
      std::shared_ptr<ArrayProxy> proxy,
      ArrayProxy::Open(std::move(storage), id, exec_options_.apr));
  return Term::Array(std::move(proxy));
}

}  // namespace scisparql
