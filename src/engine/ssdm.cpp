#include "engine/ssdm.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "engine/durability.h"
#include "loaders/turtle.h"
#include "obs/metrics.h"
#include "repl/wire.h"
#include "sparql/calculus.h"
#include "storage/dict_section.h"
#include "storage/snapshot.h"
#include "storage/wal.h"

namespace scisparql {

SSDM::SSDM() : prefixes_(PrefixMap::WithDefaults()) {
  EnsureStats(&dataset_.default_graph());
  exec_options_.stats = &stats_;
}

SSDM::~SSDM() = default;

void SSDM::EnsureStats(Graph* graph) {
  const opt::GraphStats* existing = stats_.Find(graph);
  // graph() == nullptr means a previous graph at this address was dropped
  // and the collector orphaned; re-attach rebuilds from current content.
  if (existing == nullptr || existing->graph() == nullptr) {
    stats_.Attach(graph);
  }
}

Status SSDM::LoadTurtleFile(const std::string& path,
                            const std::string& graph_iri) {
  Graph* g = graph_iri.empty() ? &dataset_.default_graph()
                               : &dataset_.GetOrCreateNamed(graph_iri);
  EnsureStats(g);
  loaders::TurtleOptions opts;
  opts.prefixes = prefixes_;
  return loaders::LoadTurtleFile(path, g, opts);
}

Status SSDM::LoadTurtleString(const std::string& text,
                              const std::string& graph_iri) {
  Graph* g = graph_iri.empty() ? &dataset_.default_graph()
                               : &dataset_.GetOrCreateNamed(graph_iri);
  EnsureStats(g);
  loaders::TurtleOptions opts;
  opts.prefixes = prefixes_;
  return loaders::LoadTurtleString(text, g, opts);
}

sched::StatementClass SSDM::ClassifyStatement(const std::string& text) {
  size_t i = 0;
  const size_t n = text.size();
  auto word_at = [&](size_t pos) -> std::string {
    std::string w;
    while (pos < n && (std::isalpha(static_cast<unsigned char>(text[pos])) !=
                       0)) {
      w.push_back(static_cast<char>(
          std::toupper(static_cast<unsigned char>(text[pos]))));
      ++pos;
    }
    return w;
  };
  while (i < n) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
    } else if (c == '#') {  // comment to end of line
      while (i < n && text[i] != '\n') ++i;
    } else if (c == '<') {  // IRI token (a prolog PREFIX/BASE argument)
      while (i < n && text[i] != '>') ++i;
      if (i < n) ++i;
    } else if (std::isalpha(static_cast<unsigned char>(c)) != 0) {
      std::string w = word_at(i);
      if (w == "PREFIX" || w == "BASE") {
        i += w.size();
        // Skip the prefix label up to ':' so e.g. "PREFIX select:" cannot
        // confuse the classifier; the IRI is skipped by the '<' branch.
        while (i < n && text[i] != ':' && text[i] != '<' && text[i] != '\n') {
          ++i;
        }
        if (i < n && text[i] == ':') ++i;
        continue;
      }
      if (w == "SELECT" || w == "ASK" || w == "CONSTRUCT" ||
          w == "DESCRIBE" || w == "EXPLAIN" || w == "STATS" ||
          w == "METRICS" || w == "EXECUTE" || w == "REPL") {
        // EXECUTE runs a PREPARE'd body, which is always a query form.
        // REPL introspection (LSN/STATUS/SNAPSHOT) must run under the
        // shared lock so replicas can serve it while applying.
        return sched::StatementClass::kRead;
      }
      if (w == "INSERT" || w == "DELETE" || w == "WITH") {
        // Data updates run under the shared lock: they append into the
        // differential index and group-commit their WAL batch. WITH is the
        // `WITH <g> DELETE/INSERT` modify form. A write that turns out to
        // need exclusivity anyway (it would create a named graph) reports
        // the retry sentinel and the scheduler escalates.
        return sched::StatementClass::kWrite;
      }
      // LOAD, CLEAR, DEFINE, PREPARE, CHECKPOINT and anything unrecognized
      // mutate engine or dataset structure: exclusive lock.
      return sched::StatementClass::kExclusive;
    } else {
      // Anything else before the statement keyword: not a query form.
      return sched::StatementClass::kExclusive;
    }
  }
  return sched::StatementClass::kExclusive;
}

namespace {
/// The escalation sentinel's message (see NeedsExclusiveRetry): matched by
/// string so the Status needs no side channel.
constexpr const char* kNeedsExclusiveMsg =
    "statement requires exclusive engine access";
}  // namespace

bool SSDM::NeedsExclusiveRetry(const Status& st) {
  return st.code() == StatusCode::kFailedPrecondition &&
         st.message() == kNeedsExclusiveMsg;
}

namespace {

/// Per-statement-kind execution counters (registered once, bumped with one
/// sharded atomic add per statement).
obs::Counter& StatementCounter(const char* kind) {
  return obs::DefaultMetrics().GetCounter(
      "ssdm_statements_total", std::string("kind=\"") + kind + "\"",
      "Statements executed by the engine, by statement kind.");
}

}  // namespace

std::string SSDM::CacheKeyFor(const std::string& text) const {
  // The same text parses differently under a different prefix table, so
  // the key carries a fingerprint of the session prefixes.
  size_t fp = 0;
  for (const auto& [prefix, iri] : prefixes_.entries()) {
    fp = HashCombine(fp, std::hash<std::string>{}(prefix));
    fp = HashCombine(fp, std::hash<std::string>{}(iri));
  }
  std::string key = NormalizeQueryText(text);
  key += '\x1f';
  key += std::to_string(fp);
  return key;
}

void SSDM::EnableResultCache(size_t budget_bytes) {
  cache::QueryCache::Config c = cache_.config();
  c.result_cache = true;
  c.result_budget_bytes = budget_bytes;
  cache_.Configure(c);
}

void SSDM::DisableResultCache() {
  cache::QueryCache::Config c = cache_.config();
  c.result_cache = false;
  cache_.Configure(c);
}

namespace {

/// Result-cache key for a prepared call: name + definition generation +
/// rendered arguments. Returns false (uncacheable call) when an argument
/// is an array — rendering one would materialize the payload.
bool PreparedResultKey(const cache::PreparedStatement& ps,
                       const std::vector<Term>& args, std::string* out) {
  std::string key = "\x1d";
  key += "EXECUTE";
  key += '\x1f';
  key += ps.name;
  key += '\x1f';
  key += std::to_string(ps.generation);
  for (const Term& a : args) {
    if (a.kind() == Term::Kind::kArray) return false;
    key += '\x1f';
    key += a.ToString();
  }
  *out = std::move(key);
  return true;
}

}  // namespace

bool SSDM::TryCachedResult(const QueryRequest& req, QueryOutcome* out) {
  if (req.trace_sink != nullptr || !cache_.config().result_cache) {
    return false;
  }
  std::string key;
  if (req.prepared.has_value()) {
    std::shared_ptr<const cache::PreparedStatement> ps =
        cache_.FindPrepared(req.prepared->name);
    if (ps == nullptr || !PreparedResultKey(*ps, req.prepared->args, &key)) {
      return false;
    }
  } else {
    key = CacheKeyFor(req.text);
  }
  return cache_.LookupResult(key, dataset_, registry_.generation(), out,
                             /*count_miss=*/false);
}

Result<QueryOutcome> SSDM::RunQueryForm(const ast::SelectQuery& q,
                                        sparql::Executor& exec,
                                        obs::TraceSpan* exec_span) {
  switch (q.form) {
    case ast::SelectQuery::Form::kSelect: {
      SCISPARQL_ASSIGN_OR_RETURN(sparql::QueryResult rows, exec.Select(q));
      StatementCounter("select").Add();
      if (exec_span != nullptr) {
        exec_span->SetAttr("rows", static_cast<int64_t>(rows.rows.size()));
      }
      return QueryOutcome{std::move(rows)};
    }
    case ast::SelectQuery::Form::kAsk: {
      SCISPARQL_ASSIGN_OR_RETURN(bool b, exec.Ask(q));
      StatementCounter("ask").Add();
      return QueryOutcome{b};
    }
    case ast::SelectQuery::Form::kConstruct: {
      SCISPARQL_ASSIGN_OR_RETURN(Graph g, exec.Construct(q));
      StatementCounter("construct").Add();
      if (exec_span != nullptr) {
        exec_span->SetAttr("triples", static_cast<int64_t>(g.size()));
      }
      return QueryOutcome{std::move(g)};
    }
    case ast::SelectQuery::Form::kDescribe: {
      SCISPARQL_ASSIGN_OR_RETURN(Graph g, exec.Describe(q));
      StatementCounter("describe").Add();
      return QueryOutcome{std::move(g)};
    }
  }
  return Status::Internal("unknown query form");
}

Result<QueryOutcome> SSDM::RunPrepared(const std::string& name,
                                       const std::vector<Term>& args,
                                       const sparql::ExecOptions& base_options,
                                       const sched::QueryContext* ctx,
                                       obs::QueryTrace* trace) {
  std::shared_ptr<const cache::PreparedStatement> ps = cache_.FindPrepared(name);
  if (ps == nullptr) {
    return Status::NotFound("no prepared statement named '" + name + "'");
  }
  if (args.size() != ps->params.size()) {
    return Status::InvalidArgument(
        "prepared statement '" + name + "' takes " +
        std::to_string(ps->params.size()) + " argument(s), got " +
        std::to_string(args.size()));
  }

  std::string key;
  bool keyable = PreparedResultKey(*ps, args, &key);
  bool use_result_cache =
      keyable && trace == nullptr && cache_.config().result_cache;
  if (use_result_cache) {
    QueryOutcome hit;
    if (cache_.LookupResult(key, dataset_, registry_.generation(), &hit)) {
      StatementCounter(hit.kind() == QueryOutcome::Kind::kAsk ? "ask"
                                                              : "select")
          .Add();
      return hit;
    }
  }

  // Bind the parameters by prepending a single-row VALUES block to a
  // shallow copy of the shared body: the executor's sideways information
  // passing then treats them as constants everywhere (BGPs, FILTERs,
  // projections), and the plan memo keys on the resolved constants.
  ast::SelectQuery bound = *ps->body;
  if (!ps->params.empty()) {
    ast::PatternElement values;
    values.kind = ast::PatternElement::Kind::kValues;
    values.values.vars = ps->params;
    values.values.rows.push_back(args);
    bound.where.elements.insert(bound.where.elements.begin(),
                                std::move(values));
  }

  sparql::ExecOptions options = base_options;
  options.stats = &stats_;
  options.query = ctx;
  options.trace = trace;
  options.plan_memo = ps->memo.get();
  sparql::Executor exec(&dataset_, &registry_, options);

  obs::TraceSpan* exec_span =
      trace != nullptr ? trace->AddChild(nullptr, "execute") : nullptr;
  if (trace != nullptr) trace->set_attach_point(exec_span);
  obs::SpanTimer exec_timer(exec_span);
  SCISPARQL_ASSIGN_OR_RETURN(QueryOutcome out,
                             RunQueryForm(bound, exec, exec_span));
  exec_timer.Stop();

  if (use_result_cache) {
    cache::CacheAnalysis analysis = cache::AnalyzeQuery(bound, &registry_);
    if (analysis.cacheable) {
      cache_.StoreResult(key, out,
                         cache::DepsFor(analysis, dataset_,
                                        registry_.generation()));
    }
  }
  return out;
}

Result<QueryOutcome> SSDM::Execute(const QueryRequest& req,
                                   const sched::QueryContext* ctx) {
  // Build a context from the request when the caller didn't hand one down
  // (the scheduler computes its own at admission, with queue wait already
  // counted against the deadline).
  sched::QueryContext local_ctx;
  if (ctx == nullptr && (req.timeout.count() > 0 || req.cancel != nullptr)) {
    if (req.timeout.count() > 0) {
      local_ctx = sched::QueryContext::WithTimeout(req.timeout);
    }
    local_ctx.cancel = req.cancel;
    ctx = &local_ctx;
  }

  // Structured prepared execution skips the parser entirely.
  if (req.prepared.has_value()) {
    return RunPrepared(req.prepared->name, req.prepared->args,
                       req.options.has_value() ? *req.options : exec_options_,
                       ctx, req.trace_sink);
  }

  // Introspection statements (not part of the query grammar). All are
  // classified as reads, so the scheduler serves them under its shared
  // lock like any query.
  std::string_view trimmed = StripWhitespace(req.text);
  auto leading_word = [](std::string_view sv) {
    std::string w;
    for (char c : sv) {
      if (std::isalpha(static_cast<unsigned char>(c)) == 0) break;
      w.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
    }
    return w;
  };
  std::string head = leading_word(trimmed);
  if (head == "STATS" && head.size() == trimmed.size()) {
    StatementCounter("info").Add();
    return QueryOutcome{QueryOutcome::Info{StatsReport()}};
  }
  if (head == "METRICS" && head.size() == trimmed.size()) {
    StatementCounter("info").Add();
    return QueryOutcome{
        QueryOutcome::Info{obs::DefaultMetrics().RenderPrometheusText()}};
  }
  if (head == "REPL" && trimmed.size() > head.size()) {
    std::string verb =
        leading_word(StripWhitespace(trimmed.substr(head.size())));
    StatementCounter("info").Add();
    return ExecuteReplStatement(verb);
  }
  // CHECKPOINT is deliberately absent from ClassifyStatement's read list,
  // so the scheduler runs it under the exclusive lock like any update.
  if (head == "CHECKPOINT" && head.size() == trimmed.size()) {
    SCISPARQL_ASSIGN_OR_RETURN(std::string summary, Checkpoint());
    StatementCounter("checkpoint").Add();
    return QueryOutcome{QueryOutcome::Info{std::move(summary)}};
  }
  if (head == "EXPLAIN" && trimmed.size() > head.size()) {
    std::string_view rest = StripWhitespace(trimmed.substr(head.size()));
    std::string second = leading_word(rest);
    if (second == "ANALYZE" && rest.size() > second.size()) {
      // EXPLAIN ANALYZE: execute the statement with a local trace sink and
      // return the rendered span tree (phase timings plus the same
      // per-scan actual cardinalities EXPLAIN reports).
      obs::QueryTrace trace;
      QueryRequest sub = req;
      sub.text = std::string(rest.substr(second.size()));
      sub.trace_sink = &trace;
      SCISPARQL_ASSIGN_OR_RETURN(QueryOutcome sub_out, Execute(sub, ctx));
      (void)sub_out;
      StatementCounter("info").Add();
      return QueryOutcome{QueryOutcome::Info{trace.Render()}};
    }
    StatementCounter("info").Add();
    SCISPARQL_ASSIGN_OR_RETURN(std::string plan,
                               Explain(std::string(rest)));
    return QueryOutcome{QueryOutcome::Info{std::move(plan)}};
  }

  obs::QueryTrace* trace = req.trace_sink;
  obs::SpanTimer total_timer(trace != nullptr ? trace->root() : nullptr);

  const std::string cache_key = CacheKeyFor(req.text);
  obs::TraceSpan* cache_span =
      trace != nullptr ? trace->AddChild(nullptr, "cache") : nullptr;
  obs::SpanTimer cache_timer(cache_span);

  // Result cache: serve a still-valid read outcome without parsing. Text
  // EXECUTE is excluded — its result key must carry the prepared-statement
  // generation (re-PREPARE changes the result under identical text), so
  // RunPrepared owns that lookup.
  bool result_cacheable_form =
      ClassifyStatement(req.text) == sched::StatementClass::kRead &&
      head != "EXECUTE" && head != "EXPLAIN" && head != "STATS" &&
      head != "METRICS";
  bool use_result_cache = result_cacheable_form && trace == nullptr &&
                          cache_.config().result_cache;
  if (use_result_cache) {
    QueryOutcome hit;
    if (cache_.LookupResult(cache_key, dataset_, registry_.generation(),
                            &hit)) {
      StatementCounter(hit.kind() == QueryOutcome::Kind::kAsk ? "ask"
                                                              : "select")
          .Add();
      return hit;
    }
  }

  // Plan cache: normalized text -> parsed AST + memoized BGP orders. The
  // memo's shared_ptr is held locally so a concurrent clear of the plan
  // map cannot free it mid-execution.
  ast::Statement stmt;
  std::shared_ptr<cache::PlanMemo> memo;
  bool plan_hit = false;
  {
    cache::QueryCache::CachedPlan cached;
    if (cache_.LookupPlan(cache_key, &cached)) {
      stmt = std::move(cached.stmt);
      memo = std::move(cached.memo);
      plan_hit = true;
    }
  }
  if (cache_span != nullptr) {
    cache_span->SetAttr("plan", plan_hit ? "hit" : "miss");
  }
  cache_timer.Stop();

  if (!plan_hit) {
    obs::TraceSpan* parse_span =
        trace != nullptr ? trace->AddChild(nullptr, "parse") : nullptr;
    obs::SpanTimer parse_timer(parse_span);
    SCISPARQL_ASSIGN_OR_RETURN(stmt,
                               sparql::ParseStatement(req.text, prefixes_));
    parse_timer.Stop();
    // Only query forms are worth caching: the AST is data-independent and
    // parses dominate short statements. Updates, DEFINE and PREPARE have
    // side effects on execution, so they always take the full path.
    if (std::holds_alternative<std::shared_ptr<ast::SelectQuery>>(
            stmt.node)) {
      memo = std::make_shared<cache::PlanMemo>();
      cache_.StorePlan(cache_key, {stmt, memo});
    }
  }

  sparql::ExecOptions options =
      req.options.has_value() ? *req.options : exec_options_;
  // Engine-owned state always wins over caller-supplied option structs:
  // the statistics registry belongs to this engine, and the per-call
  // context/trace come from the request.
  options.stats = &stats_;
  options.query = ctx;
  options.trace = trace;
  options.plan_memo = memo.get();
  sparql::Executor exec(&dataset_, &registry_, options);

  if (auto* def = std::get_if<ast::FunctionDef>(&stmt.node)) {
    SCISPARQL_RETURN_NOT_OK(registry_.Define(*def));
    StatementCounter("define").Add();
    // The generation bump makes result entries that called registry
    // functions stale; drop them now so the counters move with the DEFINE.
    cache_.Sweep(dataset_, registry_.generation());
    return QueryOutcome{QueryOutcome::UpdateCount{0}};
  }
  if (auto* prep = std::get_if<ast::PrepareStmt>(&stmt.node)) {
    SCISPARQL_RETURN_NOT_OK(cache_.DefinePrepared(
        prep->name, prep->params,
        std::shared_ptr<const ast::SelectQuery>(prep->body)));
    StatementCounter("prepare").Add();
    return QueryOutcome{QueryOutcome::UpdateCount{0}};
  }
  if (auto* call = std::get_if<ast::ExecuteStmt>(&stmt.node)) {
    return RunPrepared(call->name, call->args, options, ctx, trace);
  }

  obs::TraceSpan* exec_span =
      trace != nullptr ? trace->AddChild(nullptr, "execute") : nullptr;
  if (trace != nullptr) trace->set_attach_point(exec_span);
  obs::SpanTimer exec_timer(exec_span);

  if (auto* update = std::get_if<ast::UpdateOp>(&stmt.node)) {
    if (rejects_writes()) {
      return Status::Unavailable(write_reject_reason());
    }
    if (ctx != nullptr && !ctx->exclusive) {
      // Running under the scheduler's shared lock (the differential write
      // path). Statements that must mutate dataset or engine structure —
      // LOAD, CLEAR, or any update whose named target graph does not exist
      // yet (creating it mutates the shared graph map) — report the retry
      // sentinel; the scheduler re-runs them under the exclusive lock.
      bool needs_exclusive = update->kind == ast::UpdateOp::Kind::kLoad ||
                             update->kind == ast::UpdateOp::Kind::kClear ||
                             (!update->graph.empty() &&
                              dataset_.FindNamed(update->graph) == nullptr);
      if (needs_exclusive) {
        return Status::FailedPrecondition(kNeedsExclusiveMsg);
      }
    }
    engine::WalCapture capture;
    if (durability_ != nullptr) exec.options().mutations = &capture;
    Result<int64_t> updated = exec.Update(*update);
    // The WAL must cover whatever reached memory even when the statement
    // failed partway (there is no rollback): recovery replays this log to
    // reconverge with the state surviving readers observed.
    uint64_t ack_lsn = 0;
    if (durability_ != nullptr) {
      SCISPARQL_RETURN_NOT_OK(
          durability_->LogStatement(&capture.records(), &ack_lsn));
      // A no-op statement logs nothing; its read-your-writes token is
      // whatever is durable already.
      if (ack_lsn == 0) ack_lsn = durability_->durable_lsn();
    }
    SCISPARQL_RETURN_NOT_OK(updated.status());
    int64_t n = *updated;
    StatementCounter("update").Add();
    if (exec_span != nullptr) exec_span->SetAttr("triples_touched", n);
    if (update->kind == ast::UpdateOp::Kind::kClear && update->clear_all) {
      // CLEAR ALL destroys the named graph objects: epoch-bump both cache
      // layers rather than chase dead pointers.
      cache_.InvalidateAll();
    } else {
      cache_.Sweep(dataset_, registry_.generation());
    }
    // The LSN in the ack is the read-your-writes token: under group commit
    // concurrent committers finish out of order, so the ack carries this
    // statement's own commit LSN (the out-param), not the global gauge.
    return QueryOutcome{QueryOutcome::UpdateCount{n, ack_lsn, term()}};
  }
  const auto& q = std::get<std::shared_ptr<ast::SelectQuery>>(stmt.node);
  SCISPARQL_ASSIGN_OR_RETURN(QueryOutcome out,
                             RunQueryForm(*q, exec, exec_span));
  exec_timer.Stop();
  if (use_result_cache) {
    cache::CacheAnalysis analysis = cache::AnalyzeQuery(*q, &registry_);
    if (analysis.cacheable) {
      cache_.StoreResult(cache_key, out,
                         cache::DepsFor(analysis, dataset_,
                                        registry_.generation()));
    }
  }
  return out;
}

Result<std::string> SSDM::Explain(const std::string& text) {
  SCISPARQL_ASSIGN_OR_RETURN(auto q, sparql::ParseQuery(text, prefixes_));
  sparql::Executor exec(&dataset_, &registry_, exec_options_);
  return exec.Explain(*q);
}

std::string SSDM::StatsReport() const {
  std::ostringstream out;
  out << "optimizer statistics (" << (exec_options_.optimize_join_order
                                          ? "join reordering on"
                                          : "join reordering off")
      << "):\n";
  out << stats_.ReportText();
  return out.str();
}

Result<std::string> SSDM::Translate(const std::string& text) {
  SCISPARQL_ASSIGN_OR_RETURN(auto q, sparql::ParseQuery(text, prefixes_));
  if (!exec_options_.optimize_join_order) {
    return sparql::RenderCalculus(*q);
  }
  return sparql::RenderCalculus(*q, &dataset_.default_graph(), &stats_);
}

void SSDM::RegisterForeign(
    const std::string& name,
    std::function<Result<Term>(std::span<const Term>)> fn, int arity,
    double cost) {
  sparql::ForeignFunction f;
  f.fn = std::move(fn);
  f.arity = arity;
  f.cost = cost;
  registry_.RegisterForeign(name, std::move(f));
}

void SSDM::AttachStorage(std::shared_ptr<ArrayStorage> storage) {
  storages_[storage->name()] = std::move(storage);
}

std::shared_ptr<ArrayStorage> SSDM::FindStorage(
    const std::string& name) const {
  auto it = storages_.find(name);
  return it == storages_.end() ? nullptr : it->second;
}

Result<Term> SSDM::StoreArray(const NumericArray& array,
                              const std::string& storage_name,
                              int64_t chunk_elems) {
  std::shared_ptr<ArrayStorage> storage = FindStorage(storage_name);
  if (storage == nullptr) {
    return Status::NotFound("no attached storage: " + storage_name);
  }
  SCISPARQL_ASSIGN_OR_RETURN(ArrayId id, storage->Store(array, chunk_elems));
  return OpenStoredArray(storage_name, id);
}

namespace {
// Legacy snapshot section marker. '#' makes it a comment to any plain
// Turtle tool; the pre-SSNP loader splits on it before parsing.
constexpr const char* kGraphMarker = "#%GRAPH ";

/// Renders the dataset into checksummed-snapshot sections + footer.
/// Sections are dictionary-encoded (distinct terms once, triples as index
/// tuples, stored arrays as back-end refs instead of materialized
/// collections); the loader still accepts Turtle bodies from older
/// snapshots.
Status BuildSnapshotSections(const Dataset& dataset, const PrefixMap& prefixes,
                             uint64_t wal_lsn,
                             std::vector<storage::SnapshotSection>* sections,
                             storage::SnapshotFooter* footer) {
  (void)prefixes;
  footer->wal_lsn = wal_lsn;
  SCISPARQL_ASSIGN_OR_RETURN(
      std::string body, storage::EncodeDictSection(dataset.default_graph()));
  sections->push_back({"", std::move(body)});
  footer->graphs.push_back({"", dataset.default_graph().version(),
                            dataset.default_graph().size()});
  for (const auto& [iri, graph] : dataset.named_graphs()) {
    SCISPARQL_ASSIGN_OR_RETURN(body, storage::EncodeDictSection(graph));
    sections->push_back({iri, std::move(body)});
    footer->graphs.push_back({iri, graph.version(), graph.size()});
  }
  return Status::OK();
}

}  // namespace

Status SSDM::BuildDatasetFromSections(
    const std::vector<std::pair<std::string, std::string>>& sections,
    Dataset* out) {
  for (const auto& [iri, body] : sections) {
    Graph* g = iri.empty() ? &out->default_graph()
                           : &out->GetOrCreateNamed(iri);
    if (storage::IsDictSection(body)) {
      auto resolve = [this](const std::string& name,
                            uint64_t id) -> Result<Term> {
        return OpenStoredArray(name, static_cast<ArrayId>(id));
      };
      SCISPARQL_RETURN_NOT_OK(storage::DecodeDictSection(body, resolve, g));
      continue;
    }
    // Legacy Turtle section (pre-dictionary snapshot).
    loaders::TurtleOptions opts;
    opts.prefixes = prefixes_;
    SCISPARQL_RETURN_NOT_OK(loaders::LoadTurtleString(body, g, opts));
  }
  return Status::OK();
}

void SSDM::BeginConcurrentWrites() {
  if (concurrent_refs_.fetch_add(1, std::memory_order_acq_rel) == 0) {
    dataset_.SetConcurrentWrites(true);
  }
}

void SSDM::EndConcurrentWrites() {
  if (concurrent_refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last holder out: fold what remains so base-mode callers (snapshot
    // encoding, ID-index builds) see the complete picture, then return the
    // graphs to in-place base mutation.
    dataset_.FoldDeltas();
    dataset_.SetConcurrentWrites(false);
  }
}

size_t SSDM::PendingDeltaOps() const { return dataset_.PendingDeltaOps(); }

size_t SSDM::FoldDeltas() { return dataset_.FoldDeltas(); }

void SSDM::InstallDataset(Dataset fresh) {
  // Replacing the dataset invalidates every statistics collector (named
  // graph objects die; the default graph keeps its address but gets new
  // content and a null listener from the moved-in graph). Drop them while
  // the old graphs are still alive, then re-attach against the new state.
  stats_.Clear();
  dataset_ = std::move(fresh);
  // The moved-in dataset carries its own flag state; the engine's
  // concurrent-writes refcount is the truth.
  dataset_.SetConcurrentWrites(
      concurrent_refs_.load(std::memory_order_acquire) > 0);
  // Graph objects were just destroyed and replaced: bump the cache epoch so
  // neither layer can serve (or revalidate against) the old dataset.
  cache_.InvalidateAll();
  EnsureStats(&dataset_.default_graph());
  for (const auto& [iri, graph] : dataset_.named_graphs()) {
    (void)graph;
    EnsureStats(dataset_.FindNamed(iri));
  }
}

Status SSDM::SaveSnapshot(const std::string& path) {
  storage::Vfs* vfs =
      durability_ != nullptr ? durability_->vfs() : storage::DefaultVfs();
  // The dictionary encoder walks the base indexes only.
  dataset_.FoldDeltas();
  std::vector<storage::SnapshotSection> sections;
  storage::SnapshotFooter footer;
  // A standalone snapshot is not coordinated with the WAL; only
  // Checkpoint() stamps a real LSN.
  SCISPARQL_RETURN_NOT_OK(BuildSnapshotSections(
      dataset_, prefixes_, /*wal_lsn=*/0, &sections, &footer));
  return storage::WriteSnapshot(vfs, path, sections, footer);
}

Status SSDM::LoadSnapshot(const std::string& path) {
  storage::Vfs* vfs =
      durability_ != nullptr ? durability_->vfs() : storage::DefaultVfs();
  if (storage::IsSnapshotFile(vfs, path)) {
    SCISPARQL_ASSIGN_OR_RETURN(storage::SnapshotContents contents,
                               storage::ReadSnapshot(vfs, path));
    std::vector<std::pair<std::string, std::string>> sections;
    for (storage::SnapshotSection& sec : contents.sections) {
      sections.emplace_back(std::move(sec.graph_iri), std::move(sec.turtle));
    }
    Dataset fresh;
    SCISPARQL_RETURN_NOT_OK(BuildDatasetFromSections(sections, &fresh));
    InstallDataset(std::move(fresh));
    return Status::OK();
  }

  // Legacy plain-Turtle snapshot with "#%GRAPH <iri>" markers.
  std::ifstream in(path);
  if (!in.good()) return Status::IoError("cannot read snapshot: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();

  Dataset fresh;
  std::string current_graph;  // "" = default
  size_t pos = 0;
  auto flush_section = [&](const std::string& section) -> Status {
    Graph* g = current_graph.empty()
                   ? &fresh.default_graph()
                   : &fresh.GetOrCreateNamed(current_graph);
    loaders::TurtleOptions opts;
    opts.prefixes = prefixes_;
    return loaders::LoadTurtleString(section, g, opts);
  };
  while (pos <= text.size()) {
    size_t marker = text.find(kGraphMarker, pos);
    // A marker only counts at the start of a line.
    while (marker != std::string::npos && marker != 0 &&
           text[marker - 1] != '\n') {
      marker = text.find(kGraphMarker, marker + 1);
    }
    size_t end = marker == std::string::npos ? text.size() : marker;
    SCISPARQL_RETURN_NOT_OK(flush_section(text.substr(pos, end - pos)));
    if (marker == std::string::npos) break;
    size_t line_end = text.find('\n', marker);
    if (line_end == std::string::npos) line_end = text.size();
    current_graph = std::string(StripWhitespace(text.substr(
        marker + std::strlen(kGraphMarker),
        line_end - marker - std::strlen(kGraphMarker))));
    pos = line_end + 1;
  }
  InstallDataset(std::move(fresh));
  return Status::OK();
}

// --- Durable store. ---

namespace {

/// Feeds a replayed WAL record stream through Graph::Apply: contiguous
/// add/remove runs against the same graph accumulate into one WriteBatch,
/// so replay uses the batch-atomic mutation entry point (and its delta or
/// base mode) instead of issuing a one-element batch per record. CLEAR
/// records flush the staged batch first, then take effect in stream order.
class ReplayBatcher {
 public:
  using EnsureFn = std::function<void(Graph*)>;

  /// `ensure` (optional) runs on a target graph right before its batch is
  /// applied — the replication path attaches statistics collectors to
  /// graphs the stream creates.
  explicit ReplayBatcher(Dataset* dataset, EnsureFn ensure = nullptr)
      : dataset_(dataset), ensure_(std::move(ensure)) {}

  Status Apply(const storage::WalRecord& rec) {
    using T = storage::WalRecord::Type;
    switch (rec.type) {
      case T::kAdd:
        Stage(rec.graph)->Add(rec.triple);
        return Status::OK();
      case T::kRemove:
        Stage(rec.graph)->RemoveAll(rec.triple);
        return Status::OK();
      case T::kClearGraph:
        // Flush first: a staged batch may be what creates the graph this
        // record clears.
        Flush();
        if (rec.graph.empty()) {
          dataset_->default_graph().Clear();
        } else if (Graph* g = dataset_->FindNamed(rec.graph)) {
          g->Clear();
        }
        return Status::OK();
      case T::kClearAll: {
        Flush();
        dataset_->default_graph().Clear();
        std::vector<std::string> names;
        for (const auto& [iri, g] : dataset_->named_graphs()) {
          (void)g;
          names.push_back(iri);
        }
        for (const std::string& iri : names) dataset_->DropNamed(iri);
        cleared_all_ = true;
        return Status::OK();
      }
      case T::kCommit:
        return Status::OK();  // markers are consumed by the replayer
      case T::kTermBump:
        return Status::OK();  // no dataset effect; callers track the term
    }
    return Status::Internal("unknown WAL record type");
  }

  /// Applies the staged batch, if any. Call once more after the stream
  /// ends.
  void Flush() {
    if (batch_.empty()) return;
    Graph* g = target_.empty() ? &dataset_->default_graph()
                               : &dataset_->GetOrCreateNamed(target_);
    if (ensure_) ensure_(g);
    g->Apply(std::move(batch_));
    batch_ = WriteBatch();
  }

  /// True once a kClearAll record went through — the caller epoch-bumps
  /// its caches instead of sweeping against destroyed graph objects.
  bool cleared_all() const { return cleared_all_; }

 private:
  WriteBatch* Stage(const std::string& graph) {
    if (!batch_.empty() && graph != target_) Flush();
    target_ = graph;
    return &batch_;
  }

  Dataset* dataset_;
  EnsureFn ensure_;
  WriteBatch batch_;
  std::string target_;
  bool cleared_all_ = false;
};

}  // namespace

bool SSDM::read_only() const {
  if (durability_ != nullptr) return durability_->read_only();
  return soft_read_only_.load(std::memory_order_acquire);
}

void SSDM::EnterReadOnly(const std::string& reason) {
  if (durability_ != nullptr) {
    durability_->EnterReadOnly(reason);
    return;
  }
  if (soft_read_only_reason_.empty()) soft_read_only_reason_ = reason;
  soft_read_only_.store(true, std::memory_order_release);
  obs::DefaultMetrics()
      .GetGauge("ssdm_engine_read_only", "",
                "1 while the engine rejects writes after a durable-media "
                "failure.")
      .Set(1);
}

std::string SSDM::read_only_reason() const {
  if (durability_ != nullptr) return durability_->read_only_reason();
  return soft_read_only_reason_;
}

Status SSDM::Open(const std::string& dir, storage::Vfs* vfs) {
  // A degraded (sticky read-only) engine must not start writing a fresh
  // store: recovery would WAL-replay and StartWal against media the engine
  // already decided it cannot trust. Checked before the already-open guard
  // so a degraded store reports its real condition, not "already open".
  if (read_only()) {
    return Status::FailedPrecondition(
        "engine is read-only and cannot open a durable store: " +
        read_only_reason());
  }
  if (durability_ != nullptr) {
    return Status::InvalidArgument("durable store already open: " +
                                   durability_->dir());
  }
  if (vfs == nullptr) vfs = storage::DefaultVfs();
  SCISPARQL_ASSIGN_OR_RETURN(std::unique_ptr<engine::DurabilityManager> dm,
                             engine::DurabilityManager::Open(vfs, dir));
  engine::DurabilityManager::RecoveryInfo info;

  // Newest CRC-valid snapshot wins; corrupt ones fall back to older
  // snapshots (whose WAL segments the failed checkpoint never truncated).
  SCISPARQL_ASSIGN_OR_RETURN(auto snaps, storage::ListSnapshots(vfs, dir));
  Dataset fresh;
  uint64_t after_lsn = 0;
  for (auto it = snaps.rbegin(); it != snaps.rend(); ++it) {
    Result<storage::SnapshotContents> contents =
        storage::ReadSnapshot(vfs, it->second);
    if (!contents.ok()) {
      ++info.snapshots_skipped;
      continue;
    }
    std::vector<std::pair<std::string, std::string>> sections;
    for (storage::SnapshotSection& sec : contents->sections) {
      sections.emplace_back(std::move(sec.graph_iri), std::move(sec.turtle));
    }
    Dataset candidate;
    Status built = BuildDatasetFromSections(sections, &candidate);
    if (!built.ok()) {
      ++info.snapshots_skipped;
      continue;
    }
    fresh = std::move(candidate);
    after_lsn = contents->footer.wal_lsn;
    AdoptTerm(contents->footer.term);
    info.snapshot_path = it->second;
    break;
  }

  // Replay committed WAL batches past the snapshot. Replay is idempotent
  // relative to the snapshot because every record below `after_lsn` is
  // skipped and batches apply whole-or-not-at-all.
  auto resolve = [this](const std::string& storage_name,
                        uint64_t array_id) -> Result<Term> {
    return OpenStoredArray(storage_name, static_cast<ArrayId>(array_id));
  };
  ReplayBatcher batcher(&fresh);
  auto apply = [this, &batcher](const storage::WalRecord& rec) -> Status {
    if (rec.type == storage::WalRecord::Type::kTermBump) {
      AdoptTerm(rec.aux);
      return Status::OK();
    }
    return batcher.Apply(rec);
  };
  SCISPARQL_ASSIGN_OR_RETURN(
      storage::WalReplayStats replay,
      storage::ReplayWal(vfs, dm->wal_dir(), after_lsn, resolve, apply));
  batcher.Flush();

  InstallDataset(std::move(fresh));
  uint64_t next_lsn = std::max(after_lsn, replay.last_lsn) + 1;
  SCISPARQL_RETURN_NOT_OK(dm->StartWal(next_lsn));
  dm->set_snapshot_seq(snaps.empty() ? 0 : snaps.back().first);
  dm->set_last_snapshot_lsn(after_lsn);
  info.records_replayed = replay.records_applied;
  info.batches_replayed = replay.batches_applied;
  info.torn_tail = replay.torn_tail;
  info.next_lsn = next_lsn;
  dm->RecordRecovery(info);
  durability_ = std::move(dm);
  return Status::OK();
}

Result<std::string> SSDM::Checkpoint() {
  if (replica_mode()) {
    // Client CHECKPOINT belongs on the primary — answered first so even a
    // memory-only replica points the caller there; the applier compacts a
    // durable replica's own store via CheckpointAsReplica on its schedule.
    return Status::Unavailable(write_reject_reason());
  }
  if (durability_ == nullptr) {
    return Status::InvalidArgument(
        "no durable store attached: call Open() first");
  }
  if (durability_->read_only()) {
    return Status::Unavailable("engine is read-only: " +
                               durability_->read_only_reason());
  }
  return CheckpointLocked();
}

Result<std::string> SSDM::CheckpointAsReplica() {
  if (durability_ == nullptr) {
    return Status::InvalidArgument(
        "no durable store attached: call Open() first");
  }
  if (durability_->read_only()) {
    return Status::Unavailable("engine is read-only: " +
                               durability_->read_only_reason());
  }
  return CheckpointLocked();
}

Result<std::string> SSDM::CheckpointLocked() {
  // The snapshot encoder reads the base indexes only; the caller holds the
  // engine exclusively, so folding here is safe and makes the snapshot
  // cover every committed delta.
  dataset_.FoldDeltas();
  storage::WalWriter* wal = durability_->wal();
  // Rotation seals the current segment so every LSN covered by the new
  // snapshot lives in segments the truncation below may delete, and no
  // kept segment mixes covered with uncovered records.
  wal->Rotate();
  const uint64_t snapshot_lsn = wal->next_lsn() - 1;

  std::vector<storage::SnapshotSection> sections;
  storage::SnapshotFooter footer;
  SCISPARQL_RETURN_NOT_OK(BuildSnapshotSections(dataset_, prefixes_,
                                                snapshot_lsn, &sections,
                                                &footer));
  footer.term = term();

  uint64_t seq = durability_->AllocateSnapshotSeq();
  std::string path =
      durability_->dir() + "/" + storage::SnapshotFileName(seq);
  SCISPARQL_RETURN_NOT_OK(
      storage::WriteSnapshot(durability_->vfs(), path, sections, footer));
  // Truncate only WAL the *previous* snapshot no longer needs: if this new
  // snapshot is later found corrupt, recovery falls back to the retained
  // one and replays the kept segments across the gap.
  const uint64_t keep_from = durability_->last_snapshot_lsn() + 1;
  SCISPARQL_RETURN_NOT_OK(storage::TruncateWalBelow(
      durability_->vfs(), durability_->wal_dir(), keep_from));
  durability_->set_last_snapshot_lsn(snapshot_lsn);
  // Keep the newest two snapshots — current plus the corruption fallback;
  // pruning older ones is best-effort cleanup.
  SCISPARQL_ASSIGN_OR_RETURN(
      auto snaps, storage::ListSnapshots(durability_->vfs(),
                                         durability_->dir()));
  for (size_t i = 0; i + 2 < snaps.size(); ++i) {
    (void)durability_->vfs()->Remove(snaps[i].second);
  }
  durability_->RecordCheckpoint();
  std::ostringstream out;
  out << "checkpoint: snapshot " << path << " at lsn " << snapshot_lsn
      << ", wal truncated below lsn " << keep_from;
  return out.str();
}

// --- Replication. ---

uint64_t SSDM::last_lsn() const {
  uint64_t durable = durability_ != nullptr ? durability_->durable_lsn() : 0;
  uint64_t applied = applied_lsn_.load(std::memory_order_acquire);
  return std::max(durable, applied);
}

void SSDM::EnterReplicaMode(const std::string& primary_desc) {
  replica_primary_ = primary_desc;
  // Recovery hand-off: whatever snapshot + local-WAL recovery rebuilt is
  // the stream position to resume from.
  applied_lsn_.store(last_lsn(), std::memory_order_release);
  replica_mode_.store(true, std::memory_order_release);
}

namespace {

obs::Gauge& TermGauge() {
  return obs::DefaultMetrics().GetGauge(
      "ssdm_repl_term", "", "Current replication fencing term of this node.");
}

}  // namespace

void SSDM::AdoptTerm(uint64_t t) {
  uint64_t cur = term_.load(std::memory_order_relaxed);
  while (t > cur && !term_.compare_exchange_weak(cur, t,
                                                 std::memory_order_release,
                                                 std::memory_order_relaxed)) {
  }
  TermGauge().Set(static_cast<int64_t>(term()));
}

Status SSDM::Promote(uint64_t new_term) {
  if (!replica_mode()) {
    return Status::FailedPrecondition("Promote: engine is not a replica");
  }
  if (read_only()) {
    return Status::Unavailable("Promote: engine is read-only: " +
                               read_only_reason());
  }
  if (new_term <= term()) new_term = term() + 1;
  if (durability_ != nullptr) {
    // The bump is a normal committed batch: it persists locally, ships to
    // followers through the ordinary stream (they adopt it on apply), and
    // replays on restart. If it cannot be made durable, promotion fails
    // and the engine stays a replica.
    std::vector<storage::WalRecord> records;
    storage::WalRecord bump;
    bump.type = storage::WalRecord::Type::kTermBump;
    bump.aux = new_term;
    records.push_back(std::move(bump));
    SCISPARQL_RETURN_NOT_OK(durability_->LogStatement(&records));
  }
  AdoptTerm(new_term);
  replica_mode_.store(false, std::memory_order_release);
  replica_primary_.clear();
  obs::DefaultMetrics()
      .GetCounter("ssdm_repl_promotions_total", "",
                  "Times this node promoted itself to primary.")
      .Add();
  return Status::OK();
}

void SSDM::DemoteToReplica(uint64_t new_term, const std::string& primary_desc) {
  AdoptTerm(new_term);
  EnterReplicaMode(primary_desc);
  obs::DefaultMetrics()
      .GetCounter("ssdm_repl_demotions_total", "",
                  "Times this node stepped down after seeing a higher term.")
      .Add();
}

std::string SSDM::write_reject_reason() const {
  if (read_only()) return "engine is read-only: " + read_only_reason();
  if (replica_mode()) {
    std::string r = "replica is read-only; send writes to the primary";
    if (!replica_primary_.empty()) r += " at " + replica_primary_;
    return r;
  }
  return "";
}

Status SSDM::ApplyReplicationFrames(const std::string& frames) {
  const uint64_t after = last_lsn();
  auto resolve = [this](const std::string& storage_name,
                        uint64_t array_id) -> Result<Term> {
    return OpenStoredArray(storage_name, static_cast<ArrayId>(array_id));
  };
  ReplayBatcher batcher(&dataset_,
                        [this](Graph* g) { EnsureStats(g); });
  auto apply = [this, &batcher](const storage::WalRecord& rec) -> Status {
    if (rec.type == storage::WalRecord::Type::kTermBump) {
      // A promotion upstream: the stream carries the new term to every
      // follower, exactly like recovery does locally.
      AdoptTerm(rec.aux);
      return Status::OK();
    }
    return batcher.Apply(rec);
  };
  SCISPARQL_ASSIGN_OR_RETURN(
      storage::WalReplayStats stats,
      storage::ApplyWalFrames(frames, after, resolve, apply));
  batcher.Flush();
  if (stats.last_lsn > after) {
    // Write the shipped batches through to the local log before exposing
    // the new LSN: a durable replica's WAL stays a byte-identical prefix of
    // the primary's. A write-through failure flips the store read-only
    // (inside LogShippedFrames) and replication degrades to memory-only —
    // the applied LSN still advances so reads stay fresh.
    if (durability_ != nullptr && !durability_->read_only()) {
      (void)durability_->LogShippedFrames(frames, stats.last_lsn);
    }
    applied_lsn_.store(stats.last_lsn, std::memory_order_release);
  }
  // Same invalidation discipline as the local update path: version bumps
  // from Add/Remove/Clear let Sweep evict precisely; CLEAR ALL destroyed
  // graph objects, so epoch-bump instead.
  if (batcher.cleared_all()) {
    cache_.InvalidateAll();
  } else if (stats.records_applied > 0) {
    cache_.Sweep(dataset_, registry_.generation());
  }
  return Status::OK();
}

Status SSDM::BootstrapFromReplication(
    const std::vector<std::pair<std::string, std::string>>& sections,
    uint64_t lsn) {
  Dataset fresh;
  SCISPARQL_RETURN_NOT_OK(BuildDatasetFromSections(sections, &fresh));
  InstallDataset(std::move(fresh));
  applied_lsn_.store(lsn, std::memory_order_release);
  if (durability_ != nullptr && !durability_->read_only()) {
    // Re-base the local store on the primary's timeline: drop the ENTIRE
    // local WAL — a demoted ex-primary can hold segments AHEAD of the
    // snapshot LSN whose contents diverge from the new timeline, so
    // keeping anything past the snapshot would poison the next recovery.
    // Then restart the writer at lsn+1 and persist a checkpoint so the
    // next restart recovers to this point instead of a stale one. Failure
    // leaves memory correct but the store untrustworthy -> sticky
    // read-only, replication continues memory-only.
    Status st = storage::TruncateWalBelow(
        durability_->vfs(), durability_->wal_dir(), UINT64_MAX);
    if (st.ok()) {
      durability_->wal()->ResetTo(lsn + 1);
      durability_->set_durable_lsn(lsn);
      st = CheckpointLocked().status();
    }
    if (st.ok()) {
      // Old-timeline snapshots are equally poisonous as fallbacks: prune
      // everything but the checkpoint just written.
      auto snaps =
          storage::ListSnapshots(durability_->vfs(), durability_->dir());
      if (snaps.ok()) {
        for (size_t i = 0; i + 1 < snaps->size(); ++i) {
          (void)durability_->vfs()->Remove((*snaps)[i].second);
        }
      }
    }
    if (!st.ok()) {
      EnterReadOnly("replica bootstrap could not re-base the local store: " +
                    st.message());
    }
  }
  return Status::OK();
}

Result<QueryOutcome> SSDM::ExecuteReplStatement(const std::string& verb) {
  if (verb == "LSN") {
    return QueryOutcome{QueryOutcome::Info{std::to_string(last_lsn())}};
  }
  if (verb == "STATUS") {
    std::ostringstream out;
    out << "role=" << (replica_mode() ? "replica" : "primary")
        << " lsn=" << last_lsn() << " term=" << term()
        << " node=" << node_id_
        << " durable=" << (durability_ != nullptr ? "true" : "false")
        << " read_only=" << (read_only() ? "true" : "false");
    if (replica_mode() && !replica_primary_.empty()) {
      out << " primary=" << replica_primary_;
    }
    return QueryOutcome{QueryOutcome::Info{out.str()}};
  }
  if (verb == "SNAPSHOT") {
    // A consistent full-dataset export for replica bootstrap, taken under
    // whatever lock the scheduler granted this read-class statement. The
    // Info body is the replication snapshot encoding, not display text.
    std::vector<std::pair<std::string, std::string>> sections;
    sections.emplace_back(
        "", loaders::WriteTurtle(dataset_.default_graph(), prefixes_));
    for (const auto& [iri, graph] : dataset_.named_graphs()) {
      sections.emplace_back(iri, loaders::WriteTurtle(graph, prefixes_));
    }
    return QueryOutcome{QueryOutcome::Info{
        repl::EncodeSnapshotBody(sections, last_lsn(), term())}};
  }
  return Status::InvalidArgument(
      "unknown REPL statement: REPL " + verb +
      " (expected REPL LSN, REPL STATUS or REPL SNAPSHOT)");
}

Result<Term> SSDM::OpenStoredArray(const std::string& storage_name,
                                   ArrayId id) {
  std::shared_ptr<ArrayStorage> storage = FindStorage(storage_name);
  if (storage == nullptr) {
    return Status::NotFound("no attached storage: " + storage_name);
  }
  SCISPARQL_ASSIGN_OR_RETURN(
      std::shared_ptr<ArrayProxy> proxy,
      ArrayProxy::Open(std::move(storage), id, exec_options_.apr));
  return Term::Array(std::move(proxy));
}

}  // namespace scisparql
