#include "engine/durability.h"

#include <sstream>

namespace scisparql {
namespace engine {

std::string DurabilityManager::RecoveryInfo::ToString() const {
  std::ostringstream out;
  out << "recovery: snapshot="
      << (snapshot_path.empty() ? "<none>" : snapshot_path)
      << " snapshots_skipped=" << snapshots_skipped
      << " batches_replayed=" << batches_replayed
      << " records_replayed=" << records_replayed
      << " torn_tail=" << (torn_tail ? "true" : "false")
      << " next_lsn=" << next_lsn;
  return out.str();
}

DurabilityManager::DurabilityManager(storage::Vfs* vfs, std::string dir)
    : vfs_(vfs),
      dir_(std::move(dir)),
      wal_appends_(obs::DefaultMetrics().GetCounter(
          "ssdm_wal_appends_total", "",
          "WAL batch appends (one per durable update statement).")),
      wal_records_(obs::DefaultMetrics().GetCounter(
          "ssdm_wal_records_total", "",
          "Redo records written to the WAL (commit markers excluded).")),
      wal_bytes_(obs::DefaultMetrics().GetCounter(
          "ssdm_wal_bytes_total", "", "Bytes appended to the WAL.")),
      wal_fsyncs_(obs::DefaultMetrics().GetCounter(
          "ssdm_wal_fsyncs_total", "",
          "fsync calls issued by the WAL group commit.")),
      wal_errors_(obs::DefaultMetrics().GetCounter(
          "ssdm_wal_errors_total", "",
          "WAL append failures; each flips the engine read-only.")),
      checkpoints_(obs::DefaultMetrics().GetCounter(
          "ssdm_checkpoints_total", "",
          "Snapshots successfully written by CHECKPOINT.")),
      recovery_records_(obs::DefaultMetrics().GetCounter(
          "ssdm_recovery_replayed_records_total", "",
          "Redo records re-applied from the WAL during crash recovery.")),
      recovery_torn_tail_(obs::DefaultMetrics().GetCounter(
          "ssdm_recovery_torn_tail_total", "",
          "Recoveries that found (and cleanly discarded) a torn WAL "
          "tail.")),
      recovery_fallback_(obs::DefaultMetrics().GetCounter(
          "ssdm_recovery_snapshot_fallback_total", "",
          "Corrupt snapshots skipped during recovery in favour of an "
          "older one.")),
      read_only_gauge_(obs::DefaultMetrics().GetGauge(
          "ssdm_engine_read_only", "",
          "1 while the engine rejects writes after a durable-media "
          "failure.")) {}

Result<std::unique_ptr<DurabilityManager>> DurabilityManager::Open(
    storage::Vfs* vfs, std::string dir) {
  SCISPARQL_RETURN_NOT_OK(vfs->CreateDir(dir));
  std::unique_ptr<DurabilityManager> dm(
      new DurabilityManager(vfs, std::move(dir)));
  SCISPARQL_RETURN_NOT_OK(vfs->CreateDir(dm->wal_dir()));
  dm->read_only_gauge_.Set(0);
  return dm;
}

Status DurabilityManager::StartWal(uint64_t next_lsn) {
  SCISPARQL_ASSIGN_OR_RETURN(
      wal_, storage::WalWriter::Create(vfs_, wal_dir(), next_lsn));
  // Fsync/byte accounting lives at the device seam: with group commit one
  // fsync can cover many statements, so per-call counting over-reports.
  wal_->set_on_sync([this](size_t bytes) {
    wal_fsyncs_.Add();
    wal_bytes_.Add(static_cast<uint64_t>(bytes));
  });
  set_durable_lsn(next_lsn - 1);
  return Status::OK();
}

Status DurabilityManager::LogStatement(std::vector<storage::WalRecord>* records,
                                       uint64_t* commit_lsn) {
  if (records->empty()) return Status::OK();
  if (read_only()) {
    return Status::Unavailable("engine is read-only: " + read_only_reason());
  }
  uint64_t my_commit = 0;
  Status st = wal_->AppendBatch(*records, &my_commit);
  if (!st.ok()) {
    wal_errors_.Add();
    EnterReadOnly("WAL append failed: " + st.message());
    return Status::Unavailable(
        "update applied in memory but could not be made durable (" +
        st.message() + "); engine is now read-only");
  }
  wal_appends_.Add();
  wal_records_.Add(records->size());
  // Our own commit LSN, not next_lsn()-1: another writer may have appended
  // (but not yet synced) past us by the time we get here.
  AdvanceDurableLsn(my_commit);
  if (commit_lsn) *commit_lsn = my_commit;
  return Status::OK();
}

Status DurabilityManager::LogShippedFrames(const std::string& frames,
                                           uint64_t last_lsn) {
  if (frames.empty()) return Status::OK();
  if (read_only()) {
    return Status::Unavailable("engine is read-only: " + read_only_reason());
  }
  Status st = wal_->AppendRaw(frames, last_lsn + 1);
  if (!st.ok()) {
    wal_errors_.Add();
    EnterReadOnly("replica WAL append failed: " + st.message());
    return Status::Unavailable(
        "shipped batch applied in memory but could not be written through "
        "to the local WAL (" + st.message() + "); store is now read-only");
  }
  wal_appends_.Add();
  AdvanceDurableLsn(last_lsn);
  return Status::OK();
}

void DurabilityManager::EnterReadOnly(const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(reason_mu_);
    // Keep the first reason — it names the root cause.
    if (read_only_reason_.empty()) read_only_reason_ = reason;
  }
  read_only_.store(true, std::memory_order_release);
  read_only_gauge_.Set(1);
}

std::string DurabilityManager::read_only_reason() const {
  std::lock_guard<std::mutex> lock(reason_mu_);
  return read_only_reason_;
}

void DurabilityManager::RecordRecovery(const RecoveryInfo& info) {
  recovery_ = info;
  recovery_records_.Add(info.records_replayed);
  if (info.torn_tail) recovery_torn_tail_.Add();
  if (info.snapshots_skipped > 0) {
    recovery_fallback_.Add(info.snapshots_skipped);
  }
}

void DurabilityManager::RecordCheckpoint() { checkpoints_.Add(); }

void DurabilityManager::RecordSnapshotFallback(uint64_t n) {
  recovery_fallback_.Add(n);
}

}  // namespace engine
}  // namespace scisparql
