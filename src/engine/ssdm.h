#ifndef SCISPARQL_ENGINE_SSDM_H_
#define SCISPARQL_ENGINE_SSDM_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cache/query_cache.h"
#include "common/status.h"
#include "engine/query_api.h"
#include "opt/stats.h"
#include "rdf/graph.h"
#include "rdf/namespaces.h"
#include "sparql/executor.h"
#include "sparql/functions.h"
#include "sparql/parser.h"
#include "storage/array_proxy.h"
#include "storage/asei.h"
#include "storage/vfs.h"

namespace scisparql {

namespace engine {
class DurabilityManager;
}  // namespace engine

/// Scientific SPARQL Database Manager — the engine facade (Chapter 5).
/// Owns the RDF-with-Arrays dataset, the function registry, attached array
/// storage back-ends, session prefixes and execution options; parses and
/// executes SciSPARQL statements.
class SSDM {
 public:
  SSDM();
  ~SSDM();

  SSDM(const SSDM&) = delete;
  SSDM& operator=(const SSDM&) = delete;

  // --- Durable store (write-ahead log + checksummed snapshots). ---

  /// Opens (or creates) a durable store at directory `dir` and recovers
  /// the dataset from it: the newest CRC-valid snapshot is loaded (corrupt
  /// ones are skipped in favour of older ones), then the write-ahead log
  /// is replayed past the snapshot's LSN — committed batches only, so the
  /// dataset lands on an exact statement boundary; a torn tail from a
  /// crash mid-append is discarded cleanly. Afterwards every update
  /// statement routed through Execute() appends redo records to the WAL
  /// and fsyncs *before* the statement is acknowledged.
  ///
  /// Attach array storage back-ends before calling Open so WAL records
  /// that reference stored arrays can be resolved during replay. Loads via
  /// the direct LoadTurtle* API are NOT logged — use the LOAD statement,
  /// or run CHECKPOINT after a bulk load.
  ///
  /// `vfs` defaults to the real filesystem; tests pass a FaultyVfs.
  Status Open(const std::string& dir, storage::Vfs* vfs = nullptr);

  /// Writes a new checksummed snapshot (atomic temp-file + rename),
  /// truncates WAL segments it supersedes, and prunes all but the
  /// previous snapshot (kept as the corruption fallback). Also reachable
  /// as the `CHECKPOINT` statement, which the scheduler runs under the
  /// exclusive lock. Returns a one-line summary.
  Result<std::string> Checkpoint();

  /// True once a durable-media failure (failed WAL append/fsync) flipped
  /// the engine into read-only degradation: updates and CHECKPOINT return
  /// Unavailable while queries keep being served.
  bool read_only() const;

  /// Manually enters read-only mode (also used by tests and by the
  /// scheduler's degradation test).
  void EnterReadOnly(const std::string& reason);
  std::string read_only_reason() const;

  /// The durability subsystem, or nullptr when Open() was never called.
  engine::DurabilityManager* durability() { return durability_.get(); }

  // --- Replication (src/repl): a primary exports its redo stream through
  // the WAL shipper; a replica applies it via the methods below. ---

  /// Highest LSN whose effects are visible in this engine: the newest
  /// durable commit LSN on a primary, the newest streamed-and-applied LSN
  /// on a replica. Lock-free — heartbeats and lag gauges read it without
  /// touching the engine lock.
  uint64_t last_lsn() const;

  /// Puts the engine into replica apply mode: client updates and
  /// CHECKPOINT are rejected with Unavailable (like sticky read-only,
  /// naming `primary_desc` as where writes belong) while the streamed
  /// apply path below keeps mutating the dataset. Call after Open() when
  /// the replica keeps a durable store of its own — recovery then hands
  /// off from snapshot+WAL to the live stream at last_lsn().
  void EnterReplicaMode(const std::string& primary_desc);
  bool replica_mode() const {
    return replica_mode_.load(std::memory_order_acquire);
  }

  // --- Fencing term (replication generation number). ---

  /// Current fencing term. 1 on a fresh store; recovery restores the
  /// maximum of the snapshot footer's term and any kTermBump records in
  /// the WAL; replicas adopt terms carried by the stream and by wire
  /// replies. Monotonic for the lifetime of a store.
  uint64_t term() const { return term_.load(std::memory_order_acquire); }

  /// Raises the term to `t` if it is higher (CAS-max; lower terms are
  /// ignored). Safe from any thread.
  void AdoptTerm(uint64_t t);

  /// Replica -> primary hand-off. Requires replica mode and a writable
  /// store; the caller must hold the engine exclusively (ExecuteExclusive)
  /// with the applier already stopped, so the dataset is at the tip of
  /// everything received. Bumps the term to at least `new_term` (always
  /// past the current one), logs a kTermBump batch so the new term is
  /// durable and ships to followers, and exits replica mode. On a WAL
  /// append failure the engine stays a replica.
  Status Promote(uint64_t new_term);

  /// Primary -> replica hand-off after observing a higher term: adopts
  /// `new_term`, enters replica mode pointing at `primary_desc`. The
  /// caller must hold the engine exclusively and subsequently restart an
  /// applier with force_resync (the local WAL may hold unshipped writes
  /// that diverge from the new primary's timeline).
  void DemoteToReplica(uint64_t new_term, const std::string& primary_desc);

  /// Stable node identity used for deterministic election tie-breaks and
  /// reported in probe replies. Defaults to "node".
  const std::string& node_id() const { return node_id_; }
  void set_node_id(std::string id) { node_id_ = std::move(id); }

  /// True when client write statements must be rejected — read-only
  /// degradation or replica mode. The scheduler checks this at admission;
  /// `write_reject_reason` names the cause.
  bool rejects_writes() const { return read_only() || replica_mode(); }
  std::string write_reject_reason() const;

  /// Applies a shipped run of complete committed WAL batches (the frames
  /// of a storage::WalShipment) to the live dataset: records at or below
  /// last_lsn() are skipped (idempotent re-delivery), graph versions bump
  /// through the normal mutation path so the stats and plan/result caches
  /// invalidate exactly as they do for local updates. Durable replicas
  /// write the frames through to their own WAL so a restart resumes from
  /// the last applied LSN instead of re-streaming everything. The caller
  /// must hold the engine exclusively (the scheduler's ExecuteExclusive
  /// when the replica is serving reads).
  Status ApplyReplicationFrames(const std::string& frames);

  /// Full-resync hand-off for a replica that fell behind the primary's
  /// WAL retention: replaces the dataset with the shipped snapshot
  /// sections (graph IRI -> Turtle, "" = default graph) and restarts LSN
  /// tracking at `lsn`. A durable replica re-bases its local store —
  /// wipes the stale WAL, writes a checkpoint at `lsn` — so the next
  /// restart recovers to the new timeline.
  Status BootstrapFromReplication(
      const std::vector<std::pair<std::string, std::string>>& sections,
      uint64_t lsn);

  /// Replica-side checkpoint: the same snapshot + WAL-truncation sequence
  /// as Checkpoint(), but permitted in replica mode — the applier compacts
  /// the local store periodically so restart recovery replays a bounded
  /// stream suffix. Caller must hold the engine exclusively.
  Result<std::string> CheckpointAsReplica();

  // --- Data loading. ---

  /// Loads a Turtle document into the default graph (or a named graph),
  /// consolidating numeric RDF collections into arrays.
  Status LoadTurtleFile(const std::string& path,
                        const std::string& graph_iri = "");
  Status LoadTurtleString(const std::string& text,
                          const std::string& graph_iri = "");

  // --- Statement execution. ---

  /// The unified entry point: parses and executes one SciSPARQL statement
  /// of any form — query, update, DEFINE FUNCTION, or the introspection
  /// verbs EXPLAIN [ANALYZE] <query>, STATS and METRICS — honouring the
  /// request's option overrides, timeout/cancel flag and trace sink.
  ///
  /// When `ctx` is non-null it takes precedence over the request's
  /// timeout/cancel fields; the scheduler passes a context whose absolute
  /// deadline was computed at admission so queue wait counts against it.
  Result<QueryOutcome> Execute(const QueryRequest& req,
                               const sched::QueryContext* ctx = nullptr);

  /// Concurrency class of a statement, decided from its leading keyword
  /// (after the PREFIX/BASE prolog, comments and string/IRI tokens are
  /// skipped) without a full parse: query forms are reads; INSERT/DELETE
  /// updates are writes (they run under the scheduler's shared lock via
  /// the differential index); LOAD, CLEAR, DEFINE FUNCTION, PREPARE,
  /// CHECKPOINT and anything unrecognized classify as exclusive, the
  /// conservative choice for statements that mutate engine structure.
  static sched::StatementClass ClassifyStatement(const std::string& text);

  // --- Concurrent write mode (the scheduler drives this). ---

  /// Refcounted switch for the differential-index write path: while at
  /// least one holder is active, batch mutations append into per-graph
  /// deltas instead of the base indexes, so the scheduler can run
  /// write-class statements under its shared lock. The last EndConcurrent-
  /// Writes folds all pending deltas and returns graphs to base mode; the
  /// caller must hold the engine exclusively for that final call (the
  /// scheduler calls it from Stop after the workers are joined).
  void BeginConcurrentWrites();
  void EndConcurrentWrites();

  /// Unfolded delta operations across all graphs — the compactor's
  /// trigger. Lock-free reads of per-graph atomic counters.
  size_t PendingDeltaOps() const;

  /// Folds every graph's pending delta into its base indexes. Caller must
  /// hold the engine exclusively; returns the operations folded.
  size_t FoldDeltas();

  /// True when `st` is the engine's escalation sentinel: a write-class
  /// statement admitted under the shared lock turned out to need the
  /// exclusive lock (it would create a named graph, or its prolog hid an
  /// exclusive form). The scheduler re-runs such statements exclusively.
  static bool NeedsExclusiveRetry(const Status& st);

  /// Query plan description (Section 5.4's translation, post-optimization):
  /// chosen BGP order with estimated vs. actual cardinalities per scan.
  /// Also reachable as the `EXPLAIN <query>` statement through Execute.
  Result<std::string> Explain(const std::string& text);

  /// Optimizer-statistics report for every graph with a collector (the
  /// `STATS` statement). Covers triple totals, per-predicate counts,
  /// distinct subject/object counts and index fan-out histograms.
  std::string StatsReport() const;

  /// ObjectLog-style domain-calculus rendering of a query — the
  /// intermediate form of the thesis's translation algorithm (§5.4.5).
  Result<std::string> Translate(const std::string& text);

  // --- Functions. ---

  sparql::FunctionRegistry& functions() { return registry_; }

  /// Registers a C++ foreign function callable from queries (Section 4.4).
  void RegisterForeign(const std::string& name,
                       std::function<Result<Term>(std::span<const Term>)> fn,
                       int arity = -1, double cost = 1.0);

  // --- Array storage back-ends (Chapter 6). ---

  /// Attaches a back-end under its name(); replaces a previous one.
  void AttachStorage(std::shared_ptr<ArrayStorage> storage);
  std::shared_ptr<ArrayStorage> FindStorage(const std::string& name) const;

  /// Stores an array in the named back-end and returns an array term:
  /// a lazy proxy for external back-ends.
  Result<Term> StoreArray(const NumericArray& array,
                          const std::string& storage_name,
                          int64_t chunk_elems = 8192);

  /// Opens a proxy term for an already-stored array (mediator scenario).
  Result<Term> OpenStoredArray(const std::string& storage_name, ArrayId id);

  // --- Memory snapshots (Section 2.2.3: the in-memory store "can be
  // dumped to disk and loaded back to survive server restarts"). ---

  /// Writes the whole dataset (default + named graphs) to a snapshot file.
  /// Array proxies are materialized into the snapshot; defined functions
  /// are not part of the dataset and are not saved. Folds pending deltas
  /// first (the snapshot encoder walks the base indexes), hence non-const.
  Status SaveSnapshot(const std::string& path);

  /// Replaces the dataset with a snapshot's content. Destroys the named
  /// graph objects of the old dataset, so it bumps the query cache's epoch
  /// (emptying both the plan and result layers); CLEAR ALL and DropAll-style
  /// replacements do the same.
  Status LoadSnapshot(const std::string& path);

  // --- Caching & prepared statements. ---

  /// The engine's two-layer query cache (plan cache + opt-in result cache)
  /// and prepared-statement registry. Exposed for tests, the shell and the
  /// scheduler's fast path.
  cache::QueryCache& cache() { return cache_; }
  const cache::QueryCache& cache() const { return cache_; }

  /// Turns the opt-in result cache on with the given LRU byte budget
  /// (materialized array payloads count against it).
  void EnableResultCache(size_t budget_bytes = 8u << 20);
  void DisableResultCache();

  /// Scheduler fast path: serves `req` straight from the result cache when
  /// a still-valid entry exists, without parsing or planning. Never counts
  /// a miss (the full Execute path will), so speculative probes don't skew
  /// the counters. Returns false for traced requests — a trace needs the
  /// real execution.
  bool TryCachedResult(const QueryRequest& req, QueryOutcome* out);

  // --- Configuration and state. ---

  Dataset& dataset() { return dataset_; }
  const Dataset& dataset() const { return dataset_; }
  PrefixMap& prefixes() { return prefixes_; }
  sparql::ExecOptions& exec_options() { return exec_options_; }
  const opt::StatsRegistry& stats() const { return stats_; }

 private:
  /// Ensures the graph has a statistics collector (attaching rebuilds from
  /// current content if one is created).
  void EnsureStats(Graph* graph);

  /// Shared Form dispatch for direct queries and prepared EXECUTE.
  Result<QueryOutcome> RunQueryForm(const ast::SelectQuery& q,
                                    sparql::Executor& exec,
                                    obs::TraceSpan* exec_span);

  /// Runs a prepared statement with `args` bound to its parameters,
  /// consulting/feeding the result cache under the prepared key
  /// (name + generation + rendered args).
  Result<QueryOutcome> RunPrepared(const std::string& name,
                                   const std::vector<Term>& args,
                                   const sparql::ExecOptions& base_options,
                                   const sched::QueryContext* ctx,
                                   obs::QueryTrace* trace);

  /// Cache key for a statement text: normalized query text plus a
  /// fingerprint of the session prefix table (the same text parses
  /// differently under different prefixes).
  std::string CacheKeyFor(const std::string& text) const;

  /// Builds a Dataset from decoded snapshot sections (Turtle per graph).
  Status BuildDatasetFromSections(
      const std::vector<std::pair<std::string, std::string>>& sections,
      Dataset* out);

  /// Swaps `fresh` in for the current dataset: clears statistics first
  /// (collectors reference dying graphs), epoch-bumps both cache layers,
  /// re-attaches collectors to the new graphs.
  void InstallDataset(Dataset fresh);

  /// The checkpoint sequence shared by Checkpoint() and
  /// CheckpointAsReplica(), after their mode guards.
  Result<std::string> CheckpointLocked();

  /// The REPL introspection statement family (REPL LSN / STATUS /
  /// SNAPSHOT), classified as reads so replicas serve them under the
  /// shared lock.
  Result<QueryOutcome> ExecuteReplStatement(const std::string& verb);

  Dataset dataset_;
  // Declared after dataset_ so collectors detach from still-live graphs on
  // destruction.
  opt::StatsRegistry stats_;
  PrefixMap prefixes_;
  sparql::FunctionRegistry registry_;
  sparql::ExecOptions exec_options_;
  std::map<std::string, std::shared_ptr<ArrayStorage>> storages_;
  cache::QueryCache cache_;
  std::unique_ptr<engine::DurabilityManager> durability_;

  /// Read-only degradation for engines without a durable store (the
  /// durability manager tracks its own flag when Open() was called).
  std::atomic<bool> soft_read_only_{false};
  std::string soft_read_only_reason_;

  /// Replica apply mode: highest streamed LSN applied so far, and where
  /// client writes should go instead.
  std::atomic<bool> replica_mode_{false};
  std::atomic<uint64_t> applied_lsn_{0};
  std::string replica_primary_;

  /// Replication fencing term and node identity (see term()/Promote()).
  std::atomic<uint64_t> term_{1};
  std::string node_id_ = "node";

  /// BeginConcurrentWrites nesting depth; the dataset's concurrent-writes
  /// flag is on exactly while this is positive.
  std::atomic<int> concurrent_refs_{0};
};

}  // namespace scisparql

#endif  // SCISPARQL_ENGINE_SSDM_H_
