#ifndef SCISPARQL_RDF_TERM_CODEC_H_
#define SCISPARQL_RDF_TERM_CODEC_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "rdf/term.h"

namespace scisparql {
namespace rdf {

/// Little-endian primitive framing shared by the wire protocol and the
/// write-ahead log. Strings are u32-length-prefixed.
void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
void PutString(std::string* out, const std::string& s);
bool GetU32(const std::string& data, size_t* pos, uint32_t* v);
bool GetU64(const std::string& data, size_t* pos, uint64_t* v);
bool GetString(const std::string& data, size_t* pos, std::string* s);

/// Serializes one term with a kind tag. Arrays are materialized and travel
/// as shape + row-major elements, so the bytes are self-contained (the WAL
/// substitutes a storage reference for proxies before calling this; the
/// wire protocol always materializes).
Status SerializeTerm(const Term& term, std::string* out);

/// Deserializes a term; advances *pos.
Result<Term> DeserializeTerm(const std::string& data, size_t* pos);

}  // namespace rdf
}  // namespace scisparql

#endif  // SCISPARQL_RDF_TERM_CODEC_H_
