#ifndef SCISPARQL_RDF_NAMESPACES_H_
#define SCISPARQL_RDF_NAMESPACES_H_

#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace scisparql {

/// Well-known vocabulary IRIs used throughout the engine.
namespace vocab {

inline constexpr std::string_view kRdfNs =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
inline constexpr std::string_view kRdfsNs =
    "http://www.w3.org/2000/01/rdf-schema#";
inline constexpr std::string_view kXsdNs =
    "http://www.w3.org/2001/XMLSchema#";
inline constexpr std::string_view kQbNs = "http://purl.org/linked-data/cube#";

inline const std::string kRdfType =
    std::string(kRdfNs) + "type";
inline const std::string kRdfFirst = std::string(kRdfNs) + "first";
inline const std::string kRdfRest = std::string(kRdfNs) + "rest";
inline const std::string kRdfNil = std::string(kRdfNs) + "nil";

inline const std::string kXsdInteger = std::string(kXsdNs) + "integer";
inline const std::string kXsdDouble = std::string(kXsdNs) + "double";
inline const std::string kXsdDecimal = std::string(kXsdNs) + "decimal";
inline const std::string kXsdBoolean = std::string(kXsdNs) + "boolean";
inline const std::string kXsdString = std::string(kXsdNs) + "string";
inline const std::string kXsdDateTime = std::string(kXsdNs) + "dateTime";

// RDF Data Cube vocabulary (Section 5.3.3).
inline const std::string kQbDataSet = std::string(kQbNs) + "DataSet";
inline const std::string kQbObservation = std::string(kQbNs) + "Observation";
inline const std::string kQbDataSetProp = std::string(kQbNs) + "dataSet";
inline const std::string kQbStructure = std::string(kQbNs) + "structure";
inline const std::string kQbComponent = std::string(kQbNs) + "component";
inline const std::string kQbDimension = std::string(kQbNs) + "dimension";
inline const std::string kQbMeasure = std::string(kQbNs) + "measure";

}  // namespace vocab

/// Prefix table mapping "foaf" -> "http://xmlns.com/foaf/0.1/" etc.
/// Used by the Turtle loader, the SciSPARQL parser, and serializers.
class PrefixMap {
 public:
  /// Creates a map preloaded with rdf/rdfs/xsd/qb prefixes.
  static PrefixMap WithDefaults();

  void Set(std::string prefix, std::string iri);

  /// Expands "foaf:name" to a full IRI; nullopt if the prefix is unknown or
  /// `qname` has no colon.
  std::optional<std::string> Expand(std::string_view qname) const;

  /// Compacts a full IRI to the longest-prefix qname; returns the IRI
  /// unchanged (in <...> brackets) when no prefix matches.
  std::string Compact(std::string_view iri) const;

  const std::map<std::string, std::string>& entries() const {
    return entries_;
  }

 private:
  std::map<std::string, std::string> entries_;
};

}  // namespace scisparql

#endif  // SCISPARQL_RDF_NAMESPACES_H_
