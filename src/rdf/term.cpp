#include "rdf/term.h"

#include <functional>

#include "common/string_util.h"

namespace scisparql {

Term Term::Iri(std::string iri) {
  Term t;
  t.kind_ = Kind::kIri;
  t.lex_ = std::move(iri);
  return t;
}

Term Term::Blank(std::string label) {
  Term t;
  t.kind_ = Kind::kBlank;
  t.lex_ = std::move(label);
  return t;
}

Term Term::String(std::string value) {
  Term t;
  t.kind_ = Kind::kString;
  t.lex_ = std::move(value);
  return t;
}

Term Term::LangString(std::string value, std::string lang) {
  Term t;
  t.kind_ = Kind::kString;
  t.lex_ = std::move(value);
  t.extra_ = std::move(lang);
  return t;
}

Term Term::Integer(int64_t v) {
  Term t;
  t.kind_ = Kind::kInteger;
  t.int_ = v;
  return t;
}

Term Term::Double(double v) {
  Term t;
  t.kind_ = Kind::kDouble;
  t.dbl_ = v;
  return t;
}

Term Term::Boolean(bool v) {
  Term t;
  t.kind_ = Kind::kBoolean;
  t.bool_ = v;
  return t;
}

Term Term::TypedLiteral(std::string lexical, std::string datatype_iri) {
  Term t;
  t.kind_ = Kind::kTypedLiteral;
  t.lex_ = std::move(lexical);
  t.extra_ = std::move(datatype_iri);
  return t;
}

Term Term::Array(std::shared_ptr<ArrayValue> array) {
  Term t;
  t.kind_ = Kind::kArray;
  t.array_ = std::move(array);
  return t;
}

Result<double> Term::AsDouble() const {
  switch (kind_) {
    case Kind::kInteger:
      return static_cast<double>(int_);
    case Kind::kDouble:
      return dbl_;
    case Kind::kBoolean:
      return bool_ ? 1.0 : 0.0;
    default:
      return Status::TypeError("term is not numeric: " + ToString());
  }
}

Result<int64_t> Term::AsInteger() const {
  switch (kind_) {
    case Kind::kInteger:
      return int_;
    case Kind::kDouble: {
      int64_t i = static_cast<int64_t>(dbl_);
      if (static_cast<double>(i) != dbl_) {
        return Status::TypeError("double is not integral");
      }
      return i;
    }
    default:
      return Status::TypeError("term is not an integer: " + ToString());
  }
}

bool Term::operator==(const Term& other) const {
  // Numeric value equality across integer/double, per SPARQL `=`.
  if (IsNumeric() && other.IsNumeric()) {
    if (kind_ == Kind::kInteger && other.kind_ == Kind::kInteger) {
      return int_ == other.int_;
    }
    double a = kind_ == Kind::kInteger ? static_cast<double>(int_) : dbl_;
    double b = other.kind_ == Kind::kInteger
                   ? static_cast<double>(other.int_)
                   : other.dbl_;
    return a == b;
  }
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kUndef:
      return true;
    case Kind::kIri:
    case Kind::kBlank:
      return lex_ == other.lex_;
    case Kind::kString:
      return lex_ == other.lex_ && extra_ == other.extra_;
    case Kind::kBoolean:
      return bool_ == other.bool_;
    case Kind::kTypedLiteral:
      return lex_ == other.lex_ && extra_ == other.extra_;
    case Kind::kArray: {
      // Section 4.1.6: arrays are equal when shapes match and elements are
      // numerically equal. Proxies are materialized for the comparison.
      auto ma = array_->Materialize();
      auto mb = other.array_->Materialize();
      if (!ma.ok() || !mb.ok()) return false;
      return ma->NumericEquals(*mb);
    }
    default:
      return false;
  }
}

namespace {

/// Rank of a term kind in the SPARQL ORDER BY total order.
int KindRank(Term::Kind k) {
  switch (k) {
    case Term::Kind::kUndef:
      return 0;
    case Term::Kind::kBlank:
      return 1;
    case Term::Kind::kIri:
      return 2;
    case Term::Kind::kString:
    case Term::Kind::kInteger:
    case Term::Kind::kDouble:
    case Term::Kind::kBoolean:
    case Term::Kind::kTypedLiteral:
      return 3;
    case Term::Kind::kArray:
      return 4;
  }
  return 5;
}

template <typename T>
int Cmp3(const T& a, const T& b) {
  if (a < b) return -1;
  if (b < a) return 1;
  return 0;
}

}  // namespace

int Term::Compare(const Term& a, const Term& b) {
  if (a.IsNumeric() && b.IsNumeric()) {
    double x = a.AsDouble().value();
    double y = b.AsDouble().value();
    return Cmp3(x, y);
  }
  int ra = KindRank(a.kind_);
  int rb = KindRank(b.kind_);
  if (ra != rb) return Cmp3(ra, rb);
  switch (a.kind_) {
    case Kind::kUndef:
      return 0;
    case Kind::kIri:
    case Kind::kBlank:
      return Cmp3(a.lex_, b.lex_);
    case Kind::kArray: {
      auto ma = a.array_->Materialize();
      auto mb = b.array_->Materialize();
      if (!ma.ok() || !mb.ok()) return 0;
      int64_t n = std::min(ma->NumElements(), mb->NumElements());
      for (int64_t i = 0; i < n; ++i) {
        int c = Cmp3(ma->DoubleAt(i), mb->DoubleAt(i));
        if (c != 0) return c;
      }
      return Cmp3(ma->NumElements(), mb->NumElements());
    }
    default: {
      // Literals: order boolean < numeric handled above; here strings and
      // typed literals compare by kind rank then lexical form.
      int kc = Cmp3(static_cast<int>(a.kind_), static_cast<int>(b.kind_));
      if (kc != 0) return kc;
      if (a.kind_ == Kind::kBoolean) return Cmp3(a.bool_, b.bool_);
      int lc = Cmp3(a.lex_, b.lex_);
      if (lc != 0) return lc;
      return Cmp3(a.extra_, b.extra_);
    }
  }
}

size_t Term::Hash() const {
  size_t h = std::hash<int>()(static_cast<int>(kind_));
  switch (kind_) {
    case Kind::kUndef:
      return h;
    case Kind::kInteger:
      // Hash numerics by double value so 2 and 2.0 land in one bucket,
      // consistent with operator==.
      return HashCombine(std::hash<int>()(99),
                         std::hash<double>()(static_cast<double>(int_)));
    case Kind::kDouble:
      return HashCombine(std::hash<int>()(99), std::hash<double>()(dbl_));
    case Kind::kBoolean:
      return HashCombine(h, std::hash<bool>()(bool_));
    case Kind::kArray: {
      auto m = array_->Materialize();
      if (!m.ok()) return h;
      size_t ah = std::hash<int64_t>()(m->NumElements());
      int64_t n = std::min<int64_t>(m->NumElements(), 8);
      for (int64_t i = 0; i < n; ++i) {
        ah = HashCombine(ah, std::hash<double>()(m->DoubleAt(i)));
      }
      return HashCombine(h, ah);
    }
    default:
      return HashCombine(HashCombine(h, std::hash<std::string>()(lex_)),
                         std::hash<std::string>()(extra_));
  }
}

std::string Term::ToString() const {
  switch (kind_) {
    case Kind::kUndef:
      return "UNDEF";
    case Kind::kIri:
      return "<" + lex_ + ">";
    case Kind::kBlank:
      return "_:" + lex_;
    case Kind::kString:
      if (extra_.empty()) return "\"" + EscapeTurtleString(lex_) + "\"";
      return "\"" + EscapeTurtleString(lex_) + "\"@" + extra_;
    case Kind::kInteger:
      return std::to_string(int_);
    case Kind::kDouble:
      return FormatDouble(dbl_);
    case Kind::kBoolean:
      return bool_ ? "true" : "false";
    case Kind::kTypedLiteral:
      return "\"" + EscapeTurtleString(lex_) + "\"^^<" + extra_ + ">";
    case Kind::kArray: {
      auto m = array_->Materialize();
      if (!m.ok()) return "[array: " + m.status().ToString() + "]";
      return m->ToString();
    }
  }
  return "?";
}

}  // namespace scisparql
