#include "rdf/dictionary.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <mutex>

#include "common/string_util.h"

namespace scisparql {

namespace {

/// Bit pattern of a double, so exact-identity hashing distinguishes e.g.
/// 0.0 from -0.0 the same way ExactEq below does (via memcmp semantics).
uint64_t DoubleBits(double d) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d), "double is not 64-bit");
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

}  // namespace

size_t TermDictionary::ExactHash::operator()(const Term& t) const {
  size_t h = std::hash<int>()(static_cast<int>(t.kind()));
  switch (t.kind()) {
    case Term::Kind::kUndef:
      return h;
    case Term::Kind::kInteger:
      return HashCombine(h, std::hash<int64_t>()(t.integer()));
    case Term::Kind::kDouble:
      return HashCombine(h, std::hash<uint64_t>()(DoubleBits(t.dbl())));
    case Term::Kind::kBoolean:
      return HashCombine(h, std::hash<bool>()(t.boolean()));
    case Term::Kind::kArray:
      // Object identity: proxies are never materialized by the dictionary.
      return HashCombine(h, std::hash<const void*>()(t.array().get()));
    default:
      return HashCombine(HashCombine(h, std::hash<std::string>()(t.lexical())),
                         std::hash<std::string>()(t.lang()));
  }
}

bool TermDictionary::ExactEq::operator()(const Term& a, const Term& b) const {
  if (a.kind() != b.kind()) return false;
  switch (a.kind()) {
    case Term::Kind::kUndef:
      return true;
    case Term::Kind::kInteger:
      return a.integer() == b.integer();
    case Term::Kind::kDouble:
      return DoubleBits(a.dbl()) == DoubleBits(b.dbl());
    case Term::Kind::kBoolean:
      return a.boolean() == b.boolean();
    case Term::Kind::kArray:
      return a.array().get() == b.array().get();
    default:
      // lexical()/lang() cover iri(), blank_label() and datatype() too —
      // they alias the same two underlying fields for every kind.
      return a.lexical() == b.lexical() && a.lang() == b.lang();
  }
}

size_t TermStringBytes(const Term& t) {
  switch (t.kind()) {
    case Term::Kind::kUndef:
    case Term::Kind::kInteger:
    case Term::Kind::kDouble:
    case Term::Kind::kBoolean:
    case Term::Kind::kArray:
      return 0;
    default:
      return t.lexical().size() + t.lang().size();
  }
}

TermDictionary::TermDictionary() = default;

TermDictionary::~TermDictionary() = default;

void TermDictionary::MoveFrom(TermDictionary&& o) {
  ids_ = std::move(o.ids_);
  chunk_store_ = std::move(o.chunk_store_);
  dirs_ = std::move(o.dirs_);
  huge_ints_ = o.huge_ints_;
  dir_.store(o.dir_.load(std::memory_order_relaxed),
             std::memory_order_relaxed);
  size_.store(o.size_.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
  array_terms_.store(o.array_terms_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  string_bytes_.store(o.string_bytes_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  numeric_alias_.store(o.numeric_alias_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  o.Reset();
}

void TermDictionary::Reset() {
  ids_.clear();
  chunk_store_.clear();
  dirs_.clear();
  huge_ints_ = 0;
  dir_.store(nullptr, std::memory_order_relaxed);
  size_.store(0, std::memory_order_release);
  array_terms_.store(0, std::memory_order_relaxed);
  string_bytes_.store(0, std::memory_order_relaxed);
  numeric_alias_.store(false, std::memory_order_relaxed);
}

TermDictionary::TermDictionary(TermDictionary&& o) noexcept {
  MoveFrom(std::move(o));
}

TermDictionary& TermDictionary::operator=(TermDictionary&& o) noexcept {
  if (this != &o) MoveFrom(std::move(o));
  return *this;
}

void TermDictionary::DetectAlias(const Term& t) {
  if (t.kind() == Term::Kind::kInteger) {
    const int64_t i = t.integer();
    if (i <= -kExactCastBound || i >= kExactCastBound) ++huge_ints_;
    if (numeric_alias_.load(std::memory_order_relaxed)) return;
    // operator== compares mixed numerics after widening the integer to
    // double, so every double equal to integer i is exactly (double)i —
    // one probe is complete at any magnitude. -0.0 interns apart from 0.0
    // (bit-pattern identity) yet compares equal, hence the extra probe.
    if (ids_.count(Term::Double(static_cast<double>(i))) > 0 ||
        (i == 0 && ids_.count(Term::Double(-0.0)) > 0)) {
      numeric_alias_.store(true, std::memory_order_release);
    }
    return;
  }
  if (t.kind() != Term::Kind::kDouble) return;
  const double d = t.dbl();
  if (!std::isfinite(d) || d != std::floor(d)) return;  // no integer equals it
  if (d > -static_cast<double>(kExactCastBound) &&
      d < static_cast<double>(kExactCastBound)) {
    if (numeric_alias_.load(std::memory_order_relaxed)) return;
    if (ids_.count(Term::Integer(static_cast<int64_t>(d))) > 0 ||
        (d == 0.0 &&
         ids_.count(Term::Double(DoubleBits(d) == DoubleBits(0.0) ? -0.0
                                                                  : 0.0)) >
             0)) {
      numeric_alias_.store(true, std::memory_order_release);
    }
    return;
  }
  // Integral double at or past 2^53 (and within the int64 span, else no
  // integer can equal it): a whole range of integers widens to this value,
  // so probing the single back-cast candidate would miss aliases like
  // 9007199254740993 vs 9007199254740992.0. Flag conservatively whenever
  // any such integer is interned; data this large is vanishingly rare.
  if (d >= -9223372036854775808.0 && d < 9223372036854775808.0 &&
      huge_ints_ > 0) {
    numeric_alias_.store(true, std::memory_order_release);
  }
}

uint32_t TermDictionary::Intern(const Term& t) {
  {
    std::shared_lock<std::shared_mutex> rlock(mu_);
    auto it = ids_.find(t);
    if (it != ids_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = ids_.find(t);
  if (it != ids_.end()) return it->second;

  const uint32_t id =
      static_cast<uint32_t>(size_.load(std::memory_order_relaxed));
  const uint32_t chunk = id >> kChunkBits;
  if (chunk == chunk_store_.size()) {
    chunk_store_.push_back(std::make_unique<Term[]>(kChunkSize));
    const ChunkDir* cur = dir_.load(std::memory_order_relaxed);
    if (cur == nullptr || chunk == cur->chunks.size()) {
      // Out of directory capacity: publish a doubled copy. The old
      // directory stays alive (dirs_) for readers holding a stale load.
      auto next = std::make_unique<ChunkDir>();
      next->chunks.resize(cur == nullptr ? 8 : cur->chunks.size() * 2,
                          nullptr);
      if (cur != nullptr) {
        std::copy(cur->chunks.begin(), cur->chunks.end(),
                  next->chunks.begin());
      }
      next->chunks[chunk] = chunk_store_.back().get();
      const ChunkDir* published = next.get();
      dirs_.push_back(std::move(next));
      dir_.store(published, std::memory_order_release);
    } else {
      // Capacity to spare: fill the pre-sized slot in place. Readers never
      // dereference it before an ID in this chunk is published to them.
      const_cast<ChunkDir*>(cur)->chunks[chunk] = chunk_store_.back().get();
    }
  }
  chunk_store_[chunk][id & kChunkMask] = t;

  DetectAlias(t);
  string_bytes_.fetch_add(TermStringBytes(t), std::memory_order_relaxed);
  if (t.kind() == Term::Kind::kArray) {
    array_terms_.fetch_add(1, std::memory_order_release);
  }
  ids_.emplace(t, id);
  // Publish the ID last: any channel that hands this ID to a reader is
  // itself ordered after the critical section, so the slot write above is
  // visible wherever the ID is.
  size_.store(static_cast<size_t>(id) + 1, std::memory_order_release);
  return id;
}

std::optional<uint32_t> TermDictionary::Find(const Term& t) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = ids_.find(t);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

void TermDictionary::Clear() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  ids_.clear();
  chunk_store_.clear();
  dirs_.clear();
  huge_ints_ = 0;
  dir_.store(nullptr, std::memory_order_release);
  size_.store(0, std::memory_order_release);
  array_terms_.store(0, std::memory_order_relaxed);
  string_bytes_.store(0, std::memory_order_relaxed);
  numeric_alias_.store(false, std::memory_order_relaxed);
}

}  // namespace scisparql
