#include "rdf/dictionary.h"

#include <cmath>
#include <cstring>
#include <functional>

#include "common/string_util.h"

namespace scisparql {

namespace {

/// Bit pattern of a double, so exact-identity hashing distinguishes e.g.
/// 0.0 from -0.0 the same way ExactEq below does (via memcmp semantics).
uint64_t DoubleBits(double d) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d), "double is not 64-bit");
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

}  // namespace

size_t TermDictionary::ExactHash::operator()(const Term& t) const {
  size_t h = std::hash<int>()(static_cast<int>(t.kind()));
  switch (t.kind()) {
    case Term::Kind::kUndef:
      return h;
    case Term::Kind::kInteger:
      return HashCombine(h, std::hash<int64_t>()(t.integer()));
    case Term::Kind::kDouble:
      return HashCombine(h, std::hash<uint64_t>()(DoubleBits(t.dbl())));
    case Term::Kind::kBoolean:
      return HashCombine(h, std::hash<bool>()(t.boolean()));
    case Term::Kind::kArray:
      // Object identity: proxies are never materialized by the dictionary.
      return HashCombine(h, std::hash<const void*>()(t.array().get()));
    default:
      return HashCombine(HashCombine(h, std::hash<std::string>()(t.lexical())),
                         std::hash<std::string>()(t.lang()));
  }
}

bool TermDictionary::ExactEq::operator()(const Term& a, const Term& b) const {
  if (a.kind() != b.kind()) return false;
  switch (a.kind()) {
    case Term::Kind::kUndef:
      return true;
    case Term::Kind::kInteger:
      return a.integer() == b.integer();
    case Term::Kind::kDouble:
      return DoubleBits(a.dbl()) == DoubleBits(b.dbl());
    case Term::Kind::kBoolean:
      return a.boolean() == b.boolean();
    case Term::Kind::kArray:
      return a.array().get() == b.array().get();
    default:
      // lexical()/lang() cover iri(), blank_label() and datatype() too —
      // they alias the same two underlying fields for every kind.
      return a.lexical() == b.lexical() && a.lang() == b.lang();
  }
}

size_t TermStringBytes(const Term& t) {
  switch (t.kind()) {
    case Term::Kind::kUndef:
    case Term::Kind::kInteger:
    case Term::Kind::kDouble:
    case Term::Kind::kBoolean:
    case Term::Kind::kArray:
      return 0;
    default:
      return t.lexical().size() + t.lang().size();
  }
}

uint32_t TermDictionary::Intern(const Term& t) {
  auto it = ids_.find(t);
  if (it != ids_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(terms_.size());
  terms_.push_back(t);
  ids_.emplace(t, id);
  string_bytes_ += TermStringBytes(t);
  if (t.kind() == Term::Kind::kArray) ++array_terms_;
  // Detect when both representations of one numeric value are interned:
  // from then on ID equality is narrower than SPARQL `=` and the ID-join
  // fast path must stand down for this graph.
  if (!numeric_alias_) {
    if (t.kind() == Term::Kind::kInteger) {
      // operator== compares mixed numerics after widening the integer to
      // double, so the aliasing double of integer I is exactly (double)I.
      if (ids_.count(Term::Double(static_cast<double>(t.integer()))) > 0) {
        numeric_alias_ = true;
      }
    } else if (t.kind() == Term::Kind::kDouble) {
      double d = t.dbl();
      if (d == std::floor(d) && d >= -9.2e18 && d <= 9.2e18 &&
          ids_.count(Term::Integer(static_cast<int64_t>(d))) > 0) {
        numeric_alias_ = true;
      }
    }
  }
  return id;
}

std::optional<uint32_t> TermDictionary::Find(const Term& t) const {
  auto it = ids_.find(t);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

void TermDictionary::Clear() {
  terms_.clear();
  ids_.clear();
  array_terms_ = 0;
  string_bytes_ = 0;
  numeric_alias_ = false;
}

}  // namespace scisparql
