#ifndef SCISPARQL_RDF_TERM_H_
#define SCISPARQL_RDF_TERM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "array/array.h"
#include "common/status.h"

namespace scisparql {

/// One RDF term in the "RDF with Arrays" data model: the usual RDF node
/// kinds (IRI, blank node, literals) extended with numeric multidimensional
/// arrays as first-class values (Chapter 4 / Section 5.2 of the paper).
///
/// Terms are value types: cheap to copy (strings are small, arrays are held
/// by shared_ptr) and hashable, so they can be used directly as join keys in
/// the executor.
class Term {
 public:
  enum class Kind : uint8_t {
    kUndef = 0,     ///< unbound / absent value (OPTIONAL may produce these)
    kIri,           ///< IRI reference
    kBlank,         ///< blank node, identified by label
    kString,        ///< plain or language-tagged string literal
    kInteger,       ///< xsd:integer
    kDouble,        ///< xsd:double / xsd:decimal
    kBoolean,       ///< xsd:boolean
    kTypedLiteral,  ///< any other datatype (lexical form + datatype IRI)
    kArray,         ///< numeric multidimensional array (SciSPARQL extension)
  };

  /// Default-constructed terms are unbound.
  Term() : kind_(Kind::kUndef) {}

  static Term Iri(std::string iri);
  static Term Blank(std::string label);
  static Term String(std::string value);
  static Term LangString(std::string value, std::string lang);
  static Term Integer(int64_t v);
  static Term Double(double v);
  static Term Boolean(bool v);
  static Term TypedLiteral(std::string lexical, std::string datatype_iri);
  static Term Array(std::shared_ptr<ArrayValue> array);

  Kind kind() const { return kind_; }
  bool IsUndef() const { return kind_ == Kind::kUndef; }
  bool IsIri() const { return kind_ == Kind::kIri; }
  bool IsBlank() const { return kind_ == Kind::kBlank; }
  bool IsLiteral() const {
    return kind_ == Kind::kString || kind_ == Kind::kInteger ||
           kind_ == Kind::kDouble || kind_ == Kind::kBoolean ||
           kind_ == Kind::kTypedLiteral;
  }
  bool IsNumeric() const {
    return kind_ == Kind::kInteger || kind_ == Kind::kDouble;
  }
  bool IsArray() const { return kind_ == Kind::kArray; }

  /// IRI string (valid only for kIri).
  const std::string& iri() const { return lex_; }
  /// Blank node label (valid only for kBlank).
  const std::string& blank_label() const { return lex_; }
  /// Lexical form for string/typed literals.
  const std::string& lexical() const { return lex_; }
  /// Language tag ("" if none) for kString.
  const std::string& lang() const { return extra_; }
  /// Datatype IRI for kTypedLiteral.
  const std::string& datatype() const { return extra_; }

  int64_t integer() const { return int_; }
  double dbl() const { return dbl_; }
  bool boolean() const { return bool_; }
  const std::shared_ptr<ArrayValue>& array() const { return array_; }

  /// Numeric value widened to double; error for non-numeric terms.
  Result<double> AsDouble() const;
  /// Numeric value as integer; error for non-integral terms.
  Result<int64_t> AsInteger() const;

  /// RDF term equality (SPARQL `sameTerm` semantics, except that numerics
  /// compare by value so 2 == 2.0, matching SPARQL `=` on numbers; arrays
  /// compare element-wise per Section 4.1.6 — proxies are materialized).
  bool operator==(const Term& other) const;
  bool operator!=(const Term& other) const { return !(*this == other); }

  /// Total order used by ORDER BY (SPARQL 15.1): Undef < Blank < IRI <
  /// literals; numerics by value, strings lexically. Arrays sort after all
  /// other literals, by first differing element.
  static int Compare(const Term& a, const Term& b);

  size_t Hash() const;

  /// Serialization in Turtle-like syntax: `<iri>`, `_:b1`, `"s"@en`,
  /// `42`, `4.2`, `true`, `"lex"^^<dt>`; arrays render as `[[1, 2], ...]`.
  std::string ToString() const;

 private:
  Kind kind_;
  int64_t int_ = 0;
  double dbl_ = 0;
  bool bool_ = false;
  std::string lex_;
  std::string extra_;
  std::shared_ptr<ArrayValue> array_;
};

struct TermHash {
  size_t operator()(const Term& t) const { return t.Hash(); }
};

}  // namespace scisparql

#endif  // SCISPARQL_RDF_TERM_H_
