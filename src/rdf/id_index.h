#ifndef SCISPARQL_RDF_ID_INDEX_H_
#define SCISPARQL_RDF_ID_INDEX_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace scisparql {

/// One triple lowered to dictionary IDs — 12 bytes instead of three
/// string-bearing Terms.
struct IdTriple {
  uint32_t s = 0;
  uint32_t p = 0;
  uint32_t o = 0;

  bool operator==(const IdTriple& other) const {
    return s == other.s && p == other.p && o == other.o;
  }
};

/// Sort orders of the permutation indexes, named by key order (RDF-3X's
/// FactsSegment orderings, reduced to the three the executor probes: any
/// combination of fixed positions maps onto a contiguous prefix range of
/// one of them).
enum class Perm : uint8_t {
  kSpo = 0,  ///< sorted by (s, p, o)
  kPos = 1,  ///< sorted by (p, o, s)
  kOsp = 2,  ///< sorted by (o, s, p)
};

/// The triple's components in `perm` key order.
inline std::array<uint32_t, 3> PermKey(Perm perm, const IdTriple& t) {
  switch (perm) {
    case Perm::kSpo:
      return {t.s, t.p, t.o};
    case Perm::kPos:
      return {t.p, t.o, t.s};
    default:
      return {t.o, t.s, t.p};
  }
}

const char* PermName(Perm perm);

/// Sorted ID-tuple permutation indexes over one graph's live triples, plus
/// the aggregated variants (distinct leading-prefix counts, cf. RDF-3X's
/// AggregatedIndexScan / FullyAggregatedIndexScan) the cardinality
/// estimator consumes. Rebuilt lazily per graph mutation stamp; duplicates
/// are kept (RDF multiset semantics).
struct IdIndexes {
  std::vector<IdTriple> spo;
  std::vector<IdTriple> pos;
  std::vector<IdTriple> osp;

  /// Row index (into the graph's triple table) of each permutation entry,
  /// parallel to spo/pos/osp. Lets a prefix-range scan hand back the
  /// original string-bearing Triple without materializing terms from the
  /// dictionary.
  std::vector<uint32_t> spo_rows;
  std::vector<uint32_t> pos_rows;
  std::vector<uint32_t> osp_rows;

  /// Fully aggregated: distinct values per single position.
  size_t distinct_s = 0;
  size_t distinct_p = 0;
  size_t distinct_o = 0;
  /// Aggregated: distinct leading pairs per permutation.
  size_t distinct_sp = 0;
  size_t distinct_po = 0;
  size_t distinct_os = 0;

  const std::vector<IdTriple>& perm(Perm p) const {
    switch (p) {
      case Perm::kSpo:
        return spo;
      case Perm::kPos:
        return pos;
      default:
        return osp;
    }
  }

  const std::vector<uint32_t>& rows(Perm p) const {
    switch (p) {
      case Perm::kSpo:
        return spo_rows;
      case Perm::kPos:
        return pos_rows;
      default:
        return osp_rows;
    }
  }
};

/// Builds all three permutations (and the aggregated counts) from the
/// graph's triple table; `dead[i]` rows are skipped.
void BuildIdIndexes(const std::vector<IdTriple>& table,
                    const std::vector<bool>& dead, IdIndexes* out);

/// Contiguous [begin, end) range of `sorted` (ordered per `perm`) whose
/// first `n_fixed` key components equal key[0..n_fixed). n_fixed == 0
/// returns the whole vector.
std::pair<size_t, size_t> PrefixRange(const std::vector<IdTriple>& sorted,
                                      Perm perm,
                                      const std::array<uint32_t, 3>& key,
                                      int n_fixed);

/// One differential-index cell resolved at a snapshot epoch and lowered to
/// dictionary IDs: how many delta-inserted copies of the triple are live,
/// and whether a tombstone suppresses its base-table copies.
struct DeltaIdEntry {
  IdTriple t;
  uint32_t adds = 0;
  bool cleared = false;
};

/// A graph's pending delta resolved at one snapshot epoch, sorted per
/// permutation order — the second input of the ID-join executor's two-run
/// merge scans (the first being the immutable base permutation). All three
/// runs hold the same entries, only the sort order differs.
struct DeltaIdRuns {
  std::vector<DeltaIdEntry> spo;
  std::vector<DeltaIdEntry> pos;
  std::vector<DeltaIdEntry> osp;
  bool any_cleared = false;

  bool empty() const { return spo.empty(); }
  void clear() {
    spo.clear();
    pos.clear();
    osp.clear();
    any_cleared = false;
  }
  const std::vector<DeltaIdEntry>& run(Perm p) const {
    switch (p) {
      case Perm::kSpo:
        return spo;
      case Perm::kPos:
        return pos;
      default:
        return osp;
    }
  }
};

/// PrefixRange over a sorted delta run.
std::pair<size_t, size_t> DeltaPrefixRange(
    const std::vector<DeltaIdEntry>& sorted, Perm perm,
    const std::array<uint32_t, 3>& key, int n_fixed);

}  // namespace scisparql

#endif  // SCISPARQL_RDF_ID_INDEX_H_
