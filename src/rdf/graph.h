#ifndef SCISPARQL_RDF_GRAPH_H_
#define SCISPARQL_RDF_GRAPH_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/id_index.h"
#include "rdf/term.h"

namespace scisparql {

/// One (subject, property, value) triple. The paper prefers "value" over
/// "object" to stress that array values are first-class (footnote 2).
struct Triple {
  Term s;
  Term p;
  Term o;

  bool operator==(const Triple& other) const {
    return s == other.s && p == other.p && o == other.o;
  }
  std::string ToString() const;
};

/// Observer of graph mutations. The statistics collector (src/opt/)
/// registers one per graph so per-predicate counters stay exact without
/// rescanning the triple table after every update. Notifications fire for
/// *logical* mutations only: internal housekeeping (tombstone compaction)
/// is invisible to listeners.
class GraphListener {
 public:
  virtual ~GraphListener() = default;
  virtual void OnAdd(const Triple& t) = 0;
  virtual void OnRemove(const Triple& t) = 0;
  virtual void OnClear() = 0;
  /// The observed graph is being destroyed (e.g. DROP GRAPH / CLEAR ALL).
  /// The listener must drop its pointer to the graph; default is a no-op
  /// for listeners whose lifetime is tied to the graph's.
  virtual void OnGraphDestroyed() {}
};

/// In-memory RDF-with-Arrays graph: a triple table with hash indexes on
/// S, P, O, SP and PO, the access paths the SciSPARQL executor probes
/// during BGP evaluation (Section 5.4). Index bucket sizes double as the
/// statistics feeding the cost-based join-order optimizer.
class Graph {
 public:
  Graph();
  ~Graph();

  // Graphs own a potentially large triple table; moves are fine, copies
  // must be requested explicitly via Clone(). Moving transfers the
  // listener registration: the moved-from graph no longer notifies it.
  // (Spelled out rather than defaulted so the moved-from graph gets a
  // fresh ID-index cache instead of a null one.)
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;
  Graph(Graph&& o) noexcept;
  Graph& operator=(Graph&& o) noexcept;

  Graph Clone() const;

  /// Inserts a triple (duplicates are allowed to keep loading O(1); Match
  /// de-duplicates nothing, mirroring RDF multiset semantics of most stores'
  /// internal tables — callers use DISTINCT at the query level).
  void Add(Triple t);
  void Add(Term s, Term p, Term o) {
    Add(Triple{std::move(s), std::move(p), std::move(o)});
  }

  /// Removes all triples equal to `t`; returns how many were removed.
  size_t Remove(const Triple& t);

  /// Number of live triples.
  size_t size() const { return live_count_; }
  bool empty() const { return live_count_ == 0; }
  void Clear();

  /// Calls `cb` for every triple matching the pattern; Undef terms act as
  /// wildcards. Returning false from `cb` stops the scan early.
  void Match(const Term& s, const Term& p, const Term& o,
             const std::function<bool(const Triple&)>& cb) const;

  std::vector<Triple> MatchAll(const Term& s, const Term& p,
                               const Term& o) const;

  /// True if at least one matching triple exists.
  bool Contains(const Term& s, const Term& p, const Term& o) const;

  /// Cardinality estimate for a pattern where each position is either a
  /// known constant or unknown (nullopt). Used by the optimizer; returns
  /// exact bucket sizes for indexed combinations.
  int64_t EstimateMatches(const std::optional<Term>& s,
                          const std::optional<Term>& p,
                          const std::optional<Term>& o) const;

  /// Visits every live triple.
  void ForEach(const std::function<void(const Triple&)>& cb) const;

  /// Fresh blank node label unique within this graph ("b1", "b2", ...).
  std::string FreshBlankLabel();

  /// Registers (or clears, with nullptr) the single mutation listener.
  /// The listener is not owned; destruction of the graph notifies it via
  /// OnGraphDestroyed. Note that moving a Graph carries its listener
  /// along; code that keys listeners by graph address (the stats registry)
  /// re-attaches after moves.
  void SetListener(GraphListener* listener) { listener_.ptr = listener; }
  GraphListener* listener() const { return listener_.ptr; }

  /// Monotonic logical-mutation counter: bumps on Add/Remove/Clear but not
  /// on internal compaction. Lets derived structures (histograms) detect
  /// staleness cheaply.
  uint64_t version() const { return version_; }

  // --- Dictionary-encoded view (ID space). ---

  /// Term dictionary: every term in the graph is interned at insertion.
  const TermDictionary& dict() const { return dict_; }

  /// The triple table as dictionary IDs, parallel to the Term table
  /// (tombstoned rows included; pair with ForEachId for live rows only).
  const std::vector<IdTriple>& id_table() const { return id_triples_; }

  /// Visits every live triple as dictionary IDs, in ForEach order.
  void ForEachId(const std::function<void(const IdTriple&)>& cb) const;

  /// Sorted SPO/POS/OSP permutation indexes over the live ID tuples,
  /// built lazily and cached until the next table change (including
  /// compaction, which renumbers IDs). Thread-safe for concurrent readers;
  /// the returned reference stays valid until the next mutating call,
  /// which the engine's exclusive write lock already orders after all
  /// readers.
  const IdIndexes& EnsureIdIndexes() const;

  /// The cached permutation indexes if they are already built and fresh,
  /// else nullptr — lets the planner consult aggregated distinct counts
  /// without paying the build on graphs that never reach the ID-join path.
  const IdIndexes* PeekIdIndexes() const;

 private:
  using IdList = std::vector<uint32_t>;

  struct PairKey {
    Term a;
    Term b;
    bool operator==(const PairKey& o) const { return a == o.a && b == o.b; }
  };
  struct PairKeyHash {
    size_t operator()(const PairKey& k) const;
  };

  /// Listener pointer that nulls out when moved from, so a moved-from
  /// graph cannot fire callbacks for a listener it no longer owns.
  struct ListenerRef {
    GraphListener* ptr = nullptr;
    ListenerRef() = default;
    ListenerRef(ListenerRef&& o) noexcept : ptr(o.ptr) { o.ptr = nullptr; }
    ListenerRef& operator=(ListenerRef&& o) noexcept {
      ptr = o.ptr;
      o.ptr = nullptr;
      return *this;
    }
  };

  /// Lazily built permutation indexes plus their freshness stamp. Held
  /// behind a unique_ptr so the mutex does not pin the (move-only) graph.
  struct IdIndexCache {
    std::mutex mu;
    std::atomic<uint64_t> built_stamp{~0ull};
    IdIndexes idx;
  };

  void MaybeCompact();

  std::vector<Triple> triples_;
  std::vector<bool> dead_;
  size_t live_count_ = 0;
  size_t dead_count_ = 0;
  uint64_t blank_counter_ = 0;
  uint64_t version_ = 0;
  ListenerRef listener_;

  std::unordered_map<Term, IdList, TermHash> by_s_;
  std::unordered_map<Term, IdList, TermHash> by_p_;
  std::unordered_map<Term, IdList, TermHash> by_o_;
  std::unordered_map<PairKey, IdList, PairKeyHash> by_sp_;
  std::unordered_map<PairKey, IdList, PairKeyHash> by_po_;

  TermDictionary dict_;
  std::vector<IdTriple> id_triples_;  // parallel to triples_/dead_
  /// Bumps on *every* table rewrite — logical mutations and compaction
  /// alike (compaction renumbers dictionary IDs even though version()
  /// stands still), so the ID-index cache can detect staleness.
  uint64_t table_stamp_ = 0;
  std::unique_ptr<IdIndexCache> id_cache_;
};

/// An RDF dataset: one default graph plus named graphs, addressed by the
/// GRAPH clause and FROM / FROM NAMED (Section 3.3.4).
class Dataset {
 public:
  Graph& default_graph() { return default_graph_; }
  const Graph& default_graph() const { return default_graph_; }

  /// Returns the named graph, creating it when absent.
  Graph& GetOrCreateNamed(const std::string& iri);
  /// Returns the named graph or nullptr.
  const Graph* FindNamed(const std::string& iri) const;
  Graph* FindNamed(const std::string& iri);

  bool DropNamed(const std::string& iri);

  const std::map<std::string, Graph>& named_graphs() const {
    return named_;
  }

 private:
  Graph default_graph_;
  std::map<std::string, Graph> named_;
};

}  // namespace scisparql

#endif  // SCISPARQL_RDF_GRAPH_H_
