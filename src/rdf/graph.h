#ifndef SCISPARQL_RDF_GRAPH_H_
#define SCISPARQL_RDF_GRAPH_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/id_index.h"
#include "rdf/term.h"
#include "rdf/triple.h"
#include "rdf/write_batch.h"

namespace scisparql {

/// Observer of graph mutations. The statistics collector (src/opt/)
/// registers one per graph so per-predicate counters stay exact without
/// rescanning the triple table after every update. Notifications fire for
/// *logical* mutations only: internal housekeeping (delta folding,
/// tombstone compaction) is invisible to listeners. Under concurrent
/// writes, callbacks are serialized by the graph's delta mutex but may
/// arrive from any writer thread — listeners must synchronize their own
/// state against their readers.
class GraphListener {
 public:
  virtual ~GraphListener() = default;
  virtual void OnAdd(const Triple& t) = 0;
  virtual void OnRemove(const Triple& t) = 0;
  virtual void OnClear() = 0;
  /// The observed graph is being destroyed (e.g. DROP GRAPH / CLEAR ALL).
  /// The listener must drop its pointer to the graph; default is a no-op
  /// for listeners whose lifetime is tied to the graph's.
  virtual void OnGraphDestroyed() {}
};

/// In-memory RDF-with-Arrays graph: a dictionary-encoded triple table with
/// sorted SPO/POS/OSP permutation indexes (the access paths the SciSPARQL
/// executor probes during BGP evaluation, Section 5.4) plus an in-memory
/// differential index for concurrent writers.
///
/// Two write modes:
///  - Base mode (default): Apply mutates the triple table directly. This
///    is the bulk-load/recovery path and requires external exclusivity.
///  - Concurrent mode (SetConcurrentWrites(true)): Apply appends into a
///    small mutex-guarded delta of inserts/tombstones keyed to version()
///    epochs; the base table and its permutations stay immutable, so any
///    number of readers can scan while writers commit. Readers merge the
///    delta on scan with batch-atomic snapshot semantics. FoldDelta —
///    called by the engine's background compactor under the exclusive
///    lock — folds the delta into the base table and permutations.
class Graph {
 public:
  Graph();
  ~Graph();

  // Graphs own a potentially large triple table; moves are fine, copies
  // must be requested explicitly via Clone(). Moving transfers the
  // listener registration: the moved-from graph no longer notifies it.
  // (Spelled out rather than defaulted so the moved-from graph gets a
  // fresh ID-index cache instead of a null one.)
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;
  Graph(Graph&& o) noexcept;
  Graph& operator=(Graph&& o) noexcept;

  Graph Clone() const;

  /// Outcome of applying one WriteBatch: triples actually inserted and
  /// copies removed (a RemoveAll of an absent triple removes zero; an Add
  /// of a triple already present counts zero — see Apply).
  struct ApplyResult {
    int64_t added = 0;
    int64_t removed = 0;
  };

  /// Applies a batch of mutations atomically with respect to readers: no
  /// Match/ForEach ever observes a proper prefix of the batch. The only
  /// mutation entry point — Add/Remove are shims over one-element batches.
  ///
  /// RDF graphs are sets of triples: an Add whose triple is already live
  /// (or was added earlier in the same batch) is skipped — it mutates
  /// nothing, counts nothing, and fires no listener, so the WAL and the
  /// replication stream never carry the duplicate. This is what makes
  /// ground INSERT DATA idempotent end to end: a client that re-sends an
  /// un-acked write after a failover cannot double-insert. In concurrent
  /// mode the presence check runs under the delta mutex, closing the race
  /// between two writers inserting the same triple.
  ///
  /// `observer`, when non-null, receives the same per-copy OnAdd/OnRemove
  /// callbacks as the registered listener (the WAL capture hook); it is
  /// scoped to this call, so concurrent writers can each bring their own
  /// without racing on SetListener.
  ApplyResult Apply(WriteBatch&& batch, GraphListener* observer = nullptr);

  /// Deprecated shim: one-element batch insert. Prefer building a
  /// WriteBatch and calling Apply once per logical statement.
  void Add(Triple t) {
    WriteBatch b;
    b.Add(std::move(t));
    Apply(std::move(b));
  }
  void Add(Term s, Term p, Term o) {
    Add(Triple{std::move(s), std::move(p), std::move(o)});
  }

  /// Deprecated shim: one-element batch removing all triples equal to
  /// `t`; returns how many were removed.
  size_t Remove(const Triple& t) {
    WriteBatch b;
    b.RemoveAll(t);
    return static_cast<size_t>(Apply(std::move(b)).removed);
  }

  /// Number of live triples (base plus unfolded delta).
  size_t size() const {
    return static_cast<size_t>(live_count_.load(std::memory_order_acquire));
  }
  bool empty() const { return size() == 0; }
  void Clear();

  // --- Concurrent write mode & the differential index. ---

  /// Switches between base-mode writes (direct table mutation, requires
  /// external exclusivity) and concurrent-mode writes (delta admission
  /// under the graph's internal mutex). Call under exclusivity.
  void SetConcurrentWrites(bool on) {
    concurrent_.store(on, std::memory_order_release);
  }
  bool concurrent_writes() const {
    return concurrent_.load(std::memory_order_acquire);
  }

  /// Number of unfolded delta operations (lock-free approximation for the
  /// compactor's trigger check).
  size_t delta_ops() const {
    return delta_ops_.load(std::memory_order_acquire);
  }
  bool HasDelta() const { return delta_ops() > 0; }

  /// Folds the differential index into the base table and permutations.
  /// Requires external exclusivity (no concurrent readers or writers).
  /// Logically invisible: fires no listener callbacks and leaves
  /// version() untouched — readers see the same triples before and after.
  /// Returns the number of delta operations folded.
  size_t FoldDelta();

  /// The current epoch: Match results at this snapshot stay frozen even
  /// as later batches commit. Pass to MatchAt.
  uint64_t SnapshotEpoch() const {
    return version_.load(std::memory_order_acquire);
  }

  /// Calls `cb` for every triple matching the pattern; Undef terms act as
  /// wildcards. Returning false from `cb` stops the scan early. The
  /// Triple reference is valid only for the duration of the callback.
  void Match(const Term& s, const Term& p, const Term& o,
             const std::function<bool(const Triple&)>& cb) const;

  /// Match as of a snapshot epoch: delta batches committed after
  /// `snapshot` are invisible. (Base-table content is always included —
  /// the fold only runs once no reader can still hold an older epoch.)
  void MatchAt(uint64_t snapshot, const Term& s, const Term& p, const Term& o,
               const std::function<bool(const Triple&)>& cb) const;

  std::vector<Triple> MatchAll(const Term& s, const Term& p,
                               const Term& o) const;

  /// True if at least one matching triple exists.
  bool Contains(const Term& s, const Term& p, const Term& o) const;

  /// Cardinality estimate for a pattern where each position is either a
  /// known constant or unknown (nullopt). Used by the optimizer; exact
  /// prefix-range counts for dictionary-resolvable constants, adjusted by
  /// the unfolded delta.
  int64_t EstimateMatches(const std::optional<Term>& s,
                          const std::optional<Term>& p,
                          const std::optional<Term>& o) const;

  /// Visits every live triple (base plus delta).
  void ForEach(const std::function<void(const Triple&)>& cb) const;

  /// Fresh blank node label unique within this graph ("b1", "b2", ...).
  std::string FreshBlankLabel();

  /// Registers (or clears, with nullptr) the single mutation listener.
  /// The listener is not owned; destruction of the graph notifies it via
  /// OnGraphDestroyed. Note that moving a Graph carries its listener
  /// along; code that keys listeners by graph address (the stats registry)
  /// re-attaches after moves.
  void SetListener(GraphListener* listener) { listener_.ptr = listener; }
  GraphListener* listener() const { return listener_.ptr; }

  /// Monotonic logical-mutation counter: bumps on every applied operation
  /// but not on internal housekeeping (delta folds, compaction). Doubles
  /// as the snapshot epoch for the differential index: every operation of
  /// a batch carries the epoch at which it committed.
  uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

  // --- Dictionary-encoded view (ID space). ---

  /// Term dictionary: every term is interned at insertion — base-table
  /// terms by AddBase, delta-admitted terms at Apply time under the delta
  /// mutex — so query constants resolve through the dictionary even while
  /// a delta is unfolded.
  const TermDictionary& dict() const { return dict_; }

  /// The base triple table as dictionary IDs, parallel to the Term table
  /// (tombstoned rows included; pair with ForEachId for live rows only).
  const std::vector<IdTriple>& id_table() const { return id_triples_; }

  /// Visits every live *base* triple as dictionary IDs, in table order.
  /// Callers that need the unfolded delta too must merge in
  /// SnapshotDeltaIds (the ID-join path does exactly that; snapshot
  /// encoding folds first, so it never has to).
  void ForEachId(const std::function<void(const IdTriple&)>& cb) const;

  /// Resolves the pending delta at `snapshot` into per-permutation sorted
  /// runs of ID tuples — the executor merges these with the base
  /// permutations so ID-space scans observe exactly the triples MatchAt
  /// would at the same epoch. `out` is cleared first and left empty when
  /// no delta operation with epoch <= snapshot exists. Thread-safe against
  /// concurrent writers; the returned IDs are published (safe for
  /// dict().term()) because Apply interns before exposing an epoch.
  void SnapshotDeltaIds(uint64_t snapshot, DeltaIdRuns* out) const;

  /// Sorted SPO/POS/OSP permutation indexes over the live *base* ID
  /// tuples, built lazily and cached until the next base-table change
  /// (including compaction, which renumbers IDs). Thread-safe for
  /// concurrent readers; concurrent-mode writers never touch the base
  /// table, so the returned reference stays valid until the next fold or
  /// base-mode mutation, which run under the engine's exclusive lock.
  const IdIndexes& EnsureIdIndexes() const;

  /// The cached permutation indexes if they are already built and fresh,
  /// else nullptr — lets the planner consult aggregated distinct counts
  /// without paying the build on graphs that never reach the ID-join path.
  const IdIndexes* PeekIdIndexes() const;

 private:
  /// Listener pointer that nulls out when moved from, so a moved-from
  /// graph cannot fire callbacks for a listener it no longer owns.
  struct ListenerRef {
    GraphListener* ptr = nullptr;
    ListenerRef() = default;
    ListenerRef(ListenerRef&& o) noexcept : ptr(o.ptr) { o.ptr = nullptr; }
    ListenerRef& operator=(ListenerRef&& o) noexcept {
      ptr = o.ptr;
      o.ptr = nullptr;
      return *this;
    }
  };

  /// Lazily built permutation indexes plus their freshness stamp. Held
  /// behind a unique_ptr so the mutex does not pin the (move-only) graph.
  struct IdIndexCache {
    std::mutex mu;
    std::atomic<uint64_t> built_stamp{~0ull};
    IdIndexes idx;
  };

  /// One differential-index operation: the epoch (version value) at which
  /// it committed, and whether it inserts one copy or tombstones all
  /// copies present at that epoch.
  struct DeltaOp {
    uint64_t epoch;
    bool is_add;
  };

  /// Per-triple delta cell: the ops touching one (value-equal) triple, in
  /// commit order.
  struct DeltaCell {
    std::vector<DeltaOp> ops;
  };

  /// One delta cell mirrored into the ID space: the triple's dictionary
  /// IDs (interned at Apply time) plus a stable pointer to its cell, whose
  /// op list snapshots resolve against. unordered_map never invalidates
  /// value addresses, so the pointer survives rehashing.
  struct DeltaRunEntry {
    IdTriple ids;
    const DeltaCell* cell = nullptr;
  };

  /// The differential index. Keyed by triple value equality — the same
  /// equality Remove and Match use. Guarded by `mu`; writers hold it for
  /// the whole batch (batch atomicity), readers only long enough to copy
  /// the matching cells out. The runs mirror `cells` sorted per
  /// permutation key order (one entry per distinct triple), kept in step
  /// by Apply so SnapshotDeltaIds can emit merge-ready runs without
  /// sorting on the read path.
  struct DeltaState {
    mutable std::mutex mu;
    std::unordered_map<Triple, DeltaCell, TripleHash> cells;
    std::vector<DeltaRunEntry> run_spo;
    std::vector<DeltaRunEntry> run_pos;
    std::vector<DeltaRunEntry> run_osp;
  };

  /// A delta cell resolved at a snapshot: whether the base copies are
  /// tombstoned, and how many delta-inserted copies are live.
  struct ResolvedCell {
    Triple t;
    size_t adds = 0;
    bool cleared = false;
  };

  void AddBase(Triple t, GraphListener* observer);
  size_t RemoveBase(const Triple& t, GraphListener* observer);
  ApplyResult ApplyBase(WriteBatch&& batch, GraphListener* observer);
  ApplyResult ApplyDelta(WriteBatch&& batch, GraphListener* observer);

  /// The delta cell for `t`, creating it on first touch — which interns
  /// the triple's terms and splices the cell into the sorted ID runs.
  /// Caller holds the delta mutex.
  DeltaCell& DeltaCellFor(const Triple& t);

  /// Copies of `t` (value equality) live in the base table.
  size_t BaseMultiplicity(const Triple& t) const;

  /// Whether a copy of `t` (value equality) is live in the base table.
  /// O(1) via the live-row hash set when the dictionary pins all three
  /// terms exactly (same rules as ScanBase's constant resolution); falls
  /// back to a filtered table scan — never an index rebuild — for
  /// aliasing-prone or not-yet-interned numeric/array terms. This is
  /// what keeps Apply's set-semantics precheck cheap for the
  /// one-triple-per-batch paths (Graph::Add, per-statement INSERT).
  bool BaseContains(const Triple& t) const;

  /// Resolves every delta cell matching the pattern at `snapshot` into
  /// `out`; returns true if any matched cell tombstones base copies.
  bool SnapshotDelta(uint64_t snapshot, const Term& s, const Term& p,
                     const Term& o, std::vector<ResolvedCell>* out) const;

  /// Scans base-table triples matching the pattern (permutation prefix
  /// range when the constants resolve in the dictionary, filtered table
  /// scan otherwise). Returns false if the callback stopped the scan.
  bool ScanBase(const Term& s, const Term& p, const Term& o,
                const std::function<bool(const Triple&)>& cb) const;

  void MaybeCompact();

  std::vector<Triple> triples_;
  std::vector<bool> dead_;
  std::atomic<int64_t> live_count_{0};
  size_t dead_count_ = 0;
  std::atomic<uint64_t> blank_counter_{0};
  std::atomic<uint64_t> version_{0};
  ListenerRef listener_;

  struct IdTripleHash {
    size_t operator()(const IdTriple& t) const {
      uint64_t h = (static_cast<uint64_t>(t.s) << 32) | t.p;
      h = (h ^ (static_cast<uint64_t>(t.o) + 0x9e3779b97f4a7c15ull)) *
          0xff51afd7ed558ccdull;
      return static_cast<size_t>(h ^ (h >> 33));
    }
  };

  TermDictionary dict_;
  std::vector<IdTriple> id_triples_;  // parallel to triples_/dead_
  /// ID tuples of the *live* base rows — the O(1) presence probe behind
  /// BaseContains. Maintained wherever base rows flip liveness (AddBase,
  /// RemoveBase, fold tombstones/appends, Clear); compaction rebuilds it
  /// through Clear + AddBase like every other row structure.
  std::unordered_set<IdTriple, IdTripleHash> live_set_;
  /// Bumps on *every* base-table rewrite — base-mode mutations, delta
  /// folds and compaction alike (the latter two renumber dictionary IDs
  /// even though version() stands still), so the ID-index cache can
  /// detect staleness.
  uint64_t table_stamp_ = 0;
  std::unique_ptr<IdIndexCache> id_cache_;

  std::atomic<bool> concurrent_{false};
  std::atomic<size_t> delta_ops_{0};
  std::unique_ptr<DeltaState> delta_;
};

/// An RDF dataset: one default graph plus named graphs, addressed by the
/// GRAPH clause and FROM / FROM NAMED (Section 3.3.4).
class Dataset {
 public:
  Graph& default_graph() { return default_graph_; }
  const Graph& default_graph() const { return default_graph_; }

  /// Returns the named graph, creating it when absent. Creation mutates
  /// the graph map: under concurrent writers it must run exclusively (the
  /// scheduler escalates statements that need it).
  Graph& GetOrCreateNamed(const std::string& iri);
  /// Returns the named graph or nullptr.
  const Graph* FindNamed(const std::string& iri) const;
  Graph* FindNamed(const std::string& iri);

  bool DropNamed(const std::string& iri);

  const std::map<std::string, Graph>& named_graphs() const {
    return named_;
  }
  std::map<std::string, Graph>& named_graphs() { return named_; }

  /// Propagates the write mode to the default graph and every named
  /// graph, present and future.
  void SetConcurrentWrites(bool on);
  bool concurrent_writes() const { return concurrent_writes_; }

  /// Total unfolded delta ops across all graphs (compactor trigger).
  size_t PendingDeltaOps() const;

  /// Folds every graph's differential index; requires exclusivity.
  /// Returns total ops folded.
  size_t FoldDeltas();

 private:
  Graph default_graph_;
  std::map<std::string, Graph> named_;
  bool concurrent_writes_ = false;
};

}  // namespace scisparql

#endif  // SCISPARQL_RDF_GRAPH_H_
