#ifndef SCISPARQL_RDF_WRITE_BATCH_H_
#define SCISPARQL_RDF_WRITE_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "rdf/triple.h"

namespace scisparql {

/// An ordered list of mutations applied to one Graph as a unit via
/// Graph::Apply — the only mutation entry point. Readers never observe a
/// prefix of a batch: either none of its operations are visible or all of
/// them are. Operation order within the batch is preserved (a RemoveAll
/// followed by an Add of the same triple nets one copy), which is what
/// DELETE/INSERT WHERE compiles to.
class WriteBatch {
 public:
  enum class OpKind : uint8_t {
    kAdd,        ///< insert one copy of the triple
    kRemoveAll,  ///< remove every copy equal to the triple
  };

  struct Op {
    OpKind kind;
    Triple t;
  };

  void Add(Triple t) { ops_.push_back(Op{OpKind::kAdd, std::move(t)}); }
  void Add(Term s, Term p, Term o) {
    Add(Triple{std::move(s), std::move(p), std::move(o)});
  }
  void RemoveAll(Triple t) {
    ops_.push_back(Op{OpKind::kRemoveAll, std::move(t)});
  }

  bool empty() const { return ops_.empty(); }
  size_t size() const { return ops_.size(); }
  void clear() { ops_.clear(); }
  void reserve(size_t n) { ops_.reserve(n); }

  const std::vector<Op>& ops() const { return ops_; }

  /// Moves the ops out (Graph::Apply consumes the batch).
  std::vector<Op> Release() { return std::move(ops_); }

 private:
  std::vector<Op> ops_;
};

}  // namespace scisparql

#endif  // SCISPARQL_RDF_WRITE_BATCH_H_
