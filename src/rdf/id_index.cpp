#include "rdf/id_index.h"

#include <algorithm>

namespace scisparql {

const char* PermName(Perm perm) {
  switch (perm) {
    case Perm::kSpo:
      return "SPO";
    case Perm::kPos:
      return "POS";
    default:
      return "OSP";
  }
}

namespace {

bool PermLess(Perm perm, const IdTriple& a, const IdTriple& b) {
  return PermKey(perm, a) < PermKey(perm, b);
}

/// Distinct (first) and distinct (first, second) key prefixes of a sorted
/// permutation — one linear pass.
void CountPrefixes(const std::vector<IdTriple>& sorted, Perm perm,
                   size_t* distinct1, size_t* distinct2) {
  *distinct1 = 0;
  *distinct2 = 0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    std::array<uint32_t, 3> k = PermKey(perm, sorted[i]);
    if (i == 0) {
      *distinct1 = *distinct2 = 1;
      continue;
    }
    std::array<uint32_t, 3> prev = PermKey(perm, sorted[i - 1]);
    if (k[0] != prev[0]) {
      ++*distinct1;
      ++*distinct2;
    } else if (k[1] != prev[1]) {
      ++*distinct2;
    }
  }
}

}  // namespace

void BuildIdIndexes(const std::vector<IdTriple>& table,
                    const std::vector<bool>& dead, IdIndexes* out) {
  std::vector<uint32_t> live_rows;
  live_rows.reserve(table.size());
  for (size_t i = 0; i < table.size(); ++i) {
    if (i < dead.size() && dead[i]) continue;
    live_rows.push_back(static_cast<uint32_t>(i));
  }
  auto build_one = [&](Perm perm, std::vector<IdTriple>* sorted,
                       std::vector<uint32_t>* rows) {
    *rows = live_rows;
    // Stable, so duplicate keys keep table order and scans are
    // deterministic across rebuilds.
    std::stable_sort(rows->begin(), rows->end(),
                     [&](uint32_t a, uint32_t b) {
                       return PermLess(perm, table[a], table[b]);
                     });
    sorted->clear();
    sorted->reserve(rows->size());
    for (uint32_t r : *rows) sorted->push_back(table[r]);
  };
  build_one(Perm::kSpo, &out->spo, &out->spo_rows);
  build_one(Perm::kPos, &out->pos, &out->pos_rows);
  build_one(Perm::kOsp, &out->osp, &out->osp_rows);
  CountPrefixes(out->spo, Perm::kSpo, &out->distinct_s, &out->distinct_sp);
  CountPrefixes(out->pos, Perm::kPos, &out->distinct_p, &out->distinct_po);
  CountPrefixes(out->osp, Perm::kOsp, &out->distinct_o, &out->distinct_os);
}

namespace {

/// Shared PrefixRange body over any element type that projects to an
/// IdTriple (the base permutations hold IdTriple directly, delta runs wrap
/// one in a DeltaIdEntry).
template <typename T, typename Proj>
std::pair<size_t, size_t> PrefixRangeImpl(const std::vector<T>& sorted,
                                          Perm perm,
                                          const std::array<uint32_t, 3>& key,
                                          int n_fixed, Proj proj) {
  if (n_fixed <= 0) return {0, sorted.size()};
  auto less = [perm, n_fixed, &proj](const T& e,
                                     const std::array<uint32_t, 3>& k) {
    std::array<uint32_t, 3> tk = PermKey(perm, proj(e));
    for (int i = 0; i < n_fixed; ++i) {
      if (tk[i] != k[i]) return tk[i] < k[i];
    }
    return false;
  };
  auto greater = [perm, n_fixed, &proj](const std::array<uint32_t, 3>& k,
                                        const T& e) {
    std::array<uint32_t, 3> tk = PermKey(perm, proj(e));
    for (int i = 0; i < n_fixed; ++i) {
      if (tk[i] != k[i]) return k[i] < tk[i];
    }
    return false;
  };
  auto lo = std::lower_bound(sorted.begin(), sorted.end(), key, less);
  auto hi = std::upper_bound(lo, sorted.end(), key, greater);
  return {static_cast<size_t>(lo - sorted.begin()),
          static_cast<size_t>(hi - sorted.begin())};
}

}  // namespace

std::pair<size_t, size_t> PrefixRange(const std::vector<IdTriple>& sorted,
                                      Perm perm,
                                      const std::array<uint32_t, 3>& key,
                                      int n_fixed) {
  return PrefixRangeImpl(sorted, perm, key, n_fixed,
                         [](const IdTriple& t) -> const IdTriple& {
                           return t;
                         });
}

std::pair<size_t, size_t> DeltaPrefixRange(
    const std::vector<DeltaIdEntry>& sorted, Perm perm,
    const std::array<uint32_t, 3>& key, int n_fixed) {
  return PrefixRangeImpl(sorted, perm, key, n_fixed,
                         [](const DeltaIdEntry& e) -> const IdTriple& {
                           return e.t;
                         });
}

}  // namespace scisparql
