#include "rdf/term_codec.h"

#include <cstring>
#include <vector>

namespace scisparql {
namespace rdf {

void PutU32(std::string* out, uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  out->append(b, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  out->append(b, 8);
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

bool GetU32(const std::string& data, size_t* pos, uint32_t* v) {
  if (*pos + 4 > data.size()) return false;
  std::memcpy(v, data.data() + *pos, 4);
  *pos += 4;
  return true;
}

bool GetU64(const std::string& data, size_t* pos, uint64_t* v) {
  if (*pos + 8 > data.size()) return false;
  std::memcpy(v, data.data() + *pos, 8);
  *pos += 8;
  return true;
}

bool GetString(const std::string& data, size_t* pos, std::string* s) {
  uint32_t n;
  if (!GetU32(data, pos, &n) || *pos + n > data.size()) return false;
  s->assign(data, *pos, n);
  *pos += n;
  return true;
}

Status SerializeTerm(const Term& term, std::string* out) {
  out->push_back(static_cast<char>(term.kind()));
  switch (term.kind()) {
    case Term::Kind::kUndef:
      return Status::OK();
    case Term::Kind::kIri:
      PutString(out, term.iri());
      return Status::OK();
    case Term::Kind::kBlank:
      PutString(out, term.blank_label());
      return Status::OK();
    case Term::Kind::kString:
      PutString(out, term.lexical());
      PutString(out, term.lang());
      return Status::OK();
    case Term::Kind::kInteger:
      PutU64(out, static_cast<uint64_t>(term.integer()));
      return Status::OK();
    case Term::Kind::kDouble: {
      uint64_t bits;
      double d = term.dbl();
      std::memcpy(&bits, &d, 8);
      PutU64(out, bits);
      return Status::OK();
    }
    case Term::Kind::kBoolean:
      out->push_back(term.boolean() ? 1 : 0);
      return Status::OK();
    case Term::Kind::kTypedLiteral:
      PutString(out, term.lexical());
      PutString(out, term.datatype());
      return Status::OK();
    case Term::Kind::kArray: {
      SCISPARQL_ASSIGN_OR_RETURN(NumericArray a, term.array()->Materialize());
      out->push_back(static_cast<char>(a.etype()));
      PutU32(out, static_cast<uint32_t>(a.rank()));
      for (int64_t d : a.shape()) PutU64(out, static_cast<uint64_t>(d));
      int64_t n = a.NumElements();
      for (int64_t i = 0; i < n; ++i) {
        if (a.etype() == ElementType::kDouble) {
          double v = a.DoubleAt(i);
          uint64_t bits;
          std::memcpy(&bits, &v, 8);
          PutU64(out, bits);
        } else {
          PutU64(out, static_cast<uint64_t>(a.IntAt(i)));
        }
      }
      return Status::OK();
    }
  }
  return Status::Internal("unknown term kind");
}

Result<Term> DeserializeTerm(const std::string& data, size_t* pos) {
  if (*pos >= data.size()) return Status::Internal("truncated term");
  Term::Kind kind = static_cast<Term::Kind>(data[(*pos)++]);
  auto fail = []() { return Status::Internal("truncated term payload"); };
  switch (kind) {
    case Term::Kind::kUndef:
      return Term();
    case Term::Kind::kIri: {
      std::string s;
      if (!GetString(data, pos, &s)) return fail();
      return Term::Iri(std::move(s));
    }
    case Term::Kind::kBlank: {
      std::string s;
      if (!GetString(data, pos, &s)) return fail();
      return Term::Blank(std::move(s));
    }
    case Term::Kind::kString: {
      std::string s, lang;
      if (!GetString(data, pos, &s) || !GetString(data, pos, &lang)) {
        return fail();
      }
      return lang.empty() ? Term::String(std::move(s))
                          : Term::LangString(std::move(s), std::move(lang));
    }
    case Term::Kind::kInteger: {
      uint64_t v;
      if (!GetU64(data, pos, &v)) return fail();
      return Term::Integer(static_cast<int64_t>(v));
    }
    case Term::Kind::kDouble: {
      uint64_t bits;
      if (!GetU64(data, pos, &bits)) return fail();
      double d;
      std::memcpy(&d, &bits, 8);
      return Term::Double(d);
    }
    case Term::Kind::kBoolean: {
      if (*pos >= data.size()) return fail();
      return Term::Boolean(data[(*pos)++] != 0);
    }
    case Term::Kind::kTypedLiteral: {
      std::string lex, dt;
      if (!GetString(data, pos, &lex) || !GetString(data, pos, &dt)) {
        return fail();
      }
      return Term::TypedLiteral(std::move(lex), std::move(dt));
    }
    case Term::Kind::kArray: {
      if (*pos >= data.size()) return fail();
      ElementType etype = static_cast<ElementType>(data[(*pos)++]);
      uint32_t rank;
      if (!GetU32(data, pos, &rank)) return fail();
      std::vector<int64_t> shape(rank);
      for (uint32_t d = 0; d < rank; ++d) {
        uint64_t v;
        if (!GetU64(data, pos, &v)) return fail();
        shape[d] = static_cast<int64_t>(v);
      }
      NumericArray a = NumericArray::Zeros(etype, shape);
      int64_t n = a.NumElements();
      for (int64_t i = 0; i < n; ++i) {
        uint64_t bits;
        if (!GetU64(data, pos, &bits)) return fail();
        if (etype == ElementType::kDouble) {
          double d;
          std::memcpy(&d, &bits, 8);
          a.SetDoubleAt(i, d);
        } else {
          a.SetIntAt(i, static_cast<int64_t>(bits));
        }
      }
      return Term::Array(ResidentArray::Make(std::move(a)));
    }
  }
  return Status::Internal("unknown term kind tag");
}

}  // namespace rdf
}  // namespace scisparql
