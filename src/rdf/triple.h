#ifndef SCISPARQL_RDF_TRIPLE_H_
#define SCISPARQL_RDF_TRIPLE_H_

#include <cstddef>
#include <string>

#include "rdf/term.h"

namespace scisparql {

/// One (subject, property, value) triple. The paper prefers "value" over
/// "object" to stress that array values are first-class (footnote 2).
struct Triple {
  Term s;
  Term p;
  Term o;

  bool operator==(const Triple& other) const {
    return s == other.s && p == other.p && o == other.o;
  }
  std::string ToString() const;
};

/// Value-equality hash for Triple, consistent with Triple::operator==
/// (which compares Terms by SPARQL value equality, e.g. 2 == 2.0).
struct TripleHash {
  size_t operator()(const Triple& t) const;
};

}  // namespace scisparql

#endif  // SCISPARQL_RDF_TRIPLE_H_
