#include "rdf/graph.h"

#include <algorithm>

#include "common/string_util.h"
#include "obs/metrics.h"

namespace scisparql {

std::string Triple::ToString() const {
  return s.ToString() + " " + p.ToString() + " " + o.ToString() + " .";
}

size_t Graph::PairKeyHash::operator()(const PairKey& k) const {
  return HashCombine(k.a.Hash(), k.b.Hash());
}

Graph::Graph() : id_cache_(std::make_unique<IdIndexCache>()) {}

Graph::~Graph() {
  if (listener_.ptr != nullptr) listener_.ptr->OnGraphDestroyed();
}

Graph::Graph(Graph&& o) noexcept
    : triples_(std::move(o.triples_)),
      dead_(std::move(o.dead_)),
      live_count_(o.live_count_),
      dead_count_(o.dead_count_),
      blank_counter_(o.blank_counter_),
      version_(o.version_),
      listener_(std::move(o.listener_)),
      by_s_(std::move(o.by_s_)),
      by_p_(std::move(o.by_p_)),
      by_o_(std::move(o.by_o_)),
      by_sp_(std::move(o.by_sp_)),
      by_po_(std::move(o.by_po_)),
      dict_(std::move(o.dict_)),
      id_triples_(std::move(o.id_triples_)),
      table_stamp_(o.table_stamp_),
      id_cache_(std::move(o.id_cache_)) {
  o.id_cache_ = std::make_unique<IdIndexCache>();
}

Graph& Graph::operator=(Graph&& o) noexcept {
  triples_ = std::move(o.triples_);
  dead_ = std::move(o.dead_);
  live_count_ = o.live_count_;
  dead_count_ = o.dead_count_;
  blank_counter_ = o.blank_counter_;
  version_ = o.version_;
  listener_ = std::move(o.listener_);
  by_s_ = std::move(o.by_s_);
  by_p_ = std::move(o.by_p_);
  by_o_ = std::move(o.by_o_);
  by_sp_ = std::move(o.by_sp_);
  by_po_ = std::move(o.by_po_);
  dict_ = std::move(o.dict_);
  id_triples_ = std::move(o.id_triples_);
  table_stamp_ = o.table_stamp_;
  id_cache_ = std::move(o.id_cache_);
  o.id_cache_ = std::make_unique<IdIndexCache>();
  return *this;
}

Graph Graph::Clone() const {
  Graph g;
  ForEach([&g](const Triple& t) { g.Add(t); });
  return g;
}

void Graph::Add(Triple t) {
  uint32_t id = static_cast<uint32_t>(triples_.size());
  by_s_[t.s].push_back(id);
  by_p_[t.p].push_back(id);
  by_o_[t.o].push_back(id);
  by_sp_[PairKey{t.s, t.p}].push_back(id);
  by_po_[PairKey{t.p, t.o}].push_back(id);
  id_triples_.push_back(
      IdTriple{dict_.Intern(t.s), dict_.Intern(t.p), dict_.Intern(t.o)});
  ++version_;
  ++table_stamp_;
  if (listener_.ptr != nullptr) listener_.ptr->OnAdd(t);
  triples_.push_back(std::move(t));
  dead_.push_back(false);
  ++live_count_;
}

size_t Graph::Remove(const Triple& t) {
  size_t removed = 0;
  auto it = by_sp_.find(PairKey{t.s, t.p});
  if (it == by_sp_.end()) return 0;
  for (uint32_t id : it->second) {
    if (!dead_[id] && triples_[id].o == t.o) {
      dead_[id] = true;
      --live_count_;
      ++dead_count_;
      ++removed;
      ++version_;
      ++table_stamp_;
      if (listener_.ptr != nullptr) listener_.ptr->OnRemove(triples_[id]);
    }
  }
  MaybeCompact();
  return removed;
}

void Graph::Clear() {
  triples_.clear();
  dead_.clear();
  live_count_ = 0;
  dead_count_ = 0;
  by_s_.clear();
  by_p_.clear();
  by_o_.clear();
  by_sp_.clear();
  by_po_.clear();
  dict_.Clear();
  id_triples_.clear();
  ++version_;
  ++table_stamp_;
  if (listener_.ptr != nullptr) listener_.ptr->OnClear();
}

void Graph::MaybeCompact() {
  if (dead_count_ < 1024 || dead_count_ * 2 < triples_.size()) return;
  std::vector<Triple> live;
  live.reserve(live_count_);
  for (size_t i = 0; i < triples_.size(); ++i) {
    if (!dead_[i]) live.push_back(std::move(triples_[i]));
  }
  // Compaction rewrites the table without changing its logical content:
  // the listener must not see the internal Clear+Add churn, and the
  // version must not drift (it tracks logical mutations only).
  GraphListener* listener = listener_.ptr;
  listener_.ptr = nullptr;
  uint64_t blank_counter = blank_counter_;
  uint64_t version = version_;
  Clear();
  blank_counter_ = blank_counter;
  for (Triple& t : live) Add(std::move(t));
  version_ = version;
  listener_.ptr = listener;
}

namespace {

bool TermMatches(const Term& pattern, const Term& value) {
  return pattern.IsUndef() || pattern == value;
}

}  // namespace

namespace {

/// Triple-scan counters, shared by every graph in the process. The per-row
/// cost is a plain local increment; the sharded atomics are touched twice
/// per Match call (once for the scan, once for the row total).
struct ScanMetrics {
  obs::Counter& scans;
  obs::Counter& rows;
};

ScanMetrics& GraphMetrics() {
  obs::MetricsRegistry& reg = obs::DefaultMetrics();
  static ScanMetrics* m = new ScanMetrics{
      reg.GetCounter("ssdm_rdf_scans_total", "",
                     "Triple-index scans (Graph::Match calls)."),
      reg.GetCounter("ssdm_rdf_scan_rows_total", "",
                     "Matching triples delivered by triple-index scans."),
  };
  return *m;
}

/// Accumulates delivered-row counts locally and flushes once on scope
/// exit, covering the early-return paths.
struct RowTally {
  obs::Counter& counter;
  uint64_t n = 0;
  ~RowTally() {
    if (n > 0) counter.Add(n);
  }
};

}  // namespace

void Graph::Match(const Term& s, const Term& p, const Term& o,
                  const std::function<bool(const Triple&)>& cb) const {
  GraphMetrics().scans.Add();
  RowTally tally{GraphMetrics().rows};
  // Pick the most selective available index.
  const IdList* ids = nullptr;
  static const IdList kEmpty;
  auto lookup = [&](const auto& index, const auto& key) -> const IdList* {
    auto it = index.find(key);
    return it == index.end() ? &kEmpty : &it->second;
  };
  if (!s.IsUndef() && !p.IsUndef()) {
    ids = lookup(by_sp_, PairKey{s, p});
  } else if (!p.IsUndef() && !o.IsUndef()) {
    ids = lookup(by_po_, PairKey{p, o});
  } else if (!s.IsUndef()) {
    ids = lookup(by_s_, s);
  } else if (!o.IsUndef()) {
    ids = lookup(by_o_, o);
  } else if (!p.IsUndef()) {
    ids = lookup(by_p_, p);
  }

  if (ids != nullptr) {
    for (uint32_t id : *ids) {
      if (dead_[id]) continue;
      const Triple& t = triples_[id];
      if (TermMatches(s, t.s) && TermMatches(p, t.p) && TermMatches(o, t.o)) {
        ++tally.n;
        if (!cb(t)) return;
      }
    }
    return;
  }
  // Full scan (all three positions are wildcards).
  for (size_t i = 0; i < triples_.size(); ++i) {
    if (dead_[i]) continue;
    ++tally.n;
    if (!cb(triples_[i])) return;
  }
}

std::vector<Triple> Graph::MatchAll(const Term& s, const Term& p,
                                    const Term& o) const {
  std::vector<Triple> out;
  Match(s, p, o, [&out](const Triple& t) {
    out.push_back(t);
    return true;
  });
  return out;
}

bool Graph::Contains(const Term& s, const Term& p, const Term& o) const {
  bool found = false;
  Match(s, p, o, [&found](const Triple&) {
    found = true;
    return false;
  });
  return found;
}

int64_t Graph::EstimateMatches(const std::optional<Term>& s,
                               const std::optional<Term>& p,
                               const std::optional<Term>& o) const {
  auto bucket = [&](const auto& index, const auto& key) -> int64_t {
    auto it = index.find(key);
    return it == index.end() ? 0 : static_cast<int64_t>(it->second.size());
  };
  if (s && p) return bucket(by_sp_, PairKey{*s, *p});
  if (p && o) return bucket(by_po_, PairKey{*p, *o});
  if (s && o) {
    // No SO index; take the smaller of the single-term buckets.
    return std::min(bucket(by_s_, *s), bucket(by_o_, *o));
  }
  if (s) return bucket(by_s_, *s);
  if (o) return bucket(by_o_, *o);
  if (p) return bucket(by_p_, *p);
  return static_cast<int64_t>(live_count_);
}

void Graph::ForEach(const std::function<void(const Triple&)>& cb) const {
  for (size_t i = 0; i < triples_.size(); ++i) {
    if (!dead_[i]) cb(triples_[i]);
  }
}

void Graph::ForEachId(const std::function<void(const IdTriple&)>& cb) const {
  for (size_t i = 0; i < id_triples_.size(); ++i) {
    if (!dead_[i]) cb(id_triples_[i]);
  }
}

const IdIndexes& Graph::EnsureIdIndexes() const {
  IdIndexCache* c = id_cache_.get();
  // Fast path: a fresh build is published with release ordering, and the
  // table cannot change concurrently with readers (mutations run under the
  // engine's exclusive lock), so an acquire load of the stamp suffices.
  if (c->built_stamp.load(std::memory_order_acquire) == table_stamp_) {
    return c->idx;
  }
  std::lock_guard<std::mutex> lock(c->mu);
  if (c->built_stamp.load(std::memory_order_relaxed) != table_stamp_) {
    BuildIdIndexes(id_triples_, dead_, &c->idx);
    c->built_stamp.store(table_stamp_, std::memory_order_release);
  }
  return c->idx;
}

const IdIndexes* Graph::PeekIdIndexes() const {
  IdIndexCache* c = id_cache_.get();
  if (c->built_stamp.load(std::memory_order_acquire) == table_stamp_) {
    return &c->idx;
  }
  return nullptr;
}

std::string Graph::FreshBlankLabel() {
  return "b" + std::to_string(++blank_counter_);
}

Graph& Dataset::GetOrCreateNamed(const std::string& iri) {
  return named_[iri];
}

const Graph* Dataset::FindNamed(const std::string& iri) const {
  auto it = named_.find(iri);
  return it == named_.end() ? nullptr : &it->second;
}

Graph* Dataset::FindNamed(const std::string& iri) {
  auto it = named_.find(iri);
  return it == named_.end() ? nullptr : &it->second;
}

bool Dataset::DropNamed(const std::string& iri) {
  return named_.erase(iri) > 0;
}

}  // namespace scisparql
