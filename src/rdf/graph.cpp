#include "rdf/graph.h"

#include <algorithm>
#include <unordered_set>

#include "common/string_util.h"
#include "obs/metrics.h"

namespace scisparql {

std::string Triple::ToString() const {
  return s.ToString() + " " + p.ToString() + " " + o.ToString() + " .";
}

size_t TripleHash::operator()(const Triple& t) const {
  return HashCombine(HashCombine(t.s.Hash(), t.p.Hash()), t.o.Hash());
}

Graph::Graph()
    : id_cache_(std::make_unique<IdIndexCache>()),
      delta_(std::make_unique<DeltaState>()) {}

Graph::~Graph() {
  if (listener_.ptr != nullptr) listener_.ptr->OnGraphDestroyed();
}

Graph::Graph(Graph&& o) noexcept
    : triples_(std::move(o.triples_)),
      dead_(std::move(o.dead_)),
      live_count_(o.live_count_.load(std::memory_order_relaxed)),
      dead_count_(o.dead_count_),
      blank_counter_(o.blank_counter_.load(std::memory_order_relaxed)),
      version_(o.version_.load(std::memory_order_relaxed)),
      listener_(std::move(o.listener_)),
      dict_(std::move(o.dict_)),
      id_triples_(std::move(o.id_triples_)),
      live_set_(std::move(o.live_set_)),
      table_stamp_(o.table_stamp_),
      id_cache_(std::move(o.id_cache_)),
      concurrent_(o.concurrent_.load(std::memory_order_relaxed)),
      delta_ops_(o.delta_ops_.load(std::memory_order_relaxed)),
      delta_(std::move(o.delta_)) {
  o.id_cache_ = std::make_unique<IdIndexCache>();
  o.delta_ = std::make_unique<DeltaState>();
  o.live_count_.store(0, std::memory_order_relaxed);
  o.delta_ops_.store(0, std::memory_order_relaxed);
}

Graph& Graph::operator=(Graph&& o) noexcept {
  triples_ = std::move(o.triples_);
  dead_ = std::move(o.dead_);
  live_count_.store(o.live_count_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  dead_count_ = o.dead_count_;
  blank_counter_.store(o.blank_counter_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  version_.store(o.version_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  listener_ = std::move(o.listener_);
  dict_ = std::move(o.dict_);
  id_triples_ = std::move(o.id_triples_);
  live_set_ = std::move(o.live_set_);
  table_stamp_ = o.table_stamp_;
  id_cache_ = std::move(o.id_cache_);
  concurrent_.store(o.concurrent_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  delta_ops_.store(o.delta_ops_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  delta_ = std::move(o.delta_);
  o.id_cache_ = std::make_unique<IdIndexCache>();
  o.delta_ = std::make_unique<DeltaState>();
  o.live_count_.store(0, std::memory_order_relaxed);
  o.delta_ops_.store(0, std::memory_order_relaxed);
  return *this;
}

Graph Graph::Clone() const {
  Graph g;
  ForEach([&g](const Triple& t) { g.Add(t); });
  return g;
}

Graph::ApplyResult Graph::Apply(WriteBatch&& batch, GraphListener* observer) {
  if (batch.empty()) return {};
  if (concurrent_.load(std::memory_order_acquire)) {
    return ApplyDelta(std::move(batch), observer);
  }
  return ApplyBase(std::move(batch), observer);
}

Graph::ApplyResult Graph::ApplyBase(WriteBatch&& batch,
                                    GraphListener* observer) {
  ApplyResult res;
  std::vector<WriteBatch::Op> ops = batch.Release();
  // RDF graphs are sets: adding a triple the graph already holds is a
  // no-op. The skipped copy fires no listener, so the WAL and the
  // replication stream never carry it — which is what makes a re-sent
  // INSERT DATA (a router retrying an un-acked write across a failover)
  // genuinely idempotent. Presence is resolved for the whole batch up
  // front (O(1) per distinct triple via BaseContains) before any
  // mutation, then tracked through the ops so in-batch Add/Remove
  // sequences stay order-exact.
  // Each op keeps a pointer into the map from its first lookup: a term
  // that is not equal to itself (an array with a NaN cell) would miss a
  // second find(), so there is none — such triples get one node per op
  // and simply never deduplicate, consistent with NaN comparison.
  std::unordered_map<Triple, bool, TripleHash> present;
  std::vector<bool*> live;
  live.reserve(ops.size());
  for (const WriteBatch::Op& op : ops) {
    auto [it, fresh] = present.try_emplace(op.t, false);
    if (fresh) it->second = BaseContains(op.t);
    live.push_back(&it->second);
  }
  for (size_t i = 0; i < ops.size(); ++i) {
    WriteBatch::Op& op = ops[i];
    if (op.kind == WriteBatch::OpKind::kAdd) {
      if (*live[i]) continue;  // already present — set semantics
      *live[i] = true;
      AddBase(std::move(op.t), observer);
      ++res.added;
    } else {
      *live[i] = false;
      res.removed += static_cast<int64_t>(RemoveBase(op.t, observer));
    }
  }
  MaybeCompact();
  return res;
}

Graph::DeltaCell& Graph::DeltaCellFor(const Triple& t) {
  auto [it, fresh] = delta_->cells.try_emplace(t);
  if (fresh) {
    // First touch of this triple: intern its terms now — before the
    // batch's epoch is published — so readers that captured a snapshot
    // covering this batch can resolve its constants through the
    // dictionary, and mirror the cell into the per-permutation sorted
    // runs the ID-join executor merges with the base permutations.
    // Insertion keeps each run sorted; the compactor bounds the delta, so
    // the O(delta) splice stays cheap relative to the batch itself.
    DeltaRunEntry e;
    e.ids = IdTriple{dict_.Intern(t.s), dict_.Intern(t.p), dict_.Intern(t.o)};
    e.cell = &it->second;
    auto splice = [&e](Perm perm, std::vector<DeltaRunEntry>* run) {
      auto pos = std::upper_bound(
          run->begin(), run->end(), e,
          [perm](const DeltaRunEntry& a, const DeltaRunEntry& b) {
            return PermKey(perm, a.ids) < PermKey(perm, b.ids);
          });
      run->insert(pos, e);
    };
    splice(Perm::kSpo, &delta_->run_spo);
    splice(Perm::kPos, &delta_->run_pos);
    splice(Perm::kOsp, &delta_->run_osp);
  }
  return it->second;
}

Graph::ApplyResult Graph::ApplyDelta(WriteBatch&& batch,
                                     GraphListener* observer) {
  ApplyResult res;
  std::lock_guard<std::mutex> lock(delta_->mu);
  // Every op of the batch commits at one epoch, published with a single
  // store after the whole batch is in the delta: a reader that snapshots
  // the epoch without the mutex can never observe a batch prefix.
  const uint64_t epoch =
      version_.load(std::memory_order_relaxed) + batch.size();
  size_t new_ops = 0;
  for (const WriteBatch::Op& op : batch.ops()) {
    if (op.kind == WriteBatch::OpKind::kAdd) {
      // Set semantics under the delta mutex: skip the add when a live
      // copy already exists (in the base table or as a net delta add).
      // Doing this here — not at the statement layer — closes the race
      // between two concurrent writers inserting the same triple. The
      // base probe stays cheap in delta mode: the base table only
      // changes at fold time, and folds hold the exclusive lock, so
      // BaseContains' live-row set is stable under the shared lock.
      size_t adds = 0;
      bool cleared = false;
      auto cit = delta_->cells.find(op.t);
      if (cit != delta_->cells.end()) {
        for (const DeltaOp& d : cit->second.ops) {
          if (d.is_add) {
            ++adds;
          } else {
            adds = 0;
            cleared = true;
          }
        }
      }
      if (adds > 0 || (!cleared && BaseContains(op.t))) continue;
      DeltaCellFor(op.t).ops.push_back(DeltaOp{epoch, true});
      ++new_ops;
      ++res.added;
      if (listener_.ptr != nullptr) listener_.ptr->OnAdd(op.t);
      if (observer != nullptr) observer->OnAdd(op.t);
    } else {
      DeltaCell& cell = DeltaCellFor(op.t);
      size_t adds = 0;
      bool cleared = false;
      for (const DeltaOp& d : cell.ops) {
        if (d.is_add) {
          ++adds;
        } else {
          adds = 0;
          cleared = true;
        }
      }
      size_t m = adds + (cleared ? 0 : BaseMultiplicity(op.t));
      cell.ops.push_back(DeltaOp{epoch, false});
      ++new_ops;
      res.removed += static_cast<int64_t>(m);
      for (size_t i = 0; i < m; ++i) {
        if (listener_.ptr != nullptr) listener_.ptr->OnRemove(op.t);
        if (observer != nullptr) observer->OnRemove(op.t);
      }
    }
  }
  delta_ops_.fetch_add(new_ops, std::memory_order_release);
  live_count_.fetch_add(res.added - res.removed, std::memory_order_release);
  version_.store(epoch, std::memory_order_release);
  return res;
}

void Graph::AddBase(Triple t, GraphListener* observer) {
  id_triples_.push_back(
      IdTriple{dict_.Intern(t.s), dict_.Intern(t.p), dict_.Intern(t.o)});
  live_set_.insert(id_triples_.back());
  version_.fetch_add(1, std::memory_order_release);
  ++table_stamp_;
  if (listener_.ptr != nullptr) listener_.ptr->OnAdd(t);
  if (observer != nullptr) observer->OnAdd(t);
  triples_.push_back(std::move(t));
  dead_.push_back(false);
  live_count_.fetch_add(1, std::memory_order_release);
}

size_t Graph::RemoveBase(const Triple& t, GraphListener* observer) {
  size_t removed = 0;
  for (size_t i = 0; i < triples_.size(); ++i) {
    if (dead_[i] || !(triples_[i] == t)) continue;
    dead_[i] = true;
    live_set_.erase(id_triples_[i]);
    ++dead_count_;
    ++removed;
    version_.fetch_add(1, std::memory_order_release);
    ++table_stamp_;
    if (listener_.ptr != nullptr) listener_.ptr->OnRemove(triples_[i]);
    if (observer != nullptr) observer->OnRemove(triples_[i]);
  }
  live_count_.fetch_sub(static_cast<int64_t>(removed),
                        std::memory_order_release);
  return removed;
}

void Graph::Clear() {
  triples_.clear();
  dead_.clear();
  live_count_.store(0, std::memory_order_release);
  dead_count_ = 0;
  dict_.Clear();
  id_triples_.clear();
  live_set_.clear();
  if (delta_) {
    std::lock_guard<std::mutex> lock(delta_->mu);
    delta_->cells.clear();
    delta_->run_spo.clear();
    delta_->run_pos.clear();
    delta_->run_osp.clear();
  }
  delta_ops_.store(0, std::memory_order_release);
  version_.fetch_add(1, std::memory_order_release);
  ++table_stamp_;
  if (listener_.ptr != nullptr) listener_.ptr->OnClear();
}

size_t Graph::FoldDelta() {
  if (!delta_ || delta_ops_.load(std::memory_order_acquire) == 0) return 0;
  std::unordered_map<Triple, DeltaCell, TripleHash> cells;
  size_t folded;
  {
    std::lock_guard<std::mutex> lock(delta_->mu);
    cells.swap(delta_->cells);
    // Retire the ID runs atomically with the cells they point into; the
    // executor re-snapshots after the fold and finds an empty delta, with
    // the folded rows now served by the rebuilt base permutations.
    delta_->run_spo.clear();
    delta_->run_pos.clear();
    delta_->run_osp.clear();
    folded = delta_ops_.exchange(0, std::memory_order_acq_rel);
  }
  // Resolve each cell to its final state. Tombstones only ever target
  // copies of the same (value-equal) triple, so per-cell resolution is
  // order-exact even though cross-cell order is not preserved.
  std::unordered_set<Triple, TripleHash> tombstoned;
  std::vector<std::pair<const Triple*, size_t>> appends;
  for (auto& entry : cells) {
    size_t adds = 0;
    bool cleared = false;
    for (const DeltaOp& d : entry.second.ops) {
      if (d.is_add) {
        ++adds;
      } else {
        adds = 0;
        cleared = true;
      }
    }
    if (cleared) tombstoned.insert(entry.first);
    if (adds > 0) appends.emplace_back(&entry.first, adds);
  }
  if (!tombstoned.empty()) {
    for (size_t i = 0; i < triples_.size(); ++i) {
      if (!dead_[i] && tombstoned.count(triples_[i]) > 0) {
        dead_[i] = true;
        live_set_.erase(id_triples_[i]);
        ++dead_count_;
      }
    }
  }
  // Append the net inserts. Counters, version and listeners were all
  // handled at Apply time — the fold is logically invisible.
  for (const auto& a : appends) {
    const Triple& t = *a.first;
    IdTriple ids{dict_.Intern(t.s), dict_.Intern(t.p), dict_.Intern(t.o)};
    live_set_.insert(ids);
    for (size_t i = 0; i < a.second; ++i) {
      id_triples_.push_back(ids);
      triples_.push_back(t);
      dead_.push_back(false);
    }
  }
  ++table_stamp_;
  MaybeCompact();
  return folded;
}

void Graph::MaybeCompact() {
  if (dead_count_ < 1024 || dead_count_ * 2 < triples_.size()) return;
  std::vector<Triple> live;
  live.reserve(triples_.size() - dead_count_);
  for (size_t i = 0; i < triples_.size(); ++i) {
    if (!dead_[i]) live.push_back(std::move(triples_[i]));
  }
  // Compaction rewrites the table without changing its logical content:
  // the listener must not see the internal Clear+Add churn, and the
  // version must not drift (it tracks logical mutations only). Rebuilds
  // through AddBase regardless of write mode — the table rows being
  // rewritten are base rows by definition.
  GraphListener* listener = listener_.ptr;
  listener_.ptr = nullptr;
  uint64_t blank_counter = blank_counter_.load(std::memory_order_relaxed);
  uint64_t version = version_.load(std::memory_order_relaxed);
  int64_t live_count = live_count_.load(std::memory_order_relaxed);
  Clear();
  blank_counter_.store(blank_counter, std::memory_order_relaxed);
  for (Triple& t : live) AddBase(std::move(t), nullptr);
  version_.store(version, std::memory_order_release);
  live_count_.store(live_count, std::memory_order_release);
  listener_.ptr = listener;
}

namespace {

bool TermMatches(const Term& pattern, const Term& value) {
  return pattern.IsUndef() || pattern == value;
}

/// Triple-scan counters, shared by every graph in the process. The per-row
/// cost is a plain local increment; the sharded atomics are touched twice
/// per Match call (once for the scan, once for the row total).
struct ScanMetrics {
  obs::Counter& scans;
  obs::Counter& rows;
};

ScanMetrics& GraphMetrics() {
  obs::MetricsRegistry& reg = obs::DefaultMetrics();
  static ScanMetrics* m = new ScanMetrics{
      reg.GetCounter("ssdm_rdf_scans_total", "",
                     "Triple-index scans (Graph::Match calls)."),
      reg.GetCounter("ssdm_rdf_scan_rows_total", "",
                     "Matching triples delivered by triple-index scans."),
  };
  return *m;
}

/// Accumulates delivered-row counts locally and flushes once on scope
/// exit, covering the early-return paths.
struct RowTally {
  obs::Counter& counter;
  uint64_t n = 0;
  ~RowTally() {
    if (n > 0) counter.Add(n);
  }
};

const Term& UndefTerm() {
  static const Term* t = new Term();
  return *t;
}

}  // namespace

size_t Graph::BaseMultiplicity(const Triple& t) const {
  size_t n = 0;
  ScanBase(t.s, t.p, t.o, [&n](const Triple&) {
    ++n;
    return true;
  });
  return n;
}

bool Graph::BaseContains(const Triple& t) const {
  // Mirrors ScanBase's constant-resolution rules, but answers from the
  // live-row hash set instead of the permutation indexes — a stale index
  // cache would force a full rebuild here, which a one-triple Apply
  // (Graph::Add, per-statement INSERT) cannot afford on every call.
  // The fallback scans the base table directly (never Contains/Match:
  // ApplyDelta calls this holding the delta mutex, and the delta
  // snapshot inside Match takes that same mutex).
  auto base_scan = [this, &t]() {
    bool found = false;
    ScanBase(t.s, t.p, t.o, [&found](const Triple&) {
      found = true;
      return false;
    });
    return found;
  };
  IdTriple ids;
  const Term* terms[3] = {&t.s, &t.p, &t.o};
  uint32_t* slots[3] = {&ids.s, &ids.p, &ids.o};
  for (int i = 0; i < 3; ++i) {
    std::optional<uint32_t> id = dict_.Find(*terms[i]);
    if (id.has_value()) {
      if ((terms[i]->IsNumeric() && dict_.has_numeric_alias()) ||
          terms[i]->IsArray()) {
        // The ID does not speak for the term's whole value class: a
        // value-equal copy may live under another ID. Filtered scan.
        return base_scan();
      }
      *slots[i] = *id;
    } else {
      if (terms[i]->IsNumeric() || terms[i]->IsArray()) {
        // Not interned, but a value-equal representation might be (2 vs
        // 2.0, identity-interned arrays). Happens at most once per
        // distinct value — the add that follows interns it.
        return base_scan();
      }
      return false;  // exact-identity kind, never interned: absent
    }
  }
  return live_set_.count(ids) > 0;
}

bool Graph::SnapshotDelta(uint64_t snapshot, const Term& s, const Term& p,
                          const Term& o,
                          std::vector<ResolvedCell>* out) const {
  if (!delta_ || delta_ops_.load(std::memory_order_acquire) == 0) {
    return false;
  }
  bool any_cleared = false;
  std::lock_guard<std::mutex> lock(delta_->mu);
  for (const auto& entry : delta_->cells) {
    const Triple& t = entry.first;
    if (!TermMatches(s, t.s) || !TermMatches(p, t.p) || !TermMatches(o, t.o)) {
      continue;
    }
    ResolvedCell rc;
    rc.t = t;
    for (const DeltaOp& d : entry.second.ops) {
      if (d.epoch > snapshot) break;  // ops are in epoch order
      if (d.is_add) {
        ++rc.adds;
      } else {
        rc.adds = 0;
        rc.cleared = true;
      }
    }
    if (rc.adds == 0 && !rc.cleared) continue;
    any_cleared |= rc.cleared;
    out->push_back(std::move(rc));
  }
  return any_cleared;
}

void Graph::SnapshotDeltaIds(uint64_t snapshot, DeltaIdRuns* out) const {
  out->clear();
  if (!delta_ || delta_ops_.load(std::memory_order_acquire) == 0) return;
  std::lock_guard<std::mutex> lock(delta_->mu);
  // Ops within a cell are in epoch order, so resolution truncates at the
  // first op past the snapshot — same rule as SnapshotDelta, minus the
  // Term materialization. Entries whose visible state is a no-op (all ops
  // past the snapshot, or adds cancelled without a tombstone) drop out, so
  // `out` stays empty for snapshots predating every pending batch.
  auto resolve = [&](const std::vector<DeltaRunEntry>& run,
                     std::vector<DeltaIdEntry>* dst) {
    dst->reserve(run.size());
    for (const DeltaRunEntry& e : run) {
      DeltaIdEntry r;
      r.t = e.ids;
      for (const DeltaOp& d : e.cell->ops) {
        if (d.epoch > snapshot) break;
        if (d.is_add) {
          ++r.adds;
        } else {
          r.adds = 0;
          r.cleared = true;
        }
      }
      if (r.adds == 0 && !r.cleared) continue;
      out->any_cleared |= r.cleared;
      dst->push_back(r);
    }
  };
  resolve(delta_->run_spo, &out->spo);
  resolve(delta_->run_pos, &out->pos);
  resolve(delta_->run_osp, &out->osp);
}

bool Graph::ScanBase(const Term& s, const Term& p, const Term& o,
                     const std::function<bool(const Triple&)>& cb) const {
  const bool have_s = !s.IsUndef();
  const bool have_p = !p.IsUndef();
  const bool have_o = !o.IsUndef();

  bool id_ok = have_s || have_p || have_o;
  uint32_t sid = 0, pid = 0, oid = 0;
  if (id_ok) {
    // A dictionary hit pins a constant to one ID — range-exact unless
    // other interned terms can be value-equal under a different ID
    // (numeric aliasing, arrays interned by object identity). A miss
    // proves absence for exact-identity kinds; numerics and arrays may
    // still value-match a differently represented interned term, so they
    // fall back to the filtered scan.
    auto resolve = [&](const Term& t, uint32_t* out_id) -> bool {
      std::optional<uint32_t> id = dict_.Find(t);
      if (id.has_value()) {
        if ((t.IsNumeric() && dict_.has_numeric_alias()) || t.IsArray()) {
          id_ok = false;
          return true;
        }
        *out_id = *id;
        return true;
      }
      if (t.IsNumeric() || t.IsArray()) {
        id_ok = false;
        return true;
      }
      return false;  // definitively no base matches
    };
    if (have_s && !resolve(s, &sid)) return true;
    if (have_p && !resolve(p, &pid)) return true;
    if (have_o && !resolve(o, &oid)) return true;
  }

  if (id_ok) {
    Perm perm;
    std::array<uint32_t, 3> key{};
    int n_fixed;
    if (have_s && have_p && have_o) {
      perm = Perm::kSpo, key = {sid, pid, oid}, n_fixed = 3;
    } else if (have_s && have_p) {
      perm = Perm::kSpo, key = {sid, pid, 0}, n_fixed = 2;
    } else if (have_p && have_o) {
      perm = Perm::kPos, key = {pid, oid, 0}, n_fixed = 2;
    } else if (have_s && have_o) {
      perm = Perm::kOsp, key = {oid, sid, 0}, n_fixed = 2;
    } else if (have_s) {
      perm = Perm::kSpo, key = {sid, 0, 0}, n_fixed = 1;
    } else if (have_p) {
      perm = Perm::kPos, key = {pid, 0, 0}, n_fixed = 1;
    } else {
      perm = Perm::kOsp, key = {oid, 0, 0}, n_fixed = 1;
    }
    const IdIndexes& idx = EnsureIdIndexes();
    std::pair<size_t, size_t> range =
        PrefixRange(idx.perm(perm), perm, key, n_fixed);
    const std::vector<uint32_t>& rows = idx.rows(perm);
    for (size_t i = range.first; i < range.second; ++i) {
      if (!cb(triples_[rows[i]])) return false;
    }
    return true;
  }

  // Filtered table scan: all-wildcard patterns and constants the
  // dictionary cannot pin to a single ID.
  for (size_t i = 0; i < triples_.size(); ++i) {
    if (dead_[i]) continue;
    const Triple& t = triples_[i];
    if (TermMatches(s, t.s) && TermMatches(p, t.p) && TermMatches(o, t.o)) {
      if (!cb(t)) return false;
    }
  }
  return true;
}

void Graph::Match(const Term& s, const Term& p, const Term& o,
                  const std::function<bool(const Triple&)>& cb) const {
  MatchAt(~0ull, s, p, o, cb);
}

void Graph::MatchAt(uint64_t snapshot, const Term& s, const Term& p,
                    const Term& o,
                    const std::function<bool(const Triple&)>& cb) const {
  GraphMetrics().scans.Add();
  RowTally tally{GraphMetrics().rows};

  std::vector<ResolvedCell> cells;
  const bool any_cleared = SnapshotDelta(snapshot, s, p, o, &cells);

  if (cells.empty()) {
    ScanBase(s, p, o, [&](const Triple& t) {
      ++tally.n;
      return cb(t);
    });
    return;
  }

  std::unordered_set<Triple, TripleHash> cleared_set;
  if (any_cleared) {
    for (const ResolvedCell& rc : cells) {
      if (rc.cleared) cleared_set.insert(rc.t);
    }
  }
  bool stopped = !ScanBase(s, p, o, [&](const Triple& t) {
    if (any_cleared && cleared_set.count(t) > 0) return true;
    ++tally.n;
    return cb(t);
  });
  if (stopped) return;
  for (const ResolvedCell& rc : cells) {
    for (size_t i = 0; i < rc.adds; ++i) {
      ++tally.n;
      if (!cb(rc.t)) return;
    }
  }
}

std::vector<Triple> Graph::MatchAll(const Term& s, const Term& p,
                                    const Term& o) const {
  std::vector<Triple> out;
  Match(s, p, o, [&out](const Triple& t) {
    out.push_back(t);
    return true;
  });
  return out;
}

bool Graph::Contains(const Term& s, const Term& p, const Term& o) const {
  bool found = false;
  Match(s, p, o, [&found](const Triple&) {
    found = true;
    return false;
  });
  return found;
}

int64_t Graph::EstimateMatches(const std::optional<Term>& s,
                               const std::optional<Term>& p,
                               const std::optional<Term>& o) const {
  const Term& ts = s ? *s : UndefTerm();
  const Term& tp = p ? *p : UndefTerm();
  const Term& to = o ? *o : UndefTerm();

  int64_t base = 0;
  const bool have_s = s.has_value();
  const bool have_p = p.has_value();
  const bool have_o = o.has_value();
  if (!have_s && !have_p && !have_o) {
    base = static_cast<int64_t>(triples_.size() - dead_count_);
  } else {
    // Resolve constants to IDs; a miss (or an alias-prone kind) estimates
    // zero for that constant — estimates need not chase value aliases.
    uint32_t sid = 0, pid = 0, oid = 0;
    bool resolved = true;
    auto resolve = [&](const Term& t, uint32_t* out_id) {
      std::optional<uint32_t> id = dict_.Find(t);
      if (!id.has_value()) return false;
      *out_id = *id;
      return true;
    };
    if (have_s && !resolve(ts, &sid)) resolved = false;
    if (resolved && have_p && !resolve(tp, &pid)) resolved = false;
    if (resolved && have_o && !resolve(to, &oid)) resolved = false;
    if (resolved) {
      Perm perm;
      std::array<uint32_t, 3> key{};
      int n_fixed;
      if (have_s && have_p && have_o) {
        perm = Perm::kSpo, key = {sid, pid, oid}, n_fixed = 3;
      } else if (have_s && have_p) {
        perm = Perm::kSpo, key = {sid, pid, 0}, n_fixed = 2;
      } else if (have_p && have_o) {
        perm = Perm::kPos, key = {pid, oid, 0}, n_fixed = 2;
      } else if (have_s && have_o) {
        perm = Perm::kOsp, key = {oid, sid, 0}, n_fixed = 2;
      } else if (have_s) {
        perm = Perm::kSpo, key = {sid, 0, 0}, n_fixed = 1;
      } else if (have_p) {
        perm = Perm::kPos, key = {pid, 0, 0}, n_fixed = 1;
      } else {
        perm = Perm::kOsp, key = {oid, 0, 0}, n_fixed = 1;
      }
      const IdIndexes& idx = EnsureIdIndexes();
      std::pair<size_t, size_t> range =
          PrefixRange(idx.perm(perm), perm, key, n_fixed);
      base = static_cast<int64_t>(range.second - range.first);
    }
  }

  if (delta_ops_.load(std::memory_order_acquire) > 0) {
    std::vector<ResolvedCell> cells;
    SnapshotDelta(~0ull, ts, tp, to, &cells);
    for (const ResolvedCell& rc : cells) {
      base += static_cast<int64_t>(rc.adds);
      if (rc.cleared) base -= static_cast<int64_t>(BaseMultiplicity(rc.t));
    }
    if (base < 0) base = 0;
  }
  return base;
}

void Graph::ForEach(const std::function<void(const Triple&)>& cb) const {
  std::vector<ResolvedCell> cells;
  const bool any_cleared =
      SnapshotDelta(~0ull, UndefTerm(), UndefTerm(), UndefTerm(), &cells);
  if (cells.empty()) {
    for (size_t i = 0; i < triples_.size(); ++i) {
      if (!dead_[i]) cb(triples_[i]);
    }
    return;
  }
  std::unordered_set<Triple, TripleHash> cleared_set;
  if (any_cleared) {
    for (const ResolvedCell& rc : cells) {
      if (rc.cleared) cleared_set.insert(rc.t);
    }
  }
  for (size_t i = 0; i < triples_.size(); ++i) {
    if (dead_[i]) continue;
    if (any_cleared && cleared_set.count(triples_[i]) > 0) continue;
    cb(triples_[i]);
  }
  for (const ResolvedCell& rc : cells) {
    for (size_t i = 0; i < rc.adds; ++i) cb(rc.t);
  }
}

void Graph::ForEachId(const std::function<void(const IdTriple&)>& cb) const {
  for (size_t i = 0; i < id_triples_.size(); ++i) {
    if (!dead_[i]) cb(id_triples_[i]);
  }
}

const IdIndexes& Graph::EnsureIdIndexes() const {
  IdIndexCache* c = id_cache_.get();
  // Fast path: a fresh build is published with release ordering, and the
  // base table cannot change concurrently with readers (base-mode
  // mutations and delta folds run under the engine's exclusive lock;
  // concurrent-mode writers only touch the delta), so an acquire load of
  // the stamp suffices.
  if (c->built_stamp.load(std::memory_order_acquire) == table_stamp_) {
    return c->idx;
  }
  std::lock_guard<std::mutex> lock(c->mu);
  if (c->built_stamp.load(std::memory_order_relaxed) != table_stamp_) {
    BuildIdIndexes(id_triples_, dead_, &c->idx);
    c->built_stamp.store(table_stamp_, std::memory_order_release);
  }
  return c->idx;
}

const IdIndexes* Graph::PeekIdIndexes() const {
  IdIndexCache* c = id_cache_.get();
  if (c->built_stamp.load(std::memory_order_acquire) == table_stamp_) {
    return &c->idx;
  }
  return nullptr;
}

std::string Graph::FreshBlankLabel() {
  return "b" +
         std::to_string(blank_counter_.fetch_add(1, std::memory_order_acq_rel) +
                        1);
}

Graph& Dataset::GetOrCreateNamed(const std::string& iri) {
  auto it = named_.find(iri);
  if (it != named_.end()) return it->second;
  Graph& g = named_[iri];
  g.SetConcurrentWrites(concurrent_writes_);
  return g;
}

const Graph* Dataset::FindNamed(const std::string& iri) const {
  auto it = named_.find(iri);
  return it == named_.end() ? nullptr : &it->second;
}

Graph* Dataset::FindNamed(const std::string& iri) {
  auto it = named_.find(iri);
  return it == named_.end() ? nullptr : &it->second;
}

bool Dataset::DropNamed(const std::string& iri) {
  return named_.erase(iri) > 0;
}

void Dataset::SetConcurrentWrites(bool on) {
  concurrent_writes_ = on;
  default_graph_.SetConcurrentWrites(on);
  for (auto& entry : named_) entry.second.SetConcurrentWrites(on);
}

size_t Dataset::PendingDeltaOps() const {
  size_t n = default_graph_.delta_ops();
  for (const auto& entry : named_) n += entry.second.delta_ops();
  return n;
}

size_t Dataset::FoldDeltas() {
  size_t n = default_graph_.FoldDelta();
  for (auto& entry : named_) n += entry.second.FoldDelta();
  return n;
}

}  // namespace scisparql
