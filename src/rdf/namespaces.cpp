#include "rdf/namespaces.h"

namespace scisparql {

PrefixMap PrefixMap::WithDefaults() {
  PrefixMap m;
  m.Set("rdf", std::string(vocab::kRdfNs));
  m.Set("rdfs", std::string(vocab::kRdfsNs));
  m.Set("xsd", std::string(vocab::kXsdNs));
  m.Set("qb", std::string(vocab::kQbNs));
  return m;
}

void PrefixMap::Set(std::string prefix, std::string iri) {
  entries_[std::move(prefix)] = std::move(iri);
}

std::optional<std::string> PrefixMap::Expand(std::string_view qname) const {
  size_t colon = qname.find(':');
  if (colon == std::string_view::npos) return std::nullopt;
  auto it = entries_.find(std::string(qname.substr(0, colon)));
  if (it == entries_.end()) return std::nullopt;
  return it->second + std::string(qname.substr(colon + 1));
}

std::string PrefixMap::Compact(std::string_view iri) const {
  const std::string* best_ns = nullptr;
  const std::string* best_prefix = nullptr;
  for (const auto& [prefix, ns] : entries_) {
    if (iri.size() >= ns.size() && iri.substr(0, ns.size()) == ns) {
      if (best_ns == nullptr || ns.size() > best_ns->size()) {
        best_ns = &ns;
        best_prefix = &prefix;
      }
    }
  }
  if (best_ns == nullptr) return "<" + std::string(iri) + ">";
  return *best_prefix + ":" + std::string(iri.substr(best_ns->size()));
}

}  // namespace scisparql
