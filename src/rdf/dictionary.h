#ifndef SCISPARQL_RDF_DICTIONARY_H_
#define SCISPARQL_RDF_DICTIONARY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/term.h"

namespace scisparql {

/// Interned term dictionary: a bijection between RDF terms and dense
/// fixed-width 32-bit IDs, in the style of RDF-3X's DictionarySegment. The
/// graph interns every term at insertion time, so triples can be mirrored
/// as ID tuples and joins can run over integers instead of string-bearing
/// Terms; results materialize back through `term(id)`.
///
/// Interning is by *exact* term identity (kind plus all fields), not by
/// Term::operator== value equality: the integer 2 and the double 2.0 are
/// distinct dictionary entries even though `2 == 2.0` under SPARQL numeric
/// comparison, and arrays intern by object identity (no materialization).
/// This keeps the dictionary lossless — a term round-trips through its ID
/// bit-for-bit, which snapshot encoding depends on — at the cost of the ID
/// space not being usable as a value-equality join key when a graph mixes
/// representations. The `join_safe()` flag reports exactly that: the
/// executor's ID-join fast path only engages when ID equality and term
/// equality coincide for every interned term.
class TermDictionary {
 public:
  static constexpr uint32_t kNoId = 0xFFFFFFFFu;

  /// Returns the ID of `t`, interning it first if absent.
  uint32_t Intern(const Term& t);

  /// Returns the ID of `t` without interning, or nullopt.
  std::optional<uint32_t> Find(const Term& t) const;

  /// The interned term for a dictionary ID (must be < size()).
  const Term& term(uint32_t id) const { return terms_[id]; }

  size_t size() const { return terms_.size(); }
  void Clear();

  /// Number of interned array terms. Arrays intern by object identity, so
  /// their IDs do not respect the element-wise value equality Term defines.
  size_t array_terms() const { return array_terms_; }

  /// True when some integer and some double intern to different IDs while
  /// comparing equal under SPARQL numeric `=` (e.g. 2 and 2.0 both
  /// present): ID-equality joins would miss cross-representation matches.
  bool has_numeric_alias() const { return numeric_alias_; }

  /// ID equality coincides with Term equality for every interned term:
  /// safe to evaluate joins over IDs.
  bool join_safe() const { return array_terms_ == 0 && !numeric_alias_; }

  /// Heap string bytes (lexical forms, language tags, datatype IRIs) held
  /// by the interned terms — the dictionary-resident share of a result
  /// row's footprint, used by the result cache's byte accounting.
  size_t string_bytes() const { return string_bytes_; }

 private:
  struct ExactHash {
    size_t operator()(const Term& t) const;
  };
  struct ExactEq {
    bool operator()(const Term& a, const Term& b) const;
  };

  std::vector<Term> terms_;
  std::unordered_map<Term, uint32_t, ExactHash, ExactEq> ids_;
  size_t array_terms_ = 0;
  size_t string_bytes_ = 0;
  bool numeric_alias_ = false;
};

/// Heap string bytes owned by one term (0 for numerics/booleans; array
/// element payloads are charged separately by the caller).
size_t TermStringBytes(const Term& t);

}  // namespace scisparql

#endif  // SCISPARQL_RDF_DICTIONARY_H_
