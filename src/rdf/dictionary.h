#ifndef SCISPARQL_RDF_DICTIONARY_H_
#define SCISPARQL_RDF_DICTIONARY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/term.h"

namespace scisparql {

/// Interned term dictionary: a bijection between RDF terms and dense
/// fixed-width 32-bit IDs, in the style of RDF-3X's DictionarySegment. The
/// graph interns every term at insertion time — including delta-admitted
/// triples under concurrent writes — so triples can be mirrored as ID
/// tuples and joins can run over integers instead of string-bearing Terms;
/// results materialize back through `term(id)`.
///
/// Interning is by *exact* term identity (kind plus all fields), not by
/// Term::operator== value equality: the integer 2 and the double 2.0 are
/// distinct dictionary entries even though `2 == 2.0` under SPARQL numeric
/// comparison, and arrays intern by object identity (no materialization).
/// This keeps the dictionary lossless — a term round-trips through its ID
/// bit-for-bit, which snapshot encoding depends on — at the cost of the ID
/// space not being usable as a value-equality join key when a graph mixes
/// representations. The `join_safe()` flag reports exactly that: the
/// executor's ID-join fast path only engages when ID equality and term
/// equality coincide for every interned term.
///
/// Thread safety: writers (Intern) serialize behind an internal mutex and
/// may run concurrently with any number of readers. Find takes the mutex
/// shared; term(id) and the counters are lock-free. term(id) is safe for
/// any *published* ID — one obtained from Find, from a delta-run snapshot,
/// or from the base ID table — because every publication channel carries a
/// release/acquire edge ordered after the slot write (terms live in
/// fixed-size chunks whose addresses never move, so no reader ever
/// observes a relocation). Clear and the move operations require external
/// exclusivity, which Graph's contracts already guarantee.
class TermDictionary {
 public:
  static constexpr uint32_t kNoId = 0xFFFFFFFFu;

  /// Largest magnitude at which int64 -> double -> int64 is the identity:
  /// beyond 2^53 several integers widen to the same double, so cast-based
  /// alias probes stop being injective. Shared by Intern's alias detection
  /// and the executor's constant lowering.
  static constexpr int64_t kExactCastBound = int64_t{1} << 53;

  TermDictionary();
  ~TermDictionary();
  TermDictionary(const TermDictionary&) = delete;
  TermDictionary& operator=(const TermDictionary&) = delete;
  // Moves require external exclusivity (no concurrent readers or writers
  // on either side); Graph only moves under the engine's exclusive lock.
  TermDictionary(TermDictionary&& o) noexcept;
  TermDictionary& operator=(TermDictionary&& o) noexcept;

  /// Returns the ID of `t`, interning it first if absent. Safe to call
  /// from concurrent writers; serialized internally.
  uint32_t Intern(const Term& t);

  /// Returns the ID of `t` without interning, or nullopt. Safe to call
  /// concurrently with Intern.
  std::optional<uint32_t> Find(const Term& t) const;

  /// The interned term for a published dictionary ID (must be < size()).
  /// Lock-free: chunked storage gives terms stable addresses for the
  /// dictionary's lifetime.
  const Term& term(uint32_t id) const {
    const ChunkDir* dir = dir_.load(std::memory_order_acquire);
    return dir->chunks[id >> kChunkBits][id & kChunkMask];
  }

  size_t size() const { return size_.load(std::memory_order_acquire); }

  /// Requires external exclusivity: frees every chunk, so outstanding
  /// term(id) references must have drained.
  void Clear();

  /// Number of interned array terms. Arrays intern by object identity, so
  /// their IDs do not respect the element-wise value equality Term defines.
  size_t array_terms() const {
    return array_terms_.load(std::memory_order_acquire);
  }

  /// True when some integer and some double intern to different IDs while
  /// comparing equal under SPARQL numeric `=` (e.g. 2 and 2.0 both
  /// present): ID-equality joins would miss cross-representation matches.
  /// Past the 2^53 cast bound the detection is conservative — any integral
  /// double coexisting with any |i| >= 2^53 integer raises the flag, since
  /// enumerating the whole range of integers that widen to one such double
  /// is infeasible.
  bool has_numeric_alias() const {
    return numeric_alias_.load(std::memory_order_acquire);
  }

  /// ID equality coincides with Term equality for every interned term:
  /// safe to evaluate joins over IDs. May flip true -> false at any time
  /// under concurrent writers (never false -> true short of Clear), so the
  /// ID-join path re-checks it after lowering its constants.
  bool join_safe() const { return array_terms() == 0 && !has_numeric_alias(); }

  /// Heap string bytes (lexical forms, language tags, datatype IRIs) held
  /// by the interned terms — the dictionary-resident share of a result
  /// row's footprint, used by the result cache's byte accounting.
  size_t string_bytes() const {
    return string_bytes_.load(std::memory_order_acquire);
  }

 private:
  static constexpr uint32_t kChunkBits = 10;
  static constexpr uint32_t kChunkSize = 1u << kChunkBits;
  static constexpr uint32_t kChunkMask = kChunkSize - 1;

  /// Immutable-capacity chunk directory. The current directory's tail
  /// slots are filled in by writers as chunks are allocated; readers only
  /// dereference slots covering IDs that were published to them, which
  /// happens-after the slot write. When capacity runs out a doubled copy
  /// is published through dir_ and the old one is retained until Clear so
  /// stale loads stay valid.
  struct ChunkDir {
    std::vector<Term*> chunks;
  };

  struct ExactHash {
    size_t operator()(const Term& t) const;
  };
  struct ExactEq {
    bool operator()(const Term& a, const Term& b) const;
  };

  /// Numeric-alias bookkeeping for a term about to be inserted; runs under
  /// the writer lock, before the ID is published.
  void DetectAlias(const Term& t);

  void MoveFrom(TermDictionary&& o);
  void Reset();

  mutable std::shared_mutex mu_;
  std::unordered_map<Term, uint32_t, ExactHash, ExactEq> ids_;  // guarded by mu_
  std::vector<std::unique_ptr<Term[]>> chunk_store_;            // guarded by mu_
  std::vector<std::unique_ptr<ChunkDir>> dirs_;                 // guarded by mu_
  /// Count of interned integers with |i| >= 2^53 (see has_numeric_alias);
  /// guarded by mu_.
  size_t huge_ints_ = 0;

  std::atomic<const ChunkDir*> dir_{nullptr};
  std::atomic<size_t> size_{0};
  std::atomic<size_t> array_terms_{0};
  std::atomic<size_t> string_bytes_{0};
  std::atomic<bool> numeric_alias_{false};
};

/// Heap string bytes owned by one term (0 for numerics/booleans; array
/// element payloads are charged separately by the caller).
size_t TermStringBytes(const Term& t);

}  // namespace scisparql

#endif  // SCISPARQL_RDF_DICTIONARY_H_
