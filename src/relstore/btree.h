#ifndef SCISPARQL_RELSTORE_BTREE_H_
#define SCISPARQL_RELSTORE_BTREE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "relstore/buffer_pool.h"

namespace scisparql {
namespace relstore {

/// Little-endian field access helpers shared by the page formats.
inline uint16_t LoadU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}
inline void StoreU16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
}
inline uint32_t LoadU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}
inline void StoreU32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}
inline uint64_t LoadU64(const uint8_t* p) {
  return static_cast<uint64_t>(LoadU32(p)) |
         (static_cast<uint64_t>(LoadU32(p + 4)) << 32);
}
inline void StoreU64(uint8_t* p, uint64_t v) {
  StoreU32(p, static_cast<uint32_t>(v));
  StoreU32(p + 4, static_cast<uint32_t>(v >> 32));
}

/// Disk-resident B+-tree mapping uint64 keys to uint64 values. Keys may
/// repeat (secondary indexes). Supports exact lookup, inclusive range scan
/// and strided range scan — the access path behind the three SQL
/// formulation strategies of Section 6.2.3: per-key queries, IN-list
/// queries, and SPD interval queries.
class BTree {
 public:
  /// Creates an empty tree; `root` receives the root page id that the
  /// caller must persist (the catalog does).
  static Result<BTree> Create(BufferPool* pool);

  /// Opens an existing tree rooted at `root`.
  static BTree Open(BufferPool* pool, PageId root);

  PageId root() const { return root_; }

  Status Insert(uint64_t key, uint64_t value);

  /// Removes entries with exactly this (key, value) pair; returns count.
  Result<size_t> Remove(uint64_t key, uint64_t value);

  /// Calls `cb(key, value)` for each entry with key in [lo, hi]; `cb`
  /// returning false stops the scan. Entries arrive in key order.
  Status Scan(uint64_t lo, uint64_t hi,
              const std::function<bool(uint64_t, uint64_t)>& cb) const;

  /// Range scan that only reports keys congruent to lo modulo `stride`
  /// (the SPD interval query: BETWEEN lo AND hi with a stride predicate).
  Status ScanStrided(uint64_t lo, uint64_t hi, uint64_t stride,
                     const std::function<bool(uint64_t, uint64_t)>& cb) const;

  /// All values stored under `key`.
  Result<std::vector<uint64_t>> Lookup(uint64_t key) const;

  /// Number of entries (walks the leaf chain; O(n), for tests/stats).
  Result<uint64_t> CountEntries() const;

  /// Tree height (1 = root is a leaf); for tests.
  Result<int> Height() const;

 private:
  BTree(BufferPool* pool, PageId root) : pool_(pool), root_(root) {}

  // Node layout constants (see btree.cpp for the full layout comment).
  static constexpr size_t kHeader = 8;

  struct SplitResult {
    bool split = false;
    uint64_t sep_key = 0;
    PageId right = kInvalidPage;
  };

  Result<SplitResult> InsertRec(PageId node, uint64_t key, uint64_t value);
  Result<PageId> FindLeaf(uint64_t key) const;

  BufferPool* pool_;
  PageId root_;
};

}  // namespace relstore
}  // namespace scisparql

#endif  // SCISPARQL_RELSTORE_BTREE_H_
