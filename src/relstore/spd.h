#ifndef SCISPARQL_RELSTORE_SPD_H_
#define SCISPARQL_RELSTORE_SPD_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace scisparql {
namespace relstore {

/// An arithmetic progression of keys: start, start+stride, ...,
/// start+(count-1)*stride. count == 1 degenerates to a single key.
struct Interval {
  uint64_t start = 0;
  uint64_t stride = 1;
  uint64_t count = 1;

  uint64_t last() const { return start + (count - 1) * stride; }
  bool operator==(const Interval& o) const {
    return start == o.start && stride == o.stride && count == o.count;
  }
  std::string ToString() const;
};

/// Sequence Pattern Detector (Section 6.2.5). SSDM does not pre-shape array
/// tiles for particular access patterns; instead it discovers regularity in
/// the chunk-id sequence *at query run time* and turns runs into interval
/// queries (`BETWEEN start AND last` with a stride predicate) against the
/// back-end, which are dramatically cheaper than per-chunk lookups.
///
/// The detector greedily extends arithmetic runs: a run of at least
/// `min_run` keys with a constant difference becomes one Interval; leftover
/// keys become count-1 intervals. Input must be sorted ascending and
/// duplicate-free.
std::vector<Interval> DetectPatterns(std::span<const uint64_t> keys,
                                     size_t min_run = 3);

/// Expands intervals back into the explicit key sequence (tests use this to
/// check DetectPatterns is lossless).
std::vector<uint64_t> ExpandIntervals(std::span<const Interval> intervals);

}  // namespace relstore
}  // namespace scisparql

#endif  // SCISPARQL_RELSTORE_SPD_H_
