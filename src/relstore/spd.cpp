#include "relstore/spd.h"

namespace scisparql {
namespace relstore {

std::string Interval::ToString() const {
  if (count == 1) return "[" + std::to_string(start) + "]";
  return "[" + std::to_string(start) + ".." + std::to_string(last()) +
         " step " + std::to_string(stride) + "]";
}

std::vector<Interval> DetectPatterns(std::span<const uint64_t> keys,
                                     size_t min_run) {
  std::vector<Interval> out;
  size_t i = 0;
  const size_t n = keys.size();
  if (min_run < 2) min_run = 2;
  while (i < n) {
    // A run needs a strictly increasing neighbor: on duplicate or
    // unsorted input the uint64 difference wraps, and the wrapped value
    // can read as a small positive stride. Such keys become singletons.
    if (i + 1 >= n || keys[i + 1] <= keys[i]) {
      out.push_back(Interval{keys[i], 1, 1});
      ++i;
      continue;
    }
    uint64_t stride = keys[i + 1] - keys[i];
    size_t j = i + 1;
    while (j + 1 < n && keys[j + 1] > keys[j] &&
           keys[j + 1] - keys[j] == stride) {
      ++j;
    }
    size_t run = j - i + 1;
    if (run >= min_run) {
      out.push_back(Interval{keys[i], stride, run});
      i = j + 1;
    } else {
      out.push_back(Interval{keys[i], 1, 1});
      ++i;
    }
  }
  return out;
}

std::vector<uint64_t> ExpandIntervals(std::span<const Interval> intervals) {
  std::vector<uint64_t> out;
  for (const Interval& iv : intervals) {
    for (uint64_t k = 0; k < iv.count; ++k) {
      out.push_back(iv.start + k * iv.stride);
    }
  }
  return out;
}

}  // namespace relstore
}  // namespace scisparql
