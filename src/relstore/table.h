#ifndef SCISPARQL_RELSTORE_TABLE_H_
#define SCISPARQL_RELSTORE_TABLE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"
#include "relstore/buffer_pool.h"

namespace scisparql {
namespace relstore {

/// Column types of the embedded relational engine. kBlob values larger
/// than the inline threshold spill to overflow page chains, which is how
/// array chunks bigger than one page are stored (Experiment 3 sweeps chunk
/// sizes past the page size).
enum class ColType : uint8_t { kInt64, kDouble, kText, kBlob };

struct Column {
  std::string name;
  ColType type;
};

struct Schema {
  std::vector<Column> columns;

  int FindColumn(const std::string& name) const;
};

/// A cell value. Text and blob both use std::string as the byte container.
using Value = std::variant<int64_t, double, std::string>;
using Row = std::vector<Value>;

inline int64_t AsInt(const Value& v) { return std::get<int64_t>(v); }
inline double AsDoubleValue(const Value& v) { return std::get<double>(v); }
inline const std::string& AsBytes(const Value& v) {
  return std::get<std::string>(v);
}

/// Record id: (heap page id << 16) | slot number.
using RecordId = uint64_t;
inline RecordId MakeRecordId(PageId page, uint16_t slot) {
  return (static_cast<uint64_t>(page) << 16) | slot;
}
inline PageId RecordPage(RecordId rid) {
  return static_cast<PageId>(rid >> 16);
}
inline uint16_t RecordSlot(RecordId rid) {
  return static_cast<uint16_t>(rid & 0xffff);
}

/// Mutable bookkeeping persisted by the catalog for each table.
struct TableInfo {
  PageId first_page = kInvalidPage;
  PageId last_page = kInvalidPage;
  uint64_t row_count = 0;
};

/// Heap table of rows stored in a chain of slotted pages. Oversized rows
/// spill their blob columns into overflow chains. The table itself has no
/// ordering; point access goes through a RecordId, typically found via a
/// BTree index maintained by the Database layer.
class Table {
 public:
  Table(BufferPool* pool, TableInfo* info, Schema schema)
      : pool_(pool), info_(info), schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  uint64_t row_count() const { return info_->row_count; }

  Result<RecordId> Insert(const Row& row);
  Result<Row> Get(RecordId rid) const;
  Status Delete(RecordId rid);

  /// Visits all live rows in heap order; `cb` returning false stops.
  Status ForEach(
      const std::function<bool(RecordId, const Row&)>& cb) const;

 private:
  Result<std::string> SerializeRow(const Row& row);
  Result<Row> DeserializeRow(const uint8_t* data, size_t len) const;

  Result<PageId> PageWithSpace(size_t need);

  BufferPool* pool_;
  TableInfo* info_;
  Schema schema_;
};

}  // namespace relstore
}  // namespace scisparql

#endif  // SCISPARQL_RELSTORE_TABLE_H_
