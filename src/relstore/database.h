#ifndef SCISPARQL_RELSTORE_DATABASE_H_
#define SCISPARQL_RELSTORE_DATABASE_H_

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "common/status.h"
#include "relstore/btree.h"
#include "relstore/buffer_pool.h"
#include "relstore/pager.h"
#include "relstore/spd.h"
#include "relstore/table.h"

namespace scisparql {
namespace relstore {

/// How a batch of keys is presented to the back-end — the three "SQL
/// formulation strategies" of Section 6.2.3:
///  * kPerKey:   one point query per key (the naive strategy),
///  * kInList:   one query with an explicit IN-list of keys,
///  * kInterval: SPD-compressed interval (range + stride) queries.
enum class SelectStrategy : uint8_t { kPerKey, kInList, kInterval };

const char* SelectStrategyName(SelectStrategy s);

/// Counters a Select run leaves behind, reported by the benchmarks. A
/// "query" models one client-server round trip to the RDBMS, which is what
/// dominated the paper's measurements.
struct SelectStats {
  uint64_t queries = 0;       ///< point/range queries issued
  uint64_t rows = 0;          ///< rows returned
  uint64_t index_probes = 0;  ///< B+-tree descents
};

/// The embedded relational database: a single page file shared by every
/// table and index, a catalog persisted on page 0, and a typed query layer
/// the SSDM relational back-end (Section 6.2) talks to.
class Database {
 public:
  /// Opens (or creates) a database. Empty `path` keeps pages in memory.
  static Result<std::unique_ptr<Database>> Open(const std::string& path,
                                                size_t buffer_pages = 256,
                                                uint32_t page_size =
                                                    kDefaultPageSize);

  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Creates a table. `indexed` adds a B+-tree keyed by a caller-encoded
  /// uint64 passed to InsertIndexed.
  Result<Table*> CreateTable(const std::string& name, Schema schema,
                             bool indexed);

  Table* GetTable(const std::string& name);
  bool HasTable(const std::string& name) const;

  /// Plain heap insert (unindexed access only).
  Result<RecordId> Insert(const std::string& table, const Row& row);

  /// Insert plus index maintenance under `key`.
  Result<RecordId> InsertIndexed(const std::string& table, uint64_t key,
                                 const Row& row);

  /// Deletes all rows indexed under `key`; returns the count.
  Result<size_t> DeleteByKey(const std::string& table, uint64_t key);

  /// Fetches rows whose index key is in `keys`, issuing the physical
  /// accesses according to `strategy`. Rows are delivered with their key;
  /// `cb` returning false stops. `stats` (optional) accumulates counters.
  Status SelectByKeys(const std::string& table,
                      std::span<const uint64_t> keys,
                      SelectStrategy strategy,
                      const std::function<bool(uint64_t, const Row&)>& cb,
                      SelectStats* stats = nullptr);

  /// Fetches rows for precomputed intervals (the SPD output).
  Status SelectByIntervals(const std::string& table,
                           std::span<const Interval> intervals,
                           const std::function<bool(uint64_t, const Row&)>& cb,
                           SelectStats* stats = nullptr);

  /// Index-ordered full range scan.
  Status SelectRange(const std::string& table, uint64_t lo, uint64_t hi,
                     const std::function<bool(uint64_t, const Row&)>& cb,
                     SelectStats* stats = nullptr);

  /// Full heap scan (no index required).
  Status ScanAll(const std::string& table,
                 const std::function<bool(const Row&)>& cb);

  /// Persists the catalog and flushes dirty pages.
  Status Flush();

  BufferPool& buffer_pool() { return *pool_; }
  Pager& pager() { return *pager_; }

 private:
  Database() = default;

  struct TableEntry {
    Schema schema;
    TableInfo info;
    std::unique_ptr<Table> table;
    std::optional<BTree> index;
    PageId index_root = kInvalidPage;
  };

  Status LoadCatalog();
  Status SaveCatalog();

  TableEntry* FindEntry(const std::string& name);

  std::unique_ptr<Pager> pager_;
  std::unique_ptr<BufferPool> pool_;
  std::map<std::string, TableEntry> tables_;
};

}  // namespace relstore
}  // namespace scisparql

#endif  // SCISPARQL_RELSTORE_DATABASE_H_
