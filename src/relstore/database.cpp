#include "relstore/database.h"

#include <algorithm>
#include <cstring>

namespace scisparql {
namespace relstore {

const char* SelectStrategyName(SelectStrategy s) {
  switch (s) {
    case SelectStrategy::kPerKey:
      return "per-key";
    case SelectStrategy::kInList:
      return "in-list";
    case SelectStrategy::kInterval:
      return "spd-interval";
  }
  return "?";
}

namespace {

constexpr uint32_t kCatalogMagic = 0x53534d44;  // "SSMD"

void PutU8(std::string* s, uint8_t v) { s->push_back(static_cast<char>(v)); }
void PutU16(std::string* s, uint16_t v) {
  char b[2];
  StoreU16(reinterpret_cast<uint8_t*>(b), v);
  s->append(b, 2);
}
void PutU32(std::string* s, uint32_t v) {
  char b[4];
  StoreU32(reinterpret_cast<uint8_t*>(b), v);
  s->append(b, 4);
}
void PutU64(std::string* s, uint64_t v) {
  char b[8];
  StoreU64(reinterpret_cast<uint8_t*>(b), v);
  s->append(b, 8);
}
void PutString(std::string* s, const std::string& v) {
  PutU16(s, static_cast<uint16_t>(v.size()));
  s->append(v);
}

class CatalogReader {
 public:
  CatalogReader(const uint8_t* data, size_t len) : data_(data), len_(len) {}

  bool U8(uint8_t* v) {
    if (pos_ + 1 > len_) return false;
    *v = data_[pos_++];
    return true;
  }
  bool U16(uint16_t* v) {
    if (pos_ + 2 > len_) return false;
    *v = LoadU16(data_ + pos_);
    pos_ += 2;
    return true;
  }
  bool U32(uint32_t* v) {
    if (pos_ + 4 > len_) return false;
    *v = LoadU32(data_ + pos_);
    pos_ += 4;
    return true;
  }
  bool U64(uint64_t* v) {
    if (pos_ + 8 > len_) return false;
    *v = LoadU64(data_ + pos_);
    pos_ += 8;
    return true;
  }
  bool String(std::string* v) {
    uint16_t n;
    if (!U16(&n) || pos_ + n > len_) return false;
    v->assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return true;
  }

 private:
  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::unique_ptr<Database>> Database::Open(const std::string& path,
                                                 size_t buffer_pages,
                                                 uint32_t page_size) {
  std::unique_ptr<Database> db(new Database());
  SCISPARQL_ASSIGN_OR_RETURN(db->pager_, Pager::Open(path, page_size));
  db->pool_ = std::make_unique<BufferPool>(db->pager_.get(), buffer_pages);
  if (db->pager_->page_count() == 0) {
    db->pager_->Allocate();  // page 0 = catalog
    SCISPARQL_RETURN_NOT_OK(db->SaveCatalog());
  } else {
    SCISPARQL_RETURN_NOT_OK(db->LoadCatalog());
  }
  return db;
}

Database::~Database() {
  if (pool_ != nullptr) {
    (void)SaveCatalog();
    (void)pool_->FlushAll();
  }
}

Status Database::SaveCatalog() {
  std::string buf;
  PutU32(&buf, kCatalogMagic);
  PutU32(&buf, static_cast<uint32_t>(tables_.size()));
  for (auto& [name, e] : tables_) {
    PutString(&buf, name);
    PutU16(&buf, static_cast<uint16_t>(e.schema.columns.size()));
    for (const Column& c : e.schema.columns) {
      PutString(&buf, c.name);
      PutU8(&buf, static_cast<uint8_t>(c.type));
    }
    PutU32(&buf, e.info.first_page);
    PutU32(&buf, e.info.last_page);
    PutU64(&buf, e.info.row_count);
    PutU8(&buf, e.index.has_value() ? 1 : 0);
    PutU32(&buf, e.index.has_value() ? e.index->root() : kInvalidPage);
  }
  if (buf.size() > pager_->page_size()) {
    return Status::Internal("catalog exceeds one page");
  }
  SCISPARQL_ASSIGN_OR_RETURN(PageRef page, PageRef::Acquire(pool_.get(), 0));
  std::memset(page.data(), 0, pager_->page_size());
  std::memcpy(page.data(), buf.data(), buf.size());
  page.MarkDirty();
  return Status::OK();
}

Status Database::LoadCatalog() {
  SCISPARQL_ASSIGN_OR_RETURN(PageRef page, PageRef::Acquire(pool_.get(), 0));
  CatalogReader r(page.data(), pager_->page_size());
  uint32_t magic, count;
  if (!r.U32(&magic) || magic != kCatalogMagic || !r.U32(&count)) {
    return Status::IoError("bad catalog page");
  }
  for (uint32_t i = 0; i < count; ++i) {
    std::string name;
    uint16_t ncols;
    if (!r.String(&name) || !r.U16(&ncols)) {
      return Status::IoError("catalog truncated");
    }
    TableEntry e;
    for (uint16_t c = 0; c < ncols; ++c) {
      Column col;
      uint8_t type;
      if (!r.String(&col.name) || !r.U8(&type)) {
        return Status::IoError("catalog truncated");
      }
      col.type = static_cast<ColType>(type);
      e.schema.columns.push_back(std::move(col));
    }
    uint8_t has_index;
    if (!r.U32(&e.info.first_page) || !r.U32(&e.info.last_page) ||
        !r.U64(&e.info.row_count) || !r.U8(&has_index) ||
        !r.U32(&e.index_root)) {
      return Status::IoError("catalog truncated");
    }
    auto [it, ok] = tables_.emplace(name, std::move(e));
    (void)ok;
    TableEntry& entry = it->second;
    entry.table =
        std::make_unique<Table>(pool_.get(), &entry.info, entry.schema);
    if (has_index) {
      entry.index = BTree::Open(pool_.get(), entry.index_root);
    }
  }
  return Status::OK();
}

Result<Table*> Database::CreateTable(const std::string& name, Schema schema,
                                     bool indexed) {
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table exists: " + name);
  }
  TableEntry e;
  e.schema = std::move(schema);
  auto [it, ok] = tables_.emplace(name, std::move(e));
  (void)ok;
  TableEntry& entry = it->second;
  entry.table =
      std::make_unique<Table>(pool_.get(), &entry.info, entry.schema);
  if (indexed) {
    SCISPARQL_ASSIGN_OR_RETURN(BTree tree, BTree::Create(pool_.get()));
    entry.index = tree;
    entry.index_root = tree.root();
  }
  SCISPARQL_RETURN_NOT_OK(SaveCatalog());
  return entry.table.get();
}

Database::TableEntry* Database::FindEntry(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

Table* Database::GetTable(const std::string& name) {
  TableEntry* e = FindEntry(name);
  return e == nullptr ? nullptr : e->table.get();
}

bool Database::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

Result<RecordId> Database::Insert(const std::string& table, const Row& row) {
  TableEntry* e = FindEntry(table);
  if (e == nullptr) return Status::NotFound("no table: " + table);
  return e->table->Insert(row);
}

Result<RecordId> Database::InsertIndexed(const std::string& table,
                                         uint64_t key, const Row& row) {
  TableEntry* e = FindEntry(table);
  if (e == nullptr) return Status::NotFound("no table: " + table);
  if (!e->index.has_value()) {
    return Status::InvalidArgument("table has no index: " + table);
  }
  SCISPARQL_ASSIGN_OR_RETURN(RecordId rid, e->table->Insert(row));
  SCISPARQL_RETURN_NOT_OK(e->index->Insert(key, rid));
  e->index_root = e->index->root();
  return rid;
}

Result<size_t> Database::DeleteByKey(const std::string& table, uint64_t key) {
  TableEntry* e = FindEntry(table);
  if (e == nullptr) return Status::NotFound("no table: " + table);
  if (!e->index.has_value()) {
    return Status::InvalidArgument("table has no index: " + table);
  }
  SCISPARQL_ASSIGN_OR_RETURN(std::vector<uint64_t> rids, e->index->Lookup(key));
  for (uint64_t rid : rids) {
    SCISPARQL_RETURN_NOT_OK(e->table->Delete(rid));
    SCISPARQL_ASSIGN_OR_RETURN(size_t n, e->index->Remove(key, rid));
    (void)n;
  }
  return rids.size();
}

Status Database::SelectByKeys(
    const std::string& table, std::span<const uint64_t> keys,
    SelectStrategy strategy,
    const std::function<bool(uint64_t, const Row&)>& cb, SelectStats* stats) {
  TableEntry* e = FindEntry(table);
  if (e == nullptr) return Status::NotFound("no table: " + table);
  if (!e->index.has_value()) {
    return Status::InvalidArgument("table has no index: " + table);
  }
  SelectStats local;
  SelectStats* st = stats != nullptr ? stats : &local;

  auto deliver = [&](uint64_t key, uint64_t rid) -> Result<bool> {
    SCISPARQL_ASSIGN_OR_RETURN(Row row, e->table->Get(rid));
    ++st->rows;
    return cb(key, row);
  };

  switch (strategy) {
    case SelectStrategy::kPerKey: {
      // One round trip and one index descent per key.
      for (uint64_t key : keys) {
        ++st->queries;
        ++st->index_probes;
        SCISPARQL_ASSIGN_OR_RETURN(std::vector<uint64_t> rids,
                                   e->index->Lookup(key));
        for (uint64_t rid : rids) {
          SCISPARQL_ASSIGN_OR_RETURN(bool more, deliver(key, rid));
          if (!more) return Status::OK();
        }
      }
      return Status::OK();
    }
    case SelectStrategy::kInList: {
      // One round trip; the server still descends per key, but sorted
      // probing gets strong buffer locality.
      ++st->queries;
      std::vector<uint64_t> sorted(keys.begin(), keys.end());
      std::sort(sorted.begin(), sorted.end());
      sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
      for (uint64_t key : sorted) {
        ++st->index_probes;
        SCISPARQL_ASSIGN_OR_RETURN(std::vector<uint64_t> rids,
                                   e->index->Lookup(key));
        for (uint64_t rid : rids) {
          SCISPARQL_ASSIGN_OR_RETURN(bool more, deliver(key, rid));
          if (!more) return Status::OK();
        }
      }
      return Status::OK();
    }
    case SelectStrategy::kInterval: {
      // SPD compresses the key sequence into interval queries.
      std::vector<uint64_t> sorted(keys.begin(), keys.end());
      std::sort(sorted.begin(), sorted.end());
      sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
      std::vector<Interval> intervals = DetectPatterns(sorted);
      return SelectByIntervals(table, intervals, cb, st);
    }
  }
  return Status::Internal("unknown strategy");
}

Status Database::SelectByIntervals(
    const std::string& table, std::span<const Interval> intervals,
    const std::function<bool(uint64_t, const Row&)>& cb, SelectStats* stats) {
  TableEntry* e = FindEntry(table);
  if (e == nullptr) return Status::NotFound("no table: " + table);
  if (!e->index.has_value()) {
    return Status::InvalidArgument("table has no index: " + table);
  }
  SelectStats local;
  SelectStats* st = stats != nullptr ? stats : &local;
  bool stop = false;
  for (const Interval& iv : intervals) {
    if (stop) break;
    ++st->queries;
    ++st->index_probes;
    Status scan_status = Status::OK();
    auto handle = [&](uint64_t key, uint64_t rid) {
      auto row = e->table->Get(rid);
      if (!row.ok()) {
        scan_status = row.status();
        return false;
      }
      ++st->rows;
      if (!cb(key, *row)) {
        stop = true;
        return false;
      }
      return true;
    };
    if (iv.stride <= 1) {
      SCISPARQL_RETURN_NOT_OK(e->index->Scan(iv.start, iv.last(), handle));
    } else {
      SCISPARQL_RETURN_NOT_OK(
          e->index->ScanStrided(iv.start, iv.last(), iv.stride, handle));
    }
    SCISPARQL_RETURN_NOT_OK(scan_status);
  }
  return Status::OK();
}

Status Database::SelectRange(
    const std::string& table, uint64_t lo, uint64_t hi,
    const std::function<bool(uint64_t, const Row&)>& cb, SelectStats* stats) {
  if (hi < lo) return Status::OK();
  Interval iv{lo, 1, hi - lo + 1};
  return SelectByIntervals(table, std::span<const Interval>(&iv, 1), cb,
                           stats);
}

Status Database::ScanAll(const std::string& table,
                         const std::function<bool(const Row&)>& cb) {
  TableEntry* e = FindEntry(table);
  if (e == nullptr) return Status::NotFound("no table: " + table);
  return e->table->ForEach(
      [&cb](RecordId, const Row& row) { return cb(row); });
}

Status Database::Flush() {
  SCISPARQL_RETURN_NOT_OK(SaveCatalog());
  return pool_->FlushAll();
}

}  // namespace relstore
}  // namespace scisparql
