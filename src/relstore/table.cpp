#include "relstore/table.h"

#include <cstring>

#include "relstore/btree.h"  // for Load/Store helpers

namespace scisparql {
namespace relstore {

// Heap page layout
// ----------------
//   [0]   u8   type = 3 (heap) / 4 (overflow)
//   [2]   u16  slot_count
//   [4]   u16  free_end: lowest offset used by record data (data grows
//              downward from page_size toward the slot directory)
//   [8]   u32  next page in the table chain (heap) / chain (overflow)
//   [12]  slot directory: slot i at 12 + 4*i = { u16 offset, u16 length };
//         offset 0xffff marks a deleted slot.
//
// Overflow pages additionally store at [4] a u16 used-bytes count and carry
// raw blob bytes from offset 12.

namespace {

constexpr uint8_t kHeapPage = 3;
constexpr uint8_t kOverflowPage = 4;
constexpr size_t kPageHeader = 12;
constexpr size_t kSlotSize = 4;
constexpr uint16_t kDeletedSlot = 0xffff;
constexpr size_t kInlineBlobMax = 1024;

uint16_t SlotCount(const uint8_t* p) { return LoadU16(p + 2); }
void SetSlotCount(uint8_t* p, uint16_t c) { StoreU16(p + 2, c); }
uint16_t FreeEnd(const uint8_t* p) { return LoadU16(p + 4); }
void SetFreeEnd(uint8_t* p, uint16_t v) { StoreU16(p + 4, v); }
uint32_t NextPage(const uint8_t* p) { return LoadU32(p + 8); }
void SetNextPage(uint8_t* p, uint32_t v) { StoreU32(p + 8, v); }

uint8_t* Slot(uint8_t* p, size_t i) { return p + kPageHeader + i * kSlotSize; }
const uint8_t* Slot(const uint8_t* p, size_t i) {
  return p + kPageHeader + i * kSlotSize;
}

void InitHeapPage(uint8_t* p, uint32_t page_size) {
  std::memset(p, 0, page_size);
  p[0] = kHeapPage;
  SetSlotCount(p, 0);
  SetFreeEnd(p, static_cast<uint16_t>(page_size));
  SetNextPage(p, kInvalidPage);
}

size_t FreeSpace(const uint8_t* p) {
  size_t dir_end = kPageHeader + SlotCount(p) * kSlotSize;
  size_t free_end = FreeEnd(p);
  return free_end > dir_end ? free_end - dir_end : 0;
}

void AppendU32(std::string* out, uint32_t v) {
  char b[4];
  StoreU32(reinterpret_cast<uint8_t*>(b), v);
  out->append(b, 4);
}
void AppendU64(std::string* out, uint64_t v) {
  char b[8];
  StoreU64(reinterpret_cast<uint8_t*>(b), v);
  out->append(b, 8);
}

}  // namespace

int Schema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Result<std::string> Table::SerializeRow(const Row& row) {
  if (row.size() != schema_.columns.size()) {
    return Status::InvalidArgument("row arity does not match schema");
  }
  const uint32_t page_size = pool_->pager()->page_size();
  std::string out;
  for (size_t i = 0; i < row.size(); ++i) {
    const Column& col = schema_.columns[i];
    switch (col.type) {
      case ColType::kInt64: {
        if (!std::holds_alternative<int64_t>(row[i])) {
          return Status::TypeError("expected int64 for column " + col.name);
        }
        AppendU64(&out, static_cast<uint64_t>(std::get<int64_t>(row[i])));
        break;
      }
      case ColType::kDouble: {
        if (!std::holds_alternative<double>(row[i])) {
          return Status::TypeError("expected double for column " + col.name);
        }
        double d = std::get<double>(row[i]);
        uint64_t bits;
        std::memcpy(&bits, &d, 8);
        AppendU64(&out, bits);
        break;
      }
      case ColType::kText: {
        if (!std::holds_alternative<std::string>(row[i])) {
          return Status::TypeError("expected text for column " + col.name);
        }
        const std::string& s = std::get<std::string>(row[i]);
        AppendU32(&out, static_cast<uint32_t>(s.size()));
        out.append(s);
        break;
      }
      case ColType::kBlob: {
        if (!std::holds_alternative<std::string>(row[i])) {
          return Status::TypeError("expected blob for column " + col.name);
        }
        const std::string& s = std::get<std::string>(row[i]);
        if (s.size() <= kInlineBlobMax) {
          out.push_back(1);  // inline
          AppendU32(&out, static_cast<uint32_t>(s.size()));
          out.append(s);
        } else {
          // Spill to an overflow chain.
          out.push_back(0);
          const size_t payload = page_size - kPageHeader;
          PageId first = kInvalidPage;
          PageId prev = kInvalidPage;
          for (size_t off = 0; off < s.size(); off += payload) {
            PageId id = pool_->pager()->Allocate();
            SCISPARQL_ASSIGN_OR_RETURN(PageRef page,
                                       PageRef::Acquire(pool_, id));
            uint8_t* p = page.data();
            std::memset(p, 0, page_size);
            p[0] = kOverflowPage;
            size_t n = std::min(payload, s.size() - off);
            StoreU16(p + 4, static_cast<uint16_t>(n));
            SetNextPage(p, kInvalidPage);
            std::memcpy(p + kPageHeader, s.data() + off, n);
            page.MarkDirty();
            if (first == kInvalidPage) {
              first = id;
            } else {
              SCISPARQL_ASSIGN_OR_RETURN(PageRef prev_page,
                                         PageRef::Acquire(pool_, prev));
              SetNextPage(prev_page.data(), id);
              prev_page.MarkDirty();
            }
            prev = id;
          }
          AppendU32(&out, first);
          AppendU64(&out, s.size());
        }
        break;
      }
    }
  }
  return out;
}

Result<Row> Table::DeserializeRow(const uint8_t* data, size_t len) const {
  Row row;
  size_t pos = 0;
  auto need = [&](size_t n) -> Status {
    if (pos + n > len) return Status::Internal("corrupt row encoding");
    return Status::OK();
  };
  const uint32_t page_size = pool_->pager()->page_size();
  for (const Column& col : schema_.columns) {
    switch (col.type) {
      case ColType::kInt64: {
        SCISPARQL_RETURN_NOT_OK(need(8));
        row.emplace_back(static_cast<int64_t>(LoadU64(data + pos)));
        pos += 8;
        break;
      }
      case ColType::kDouble: {
        SCISPARQL_RETURN_NOT_OK(need(8));
        uint64_t bits = LoadU64(data + pos);
        double d;
        std::memcpy(&d, &bits, 8);
        row.emplace_back(d);
        pos += 8;
        break;
      }
      case ColType::kText: {
        SCISPARQL_RETURN_NOT_OK(need(4));
        uint32_t n = LoadU32(data + pos);
        pos += 4;
        SCISPARQL_RETURN_NOT_OK(need(n));
        row.emplace_back(std::string(reinterpret_cast<const char*>(data + pos), n));
        pos += n;
        break;
      }
      case ColType::kBlob: {
        SCISPARQL_RETURN_NOT_OK(need(1));
        uint8_t inline_flag = data[pos++];
        if (inline_flag == 1) {
          SCISPARQL_RETURN_NOT_OK(need(4));
          uint32_t n = LoadU32(data + pos);
          pos += 4;
          SCISPARQL_RETURN_NOT_OK(need(n));
          row.emplace_back(
              std::string(reinterpret_cast<const char*>(data + pos), n));
          pos += n;
        } else {
          SCISPARQL_RETURN_NOT_OK(need(12));
          PageId first = LoadU32(data + pos);
          pos += 4;
          uint64_t total = LoadU64(data + pos);
          pos += 8;
          std::string blob;
          blob.reserve(total);
          PageId id = first;
          while (id != kInvalidPage && blob.size() < total) {
            SCISPARQL_ASSIGN_OR_RETURN(PageRef page,
                                       PageRef::Acquire(pool_, id));
            const uint8_t* p = page.data();
            if (p[0] != kOverflowPage) {
              return Status::Internal("overflow chain corrupt");
            }
            uint16_t n = LoadU16(p + 4);
            blob.append(reinterpret_cast<const char*>(p + kPageHeader), n);
            id = NextPage(p);
          }
          if (blob.size() != total) {
            return Status::Internal("overflow chain truncated");
          }
          (void)page_size;
          row.emplace_back(std::move(blob));
        }
        break;
      }
    }
  }
  return row;
}

Result<PageId> Table::PageWithSpace(size_t need) {
  const uint32_t page_size = pool_->pager()->page_size();
  if (need + kSlotSize > page_size - kPageHeader) {
    return Status::InvalidArgument("record too large for a heap page");
  }
  if (info_->last_page != kInvalidPage) {
    SCISPARQL_ASSIGN_OR_RETURN(PageRef page,
                               PageRef::Acquire(pool_, info_->last_page));
    if (FreeSpace(page.data()) >= need + kSlotSize) return info_->last_page;
  }
  PageId id = pool_->pager()->Allocate();
  {
    SCISPARQL_ASSIGN_OR_RETURN(PageRef page, PageRef::Acquire(pool_, id));
    InitHeapPage(page.data(), page_size);
    page.MarkDirty();
  }
  if (info_->last_page != kInvalidPage) {
    SCISPARQL_ASSIGN_OR_RETURN(PageRef prev,
                               PageRef::Acquire(pool_, info_->last_page));
    SetNextPage(prev.data(), id);
    prev.MarkDirty();
  } else {
    info_->first_page = id;
  }
  info_->last_page = id;
  return id;
}

Result<RecordId> Table::Insert(const Row& row) {
  SCISPARQL_ASSIGN_OR_RETURN(std::string bytes, SerializeRow(row));
  SCISPARQL_ASSIGN_OR_RETURN(PageId pid, PageWithSpace(bytes.size()));
  SCISPARQL_ASSIGN_OR_RETURN(PageRef page, PageRef::Acquire(pool_, pid));
  uint8_t* p = page.data();
  uint16_t slot = SlotCount(p);
  uint16_t off = static_cast<uint16_t>(FreeEnd(p) - bytes.size());
  std::memcpy(p + off, bytes.data(), bytes.size());
  StoreU16(Slot(p, slot), off);
  StoreU16(Slot(p, slot) + 2, static_cast<uint16_t>(bytes.size()));
  SetSlotCount(p, static_cast<uint16_t>(slot + 1));
  SetFreeEnd(p, off);
  page.MarkDirty();
  ++info_->row_count;
  return MakeRecordId(pid, slot);
}

Result<Row> Table::Get(RecordId rid) const {
  SCISPARQL_ASSIGN_OR_RETURN(PageRef page,
                             PageRef::Acquire(pool_, RecordPage(rid)));
  const uint8_t* p = page.data();
  uint16_t slot = RecordSlot(rid);
  if (slot >= SlotCount(p)) return Status::NotFound("no such record");
  uint16_t off = LoadU16(Slot(p, slot));
  uint16_t len = LoadU16(Slot(p, slot) + 2);
  if (off == kDeletedSlot) return Status::NotFound("record deleted");
  return DeserializeRow(p + off, len);
}

Status Table::Delete(RecordId rid) {
  SCISPARQL_ASSIGN_OR_RETURN(PageRef page,
                             PageRef::Acquire(pool_, RecordPage(rid)));
  uint8_t* p = page.data();
  uint16_t slot = RecordSlot(rid);
  if (slot >= SlotCount(p)) return Status::NotFound("no such record");
  if (LoadU16(Slot(p, slot)) == kDeletedSlot) {
    return Status::NotFound("record already deleted");
  }
  StoreU16(Slot(p, slot), kDeletedSlot);
  page.MarkDirty();
  if (info_->row_count > 0) --info_->row_count;
  return Status::OK();
}

Status Table::ForEach(
    const std::function<bool(RecordId, const Row&)>& cb) const {
  PageId pid = info_->first_page;
  while (pid != kInvalidPage) {
    PageId next;
    uint16_t slots;
    {
      SCISPARQL_ASSIGN_OR_RETURN(PageRef page, PageRef::Acquire(pool_, pid));
      next = NextPage(page.data());
      slots = SlotCount(page.data());
    }
    for (uint16_t s = 0; s < slots; ++s) {
      SCISPARQL_ASSIGN_OR_RETURN(PageRef page, PageRef::Acquire(pool_, pid));
      const uint8_t* p = page.data();
      uint16_t off = LoadU16(Slot(p, s));
      uint16_t len = LoadU16(Slot(p, s) + 2);
      if (off == kDeletedSlot) continue;
      SCISPARQL_ASSIGN_OR_RETURN(Row row, DeserializeRow(p + off, len));
      page.Release();
      if (!cb(MakeRecordId(pid, s), row)) return Status::OK();
    }
    pid = next;
  }
  return Status::OK();
}

}  // namespace relstore
}  // namespace scisparql
