#ifndef SCISPARQL_RELSTORE_PAGER_H_
#define SCISPARQL_RELSTORE_PAGER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/vfs.h"

namespace scisparql {
namespace relstore {

using PageId = uint32_t;
inline constexpr PageId kInvalidPage = 0xffffffff;

/// Default page size of the embedded relational engine. 8 KiB matches the
/// common RDBMS default the paper's back-end experiments ran against.
inline constexpr uint32_t kDefaultPageSize = 8192;

/// Physical page file. All reads and writes go through the BufferPool; the
/// pager only knows how to move whole pages between memory and the file and
/// counts physical I/O for the benchmarks (Experiments 1-3 report exactly
/// this access-path behaviour).
class Pager {
 public:
  ~Pager() = default;

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  /// Opens (or creates) a page file at `path`. An empty `path` keeps all
  /// pages in memory only — convenient for tests. `vfs` defaults to the
  /// real filesystem; tests inject a FaultyVfs.
  static Result<std::unique_ptr<Pager>> Open(
      const std::string& path, uint32_t page_size = kDefaultPageSize,
      storage::Vfs* vfs = nullptr);

  uint32_t page_size() const { return page_size_; }
  PageId page_count() const { return page_count_; }

  /// Appends a zeroed page; returns its id.
  PageId Allocate();

  Status ReadPage(PageId id, uint8_t* buf);
  Status WritePage(PageId id, const uint8_t* buf);

  /// Durably flushes written pages to the device (fsync, not just a
  /// buffered flush).
  Status Sync();

  /// --- I/O statistics (reset-able, read by the benchmark harness). ---
  uint64_t physical_reads() const { return physical_reads_; }
  uint64_t physical_writes() const { return physical_writes_; }
  void ResetStats() {
    physical_reads_ = 0;
    physical_writes_ = 0;
  }

 private:
  Pager(std::string path, uint32_t page_size)
      : path_(std::move(path)), page_size_(page_size) {}

  std::string path_;
  uint32_t page_size_;
  PageId page_count_ = 0;
  std::unique_ptr<storage::VfsFile> file_;    // null for in-memory pagers
  std::vector<std::vector<uint8_t>> memory_;  // in-memory mode storage
  uint64_t physical_reads_ = 0;
  uint64_t physical_writes_ = 0;
};

}  // namespace relstore
}  // namespace scisparql

#endif  // SCISPARQL_RELSTORE_PAGER_H_
