#include "relstore/btree.h"

#include <cstring>

namespace scisparql {
namespace relstore {

// Node page layout
// -----------------
//   [0]   u8   type: 1 = leaf, 2 = internal
//   [1]   u8   reserved
//   [2]   u16  count
//   [4]   u32  leaf: next-leaf page id; internal: left-most child page id
//   [8]   entries
//         leaf:     count x { u64 key, u64 value }           (16 bytes each)
//         internal: count x { u64 key, u32 right-child id }  (12 bytes each)
//
// In an internal node, keys partition the children: a search key k descends
// into the left-most child when k < key[0], otherwise into the right child
// of the last key <= k. Separator keys are copied up (B+-tree style), so
// every entry is reachable through the leaf level.

namespace {

constexpr uint8_t kLeaf = 1;
constexpr uint8_t kInternal = 2;
constexpr size_t kHeaderSize = 8;
constexpr size_t kLeafEntry = 16;
constexpr size_t kInternalEntry = 12;

uint8_t NodeType(const uint8_t* p) { return p[0]; }
uint16_t Count(const uint8_t* p) { return LoadU16(p + 2); }
void SetCount(uint8_t* p, uint16_t c) { StoreU16(p + 2, c); }
uint32_t Aux(const uint8_t* p) { return LoadU32(p + 4); }
void SetAux(uint8_t* p, uint32_t v) { StoreU32(p + 4, v); }

uint8_t* LeafEntry(uint8_t* p, size_t i) {
  return p + kHeaderSize + i * kLeafEntry;
}
const uint8_t* LeafEntry(const uint8_t* p, size_t i) {
  return p + kHeaderSize + i * kLeafEntry;
}
uint8_t* InternalEntry(uint8_t* p, size_t i) {
  return p + kHeaderSize + i * kInternalEntry;
}
const uint8_t* InternalEntry(const uint8_t* p, size_t i) {
  return p + kHeaderSize + i * kInternalEntry;
}

size_t LeafMax(uint32_t page_size) {
  return (page_size - kHeaderSize) / kLeafEntry;
}
size_t InternalMax(uint32_t page_size) {
  return (page_size - kHeaderSize) / kInternalEntry;
}

void InitNode(uint8_t* p, uint8_t type, uint32_t page_size) {
  std::memset(p, 0, page_size);
  p[0] = type;
  SetCount(p, 0);
  SetAux(p, kInvalidPage);
}

/// First leaf slot with key >= `key` (lower bound).
size_t LeafLowerBound(const uint8_t* p, uint64_t key) {
  size_t lo = 0, hi = Count(p);
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (LoadU64(LeafEntry(p, mid)) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// Child page to descend into for `key`. With `leftmost` the descent uses a
/// strict comparison, landing on the left-most leaf that may contain `key`;
/// this matters when duplicate keys span a split (scans/removals need the
/// left-most copy, inserts append right-most).
uint32_t ChildFor(const uint8_t* p, uint64_t key, bool leftmost = false) {
  size_t n = Count(p);
  size_t lo = 0, hi = n;
  // Number of separator keys <= key (or < key for leftmost descent).
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    uint64_t sep = LoadU64(InternalEntry(p, mid));
    bool go_right = leftmost ? sep < key : sep <= key;
    if (go_right) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == 0) return Aux(p);
  return LoadU32(InternalEntry(p, lo - 1) + 8);
}

}  // namespace

Result<BTree> BTree::Create(BufferPool* pool) {
  PageId root = pool->pager()->Allocate();
  SCISPARQL_ASSIGN_OR_RETURN(PageRef page, PageRef::Acquire(pool, root));
  InitNode(page.data(), kLeaf, pool->pager()->page_size());
  page.MarkDirty();
  return BTree(pool, root);
}

BTree BTree::Open(BufferPool* pool, PageId root) { return BTree(pool, root); }

Result<BTree::SplitResult> BTree::InsertRec(PageId node, uint64_t key,
                                            uint64_t value) {
  const uint32_t page_size = pool_->pager()->page_size();
  SCISPARQL_ASSIGN_OR_RETURN(PageRef page, PageRef::Acquire(pool_, node));
  uint8_t* p = page.data();

  if (NodeType(p) == kLeaf) {
    size_t n = Count(p);
    size_t pos = LeafLowerBound(p, key);
    // Shift and insert.
    std::memmove(LeafEntry(p, pos + 1), LeafEntry(p, pos),
                 (n - pos) * kLeafEntry);
    StoreU64(LeafEntry(p, pos), key);
    StoreU64(LeafEntry(p, pos) + 8, value);
    SetCount(p, static_cast<uint16_t>(n + 1));
    page.MarkDirty();

    if (n + 1 <= LeafMax(page_size)) return SplitResult{};

    // Split: right half moves to a new leaf.
    size_t total = n + 1;
    size_t keep = total / 2;
    PageId right_id = pool_->pager()->Allocate();
    SCISPARQL_ASSIGN_OR_RETURN(PageRef right, PageRef::Acquire(pool_, right_id));
    InitNode(right.data(), kLeaf, page_size);
    std::memcpy(LeafEntry(right.data(), 0), LeafEntry(p, keep),
                (total - keep) * kLeafEntry);
    SetCount(right.data(), static_cast<uint16_t>(total - keep));
    SetAux(right.data(), Aux(p));  // chain: right inherits old next
    SetAux(p, right_id);
    SetCount(p, static_cast<uint16_t>(keep));
    right.MarkDirty();
    page.MarkDirty();
    SplitResult sr;
    sr.split = true;
    sr.sep_key = LoadU64(LeafEntry(right.data(), 0));
    sr.right = right_id;
    return sr;
  }

  // Internal node: descend.
  uint32_t child = ChildFor(p, key);
  page.Release();  // avoid holding pins across the recursion
  SCISPARQL_ASSIGN_OR_RETURN(SplitResult child_split,
                             InsertRec(child, key, value));
  if (!child_split.split) return SplitResult{};

  SCISPARQL_ASSIGN_OR_RETURN(PageRef repage, PageRef::Acquire(pool_, node));
  p = repage.data();
  size_t n = Count(p);
  // Position of the new separator key. Equal separators can exist when
  // duplicate keys span splits; the new right sibling must be placed after
  // them (it holds the upper half of the right-most equal subtree).
  size_t pos = 0;
  while (pos < n && LoadU64(InternalEntry(p, pos)) <= child_split.sep_key) {
    ++pos;
  }
  std::memmove(InternalEntry(p, pos + 1), InternalEntry(p, pos),
               (n - pos) * kInternalEntry);
  StoreU64(InternalEntry(p, pos), child_split.sep_key);
  StoreU32(InternalEntry(p, pos) + 8, child_split.right);
  SetCount(p, static_cast<uint16_t>(n + 1));
  repage.MarkDirty();

  if (n + 1 <= InternalMax(page_size)) return SplitResult{};

  // Split the internal node: the median key moves up.
  size_t total = n + 1;
  size_t mid = total / 2;
  uint64_t up_key = LoadU64(InternalEntry(p, mid));
  uint32_t mid_child = LoadU32(InternalEntry(p, mid) + 8);

  PageId right_id = pool_->pager()->Allocate();
  SCISPARQL_ASSIGN_OR_RETURN(PageRef right, PageRef::Acquire(pool_, right_id));
  InitNode(right.data(), kInternal, page_size);
  size_t right_count = total - mid - 1;
  std::memcpy(InternalEntry(right.data(), 0), InternalEntry(p, mid + 1),
              right_count * kInternalEntry);
  SetCount(right.data(), static_cast<uint16_t>(right_count));
  SetAux(right.data(), mid_child);
  SetCount(p, static_cast<uint16_t>(mid));
  right.MarkDirty();
  repage.MarkDirty();

  SplitResult sr;
  sr.split = true;
  sr.sep_key = up_key;
  sr.right = right_id;
  return sr;
}

Status BTree::Insert(uint64_t key, uint64_t value) {
  SCISPARQL_ASSIGN_OR_RETURN(SplitResult sr, InsertRec(root_, key, value));
  if (!sr.split) return Status::OK();
  // Grow a new root.
  const uint32_t page_size = pool_->pager()->page_size();
  PageId new_root = pool_->pager()->Allocate();
  SCISPARQL_ASSIGN_OR_RETURN(PageRef page, PageRef::Acquire(pool_, new_root));
  InitNode(page.data(), kInternal, page_size);
  SetAux(page.data(), root_);
  StoreU64(InternalEntry(page.data(), 0), sr.sep_key);
  StoreU32(InternalEntry(page.data(), 0) + 8, sr.right);
  SetCount(page.data(), 1);
  page.MarkDirty();
  root_ = new_root;
  return Status::OK();
}

Result<PageId> BTree::FindLeaf(uint64_t key) const {
  PageId node = root_;
  while (true) {
    SCISPARQL_ASSIGN_OR_RETURN(PageRef page, PageRef::Acquire(pool_, node));
    if (NodeType(page.data()) == kLeaf) return node;
    node = ChildFor(page.data(), key, /*leftmost=*/true);
  }
}

Status BTree::Scan(uint64_t lo, uint64_t hi,
                   const std::function<bool(uint64_t, uint64_t)>& cb) const {
  if (lo > hi) return Status::OK();
  SCISPARQL_ASSIGN_OR_RETURN(PageId leaf, FindLeaf(lo));
  while (leaf != kInvalidPage) {
    SCISPARQL_ASSIGN_OR_RETURN(PageRef page, PageRef::Acquire(pool_, leaf));
    const uint8_t* p = page.data();
    size_t n = Count(p);
    for (size_t i = LeafLowerBound(p, lo); i < n; ++i) {
      uint64_t k = LoadU64(LeafEntry(p, i));
      if (k > hi) return Status::OK();
      if (!cb(k, LoadU64(LeafEntry(p, i) + 8))) return Status::OK();
    }
    leaf = Aux(p);
  }
  return Status::OK();
}

Status BTree::ScanStrided(
    uint64_t lo, uint64_t hi, uint64_t stride,
    const std::function<bool(uint64_t, uint64_t)>& cb) const {
  if (stride == 0) return Status::InvalidArgument("zero stride");
  return Scan(lo, hi, [&](uint64_t k, uint64_t v) {
    if ((k - lo) % stride == 0) return cb(k, v);
    return true;
  });
}

Result<std::vector<uint64_t>> BTree::Lookup(uint64_t key) const {
  std::vector<uint64_t> out;
  SCISPARQL_RETURN_NOT_OK(Scan(key, key, [&out](uint64_t, uint64_t v) {
    out.push_back(v);
    return true;
  }));
  return out;
}

Result<size_t> BTree::Remove(uint64_t key, uint64_t value) {
  // Locate the leaf and remove matching entries; no rebalancing (deletes
  // are rare in the SSDM workload, and underflowing leaves stay linked).
  SCISPARQL_ASSIGN_OR_RETURN(PageId leaf, FindLeaf(key));
  size_t removed = 0;
  while (leaf != kInvalidPage) {
    SCISPARQL_ASSIGN_OR_RETURN(PageRef page, PageRef::Acquire(pool_, leaf));
    uint8_t* p = page.data();
    size_t n = Count(p);
    size_t i = LeafLowerBound(p, key);
    bool past = false;
    while (i < n) {
      uint64_t k = LoadU64(LeafEntry(p, i));
      if (k > key) {
        past = true;
        break;
      }
      if (k == key && LoadU64(LeafEntry(p, i) + 8) == value) {
        std::memmove(LeafEntry(p, i), LeafEntry(p, i + 1),
                     (n - i - 1) * kLeafEntry);
        --n;
        SetCount(p, static_cast<uint16_t>(n));
        page.MarkDirty();
        ++removed;
      } else {
        ++i;
      }
    }
    if (past) break;
    leaf = Aux(p);
  }
  return removed;
}

Result<uint64_t> BTree::CountEntries() const {
  uint64_t total = 0;
  SCISPARQL_RETURN_NOT_OK(Scan(0, UINT64_MAX, [&total](uint64_t, uint64_t) {
    ++total;
    return true;
  }));
  return total;
}

Result<int> BTree::Height() const {
  int h = 1;
  PageId node = root_;
  while (true) {
    SCISPARQL_ASSIGN_OR_RETURN(PageRef page, PageRef::Acquire(pool_, node));
    if (NodeType(page.data()) == kLeaf) return h;
    node = Aux(page.data());
    ++h;
  }
}

}  // namespace relstore
}  // namespace scisparql
