#ifndef SCISPARQL_RELSTORE_BUFFER_POOL_H_
#define SCISPARQL_RELSTORE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "relstore/pager.h"

namespace scisparql {
namespace relstore {

/// Fixed-capacity page cache with LRU eviction. Pages must be pinned while
/// accessed (use PageRef below) and marked dirty on modification; dirty
/// pages are written back on eviction or FlushAll(). The pool capacity is
/// the knob swept by the buffer-size benchmark (Experiment 2).
class BufferPool {
 public:
  BufferPool(Pager* pager, size_t capacity_pages);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins the page, loading it from the pager on a miss. The pointer stays
  /// valid until the matching Unpin.
  Result<uint8_t*> Pin(PageId id);

  void Unpin(PageId id, bool dirty);

  /// Writes all dirty pages back to the pager.
  Status FlushAll();

  /// Drops every frame (flushing first). Used when benchmarks want a cold
  /// cache between runs.
  Status Reset();

  size_t capacity() const { return capacity_; }
  void set_capacity(size_t pages) { capacity_ = pages == 0 ? 1 : pages; }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }
  void ResetStats() { hits_ = misses_ = evictions_ = 0; }

  Pager* pager() { return pager_; }

 private:
  struct Frame {
    PageId id = kInvalidPage;
    int pin_count = 0;
    bool dirty = false;
    std::vector<uint8_t> data;
    std::list<PageId>::iterator lru_it;  // valid only while unpinned
    bool in_lru = false;
  };

  Status EvictOne();

  Pager* pager_;
  size_t capacity_;
  std::unordered_map<PageId, Frame> frames_;
  std::list<PageId> lru_;  // front = most recently unpinned
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

/// RAII pin on a buffer-pool page.
class PageRef {
 public:
  PageRef() = default;
  PageRef(BufferPool* pool, PageId id, uint8_t* data)
      : pool_(pool), id_(id), data_(data) {}
  ~PageRef() { Release(); }

  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;
  PageRef(PageRef&& o) noexcept { *this = std::move(o); }
  PageRef& operator=(PageRef&& o) noexcept {
    if (this != &o) {
      Release();
      pool_ = o.pool_;
      id_ = o.id_;
      data_ = o.data_;
      dirty_ = o.dirty_;
      o.pool_ = nullptr;
      o.data_ = nullptr;
    }
    return *this;
  }

  /// Pins page `id` in `pool`.
  static Result<PageRef> Acquire(BufferPool* pool, PageId id) {
    SCISPARQL_ASSIGN_OR_RETURN(uint8_t* data, pool->Pin(id));
    return PageRef(pool, id, data);
  }

  uint8_t* data() { return data_; }
  const uint8_t* data() const { return data_; }
  PageId id() const { return id_; }
  bool valid() const { return data_ != nullptr; }

  /// Marks the page dirty; it will be written back before eviction.
  void MarkDirty() { dirty_ = true; }

  void Release() {
    if (pool_ != nullptr && data_ != nullptr) {
      pool_->Unpin(id_, dirty_);
      pool_ = nullptr;
      data_ = nullptr;
    }
  }

 private:
  BufferPool* pool_ = nullptr;
  PageId id_ = kInvalidPage;
  uint8_t* data_ = nullptr;
  bool dirty_ = false;
};

}  // namespace relstore
}  // namespace scisparql

#endif  // SCISPARQL_RELSTORE_BUFFER_POOL_H_
