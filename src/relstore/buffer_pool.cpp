#include "relstore/buffer_pool.h"

#include "obs/metrics.h"

namespace scisparql {
namespace relstore {

namespace {

/// Process-wide buffer-pool counters, mirroring the per-pool hits_/misses_/
/// evictions_ members in the METRICS exposition.
struct PoolMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& evictions;
};

PoolMetrics& Metrics() {
  obs::MetricsRegistry& reg = obs::DefaultMetrics();
  static PoolMetrics* m = new PoolMetrics{
      reg.GetCounter("ssdm_buffer_pool_hits_total", "",
                     "Page pins served from a resident frame."),
      reg.GetCounter("ssdm_buffer_pool_misses_total", "",
                     "Page pins that had to read from the pager."),
      reg.GetCounter("ssdm_buffer_pool_evictions_total", "",
                     "Frames evicted to make room for a new page."),
  };
  return *m;
}

}  // namespace

BufferPool::BufferPool(Pager* pager, size_t capacity_pages)
    : pager_(pager), capacity_(capacity_pages == 0 ? 1 : capacity_pages) {}

Result<uint8_t*> BufferPool::Pin(PageId id) {
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    ++hits_;
    Metrics().hits.Add();
    Frame& f = it->second;
    if (f.in_lru) {
      lru_.erase(f.lru_it);
      f.in_lru = false;
    }
    ++f.pin_count;
    return f.data.data();
  }
  ++misses_;
  Metrics().misses.Add();
  while (frames_.size() >= capacity_) {
    SCISPARQL_RETURN_NOT_OK(EvictOne());
  }
  Frame f;
  f.id = id;
  f.pin_count = 1;
  f.data.resize(pager_->page_size());
  SCISPARQL_RETURN_NOT_OK(pager_->ReadPage(id, f.data.data()));
  auto [ins, ok] = frames_.emplace(id, std::move(f));
  (void)ok;
  return ins->second.data.data();
}

void BufferPool::Unpin(PageId id, bool dirty) {
  auto it = frames_.find(id);
  if (it == frames_.end()) return;
  Frame& f = it->second;
  if (dirty) f.dirty = true;
  if (f.pin_count > 0) --f.pin_count;
  if (f.pin_count == 0 && !f.in_lru) {
    lru_.push_front(id);
    f.lru_it = lru_.begin();
    f.in_lru = true;
  }
}

Status BufferPool::EvictOne() {
  // Evict the least recently unpinned frame.
  if (lru_.empty()) {
    return Status::Internal("buffer pool exhausted: all pages pinned");
  }
  PageId victim = lru_.back();
  lru_.pop_back();
  auto it = frames_.find(victim);
  if (it != frames_.end()) {
    Frame& f = it->second;
    if (f.dirty) {
      SCISPARQL_RETURN_NOT_OK(pager_->WritePage(victim, f.data.data()));
    }
    frames_.erase(it);
    ++evictions_;
    Metrics().evictions.Add();
  }
  return Status::OK();
}

Status BufferPool::FlushAll() {
  for (auto& [id, f] : frames_) {
    if (f.dirty) {
      SCISPARQL_RETURN_NOT_OK(pager_->WritePage(id, f.data.data()));
      f.dirty = false;
    }
  }
  return pager_->Sync();
}

Status BufferPool::Reset() {
  SCISPARQL_RETURN_NOT_OK(FlushAll());
  frames_.clear();
  lru_.clear();
  return Status::OK();
}

}  // namespace relstore
}  // namespace scisparql
