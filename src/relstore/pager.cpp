#include "relstore/pager.h"

#include <cstring>

namespace scisparql {
namespace relstore {

Result<std::unique_ptr<Pager>> Pager::Open(const std::string& path,
                                           uint32_t page_size,
                                           storage::Vfs* vfs) {
  std::unique_ptr<Pager> pager(new Pager(path, page_size));
  if (path.empty()) return pager;  // in-memory mode

  if (vfs == nullptr) vfs = storage::DefaultVfs();
  SCISPARQL_ASSIGN_OR_RETURN(
      pager->file_, vfs->Open(path, storage::Vfs::OpenMode::kReadWrite));
  SCISPARQL_ASSIGN_OR_RETURN(uint64_t size, pager->file_->Size());
  pager->page_count_ = static_cast<PageId>(size / page_size);
  return pager;
}

PageId Pager::Allocate() {
  PageId id = page_count_++;
  if (file_ == nullptr) {
    memory_.emplace_back(page_size_, 0);
  } else {
    // The zero fill keeps ReadPage of a never-written page well-defined;
    // Allocate cannot report I/O errors, so a failure here surfaces as a
    // short read / failed write on the first real use of the page.
    std::vector<uint8_t> zero(page_size_, 0);
    Status st = file_->WriteAt(static_cast<uint64_t>(id) * page_size_,
                               zero.data(), page_size_);
    (void)st;
    ++physical_writes_;
  }
  return id;
}

Status Pager::ReadPage(PageId id, uint8_t* buf) {
  if (id >= page_count_) return Status::OutOfRange("page id out of range");
  ++physical_reads_;
  if (file_ == nullptr) {
    std::memcpy(buf, memory_[id].data(), page_size_);
    return Status::OK();
  }
  SCISPARQL_ASSIGN_OR_RETURN(
      size_t got,
      file_->ReadAt(static_cast<uint64_t>(id) * page_size_, buf, page_size_));
  if (got != page_size_) return Status::IoError("short page read");
  return Status::OK();
}

Status Pager::WritePage(PageId id, const uint8_t* buf) {
  if (id >= page_count_) return Status::OutOfRange("page id out of range");
  ++physical_writes_;
  if (file_ == nullptr) {
    std::memcpy(memory_[id].data(), buf, page_size_);
    return Status::OK();
  }
  return file_->WriteAt(static_cast<uint64_t>(id) * page_size_, buf,
                        page_size_);
}

Status Pager::Sync() {
  if (file_ != nullptr) return file_->Sync();
  return Status::OK();
}

}  // namespace relstore
}  // namespace scisparql
