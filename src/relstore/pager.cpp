#include "relstore/pager.h"

#include <cstring>

namespace scisparql {
namespace relstore {

Pager::~Pager() {
  if (file_ != nullptr) {
    std::fflush(file_);
    std::fclose(file_);
  }
}

Result<std::unique_ptr<Pager>> Pager::Open(const std::string& path,
                                           uint32_t page_size) {
  std::unique_ptr<Pager> pager(new Pager(path, page_size));
  if (path.empty()) return pager;  // in-memory mode

  // Open existing or create; "a+b" would force append semantics, so probe
  // with r+b first and fall back to w+b.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) f = std::fopen(path.c_str(), "w+b");
  if (f == nullptr) {
    return Status::IoError("cannot open page file: " + path);
  }
  pager->file_ = f;
  if (std::fseek(f, 0, SEEK_END) != 0) {
    return Status::IoError("seek failed on: " + path);
  }
  long size = std::ftell(f);
  pager->page_count_ = static_cast<PageId>(size / page_size);
  return pager;
}

PageId Pager::Allocate() {
  PageId id = page_count_++;
  if (file_ == nullptr) {
    memory_.emplace_back(page_size_, 0);
  } else {
    std::vector<uint8_t> zero(page_size_, 0);
    std::fseek(file_, static_cast<long>(id) * page_size_, SEEK_SET);
    std::fwrite(zero.data(), 1, page_size_, file_);
    ++physical_writes_;
  }
  return id;
}

Status Pager::ReadPage(PageId id, uint8_t* buf) {
  if (id >= page_count_) return Status::OutOfRange("page id out of range");
  ++physical_reads_;
  if (file_ == nullptr) {
    std::memcpy(buf, memory_[id].data(), page_size_);
    return Status::OK();
  }
  if (std::fseek(file_, static_cast<long>(id) * page_size_, SEEK_SET) != 0) {
    return Status::IoError("seek failed");
  }
  if (std::fread(buf, 1, page_size_, file_) != page_size_) {
    return Status::IoError("short page read");
  }
  return Status::OK();
}

Status Pager::WritePage(PageId id, const uint8_t* buf) {
  if (id >= page_count_) return Status::OutOfRange("page id out of range");
  ++physical_writes_;
  if (file_ == nullptr) {
    std::memcpy(memory_[id].data(), buf, page_size_);
    return Status::OK();
  }
  if (std::fseek(file_, static_cast<long>(id) * page_size_, SEEK_SET) != 0) {
    return Status::IoError("seek failed");
  }
  if (std::fwrite(buf, 1, page_size_, file_) != page_size_) {
    return Status::IoError("short page write");
  }
  return Status::OK();
}

Status Pager::Sync() {
  if (file_ != nullptr && std::fflush(file_) != 0) {
    return Status::IoError("fflush failed");
  }
  return Status::OK();
}

}  // namespace relstore
}  // namespace scisparql
