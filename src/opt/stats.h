#ifndef SCISPARQL_OPT_STATS_H_
#define SCISPARQL_OPT_STATS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "rdf/graph.h"
#include "rdf/term.h"

namespace scisparql {
namespace opt {

/// Small equi-depth (quantile) histogram. Stores B bucket boundaries such
/// that each bucket holds ~count/B of the input values; selectivity lookups
/// interpolate linearly inside a bucket. Used two ways by the optimizer:
/// over *index bucket sizes* (fan-out skew per index order) and over the
/// *numeric object values* of a predicate (range-FILTER selectivity).
class EquiDepthHistogram {
 public:
  static constexpr int kDefaultBuckets = 16;

  EquiDepthHistogram() = default;
  static EquiDepthHistogram Build(std::vector<double> values,
                                  int buckets = kDefaultBuckets);

  /// Builds from (value, multiplicity) pairs without materializing one
  /// entry per occurrence; produces exactly the same histogram Build()
  /// would on the multiplicity-expanded input. Non-positive
  /// multiplicities are ignored.
  static EquiDepthHistogram BuildWeighted(
      std::vector<std::pair<double, int64_t>> weighted,
      int buckets = kDefaultBuckets);

  bool empty() const { return count_ == 0; }
  int64_t count() const { return count_; }
  double min() const { return min_; }
  double max() const { return bounds_.empty() ? min_ : bounds_.back(); }

  /// Estimated fraction of values <= x, in [0, 1].
  double FractionLeq(double x) const;

  /// Quantile q in [0, 1] (q = 0.5 is the median).
  double Quantile(double q) const;

  std::string ToString() const;

 private:
  double min_ = 0;
  std::vector<double> bounds_;  // upper bound of each bucket, ascending
  int64_t count_ = 0;
};

/// The hash-index orders of rdf::Graph whose fan-out distributions the
/// collector summarizes.
enum class IndexOrder { kS, kP, kO, kSP, kPO };

const char* IndexOrderName(IndexOrder order);

/// Per-graph statistics for the cost-based join-order optimizer
/// (Section 5.4): total triple count, per-predicate triple counts and
/// distinct subject/object counts, plus equi-depth histograms. Counters
/// are maintained *incrementally* through the GraphListener hook (exact
/// under interleaved INSERT/DELETE, including duplicates); histograms are
/// derived summaries, rebuilt lazily once enough mutations accumulate.
///
/// Thread-safe: an internal shared mutex lets planner reads (shared
/// engine lock) run against listener mutations, which under the
/// concurrent write path also execute on the shared engine lock
/// (serialized per graph by the delta mutex, but concurrent with
/// readers). Histogram accessors return by value so a returned summary
/// can never be invalidated by a concurrent lazy rebuild.
class GraphStats : public GraphListener {
 public:
  GraphStats() = default;
  ~GraphStats() override;

  GraphStats(const GraphStats&) = delete;
  GraphStats& operator=(const GraphStats&) = delete;

  /// Builds the counters from the graph's current content and registers
  /// this collector as the graph's mutation listener. Safe to call again
  /// (e.g. after the graph object was replaced by a snapshot load).
  void Attach(Graph* graph);

  /// Unregisters the listener; counters keep their last values.
  void Detach();

  /// Recomputes every counter from scratch (the property tests diff this
  /// against the incrementally maintained state).
  void Rebuild();

  // GraphListener:
  void OnAdd(const Triple& t) override;
  void OnRemove(const Triple& t) override;
  void OnClear() override;
  /// The graph died under us (DROP GRAPH / CLEAR ALL): orphan the
  /// collector. Counters stay readable; the registry re-attaches on the
  /// next EnsureStats for whatever graph next uses this slot.
  void OnGraphDestroyed() override {
    std::unique_lock<std::shared_mutex> lock(mu_);
    graph_ = nullptr;
  }

  // --- Counters. ---

  int64_t total_triples() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return total_;
  }
  int64_t num_predicates() const;
  int64_t PredicateCount(const Term& p) const;
  /// Distinct subjects / objects among triples with predicate `p`.
  int64_t DistinctSubjects(const Term& p) const;
  int64_t DistinctObjects(const Term& p) const;
  /// Distinct subjects / objects across the whole graph.
  int64_t DistinctSubjects() const;
  int64_t DistinctObjects() const;

  // --- Histograms. ---

  /// Fan-out histogram of one index order (distribution of bucket sizes).
  /// Rebuilt lazily when the graph has drifted since the last build.
  /// Returned by value: a concurrent rebuild would invalidate references.
  EquiDepthHistogram IndexHistogram(IndexOrder order) const;

  /// Histogram over the numeric object values of predicate `p`, for
  /// range-FILTER selectivity. Empty optional when the predicate has no
  /// numeric objects. `numeric_fraction` (optional out) receives the
  /// fraction of the predicate's objects that are numeric.
  std::optional<EquiDepthHistogram> ObjectValueHistogram(
      const Term& p, double* numeric_fraction = nullptr) const;

  /// Human-readable summary (the STATS verb's optimizer section).
  std::string ReportText() const;

  const Graph* graph() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return graph_;
  }

 private:
  struct PredicateStats {
    int64_t count = 0;
    // Multiplicity maps so distinct counts survive deletes of duplicates.
    std::unordered_map<Term, int64_t, TermHash> subjects;
    std::unordered_map<Term, int64_t, TermHash> objects;
    // Numeric-object summary feeding the value histogram.
    int64_t numeric_objects = 0;
    mutable EquiDepthHistogram value_hist;
    mutable uint64_t value_hist_version = 0;
    mutable bool value_hist_built = false;
  };

  struct Multiset {
    std::unordered_map<Term, int64_t, TermHash> counts;
    void Inc(const Term& t) { ++counts[t]; }
    void Dec(const Term& t) {
      auto it = counts.find(t);
      if (it == counts.end()) return;
      if (--it->second <= 0) counts.erase(it);
    }
  };

  // Unlocked internals; every public entry point takes mu_ first
  // (unique for mutation and lazy rebuilds, shared for counter reads).
  void RebuildLocked();
  void ApplyDelta(const Triple& t, int64_t delta);
  void ResetCounters();
  bool HistogramsStale() const;
  void RebuildIndexHistograms() const;
  const EquiDepthHistogram& IndexHistogramLocked(IndexOrder order) const;
  const PredicateStats* FindPred(const Term& p) const;

  /// Term used to key array-valued objects: hashing an array term would
  /// materialize proxies (potentially remote I/O), so all array objects
  /// share one sentinel bucket and count as a single distinct value.
  static const Term& ArraySentinel();
  static const Term& NormalizeObject(const Term& o);

  Graph* graph_ = nullptr;
  int64_t total_ = 0;
  std::unordered_map<Term, PredicateStats, TermHash> preds_;
  Multiset subjects_;
  Multiset objects_;

  // Guards every member. Listener callbacks and Rebuild/Attach take it
  // unique; counter getters take it shared; histogram accessors take it
  // unique because the lazy rebuild mutates the caches below even on the
  // const read path.
  mutable std::shared_mutex mu_;
  // Lazy histogram cache: rebuilt when `built_version_` drifts from the
  // graph version by more than a fraction of the triple count.
  mutable EquiDepthHistogram index_hist_[5];
  mutable uint64_t built_version_ = 0;
  mutable bool hist_built_ = false;
  uint64_t mutations_ = 0;
};

/// Maps graphs to their statistics collectors. Owned by the engine facade
/// (SSDM); the executor receives a const pointer through ExecOptions and
/// falls back to raw index-bucket estimates for graphs without stats.
class StatsRegistry {
 public:
  /// Creates (or re-attaches) the collector for `graph`. Also
  /// garbage-collects collectors orphaned by graph destruction
  /// (DROP GRAPH / CLEAR ALL), so entries keyed by freed addresses do
  /// not accumulate across the engine's stats-lifecycle calls.
  GraphStats* Attach(Graph* graph);

  /// Drops the collector for `graph` (e.g. the graph is being destroyed).
  void Remove(const Graph* graph);

  void Clear();

  const GraphStats* Find(const Graph* graph) const;

  /// Concatenated ReportText of every registered collector.
  std::string ReportText() const;

 private:
  std::map<const Graph*, std::unique_ptr<GraphStats>> stats_;
};

}  // namespace opt
}  // namespace scisparql

#endif  // SCISPARQL_OPT_STATS_H_
