#ifndef SCISPARQL_OPT_PLANNER_H_
#define SCISPARQL_OPT_PLANNER_H_

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "opt/stats.h"
#include "rdf/graph.h"
#include "rdf/term.h"

namespace scisparql {
namespace opt {

/// Comparison shape of a FILTER conjunct usable for selectivity: ?v op c.
enum class RangeOp { kLt, kLe, kGt, kGe, kEq, kNe };

/// A sargable FILTER fragment: variable compared against a numeric
/// constant. The caller (executor) extracts these from the FILTERs pushed
/// into a BGP; the estimator folds them into pattern cardinalities.
struct FilterHint {
  std::string var;
  RangeOp op = RangeOp::kEq;
  double bound = 0;
};

/// One triple pattern, abstracted for estimation: each position is either
/// a resolved constant (already-bound variables are resolved by the
/// caller) or a variable name.
struct PatternDesc {
  std::optional<Term> s, p, o;          // constants
  std::string s_var, p_var, o_var;      // variable names ("" = constant)
  bool is_path = false;                 // complex property path

  std::vector<std::string> Vars() const;
};

/// Cardinality estimator over one graph. With statistics it combines the
/// graph's exact index-bucket sizes (constant positions) with
/// distinct-value counts (join-variable positions) and per-predicate value
/// histograms (range FILTERs); without statistics it degrades to the
/// index-bucket + fixed-discount heuristic.
class CardinalityEstimator {
 public:
  CardinalityEstimator(const Graph* graph, const GraphStats* stats)
      : graph_(graph), stats_(stats) {}

  /// Estimated matches of `d` given that variables in `bound` will already
  /// be bound (to unknown values) when the pattern executes.
  int64_t Estimate(const PatternDesc& d, const std::set<std::string>& bound,
                   const std::vector<FilterHint>& hints = {}) const;

  /// Selectivity in (0, 1] of `hint` applied to the object of predicate
  /// `p`, from the predicate's value histogram; 1.0 when unknown.
  double HintSelectivity(const Term& p, const FilterHint& hint) const;

  bool has_stats() const { return stats_ != nullptr; }

 private:
  const Graph* graph_;
  const GraphStats* stats_;  // may be null
};

/// One step of a BGP plan: which input pattern runs at this position, its
/// estimated per-scan cardinality, and the estimated cumulative number of
/// rows after joining it (what EXPLAIN compares against actual counts).
struct PlannedStep {
  size_t input_index = 0;
  int64_t estimate = 0;
  int64_t cumulative = 0;
};

struct BgpPlan {
  std::vector<PlannedStep> steps;
  bool reordered = false;   // order differs from the textual one
  double cost = 0;          // sum of estimated intermediate result sizes
};

/// Physical operator executing one step of an ID-space BGP pipeline: the
/// first pattern is always an index scan over the best-fitting permutation;
/// every later pattern joins the accumulated intermediate result with its
/// own index scan via merge or hash.
enum class PhysicalOp {
  kIndexScan,
  kMergeJoin,
  kHashJoin,
};

const char* PhysicalOpName(PhysicalOp op);

/// Cost rule for one join step over the ID space. `merge_possible` means
/// both inputs arrive sorted on the single shared join variable — the
/// permutation indexes provide sort order for free and no sort operator
/// exists, so a merge join is then strictly cheapest (one interleaved
/// pass, no build table). Otherwise a hash join, building on the smaller
/// input; `*build_left` reports which side that is.
PhysicalOp ChoosePhysicalJoin(bool merge_possible, double left_rows,
                              double right_rows, bool* build_left);

/// Join-order enumeration over the conjuncts of a basic graph pattern:
/// exhaustive dynamic programming (Selinger-style over subsets, cost = sum
/// of intermediate cardinalities) for BGPs up to `dp_limit` patterns,
/// greedy smallest-estimate-first beyond that. `hints` are sargable
/// FILTER fragments pushed into this BGP, matched to patterns by
/// variable name inside the estimator.
BgpPlan PlanBgp(const std::vector<PatternDesc>& patterns,
                const std::vector<FilterHint>& hints,
                const CardinalityEstimator& est, size_t dp_limit = 6);

}  // namespace opt
}  // namespace scisparql

#endif  // SCISPARQL_OPT_PLANNER_H_
