#include "opt/planner.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

namespace scisparql {
namespace opt {

namespace {

constexpr double kMaxCard = 1e15;
constexpr double kMinSelectivity = 1e-4;

int64_t ClampCard(double c) {
  c = std::clamp(c, 1.0, kMaxCard);
  return static_cast<int64_t>(c);
}

}  // namespace

const char* PhysicalOpName(PhysicalOp op) {
  switch (op) {
    case PhysicalOp::kIndexScan:
      return "index-scan";
    case PhysicalOp::kMergeJoin:
      return "merge-join";
    case PhysicalOp::kHashJoin:
      return "hash-join";
  }
  return "?";
}

PhysicalOp ChoosePhysicalJoin(bool merge_possible, double left_rows,
                              double right_rows, bool* build_left) {
  if (build_left != nullptr) *build_left = left_rows <= right_rows;
  if (merge_possible) return PhysicalOp::kMergeJoin;
  return PhysicalOp::kHashJoin;
}

std::vector<std::string> PatternDesc::Vars() const {
  std::vector<std::string> out;
  if (!s_var.empty()) out.push_back(s_var);
  if (!p_var.empty()) out.push_back(p_var);
  if (!o_var.empty()) out.push_back(o_var);
  return out;
}

double CardinalityEstimator::HintSelectivity(const Term& p,
                                             const FilterHint& hint) const {
  if (stats_ == nullptr) return 1.0;
  double numeric_fraction = 1.0;
  std::optional<EquiDepthHistogram> hist =
      stats_->ObjectValueHistogram(p, &numeric_fraction);
  if (!hist.has_value()) return 1.0;
  double sel;
  switch (hint.op) {
    case RangeOp::kLt:
    case RangeOp::kLe:
      sel = hist->FractionLeq(hint.bound);
      break;
    case RangeOp::kGt:
    case RangeOp::kGe:
      sel = 1.0 - hist->FractionLeq(hint.bound);
      break;
    case RangeOp::kEq:
      sel = 1.0 / static_cast<double>(
                      std::max<int64_t>(1, stats_->DistinctObjects(p)));
      break;
    case RangeOp::kNe:
      sel = 1.0;
      break;
    default:
      sel = 1.0;
      break;
  }
  // A non-numeric object makes the comparison an error, which a FILTER
  // maps to false, so only the numeric fraction can survive at all.
  sel *= numeric_fraction;
  return std::clamp(sel, kMinSelectivity, 1.0);
}

int64_t CardinalityEstimator::Estimate(
    const PatternDesc& d, const std::set<std::string>& bound,
    const std::vector<FilterHint>& hints) const {
  auto later = [&bound](const std::string& var) {
    return !var.empty() && bound.count(var) > 0;
  };

  if (d.is_path) {
    // Complex property paths have no per-edge statistics; keep the
    // endpoint heuristic: bound endpoints make closures dramatically
    // cheaper than free-floating ones.
    int64_t base = static_cast<int64_t>(graph_->size()) + 1;
    if (d.s.has_value() || d.o.has_value()) return base / 10 + 1;
    if (later(d.s_var) || later(d.o_var)) return base / 2 + 1;
    return base;
  }

  bool s_later = later(d.s_var);
  bool p_later = later(d.p_var);
  bool o_later = later(d.o_var);

  // Constant positions resolve to exact index-bucket sizes.
  int64_t base = graph_->EstimateMatches(d.s, d.p, d.o) + 1;

  if (stats_ == nullptr) {
    // Without the statistics registry, fall back to the aggregated counts
    // of the ID-space permutation indexes when they happen to be built
    // (PeekIdIndexes never forces a build): total / distinct is the exact
    // mean bucket size per position, a far better join-variable discount
    // than the fixed one below.
    const IdIndexes* idx = graph_->PeekIdIndexes();
    if (idx != nullptr && !idx->spo.empty()) {
      // The permutations cover only the folded base table; pending delta
      // operations are extra rows the ID-join path will merge in, so fold
      // them into the total to keep the mean bucket sizes honest under
      // sustained writes.
      double n =
          static_cast<double>(idx->spo.size() + graph_->delta_ops());
      double est = static_cast<double>(base);
      auto discount = [&](size_t distinct) {
        double avg = n / static_cast<double>(std::max<size_t>(1, distinct));
        est = std::max(1.0, est * (avg / n));
      };
      if (s_later) discount(idx->distinct_s);
      if (p_later) discount(idx->distinct_p);
      if (o_later) discount(idx->distinct_o);
      return ClampCard(est);
    }
    // Fallback heuristic (the pre-statistics behavior): each join
    // variable quarters the estimate.
    int later_count = (s_later ? 1 : 0) + (p_later ? 1 : 0) + (o_later ? 1 : 0);
    int64_t est = base;
    for (int i = 0; i < later_count; ++i) est = est / 4 + 1;
    return est;
  }

  double est = static_cast<double>(base);
  if (d.p.has_value()) {
    // Known predicate: distinct-value counts give the expected fan-out of
    // a join variable (count / distinct ~ mean index-bucket size).
    double ds = static_cast<double>(
        std::max<int64_t>(1, stats_->DistinctSubjects(*d.p)));
    double dobj = static_cast<double>(
        std::max<int64_t>(1, stats_->DistinctObjects(*d.p)));
    if (d.s.has_value() && !d.o.has_value() && o_later) {
      est = std::max(1.0, est / dobj);
    } else if (d.o.has_value() && !d.s.has_value() && s_later) {
      est = std::max(1.0, est / ds);
    } else if (!d.s.has_value() && !d.o.has_value()) {
      if (s_later) est = std::max(1.0, est / ds);
      if (o_later) est = std::max(1.0, est / dobj);
    }
    // Sargable FILTERs on a free object variable shrink the scan by the
    // histogram selectivity.
    if (!d.o_var.empty() && !o_later) {
      for (const FilterHint& h : hints) {
        if (h.var == d.o_var) est *= HintSelectivity(*d.p, h);
      }
    }
  } else {
    // Variable predicate: discount by global distinct counts.
    if (p_later) {
      est = std::max(
          1.0, est / static_cast<double>(
                         std::max<int64_t>(1, stats_->num_predicates())));
    }
    if (s_later && !d.s.has_value()) {
      est = std::max(
          1.0, est / static_cast<double>(
                         std::max<int64_t>(1, stats_->DistinctSubjects())));
    }
    if (o_later && !d.o.has_value()) {
      est = std::max(
          1.0, est / static_cast<double>(
                         std::max<int64_t>(1, stats_->DistinctObjects())));
    }
  }
  return ClampCard(est);
}

namespace {

struct DpEntry {
  double cost = std::numeric_limits<double>::infinity();
  double card = 1.0;
  int last = -1;
  uint32_t prev = 0;
};

BgpPlan FinishPlan(const std::vector<PatternDesc>& patterns,
                   const std::vector<FilterHint>& hints,
                   const CardinalityEstimator& est,
                   std::vector<size_t> order) {
  BgpPlan plan;
  std::set<std::string> bound;
  double card = 1.0;
  double cost = 0.0;
  for (size_t k = 0; k < order.size(); ++k) {
    const PatternDesc& d = patterns[order[k]];
    int64_t step = est.Estimate(d, bound, hints);
    card = std::min(kMaxCard, card * static_cast<double>(step));
    cost += card;
    PlannedStep ps;
    ps.input_index = order[k];
    ps.estimate = step;
    ps.cumulative = ClampCard(card);
    plan.steps.push_back(ps);
    if (order[k] != k) plan.reordered = true;
    for (const std::string& v : d.Vars()) bound.insert(v);
  }
  plan.cost = cost;
  return plan;
}

}  // namespace

BgpPlan PlanBgp(const std::vector<PatternDesc>& patterns,
                const std::vector<FilterHint>& hints,
                const CardinalityEstimator& est, size_t dp_limit) {
  const size_t n = patterns.size();
  std::vector<size_t> order;
  if (n <= 1) {
    order.resize(n);
    for (size_t i = 0; i < n; ++i) order[i] = i;
    return FinishPlan(patterns, hints, est, std::move(order));
  }

  if (n <= dp_limit && n <= 16) {
    // Exhaustive DP over subsets: dp[mask] is the cheapest way to join
    // exactly the patterns in `mask`, with cost = sum of intermediate
    // result sizes (the C_out cost model).
    const uint32_t full = (1u << n) - 1;
    std::vector<DpEntry> dp(full + 1);
    dp[0].cost = 0.0;
    dp[0].card = 1.0;
    std::vector<std::set<std::string>> mask_vars(full + 1);
    for (uint32_t mask = 0; mask <= full; ++mask) {
      if (std::isinf(dp[mask].cost)) continue;
      if (mask != 0) {
        // Vars of this mask: extend from the predecessor (already built).
        mask_vars[mask] = mask_vars[dp[mask].prev];
        for (const std::string& v :
             patterns[static_cast<size_t>(dp[mask].last)].Vars()) {
          mask_vars[mask].insert(v);
        }
      }
      for (size_t i = 0; i < n; ++i) {
        if (mask & (1u << i)) continue;
        uint32_t next = mask | (1u << i);
        int64_t step = est.Estimate(patterns[i], mask_vars[mask], hints);
        double card =
            std::min(kMaxCard, dp[mask].card * static_cast<double>(step));
        double cost = dp[mask].cost + card;
        if (cost < dp[next].cost) {
          dp[next].cost = cost;
          dp[next].card = card;
          dp[next].last = static_cast<int>(i);
          dp[next].prev = mask;
        }
      }
    }
    order.resize(n);
    uint32_t mask = full;
    for (size_t k = n; k-- > 0;) {
      order[k] = static_cast<size_t>(dp[mask].last);
      mask = dp[mask].prev;
    }
    return FinishPlan(patterns, hints, est, std::move(order));
  }

  // Greedy: repeatedly take the cheapest remaining pattern, preferring
  // patterns connected to the already-bound variables (avoids accidental
  // cartesian products that the estimate alone might rank well).
  std::vector<bool> used(n, false);
  std::set<std::string> bound;
  for (size_t k = 0; k < n; ++k) {
    size_t best = n;
    int64_t best_est = 0;
    bool best_connected = false;
    for (size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      // A pattern with no variables is always "connected" (pure check).
      bool connected = bound.empty() || patterns[i].Vars().empty();
      for (const std::string& v : patterns[i].Vars()) {
        if (bound.count(v) > 0) {
          connected = true;
          break;
        }
      }
      int64_t e = est.Estimate(patterns[i], bound, hints);
      if (best == n || (connected && !best_connected) ||
          (connected == best_connected && e < best_est)) {
        best = i;
        best_est = e;
        best_connected = connected;
      }
    }
    used[best] = true;
    order.push_back(best);
    for (const std::string& v : patterns[best].Vars()) bound.insert(v);
  }
  return FinishPlan(patterns, hints, est, std::move(order));
}

}  // namespace opt
}  // namespace scisparql
