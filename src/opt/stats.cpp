#include "opt/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace scisparql {
namespace opt {

// ---------------------------------------------------------------------------
// EquiDepthHistogram
// ---------------------------------------------------------------------------

EquiDepthHistogram EquiDepthHistogram::Build(std::vector<double> values,
                                             int buckets) {
  EquiDepthHistogram h;
  if (values.empty()) return h;
  if (buckets < 1) buckets = 1;
  std::sort(values.begin(), values.end());
  h.count_ = static_cast<int64_t>(values.size());
  h.min_ = values.front();
  size_t n = values.size();
  size_t b = std::min<size_t>(static_cast<size_t>(buckets), n);
  h.bounds_.reserve(b);
  for (size_t k = 1; k <= b; ++k) {
    // Upper bound of bucket k: the ceil(k*n/b)-th smallest value.
    size_t idx = (k * n) / b;
    if (idx == 0) idx = 1;
    h.bounds_.push_back(values[idx - 1]);
  }
  return h;
}

EquiDepthHistogram EquiDepthHistogram::BuildWeighted(
    std::vector<std::pair<double, int64_t>> weighted, int buckets) {
  EquiDepthHistogram h;
  weighted.erase(std::remove_if(weighted.begin(), weighted.end(),
                                [](const auto& w) { return w.second <= 0; }),
                 weighted.end());
  if (weighted.empty()) return h;
  if (buckets < 1) buckets = 1;
  std::sort(weighted.begin(), weighted.end());
  int64_t total = 0;
  for (const auto& [value, n] : weighted) {
    (void)value;
    total += n;
  }
  h.count_ = total;
  h.min_ = weighted.front().first;
  size_t b = static_cast<size_t>(std::min<int64_t>(buckets, total));
  h.bounds_.reserve(b);
  // Upper bound of bucket k is the value at 1-based rank (k*total)/b of
  // the expanded multiset; ranks are nondecreasing in k, so one forward
  // walk over the cumulative counts finds them all.
  size_t wi = 0;
  int64_t cum = weighted[0].second;
  for (size_t k = 1; k <= b; ++k) {
    int64_t rank = (static_cast<int64_t>(k) * total) / static_cast<int64_t>(b);
    if (rank == 0) rank = 1;
    while (cum < rank) {
      ++wi;
      cum += weighted[wi].second;
    }
    h.bounds_.push_back(weighted[wi].first);
  }
  return h;
}

double EquiDepthHistogram::FractionLeq(double x) const {
  if (count_ == 0) return 0.0;
  if (x < min_) return 0.0;
  size_t b = bounds_.size();
  if (x >= bounds_.back()) return 1.0;
  // First bucket whose upper bound exceeds x.
  size_t i = static_cast<size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end(), x) - bounds_.begin());
  double lo = i == 0 ? min_ : bounds_[i - 1];
  double hi = bounds_[i];
  double within = hi > lo ? (x - lo) / (hi - lo) : 1.0;
  within = std::clamp(within, 0.0, 1.0);
  return (static_cast<double>(i) + within) / static_cast<double>(b);
}

double EquiDepthHistogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  size_t b = bounds_.size();
  double pos = q * static_cast<double>(b);
  size_t i = std::min<size_t>(static_cast<size_t>(pos), b - 1);
  double lo = i == 0 ? min_ : bounds_[i - 1];
  double hi = bounds_[i];
  double within = pos - static_cast<double>(i);
  return lo + (hi - lo) * std::clamp(within, 0.0, 1.0);
}

std::string EquiDepthHistogram::ToString() const {
  std::ostringstream out;
  out << "n=" << count_ << " min=" << min_;
  if (!bounds_.empty()) {
    out << " q50=" << Quantile(0.5) << " q90=" << Quantile(0.9)
        << " max=" << bounds_.back();
  }
  return out.str();
}

const char* IndexOrderName(IndexOrder order) {
  switch (order) {
    case IndexOrder::kS:
      return "S";
    case IndexOrder::kP:
      return "P";
    case IndexOrder::kO:
      return "O";
    case IndexOrder::kSP:
      return "SP";
    case IndexOrder::kPO:
      return "PO";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// GraphStats
// ---------------------------------------------------------------------------

GraphStats::~GraphStats() { Detach(); }

const Term& GraphStats::ArraySentinel() {
  static const Term sentinel = Term::Iri("scisparql:stats:array");
  return sentinel;
}

const Term& GraphStats::NormalizeObject(const Term& o) {
  return o.kind() == Term::Kind::kArray ? ArraySentinel() : o;
}

void GraphStats::Attach(Graph* graph) {
  Detach();
  std::unique_lock<std::shared_mutex> lock(mu_);
  graph_ = graph;
  RebuildLocked();
  graph_->SetListener(this);
}

void GraphStats::Detach() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (graph_ != nullptr && graph_->listener() == this) {
    graph_->SetListener(nullptr);
  }
  graph_ = nullptr;
}

void GraphStats::ResetCounters() {
  total_ = 0;
  preds_.clear();
  subjects_.counts.clear();
  objects_.counts.clear();
  hist_built_ = false;
  ++mutations_;
}

void GraphStats::Rebuild() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  RebuildLocked();
}

void GraphStats::RebuildLocked() {
  ResetCounters();
  if (graph_ == nullptr) return;
  graph_->ForEach([this](const Triple& t) { ApplyDelta(t, +1); });
}

void GraphStats::ApplyDelta(const Triple& t, int64_t delta) {
  const Term& obj = NormalizeObject(t.o);
  total_ += delta;
  ++mutations_;
  PredicateStats& ps = preds_[t.p];
  ps.count += delta;
  ps.value_hist_built = false;
  if (t.o.IsNumeric()) ps.numeric_objects += delta;
  if (delta > 0) {
    ps.subjects[t.s] += 1;
    ps.objects[obj] += 1;
    subjects_.Inc(t.s);
    objects_.Inc(obj);
  } else {
    auto dec = [](std::unordered_map<Term, int64_t, TermHash>& m,
                  const Term& key) {
      auto it = m.find(key);
      if (it == m.end()) return;
      if (--it->second <= 0) m.erase(it);
    };
    dec(ps.subjects, t.s);
    dec(ps.objects, obj);
    subjects_.Dec(t.s);
    objects_.Dec(obj);
  }
  if (ps.count <= 0 && ps.subjects.empty() && ps.objects.empty()) {
    preds_.erase(t.p);
  }
}

void GraphStats::OnAdd(const Triple& t) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  ApplyDelta(t, +1);
}

void GraphStats::OnRemove(const Triple& t) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  ApplyDelta(t, -1);
}

void GraphStats::OnClear() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  ResetCounters();
}

const GraphStats::PredicateStats* GraphStats::FindPred(const Term& p) const {
  auto it = preds_.find(p);
  return it == preds_.end() ? nullptr : &it->second;
}

int64_t GraphStats::num_predicates() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return static_cast<int64_t>(preds_.size());
}

int64_t GraphStats::PredicateCount(const Term& p) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const PredicateStats* ps = FindPred(p);
  return ps == nullptr ? 0 : ps->count;
}

int64_t GraphStats::DistinctSubjects(const Term& p) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const PredicateStats* ps = FindPred(p);
  return ps == nullptr ? 0 : static_cast<int64_t>(ps->subjects.size());
}

int64_t GraphStats::DistinctObjects(const Term& p) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const PredicateStats* ps = FindPred(p);
  return ps == nullptr ? 0 : static_cast<int64_t>(ps->objects.size());
}

int64_t GraphStats::DistinctSubjects() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return static_cast<int64_t>(subjects_.counts.size());
}

int64_t GraphStats::DistinctObjects() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return static_cast<int64_t>(objects_.counts.size());
}

bool GraphStats::HistogramsStale() const {
  if (!hist_built_) return true;
  if (graph_ == nullptr) return false;
  uint64_t drift = graph_->version() - built_version_;
  uint64_t slack = std::max<uint64_t>(
      64, static_cast<uint64_t>(std::max<int64_t>(total_, 0)) / 8);
  return drift > slack;
}

void GraphStats::RebuildIndexHistograms() const {
  // Fan-out distributions of the five index orders, derived from the
  // multiplicity maps (identical to the graph's hash-bucket sizes).
  std::vector<double> s_sizes, p_sizes, o_sizes, sp_sizes, po_sizes;
  for (const auto& [term, n] : subjects_.counts) {
    (void)term;
    s_sizes.push_back(static_cast<double>(n));
  }
  for (const auto& [term, n] : objects_.counts) {
    (void)term;
    o_sizes.push_back(static_cast<double>(n));
  }
  for (const auto& [pred, ps] : preds_) {
    (void)pred;
    p_sizes.push_back(static_cast<double>(ps.count));
    for (const auto& [s, n] : ps.subjects) {
      (void)s;
      sp_sizes.push_back(static_cast<double>(n));
    }
    for (const auto& [o, n] : ps.objects) {
      (void)o;
      po_sizes.push_back(static_cast<double>(n));
    }
  }
  index_hist_[0] = EquiDepthHistogram::Build(std::move(s_sizes));
  index_hist_[1] = EquiDepthHistogram::Build(std::move(p_sizes));
  index_hist_[2] = EquiDepthHistogram::Build(std::move(o_sizes));
  index_hist_[3] = EquiDepthHistogram::Build(std::move(sp_sizes));
  index_hist_[4] = EquiDepthHistogram::Build(std::move(po_sizes));
  built_version_ = graph_ == nullptr ? 0 : graph_->version();
  hist_built_ = true;
}

const EquiDepthHistogram& GraphStats::IndexHistogramLocked(
    IndexOrder order) const {
  if (HistogramsStale()) RebuildIndexHistograms();
  return index_hist_[static_cast<int>(order)];
}

EquiDepthHistogram GraphStats::IndexHistogram(IndexOrder order) const {
  // Unique even though const: the lazy rebuild mutates the cache. Copied
  // out so concurrent writers/rebuilds can never invalidate the result.
  std::unique_lock<std::shared_mutex> lock(mu_);
  return IndexHistogramLocked(order);
}

std::optional<EquiDepthHistogram> GraphStats::ObjectValueHistogram(
    const Term& p, double* numeric_fraction) const {
  std::unique_lock<std::shared_mutex> lock(mu_);  // see IndexHistogram
  const PredicateStats* ps = FindPred(p);
  if (ps == nullptr || ps->count <= 0 || ps->numeric_objects <= 0) {
    return std::nullopt;
  }
  if (numeric_fraction != nullptr) {
    *numeric_fraction = static_cast<double>(ps->numeric_objects) /
                        static_cast<double>(ps->count);
  }
  uint64_t version = graph_ == nullptr ? 0 : graph_->version();
  if (!ps->value_hist_built ||
      version - ps->value_hist_version >
          std::max<uint64_t>(64, static_cast<uint64_t>(ps->count) / 8)) {
    // Weighted quantiles straight from the (value, multiplicity) map —
    // no per-triple expansion, so a hot predicate with millions of
    // triples costs O(distinct values) on this read path.
    std::vector<std::pair<double, int64_t>> values;
    values.reserve(ps->objects.size());
    for (const auto& [obj, n] : ps->objects) {
      if (!obj.IsNumeric()) continue;
      Result<double> d = obj.AsDouble();
      if (!d.ok()) continue;
      values.push_back({*d, n});
    }
    ps->value_hist = EquiDepthHistogram::BuildWeighted(std::move(values));
    ps->value_hist_version = version;
    ps->value_hist_built = true;
  }
  if (ps->value_hist.empty()) return std::nullopt;
  return ps->value_hist;
}

std::string GraphStats::ReportText() const {
  // Unique: the index-histogram section below may lazily rebuild.
  std::unique_lock<std::shared_mutex> lock(mu_);
  std::ostringstream out;
  out << "triples=" << total_
      << " predicates=" << static_cast<int64_t>(preds_.size())
      << " distinct_subjects="
      << static_cast<int64_t>(subjects_.counts.size())
      << " distinct_objects="
      << static_cast<int64_t>(objects_.counts.size()) << "\n";
  // Predicates sorted by descending count, capped for readability.
  std::vector<std::pair<const Term*, const PredicateStats*>> order;
  order.reserve(preds_.size());
  for (const auto& [p, ps] : preds_) order.push_back({&p, &ps});
  std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
    if (a.second->count != b.second->count) {
      return a.second->count > b.second->count;
    }
    return Term::Compare(*a.first, *b.first) < 0;
  });
  size_t shown = std::min<size_t>(order.size(), 20);
  for (size_t i = 0; i < shown; ++i) {
    const auto& [p, ps] = order[i];
    out << "  pred " << p->ToString() << " count=" << ps->count
        << " distinct_s=" << ps->subjects.size()
        << " distinct_o=" << ps->objects.size() << "\n";
  }
  if (order.size() > shown) {
    out << "  (" << order.size() - shown << " more predicates)\n";
  }
  static constexpr IndexOrder kOrders[] = {IndexOrder::kS, IndexOrder::kP,
                                           IndexOrder::kO, IndexOrder::kSP,
                                           IndexOrder::kPO};
  for (IndexOrder ord : kOrders) {
    out << "  index " << IndexOrderName(ord) << " fanout "
        << IndexHistogramLocked(ord).ToString() << "\n";
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// StatsRegistry
// ---------------------------------------------------------------------------

GraphStats* StatsRegistry::Attach(Graph* graph) {
  // Garbage-collect collectors orphaned by graph destruction: their keys
  // are freed addresses, so they can never be looked up legitimately
  // again (a new graph reusing the address gets a fresh collector here).
  for (auto it = stats_.begin(); it != stats_.end();) {
    if (it->second->graph() == nullptr && it->first != graph) {
      it = stats_.erase(it);
    } else {
      ++it;
    }
  }
  auto& slot = stats_[graph];
  if (slot == nullptr) slot = std::make_unique<GraphStats>();
  slot->Attach(graph);
  return slot.get();
}

void StatsRegistry::Remove(const Graph* graph) {
  auto it = stats_.find(graph);
  if (it == stats_.end()) return;
  it->second->Detach();
  stats_.erase(it);
}

void StatsRegistry::Clear() {
  for (auto& [g, s] : stats_) s->Detach();
  stats_.clear();
}

const GraphStats* StatsRegistry::Find(const Graph* graph) const {
  auto it = stats_.find(graph);
  return it == stats_.end() ? nullptr : it->second.get();
}

std::string StatsRegistry::ReportText() const {
  std::ostringstream out;
  size_t i = 0;
  for (const auto& [g, s] : stats_) {
    (void)g;
    // Orphaned collectors (their graph was dropped) keep stale counters
    // for a dead graph — not part of the current dataset, so hide them.
    if (s->graph() == nullptr) continue;
    out << "graph[" << i++ << "] " << s->ReportText();
  }
  if (i == 0) out << "no graph statistics collected\n";
  return out.str();
}

}  // namespace opt
}  // namespace scisparql
