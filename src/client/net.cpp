#include "client/net.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>

#include "client/protocol.h"

namespace scisparql {
namespace client {
namespace net {

IoOutcome ReadAll(int fd, void* buf, size_t n) {
  uint8_t* p = static_cast<uint8_t*>(buf);
  while (n > 0) {
    ssize_t r = ::recv(fd, p, n, 0);
    if (r == 0) return IoOutcome::kClosed;
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return IoOutcome::kTimeout;
      return IoOutcome::kError;
    }
    p += r;
    n -= static_cast<size_t>(r);
  }
  return IoOutcome::kOk;
}

IoOutcome WriteAll(int fd, const void* buf, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(buf);
  while (n > 0) {
    ssize_t r = ::send(fd, p, n, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return IoOutcome::kTimeout;
      return IoOutcome::kError;
    }
    if (r == 0) return IoOutcome::kError;
    p += r;
    n -= static_cast<size_t>(r);
  }
  return IoOutcome::kOk;
}

Status IoStatus(IoOutcome outcome, const char* what) {
  switch (outcome) {
    case IoOutcome::kOk:
      return Status::OK();
    case IoOutcome::kClosed:
      return Status::IoError(std::string(what) + ": connection closed");
    case IoOutcome::kTimeout:
      return Status::DeadlineExceeded(std::string(what) + ": socket timeout");
    case IoOutcome::kError:
      return Status::IoError(std::string(what) + ": " + std::strerror(errno));
  }
  return Status::Internal("unreachable");
}

namespace {

/// Applies a scripted fault decision to one frame op on `fd`. Returns a
/// non-OK status when the frame must fail; tearing the connection down on
/// a drop makes the fault symmetric — the peer's next op fails too, like
/// a real connection reset.
Status ApplyFrameFaults(int fd, const char* what) {
  TransportFaults& faults = TransportFaults::Instance();
  if (!faults.enabled()) return Status::OK();
  TransportFaults::FrameDecision d = faults.OnFrame(fd);
  if (d.delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(d.delay_ms));
  }
  if (d.stall_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(d.stall_ms));
  }
  if (d.timeout) {
    return Status::DeadlineExceeded(std::string(what) +
                                    ": socket timeout (injected)");
  }
  if (d.drop) {
    ::shutdown(fd, SHUT_RDWR);
    return Status::IoError(std::string(what) +
                           ": connection dropped (injected)");
  }
  return Status::OK();
}

}  // namespace

Result<std::string> ReadFrame(int fd) {
  SCISPARQL_RETURN_NOT_OK(ApplyFrameFaults(fd, "read frame"));
  uint32_t len;
  IoOutcome r = ReadAll(fd, &len, 4);
  if (r != IoOutcome::kOk) return IoStatus(r, "read frame header");
  if (len > (64u << 20)) return Status::IoError("oversized frame");
  std::string payload(len, '\0');
  r = ReadAll(fd, payload.data(), len);
  if (r != IoOutcome::kOk) return IoStatus(r, "read frame body");
  return payload;
}

Status WriteFrame(int fd, const std::string& payload) {
  SCISPARQL_RETURN_NOT_OK(ApplyFrameFaults(fd, "write frame"));
  std::string framed = Frame(payload);
  return IoStatus(WriteAll(fd, framed.data(), framed.size()), "write frame");
}

bool PeerClosed(int fd) {
  char probe;
  ssize_t r = ::recv(fd, &probe, 1, MSG_PEEK | MSG_DONTWAIT);
  return r == 0;
}

Result<int> DialServer(const std::string& host, int port,
                       std::chrono::milliseconds timeout) {
  TransportFaults& faults = TransportFaults::Instance();
  if (faults.enabled()) {
    SCISPARQL_RETURN_NOT_OK(faults.OnDial(port));
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError("socket() failed");
  if (timeout.count() > 0) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
    tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINPROGRESS) {
      return Status::DeadlineExceeded("connect timeout");
    }
    return Status::IoError("connect() failed");
  }
  RegisterFd(fd, port);
  return fd;
}

void RegisterFd(int fd, int port) {
  TransportFaults::Instance().Register(fd, port);
}

void ForgetFd(int fd) { TransportFaults::Instance().Forget(fd); }

// --- TransportFaults. ---

TransportFaults& TransportFaults::Instance() {
  static TransportFaults* instance = new TransportFaults();
  return *instance;
}

void TransportFaults::Enable() {
  enabled_.store(true, std::memory_order_release);
}

void TransportFaults::Reset() {
  enabled_.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lock(mu_);
  ports_.clear();
  fired_.store(0, std::memory_order_relaxed);
  // fd registrations survive a Reset: connections outlive fault scripts.
}

void TransportFaults::Partition(int port) {
  std::lock_guard<std::mutex> lock(mu_);
  ports_[port].partitioned = true;
}

void TransportFaults::Heal(int port) {
  std::lock_guard<std::mutex> lock(mu_);
  ports_.erase(port);
}

void TransportFaults::Blackhole(int port, std::chrono::milliseconds stall) {
  std::lock_guard<std::mutex> lock(mu_);
  ports_[port].blackhole_ms = static_cast<int>(stall.count());
}

void TransportFaults::DropAfterFrames(int port, uint64_t frames) {
  std::lock_guard<std::mutex> lock(mu_);
  ports_[port].drop_after = static_cast<long long>(frames);
}

void TransportFaults::DelayFrames(int port,
                                  std::chrono::milliseconds delay) {
  std::lock_guard<std::mutex> lock(mu_);
  ports_[port].delay_ms = static_cast<int>(delay.count());
}

Status TransportFaults::OnDial(int port) {
  int stall_ms = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = ports_.find(port);
    if (it == ports_.end()) return Status::OK();
    if (it->second.partitioned) {
      fired_.fetch_add(1, std::memory_order_relaxed);
      return Status::IoError("connect() refused (injected partition)");
    }
    if (it->second.blackhole_ms >= 0) stall_ms = it->second.blackhole_ms;
  }
  if (stall_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms));
    fired_.fetch_add(1, std::memory_order_relaxed);
    return Status::DeadlineExceeded("connect timeout (injected blackhole)");
  }
  return Status::OK();
}

TransportFaults::FrameDecision TransportFaults::OnFrame(int fd) {
  FrameDecision d;
  std::lock_guard<std::mutex> lock(mu_);
  auto fit = fd_port_.find(fd);
  if (fit == fd_port_.end()) return d;
  auto pit = ports_.find(fit->second);
  if (pit == ports_.end()) return d;
  PortFaults& pf = pit->second;
  if (pf.delay_ms > 0) d.delay_ms = pf.delay_ms;
  if (pf.partitioned) {
    d.drop = true;
    fired_.fetch_add(1, std::memory_order_relaxed);
    return d;
  }
  if (pf.blackhole_ms >= 0) {
    d.stall_ms = pf.blackhole_ms;
    d.timeout = true;
    fired_.fetch_add(1, std::memory_order_relaxed);
    return d;
  }
  if (pf.drop_after >= 0) {
    if (pf.drop_after == 0) {
      pf.drop_after = -1;  // one-shot
      d.drop = true;
      fired_.fetch_add(1, std::memory_order_relaxed);
      return d;
    }
    --pf.drop_after;
  }
  return d;
}

void TransportFaults::Register(int fd, int port) {
  std::lock_guard<std::mutex> lock(mu_);
  fd_port_[fd] = port;
}

void TransportFaults::Forget(int fd) {
  std::lock_guard<std::mutex> lock(mu_);
  fd_port_.erase(fd);
}

}  // namespace net
}  // namespace client
}  // namespace scisparql
