#ifndef SCISPARQL_CLIENT_SESSION_H_
#define SCISPARQL_CLIENT_SESSION_H_

#include <chrono>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "engine/ssdm.h"
#include "sched/query_context.h"

namespace scisparql {
namespace client {

/// Client-side integration API modeled after the SSDM-Matlab bridge
/// (Chapter 7). A scientific-computing client keeps its traditional
/// workflow — produce numeric arrays, tag them with experiment metadata —
/// while SSDM stores the arrays in a back-end and the metadata as RDF, so
/// both become queryable with SciSPARQL.
///
/// The paper's usage scenario (7.1): store a computation result with its
/// parameter annotations, then later *search* for results by metadata and
/// fetch only the slices needed.
class Session {
 public:
  /// `storage_name` selects where StoreResult persists arrays ("" keeps
  /// them resident in the graph).
  Session(SSDM* engine, std::string storage_name = "");

  /// Stores `array` as the value of (experiment, property) plus one triple
  /// per metadata annotation. Returns the array term that was stored
  /// (a proxy when a back-end is configured).
  Result<Term> StoreResult(
      const std::string& experiment_iri, const std::string& property_iri,
      const NumericArray& array,
      const std::vector<std::pair<std::string, Term>>& metadata = {});

  /// Adds a single metadata annotation.
  Status Annotate(const std::string& subject_iri,
                  const std::string& property_iri, Term value);

  /// Unified execution of any statement form, with this session's default
  /// deadline applied when the request carries none. The same surface
  /// RemoteSession offers over the wire.
  Result<QueryOutcome> Execute(QueryRequest req);

  /// Runs a SciSPARQL query (SELECT) and returns the result table.
  Result<sparql::QueryResult> Query(const std::string& text);

  /// Runs a query expected to yield exactly one array cell and
  /// materializes it — the Matlab-side "fetch result into a matrix" call.
  /// Zero rows reports NotFound; anything else unexpected reports
  /// InvalidArgument / TypeError, naming the projected variable.
  Result<NumericArray> FetchArray(const std::string& text);

  /// Runs a query expected to yield exactly one numeric cell. Same error
  /// contract as FetchArray.
  Result<double> FetchScalar(const std::string& text);

  /// Registers a prepared statement with the engine — equivalent to
  /// running `PREPARE name(?p1, ...) AS query`. Parameter names are given
  /// without the leading '?'; re-preparing a name replaces it.
  Status Prepare(const std::string& name,
                 const std::vector<std::string>& params,
                 const std::string& query);

  /// Runs a PREPARE'd statement with ground arguments through the engine's
  /// prepared path: shared parsed body, memoized join orders, and (when
  /// the result cache is enabled) hits under the prepared key.
  Result<QueryOutcome> ExecutePrepared(const std::string& name,
                                       std::vector<Term> args);

  /// Wall-clock budget applied to every statement this session runs
  /// (threaded as a per-query deadline into the executor); zero = none.
  void set_query_timeout(std::chrono::milliseconds timeout) {
    query_timeout_ = timeout;
  }

  SSDM* engine() { return engine_; }

 private:
  /// SELECT with this session's deadline applied.
  Result<sparql::QueryResult> RunQuery(const std::string& text);

  SSDM* engine_;
  std::string storage_name_;
  std::chrono::milliseconds query_timeout_{0};
};

}  // namespace client
}  // namespace scisparql

#endif  // SCISPARQL_CLIENT_SESSION_H_
