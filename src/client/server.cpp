#include "client/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "client/protocol.h"
#include "loaders/turtle.h"

namespace scisparql {
namespace client {

namespace {

/// Reads exactly `n` bytes; false on EOF/error.
bool ReadAll(int fd, void* buf, size_t n) {
  uint8_t* p = static_cast<uint8_t*>(buf);
  while (n > 0) {
    ssize_t r = ::recv(fd, p, n, 0);
    if (r <= 0) return false;
    p += r;
    n -= static_cast<size_t>(r);
  }
  return true;
}

bool WriteAll(int fd, const void* buf, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(buf);
  while (n > 0) {
    ssize_t r = ::send(fd, p, n, MSG_NOSIGNAL);
    if (r <= 0) return false;
    p += r;
    n -= static_cast<size_t>(r);
  }
  return true;
}

Result<std::string> ReadFrame(int fd) {
  uint32_t len;
  if (!ReadAll(fd, &len, 4)) return Status::IoError("connection closed");
  if (len > (64u << 20)) return Status::IoError("oversized frame");
  std::string payload(len, '\0');
  if (!ReadAll(fd, payload.data(), len)) {
    return Status::IoError("truncated frame");
  }
  return payload;
}

Status WriteFrame(int fd, const std::string& payload) {
  std::string framed = Frame(payload);
  if (!WriteAll(fd, framed.data(), framed.size())) {
    return Status::IoError("write failed");
  }
  return Status::OK();
}

}  // namespace

Result<int> SsdmServer::Start(int port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::IoError("socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::IoError("bind() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 8) != 0) return Status::IoError("listen() failed");
  running_ = true;
  thread_ = std::thread([this]() { Serve(); });
  return port_;
}

void SsdmServer::Stop() {
  if (!running_.exchange(false)) return;
  // Closing the listening socket unblocks accept().
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (thread_.joinable()) thread_.join();
  listen_fd_ = -1;
}

void SsdmServer::Serve() {
  while (running_) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) break;  // listener closed
    HandleConnection(fd);
    ::close(fd);
  }
}

void SsdmServer::HandleConnection(int fd) {
  while (running_) {
    Result<std::string> request = ReadFrame(fd);
    if (!request.ok()) return;  // client disconnected
    ++requests_;

    std::string payload;
    Result<SSDM::ExecResult> result = engine_->Execute(*request);
    if (!result.ok()) {
      payload.push_back('E');
      payload.push_back(static_cast<char>(result.status().code()));
      payload += result.status().message();
    } else {
      switch (result->kind) {
        case SSDM::ExecResult::Kind::kRows:
          payload.push_back('R');
          payload += SerializeResult(result->rows);
          break;
        case SSDM::ExecResult::Kind::kBool:
          payload.push_back('B');
          payload.push_back(result->boolean ? 1 : 0);
          break;
        case SSDM::ExecResult::Kind::kGraph:
          payload.push_back('G');
          payload += loaders::WriteTurtle(result->graph, engine_->prefixes());
          break;
        case SSDM::ExecResult::Kind::kOk:
          payload.push_back('O');
          break;
      }
    }
    if (!WriteFrame(fd, payload).ok()) return;
  }
}

RemoteSession::~RemoteSession() {
  if (fd_ >= 0) ::close(fd_);
}

Result<RemoteSession> RemoteSession::Connect(const std::string& host,
                                             int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IoError("connect() failed");
  }
  return RemoteSession(fd);
}

Result<std::string> RemoteSession::RoundTrip(const std::string& text) {
  SCISPARQL_RETURN_NOT_OK(WriteFrame(fd_, text));
  Result<std::string> payload = ReadFrame(fd_);
  if (!payload.ok()) return payload.status();
  if (payload->empty()) return Status::IoError("empty response");
  if ((*payload)[0] == 'E') {
    StatusCode code = payload->size() > 1
                          ? static_cast<StatusCode>((*payload)[1])
                          : StatusCode::kInternal;
    return Status(code, payload->substr(2));
  }
  return payload;
}

Result<sparql::QueryResult> RemoteSession::Query(const std::string& text) {
  Result<std::string> payload = RoundTrip(text);
  if (!payload.ok()) return payload.status();
  if (payload->empty() || (*payload)[0] != 'R') {
    return Status::InvalidArgument("statement is not a SELECT query");
  }
  return DeserializeResult(payload->substr(1));
}

Result<bool> RemoteSession::Ask(const std::string& text) {
  Result<std::string> payload = RoundTrip(text);
  if (!payload.ok()) return payload.status();
  if (payload->size() < 2 || (*payload)[0] != 'B') {
    return Status::InvalidArgument("statement is not an ASK query");
  }
  return (*payload)[1] != 0;
}

Result<std::string> RemoteSession::Run(const std::string& text) {
  Result<std::string> payload = RoundTrip(text);
  if (!payload.ok()) return payload.status();
  if (!payload->empty() && (*payload)[0] == 'G') return payload->substr(1);
  return std::string();
}

}  // namespace client
}  // namespace scisparql
