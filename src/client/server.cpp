#include "client/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <future>
#include <thread>

#include "client/net.h"
#include "client/protocol.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "loaders/turtle.h"

namespace scisparql {
namespace client {

namespace {

using net::PeerClosed;
using net::ReadFrame;
using net::WriteFrame;

/// 'E' payload: status code byte + message.
std::string ErrorPayload(const Status& status) {
  std::string payload;
  payload.push_back('E');
  payload.push_back(static_cast<char>(status.code()));
  payload += status.message();
  return payload;
}

}  // namespace

Result<int> SsdmServer::Start(int port) {
  if (!options_.node_id.empty()) engine_->set_node_id(options_.node_id);
  shipper_ = std::make_unique<repl::WalShipper>(engine_);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::IoError("socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::IoError("bind() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 64) != 0) return Status::IoError("listen() failed");
  scheduler_ =
      std::make_unique<sched::QueryScheduler>(engine_, options_.sched);
  running_ = true;
  accept_thread_ = std::thread([this]() { AcceptLoop(); });
  return port_;
}

void SsdmServer::Stop() {
  if (!running_.exchange(false)) return;
  // Closing the listening socket unblocks accept().
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  listen_fd_ = -1;
  // Shut down live connections: their blocking reads fail, their wait
  // loops observe !running_ and cancel in-flight queries.
  std::vector<std::unique_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& conn : conns) ::shutdown(conn->fd, SHUT_RDWR);
  for (auto& conn : conns) {
    if (conn->thread.joinable()) conn->thread.join();
    net::ForgetFd(conn->fd);
    ::close(conn->fd);
  }
  if (scheduler_ != nullptr) scheduler_->Stop();
}

sched::SchedulerStats SsdmServer::scheduler_stats() const {
  return scheduler_ != nullptr ? scheduler_->stats() : sched::SchedulerStats();
}

void SsdmServer::AcceptLoop() {
  while (running_) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed
    }
    ReapConnections();
    net::RegisterFd(fd, port_);
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      if (!running_) {
        ::close(fd);
        return;
      }
      conns_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw]() { ServeConnection(raw); });
  }
}

void SsdmServer::ReapConnections() {
  std::vector<std::unique_ptr<Connection>> finished;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if ((*it)->done.load()) {
        finished.push_back(std::move(*it));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& conn : finished) {
    if (conn->thread.joinable()) conn->thread.join();
    net::ForgetFd(conn->fd);
    ::close(conn->fd);
  }
}

void SsdmServer::ServeConnection(Connection* conn) {
  while (running_) {
    Result<std::string> request = ReadFrame(conn->fd);
    if (!request.ok()) break;  // client disconnected
    ++requests_;
    std::string payload = Dispatch(*request, conn->fd);
    if (!WriteFrame(conn->fd, payload).ok()) break;
  }
  conn->done.store(true);
}

std::string SsdmServer::Dispatch(const std::string& request, int fd) {
  // Replication verbs (marker 0x02) are served by the WAL shipper on this
  // I/O thread: probe and fetch never touch the engine (the durable-LSN
  // atomic gates what the segment scan may ship), and the snapshot verb
  // goes through the scheduler as a read like everything else.
  if (!request.empty() && request[0] == repl::kReplMarker) {
    Result<std::string> reply = shipper_->Handle(request, scheduler_.get());
    return reply.ok() ? *reply : ErrorPayload(reply.status());
  }
  // Both request forms funnel into one QueryRequest and one scheduler
  // submission; only the response encoding differs. The "STATS" verb is
  // answered with scheduler counters plus the engine's report; the engine
  // part is produced by the engine's own STATS statement, which classifies
  // as a read — so it goes through the scheduler below and runs under the
  // shared engine lock like any query (no unsynchronized engine access
  // from this thread).
  bool structured = !request.empty() && request[0] == kStructuredMarker;
  QueryRequest req;
  obs::QueryTrace trace;
  bool want_trace = false;
  if (structured) {
    Result<WireRequest> wire = DecodeRequest(request);
    if (!wire.ok()) return ErrorPayload(wire.status());
    if (wire->is_prepared) {
      QueryRequest::PreparedCall call;
      call.name = std::move(wire->prepared_name);
      call.args = std::move(wire->prepared_args);
      req.prepared = std::move(call);
    } else {
      req.text = std::move(wire->text);
    }
    req.timeout = wire->timeout;
    if (wire->has_optimize || wire->has_push_filters) {
      sparql::ExecOptions opts = engine_->exec_options();
      if (wire->has_optimize) opts.optimize_join_order = wire->optimize;
      if (wire->has_push_filters) opts.push_filters = wire->push_filters;
      req.options = opts;
    }
    want_trace = wire->want_trace;
    if (want_trace) req.trace_sink = &trace;
  } else {
    req.text = request;
  }

  // Self-fencing lease: a primary cut off from its replicas must stop
  // taking writes before the cluster can elect a successor, or a client
  // could get an ack no future primary knows about.
  if (options_.fence_timeout.count() > 0 && !engine_->replica_mode() &&
      !req.prepared.has_value() &&
      SSDM::ClassifyStatement(req.text) != sched::StatementClass::kRead &&
      shipper_->FencedOut(options_.fence_timeout)) {
    obs::DefaultMetrics()
        .GetCounter("ssdm_repl_fenced_writes_total", "",
                    "Write statements rejected by the primary's "
                    "self-fencing lease.")
        .Add();
    return ErrorPayload(Status::Unavailable(
        "primary is fenced: no replica has fetched within the fence "
        "window; a failover may be in progress"));
  }

  auto cancel = std::make_shared<std::atomic<bool>>(false);
  req.cancel = cancel;
  auto promise = std::make_shared<std::promise<Result<QueryOutcome>>>();
  std::future<Result<QueryOutcome>> future = promise->get_future();
  Status admitted =
      scheduler_->Submit(std::move(req), [promise](Result<QueryOutcome> r) {
        promise->set_value(std::move(r));
      });
  if (!admitted.ok()) return ErrorPayload(admitted);

  // While a worker runs the statement, watch for server shutdown and for
  // the client going away: either flips the cancel flag so the query
  // stops mid-flight instead of burning a worker for a dead connection.
  while (future.wait_for(std::chrono::milliseconds(20)) !=
         std::future_status::ready) {
    if (!running_.load() || PeerClosed(fd)) {
      cancel->store(true);
    }
  }
  Result<QueryOutcome> result = future.get();

  if (!result.ok()) return ErrorPayload(result.status());

  // Semi-synchronous acknowledgement: the ack promises the write survives
  // a failover, which candidate selection (highest applied LSN) can only
  // honor once some replica actually applied it.
  if (options_.sync_ack_timeout.count() > 0 && !engine_->replica_mode() &&
      result->kind() == QueryOutcome::Kind::kUpdateCount) {
    uint64_t lsn = std::get<QueryOutcome::UpdateCount>(result->value).lsn;
    if (lsn > 0 && !shipper_->WaitForReplicaLsn(
                       lsn, options_.sync_ack_timeout)) {
      return ErrorPayload(Status::Unavailable(
          "update is durable locally but no replica acknowledged it "
          "within the sync-ack window; it may be lost across a failover"));
    }
  }

  if (structured) {
    // The serialize phase is part of the query's trace: it is wall time
    // the client observes before its answer arrives.
    obs::TraceSpan* ser_span =
        want_trace ? trace.AddChild(nullptr, "serialize") : nullptr;
    obs::SpanTimer ser_timer(ser_span);
    WireResponse resp;
    switch (result->kind()) {
      case QueryOutcome::Kind::kRows:
        resp.kind = 'R';
        resp.body = SerializeResult(result->rows());
        break;
      case QueryOutcome::Kind::kGraph:
        resp.kind = 'G';
        resp.body = loaders::WriteTurtle(result->graph(), engine_->prefixes());
        break;
      case QueryOutcome::Kind::kAsk:
        resp.kind = 'B';
        resp.body.push_back(result->ask() ? 1 : 0);
        break;
      case QueryOutcome::Kind::kUpdateCount: {
        resp.kind = 'U';
        resp.body = std::to_string(result->update_count());
        // The commit LSN rides along as a second decimal field — the
        // client's read-your-writes token. Old clients strtoll the count
        // and never look past the space.
        const auto& u = std::get<QueryOutcome::UpdateCount>(result->value);
        if (u.lsn > 0) {
          resp.body += " " + std::to_string(u.lsn);
          // Third field: the executing primary's fencing term, so routers
          // can spot acks from a deposed primary.
          resp.body += " " + std::to_string(u.term);
        }
        break;
      }
      case QueryOutcome::Kind::kInfo:
        resp.kind = 'I';
        resp.body = result->info();
        break;
    }
    ser_timer.Stop();
    if (want_trace) resp.trace = trace.Render();
    return EncodeResponse(resp);
  }

  // Legacy text request: legacy kind tags ('O' for updates/DEFINE, and
  // the 'S' STATS compatibility tag).
  std::string payload;
  switch (result->kind()) {
    case QueryOutcome::Kind::kRows:
      payload.push_back('R');
      payload += SerializeResult(result->rows());
      break;
    case QueryOutcome::Kind::kAsk:
      payload.push_back('B');
      payload.push_back(result->ask() ? 1 : 0);
      break;
    case QueryOutcome::Kind::kGraph:
      payload.push_back('G');
      payload += loaders::WriteTurtle(result->graph(), engine_->prefixes());
      break;
    case QueryOutcome::Kind::kUpdateCount:
      payload.push_back('O');
      break;
    case QueryOutcome::Kind::kInfo:
      // Same normalization as SSDM::Execute's STATS recognition, so a
      // request like " stats " gets the 'S' tag + scheduler counters
      // rather than silently degrading to a plain 'I' reply.
      if (EqualsIgnoreCase(StripWhitespace(request), "STATS")) {
        payload.push_back('S');
        payload += "scheduler: " + scheduler_->stats().ToString() + "\n";
      } else {
        payload.push_back('I');
      }
      payload += result->info();
      break;
  }
  return payload;
}

RemoteSession::~RemoteSession() {
  if (fd_ >= 0) {
    net::ForgetFd(fd_);
    ::close(fd_);
  }
}

namespace {

using net::DialServer;

bool RetriableConnectError(const Status& st) {
  // InvalidArgument (bad address) will not heal on its own; transport
  // errors and connect timeouts can — the server may just be restarting.
  return st.code() == StatusCode::kIoError ||
         st.code() == StatusCode::kDeadlineExceeded;
}

}  // namespace

RemoteSession::RemoteSession(int fd, std::string host, int port,
                             std::chrono::milliseconds timeout,
                             RetryOptions retry)
    : fd_(fd),
      host_(std::move(host)),
      port_(port),
      timeout_(timeout),
      retry_(retry) {
  // Seed the jitter generator from wall time and the session identity so
  // concurrent sessions spread their retries.
  rng_state_ = static_cast<uint64_t>(
                   std::chrono::steady_clock::now().time_since_epoch().count())
               ^ (reinterpret_cast<uintptr_t>(this) << 16) ^ 0x9e3779b97f4a7c15ull;
}

std::chrono::milliseconds RetryBackoff(
    const RemoteSession::RetryOptions& retry, int attempt,
    uint64_t* rng_state) {
  double base = static_cast<double>(retry.initial_backoff.count());
  for (int i = 0; i < attempt; ++i) base *= retry.multiplier;
  base = std::min(base, static_cast<double>(retry.max_backoff.count()));
  // xorshift64 — plenty for jitter, no <random> machinery per call.
  *rng_state ^= *rng_state << 13;
  *rng_state ^= *rng_state >> 7;
  *rng_state ^= *rng_state << 17;
  double unit = static_cast<double>(*rng_state % 10000) / 10000.0;  // [0,1)
  double jittered = base * (1.0 + retry.jitter * (2.0 * unit - 1.0));
  if (jittered < 0) jittered = 0;
  return std::chrono::milliseconds(static_cast<int64_t>(jittered));
}

std::chrono::milliseconds RemoteSession::BackoffDelay(int attempt) {
  return RetryBackoff(retry_, attempt, &rng_state_);
}

Result<RemoteSession> RemoteSession::Connect(
    const std::string& host, int port, std::chrono::milliseconds timeout) {
  return Connect(host, port, timeout, RetryOptions());
}

Result<RemoteSession> RemoteSession::Connect(const std::string& host, int port,
                                             std::chrono::milliseconds timeout,
                                             RetryOptions retry) {
  if (retry.max_attempts < 1) retry.max_attempts = 1;
  RemoteSession session(-1, host, port, timeout, retry);
  auto start = std::chrono::steady_clock::now();
  Status last = Status::OK();
  for (int attempt = 0; attempt < retry.max_attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(session.BackoffDelay(attempt - 1));
    }
    Result<int> fd = DialServer(host, port, timeout);
    if (fd.ok()) {
      session.fd_ = *fd;
      return session;
    }
    last = fd.status();
    if (!RetriableConnectError(last)) return last;
    // A session timeout caps the whole retry budget, backoff included —
    // the caller asked for a bound on session setup, not per attempt.
    if (timeout.count() > 0 &&
        std::chrono::steady_clock::now() - start >= timeout) {
      break;
    }
  }
  return Status(last.code(),
                last.message() + " (after " +
                    std::to_string(retry.max_attempts) + " attempts)");
}

Status RemoteSession::Reconnect() {
  if (fd_ >= 0) {
    net::ForgetFd(fd_);
    ::close(fd_);
    fd_ = -1;
  }
  SCISPARQL_ASSIGN_OR_RETURN(int fd, DialServer(host_, port_, timeout_));
  fd_ = fd;
  return Status::OK();
}

Result<std::string> RemoteSession::RoundTrip(const std::string& text,
                                             bool retry_safe) {
  int attempts = retry_safe ? std::max(retry_.max_attempts, 1) : 1;
  Status last = Status::OK();
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(BackoffDelay(attempt - 1));
      Status re = Reconnect();
      if (!re.ok()) {
        last = re;
        continue;  // burn an attempt; the server may come back
      }
    }
    if (fd_ < 0) {
      last = Status::IoError("session not connected");
      continue;
    }
    Status sent = WriteFrame(fd_, text);
    Result<std::string> payload =
        sent.ok() ? ReadFrame(fd_) : Result<std::string>(sent);
    if (payload.ok()) {
      if (payload->empty()) return Status::IoError("empty response");
      if ((*payload)[0] == 'E') {
        StatusCode code = payload->size() > 1
                              ? static_cast<StatusCode>((*payload)[1])
                              : StatusCode::kInternal;
        return Status(code, payload->substr(2));
      }
      return payload;
    }
    last = payload.status();
    // Only transport failures are worth a resend. A DeadlineExceeded
    // round-trip is NOT: the server may still be executing the statement,
    // and re-submitting would double the work (or the write).
    if (last.code() != StatusCode::kIoError) return last;
  }
  if (attempts > 1) {
    return Status(last.code(), last.message() + " (after " +
                                   std::to_string(attempts) + " attempts)");
  }
  return last;
}

Result<QueryOutcome> RemoteSession::Execute(const QueryRequest& req) {
  WireRequest wire;
  if (req.prepared.has_value()) {
    wire.is_prepared = true;
    wire.prepared_name = req.prepared->name;
    wire.prepared_args = req.prepared->args;
  } else {
    wire.text = req.text;
  }
  wire.timeout = req.timeout;
  wire.want_trace = req.trace_sink != nullptr;
  if (req.options.has_value()) {
    wire.has_optimize = true;
    wire.optimize = req.options->optimize_join_order;
    wire.has_push_filters = true;
    wire.push_filters = req.options->push_filters;
  }
  // Prepared calls always run a PREPARE'd query body and plain reads are
  // idempotent; both are safe to resend over a fresh connection.
  bool retry_safe =
      req.prepared.has_value() ||
      SSDM::ClassifyStatement(req.text) == sched::StatementClass::kRead;
  Result<std::string> payload = RoundTrip(EncodeRequest(wire), retry_safe);
  if (!payload.ok()) return payload.status();
  SCISPARQL_ASSIGN_OR_RETURN(WireResponse resp, DecodeResponse(*payload));
  if (req.trace_sink != nullptr) {
    req.trace_sink->AdoptRendered(std::move(resp.trace));
  }
  switch (resp.kind) {
    case 'R': {
      SCISPARQL_ASSIGN_OR_RETURN(sparql::QueryResult rows,
                                 DeserializeResult(resp.body));
      return QueryOutcome{std::move(rows)};
    }
    case 'B':
      if (resp.body.empty()) return Status::IoError("empty ASK response");
      return QueryOutcome{resp.body[0] != 0};
    case 'G': {
      // Rebuild the graph client-side so remote CONSTRUCT/DESCRIBE yield
      // the same outcome shape as embedded execution.
      Graph g;
      loaders::TurtleOptions opts;
      SCISPARQL_RETURN_NOT_OK(loaders::LoadTurtleString(resp.body, &g, opts));
      return QueryOutcome{std::move(g)};
    }
    case 'U': {
      QueryOutcome::UpdateCount u;
      char* rest = nullptr;
      u.count = std::strtoll(resp.body.c_str(), &rest, 10);
      // Optional second field: the commit LSN of the acked update (absent
      // from servers predating replication, and from non-durable engines).
      if (rest != nullptr && *rest == ' ') {
        char* rest2 = nullptr;
        u.lsn = std::strtoull(rest + 1, &rest2, 10);
        // Optional third field: the primary's fencing term.
        if (rest2 != nullptr && *rest2 == ' ') {
          u.term = std::strtoull(rest2 + 1, nullptr, 10);
        }
      }
      return QueryOutcome{u};
    }
    case 'I':
      return QueryOutcome{QueryOutcome::Info{std::move(resp.body)}};
    default:
      return Status::IoError("unknown response kind tag");
  }
}

Result<sparql::QueryResult> RemoteSession::Query(const std::string& text) {
  Result<std::string> payload = RoundTrip(
      text, SSDM::ClassifyStatement(text) == sched::StatementClass::kRead);
  if (!payload.ok()) return payload.status();
  if (payload->empty() || (*payload)[0] != 'R') {
    return Status::InvalidArgument("statement is not a SELECT query");
  }
  return DeserializeResult(payload->substr(1));
}

Result<bool> RemoteSession::Ask(const std::string& text) {
  Result<std::string> payload = RoundTrip(
      text, SSDM::ClassifyStatement(text) == sched::StatementClass::kRead);
  if (!payload.ok()) return payload.status();
  if (payload->size() < 2 || (*payload)[0] != 'B') {
    return Status::InvalidArgument("statement is not an ASK query");
  }
  return (*payload)[1] != 0;
}

Result<std::string> RemoteSession::Run(const std::string& text) {
  Result<std::string> payload = RoundTrip(text);
  if (!payload.ok()) return payload.status();
  if (!payload->empty() &&
      ((*payload)[0] == 'G' || (*payload)[0] == 'I')) {
    return payload->substr(1);
  }
  return std::string();
}

Result<std::string> RemoteSession::Explain(const std::string& query) {
  Result<std::string> payload = RoundTrip("EXPLAIN " + query, true);
  if (!payload.ok()) return payload.status();
  if (payload->empty() || (*payload)[0] != 'I') {
    return Status::Internal("malformed EXPLAIN response");
  }
  return payload->substr(1);
}

Status RemoteSession::Prepare(const std::string& name,
                              const std::vector<std::string>& params,
                              const std::string& query) {
  std::string text = "PREPARE " + name;
  if (!params.empty()) {
    text += "(";
    for (size_t i = 0; i < params.size(); ++i) {
      if (i > 0) text += ", ";
      text += "?" + params[i];
    }
    text += ")";
  }
  text += " AS " + query;
  QueryRequest req;
  req.text = std::move(text);
  Result<QueryOutcome> out = Execute(req);
  return out.status();
}

Result<QueryOutcome> RemoteSession::ExecutePrepared(
    const std::string& name, const std::vector<Term>& args) {
  QueryRequest req;
  QueryRequest::PreparedCall call;
  call.name = name;
  call.args = args;
  req.prepared = std::move(call);
  return Execute(req);
}

Result<std::string> RemoteSession::Stats() {
  Result<std::string> payload = RoundTrip("STATS", true);
  if (!payload.ok()) return payload.status();
  if (payload->empty() || (*payload)[0] != 'S') {
    return Status::Internal("malformed STATS response");
  }
  return payload->substr(1);
}

Result<std::string> RemoteSession::Metrics() {
  Result<std::string> payload = RoundTrip("METRICS", true);
  if (!payload.ok()) return payload.status();
  if (payload->empty() || (*payload)[0] != 'I') {
    return Status::Internal("malformed METRICS response");
  }
  return payload->substr(1);
}

}  // namespace client
}  // namespace scisparql
