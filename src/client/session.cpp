#include "client/session.h"

namespace scisparql {
namespace client {

Session::Session(SSDM* engine, std::string storage_name)
    : engine_(engine), storage_name_(std::move(storage_name)) {}

Result<Term> Session::StoreResult(
    const std::string& experiment_iri, const std::string& property_iri,
    const NumericArray& array,
    const std::vector<std::pair<std::string, Term>>& metadata) {
  Term value;
  if (storage_name_.empty()) {
    value = Term::Array(ResidentArray::Make(array.Compact()));
  } else {
    SCISPARQL_ASSIGN_OR_RETURN(value,
                               engine_->StoreArray(array, storage_name_));
  }
  Graph& g = engine_->dataset().default_graph();
  g.Add(Term::Iri(experiment_iri), Term::Iri(property_iri), value);
  for (const auto& [prop, term] : metadata) {
    g.Add(Term::Iri(experiment_iri), Term::Iri(prop), term);
  }
  return value;
}

Status Session::Annotate(const std::string& subject_iri,
                         const std::string& property_iri, Term value) {
  engine_->dataset().default_graph().Add(
      Term::Iri(subject_iri), Term::Iri(property_iri), std::move(value));
  return Status::OK();
}

Result<sparql::QueryResult> Session::RunQuery(const std::string& text) {
  sched::QueryContext ctx;
  if (query_timeout_.count() > 0) {
    ctx = sched::QueryContext::WithTimeout(query_timeout_);
  }
  SCISPARQL_ASSIGN_OR_RETURN(SSDM::ExecResult r, engine_->Execute(text, &ctx));
  if (r.kind != SSDM::ExecResult::Kind::kRows) {
    return Status::InvalidArgument("statement is not a SELECT query");
  }
  return std::move(r.rows);
}

Result<sparql::QueryResult> Session::Query(const std::string& text) {
  return RunQuery(text);
}

Result<NumericArray> Session::FetchArray(const std::string& text) {
  SCISPARQL_ASSIGN_OR_RETURN(sparql::QueryResult r, RunQuery(text));
  if (r.rows.size() != 1 || r.rows[0].size() < 1) {
    return Status::InvalidArgument(
        "FetchArray expects exactly one result row, got " +
        std::to_string(r.rows.size()));
  }
  const Term& cell = r.rows[0][0];
  if (!cell.IsArray()) {
    return Status::TypeError("query result is not an array: " +
                             cell.ToString());
  }
  return cell.array()->Materialize();
}

Result<double> Session::FetchScalar(const std::string& text) {
  SCISPARQL_ASSIGN_OR_RETURN(sparql::QueryResult r, RunQuery(text));
  if (r.rows.size() != 1 || r.rows[0].size() < 1) {
    return Status::InvalidArgument(
        "FetchScalar expects exactly one result row, got " +
        std::to_string(r.rows.size()));
  }
  return r.rows[0][0].AsDouble();
}

}  // namespace client
}  // namespace scisparql
