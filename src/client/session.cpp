#include "client/session.h"

namespace scisparql {
namespace client {

Session::Session(SSDM* engine, std::string storage_name)
    : engine_(engine), storage_name_(std::move(storage_name)) {}

Result<Term> Session::StoreResult(
    const std::string& experiment_iri, const std::string& property_iri,
    const NumericArray& array,
    const std::vector<std::pair<std::string, Term>>& metadata) {
  Term value;
  if (storage_name_.empty()) {
    value = Term::Array(ResidentArray::Make(array.Compact()));
  } else {
    SCISPARQL_ASSIGN_OR_RETURN(value,
                               engine_->StoreArray(array, storage_name_));
  }
  Graph& g = engine_->dataset().default_graph();
  g.Add(Term::Iri(experiment_iri), Term::Iri(property_iri), value);
  for (const auto& [prop, term] : metadata) {
    g.Add(Term::Iri(experiment_iri), Term::Iri(prop), term);
  }
  return value;
}

Status Session::Annotate(const std::string& subject_iri,
                         const std::string& property_iri, Term value) {
  engine_->dataset().default_graph().Add(
      Term::Iri(subject_iri), Term::Iri(property_iri), std::move(value));
  return Status::OK();
}

Result<QueryOutcome> Session::Execute(QueryRequest req) {
  if (req.timeout.count() == 0) req.timeout = query_timeout_;
  return engine_->Execute(req);
}

Result<sparql::QueryResult> Session::RunQuery(const std::string& text) {
  QueryRequest req;
  req.text = text;
  SCISPARQL_ASSIGN_OR_RETURN(QueryOutcome out, Execute(std::move(req)));
  if (out.kind() != QueryOutcome::Kind::kRows) {
    return Status::InvalidArgument("statement is not a SELECT query");
  }
  return std::move(out.rows());
}

Result<sparql::QueryResult> Session::Query(const std::string& text) {
  return RunQuery(text);
}

Status Session::Prepare(const std::string& name,
                        const std::vector<std::string>& params,
                        const std::string& query) {
  std::string text = "PREPARE " + name;
  if (!params.empty()) {
    text += "(";
    for (size_t i = 0; i < params.size(); ++i) {
      if (i > 0) text += ", ";
      text += "?" + params[i];
    }
    text += ")";
  }
  text += " AS " + query;
  QueryRequest req;
  req.text = std::move(text);
  return Execute(std::move(req)).status();
}

Result<QueryOutcome> Session::ExecutePrepared(const std::string& name,
                                              std::vector<Term> args) {
  QueryRequest req;
  QueryRequest::PreparedCall call;
  call.name = name;
  call.args = std::move(args);
  req.prepared = std::move(call);
  return Execute(std::move(req));
}

namespace {

/// The projected variable a Fetch call is after — names the thing that was
/// missing or malformed in error messages.
std::string FetchTarget(const sparql::QueryResult& r) {
  return r.columns.empty() ? std::string("(no projection)")
                           : "?" + r.columns[0];
}

/// Shared single-cell contract of FetchArray/FetchScalar: exactly one row
/// with at least one column. Zero rows is NotFound (the query matched
/// nothing — a distinct, often retryable condition); anything else is a
/// malformed request.
Status CheckSingleCell(const sparql::QueryResult& r, const char* what) {
  if (r.rows.empty()) {
    return Status::NotFound(std::string(what) + ": no result row for " +
                            FetchTarget(r));
  }
  if (r.rows.size() > 1) {
    return Status::InvalidArgument(
        std::string(what) + " expects exactly one result row for " +
        FetchTarget(r) + ", got " + std::to_string(r.rows.size()));
  }
  if (r.rows[0].empty()) {
    return Status::InvalidArgument(std::string(what) +
                                   ": result row has no columns");
  }
  return Status::OK();
}

}  // namespace

Result<NumericArray> Session::FetchArray(const std::string& text) {
  SCISPARQL_ASSIGN_OR_RETURN(sparql::QueryResult r, RunQuery(text));
  SCISPARQL_RETURN_NOT_OK(CheckSingleCell(r, "FetchArray"));
  const Term& cell = r.rows[0][0];
  if (!cell.IsArray()) {
    return Status::TypeError("FetchArray: value of " + FetchTarget(r) +
                             " is not an array: " + cell.ToString());
  }
  return cell.array()->Materialize();
}

Result<double> Session::FetchScalar(const std::string& text) {
  SCISPARQL_ASSIGN_OR_RETURN(sparql::QueryResult r, RunQuery(text));
  SCISPARQL_RETURN_NOT_OK(CheckSingleCell(r, "FetchScalar"));
  return r.rows[0][0].AsDouble();
}

}  // namespace client
}  // namespace scisparql
