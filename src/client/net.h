#ifndef SCISPARQL_CLIENT_NET_H_
#define SCISPARQL_CLIENT_NET_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/status.h"

namespace scisparql {
namespace client {
namespace net {

/// Socket I/O shared by the server's connection threads and the client
/// session. Everything funnels through ReadFrame / WriteFrame /
/// DialServer, which is what makes TransportFaults (below) a complete
/// seam: a scripted fault observes every frame either side moves.

enum class IoOutcome { kOk, kClosed, kTimeout, kError };

/// Reads exactly `n` bytes, retrying on EINTR so signal-heavy load cannot
/// corrupt protocol framing; partial reads continue where they left off.
/// A socket receive timeout (SO_RCVTIMEO) surfaces as kTimeout.
IoOutcome ReadAll(int fd, void* buf, size_t n);

/// Writes exactly `n` bytes with the same EINTR / partial-transfer
/// handling as ReadAll.
IoOutcome WriteAll(int fd, const void* buf, size_t n);

Status IoStatus(IoOutcome outcome, const char* what);

/// Reads one length-prefixed frame (u32 length + payload, 64 MiB cap).
Result<std::string> ReadFrame(int fd);

/// Frames and writes one payload.
Status WriteFrame(int fd, const std::string& payload);

/// True when the peer has closed its end (half-close or full disconnect).
/// Pending unread data means the connection is alive (a pipelining
/// client), so only a clean zero-byte read counts.
bool PeerClosed(int fd);

/// One TCP dial with `timeout` applied as both socket timeouts (SO_SNDTIMEO
/// also bounds connect() on Linux, so a black-holed server cannot hang the
/// client during session setup). The returned fd is registered with
/// TransportFaults under `port`.
Result<int> DialServer(const std::string& host, int port,
                       std::chrono::milliseconds timeout);

/// Associates `fd` with `port` for fault scripting. DialServer does this
/// for outbound connections; the server's accept loop must do it for
/// inbound ones (under its own listen port).
void RegisterFd(int fd, int port);
/// Drops the association (call before close; stale entries are harmless —
/// the kernel reuses fds and registration overwrites).
void ForgetFd(int fd);

/// Process-global scriptable network fault injector — the transport twin
/// of storage::FaultyVfs. Faults are keyed by *port*: a partitioned port
/// refuses new dials and fails I/O on every registered connection (both
/// directions, both endpoints in this process), which is how in-process
/// tests simulate a network partition between nodes that share an address
/// space. Disabled (the default) it costs one relaxed atomic load per
/// frame.
///
///   Partition(p)        dials refused, frames on existing fds fail
///   Blackhole(p, ms)    dials and frames stall `ms` then time out
///                       (accept-then-hang, the pathological failure that
///                       liveness probes must bound)
///   DropAfterFrames(p,n) the (n+1)-th frame touching `p` fails and tears
///                       the connection down (one-shot) — mid-stream drop
///   DelayFrames(p, ms)  every frame on `p` sleeps `ms` first — latency
///
/// Duplicated delivery needs no knob: dropping a reply makes the
/// retry-safe caller refetch, and the replication apply path is
/// idempotent by LSN — which is exactly the invariant tests assert.
class TransportFaults {
 public:
  static TransportFaults& Instance();

  /// Turns the hooks on. Scripted faults have no effect while disabled.
  void Enable();
  /// Turns the hooks off and clears every scripted fault and counter.
  void Reset();

  void Partition(int port);
  void Heal(int port);  ///< Clears ALL faults scripted for `port`.
  void Blackhole(int port, std::chrono::milliseconds stall);
  void DropAfterFrames(int port, uint64_t frames);
  void DelayFrames(int port, std::chrono::milliseconds delay);

  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  /// Faults actually fired (refused dials + dropped/timed-out frames).
  uint64_t faults_fired() const {
    return fired_.load(std::memory_order_relaxed);
  }

  // --- Hooks (called by the I/O helpers; not for test code). ---

  /// Gate for a new outbound connection to `port`.
  Status OnDial(int port);

  struct FrameDecision {
    bool drop = false;     ///< Fail the op and tear the connection down.
    bool timeout = false;  ///< Fail the op as a socket timeout.
    int stall_ms = 0;      ///< Sleep before failing (blackhole).
    int delay_ms = 0;      ///< Sleep before proceeding (latency).
  };
  /// Gate for one frame read/write on `fd`.
  FrameDecision OnFrame(int fd);

  void Register(int fd, int port);
  void Forget(int fd);

 private:
  TransportFaults() = default;

  struct PortFaults {
    bool partitioned = false;
    int blackhole_ms = -1;        ///< < 0 = no blackhole.
    long long drop_after = -1;    ///< Frames until a one-shot drop; < 0 off.
    int delay_ms = 0;
  };

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> fired_{0};
  mutable std::mutex mu_;
  std::unordered_map<int, int> fd_port_;       // fd -> port
  std::unordered_map<int, PortFaults> ports_;  // port -> scripted faults
};

}  // namespace net
}  // namespace client
}  // namespace scisparql

#endif  // SCISPARQL_CLIENT_NET_H_
