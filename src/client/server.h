#ifndef SCISPARQL_CLIENT_SERVER_H_
#define SCISPARQL_CLIENT_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "engine/ssdm.h"
#include "repl/shipper.h"
#include "sched/scheduler.h"

namespace scisparql {
namespace client {

/// TCP server exposing an SSDM engine to remote SciSPARQL clients — the
/// client-server deployment mode of Section 5.1 (the Matlab integration of
/// Chapter 7 talks to SSDM exactly this way). One statement per request.
///
/// Connections are served concurrently: each connection gets an I/O thread
/// that reads frames and submits statements to a sched::QueryScheduler —
/// a fixed worker pool behind a bounded admission queue. Read statements
/// run in parallel under a shared engine lock; updates take it
/// exclusively. A full queue answers Unavailable ("server overloaded")
/// instead of queueing unboundedly; a client that disconnects mid-query
/// has its query cancelled cooperatively.
class SsdmServer {
 public:
  struct Options {
    /// Worker pool / admission queue / default per-query deadline.
    sched::SchedulerOptions sched;

    /// Stable node identity for failover elections; installed into the
    /// engine on Start when non-empty.
    std::string node_id;

    /// Semi-synchronous write acknowledgement: after an update commits
    /// locally, wait up to this long for at least one replica to report
    /// the commit LSN applied before acking the client; on timeout the
    /// client gets Unavailable (the write is durable locally but NOT
    /// acknowledged — it may be lost across a failover). Zero (default)
    /// acks on local durability alone. Only meaningful on a primary that
    /// has replicas.
    std::chrono::milliseconds sync_ack_timeout{0};

    /// Self-fencing lease: a primary that has seen replicas but received
    /// no replication fetch within this window assumes it is partitioned
    /// from the cluster (a promotion may be in progress on the other
    /// side) and rejects write-class statements with Unavailable until a
    /// fetch arrives again. Zero (default) disables the lease. Set it at
    /// or below the failure detector's liveness threshold so the old
    /// primary stops accepting writes before anyone else can be elected.
    std::chrono::milliseconds fence_timeout{0};
  };

  /// `engine` must outlive the server. While the server is running, all
  /// engine access must go through it (the scheduler owns the engine
  /// lock).
  explicit SsdmServer(SSDM* engine) : SsdmServer(engine, Options()) {}
  SsdmServer(SSDM* engine, Options options)
      : engine_(engine), options_(std::move(options)) {}
  ~SsdmServer() { Stop(); }

  SsdmServer(const SsdmServer&) = delete;
  SsdmServer& operator=(const SsdmServer&) = delete;

  /// Binds to 127.0.0.1:`port` (0 = ephemeral), starts the scheduler's
  /// worker pool and the accept thread. Returns the bound port.
  Result<int> Start(int port = 0);

  /// Stops accepting, shuts down live connections (cancelling their
  /// in-flight queries), joins all threads and stops the scheduler.
  /// Idempotent.
  void Stop();

  int port() const { return port_; }
  uint64_t requests_served() const { return requests_; }

  /// The scheduler serializing all engine access while the server runs
  /// (null before Start). A replica applier attaches here so its apply
  /// path takes the same exclusive lock the served reads respect.
  sched::QueryScheduler* scheduler() { return scheduler_.get(); }

  /// The WAL shipper answering replication requests on this server's port
  /// (null before Start). Exposes per-replica applied LSN / lag state.
  repl::WalShipper* shipper() { return shipper_.get(); }

  /// Scheduler counters (admitted/rejected/completed/timed-out, queue
  /// high-water, per-class latency sums) — also exposed to remote clients
  /// through the STATS protocol verb.
  sched::SchedulerStats scheduler_stats() const;

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void ServeConnection(Connection* conn);
  /// Builds the kind-tagged response payload for one request.
  std::string Dispatch(const std::string& request, int fd);
  /// Joins finished connection threads (called from the accept loop).
  void ReapConnections();

  SSDM* engine_;
  Options options_;
  std::unique_ptr<sched::QueryScheduler> scheduler_;
  std::unique_ptr<repl::WalShipper> shipper_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> requests_{0};

  std::mutex conns_mu_;
  std::vector<std::unique_ptr<Connection>> conns_;
};

/// Client side: connects to an SsdmServer and executes statements. Offers
/// the same QueryRequest/QueryOutcome surface as the embedded engine —
/// Execute() ships the request's timeout, option overrides and trace wish
/// over the wire as a structured frame and rebuilds the outcome (including
/// CONSTRUCT graphs) client-side.
class RemoteSession {
 public:
  /// Transient-failure policy for Connect() and for resending read-class
  /// statements after a broken connection. Backoff between attempts grows
  /// geometrically with `multiplier`, capped at `max_backoff`, with a
  /// uniform ±`jitter` fraction applied so a fleet of clients does not
  /// retry in lockstep after a server restart.
  struct RetryOptions {
    int max_attempts = 3;  ///< Total tries; 1 disables retry entirely.
    std::chrono::milliseconds initial_backoff{50};
    double multiplier = 2.0;
    std::chrono::milliseconds max_backoff{1000};
    double jitter = 0.3;
  };

  ~RemoteSession();

  RemoteSession(const RemoteSession&) = delete;
  RemoteSession& operator=(const RemoteSession&) = delete;
  RemoteSession(RemoteSession&& o) noexcept
      : fd_(o.fd_),
        host_(std::move(o.host_)),
        port_(o.port_),
        timeout_(o.timeout_),
        retry_(o.retry_),
        rng_state_(o.rng_state_) {
    o.fd_ = -1;
  }

  /// `timeout` bounds connect and every subsequent request round-trip
  /// (SO_RCVTIMEO/SO_SNDTIMEO), so a hung server cannot block the client
  /// forever; an expired wait surfaces as DeadlineExceeded. Zero = no
  /// timeout. Connect failures are retried per `retry` (the two-argument
  /// overload uses the RetryOptions defaults); when `timeout` is set it
  /// also caps the total time spent across attempts and backoff.
  static Result<RemoteSession> Connect(
      const std::string& host, int port,
      std::chrono::milliseconds timeout = std::chrono::milliseconds(0));
  static Result<RemoteSession> Connect(const std::string& host, int port,
                                       std::chrono::milliseconds timeout,
                                       RetryOptions retry);

  /// Unified remote execution. `req.timeout` is enforced server-side
  /// (queue wait included); `req.options`' planner flags travel with the
  /// request; when `req.trace_sink` is non-null the server records a trace
  /// and the rendered span tree is adopted into the sink. `req.cancel` is
  /// not transported — disconnecting cancels the in-flight statement.
  Result<QueryOutcome> Execute(const QueryRequest& req);

  /// SELECT queries; other statement forms are reported as errors.
  Result<sparql::QueryResult> Query(const std::string& text);

  /// ASK queries.
  Result<bool> Ask(const std::string& text);

  /// Updates / DEFINE; also accepts CONSTRUCT (returns the Turtle text).
  Result<std::string> Run(const std::string& text);

  /// The STATS protocol verb: the server's scheduler counters plus the
  /// engine's optimizer-statistics report (triple totals, per-predicate
  /// counts, index fan-out histograms).
  Result<std::string> Stats();

  /// The METRICS verb: the server's Prometheus-style metrics exposition.
  Result<std::string> Metrics();

  /// Remote EXPLAIN: runs `query` server-side with profiling and returns
  /// the plan text (chosen BGP order, estimated vs. actual cardinalities).
  Result<std::string> Explain(const std::string& query);

  /// Registers a prepared statement server-side — composes and runs
  /// `PREPARE name(?p1, ...) AS query`. Parameter names are given without
  /// the leading '?'. Re-preparing a name replaces its definition.
  Status Prepare(const std::string& name,
                 const std::vector<std::string>& params,
                 const std::string& query);

  /// Runs a PREPARE'd statement with ground arguments via the binary
  /// prepared-exec frame: no statement text, no server-side parse — the
  /// server binds the arguments to the cached body directly.
  Result<QueryOutcome> ExecutePrepared(const std::string& name,
                                       const std::vector<Term>& args);

  /// Raw request round-trip for protocol extensions layered on the same
  /// frames (the replication verbs): sends `payload` verbatim and returns
  /// the raw response payload, with the usual 'E' error mapping. Set
  /// `retry_safe` only for idempotent requests — they are resent over a
  /// fresh connection per the retry policy, exactly like reads.
  Result<std::string> Call(const std::string& payload, bool retry_safe) {
    return RoundTrip(payload, retry_safe);
  }

 private:
  RemoteSession(int fd, std::string host, int port,
                std::chrono::milliseconds timeout, RetryOptions retry);

  /// Sends a statement and returns the raw (kind-tagged) response payload.
  /// When `retry_safe` is true (read-class statements and prepared calls —
  /// safe to run twice) a broken connection is re-established with backoff
  /// and the request resent, up to retry_.max_attempts tries. Timeouts are
  /// never retried: the server may still be executing the statement.
  Result<std::string> RoundTrip(const std::string& text,
                                bool retry_safe = false);

  /// Closes the current socket and dials the server again (one attempt;
  /// the caller owns the backoff loop).
  Status Reconnect();

  /// Next backoff delay for `attempt` (0-based), with jitter applied.
  std::chrono::milliseconds BackoffDelay(int attempt);

  int fd_ = -1;
  std::string host_;
  int port_ = 0;
  std::chrono::milliseconds timeout_{0};
  RetryOptions retry_;
  uint64_t rng_state_ = 0;  ///< xorshift state for retry jitter
};

/// The backoff schedule behind RemoteSession's retries, exposed as a pure
/// function of (options, attempt, rng state) so the policy is testable
/// without sockets: geometric growth by `multiplier` from
/// `initial_backoff`, capped at `max_backoff`, then ±`jitter` applied
/// uniformly. `rng_state` is xorshift64 state, advanced on every call
/// (with jitter 0 the result is exact and deterministic).
std::chrono::milliseconds RetryBackoff(
    const RemoteSession::RetryOptions& retry, int attempt,
    uint64_t* rng_state);

}  // namespace client
}  // namespace scisparql

#endif  // SCISPARQL_CLIENT_SERVER_H_
