#ifndef SCISPARQL_CLIENT_SERVER_H_
#define SCISPARQL_CLIENT_SERVER_H_

#include <atomic>
#include <thread>

#include "common/status.h"
#include "engine/ssdm.h"

namespace scisparql {
namespace client {

/// TCP server exposing an SSDM engine to remote SciSPARQL clients — the
/// client-server deployment mode of Section 5.1 (the Matlab integration of
/// Chapter 7 talks to SSDM exactly this way). One statement per request;
/// connections are handled sequentially on a background thread (the
/// prototype's single query-processing loop).
class SsdmServer {
 public:
  /// `engine` must outlive the server.
  explicit SsdmServer(SSDM* engine) : engine_(engine) {}
  ~SsdmServer() { Stop(); }

  SsdmServer(const SsdmServer&) = delete;
  SsdmServer& operator=(const SsdmServer&) = delete;

  /// Binds to 127.0.0.1:`port` (0 = ephemeral) and starts serving on a
  /// background thread. Returns the bound port.
  Result<int> Start(int port = 0);

  /// Stops accepting and joins the serving thread. Idempotent.
  void Stop();

  int port() const { return port_; }
  uint64_t requests_served() const { return requests_; }

 private:
  void Serve();
  void HandleConnection(int fd);

  SSDM* engine_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> requests_{0};
};

/// Client side: connects to an SsdmServer and executes statements.
class RemoteSession {
 public:
  ~RemoteSession();

  RemoteSession(const RemoteSession&) = delete;
  RemoteSession& operator=(const RemoteSession&) = delete;
  RemoteSession(RemoteSession&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }

  static Result<RemoteSession> Connect(const std::string& host, int port);

  /// SELECT queries; other statement forms are reported as errors.
  Result<sparql::QueryResult> Query(const std::string& text);

  /// ASK queries.
  Result<bool> Ask(const std::string& text);

  /// Updates / DEFINE; also accepts CONSTRUCT (returns the Turtle text).
  Result<std::string> Run(const std::string& text);

 private:
  explicit RemoteSession(int fd) : fd_(fd) {}

  /// Sends a statement and returns the raw (kind-tagged) response payload.
  Result<std::string> RoundTrip(const std::string& text);

  int fd_ = -1;
};

}  // namespace client
}  // namespace scisparql

#endif  // SCISPARQL_CLIENT_SERVER_H_
