#include "client/protocol.h"

#include <cstring>

namespace scisparql {
namespace client {

namespace {

void PutU32(std::string* out, uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  out->append(b, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  out->append(b, 8);
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

bool GetU32(const std::string& data, size_t* pos, uint32_t* v) {
  if (*pos + 4 > data.size()) return false;
  std::memcpy(v, data.data() + *pos, 4);
  *pos += 4;
  return true;
}

bool GetU64(const std::string& data, size_t* pos, uint64_t* v) {
  if (*pos + 8 > data.size()) return false;
  std::memcpy(v, data.data() + *pos, 8);
  *pos += 8;
  return true;
}

bool GetString(const std::string& data, size_t* pos, std::string* s) {
  uint32_t n;
  if (!GetU32(data, pos, &n) || *pos + n > data.size()) return false;
  s->assign(data, *pos, n);
  *pos += n;
  return true;
}

}  // namespace

Status SerializeTerm(const Term& term, std::string* out) {
  out->push_back(static_cast<char>(term.kind()));
  switch (term.kind()) {
    case Term::Kind::kUndef:
      return Status::OK();
    case Term::Kind::kIri:
      PutString(out, term.iri());
      return Status::OK();
    case Term::Kind::kBlank:
      PutString(out, term.blank_label());
      return Status::OK();
    case Term::Kind::kString:
      PutString(out, term.lexical());
      PutString(out, term.lang());
      return Status::OK();
    case Term::Kind::kInteger:
      PutU64(out, static_cast<uint64_t>(term.integer()));
      return Status::OK();
    case Term::Kind::kDouble: {
      uint64_t bits;
      double d = term.dbl();
      std::memcpy(&bits, &d, 8);
      PutU64(out, bits);
      return Status::OK();
    }
    case Term::Kind::kBoolean:
      out->push_back(term.boolean() ? 1 : 0);
      return Status::OK();
    case Term::Kind::kTypedLiteral:
      PutString(out, term.lexical());
      PutString(out, term.datatype());
      return Status::OK();
    case Term::Kind::kArray: {
      SCISPARQL_ASSIGN_OR_RETURN(NumericArray a, term.array()->Materialize());
      out->push_back(static_cast<char>(a.etype()));
      PutU32(out, static_cast<uint32_t>(a.rank()));
      for (int64_t d : a.shape()) PutU64(out, static_cast<uint64_t>(d));
      int64_t n = a.NumElements();
      for (int64_t i = 0; i < n; ++i) {
        if (a.etype() == ElementType::kDouble) {
          double v = a.DoubleAt(i);
          uint64_t bits;
          std::memcpy(&bits, &v, 8);
          PutU64(out, bits);
        } else {
          PutU64(out, static_cast<uint64_t>(a.IntAt(i)));
        }
      }
      return Status::OK();
    }
  }
  return Status::Internal("unknown term kind");
}

Result<Term> DeserializeTerm(const std::string& data, size_t* pos) {
  if (*pos >= data.size()) return Status::Internal("truncated term");
  Term::Kind kind = static_cast<Term::Kind>(data[(*pos)++]);
  auto fail = []() { return Status::Internal("truncated term payload"); };
  switch (kind) {
    case Term::Kind::kUndef:
      return Term();
    case Term::Kind::kIri: {
      std::string s;
      if (!GetString(data, pos, &s)) return fail();
      return Term::Iri(std::move(s));
    }
    case Term::Kind::kBlank: {
      std::string s;
      if (!GetString(data, pos, &s)) return fail();
      return Term::Blank(std::move(s));
    }
    case Term::Kind::kString: {
      std::string s, lang;
      if (!GetString(data, pos, &s) || !GetString(data, pos, &lang)) {
        return fail();
      }
      return lang.empty() ? Term::String(std::move(s))
                          : Term::LangString(std::move(s), std::move(lang));
    }
    case Term::Kind::kInteger: {
      uint64_t v;
      if (!GetU64(data, pos, &v)) return fail();
      return Term::Integer(static_cast<int64_t>(v));
    }
    case Term::Kind::kDouble: {
      uint64_t bits;
      if (!GetU64(data, pos, &bits)) return fail();
      double d;
      std::memcpy(&d, &bits, 8);
      return Term::Double(d);
    }
    case Term::Kind::kBoolean: {
      if (*pos >= data.size()) return fail();
      return Term::Boolean(data[(*pos)++] != 0);
    }
    case Term::Kind::kTypedLiteral: {
      std::string lex, dt;
      if (!GetString(data, pos, &lex) || !GetString(data, pos, &dt)) {
        return fail();
      }
      return Term::TypedLiteral(std::move(lex), std::move(dt));
    }
    case Term::Kind::kArray: {
      if (*pos >= data.size()) return fail();
      ElementType etype = static_cast<ElementType>(data[(*pos)++]);
      uint32_t rank;
      if (!GetU32(data, pos, &rank)) return fail();
      std::vector<int64_t> shape(rank);
      for (uint32_t d = 0; d < rank; ++d) {
        uint64_t v;
        if (!GetU64(data, pos, &v)) return fail();
        shape[d] = static_cast<int64_t>(v);
      }
      NumericArray a = NumericArray::Zeros(etype, shape);
      int64_t n = a.NumElements();
      for (int64_t i = 0; i < n; ++i) {
        uint64_t bits;
        if (!GetU64(data, pos, &bits)) return fail();
        if (etype == ElementType::kDouble) {
          double d;
          std::memcpy(&d, &bits, 8);
          a.SetDoubleAt(i, d);
        } else {
          a.SetIntAt(i, static_cast<int64_t>(bits));
        }
      }
      return Term::Array(ResidentArray::Make(std::move(a)));
    }
  }
  return Status::Internal("unknown term kind tag");
}

std::string SerializeResult(const sparql::QueryResult& result) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(result.columns.size()));
  for (const std::string& c : result.columns) PutString(&out, c);
  PutU32(&out, static_cast<uint32_t>(result.rows.size()));
  for (const auto& row : result.rows) {
    for (const Term& t : row) {
      Status st = SerializeTerm(t, &out);
      if (!st.ok()) {
        // Unserializable cell (e.g. dead proxy): degrade to UNDEF.
        out.push_back(static_cast<char>(Term::Kind::kUndef));
      }
    }
  }
  return out;
}

Result<sparql::QueryResult> DeserializeResult(const std::string& data) {
  sparql::QueryResult result;
  size_t pos = 0;
  uint32_t cols;
  if (!GetU32(data, &pos, &cols)) return Status::Internal("bad result");
  for (uint32_t c = 0; c < cols; ++c) {
    std::string name;
    if (!GetString(data, &pos, &name)) return Status::Internal("bad result");
    result.columns.push_back(std::move(name));
  }
  uint32_t rows;
  if (!GetU32(data, &pos, &rows)) return Status::Internal("bad result");
  for (uint32_t r = 0; r < rows; ++r) {
    std::vector<Term> row;
    for (uint32_t c = 0; c < cols; ++c) {
      SCISPARQL_ASSIGN_OR_RETURN(Term t, DeserializeTerm(data, &pos));
      row.push_back(std::move(t));
    }
    result.rows.push_back(std::move(row));
  }
  return result;
}

std::string Frame(const std::string& payload) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  out += payload;
  return out;
}

namespace {

constexpr uint8_t kFlagWantTrace = 1u << 0;
constexpr uint8_t kFlagHasOptimize = 1u << 1;
constexpr uint8_t kFlagOptimizeValue = 1u << 2;
constexpr uint8_t kFlagHasPushFilters = 1u << 3;
constexpr uint8_t kFlagPushFiltersValue = 1u << 4;
constexpr uint8_t kFlagPreparedExec = 1u << 5;

}  // namespace

std::string EncodeRequest(const WireRequest& req) {
  std::string out;
  out.push_back(kStructuredMarker);
  uint8_t flags = 0;
  if (req.want_trace) flags |= kFlagWantTrace;
  if (req.has_optimize) {
    flags |= kFlagHasOptimize;
    if (req.optimize) flags |= kFlagOptimizeValue;
  }
  if (req.has_push_filters) {
    flags |= kFlagHasPushFilters;
    if (req.push_filters) flags |= kFlagPushFiltersValue;
  }
  if (req.is_prepared) flags |= kFlagPreparedExec;
  out.push_back(static_cast<char>(flags));
  PutU64(&out, static_cast<uint64_t>(req.timeout.count()));
  if (req.is_prepared) {
    PutString(&out, req.prepared_name);
    PutU32(&out, static_cast<uint32_t>(req.prepared_args.size()));
    for (const Term& a : req.prepared_args) {
      Status st = SerializeTerm(a, &out);
      if (!st.ok()) {
        // Unserializable argument (e.g. dead proxy): degrade to UNDEF, as
        // the result serializer does for cells.
        out.push_back(static_cast<char>(Term::Kind::kUndef));
      }
    }
    return out;
  }
  out += req.text;
  return out;
}

Result<WireRequest> DecodeRequest(const std::string& payload) {
  if (payload.size() < 10 || payload[0] != kStructuredMarker) {
    return Status::InvalidArgument("malformed structured request");
  }
  WireRequest req;
  uint8_t flags = static_cast<uint8_t>(payload[1]);
  req.want_trace = (flags & kFlagWantTrace) != 0;
  req.has_optimize = (flags & kFlagHasOptimize) != 0;
  req.optimize = (flags & kFlagOptimizeValue) != 0;
  req.has_push_filters = (flags & kFlagHasPushFilters) != 0;
  req.push_filters = (flags & kFlagPushFiltersValue) != 0;
  uint64_t timeout_ms = 0;
  std::memcpy(&timeout_ms, payload.data() + 2, 8);
  req.timeout = std::chrono::milliseconds(timeout_ms);
  if ((flags & kFlagPreparedExec) != 0) {
    req.is_prepared = true;
    size_t pos = 10;
    uint32_t argc = 0;
    if (!GetString(payload, &pos, &req.prepared_name) ||
        !GetU32(payload, &pos, &argc)) {
      return Status::InvalidArgument("malformed prepared-exec request");
    }
    req.prepared_args.reserve(argc);
    for (uint32_t i = 0; i < argc; ++i) {
      SCISPARQL_ASSIGN_OR_RETURN(Term t, DeserializeTerm(payload, &pos));
      req.prepared_args.push_back(std::move(t));
    }
    return req;
  }
  req.text = payload.substr(10);
  return req;
}

std::string EncodeResponse(const WireResponse& resp) {
  std::string out;
  out.push_back(kStructuredMarker);
  out.push_back(resp.kind);
  PutU32(&out, static_cast<uint32_t>(resp.body.size()));
  out += resp.body;
  out += resp.trace;
  return out;
}

Result<WireResponse> DecodeResponse(const std::string& payload) {
  if (payload.size() < 6 || payload[0] != kStructuredMarker) {
    return Status::IoError("malformed structured response");
  }
  WireResponse resp;
  resp.kind = payload[1];
  size_t pos = 2;
  uint32_t body_len = 0;
  if (!GetU32(payload, &pos, &body_len) ||
      pos + body_len > payload.size()) {
    return Status::IoError("truncated structured response");
  }
  resp.body = payload.substr(pos, body_len);
  resp.trace = payload.substr(pos + body_len);
  return resp;
}

}  // namespace client
}  // namespace scisparql
