#include "client/protocol.h"

#include <cstring>

#include "rdf/term_codec.h"

namespace scisparql {
namespace client {

using rdf::GetString;
using rdf::GetU32;
using rdf::GetU64;
using rdf::PutString;
using rdf::PutU32;
using rdf::PutU64;

Status SerializeTerm(const Term& term, std::string* out) {
  return rdf::SerializeTerm(term, out);
}

Result<Term> DeserializeTerm(const std::string& data, size_t* pos) {
  return rdf::DeserializeTerm(data, pos);
}

std::string SerializeResult(const sparql::QueryResult& result) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(result.columns.size()));
  for (const std::string& c : result.columns) PutString(&out, c);
  PutU32(&out, static_cast<uint32_t>(result.rows.size()));
  for (const auto& row : result.rows) {
    for (const Term& t : row) {
      Status st = SerializeTerm(t, &out);
      if (!st.ok()) {
        // Unserializable cell (e.g. dead proxy): degrade to UNDEF.
        out.push_back(static_cast<char>(Term::Kind::kUndef));
      }
    }
  }
  return out;
}

Result<sparql::QueryResult> DeserializeResult(const std::string& data) {
  sparql::QueryResult result;
  size_t pos = 0;
  uint32_t cols;
  if (!GetU32(data, &pos, &cols)) return Status::Internal("bad result");
  for (uint32_t c = 0; c < cols; ++c) {
    std::string name;
    if (!GetString(data, &pos, &name)) return Status::Internal("bad result");
    result.columns.push_back(std::move(name));
  }
  uint32_t rows;
  if (!GetU32(data, &pos, &rows)) return Status::Internal("bad result");
  for (uint32_t r = 0; r < rows; ++r) {
    std::vector<Term> row;
    for (uint32_t c = 0; c < cols; ++c) {
      SCISPARQL_ASSIGN_OR_RETURN(Term t, DeserializeTerm(data, &pos));
      row.push_back(std::move(t));
    }
    result.rows.push_back(std::move(row));
  }
  return result;
}

std::string Frame(const std::string& payload) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  out += payload;
  return out;
}

namespace {

constexpr uint8_t kFlagWantTrace = 1u << 0;
constexpr uint8_t kFlagHasOptimize = 1u << 1;
constexpr uint8_t kFlagOptimizeValue = 1u << 2;
constexpr uint8_t kFlagHasPushFilters = 1u << 3;
constexpr uint8_t kFlagPushFiltersValue = 1u << 4;
constexpr uint8_t kFlagPreparedExec = 1u << 5;

}  // namespace

std::string EncodeRequest(const WireRequest& req) {
  std::string out;
  out.push_back(kStructuredMarker);
  uint8_t flags = 0;
  if (req.want_trace) flags |= kFlagWantTrace;
  if (req.has_optimize) {
    flags |= kFlagHasOptimize;
    if (req.optimize) flags |= kFlagOptimizeValue;
  }
  if (req.has_push_filters) {
    flags |= kFlagHasPushFilters;
    if (req.push_filters) flags |= kFlagPushFiltersValue;
  }
  if (req.is_prepared) flags |= kFlagPreparedExec;
  out.push_back(static_cast<char>(flags));
  PutU64(&out, static_cast<uint64_t>(req.timeout.count()));
  if (req.is_prepared) {
    PutString(&out, req.prepared_name);
    PutU32(&out, static_cast<uint32_t>(req.prepared_args.size()));
    for (const Term& a : req.prepared_args) {
      Status st = SerializeTerm(a, &out);
      if (!st.ok()) {
        // Unserializable argument (e.g. dead proxy): degrade to UNDEF, as
        // the result serializer does for cells.
        out.push_back(static_cast<char>(Term::Kind::kUndef));
      }
    }
    return out;
  }
  out += req.text;
  return out;
}

Result<WireRequest> DecodeRequest(const std::string& payload) {
  if (payload.size() < 10 || payload[0] != kStructuredMarker) {
    return Status::InvalidArgument("malformed structured request");
  }
  WireRequest req;
  uint8_t flags = static_cast<uint8_t>(payload[1]);
  req.want_trace = (flags & kFlagWantTrace) != 0;
  req.has_optimize = (flags & kFlagHasOptimize) != 0;
  req.optimize = (flags & kFlagOptimizeValue) != 0;
  req.has_push_filters = (flags & kFlagHasPushFilters) != 0;
  req.push_filters = (flags & kFlagPushFiltersValue) != 0;
  uint64_t timeout_ms = 0;
  std::memcpy(&timeout_ms, payload.data() + 2, 8);
  req.timeout = std::chrono::milliseconds(timeout_ms);
  if ((flags & kFlagPreparedExec) != 0) {
    req.is_prepared = true;
    size_t pos = 10;
    uint32_t argc = 0;
    if (!GetString(payload, &pos, &req.prepared_name) ||
        !GetU32(payload, &pos, &argc)) {
      return Status::InvalidArgument("malformed prepared-exec request");
    }
    req.prepared_args.reserve(argc);
    for (uint32_t i = 0; i < argc; ++i) {
      SCISPARQL_ASSIGN_OR_RETURN(Term t, DeserializeTerm(payload, &pos));
      req.prepared_args.push_back(std::move(t));
    }
    return req;
  }
  req.text = payload.substr(10);
  return req;
}

std::string EncodeResponse(const WireResponse& resp) {
  std::string out;
  out.push_back(kStructuredMarker);
  out.push_back(resp.kind);
  PutU32(&out, static_cast<uint32_t>(resp.body.size()));
  out += resp.body;
  out += resp.trace;
  return out;
}

Result<WireResponse> DecodeResponse(const std::string& payload) {
  if (payload.size() < 6 || payload[0] != kStructuredMarker) {
    return Status::IoError("malformed structured response");
  }
  WireResponse resp;
  resp.kind = payload[1];
  size_t pos = 2;
  uint32_t body_len = 0;
  if (!GetU32(payload, &pos, &body_len) ||
      pos + body_len > payload.size()) {
    return Status::IoError("truncated structured response");
  }
  resp.body = payload.substr(pos, body_len);
  resp.trace = payload.substr(pos + body_len);
  return resp;
}

}  // namespace client
}  // namespace scisparql
