#ifndef SCISPARQL_CLIENT_PROTOCOL_H_
#define SCISPARQL_CLIENT_PROTOCOL_H_

#include <string>

#include "common/status.h"
#include "rdf/term.h"
#include "sparql/executor.h"

namespace scisparql {
namespace client {

/// Wire protocol of the SSDM client-server mode (Section 5.1 positions
/// SSDM as "a stand-alone system, a client-server system, or a cluster of
/// processes"). Messages are length-prefixed byte strings:
///
///   request:  [u32 length][statement text]
///   response: [u32 length][payload]
///
/// The payload starts with a one-byte kind tag:
///   'R' rows    — serialized QueryResult (SELECT)
///   'B' boolean — one byte (ASK)
///   'G' graph   — Turtle text (CONSTRUCT / DESCRIBE)
///   'O' ok      — empty (updates / DEFINE)
///   'E' error   — status code byte + message
///   'S' stats   — scheduler counters + engine optimizer statistics as
///                 text (reply to the "STATS" verb)
///   'I' info    — plan/diagnostic text (reply to EXPLAIN statements)
///
/// Every request — including the STATS verb and EXPLAIN statements, both
/// classified as reads — is submitted to the query scheduler, so engine
/// access always happens under its reader-writer lock; the server only
/// adds its local scheduler counters to the STATS reply.
///
/// Terms serialize with a kind tag; arrays travel as shape + row-major
/// elements (proxies are materialized server-side — the client always
/// receives resident data, which is what the Matlab integration does).

/// Serializes one term (including arrays) to bytes.
Status SerializeTerm(const Term& term, std::string* out);

/// Deserializes a term; advances *pos.
Result<Term> DeserializeTerm(const std::string& data, size_t* pos);

/// Serializes a SELECT result.
std::string SerializeResult(const sparql::QueryResult& result);
Result<sparql::QueryResult> DeserializeResult(const std::string& data);

/// Frames a payload with the u32 length prefix.
std::string Frame(const std::string& payload);

}  // namespace client
}  // namespace scisparql

#endif  // SCISPARQL_CLIENT_PROTOCOL_H_
