#ifndef SCISPARQL_CLIENT_PROTOCOL_H_
#define SCISPARQL_CLIENT_PROTOCOL_H_

#include <chrono>
#include <string>
#include <vector>

#include "common/status.h"
#include "rdf/term.h"
#include "sparql/executor.h"

namespace scisparql {
namespace client {

/// Wire protocol of the SSDM client-server mode (Section 5.1 positions
/// SSDM as "a stand-alone system, a client-server system, or a cluster of
/// processes"). Messages are length-prefixed byte strings:
///
///   request:  [u32 length][payload]
///   response: [u32 length][payload]
///
/// Two request forms share the frame. A payload whose first byte is 0x01
/// is a *structured* request — the wire mirror of engine::QueryRequest:
///
///   [0x01][flags u8][timeout_ms u64 LE][statement text]
///     flags bit 0: record a trace and return it with the response
///     flags bit 1: override optimize_join_order; bit 2: its value
///     flags bit 3: override push_filters;       bit 4: its value
///     flags bit 5: prepared execution — the payload after the header is
///                  [name string][argc u32][term]* instead of statement
///                  text (the wire mirror of QueryRequest::prepared;
///                  strings are u32-length-prefixed, terms use the term
///                  serialization below)
///
/// (No SciSPARQL statement starts with byte 0x01, so the marker cannot
/// collide with a legacy text request.) A structured request is answered
/// with a structured response:
///
///   [0x01][kind u8][u32 LE body length][body][rendered trace text]
///     kind 'R' rows    — serialized QueryResult (SELECT)
///          'B' boolean — one byte (ASK)
///          'G' graph   — Turtle text (CONSTRUCT / DESCRIBE)
///          'U' update  — decimal triples-touched count (updates / DEFINE),
///                        optionally followed by " <commit lsn>" on durable
///                        engines (the client's read-your-writes token)
///          'I' info    — EXPLAIN [ANALYZE] / STATS / METRICS text
///
/// A payload whose first byte is 0x02 is a *replication* request — LSN
/// probes, WAL-batch fetches and bootstrap snapshots, documented in
/// repl/wire.h — served by the same port and frame format.
///
/// Any other first byte is a legacy request: the bare statement text,
/// answered with a one-byte kind tag + body:
///   'R' rows, 'B' boolean, 'G' graph, 'O' ok (updates / DEFINE),
///   'I' info, 'S' stats ("STATS" verb: scheduler counters + engine
///   optimizer statistics).
///
/// Errors use 'E' (status code byte + message) in both forms.
///
/// Every request — including the STATS/METRICS verbs and EXPLAIN
/// statements, all classified as reads — is submitted to the query
/// scheduler, so engine access always happens under its reader-writer
/// lock; the server only adds its local scheduler counters to the STATS
/// reply.
///
/// Terms serialize with a kind tag; arrays travel as shape + row-major
/// elements (proxies are materialized server-side — the client always
/// receives resident data, which is what the Matlab integration does).

/// Serializes one term (including arrays) to bytes.
Status SerializeTerm(const Term& term, std::string* out);

/// Deserializes a term; advances *pos.
Result<Term> DeserializeTerm(const std::string& data, size_t* pos);

/// Serializes a SELECT result.
std::string SerializeResult(const sparql::QueryResult& result);
Result<sparql::QueryResult> DeserializeResult(const std::string& data);

/// Frames a payload with the u32 length prefix.
std::string Frame(const std::string& payload);

/// First byte of structured request and response payloads.
constexpr char kStructuredMarker = '\x01';

/// Decoded structured request — the wire mirror of engine::QueryRequest.
struct WireRequest {
  std::string text;
  std::chrono::milliseconds timeout{0};
  bool want_trace = false;
  bool has_optimize = false;
  bool optimize = true;
  bool has_push_filters = false;
  bool push_filters = true;
  /// Prepared execution (flag bit 5): run the statement PREPARE'd under
  /// `prepared_name` with these ground arguments; `text` is unused.
  bool is_prepared = false;
  std::string prepared_name;
  std::vector<Term> prepared_args;
};

std::string EncodeRequest(const WireRequest& req);
/// Decodes a payload that starts with kStructuredMarker.
Result<WireRequest> DecodeRequest(const std::string& payload);

/// Decoded structured response: kind tag, kind-specific body, and the
/// rendered trace (empty unless the request asked for one).
struct WireResponse {
  char kind = 'I';
  std::string body;
  std::string trace;
};

std::string EncodeResponse(const WireResponse& resp);
Result<WireResponse> DecodeResponse(const std::string& payload);

}  // namespace client
}  // namespace scisparql

#endif  // SCISPARQL_CLIENT_PROTOCOL_H_
