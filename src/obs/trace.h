#ifndef SCISPARQL_OBS_TRACE_H_
#define SCISPARQL_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace scisparql {
namespace obs {

/// One node of a query's trace tree: a named phase or operator with wall
/// and thread-CPU time plus free-form attributes (rows in/out, estimated
/// cardinality, ...). Spans are owned by their parent; the tree is built
/// by one thread (the worker executing the query) and read after the
/// query finishes, so no synchronization is needed.
struct TraceSpan {
  std::string name;
  double wall_ms = 0;
  double cpu_ms = 0;
  std::vector<std::pair<std::string, std::string>> attrs;
  std::vector<std::unique_ptr<TraceSpan>> children;

  void SetAttr(std::string key, std::string value) {
    attrs.emplace_back(std::move(key), std::move(value));
  }
  void SetAttr(std::string key, int64_t value) {
    attrs.emplace_back(std::move(key), std::to_string(value));
  }
};

/// Per-query structured trace: the span tree covering
/// parse -> translate/optimize -> execute -> serialize, populated by the
/// engine and the executor's profiling hooks when a trace sink is attached
/// to a QueryRequest. With no sink attached nothing in the hot paths runs
/// beyond a null-pointer test.
class QueryTrace {
 public:
  QueryTrace();

  QueryTrace(const QueryTrace&) = delete;
  QueryTrace& operator=(const QueryTrace&) = delete;

  TraceSpan* root() { return root_.get(); }
  const TraceSpan* root() const { return root_.get(); }

  /// Appends a child span under `parent` (nullptr = root).
  TraceSpan* AddChild(TraceSpan* parent, std::string name);

  /// The span executor hooks attach operator details under (defaults to
  /// the root; the engine points it at the "execute" phase span).
  TraceSpan* attach_point() { return attach_ != nullptr ? attach_ : root(); }
  void set_attach_point(TraceSpan* span) { attach_ = span; }

  /// Indented text rendering of the tree:
  ///   query  wall=1.23ms cpu=1.10ms
  ///     execute  wall=1.01ms cpu=0.99ms
  ///       scan ?a <p> ?b  (est 100, in 1, out 42)
  std::string Render() const;

  /// A trace produced on a remote server arrives pre-rendered; adopting it
  /// makes Render() return the server-side tree so RemoteSession offers
  /// the same surface as the embedded Session.
  void AdoptRendered(std::string rendered) { rendered_ = std::move(rendered); }

 private:
  std::unique_ptr<TraceSpan> root_;
  TraceSpan* attach_ = nullptr;
  std::string rendered_;
};

/// RAII phase timer: records wall and thread-CPU time into a span when it
/// goes out of scope (or Stop() is called). Null-span safe, so call sites
/// don't need to branch on whether tracing is on.
class SpanTimer {
 public:
  explicit SpanTimer(TraceSpan* span);
  ~SpanTimer() { Stop(); }

  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

  void Stop();

 private:
  TraceSpan* span_;
  std::chrono::steady_clock::time_point wall_start_;
  uint64_t cpu_start_ns_ = 0;
};

/// Current thread's CPU time in nanoseconds (CLOCK_THREAD_CPUTIME_ID);
/// 0 when unavailable.
uint64_t ThreadCpuNanos();

}  // namespace obs
}  // namespace scisparql

#endif  // SCISPARQL_OBS_TRACE_H_
