#include "obs/metrics.h"

#include <sstream>

namespace scisparql {
namespace obs {

namespace {
std::atomic<bool> g_enabled{true};
}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }
void SetEnabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

size_t ShardIndex() {
  static std::atomic<size_t> next{0};
  thread_local size_t idx =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return idx;
}

constexpr std::array<uint64_t, 7> Histogram::kBounds;

MetricsRegistry::Entry& MetricsRegistry::GetEntry(const std::string& family,
                                                  const std::string& labels,
                                                  const std::string& help,
                                                  Kind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& instruments = entries_[family];
  auto it = instruments.find(labels);
  if (it == instruments.end()) {
    auto entry = std::make_unique<Entry>();
    entry->family = family;
    entry->labels = labels;
    entry->help = help;
    entry->kind = kind;
    switch (kind) {
      case Kind::kCounter:
        entry->counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        entry->gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        entry->histogram = std::make_unique<Histogram>();
        break;
    }
    it = instruments.emplace(labels, std::move(entry)).first;
  }
  return *it->second;
}

Counter& MetricsRegistry::GetCounter(const std::string& family,
                                     const std::string& labels,
                                     const std::string& help) {
  return *GetEntry(family, labels, help, Kind::kCounter).counter;
}

Gauge& MetricsRegistry::GetGauge(const std::string& family,
                                 const std::string& labels,
                                 const std::string& help) {
  return *GetEntry(family, labels, help, Kind::kGauge).gauge;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& family,
                                         const std::string& labels,
                                         const std::string& help) {
  return *GetEntry(family, labels, help, Kind::kHistogram).histogram;
}

namespace {

/// `name` or `name{labels}` — also merges extra labels (`le`) into an
/// existing label set.
std::string SampleName(const std::string& family, const std::string& labels,
                       const std::string& extra = "") {
  std::string all = labels;
  if (!extra.empty()) {
    if (!all.empty()) all += ",";
    all += extra;
  }
  if (all.empty()) return family;
  return family + "{" + all + "}";
}

}  // namespace

std::string MetricsRegistry::RenderPrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  for (const auto& [family, instruments] : entries_) {
    if (instruments.empty()) continue;
    const Entry& first = *instruments.begin()->second;
    if (!first.help.empty()) {
      out << "# HELP " << family << " " << first.help << "\n";
    }
    const char* type = first.kind == Kind::kCounter   ? "counter"
                       : first.kind == Kind::kGauge   ? "gauge"
                                                      : "histogram";
    out << "# TYPE " << family << " " << type << "\n";
    for (const auto& [labels, entry] : instruments) {
      switch (entry->kind) {
        case Kind::kCounter:
          out << SampleName(family, labels) << " " << entry->counter->Value()
              << "\n";
          break;
        case Kind::kGauge:
          out << SampleName(family, labels) << " " << entry->gauge->Value()
              << "\n";
          break;
        case Kind::kHistogram: {
          auto counts = entry->histogram->BucketCounts();
          uint64_t cumulative = 0;
          for (size_t b = 0; b < Histogram::kBounds.size(); ++b) {
            cumulative += counts[b];
            out << SampleName(family + "_bucket", labels,
                              "le=\"" +
                                  std::to_string(Histogram::kBounds[b]) +
                                  "\"")
                << " " << cumulative << "\n";
          }
          cumulative += counts[Histogram::kBounds.size()];
          out << SampleName(family + "_bucket", labels, "le=\"+Inf\"") << " "
              << cumulative << "\n";
          out << SampleName(family + "_sum", labels) << " "
              << entry->histogram->SumMicros() << "\n";
          out << SampleName(family + "_count", labels) << " " << cumulative
              << "\n";
          break;
        }
      }
    }
  }
  return out.str();
}

MetricsRegistry& DefaultMetrics() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace obs
}  // namespace scisparql
