#include "obs/trace.h"

#include <ctime>
#include <sstream>

namespace scisparql {
namespace obs {

uint64_t ThreadCpuNanos() {
#ifdef CLOCK_THREAD_CPUTIME_ID
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
#else
  return 0;
#endif
}

QueryTrace::QueryTrace() : root_(std::make_unique<TraceSpan>()) {
  root_->name = "query";
}

TraceSpan* QueryTrace::AddChild(TraceSpan* parent, std::string name) {
  if (parent == nullptr) parent = root();
  auto span = std::make_unique<TraceSpan>();
  span->name = std::move(name);
  TraceSpan* raw = span.get();
  parent->children.push_back(std::move(span));
  return raw;
}

namespace {

std::string FmtMs(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

void RenderSpan(const TraceSpan& span, int depth, std::ostringstream* out) {
  *out << std::string(static_cast<size_t>(depth) * 2, ' ') << span.name;
  if (span.wall_ms > 0 || span.cpu_ms > 0) {
    *out << "  wall=" << FmtMs(span.wall_ms) << "ms cpu=" << FmtMs(span.cpu_ms)
         << "ms";
  }
  if (!span.attrs.empty()) {
    *out << "  (";
    for (size_t i = 0; i < span.attrs.size(); ++i) {
      if (i > 0) *out << ", ";
      *out << span.attrs[i].first << " " << span.attrs[i].second;
    }
    *out << ")";
  }
  *out << "\n";
  for (const auto& child : span.children) {
    RenderSpan(*child, depth + 1, out);
  }
}

}  // namespace

std::string QueryTrace::Render() const {
  if (!rendered_.empty()) return rendered_;
  std::ostringstream out;
  RenderSpan(*root_, 0, &out);
  return out.str();
}

SpanTimer::SpanTimer(TraceSpan* span) : span_(span) {
  if (span_ == nullptr) return;
  wall_start_ = std::chrono::steady_clock::now();
  cpu_start_ns_ = ThreadCpuNanos();
}

void SpanTimer::Stop() {
  if (span_ == nullptr) return;
  auto wall_end = std::chrono::steady_clock::now();
  span_->wall_ms +=
      std::chrono::duration<double, std::milli>(wall_end - wall_start_)
          .count();
  uint64_t cpu_end = ThreadCpuNanos();
  if (cpu_end >= cpu_start_ns_ && cpu_start_ns_ != 0) {
    span_->cpu_ms += static_cast<double>(cpu_end - cpu_start_ns_) / 1e6;
  }
  span_ = nullptr;
}

}  // namespace obs
}  // namespace scisparql
