#ifndef SCISPARQL_OBS_METRICS_H_
#define SCISPARQL_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace scisparql {
namespace obs {

/// Process-wide observability kill switch. All metric mutations check it
/// with one relaxed load, so a deployment that wants zero bookkeeping can
/// turn the whole layer off; the overhead benchmark compares against this
/// path to bound the cost of leaving it on.
bool Enabled();
void SetEnabled(bool on);

/// Number of atomic shards per metric. Writers pick a shard from a
/// thread-local index, so concurrent workers update disjoint cache lines;
/// readers merge all shards. 16 comfortably covers the scheduler's default
/// worker pool without making reads expensive.
constexpr size_t kMetricShards = 16;

/// Stable per-thread shard index in [0, kMetricShards).
size_t ShardIndex();

namespace internal {
/// One cache line per shard so concurrent writers don't false-share.
struct alignas(64) Shard {
  std::atomic<uint64_t> value{0};
};
}  // namespace internal

/// Monotonic counter. Add() is wait-free: one relaxed fetch_add on a
/// per-thread shard. Value() merges the shards; it can race with writers,
/// so it is monotonic but only eventually exact — the right contract for
/// an exposition endpoint.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    if (!Enabled()) return;
    shards_[ShardIndex()].value.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  std::array<internal::Shard, kMetricShards> shards_;
};

/// Instantaneous value (queue depth, live connections). A gauge is
/// last-writer-wins for Set and sharded for Add/Sub; exposition reads the
/// signed sum.
class Gauge {
 public:
  void Set(int64_t v) {
    if (!Enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void Add(int64_t n) {
    if (!Enabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void Sub(int64_t n) { Add(-n); }

  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket latency histogram over microseconds, with the classic
/// Prometheus cumulative-bucket exposition. Buckets are powers of ten from
/// 10us to 10s plus +Inf; fixed bounds keep Observe() allocation-free and
/// the shards mergeable without locks.
class Histogram {
 public:
  /// Upper bounds (inclusive, in microseconds) of the finite buckets.
  static constexpr std::array<uint64_t, 7> kBounds = {
      10, 100, 1000, 10000, 100000, 1000000, 10000000};
  static constexpr size_t kBuckets = kBounds.size() + 1;  // + overflow

  void Observe(uint64_t micros) {
    if (!Enabled()) return;
    size_t b = 0;
    while (b < kBounds.size() && micros > kBounds[b]) ++b;
    internal::Shard* shard = &shards_[ShardIndex() * kBuckets];
    shard[b].value.fetch_add(1, std::memory_order_relaxed);
    sum_[ShardIndex()].value.fetch_add(micros, std::memory_order_relaxed);
  }

  /// Merged per-bucket counts (non-cumulative), overflow bucket last.
  std::array<uint64_t, kBuckets> BucketCounts() const {
    std::array<uint64_t, kBuckets> out{};
    for (size_t s = 0; s < kMetricShards; ++s) {
      for (size_t b = 0; b < kBuckets; ++b) {
        out[b] += shards_[s * kBuckets + b].value.load(
            std::memory_order_relaxed);
      }
    }
    return out;
  }

  uint64_t Count() const {
    uint64_t total = 0;
    for (uint64_t c : BucketCounts()) total += c;
    return total;
  }

  uint64_t SumMicros() const {
    uint64_t total = 0;
    for (const auto& s : sum_) total += s.value.load(std::memory_order_relaxed);
    return total;
  }

 private:
  std::array<internal::Shard, kMetricShards * kBuckets> shards_;
  std::array<internal::Shard, kMetricShards> sum_;
};

/// Registry of named metrics with Prometheus-style text exposition.
///
/// Naming scheme: `ssdm_<subsystem>_<what>[_total]`, with an optional
/// label set baked into the instrument (e.g. family "ssdm_query_micros",
/// labels `class="read"`). Registration takes a mutex (it happens once per
/// metric, at first use); the returned handle is valid for the registry's
/// lifetime and all mutations on it are lock-free. Hot paths cache the
/// handle in a static or member pointer.
class MetricsRegistry {
 public:
  /// Returns the metric registered under (family, labels), creating it on
  /// first use. `help` is kept from the first registration.
  Counter& GetCounter(const std::string& family, const std::string& labels,
                      const std::string& help);
  Gauge& GetGauge(const std::string& family, const std::string& labels,
                  const std::string& help);
  Histogram& GetHistogram(const std::string& family, const std::string& labels,
                          const std::string& help);

  /// Prometheus text exposition (version 0.0.4): `# HELP` / `# TYPE` per
  /// family followed by one sample line per instrument; histograms expand
  /// into cumulative `_bucket{le=...}` samples plus `_sum` and `_count`.
  std::string RenderPrometheusText() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Entry {
    std::string family;
    std::string labels;  // rendered inner label list, e.g. `class="read"`
    std::string help;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& GetEntry(const std::string& family, const std::string& labels,
                  const std::string& help, Kind kind);

  mutable std::mutex mu_;
  /// Keyed by family, then labels: keeps families contiguous so the
  /// exposition emits HELP/TYPE once per family.
  std::map<std::string, std::map<std::string, std::unique_ptr<Entry>>>
      entries_;
};

/// The process-default registry every subsystem records into.
MetricsRegistry& DefaultMetrics();

}  // namespace obs
}  // namespace scisparql

#endif  // SCISPARQL_OBS_METRICS_H_
