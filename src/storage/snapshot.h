#ifndef SCISPARQL_STORAGE_SNAPSHOT_H_
#define SCISPARQL_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "storage/vfs.h"

namespace scisparql {
namespace storage {

/// One graph's worth of snapshot data. The body is the engine's Turtle
/// serialization — human-readable on its own, but wrapped here in a binary
/// envelope that adds per-section CRCs and a footer.
struct SnapshotSection {
  std::string graph_iri;  ///< "" = default graph.
  std::string turtle;
};

struct SnapshotGraphInfo {
  std::string iri;  ///< "" = default graph.
  uint64_t version = 0;
  uint64_t triples = 0;
};

/// Trailing metadata. `wal_lsn` is the highest LSN whose effects are
/// contained in the snapshot; recovery replays the WAL strictly after it.
struct SnapshotFooter {
  uint64_t wal_lsn = 0;
  uint64_t term = 0;  ///< Replication fencing term at snapshot time.
  std::vector<SnapshotGraphInfo> graphs;
};

struct SnapshotContents {
  std::vector<SnapshotSection> sections;
  SnapshotFooter footer;
};

/// On-disk envelope:
///
///   header:  "SSNP" u32 | format u32
///   section: [u8 0x01][u32 iri_len][iri][u64 body_len][body]
///            [u32 masked crc32c(iri || body)]
///   footer:  [u8 0x02][u32 payload_len][payload][u32 masked crc32c(payload)]
///   payload: u64 wal_lsn | u32 n_graphs | n x (string iri, u64 version,
///            u64 triples)
///
/// WriteSnapshot writes `path + ".tmp"`, fsyncs, then atomically renames
/// over `path` (the VFS rename also fsyncs the directory), so a crash
/// mid-write never damages an existing snapshot.
Status WriteSnapshot(Vfs* vfs, const std::string& path,
                     const std::vector<SnapshotSection>& sections,
                     const SnapshotFooter& footer);

/// Verifies the magic, every section CRC and the footer CRC; any mismatch
/// or truncation is an IoError (the caller falls back to an older snapshot
/// and longer WAL replay).
Result<SnapshotContents> ReadSnapshot(Vfs* vfs, const std::string& path);

/// True when `path` exists and starts with the "SSNP" magic — used to
/// route legacy plain-Turtle snapshots to the old loader.
bool IsSnapshotFile(Vfs* vfs, const std::string& path);

/// "snap-<seq:016x>.ssnp".
std::string SnapshotFileName(uint64_t seq);

/// (seq, absolute path) for every snapshot in `dir`, ascending by seq.
/// A missing directory is an empty list, not an error.
Result<std::vector<std::pair<uint64_t, std::string>>> ListSnapshots(
    Vfs* vfs, const std::string& dir);

}  // namespace storage
}  // namespace scisparql

#endif  // SCISPARQL_STORAGE_SNAPSHOT_H_
