#include "storage/rdf_rel_store.h"

namespace scisparql {

namespace {

constexpr const char* kResTable = "rdf_res";
constexpr const char* kNumTable = "rdf_num";
constexpr const char* kLitTable = "rdf_lit";
constexpr const char* kArrTable = "rdf_arr";

/// Resources (IRIs and blanks) are encoded with a one-character kind
/// prefix so the text column is self-describing.
std::string EncodeResource(const Term& t) {
  if (t.IsIri()) return "I" + t.iri();
  return "B" + t.blank_label();
}

Result<Term> DecodeResource(const std::string& s) {
  if (s.empty()) return Status::Internal("empty resource encoding");
  if (s[0] == 'I') return Term::Iri(s.substr(1));
  if (s[0] == 'B') return Term::Blank(s.substr(1));
  return Status::Internal("bad resource encoding: " + s);
}

}  // namespace

Result<std::unique_ptr<RdfRelationalStore>> RdfRelationalStore::Attach(
    relstore::Database* db, std::shared_ptr<RelationalArrayStorage> arrays) {
  using relstore::ColType;
  using relstore::Schema;
  auto make = [&](const char* name, Schema schema) -> Status {
    if (db->HasTable(name)) return Status::OK();
    SCISPARQL_ASSIGN_OR_RETURN(auto* t, db->CreateTable(name, schema, false));
    (void)t;
    return Status::OK();
  };
  Schema res;
  res.columns = {{"s", ColType::kText},
                 {"p", ColType::kText},
                 {"o", ColType::kText}};
  SCISPARQL_RETURN_NOT_OK(make(kResTable, res));
  Schema num;
  num.columns = {{"s", ColType::kText},
                 {"p", ColType::kText},
                 {"value", ColType::kDouble},
                 {"is_int", ColType::kInt64}};
  SCISPARQL_RETURN_NOT_OK(make(kNumTable, num));
  Schema lit;
  lit.columns = {{"s", ColType::kText},
                 {"p", ColType::kText},
                 {"kind", ColType::kInt64},
                 {"lex", ColType::kText},
                 {"extra", ColType::kText}};
  SCISPARQL_RETURN_NOT_OK(make(kLitTable, lit));
  Schema arr;
  arr.columns = {{"s", ColType::kText},
                 {"p", ColType::kText},
                 {"array_id", ColType::kInt64}};
  SCISPARQL_RETURN_NOT_OK(make(kArrTable, arr));
  return std::unique_ptr<RdfRelationalStore>(
      new RdfRelationalStore(db, std::move(arrays)));
}

Status RdfRelationalStore::SaveGraph(const Graph& graph) {
  Status status = Status::OK();
  graph.ForEach([&](const Triple& t) {
    if (!status.ok()) return;
    std::string s = EncodeResource(t.s);
    std::string p = EncodeResource(t.p);
    switch (t.o.kind()) {
      case Term::Kind::kIri:
      case Term::Kind::kBlank: {
        auto rid = db_->Insert(kResTable, {s, p, EncodeResource(t.o)});
        if (!rid.ok()) status = rid.status();
        return;
      }
      case Term::Kind::kInteger: {
        auto rid = db_->Insert(
            kNumTable,
            {s, p, static_cast<double>(t.o.integer()), int64_t{1}});
        if (!rid.ok()) status = rid.status();
        return;
      }
      case Term::Kind::kDouble: {
        auto rid = db_->Insert(kNumTable, {s, p, t.o.dbl(), int64_t{0}});
        if (!rid.ok()) status = rid.status();
        return;
      }
      case Term::Kind::kString:
      case Term::Kind::kBoolean:
      case Term::Kind::kTypedLiteral: {
        std::string lex = t.o.kind() == Term::Kind::kBoolean
                              ? (t.o.boolean() ? "true" : "false")
                              : t.o.lexical();
        std::string extra = t.o.kind() == Term::Kind::kString
                                ? t.o.lang()
                                : (t.o.kind() == Term::Kind::kTypedLiteral
                                       ? t.o.datatype()
                                       : "");
        auto rid = db_->Insert(
            kLitTable,
            {s, p, static_cast<int64_t>(t.o.kind()), lex, extra});
        if (!rid.ok()) status = rid.status();
        return;
      }
      case Term::Kind::kArray: {
        ArrayId id = 0;
        // Proxies already backed by this store are saved by reference;
        // everything else is materialized and chunked in.
        auto* proxy = dynamic_cast<const ArrayProxy*>(t.o.array().get());
        if (proxy != nullptr && proxy->storage().get() == arrays_.get() &&
            proxy->CoversWholeArray()) {
          id = proxy->array_id();
        } else {
          auto m = t.o.array()->Materialize();
          if (!m.ok()) {
            status = m.status();
            return;
          }
          auto stored = arrays_->Store(*m, 8192);
          if (!stored.ok()) {
            status = stored.status();
            return;
          }
          id = *stored;
        }
        auto rid =
            db_->Insert(kArrTable, {s, p, static_cast<int64_t>(id)});
        if (!rid.ok()) status = rid.status();
        return;
      }
      case Term::Kind::kUndef:
        status = Status::InvalidArgument("cannot persist unbound term");
        return;
    }
  });
  SCISPARQL_RETURN_NOT_OK(status);
  return db_->Flush();
}

Status RdfRelationalStore::LoadGraph(Graph* graph,
                                     const AprConfig& apr) const {
  Status status = Status::OK();
  auto decode_sp = [](const relstore::Row& row, Term* s,
                      Term* p) -> Status {
    SCISPARQL_ASSIGN_OR_RETURN(*s, DecodeResource(relstore::AsBytes(row[0])));
    SCISPARQL_ASSIGN_OR_RETURN(*p, DecodeResource(relstore::AsBytes(row[1])));
    return Status::OK();
  };

  SCISPARQL_RETURN_NOT_OK(
      db_->ScanAll(kResTable, [&](const relstore::Row& row) -> bool {
        Term s, p;
        status = decode_sp(row, &s, &p);
        if (!status.ok()) return false;
        auto o = DecodeResource(relstore::AsBytes(row[2]));
        if (!o.ok()) {
          status = o.status();
          return false;
        }
        graph->Add(std::move(s), std::move(p), std::move(*o));
        return true;
      }));
  SCISPARQL_RETURN_NOT_OK(status);

  SCISPARQL_RETURN_NOT_OK(
      db_->ScanAll(kNumTable, [&](const relstore::Row& row) -> bool {
        Term s, p;
        status = decode_sp(row, &s, &p);
        if (!status.ok()) return false;
        double v = relstore::AsDoubleValue(row[2]);
        bool is_int = relstore::AsInt(row[3]) != 0;
        graph->Add(std::move(s), std::move(p),
                   is_int ? Term::Integer(static_cast<int64_t>(v))
                          : Term::Double(v));
        return true;
      }));
  SCISPARQL_RETURN_NOT_OK(status);

  SCISPARQL_RETURN_NOT_OK(
      db_->ScanAll(kLitTable, [&](const relstore::Row& row) -> bool {
        Term s, p;
        status = decode_sp(row, &s, &p);
        if (!status.ok()) return false;
        Term::Kind kind = static_cast<Term::Kind>(relstore::AsInt(row[2]));
        const std::string& lex = relstore::AsBytes(row[3]);
        const std::string& extra = relstore::AsBytes(row[4]);
        Term o;
        switch (kind) {
          case Term::Kind::kBoolean:
            o = Term::Boolean(lex == "true");
            break;
          case Term::Kind::kTypedLiteral:
            o = Term::TypedLiteral(lex, extra);
            break;
          default:
            o = extra.empty() ? Term::String(lex)
                              : Term::LangString(lex, extra);
        }
        graph->Add(std::move(s), std::move(p), std::move(o));
        return true;
      }));
  SCISPARQL_RETURN_NOT_OK(status);

  SCISPARQL_RETURN_NOT_OK(
      db_->ScanAll(kArrTable, [&](const relstore::Row& row) -> bool {
        Term s, p;
        status = decode_sp(row, &s, &p);
        if (!status.ok()) return false;
        ArrayId id = static_cast<ArrayId>(relstore::AsInt(row[2]));
        auto proxy = ArrayProxy::Open(arrays_, id, apr);
        if (!proxy.ok()) {
          status = proxy.status();
          return false;
        }
        graph->Add(std::move(s), std::move(p), Term::Array(*proxy));
        return true;
      }));
  return status;
}

Result<RdfRelationalStore::PartitionCounts>
RdfRelationalStore::CountPartitions() const {
  PartitionCounts counts;
  auto count = [&](const char* table, uint64_t* out) -> Status {
    return db_->ScanAll(table, [out](const relstore::Row&) {
      ++*out;
      return true;
    });
  };
  SCISPARQL_RETURN_NOT_OK(count(kResTable, &counts.resources));
  SCISPARQL_RETURN_NOT_OK(count(kNumTable, &counts.numbers));
  SCISPARQL_RETURN_NOT_OK(count(kLitTable, &counts.literals));
  SCISPARQL_RETURN_NOT_OK(count(kArrTable, &counts.arrays));
  return counts;
}

}  // namespace scisparql
