#include "storage/wal.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "common/crc32c.h"
#include "rdf/term_codec.h"
#include "storage/array_proxy.h"

namespace scisparql {
namespace storage {

namespace {

constexpr char kSegmentMagic[4] = {'S', 'S', 'W', 'L'};
constexpr uint32_t kSegmentFormat = 1;
constexpr size_t kSegmentHeaderSize = 16;

/// Term framing inside triple bodies: inline bytes or a back-end ref.
constexpr uint8_t kTermInline = 0;
constexpr uint8_t kTermProxyRef = 1;

std::string SegmentName(uint64_t first_lsn) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "wal-%016" PRIx64 ".log", first_lsn);
  return buf;
}

/// Parses "wal-<hex16>.log"; returns false for other directory entries.
bool ParseSegmentName(const std::string& name, uint64_t* first_lsn) {
  if (name.size() != 4 + 16 + 4 || name.rfind("wal-", 0) != 0 ||
      name.compare(name.size() - 4, 4, ".log") != 0) {
    return false;
  }
  uint64_t v = 0;
  for (size_t i = 4; i < 20; ++i) {
    char c = name[i];
    uint64_t digit;
    if (c >= '0' && c <= '9') digit = static_cast<uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') digit = static_cast<uint64_t>(c - 'a' + 10);
    else return false;
    v = (v << 4) | digit;
  }
  *first_lsn = v;
  return true;
}

Status SerializeWalTerm(const Term& term, std::string* out) {
  // Proxies log as (storage, id) references — the payload already lives in
  // the back-end; inlining it would double-store every stored array.
  if (term.kind() == Term::Kind::kArray && !term.array()->resident()) {
    auto* proxy = dynamic_cast<const ArrayProxy*>(term.array().get());
    if (proxy != nullptr && proxy->storage() != nullptr) {
      out->push_back(static_cast<char>(kTermProxyRef));
      rdf::PutString(out, proxy->storage()->name());
      rdf::PutU64(out, static_cast<uint64_t>(proxy->array_id()));
      return Status::OK();
    }
  }
  out->push_back(static_cast<char>(kTermInline));
  return rdf::SerializeTerm(term, out);
}

Result<Term> DeserializeWalTerm(
    const std::string& data, size_t* pos,
    const std::function<Result<Term>(const std::string&, uint64_t)>&
        resolve_ref) {
  if (*pos >= data.size()) return Status::Internal("truncated WAL term");
  uint8_t tag = static_cast<uint8_t>(data[(*pos)++]);
  if (tag == kTermInline) return rdf::DeserializeTerm(data, pos);
  if (tag == kTermProxyRef) {
    std::string storage_name;
    uint64_t id;
    if (!rdf::GetString(data, pos, &storage_name) ||
        !rdf::GetU64(data, pos, &id)) {
      return Status::Internal("truncated WAL proxy reference");
    }
    if (!resolve_ref) {
      return Status::IoError("WAL record references array storage '" +
                             storage_name + "' but no resolver is attached");
    }
    return resolve_ref(storage_name, id);
  }
  return Status::Internal("unknown WAL term tag");
}

std::string EncodeRecordPayload(const WalRecord& rec, Status* status) {
  std::string payload;
  rdf::PutU64(&payload, rec.lsn);
  payload.push_back(static_cast<char>(rec.type));
  switch (rec.type) {
    case WalRecord::Type::kAdd:
    case WalRecord::Type::kRemove: {
      rdf::PutString(&payload, rec.graph);
      Status st = SerializeWalTerm(rec.triple.s, &payload);
      if (st.ok()) st = SerializeWalTerm(rec.triple.p, &payload);
      if (st.ok()) st = SerializeWalTerm(rec.triple.o, &payload);
      if (!st.ok()) *status = st;
      break;
    }
    case WalRecord::Type::kClearGraph:
      rdf::PutString(&payload, rec.graph);
      break;
    case WalRecord::Type::kClearAll:
    case WalRecord::Type::kCommit:
      break;
  }
  return payload;
}

Result<WalRecord> DecodeRecordPayload(
    const std::string& payload,
    const std::function<Result<Term>(const std::string&, uint64_t)>&
        resolve_ref) {
  WalRecord rec;
  size_t pos = 0;
  if (!rdf::GetU64(payload, &pos, &rec.lsn) || pos >= payload.size()) {
    return Status::Internal("truncated WAL record header");
  }
  rec.type = static_cast<WalRecord::Type>(payload[pos++]);
  switch (rec.type) {
    case WalRecord::Type::kAdd:
    case WalRecord::Type::kRemove: {
      if (!rdf::GetString(payload, &pos, &rec.graph)) {
        return Status::Internal("truncated WAL record graph");
      }
      SCISPARQL_ASSIGN_OR_RETURN(rec.triple.s,
                                 DeserializeWalTerm(payload, &pos, resolve_ref));
      SCISPARQL_ASSIGN_OR_RETURN(rec.triple.p,
                                 DeserializeWalTerm(payload, &pos, resolve_ref));
      SCISPARQL_ASSIGN_OR_RETURN(rec.triple.o,
                                 DeserializeWalTerm(payload, &pos, resolve_ref));
      return rec;
    }
    case WalRecord::Type::kClearGraph:
      if (!rdf::GetString(payload, &pos, &rec.graph)) {
        return Status::Internal("truncated WAL record graph");
      }
      return rec;
    case WalRecord::Type::kClearAll:
    case WalRecord::Type::kCommit:
      return rec;
  }
  return Status::Internal("unknown WAL record type");
}

void FrameRecord(const std::string& payload, std::string* out) {
  rdf::PutU32(out, static_cast<uint32_t>(payload.size()));
  rdf::PutU32(out, Crc32cMask(Crc32c(payload)));
  out->append(payload);
}

}  // namespace

Result<std::unique_ptr<WalWriter>> WalWriter::Create(Vfs* vfs, std::string dir,
                                                     uint64_t next_lsn) {
  SCISPARQL_RETURN_NOT_OK(vfs->CreateDir(dir));
  return std::unique_ptr<WalWriter>(
      new WalWriter(vfs, std::move(dir), next_lsn));
}

Status WalWriter::EnsureSegment() {
  if (file_ != nullptr) return Status::OK();
  std::string path = dir_ + "/" + SegmentName(next_lsn_);
  SCISPARQL_ASSIGN_OR_RETURN(file_, vfs_->Open(path, Vfs::OpenMode::kTruncate));
  std::string header(kSegmentMagic, 4);
  rdf::PutU32(&header, kSegmentFormat);
  rdf::PutU64(&header, next_lsn_);
  Status st = file_->WriteAt(0, header.data(), header.size());
  if (!st.ok()) {
    file_.reset();
    return st;
  }
  offset_ = header.size();
  return Status::OK();
}

Status WalWriter::AppendBatch(std::vector<WalRecord>& records) {
  SCISPARQL_RETURN_NOT_OK(EnsureSegment());
  // Assign LSNs, then frame everything — records plus the commit marker —
  // into one blob so the batch hits the device with one write + one fsync.
  std::string blob;
  Status encode_status = Status::OK();
  uint64_t lsn = next_lsn_;
  for (WalRecord& rec : records) {
    rec.lsn = lsn++;
    FrameRecord(EncodeRecordPayload(rec, &encode_status), &blob);
    if (!encode_status.ok()) return encode_status;
  }
  WalRecord commit;
  commit.type = WalRecord::Type::kCommit;
  commit.lsn = lsn++;
  FrameRecord(EncodeRecordPayload(commit, &encode_status), &blob);
  if (!encode_status.ok()) return encode_status;

  SCISPARQL_RETURN_NOT_OK(file_->WriteAt(offset_, blob.data(), blob.size()));
  SCISPARQL_RETURN_NOT_OK(file_->Sync());
  // Only a fully durable batch advances the log: a torn write leaves
  // garbage past offset_ that the next successful append overwrites.
  offset_ += blob.size();
  next_lsn_ = lsn;
  ++appends_;
  bytes_written_ += blob.size();
  return Status::OK();
}

void WalWriter::Rotate() {
  file_.reset();
  offset_ = 0;
}

namespace {

struct Segment {
  uint64_t first_lsn;
  std::string path;
  bool operator<(const Segment& o) const { return first_lsn < o.first_lsn; }
};

Result<std::vector<Segment>> ListSegments(Vfs* vfs, const std::string& dir) {
  std::vector<Segment> segments;
  auto names = vfs->ListDir(dir);
  if (!names.ok()) {
    if (names.status().code() == StatusCode::kNotFound) return segments;
    return names.status();
  }
  for (const std::string& name : *names) {
    uint64_t first_lsn;
    if (ParseSegmentName(name, &first_lsn)) {
      segments.push_back({first_lsn, dir + "/" + name});
    }
  }
  std::sort(segments.begin(), segments.end());
  return segments;
}

}  // namespace

Result<WalReplayStats> ReplayWal(
    Vfs* vfs, const std::string& dir, uint64_t after_lsn,
    const std::function<Result<Term>(const std::string&, uint64_t)>&
        resolve_ref,
    const std::function<Status(const WalRecord&)>& apply) {
  WalReplayStats stats;
  SCISPARQL_ASSIGN_OR_RETURN(std::vector<Segment> segments,
                             ListSegments(vfs, dir));
  for (size_t si = 0; si < segments.size(); ++si) {
    const bool final_segment = si + 1 == segments.size();
    SCISPARQL_ASSIGN_OR_RETURN(
        std::unique_ptr<VfsFile> f,
        vfs->Open(segments[si].path, Vfs::OpenMode::kRead));
    SCISPARQL_ASSIGN_OR_RETURN(uint64_t size, f->Size());
    std::string data(size, '\0');
    SCISPARQL_ASSIGN_OR_RETURN(size_t got, f->ReadAt(0, data.data(), size));
    data.resize(got);

    // A statement's batch never spans segments, so the pending buffer
    // resets per segment; a batch left uncommitted at segment end is a
    // torn tail (final segment) or corruption (earlier segment).
    std::vector<WalRecord> pending;
    bool torn = false;
    std::string corrupt_reason;

    size_t pos = 0;
    if (data.size() < kSegmentHeaderSize ||
        std::memcmp(data.data(), kSegmentMagic, 4) != 0) {
      torn = true;
      corrupt_reason = "bad segment header";
    } else {
      pos = kSegmentHeaderSize;
    }

    while (!torn && pos < data.size()) {
      uint32_t len, stored_crc;
      size_t frame_start = pos;
      if (!rdf::GetU32(data, &pos, &len) ||
          !rdf::GetU32(data, &pos, &stored_crc) || pos + len > data.size()) {
        torn = true;
        corrupt_reason = "truncated record frame";
        pos = frame_start;
        break;
      }
      std::string payload = data.substr(pos, len);
      pos += len;
      if (Crc32cUnmask(stored_crc) != Crc32c(payload)) {
        torn = true;
        corrupt_reason = "record checksum mismatch";
        pos = frame_start;
        break;
      }
      SCISPARQL_ASSIGN_OR_RETURN(WalRecord rec,
                                 DecodeRecordPayload(payload, resolve_ref));
      if (rec.type == WalRecord::Type::kCommit) {
        for (const WalRecord& r : pending) {
          if (r.lsn <= after_lsn) {
            ++stats.records_skipped;
            continue;
          }
          SCISPARQL_RETURN_NOT_OK(apply(r));
          ++stats.records_applied;
        }
        if (!pending.empty() && pending.back().lsn > after_lsn) {
          ++stats.batches_applied;
        }
        stats.last_lsn = std::max(stats.last_lsn, rec.lsn);
        pending.clear();
      } else {
        pending.push_back(std::move(rec));
      }
    }

    if (!pending.empty() && !torn) {
      // Records without a commit marker at segment end: the process died
      // between the write and the fsync's completion being observed.
      torn = true;
      corrupt_reason = "uncommitted batch at segment end";
    }
    if (torn) {
      if (!final_segment) {
        return Status::IoError("corrupt WAL record in non-final segment " +
                               segments[si].path + " (" + corrupt_reason +
                               "): acknowledged updates may be lost");
      }
      stats.torn_tail = true;
    }
  }
  return stats;
}

Status TruncateWalBelow(Vfs* vfs, const std::string& dir,
                        uint64_t keep_from_lsn) {
  SCISPARQL_ASSIGN_OR_RETURN(std::vector<Segment> segments,
                             ListSegments(vfs, dir));
  for (const Segment& seg : segments) {
    if (seg.first_lsn < keep_from_lsn) {
      SCISPARQL_RETURN_NOT_OK(vfs->Remove(seg.path));
    }
  }
  return Status::OK();
}

}  // namespace storage
}  // namespace scisparql
