#include "storage/wal.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <unordered_map>

#include "common/crc32c.h"
#include "rdf/term_codec.h"
#include "storage/array_proxy.h"

namespace scisparql {
namespace storage {

namespace {

constexpr char kSegmentMagic[4] = {'S', 'S', 'W', 'L'};
constexpr uint32_t kSegmentFormat = 1;
constexpr size_t kSegmentHeaderSize = 16;

/// Term framing inside triple bodies: inline bytes, a back-end ref, or a
/// back-reference to an earlier term of the same batch (dictionary
/// compression — bulk loads repeat predicates and subjects constantly, so
/// most terms of a batch collapse to a 5-byte ref). Batches never span
/// segments or shipment streams, so the reference scope is self-contained.
constexpr uint8_t kTermInline = 0;
constexpr uint8_t kTermProxyRef = 1;
constexpr uint8_t kTermDictRef = 2;

}  // namespace

std::string WalSegmentFileName(uint64_t first_lsn) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "wal-%016" PRIx64 ".log", first_lsn);
  return buf;
}

bool ParseWalSegmentFileName(const std::string& name, uint64_t* first_lsn) {
  if (name.size() != 4 + 16 + 4 || name.rfind("wal-", 0) != 0 ||
      name.compare(name.size() - 4, 4, ".log") != 0) {
    return false;
  }
  uint64_t v = 0;
  for (size_t i = 4; i < 20; ++i) {
    char c = name[i];
    uint64_t digit;
    if (c >= '0' && c <= '9') digit = static_cast<uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') digit = static_cast<uint64_t>(c - 'a' + 10);
    else return false;
    v = (v << 4) | digit;
  }
  *first_lsn = v;
  return true;
}

Result<std::vector<WalSegmentInfo>> ListWalSegments(Vfs* vfs,
                                                    const std::string& dir) {
  std::vector<WalSegmentInfo> segments;
  auto names = vfs->ListDir(dir);
  if (!names.ok()) {
    if (names.status().code() == StatusCode::kNotFound) return segments;
    return names.status();
  }
  for (const std::string& name : *names) {
    uint64_t first_lsn;
    if (ParseWalSegmentFileName(name, &first_lsn)) {
      segments.push_back({first_lsn, dir + "/" + name});
    }
  }
  // Numeric sort on the parsed index, never on the file name: shipping and
  // replay must see segment 0x10 after 0x9 regardless of naming width.
  std::sort(segments.begin(), segments.end(),
            [](const WalSegmentInfo& a, const WalSegmentInfo& b) {
              return a.first_lsn < b.first_lsn;
            });
  return segments;
}

namespace {

/// Batch-scoped term interning for the encoder: serialized term bytes →
/// dense index, assigned in emission order. The first occurrence is
/// written out verbatim; repeats become kTermDictRef + index.
struct BatchTermEncoder {
  std::unordered_map<std::string, uint32_t> ids;
};

/// Decoder mirror: every inline / proxy-ref term appends here in decode
/// order (exactly the encoder's first occurrences), so a dict-ref index
/// addresses this vector directly. Cleared at each commit marker.
struct BatchTermDecoder {
  std::vector<Term> terms;
};

Status SerializeWalTerm(const Term& term, BatchTermEncoder* enc,
                        std::string* out) {
  std::string one;
  // Proxies log as (storage, id) references — the payload already lives in
  // the back-end; inlining it would double-store every stored array.
  bool encoded = false;
  if (term.kind() == Term::Kind::kArray && !term.array()->resident()) {
    auto* proxy = dynamic_cast<const ArrayProxy*>(term.array().get());
    if (proxy != nullptr && proxy->storage() != nullptr) {
      one.push_back(static_cast<char>(kTermProxyRef));
      rdf::PutString(&one, proxy->storage()->name());
      rdf::PutU64(&one, static_cast<uint64_t>(proxy->array_id()));
      encoded = true;
    }
  }
  if (!encoded) {
    one.push_back(static_cast<char>(kTermInline));
    SCISPARQL_RETURN_NOT_OK(rdf::SerializeTerm(term, &one));
  }
  if (enc != nullptr) {
    auto [it, fresh] =
        enc->ids.emplace(one, static_cast<uint32_t>(enc->ids.size()));
    if (!fresh) {
      out->push_back(static_cast<char>(kTermDictRef));
      rdf::PutU32(out, it->second);
      return Status::OK();
    }
  }
  out->append(one);
  return Status::OK();
}

Result<Term> DeserializeWalTerm(
    const std::string& data, size_t* pos,
    const std::function<Result<Term>(const std::string&, uint64_t)>&
        resolve_ref,
    BatchTermDecoder* dec) {
  if (*pos >= data.size()) return Status::Internal("truncated WAL term");
  uint8_t tag = static_cast<uint8_t>(data[(*pos)++]);
  if (tag == kTermDictRef) {
    uint32_t idx;
    if (!rdf::GetU32(data, pos, &idx)) {
      return Status::Internal("truncated WAL term back-reference");
    }
    if (dec == nullptr || idx >= dec->terms.size()) {
      return Status::Internal("WAL term back-reference out of range");
    }
    return dec->terms[idx];
  }
  Term term;
  if (tag == kTermInline) {
    SCISPARQL_ASSIGN_OR_RETURN(term, rdf::DeserializeTerm(data, pos));
  } else if (tag == kTermProxyRef) {
    std::string storage_name;
    uint64_t id;
    if (!rdf::GetString(data, pos, &storage_name) ||
        !rdf::GetU64(data, pos, &id)) {
      return Status::Internal("truncated WAL proxy reference");
    }
    if (!resolve_ref) {
      return Status::IoError("WAL record references array storage '" +
                             storage_name + "' but no resolver is attached");
    }
    SCISPARQL_ASSIGN_OR_RETURN(term, resolve_ref(storage_name, id));
  } else {
    return Status::Internal("unknown WAL term tag");
  }
  if (dec != nullptr) dec->terms.push_back(term);
  return term;
}

std::string EncodeRecordPayload(const WalRecord& rec, BatchTermEncoder* enc,
                                Status* status) {
  std::string payload;
  rdf::PutU64(&payload, rec.lsn);
  payload.push_back(static_cast<char>(rec.type));
  switch (rec.type) {
    case WalRecord::Type::kAdd:
    case WalRecord::Type::kRemove: {
      rdf::PutString(&payload, rec.graph);
      Status st = SerializeWalTerm(rec.triple.s, enc, &payload);
      if (st.ok()) st = SerializeWalTerm(rec.triple.p, enc, &payload);
      if (st.ok()) st = SerializeWalTerm(rec.triple.o, enc, &payload);
      if (!st.ok()) *status = st;
      break;
    }
    case WalRecord::Type::kClearGraph:
      rdf::PutString(&payload, rec.graph);
      break;
    case WalRecord::Type::kTermBump:
      rdf::PutU64(&payload, rec.aux);
      break;
    case WalRecord::Type::kClearAll:
    case WalRecord::Type::kCommit:
      break;
  }
  return payload;
}

Result<WalRecord> DecodeRecordPayload(
    const std::string& payload,
    const std::function<Result<Term>(const std::string&, uint64_t)>&
        resolve_ref,
    BatchTermDecoder* dec) {
  WalRecord rec;
  size_t pos = 0;
  if (!rdf::GetU64(payload, &pos, &rec.lsn) || pos >= payload.size()) {
    return Status::Internal("truncated WAL record header");
  }
  rec.type = static_cast<WalRecord::Type>(payload[pos++]);
  switch (rec.type) {
    case WalRecord::Type::kAdd:
    case WalRecord::Type::kRemove: {
      if (!rdf::GetString(payload, &pos, &rec.graph)) {
        return Status::Internal("truncated WAL record graph");
      }
      SCISPARQL_ASSIGN_OR_RETURN(
          rec.triple.s, DeserializeWalTerm(payload, &pos, resolve_ref, dec));
      SCISPARQL_ASSIGN_OR_RETURN(
          rec.triple.p, DeserializeWalTerm(payload, &pos, resolve_ref, dec));
      SCISPARQL_ASSIGN_OR_RETURN(
          rec.triple.o, DeserializeWalTerm(payload, &pos, resolve_ref, dec));
      return rec;
    }
    case WalRecord::Type::kClearGraph:
      if (!rdf::GetString(payload, &pos, &rec.graph)) {
        return Status::Internal("truncated WAL record graph");
      }
      return rec;
    case WalRecord::Type::kTermBump:
      if (!rdf::GetU64(payload, &pos, &rec.aux)) {
        return Status::Internal("truncated WAL term-bump record");
      }
      return rec;
    case WalRecord::Type::kClearAll:
    case WalRecord::Type::kCommit:
      return rec;
  }
  return Status::Internal("unknown WAL record type");
}

void FrameRecord(const std::string& payload, std::string* out) {
  rdf::PutU32(out, static_cast<uint32_t>(payload.size()));
  rdf::PutU32(out, Crc32cMask(Crc32c(payload)));
  out->append(payload);
}

}  // namespace

Result<std::unique_ptr<WalWriter>> WalWriter::Create(Vfs* vfs, std::string dir,
                                                     uint64_t next_lsn) {
  SCISPARQL_RETURN_NOT_OK(vfs->CreateDir(dir));
  return std::unique_ptr<WalWriter>(
      new WalWriter(vfs, std::move(dir), next_lsn));
}

Status WalWriter::EnsureSegmentLocked() {
  if (file_ != nullptr) return Status::OK();
  uint64_t first_lsn = next_lsn_.load(std::memory_order_relaxed);
  std::string path = dir_ + "/" + WalSegmentFileName(first_lsn);
  SCISPARQL_ASSIGN_OR_RETURN(file_, vfs_->Open(path, Vfs::OpenMode::kTruncate));
  std::string header(kSegmentMagic, 4);
  rdf::PutU32(&header, kSegmentFormat);
  rdf::PutU64(&header, first_lsn);
  Status st = file_->WriteAt(0, header.data(), header.size());
  if (!st.ok()) {
    file_.reset();
    return st;
  }
  offset_ = header.size();
  return Status::OK();
}

Status WalWriter::AppendBatch(std::vector<WalRecord>& records,
                              uint64_t* commit_lsn) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!sticky_error_.ok()) return sticky_error_;

  // The segment file is named by the first LSN it contains, so it must be
  // created before this batch advances the counter (first batch after a
  // Create/Rotate/ResetTo). No-op when the segment is already open.
  {
    Status seg = EnsureSegmentLocked();
    if (!seg.ok()) {
      sticky_error_ = seg;
      cv_.notify_all();
      return seg;
    }
  }

  // Encode and enqueue under the mutex: LSN assignment order, pending
  // buffer order and on-disk order coincide, so replication always ships
  // monotonically increasing LSNs even with concurrent committers.
  std::string blob;
  Status encode_status = Status::OK();
  BatchTermEncoder enc;
  uint64_t lsn = next_lsn_.load(std::memory_order_relaxed);
  for (WalRecord& rec : records) {
    rec.lsn = lsn++;
    FrameRecord(EncodeRecordPayload(rec, &enc, &encode_status), &blob);
    if (!encode_status.ok()) return encode_status;
  }
  WalRecord commit;
  commit.type = WalRecord::Type::kCommit;
  commit.lsn = lsn++;
  FrameRecord(EncodeRecordPayload(commit, &enc, &encode_status), &blob);
  if (!encode_status.ok()) return encode_status;

  const uint64_t my_commit = commit.lsn;
  next_lsn_.store(lsn, std::memory_order_release);
  pending_.append(blob);
  pending_last_commit_ = my_commit;
  if (commit_lsn != nullptr) *commit_lsn = my_commit;

  if (flushing_) {
    // Follower: a leader is on the device and will pick our bytes up in
    // its drain loop (or we become leader below once it hands off).
    cv_.wait(lock, [&] {
      return !sticky_error_.ok() || synced_lsn_ >= my_commit || !flushing_;
    });
    if (synced_lsn_ >= my_commit) {
      appends_.fetch_add(1, std::memory_order_acq_rel);
      return Status::OK();
    }
    if (!sticky_error_.ok()) return sticky_error_;
    // Leader finished without covering us (we enqueued after its last
    // drain check): fall through and lead the next group ourselves.
  }

  // Leader: drain the pending buffer — one write + one fsync per pass,
  // covering every batch that piled up while the previous pass was on the
  // device.
  flushing_ = true;
  Status st = EnsureSegmentLocked();
  while (st.ok() && !pending_.empty()) {
    std::string group;
    group.swap(pending_);
    const uint64_t group_commit = pending_last_commit_;
    const uint64_t off = offset_;
    VfsFile* file = file_.get();
    lock.unlock();
    st = file->WriteAt(off, group.data(), group.size());
    if (st.ok()) st = file->Sync();
    lock.lock();
    if (!st.ok()) break;
    // Only a fully durable group advances the log: a torn write leaves
    // garbage past offset_ that the next successful flush overwrites.
    offset_ = off + group.size();
    synced_lsn_ = std::max(synced_lsn_, group_commit);
    fsyncs_.fetch_add(1, std::memory_order_acq_rel);
    bytes_written_.fetch_add(group.size(), std::memory_order_acq_rel);
    if (on_sync_) on_sync_(group.size());
    cv_.notify_all();
  }
  flushing_ = false;
  if (!st.ok()) {
    sticky_error_ = st;
    cv_.notify_all();
    return st;
  }
  cv_.notify_all();
  appends_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

Status WalWriter::AppendRaw(const std::string& frames, uint64_t next_lsn) {
  if (frames.empty()) return Status::OK();
  std::unique_lock<std::mutex> lock(mu_);
  // Write-through is single-writer (the replica applier), but wait out any
  // in-flight group so the two paths never interleave on the device.
  cv_.wait(lock, [&] { return !flushing_ || !sticky_error_.ok(); });
  if (!sticky_error_.ok()) return sticky_error_;
  Status st = EnsureSegmentLocked();
  if (st.ok()) st = file_->WriteAt(offset_, frames.data(), frames.size());
  if (st.ok()) st = file_->Sync();
  if (!st.ok()) {
    sticky_error_ = st;
    cv_.notify_all();
    return st;
  }
  offset_ += frames.size();
  next_lsn_.store(next_lsn, std::memory_order_release);
  appends_.fetch_add(1, std::memory_order_acq_rel);
  fsyncs_.fetch_add(1, std::memory_order_acq_rel);
  bytes_written_.fetch_add(frames.size(), std::memory_order_acq_rel);
  if (on_sync_) on_sync_(frames.size());
  return Status::OK();
}

void WalWriter::Rotate() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return !flushing_; });
  file_.reset();
  offset_ = 0;
}

void WalWriter::ResetTo(uint64_t next_lsn) {
  Rotate();
  std::lock_guard<std::mutex> lock(mu_);
  next_lsn_.store(next_lsn, std::memory_order_release);
}

namespace {

/// Scans the frame stream in data[pos, end) applying committed batches
/// above `after_lsn` — the loop ReplayWal and ApplyWalFrames share. A
/// statement's batch never spans streams, so pending records left without
/// a commit marker at stream end count as torn. A torn or CRC-invalid
/// frame stops the scan with a non-empty *stop_reason; the caller decides
/// whether that is a clean tail (final segment mid-append) or corruption.
Status ScanFrameStream(
    const std::string& data, size_t pos, uint64_t after_lsn,
    const std::function<Result<Term>(const std::string&, uint64_t)>&
        resolve_ref,
    const std::function<Status(const WalRecord&)>& apply,
    WalReplayStats* stats, std::string* stop_reason) {
  std::vector<WalRecord> pending;
  BatchTermDecoder dec;
  while (pos < data.size()) {
    uint32_t len, stored_crc;
    if (!rdf::GetU32(data, &pos, &len) ||
        !rdf::GetU32(data, &pos, &stored_crc) || pos + len > data.size()) {
      *stop_reason = "truncated record frame";
      return Status::OK();
    }
    std::string payload = data.substr(pos, len);
    pos += len;
    if (Crc32cUnmask(stored_crc) != Crc32c(payload)) {
      *stop_reason = "record checksum mismatch";
      return Status::OK();
    }
    SCISPARQL_ASSIGN_OR_RETURN(
        WalRecord rec, DecodeRecordPayload(payload, resolve_ref, &dec));
    if (rec.type == WalRecord::Type::kCommit) {
      // Back-references are batch-scoped; the commit marker ends the
      // encoder's scope, so the decoder's mirror resets with it.
      dec.terms.clear();
      for (const WalRecord& r : pending) {
        if (r.lsn <= after_lsn) {
          ++stats->records_skipped;
          continue;
        }
        SCISPARQL_RETURN_NOT_OK(apply(r));
        ++stats->records_applied;
      }
      if (!pending.empty() && pending.back().lsn > after_lsn) {
        ++stats->batches_applied;
      }
      stats->last_lsn = std::max(stats->last_lsn, rec.lsn);
      pending.clear();
    } else {
      pending.push_back(std::move(rec));
    }
  }
  if (!pending.empty()) {
    // Records without a commit marker at stream end: the process died
    // between the write and the fsync's completion being observed.
    *stop_reason = "uncommitted batch at segment end";
  }
  return Status::OK();
}

}  // namespace

Result<WalReplayStats> ReplayWal(
    Vfs* vfs, const std::string& dir, uint64_t after_lsn,
    const std::function<Result<Term>(const std::string&, uint64_t)>&
        resolve_ref,
    const std::function<Status(const WalRecord&)>& apply) {
  WalReplayStats stats;
  SCISPARQL_ASSIGN_OR_RETURN(std::vector<WalSegmentInfo> segments,
                             ListWalSegments(vfs, dir));
  for (size_t si = 0; si < segments.size(); ++si) {
    const bool final_segment = si + 1 == segments.size();
    SCISPARQL_ASSIGN_OR_RETURN(
        std::unique_ptr<VfsFile> f,
        vfs->Open(segments[si].path, Vfs::OpenMode::kRead));
    SCISPARQL_ASSIGN_OR_RETURN(uint64_t size, f->Size());
    std::string data(size, '\0');
    SCISPARQL_ASSIGN_OR_RETURN(size_t got, f->ReadAt(0, data.data(), size));
    data.resize(got);

    std::string stop_reason;
    if (data.size() < kSegmentHeaderSize ||
        std::memcmp(data.data(), kSegmentMagic, 4) != 0) {
      stop_reason = "bad segment header";
    } else {
      SCISPARQL_RETURN_NOT_OK(ScanFrameStream(data, kSegmentHeaderSize,
                                              after_lsn, resolve_ref, apply,
                                              &stats, &stop_reason));
    }
    if (!stop_reason.empty()) {
      if (!final_segment) {
        return Status::IoError("corrupt WAL record in non-final segment " +
                               segments[si].path + " (" + stop_reason +
                               "): acknowledged updates may be lost");
      }
      stats.torn_tail = true;
    }
  }
  return stats;
}

Result<WalReplayStats> ApplyWalFrames(
    const std::string& frames, uint64_t after_lsn,
    const std::function<Result<Term>(const std::string&, uint64_t)>&
        resolve_ref,
    const std::function<Status(const WalRecord&)>& apply) {
  WalReplayStats stats;
  std::string stop_reason;
  SCISPARQL_RETURN_NOT_OK(ScanFrameStream(frames, 0, after_lsn, resolve_ref,
                                          apply, &stats, &stop_reason));
  if (!stop_reason.empty()) {
    return Status::IoError("corrupt shipped WAL frames (" + stop_reason +
                           ")");
  }
  return stats;
}

Result<WalShipment> ReadWalShipment(Vfs* vfs, const std::string& dir,
                                    uint64_t after_lsn, size_t max_bytes) {
  SCISPARQL_ASSIGN_OR_RETURN(std::vector<WalSegmentInfo> segments,
                             ListWalSegments(vfs, dir));
  if (segments.empty() || segments[0].first_lsn > after_lsn + 1) {
    return Status::OutOfRange(
        "WAL no longer reaches back to lsn " + std::to_string(after_lsn) +
        " (truncated by a checkpoint); bootstrap from a snapshot");
  }
  // Start at the last segment whose first LSN is <= after_lsn + 1: every
  // earlier one holds only records the requester already has.
  size_t start = 0;
  for (size_t i = 0; i < segments.size(); ++i) {
    if (segments[i].first_lsn <= after_lsn + 1) start = i;
  }

  WalShipment out;
  out.last_lsn = after_lsn;
  for (size_t si = start; si < segments.size(); ++si) {
    const bool final_segment = si + 1 == segments.size();
    Result<std::unique_ptr<VfsFile>> f =
        vfs->Open(segments[si].path, Vfs::OpenMode::kRead);
    if (!f.ok()) {
      // A concurrent checkpoint may delete a segment between listing and
      // open; the requester retries and sees the post-truncation picture.
      if (f.status().code() == StatusCode::kNotFound) {
        return Status::Unavailable("WAL segment vanished (checkpoint in "
                                   "progress); retry");
      }
      return f.status();
    }
    SCISPARQL_ASSIGN_OR_RETURN(uint64_t size, (*f)->Size());
    std::string data(size, '\0');
    SCISPARQL_ASSIGN_OR_RETURN(size_t got, (*f)->ReadAt(0, data.data(), size));
    data.resize(got);

    std::string stop_reason;
    size_t pos = kSegmentHeaderSize;
    if (data.size() < kSegmentHeaderSize ||
        std::memcmp(data.data(), kSegmentMagic, 4) != 0) {
      stop_reason = "bad segment header";
      pos = data.size();
    }
    // Collect raw frames batch-wise: only CRC-valid, committed batches
    // ship. Record payloads are not term-decoded — the LSN/type prefix is
    // enough to find batch boundaries, and the bytes travel verbatim.
    std::string batch;
    while (pos < data.size()) {
      size_t frame_start = pos;
      uint32_t len, stored_crc;
      if (!rdf::GetU32(data, &pos, &len) ||
          !rdf::GetU32(data, &pos, &stored_crc) || pos + len > data.size()) {
        stop_reason = "truncated record frame";
        break;
      }
      std::string payload = data.substr(pos, len);
      pos += len;
      if (Crc32cUnmask(stored_crc) != Crc32c(payload)) {
        stop_reason = "record checksum mismatch";
        break;
      }
      uint64_t lsn;
      size_t ppos = 0;
      if (!rdf::GetU64(payload, &ppos, &lsn) || ppos >= payload.size()) {
        stop_reason = "truncated record header";
        break;
      }
      auto type = static_cast<WalRecord::Type>(payload[ppos]);
      batch.append(data, frame_start, pos - frame_start);
      if (type != WalRecord::Type::kCommit) continue;
      if (lsn > after_lsn) {
        out.frames += batch;
        out.last_lsn = lsn;
        if (out.frames.size() >= max_bytes) {
          out.truncated = true;
          return out;
        }
      }
      batch.clear();
    }
    if (!batch.empty() && stop_reason.empty()) {
      stop_reason = "uncommitted batch at segment end";
    }
    if (!stop_reason.empty()) {
      if (!final_segment) {
        return Status::IoError("corrupt WAL record in non-final segment " +
                               segments[si].path + " (" + stop_reason +
                               "): acknowledged updates may be lost");
      }
      break;  // writer mid-append; ship what is committed so far
    }
  }
  return out;
}

Status TruncateWalBelow(Vfs* vfs, const std::string& dir,
                        uint64_t keep_from_lsn) {
  SCISPARQL_ASSIGN_OR_RETURN(std::vector<WalSegmentInfo> segments,
                             ListWalSegments(vfs, dir));
  for (const WalSegmentInfo& seg : segments) {
    if (seg.first_lsn < keep_from_lsn) {
      SCISPARQL_RETURN_NOT_OK(vfs->Remove(seg.path));
    }
  }
  return Status::OK();
}

}  // namespace storage
}  // namespace scisparql
