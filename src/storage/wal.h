#ifndef SCISPARQL_STORAGE_WAL_H_
#define SCISPARQL_STORAGE_WAL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "rdf/graph.h"
#include "storage/vfs.h"

namespace scisparql {
namespace storage {

/// One redo record. Physical logging: the capture hook in the executor's
/// update path records the exact triples added/removed (including the
/// side effects of collection consolidation and LOAD), so replay never
/// re-evaluates query patterns.
struct WalRecord {
  enum class Type : uint8_t {
    kAdd = 1,         ///< graph += triple
    kRemove = 2,      ///< graph -= all copies of triple
    kClearGraph = 3,  ///< CLEAR of one graph ("" = default)
    kClearAll = 4,    ///< CLEAR ALL (default cleared, named graphs dropped)
    kCommit = 5,      ///< statement boundary (written by AppendBatch)
    kTermBump = 6,    ///< fencing-term adoption (aux = new term)
  };

  Type type = Type::kAdd;
  uint64_t lsn = 0;   ///< Assigned by the writer.
  std::string graph;  ///< Target graph IRI; "" = default graph.
  Triple triple;      ///< For kAdd / kRemove.
  uint64_t aux = 0;   ///< Type-specific scalar (kTermBump: the new term).
};

/// Segmented write-ahead log.
///
/// On-disk layout: `<dir>/wal-<first_lsn:016x>.log`, each segment
///
///   header: "SSWL" u32 | format u32 | first_lsn u64
///   record: [u32 payload_len][u32 masked crc32c(payload)][payload]
///   payload: [u64 lsn][u8 type][type-specific body]
///
/// Triple bodies carry the graph IRI plus three terms; array-valued terms
/// serialize inline (resident payloads) or as a (storage name, array id)
/// reference when the value is a proxy into an attached back-end.
///
/// AppendBatch frames all records of one statement plus a trailing kCommit
/// and makes them durable with group commit: concurrent committers encode
/// and enqueue under the writer's mutex (so LSN assignment order, buffer
/// order and on-disk order all coincide — the invariant replication
/// shipping relies on), then one of them becomes the flush leader, writes
/// the whole pending run and fsyncs once while the followers wait on a
/// condition variable until their commit LSN is covered. Fsyncs therefore
/// grow sub-linearly with writer count. Replay applies only complete,
/// CRC-valid, committed batches, so a crash anywhere inside AppendBatch
/// leaves the statement entirely absent (pre-update state) while a crash
/// after it leaves the statement entirely present.
///
/// Any device error is sticky: the failed group's committers get the
/// error, and every later append fails fast with it — mirroring the
/// engine's read-only degradation, which is the only caller policy.
class WalWriter {
 public:
  /// `next_lsn` is where numbering resumes (1 for a fresh log; recovery
  /// passes last replayed LSN + 1). The first segment is created lazily on
  /// the first append, so a log that is never written leaves no file.
  static Result<std::unique_ptr<WalWriter>> Create(Vfs* vfs, std::string dir,
                                                   uint64_t next_lsn);

  /// Appends `records` plus a commit marker as one batch and returns once
  /// the batch is durable (its group's fsync completed). Thread-safe.
  /// `commit_lsn`, when non-null, receives the batch's commit-marker LSN —
  /// the caller's read-your-writes token.
  Status AppendBatch(std::vector<WalRecord>& records,
                     uint64_t* commit_lsn = nullptr);

  /// Next LSN to be assigned.
  uint64_t next_lsn() const {
    return next_lsn_.load(std::memory_order_acquire);
  }

  /// Replica write-through: appends an already-framed run of complete
  /// committed batches verbatim (as produced by ReadWalShipment) and
  /// advances numbering to `next_lsn` — the shipped run's last commit LSN
  /// plus one. One write + one fsync. The caller must ship contiguously
  /// from this writer's current next_lsn(), so segment names keep
  /// matching their first record's LSN.
  Status AppendRaw(const std::string& frames, uint64_t next_lsn);

  /// Closes the current segment; the next append opens a fresh one. Called
  /// by checkpointing (under the engine's exclusive lock) so completed
  /// segments can be deleted afterwards.
  void Rotate();

  /// Rotates and restarts numbering at `next_lsn` — the replication
  /// bootstrap hand-off, where a replica re-bases its local log onto the
  /// LSN of a snapshot just received from the primary.
  void ResetTo(uint64_t next_lsn);

  /// Hook invoked (under the writer's mutex) after each successful fsync
  /// with the number of bytes that flush made durable — the metrics seam.
  void set_on_sync(std::function<void(size_t bytes)> fn) {
    on_sync_ = std::move(fn);
  }

  /// Logical batches appended (one per AppendBatch/AppendRaw call).
  uint64_t appends() const { return appends_.load(std::memory_order_acquire); }
  /// Device fsyncs issued — sub-linear in appends() under concurrency.
  uint64_t fsyncs() const { return fsyncs_.load(std::memory_order_acquire); }
  uint64_t bytes_written() const {
    return bytes_written_.load(std::memory_order_acquire);
  }

 private:
  WalWriter(Vfs* vfs, std::string dir, uint64_t next_lsn)
      : vfs_(vfs), dir_(std::move(dir)), next_lsn_(next_lsn) {}

  /// Opens the current segment if absent. Requires mu_.
  Status EnsureSegmentLocked();

  Vfs* vfs_;
  std::string dir_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::atomic<uint64_t> next_lsn_;
  std::unique_ptr<VfsFile> file_;  // current segment (null until first append)
  uint64_t offset_ = 0;            // guarded by mu_
  bool flushing_ = false;          // a leader is on the device
  std::string pending_;            // encoded frames awaiting flush, LSN order
  uint64_t pending_last_commit_ = 0;  // commit LSN of last pending batch
  uint64_t synced_lsn_ = 0;           // highest durably flushed commit LSN
  Status sticky_error_ = Status::OK();
  std::function<void(size_t)> on_sync_;

  std::atomic<uint64_t> appends_{0};
  std::atomic<uint64_t> fsyncs_{0};
  std::atomic<uint64_t> bytes_written_{0};
};

/// One WAL segment on disk, keyed by the LSN of its first record.
struct WalSegmentInfo {
  uint64_t first_lsn = 0;
  std::string path;
};

/// "wal-<first_lsn:016x>.log". The fixed-width zero-padded hex name makes
/// lexicographic directory order match numeric order, but nothing relies
/// on that: enumeration always parses the index back out and sorts
/// numerically (see ListWalSegments), so segment 0x10 can never sort
/// before 0x9 even if the naming scheme changes width.
std::string WalSegmentFileName(uint64_t first_lsn);

/// Parses a segment file name; returns false for other directory entries
/// (including near-misses like truncated hex or foreign "wal-*" files).
bool ParseWalSegmentFileName(const std::string& name, uint64_t* first_lsn);

/// Every WAL segment in `dir`, ascending by parsed first LSN — the
/// numeric ordering replay, truncation and replication shipping all share.
/// A missing directory is an empty list, not an error.
Result<std::vector<WalSegmentInfo>> ListWalSegments(Vfs* vfs,
                                                    const std::string& dir);

/// Outcome of a WAL replay pass.
struct WalReplayStats {
  uint64_t batches_applied = 0;
  uint64_t records_applied = 0;
  uint64_t records_skipped = 0;  ///< Committed but at/below `after_lsn`.
  uint64_t last_lsn = 0;         ///< Highest committed LSN seen.
  bool torn_tail = false;        ///< Final segment ended mid-record/batch.
};

/// Replays every committed batch in `dir` whose records have
/// `lsn > after_lsn`, in LSN order, calling `apply` per record. A torn or
/// CRC-invalid tail in the *final* segment stops replay cleanly
/// (torn_tail = true); corruption in an earlier segment is an IoError —
/// acknowledged updates would be missing. `resolve_ref` materializes
/// proxy-reference terms (storage name + array id) back into terms.
Result<WalReplayStats> ReplayWal(
    Vfs* vfs, const std::string& dir, uint64_t after_lsn,
    const std::function<Result<Term>(const std::string& storage_name,
                                     uint64_t array_id)>& resolve_ref,
    const std::function<Status(const WalRecord&)>& apply);

/// Applies a contiguous run of raw record frames — complete committed
/// batches as shipped by ReadWalShipment — with the same LSN filtering and
/// whole-batch semantics as ReplayWal. Unlike replay there is no torn-tail
/// allowance: the frames were CRC-verified at the source, so any framing or
/// checksum defect here is an IoError (corruption in transit or a buggy
/// shipper), never silently dropped.
Result<WalReplayStats> ApplyWalFrames(
    const std::string& frames, uint64_t after_lsn,
    const std::function<Result<Term>(const std::string& storage_name,
                                     uint64_t array_id)>& resolve_ref,
    const std::function<Status(const WalRecord&)>& apply);

/// A run of committed batches read back out of the log for shipping.
struct WalShipment {
  /// Raw record frames (including each batch's commit marker), verbatim
  /// bytes from the segment files — the unit a replica applies and writes
  /// through to its own log.
  std::string frames;
  uint64_t last_lsn = 0;  ///< Commit LSN of the last included batch.
  bool truncated = false;  ///< Stopped early at `max_bytes`; more remains.
};

/// Collects every committed batch whose commit LSN is > `after_lsn`, in
/// LSN order, stopping after the first batch that pushes the run past
/// `max_bytes` (at least one batch is always shipped when available).
/// Frames are CRC-verified before inclusion; a torn tail in the final
/// segment ends the run cleanly (the writer is mid-append), corruption in
/// an earlier segment is an IoError. Returns OutOfRange when the log no
/// longer reaches back to `after_lsn` — a checkpoint truncated those
/// segments, so the caller must bootstrap from a snapshot instead.
Result<WalShipment> ReadWalShipment(Vfs* vfs, const std::string& dir,
                                    uint64_t after_lsn, size_t max_bytes);

/// Deletes segments whose first LSN is below `keep_from_lsn`. Correct only
/// when every record below `keep_from_lsn` is already covered by a
/// snapshot AND no kept segment contains records below it — the
/// checkpoint sequence (Rotate, snapshot at LSN `next_lsn - 1`, truncate
/// with `keep_from_lsn = next_lsn`) guarantees both.
Status TruncateWalBelow(Vfs* vfs, const std::string& dir,
                        uint64_t keep_from_lsn);

}  // namespace storage
}  // namespace scisparql

#endif  // SCISPARQL_STORAGE_WAL_H_
