#include "storage/relational_backend.h"

#include <cstring>
#include <limits>

namespace scisparql {

namespace {

constexpr const char* kArraysTable = "ssdm_arrays";
constexpr const char* kChunksTable = "ssdm_chunks";

std::string EncodeShape(const std::vector<int64_t>& shape) {
  std::string out;
  out.resize(shape.size() * 8);
  std::memcpy(out.data(), shape.data(), out.size());
  return out;
}

std::vector<int64_t> DecodeShape(const std::string& blob) {
  std::vector<int64_t> shape(blob.size() / 8);
  std::memcpy(shape.data(), blob.data(), shape.size() * 8);
  return shape;
}

}  // namespace

Result<std::unique_ptr<RelationalArrayStorage>> RelationalArrayStorage::Attach(
    relstore::Database* db) {
  using relstore::ColType;
  using relstore::Schema;
  if (!db->HasTable(kArraysTable)) {
    Schema arrays;
    arrays.columns = {{"array_id", ColType::kInt64},
                      {"etype", ColType::kInt64},
                      {"chunk_elems", ColType::kInt64},
                      {"shape", ColType::kBlob}};
    SCISPARQL_ASSIGN_OR_RETURN(auto* t1,
                               db->CreateTable(kArraysTable, arrays, true));
    (void)t1;
    Schema chunks;
    chunks.columns = {{"key", ColType::kInt64}, {"data", ColType::kBlob}};
    SCISPARQL_ASSIGN_OR_RETURN(auto* t2,
                               db->CreateTable(kChunksTable, chunks, true));
    (void)t2;
  }
  std::unique_ptr<RelationalArrayStorage> storage(
      new RelationalArrayStorage(db));
  // Recover the id counter from existing rows.
  SCISPARQL_RETURN_NOT_OK(db->ScanAll(kArraysTable, [&](const relstore::Row& row) {
    ArrayId id = static_cast<ArrayId>(relstore::AsInt(row[0]));
    if (id >= storage->next_id_) storage->next_id_ = id + 1;
    return true;
  }));
  return storage;
}

Result<ArrayId> RelationalArrayStorage::Store(const NumericArray& array,
                                              int64_t chunk_elems) {
  NumericArray compact = array.Compact();
  ArrayId id = next_id_++;
  relstore::Row meta_row = {
      static_cast<int64_t>(id), static_cast<int64_t>(compact.etype()),
      chunk_elems, EncodeShape(compact.shape())};
  SCISPARQL_ASSIGN_OR_RETURN(
      auto rid, db_->InsertIndexed(kArraysTable, id, meta_row));
  (void)rid;

  const int64_t total = compact.NumElements();
  const int64_t chunks = total == 0 ? 0 : (total + chunk_elems - 1) / chunk_elems;
  for (int64_t c = 0; c < chunks; ++c) {
    int64_t first = c * chunk_elems;
    int64_t n = std::min(chunk_elems, total - first);
    std::string blob(static_cast<size_t>(n * 8), '\0');
    for (int64_t i = 0; i < n; ++i) {
      if (compact.etype() == ElementType::kDouble) {
        double v = compact.DoubleAt(first + i);
        std::memcpy(blob.data() + i * 8, &v, 8);
      } else {
        int64_t v = compact.IntAt(first + i);
        std::memcpy(blob.data() + i * 8, &v, 8);
      }
    }
    relstore::Row row = {static_cast<int64_t>(ChunkKey(id, c)),
                         std::move(blob)};
    SCISPARQL_ASSIGN_OR_RETURN(
        auto crid,
        db_->InsertIndexed(kChunksTable, ChunkKey(id, c), row));
    (void)crid;
  }

  StoredArrayMeta meta;
  meta.id = id;
  meta.etype = compact.etype();
  meta.shape = compact.shape();
  meta.chunk_elems = chunk_elems;
  meta_cache_[id] = std::move(meta);
  return id;
}

Result<StoredArrayMeta> RelationalArrayStorage::GetMeta(ArrayId id) const {
  auto it = meta_cache_.find(id);
  if (it != meta_cache_.end()) return it->second;
  StoredArrayMeta meta;
  bool found = false;
  const std::vector<uint64_t> key = {id};
  SCISPARQL_RETURN_NOT_OK(db_->SelectByKeys(
      kArraysTable, key, relstore::SelectStrategy::kPerKey,
      [&](uint64_t, const relstore::Row& row) {
        meta.id = static_cast<ArrayId>(relstore::AsInt(row[0]));
        meta.etype = static_cast<ElementType>(relstore::AsInt(row[1]));
        meta.chunk_elems = relstore::AsInt(row[2]);
        meta.shape = DecodeShape(relstore::AsBytes(row[3]));
        found = true;
        return false;
      }));
  if (!found) {
    return Status::NotFound("no stored array " + std::to_string(id));
  }
  meta_cache_[id] = meta;
  return meta;
}

Status RelationalArrayStorage::FetchChunks(
    ArrayId id, std::span<const uint64_t> chunk_ids,
    const std::function<void(uint64_t, const uint8_t*, size_t)>& cb) {
  std::vector<uint64_t> keys;
  keys.reserve(chunk_ids.size());
  for (uint64_t c : chunk_ids) keys.push_back(ChunkKey(id, c));
  last_stats_ = relstore::SelectStats();
  Status st = db_->SelectByKeys(
      kChunksTable, keys, strategy_,
      [&](uint64_t key, const relstore::Row& row) {
        const std::string& blob = relstore::AsBytes(row[1]);
        ++stats_.chunks_fetched;
        stats_.bytes_fetched += blob.size();
        cb(key & 0xffffffffULL,
           reinterpret_cast<const uint8_t*>(blob.data()), blob.size());
        return true;
      },
      &last_stats_);
  stats_.queries += last_stats_.queries;
  return st;
}

Status RelationalArrayStorage::FetchIntervals(
    ArrayId id, std::span<const relstore::Interval> intervals,
    const std::function<void(uint64_t, const uint8_t*, size_t)>& cb) {
  // Rebase chunk-id intervals onto the composite key space; the layout
  // key = id<<32 | chunk preserves arithmetic progressions.
  std::vector<relstore::Interval> keyspace;
  keyspace.reserve(intervals.size());
  for (const relstore::Interval& iv : intervals) {
    keyspace.push_back(
        relstore::Interval{ChunkKey(id, iv.start), iv.stride, iv.count});
  }
  last_stats_ = relstore::SelectStats();
  Status st = db_->SelectByIntervals(
      kChunksTable, keyspace,
      [&](uint64_t key, const relstore::Row& row) {
        const std::string& blob = relstore::AsBytes(row[1]);
        ++stats_.chunks_fetched;
        stats_.bytes_fetched += blob.size();
        cb(key & 0xffffffffULL,
           reinterpret_cast<const uint8_t*>(blob.data()), blob.size());
        return true;
      },
      &last_stats_);
  stats_.queries += last_stats_.queries;
  return st;
}

Result<double> RelationalArrayStorage::AggregateWhole(ArrayId id, AggOp op) {
  // The aggregate runs inside the "server": a single range query streams
  // the chunks without handing them to the client-side APR machinery.
  SCISPARQL_ASSIGN_OR_RETURN(StoredArrayMeta meta, GetMeta(id));
  double sum = 0;
  double mn = std::numeric_limits<double>::infinity();
  double mx = -std::numeric_limits<double>::infinity();
  int64_t count = 0;
  ++stats_.queries;
  SCISPARQL_RETURN_NOT_OK(db_->SelectRange(
      kChunksTable, ChunkKey(id, 0),
      ChunkKey(id, 0xffffffffULL),
      [&](uint64_t, const relstore::Row& row) {
        const std::string& blob = relstore::AsBytes(row[1]);
        size_t n = blob.size() / 8;
        for (size_t i = 0; i < n; ++i) {
          double v;
          if (meta.etype == ElementType::kDouble) {
            std::memcpy(&v, blob.data() + i * 8, 8);
          } else {
            int64_t iv;
            std::memcpy(&iv, blob.data() + i * 8, 8);
            v = static_cast<double>(iv);
          }
          sum += v;
          mn = std::min(mn, v);
          mx = std::max(mx, v);
          ++count;
        }
        return true;
      }));
  switch (op) {
    case AggOp::kSum:
      return sum;
    case AggOp::kCount:
      return static_cast<double>(count);
    case AggOp::kAvg:
      if (count == 0) return Status::InvalidArgument("avg of empty array");
      return sum / static_cast<double>(count);
    case AggOp::kMin:
      if (count == 0) return Status::InvalidArgument("min of empty array");
      return mn;
    case AggOp::kMax:
      if (count == 0) return Status::InvalidArgument("max of empty array");
      return mx;
  }
  return Status::Internal("unknown aggregate");
}

Status RelationalArrayStorage::Remove(ArrayId id) {
  SCISPARQL_ASSIGN_OR_RETURN(StoredArrayMeta meta, GetMeta(id));
  SCISPARQL_ASSIGN_OR_RETURN(size_t n, db_->DeleteByKey(kArraysTable, id));
  if (n == 0) return Status::NotFound("no stored array");
  for (int64_t c = 0; c < meta.NumChunks(); ++c) {
    SCISPARQL_ASSIGN_OR_RETURN(size_t m,
                               db_->DeleteByKey(kChunksTable, ChunkKey(id, c)));
    (void)m;
  }
  meta_cache_.erase(id);
  return Status::OK();
}

}  // namespace scisparql
