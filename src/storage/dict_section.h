#ifndef SCISPARQL_STORAGE_DICT_SECTION_H_
#define SCISPARQL_STORAGE_DICT_SECTION_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/status.h"
#include "rdf/graph.h"

namespace scisparql {
namespace storage {

/// Dictionary-encoded snapshot section: the graph's distinct terms are
/// written once (inline bytes, or (storage, id) references for stored
/// arrays — which the Turtle writer used to materialize in full), followed
/// by the triples as fixed-width index tuples. The section body starts
/// with a NUL magic byte, which no Turtle document can, so loaders route
/// on the first byte and fall back to Turtle for legacy snapshots.

/// True when `body` is a dictionary-encoded section (vs. Turtle).
bool IsDictSection(const std::string& body);

/// Serializes the graph's live triples as a dictionary section.
Result<std::string> EncodeDictSection(const Graph& g);

/// Decodes a dictionary section into `g` (one Add per triple).
/// `resolve_ref` materializes (storage, id) array references; may be null
/// when the section contains none.
Status DecodeDictSection(
    const std::string& body,
    const std::function<Result<Term>(const std::string&, uint64_t)>&
        resolve_ref,
    Graph* g);

}  // namespace storage
}  // namespace scisparql

#endif  // SCISPARQL_STORAGE_DICT_SECTION_H_
