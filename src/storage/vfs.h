#ifndef SCISPARQL_STORAGE_VFS_H_
#define SCISPARQL_STORAGE_VFS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace scisparql {
namespace storage {

/// An open file handle. All offsets are absolute (pread/pwrite style), so
/// a handle can be shared by readers without seek races. Implementations
/// turn partial writes into either completion (by looping) or an error —
/// callers never see a silent short write.
class VfsFile {
 public:
  virtual ~VfsFile() = default;

  /// Reads up to `n` bytes at `off`. Returns the number of bytes read; a
  /// value < n means EOF was reached (not an error).
  virtual Result<size_t> ReadAt(uint64_t off, void* buf, size_t n) = 0;

  /// Writes exactly `n` bytes at `off` (extending the file if needed).
  virtual Status WriteAt(uint64_t off, const void* buf, size_t n) = 0;

  virtual Result<uint64_t> Size() = 0;
  virtual Status Truncate(uint64_t size) = 0;

  /// Durably flushes written data to the device (fsync).
  virtual Status Sync() = 0;
};

/// Virtual file system: the single seam through which every durable byte
/// of the engine travels — the WAL, snapshots, the pager, and the array
/// back-ends. Production uses the POSIX implementation behind
/// DefaultVfs(); tests wrap it in a FaultyVfs (fault_fs.h) to script
/// short writes, torn writes, ENOSPC, fsync failures and crashes at any
/// I/O point.
class Vfs {
 public:
  enum class OpenMode {
    kRead,       ///< Existing file, read-only.
    kReadWrite,  ///< Create if missing; read/write; preserve content.
    kTruncate,   ///< Create or truncate to empty; read/write.
  };

  virtual ~Vfs() = default;

  virtual Result<std::unique_ptr<VfsFile>> Open(const std::string& path,
                                                OpenMode mode) = 0;

  /// Atomically replaces `to` with `from` (POSIX rename), then syncs the
  /// containing directory so the rename itself is durable.
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  virtual Status Remove(const std::string& path) = 0;

  virtual bool Exists(const std::string& path) = 0;

  /// Creates `path` (a single level) if missing.
  virtual Status CreateDir(const std::string& path) = 0;

  /// Names (not paths) of the entries in `dir`, excluding "." / "..".
  virtual Result<std::vector<std::string>> ListDir(const std::string& dir) = 0;
};

/// The process-wide POSIX VFS.
Vfs* DefaultVfs();

}  // namespace storage
}  // namespace scisparql

#endif  // SCISPARQL_STORAGE_VFS_H_
