#ifndef SCISPARQL_STORAGE_KV_BACKEND_H_
#define SCISPARQL_STORAGE_KV_BACKEND_H_

#include <cstdio>
#include <map>
#include <string>

#include "storage/asei.h"

namespace scisparql {

/// NoSQL-style key-value array back-end. The thesis (Section 2.2.3)
/// anticipates interfacing "not-only-SQL" stores whose APIs offer little
/// beyond point lookups; this back-end models exactly that capability
/// envelope on top of a log-structured file:
///
///   * point get/put of opaque values under string keys — nothing else;
///   * NO native interval scans (FetchIntervals falls back to expanding
///     SPD intervals into point gets, per the ASEI default);
///   * NO aggregate pushdown (AAPR falls back to client-side evaluation).
///
/// The ASEI capability flags make SSDM degrade gracefully: the same
/// queries run, with more data crossing the boundary — the trade-off the
/// paper's NoSQL discussion predicts.
class KvArrayStorage : public ArrayStorage {
 public:
  /// Opens (or creates) the log file; existing records are indexed by a
  /// sequential scan, the usual recovery story of log-structured stores.
  static Result<std::unique_ptr<KvArrayStorage>> Open(
      const std::string& path);

  ~KvArrayStorage() override;

  std::string name() const override { return "kv"; }
  bool SupportsAggregatePushdown() const override { return false; }

  Result<ArrayId> Store(const NumericArray& array,
                        int64_t chunk_elems) override;
  Result<StoredArrayMeta> GetMeta(ArrayId id) const override;
  Status FetchChunks(
      ArrayId id, std::span<const uint64_t> chunk_ids,
      const std::function<void(uint64_t, const uint8_t*, size_t)>& cb)
      override;

  /// Raw point access, for tests.
  Result<std::string> Get(const std::string& key) const;
  Status Put(const std::string& key, const std::string& value);

  size_t key_count() const { return index_.size(); }

 private:
  explicit KvArrayStorage(std::string path) : path_(std::move(path)) {}

  Status LoadIndex();

  struct Location {
    long offset = 0;  // of the value bytes
    uint32_t length = 0;
  };

  std::string path_;
  std::FILE* file_ = nullptr;
  std::map<std::string, Location> index_;
  ArrayId next_id_ = 1;
};

}  // namespace scisparql

#endif  // SCISPARQL_STORAGE_KV_BACKEND_H_
