#ifndef SCISPARQL_STORAGE_KV_BACKEND_H_
#define SCISPARQL_STORAGE_KV_BACKEND_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "storage/asei.h"
#include "storage/vfs.h"

namespace scisparql {

/// NoSQL-style key-value array back-end. The thesis (Section 2.2.3)
/// anticipates interfacing "not-only-SQL" stores whose APIs offer little
/// beyond point lookups; this back-end models exactly that capability
/// envelope on top of a log-structured file:
///
///   * point get/put of opaque values under string keys — nothing else;
///   * NO native interval scans (FetchIntervals falls back to expanding
///     SPD intervals into point gets, per the ASEI default);
///   * NO aggregate pushdown (AAPR falls back to client-side evaluation).
///
/// The ASEI capability flags make SSDM degrade gracefully: the same
/// queries run, with more data crossing the boundary — the trade-off the
/// paper's NoSQL discussion predicts.
///
/// Log record format: [u32 key_len][key][u32 val_len][value]
/// [u32 masked crc32c(key || value)]. The CRC lets recovery tell a torn
/// trailing record (truncated away with a warning counter) from silent
/// mid-log corruption (the record is rejected; later copies of the key
/// still win, log-structured style).
class KvArrayStorage : public ArrayStorage {
 public:
  /// Opens (or creates) the log file; existing records are indexed by a
  /// sequential scan, the usual recovery story of log-structured stores.
  /// A torn trailing record — the tail a crash mid-Put leaves behind — is
  /// truncated off; see truncated_tail(). `vfs` defaults to the real
  /// filesystem.
  static Result<std::unique_ptr<KvArrayStorage>> Open(
      const std::string& path, storage::Vfs* vfs = nullptr);

  ~KvArrayStorage() override;

  std::string name() const override { return "kv"; }
  bool SupportsAggregatePushdown() const override { return false; }

  Result<ArrayId> Store(const NumericArray& array,
                        int64_t chunk_elems) override;
  Result<StoredArrayMeta> GetMeta(ArrayId id) const override;
  Status FetchChunks(
      ArrayId id, std::span<const uint64_t> chunk_ids,
      const std::function<void(uint64_t, const uint8_t*, size_t)>& cb)
      override;

  /// Raw point access, for tests.
  Result<std::string> Get(const std::string& key) const;
  Status Put(const std::string& key, const std::string& value);

  size_t key_count() const { return index_.size(); }

  /// True when Open() found and truncated a torn trailing record.
  bool truncated_tail() const { return truncated_tail_; }
  /// Mid-log records dropped for CRC mismatch during Open().
  uint64_t rejected_records() const { return rejected_records_; }

 private:
  KvArrayStorage(std::string path, storage::Vfs* vfs)
      : path_(std::move(path)), vfs_(vfs) {}

  Status LoadIndex();

  struct Location {
    uint64_t offset = 0;  // of the value bytes
    uint32_t length = 0;
  };

  std::string path_;
  storage::Vfs* vfs_;
  std::unique_ptr<storage::VfsFile> file_;
  uint64_t end_offset_ = 0;  ///< Logical end of the log (append point).
  std::map<std::string, Location> index_;
  ArrayId next_id_ = 1;
  bool truncated_tail_ = false;
  uint64_t rejected_records_ = 0;
};

}  // namespace scisparql

#endif  // SCISPARQL_STORAGE_KV_BACKEND_H_
