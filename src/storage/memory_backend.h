#ifndef SCISPARQL_STORAGE_MEMORY_BACKEND_H_
#define SCISPARQL_STORAGE_MEMORY_BACKEND_H_

#include <map>
#include <string>

#include "storage/asei.h"

namespace scisparql {

/// In-process array store: arrays live in compact buffers in this process.
/// This is SSDM's default resident storage (Section 5.2.1); it also serves
/// as the zero-latency baseline the external back-ends are compared to.
class MemoryArrayStorage : public ArrayStorage {
 public:
  std::string name() const override { return "memory"; }
  bool SupportsAggregatePushdown() const override { return true; }

  Result<ArrayId> Store(const NumericArray& array,
                        int64_t chunk_elems) override;
  Result<StoredArrayMeta> GetMeta(ArrayId id) const override;
  Status FetchChunks(
      ArrayId id, std::span<const uint64_t> chunk_ids,
      const std::function<void(uint64_t, const uint8_t*, size_t)>& cb)
      override;
  Result<double> AggregateWhole(ArrayId id, AggOp op) override;
  Status Remove(ArrayId id) override;

  size_t array_count() const { return arrays_.size(); }

 private:
  struct Entry {
    StoredArrayMeta meta;
    NumericArray array;  // always compact row-major
  };

  Result<const Entry*> Find(ArrayId id) const;

  std::map<ArrayId, Entry> arrays_;
  ArrayId next_id_ = 1;
};

}  // namespace scisparql

#endif  // SCISPARQL_STORAGE_MEMORY_BACKEND_H_
