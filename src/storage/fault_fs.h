#ifndef SCISPARQL_STORAGE_FAULT_FS_H_
#define SCISPARQL_STORAGE_FAULT_FS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "storage/vfs.h"

namespace scisparql {
namespace storage {

/// Kinds of injectable failure at a mutating I/O operation.
enum class FaultKind : uint8_t {
  kShortWrite,   ///< Persist only a prefix of the buffer, report IoError.
  kTornWrite,    ///< Persist a prefix, then the process "dies" (all
                 ///< subsequent I/O fails until Reset) — models a crash
                 ///< mid-write leaving a torn record on disk.
  kEnospc,       ///< Persist nothing, report ENOSPC-style IoError.
  kSyncFail,     ///< The fsync reports failure (data may or may not be
                 ///< durable — the caller must treat it as not).
  kCrash,        ///< Persist nothing; process dies as with kTornWrite.
};

/// Fault-injecting VFS wrapper. Every *mutating* operation (WriteAt,
/// Truncate, Sync, Rename, Remove) consumes one op index from a global
/// counter; scripted faults trigger when their index comes up. Reads are
/// never faulted directly but fail once the VFS is in the crashed state.
///
/// The crash-matrix test drives this in two passes: a clean run to learn
/// the op count N, then one run per k in [0, N) with a crash scheduled at
/// op k, followed by recovery on a pristine VFS over the same directory.
///
/// Thread-safe: faults and counters are guarded by a mutex (the engine's
/// exclusive write lock already serializes durable writes, but reads may
/// run concurrently).
class FaultyVfs : public Vfs {
 public:
  /// `base` must outlive this wrapper.
  explicit FaultyVfs(Vfs* base) : base_(base) {}

  // --- Scripting. ---

  /// Schedules `kind` to fire at the mutating op with 0-based index
  /// `op_index` (counted from construction or the last Reset).
  /// `partial_bytes` limits how much of a faulted write persists
  /// (kShortWrite / kTornWrite).
  void ScheduleFault(uint64_t op_index, FaultKind kind,
                     size_t partial_bytes = 0);

  /// Crash (persist nothing more) at op `op_index`.
  void CrashAtOp(uint64_t op_index) { ScheduleFault(op_index, FaultKind::kCrash); }

  /// Every write from now on fails (persistent media failure — the
  /// degradation-to-read-only scenario). Syncs fail too.
  void FailAllWrites(bool on);

  /// Every fsync from now on fails while writes succeed (the
  /// lost-write-cache scenario).
  void FailAllSyncs(bool on);

  /// Clears scripted faults, the crashed state and the op counter.
  void Reset();

  /// Mutating ops observed since construction / Reset.
  uint64_t op_count() const;

  /// Faults actually fired.
  uint64_t faults_fired() const;

  bool crashed() const;

  // --- Vfs. ---

  Result<std::unique_ptr<VfsFile>> Open(const std::string& path,
                                        OpenMode mode) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override;
  bool Exists(const std::string& path) override;
  Status CreateDir(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;

  // --- Internal plumbing, public so the file wrapper (an implementation
  // detail in fault_fs.cpp) can reach it. Not part of the test API. ---

  /// Decision for one mutating op, taken under the mutex.
  struct OpDecision {
    bool fail = false;
    bool crash_after = false;   ///< Enter crashed state after handling.
    size_t partial_bytes = 0;   ///< For writes: bytes to persist anyway.
    bool persist_prefix = false;
    std::string message;
  };

  /// Consumes one op index and returns what to do. `is_sync` selects the
  /// FailAllSyncs blanket; writes/truncates/renames use FailAllWrites.
  OpDecision NextOp(bool is_sync);
  Status CheckAlive() const;

 private:
  struct ScriptedFault {
    uint64_t op_index;
    FaultKind kind;
    size_t partial_bytes;
  };

  Vfs* base_;
  mutable std::mutex mu_;
  std::vector<ScriptedFault> faults_;
  uint64_t ops_ = 0;
  uint64_t fired_ = 0;
  bool crashed_ = false;
  bool fail_all_writes_ = false;
  bool fail_all_syncs_ = false;
};

}  // namespace storage
}  // namespace scisparql

#endif  // SCISPARQL_STORAGE_FAULT_FS_H_
