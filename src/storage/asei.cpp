#include "storage/asei.h"

namespace scisparql {

const char* RetrievalStrategyName(RetrievalStrategy s) {
  switch (s) {
    case RetrievalStrategy::kNaive:
      return "naive";
    case RetrievalStrategy::kBuffered:
      return "buffered";
    case RetrievalStrategy::kSpd:
      return "spd";
  }
  return "?";
}

Status ArrayStorage::FetchIntervals(
    ArrayId id, std::span<const relstore::Interval> intervals,
    const std::function<void(uint64_t, const uint8_t*, size_t)>& cb) {
  std::vector<uint64_t> ids = relstore::ExpandIntervals(intervals);
  return FetchChunks(id, ids, cb);
}

Result<double> ArrayStorage::AggregateWhole(ArrayId, AggOp) {
  return Status::Unsupported("back-end cannot push down aggregates: " +
                             name());
}

Status ArrayStorage::Remove(ArrayId) {
  return Status::Unsupported("back-end cannot remove arrays: " + name());
}

}  // namespace scisparql
