#include "storage/kv_backend.h"

#include <cstring>

namespace scisparql {

// Log record format: [u32 key length][key][u32 value length][value].

namespace {

std::string MetaKey(ArrayId id) {
  return "meta:" + std::to_string(id);
}
std::string ChunkKey(ArrayId id, uint64_t chunk) {
  return "chunk:" + std::to_string(id) + ":" + std::to_string(chunk);
}

std::string EncodeMeta(const StoredArrayMeta& meta) {
  std::string out;
  out.resize(16 + meta.shape.size() * 8);
  uint32_t etype = static_cast<uint32_t>(meta.etype);
  uint32_t rank = static_cast<uint32_t>(meta.shape.size());
  std::memcpy(out.data(), &etype, 4);
  std::memcpy(out.data() + 4, &rank, 4);
  std::memcpy(out.data() + 8, &meta.chunk_elems, 8);
  std::memcpy(out.data() + 16, meta.shape.data(), meta.shape.size() * 8);
  return out;
}

Result<StoredArrayMeta> DecodeMeta(ArrayId id, const std::string& bytes) {
  if (bytes.size() < 16) return Status::Internal("short meta record");
  StoredArrayMeta meta;
  meta.id = id;
  uint32_t etype, rank;
  std::memcpy(&etype, bytes.data(), 4);
  std::memcpy(&rank, bytes.data() + 4, 4);
  std::memcpy(&meta.chunk_elems, bytes.data() + 8, 8);
  meta.etype = static_cast<ElementType>(etype);
  if (bytes.size() < 16 + rank * 8) {
    return Status::Internal("short meta record (dims)");
  }
  meta.shape.resize(rank);
  std::memcpy(meta.shape.data(), bytes.data() + 16, rank * 8);
  return meta;
}

}  // namespace

Result<std::unique_ptr<KvArrayStorage>> KvArrayStorage::Open(
    const std::string& path) {
  std::unique_ptr<KvArrayStorage> kv(new KvArrayStorage(path));
  kv->file_ = std::fopen(path.c_str(), "r+b");
  if (kv->file_ == nullptr) kv->file_ = std::fopen(path.c_str(), "w+b");
  if (kv->file_ == nullptr) {
    return Status::IoError("cannot open kv log: " + path);
  }
  SCISPARQL_RETURN_NOT_OK(kv->LoadIndex());
  return kv;
}

KvArrayStorage::~KvArrayStorage() {
  if (file_ != nullptr) std::fclose(file_);
}

Status KvArrayStorage::LoadIndex() {
  std::fseek(file_, 0, SEEK_SET);
  while (true) {
    uint32_t key_len;
    if (std::fread(&key_len, 1, 4, file_) != 4) break;  // EOF
    std::string key(key_len, '\0');
    if (std::fread(key.data(), 1, key_len, file_) != key_len) {
      return Status::IoError("truncated kv log (key)");
    }
    uint32_t val_len;
    if (std::fread(&val_len, 1, 4, file_) != 4) {
      return Status::IoError("truncated kv log (length)");
    }
    Location loc;
    loc.offset = std::ftell(file_);
    loc.length = val_len;
    if (std::fseek(file_, val_len, SEEK_CUR) != 0) {
      return Status::IoError("truncated kv log (value)");
    }
    index_[key] = loc;  // later records win, log-structured style
    // Recover the id counter from meta records.
    if (key.rfind("meta:", 0) == 0) {
      ArrayId id = static_cast<ArrayId>(std::atoll(key.c_str() + 5));
      if (id >= next_id_) next_id_ = id + 1;
    }
  }
  return Status::OK();
}

Status KvArrayStorage::Put(const std::string& key, const std::string& value) {
  std::fseek(file_, 0, SEEK_END);
  uint32_t key_len = static_cast<uint32_t>(key.size());
  uint32_t val_len = static_cast<uint32_t>(value.size());
  if (std::fwrite(&key_len, 1, 4, file_) != 4 ||
      std::fwrite(key.data(), 1, key_len, file_) != key_len ||
      std::fwrite(&val_len, 1, 4, file_) != 4) {
    return Status::IoError("kv append failed");
  }
  Location loc;
  loc.offset = std::ftell(file_);
  loc.length = val_len;
  if (std::fwrite(value.data(), 1, val_len, file_) != val_len) {
    return Status::IoError("kv append failed");
  }
  index_[key] = loc;
  return Status::OK();
}

Result<std::string> KvArrayStorage::Get(const std::string& key) const {
  auto it = index_.find(key);
  if (it == index_.end()) return Status::NotFound("no kv key: " + key);
  std::string out(it->second.length, '\0');
  if (std::fseek(file_, it->second.offset, SEEK_SET) != 0 ||
      std::fread(out.data(), 1, out.size(), file_) != out.size()) {
    return Status::IoError("kv read failed");
  }
  return out;
}

Result<ArrayId> KvArrayStorage::Store(const NumericArray& array,
                                      int64_t chunk_elems) {
  NumericArray compact = array.Compact();
  ArrayId id = next_id_++;
  StoredArrayMeta meta;
  meta.id = id;
  meta.etype = compact.etype();
  meta.shape = compact.shape();
  meta.chunk_elems = chunk_elems;
  SCISPARQL_RETURN_NOT_OK(Put(MetaKey(id), EncodeMeta(meta)));

  const int64_t total = compact.NumElements();
  const int64_t chunks =
      total == 0 ? 0 : (total + chunk_elems - 1) / chunk_elems;
  for (int64_t c = 0; c < chunks; ++c) {
    int64_t first = c * chunk_elems;
    int64_t n = std::min(chunk_elems, total - first);
    std::string blob(static_cast<size_t>(n * 8), '\0');
    for (int64_t i = 0; i < n; ++i) {
      if (compact.etype() == ElementType::kDouble) {
        double v = compact.DoubleAt(first + i);
        std::memcpy(blob.data() + i * 8, &v, 8);
      } else {
        int64_t v = compact.IntAt(first + i);
        std::memcpy(blob.data() + i * 8, &v, 8);
      }
    }
    SCISPARQL_RETURN_NOT_OK(
        Put(ChunkKey(id, static_cast<uint64_t>(c)), blob));
  }
  return id;
}

Result<StoredArrayMeta> KvArrayStorage::GetMeta(ArrayId id) const {
  auto bytes = Get(MetaKey(id));
  if (!bytes.ok()) {
    return Status::NotFound("no stored array " + std::to_string(id));
  }
  return DecodeMeta(id, *bytes);
}

Status KvArrayStorage::FetchChunks(
    ArrayId id, std::span<const uint64_t> chunk_ids,
    const std::function<void(uint64_t, const uint8_t*, size_t)>& cb) {
  // One point get per chunk — all the store's API offers.
  for (uint64_t c : chunk_ids) {
    ++stats_.queries;
    SCISPARQL_ASSIGN_OR_RETURN(std::string blob, Get(ChunkKey(id, c)));
    ++stats_.chunks_fetched;
    stats_.bytes_fetched += blob.size();
    cb(c, reinterpret_cast<const uint8_t*>(blob.data()), blob.size());
  }
  return Status::OK();
}

}  // namespace scisparql
