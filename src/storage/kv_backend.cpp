#include "storage/kv_backend.h"

#include <cstdlib>
#include <cstring>

#include "common/crc32c.h"

namespace scisparql {

namespace {

std::string MetaKey(ArrayId id) {
  return "meta:" + std::to_string(id);
}
std::string ChunkKey(ArrayId id, uint64_t chunk) {
  return "chunk:" + std::to_string(id) + ":" + std::to_string(chunk);
}

std::string EncodeMeta(const StoredArrayMeta& meta) {
  std::string out;
  out.resize(16 + meta.shape.size() * 8);
  uint32_t etype = static_cast<uint32_t>(meta.etype);
  uint32_t rank = static_cast<uint32_t>(meta.shape.size());
  std::memcpy(out.data(), &etype, 4);
  std::memcpy(out.data() + 4, &rank, 4);
  std::memcpy(out.data() + 8, &meta.chunk_elems, 8);
  std::memcpy(out.data() + 16, meta.shape.data(), meta.shape.size() * 8);
  return out;
}

Result<StoredArrayMeta> DecodeMeta(ArrayId id, const std::string& bytes) {
  if (bytes.size() < 16) return Status::Internal("short meta record");
  StoredArrayMeta meta;
  meta.id = id;
  uint32_t etype, rank;
  std::memcpy(&etype, bytes.data(), 4);
  std::memcpy(&rank, bytes.data() + 4, 4);
  std::memcpy(&meta.chunk_elems, bytes.data() + 8, 8);
  meta.etype = static_cast<ElementType>(etype);
  if (bytes.size() < 16 + rank * 8) {
    return Status::Internal("short meta record (dims)");
  }
  meta.shape.resize(rank);
  std::memcpy(meta.shape.data(), bytes.data() + 16, rank * 8);
  return meta;
}

uint32_t RecordCrc(const std::string& key, const std::string& value) {
  uint32_t crc = Crc32c(key);
  return Crc32cExtend(crc, value.data(), value.size());
}

}  // namespace

Result<std::unique_ptr<KvArrayStorage>> KvArrayStorage::Open(
    const std::string& path, storage::Vfs* vfs) {
  if (vfs == nullptr) vfs = storage::DefaultVfs();
  std::unique_ptr<KvArrayStorage> kv(new KvArrayStorage(path, vfs));
  SCISPARQL_ASSIGN_OR_RETURN(
      kv->file_, vfs->Open(path, storage::Vfs::OpenMode::kReadWrite));
  SCISPARQL_RETURN_NOT_OK(kv->LoadIndex());
  return kv;
}

KvArrayStorage::~KvArrayStorage() = default;

Status KvArrayStorage::LoadIndex() {
  SCISPARQL_ASSIGN_OR_RETURN(uint64_t size, file_->Size());
  std::string data(size, '\0');
  SCISPARQL_ASSIGN_OR_RETURN(size_t got, file_->ReadAt(0, data.data(), size));
  data.resize(got);

  auto read_u32 = [&data](size_t* pos, uint32_t* v) {
    if (*pos + 4 > data.size()) return false;
    std::memcpy(v, data.data() + *pos, 4);
    *pos += 4;
    return true;
  };

  size_t pos = 0;
  size_t valid_end = 0;  // end of the last well-formed record
  bool torn = false;
  while (pos < data.size()) {
    size_t rec_start = pos;
    uint32_t key_len, val_len, stored_crc;
    std::string key;
    if (!read_u32(&pos, &key_len) || pos + key_len > data.size()) {
      torn = true;
      break;
    }
    key.assign(data, pos, key_len);
    pos += key_len;
    if (!read_u32(&pos, &val_len) || pos + val_len > data.size()) {
      torn = true;
      break;
    }
    uint64_t val_off = pos;
    std::string value = data.substr(pos, val_len);
    pos += val_len;
    if (!read_u32(&pos, &stored_crc)) {
      torn = true;
      break;
    }
    if (Crc32cUnmask(stored_crc) != RecordCrc(key, value)) {
      if (pos == data.size()) {
        // A checksum-invalid *final* record is the torn tail a crash
        // mid-append leaves behind: drop it like a short one.
        torn = true;
        pos = rec_start;
        break;
      }
      // Mid-log mismatch with intact framing: silent corruption of one
      // record. Reject it; a later copy of the key may still win.
      ++rejected_records_;
      continue;
    }
    valid_end = pos;
    index_[key] = Location{val_off, val_len};  // later records win
    // Recover the id counter from meta records.
    if (key.rfind("meta:", 0) == 0) {
      ArrayId id = static_cast<ArrayId>(std::atoll(key.c_str() + 5));
      if (id >= next_id_) next_id_ = id + 1;
    }
  }
  if (torn) {
    truncated_tail_ = true;
    SCISPARQL_RETURN_NOT_OK(file_->Truncate(valid_end));
    end_offset_ = valid_end;
  } else {
    end_offset_ = data.size();
  }
  return Status::OK();
}

Status KvArrayStorage::Put(const std::string& key, const std::string& value) {
  std::string frame;
  frame.reserve(12 + key.size() + value.size());
  uint32_t key_len = static_cast<uint32_t>(key.size());
  uint32_t val_len = static_cast<uint32_t>(value.size());
  uint32_t crc = Crc32cMask(RecordCrc(key, value));
  frame.append(reinterpret_cast<const char*>(&key_len), 4);
  frame.append(key);
  frame.append(reinterpret_cast<const char*>(&val_len), 4);
  frame.append(value);
  frame.append(reinterpret_cast<const char*>(&crc), 4);
  // One positional write at the logical end; on failure the offset does
  // not advance and the index is untouched, so the partial bytes sit past
  // the logical end where the next Put overwrites them and recovery's CRC
  // check discards them.
  SCISPARQL_RETURN_NOT_OK(
      file_->WriteAt(end_offset_, frame.data(), frame.size()));
  index_[key] =
      Location{end_offset_ + 8 + key.size(), val_len};
  end_offset_ += frame.size();
  return Status::OK();
}

Result<std::string> KvArrayStorage::Get(const std::string& key) const {
  auto it = index_.find(key);
  if (it == index_.end()) return Status::NotFound("no kv key: " + key);
  std::string out(it->second.length, '\0');
  SCISPARQL_ASSIGN_OR_RETURN(
      size_t got, file_->ReadAt(it->second.offset, out.data(), out.size()));
  if (got != out.size()) return Status::IoError("kv read failed");
  return out;
}

Result<ArrayId> KvArrayStorage::Store(const NumericArray& array,
                                      int64_t chunk_elems) {
  NumericArray compact = array.Compact();
  ArrayId id = next_id_++;
  StoredArrayMeta meta;
  meta.id = id;
  meta.etype = compact.etype();
  meta.shape = compact.shape();
  meta.chunk_elems = chunk_elems;
  SCISPARQL_RETURN_NOT_OK(Put(MetaKey(id), EncodeMeta(meta)));

  const int64_t total = compact.NumElements();
  const int64_t chunks =
      total == 0 ? 0 : (total + chunk_elems - 1) / chunk_elems;
  for (int64_t c = 0; c < chunks; ++c) {
    int64_t first = c * chunk_elems;
    int64_t n = std::min(chunk_elems, total - first);
    std::string blob(static_cast<size_t>(n * 8), '\0');
    for (int64_t i = 0; i < n; ++i) {
      if (compact.etype() == ElementType::kDouble) {
        double v = compact.DoubleAt(first + i);
        std::memcpy(blob.data() + i * 8, &v, 8);
      } else {
        int64_t v = compact.IntAt(first + i);
        std::memcpy(blob.data() + i * 8, &v, 8);
      }
    }
    SCISPARQL_RETURN_NOT_OK(
        Put(ChunkKey(id, static_cast<uint64_t>(c)), blob));
  }
  return id;
}

Result<StoredArrayMeta> KvArrayStorage::GetMeta(ArrayId id) const {
  auto bytes = Get(MetaKey(id));
  if (!bytes.ok()) {
    return Status::NotFound("no stored array " + std::to_string(id));
  }
  return DecodeMeta(id, *bytes);
}

Status KvArrayStorage::FetchChunks(
    ArrayId id, std::span<const uint64_t> chunk_ids,
    const std::function<void(uint64_t, const uint8_t*, size_t)>& cb) {
  // One point get per chunk — all the store's API offers.
  for (uint64_t c : chunk_ids) {
    ++stats_.queries;
    SCISPARQL_ASSIGN_OR_RETURN(std::string blob, Get(ChunkKey(id, c)));
    ++stats_.chunks_fetched;
    stats_.bytes_fetched += blob.size();
    cb(c, reinterpret_cast<const uint8_t*>(blob.data()), blob.size());
  }
  return Status::OK();
}

}  // namespace scisparql
