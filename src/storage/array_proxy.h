#ifndef SCISPARQL_STORAGE_ARRAY_PROXY_H_
#define SCISPARQL_STORAGE_ARRAY_PROXY_H_

#include <map>
#include <memory>
#include <vector>

#include "storage/asei.h"

namespace scisparql {

/// Lazy handle to an externally stored array (Section 5.2 / 6.1). A proxy
/// carries a *view descriptor* — offset, shape and strides over the stored
/// row-major element space — so dereference syntax like `?a[2, 1:100:3]`
/// merely transforms the descriptor. Array content is touched only when an
/// APR (array-proxy-resolve) call materializes the view, or an element is
/// accessed; AAPR delegates whole-array aggregates to capable back-ends.
class ArrayProxy : public ArrayValue {
 public:
  /// Opens a proxy covering the entire stored array `id`.
  static Result<std::shared_ptr<ArrayProxy>> Open(
      std::shared_ptr<ArrayStorage> storage, ArrayId id,
      AprConfig config = AprConfig());

  ElementType etype() const override { return meta_.etype; }
  const std::vector<int64_t>& shape() const override { return shape_; }
  bool resident() const override { return false; }

  Result<double> ElementAsDouble(std::span<const int64_t> idx) const override;

  Result<std::shared_ptr<ArrayValue>> Subscript(
      std::span<const Sub> subs) const override;

  /// The APR call: fetches exactly the chunks the view touches, using the
  /// configured retrieval strategy, and assembles a resident array.
  Result<NumericArray> Materialize() const override;

  /// AAPR: pushes the aggregate to the back-end when the view covers the
  /// whole stored array and the back-end supports it; otherwise falls back
  /// to materialize-and-compute.
  Result<double> Aggregate(AggOp op) const override;

  std::string Describe() const override;

  const std::shared_ptr<ArrayStorage>& storage() const { return storage_; }
  ArrayId array_id() const { return meta_.id; }
  const StoredArrayMeta& meta() const { return meta_; }
  const AprConfig& config() const { return config_; }
  void set_config(AprConfig c) { config_ = c; }

  /// True when the view spans the entire stored array in natural order.
  bool CoversWholeArray() const;

  /// Stored linear element addresses this view touches, in logical order.
  std::vector<int64_t> ElementAddresses() const;

  /// Chunk ids (sorted, unique) covering the view.
  std::vector<uint64_t> NeededChunks() const;

  /// Fills `out` (pre-shaped) from a chunk_id -> bytes map. Exposed for the
  /// bag resolver which fetches chunks for many proxies at once.
  Status FillFromChunks(
      const std::map<uint64_t, std::vector<uint8_t>>& chunks,
      NumericArray* out) const;

 private:
  ArrayProxy(std::shared_ptr<ArrayStorage> storage, StoredArrayMeta meta,
             AprConfig config);

  int64_t AddressOf(std::span<const int64_t> idx) const;

  std::shared_ptr<ArrayStorage> storage_;
  StoredArrayMeta meta_;
  AprConfig config_;
  // View descriptor over the stored row-major element space.
  int64_t offset_ = 0;
  std::vector<int64_t> shape_;
  std::vector<int64_t> strides_;
  // One-chunk cache for repeated scalar element accesses.
  mutable int64_t cached_chunk_ = -1;
  mutable std::vector<uint8_t> cached_bytes_;
};

/// Resolves a bag of proxies against their back-ends in batches of
/// `config.buffer_size` chunk references (Section 6.2.4, "resolving bags of
/// array proxies"). Chunk requests of proxies sharing a (storage, array)
/// pair are merged before fetching, so overlapping views are fetched once
/// per batch. Resident inputs pass through untouched.
Result<std::vector<NumericArray>> ResolveProxyBag(
    std::span<const std::shared_ptr<ArrayValue>> values,
    const AprConfig& config);

}  // namespace scisparql

#endif  // SCISPARQL_STORAGE_ARRAY_PROXY_H_
