#include "storage/array_proxy.h"

#include <algorithm>
#include <cstring>
#include <sstream>

namespace scisparql {

ArrayProxy::ArrayProxy(std::shared_ptr<ArrayStorage> storage,
                       StoredArrayMeta meta, AprConfig config)
    : storage_(std::move(storage)),
      meta_(std::move(meta)),
      config_(config),
      shape_(meta_.shape),
      strides_(NumericArray::RowMajorStrides(meta_.shape)) {}

Result<std::shared_ptr<ArrayProxy>> ArrayProxy::Open(
    std::shared_ptr<ArrayStorage> storage, ArrayId id, AprConfig config) {
  SCISPARQL_ASSIGN_OR_RETURN(StoredArrayMeta meta, storage->GetMeta(id));
  return std::shared_ptr<ArrayProxy>(
      new ArrayProxy(std::move(storage), std::move(meta), config));
}

int64_t ArrayProxy::AddressOf(std::span<const int64_t> idx) const {
  int64_t pos = offset_;
  for (size_t i = 0; i < idx.size(); ++i) pos += idx[i] * strides_[i];
  return pos;
}

Result<double> ArrayProxy::ElementAsDouble(
    std::span<const int64_t> idx) const {
  if (idx.size() != shape_.size()) {
    return Status::InvalidArgument("subscript rank mismatch");
  }
  for (size_t i = 0; i < idx.size(); ++i) {
    if (idx[i] < 0 || idx[i] >= shape_[i]) {
      return Status::OutOfRange("array subscript out of bounds");
    }
  }
  int64_t addr = AddressOf(idx);
  int64_t chunk = addr / meta_.chunk_elems;
  int64_t within = addr % meta_.chunk_elems;
  if (chunk != cached_chunk_) {
    cached_bytes_.clear();
    uint64_t cid = static_cast<uint64_t>(chunk);
    SCISPARQL_RETURN_NOT_OK(storage_->FetchChunks(
        meta_.id, std::span<const uint64_t>(&cid, 1),
        [this](uint64_t, const uint8_t* bytes, size_t len) {
          cached_bytes_.assign(bytes, bytes + len);
        }));
    cached_chunk_ = chunk;
  }
  if (static_cast<size_t>(within * 8 + 8) > cached_bytes_.size()) {
    return Status::Internal("chunk shorter than expected");
  }
  if (meta_.etype == ElementType::kDouble) {
    double v;
    std::memcpy(&v, cached_bytes_.data() + within * 8, 8);
    return v;
  }
  int64_t v;
  std::memcpy(&v, cached_bytes_.data() + within * 8, 8);
  return static_cast<double>(v);
}

Result<std::shared_ptr<ArrayValue>> ArrayProxy::Subscript(
    std::span<const Sub> subs) const {
  SCISPARQL_ASSIGN_OR_RETURN(std::vector<Sub> valid,
                             NumericArray::ValidateSubs(shape_, subs));
  auto view = std::shared_ptr<ArrayProxy>(
      new ArrayProxy(storage_, meta_, config_));
  view->offset_ = offset_;
  view->shape_.clear();
  view->strides_.clear();
  for (size_t i = 0; i < valid.size(); ++i) {
    const Sub& s = valid[i];
    if (s.kind == Sub::Kind::kIndex) {
      view->offset_ += s.index * strides_[i];
    } else {
      view->offset_ += s.lo * strides_[i];
      view->shape_.push_back(s.count);
      view->strides_.push_back(s.step * strides_[i]);
    }
  }
  if (view->shape_.empty()) {
    view->shape_.push_back(1);
    view->strides_.push_back(1);
  }
  return std::static_pointer_cast<ArrayValue>(view);
}

bool ArrayProxy::CoversWholeArray() const {
  return offset_ == 0 && shape_ == meta_.shape &&
         strides_ == NumericArray::RowMajorStrides(meta_.shape);
}

std::vector<int64_t> ArrayProxy::ElementAddresses() const {
  int64_t n = 1;
  for (int64_t d : shape_) n *= d;
  std::vector<int64_t> out;
  out.reserve(static_cast<size_t>(n));
  std::vector<int64_t> idx(shape_.size(), 0);
  for (int64_t i = 0; i < n; ++i) {
    out.push_back(AddressOf(idx));
    // Row-major increment.
    for (int d = static_cast<int>(idx.size()) - 1; d >= 0; --d) {
      if (++idx[d] < shape_[d]) break;
      idx[d] = 0;
    }
  }
  return out;
}

std::vector<uint64_t> ArrayProxy::NeededChunks() const {
  std::vector<int64_t> addrs = ElementAddresses();
  std::vector<uint64_t> chunks;
  chunks.reserve(addrs.size());
  for (int64_t a : addrs) {
    chunks.push_back(static_cast<uint64_t>(a / meta_.chunk_elems));
  }
  std::sort(chunks.begin(), chunks.end());
  chunks.erase(std::unique(chunks.begin(), chunks.end()), chunks.end());
  return chunks;
}

Status ArrayProxy::FillFromChunks(
    const std::map<uint64_t, std::vector<uint8_t>>& chunks,
    NumericArray* out) const {
  std::vector<int64_t> addrs = ElementAddresses();
  for (size_t i = 0; i < addrs.size(); ++i) {
    int64_t addr = addrs[i];
    uint64_t cid = static_cast<uint64_t>(addr / meta_.chunk_elems);
    int64_t within = addr % meta_.chunk_elems;
    auto it = chunks.find(cid);
    if (it == chunks.end()) {
      return Status::Internal("chunk " + std::to_string(cid) +
                              " missing during APR");
    }
    if (static_cast<size_t>(within * 8 + 8) > it->second.size()) {
      return Status::Internal("chunk shorter than expected");
    }
    if (meta_.etype == ElementType::kDouble) {
      double v;
      std::memcpy(&v, it->second.data() + within * 8, 8);
      out->SetDoubleAt(static_cast<int64_t>(i), v);
    } else {
      int64_t v;
      std::memcpy(&v, it->second.data() + within * 8, 8);
      out->SetIntAt(static_cast<int64_t>(i), v);
    }
  }
  return Status::OK();
}

Result<NumericArray> ArrayProxy::Materialize() const {
  std::vector<uint64_t> needed = NeededChunks();
  std::map<uint64_t, std::vector<uint8_t>> fetched;
  auto sink = [&fetched](uint64_t cid, const uint8_t* bytes, size_t len) {
    fetched[cid].assign(bytes, bytes + len);
  };
  switch (config_.strategy) {
    case RetrievalStrategy::kNaive:
      for (uint64_t cid : needed) {
        SCISPARQL_RETURN_NOT_OK(storage_->FetchChunks(
            meta_.id, std::span<const uint64_t>(&cid, 1), sink));
      }
      break;
    case RetrievalStrategy::kBuffered: {
      size_t batch = config_.buffer_size == 0 ? 1 : config_.buffer_size;
      for (size_t i = 0; i < needed.size(); i += batch) {
        size_t n = std::min(batch, needed.size() - i);
        SCISPARQL_RETURN_NOT_OK(storage_->FetchChunks(
            meta_.id, std::span<const uint64_t>(needed.data() + i, n), sink));
      }
      break;
    }
    case RetrievalStrategy::kSpd: {
      std::vector<relstore::Interval> intervals =
          relstore::DetectPatterns(needed);
      SCISPARQL_RETURN_NOT_OK(
          storage_->FetchIntervals(meta_.id, intervals, sink));
      break;
    }
  }
  NumericArray out = NumericArray::Zeros(meta_.etype, shape_);
  SCISPARQL_RETURN_NOT_OK(FillFromChunks(fetched, &out));
  return out;
}

Result<double> ArrayProxy::Aggregate(AggOp op) const {
  if (CoversWholeArray() && storage_->SupportsAggregatePushdown()) {
    return storage_->AggregateWhole(meta_.id, op);
  }
  return ArrayValue::Aggregate(op);
}

std::string ArrayProxy::Describe() const {
  std::ostringstream out;
  out << "proxy(" << storage_->name() << "#" << meta_.id << ") ";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) out << "x";
    out << shape_[i];
  }
  out << " " << ElementTypeName(meta_.etype);
  return out.str();
}

Result<std::vector<NumericArray>> ResolveProxyBag(
    std::span<const std::shared_ptr<ArrayValue>> values,
    const AprConfig& config) {
  std::vector<NumericArray> results(values.size());

  // Group proxy chunk requests by (storage, array id).
  struct Request {
    ArrayStorage* storage;
    ArrayId id;
    bool operator<(const Request& o) const {
      return storage != o.storage ? storage < o.storage : id < o.id;
    }
  };
  struct Work {
    std::vector<uint64_t> chunks;  // merged needed chunks
    std::map<uint64_t, std::vector<uint8_t>> fetched;
    std::shared_ptr<ArrayStorage> storage;
  };
  std::map<Request, Work> work;

  for (size_t i = 0; i < values.size(); ++i) {
    const auto& v = values[i];
    if (v == nullptr) return Status::InvalidArgument("null array in bag");
    if (v->resident()) {
      SCISPARQL_ASSIGN_OR_RETURN(results[i], v->Materialize());
      continue;
    }
    auto* proxy = dynamic_cast<const ArrayProxy*>(v.get());
    if (proxy == nullptr) {
      SCISPARQL_ASSIGN_OR_RETURN(results[i], v->Materialize());
      continue;
    }
    Work& w = work[Request{proxy->storage().get(), proxy->array_id()}];
    w.storage = proxy->storage();
    std::vector<uint64_t> needed = proxy->NeededChunks();
    w.chunks.insert(w.chunks.end(), needed.begin(), needed.end());
  }

  // Fetch each group's merged chunk set in buffer_size batches.
  for (auto& [req, w] : work) {
    std::sort(w.chunks.begin(), w.chunks.end());
    w.chunks.erase(std::unique(w.chunks.begin(), w.chunks.end()),
                   w.chunks.end());
    auto sink = [&w](uint64_t cid, const uint8_t* bytes, size_t len) {
      w.fetched[cid].assign(bytes, bytes + len);
    };
    size_t batch = config.buffer_size == 0 ? 1 : config.buffer_size;
    for (size_t i = 0; i < w.chunks.size(); i += batch) {
      size_t n = std::min(batch, w.chunks.size() - i);
      std::span<const uint64_t> ids(w.chunks.data() + i, n);
      switch (config.strategy) {
        case RetrievalStrategy::kNaive:
          for (uint64_t cid : ids) {
            SCISPARQL_RETURN_NOT_OK(w.storage->FetchChunks(
                req.id, std::span<const uint64_t>(&cid, 1), sink));
          }
          break;
        case RetrievalStrategy::kBuffered:
          SCISPARQL_RETURN_NOT_OK(w.storage->FetchChunks(req.id, ids, sink));
          break;
        case RetrievalStrategy::kSpd: {
          std::vector<relstore::Interval> intervals =
              relstore::DetectPatterns(ids);
          SCISPARQL_RETURN_NOT_OK(
              w.storage->FetchIntervals(req.id, intervals, sink));
          break;
        }
      }
    }
  }

  // Distribute fetched chunks back into each proxy's result.
  for (size_t i = 0; i < values.size(); ++i) {
    const auto& v = values[i];
    if (v->resident()) continue;
    auto* proxy = dynamic_cast<const ArrayProxy*>(v.get());
    if (proxy == nullptr) continue;
    Work& w = work[Request{proxy->storage().get(), proxy->array_id()}];
    NumericArray out = NumericArray::Zeros(proxy->etype(), proxy->shape());
    SCISPARQL_RETURN_NOT_OK(proxy->FillFromChunks(w.fetched, &out));
    results[i] = std::move(out);
  }
  return results;
}

}  // namespace scisparql
