#ifndef SCISPARQL_STORAGE_FILE_BACKEND_H_
#define SCISPARQL_STORAGE_FILE_BACKEND_H_

#include <map>
#include <string>

#include "storage/asei.h"
#include "storage/vfs.h"

namespace scisparql {

/// Binary-file array back-end: every array is one container file
/// `arr_<id>.ssa` under a directory, with a small header followed by raw
/// row-major data. This plays the role of the paper's file-based storage
/// (.mat / NetCDF file linking, Section 7 and the SAGA-style discussion in
/// Section 2.5): chunking and caching are left to the OS file system, and
/// interval fetches become a single sequential read.
class FileArrayStorage : public ArrayStorage {
 public:
  /// `dir` must exist and be writable; existing container files in it are
  /// picked up on first access by id. `vfs` defaults to the real
  /// filesystem; tests inject a FaultyVfs.
  explicit FileArrayStorage(std::string dir, storage::Vfs* vfs = nullptr);

  std::string name() const override { return "file"; }
  bool SupportsAggregatePushdown() const override { return true; }

  Result<ArrayId> Store(const NumericArray& array,
                        int64_t chunk_elems) override;
  Result<StoredArrayMeta> GetMeta(ArrayId id) const override;
  Status FetchChunks(
      ArrayId id, std::span<const uint64_t> chunk_ids,
      const std::function<void(uint64_t, const uint8_t*, size_t)>& cb)
      override;
  Status FetchIntervals(
      ArrayId id, std::span<const relstore::Interval> intervals,
      const std::function<void(uint64_t, const uint8_t*, size_t)>& cb)
      override;
  Result<double> AggregateWhole(ArrayId id, AggOp op) override;
  Status Remove(ArrayId id) override;

  /// Registers an existing container file under a fresh id (the mediator
  /// scenario: linking arrays already produced by another tool).
  Result<ArrayId> LinkExisting(const std::string& path);

  uint64_t seeks() const { return seeks_; }

 private:
  std::string PathFor(ArrayId id) const;
  Result<StoredArrayMeta> ReadHeader(ArrayId id) const;

  std::string dir_;
  storage::Vfs* vfs_;
  ArrayId next_id_ = 1;
  std::map<ArrayId, std::string> linked_;  // id -> explicit path
  mutable std::map<ArrayId, StoredArrayMeta> meta_cache_;
  uint64_t seeks_ = 0;
};

}  // namespace scisparql

#endif  // SCISPARQL_STORAGE_FILE_BACKEND_H_
