#ifndef SCISPARQL_STORAGE_RDF_REL_STORE_H_
#define SCISPARQL_STORAGE_RDF_REL_STORE_H_

#include <memory>
#include <string>

#include "rdf/graph.h"
#include "storage/array_proxy.h"
#include "storage/relational_backend.h"

namespace scisparql {

/// Persists RDF-with-Arrays graphs in the embedded relational engine under
/// the SSDM storage schema of Section 6.2.1 — triples partitioned by value
/// type (classification (b) of Section 2.2.3):
///
///   rdf_res(s, p, o)                    object is an IRI or blank node
///   rdf_num(s, p, value, is_int)        object is a number
///   rdf_lit(s, p, kind, lex, extra)     other literals
///   rdf_arr(s, p, array_id)             object is an array (chunks live in
///                                       the RelationalArrayStorage tables)
///
/// This is the "back-end scenario": SSDM keeps the working graph in memory
/// and uses the RDBMS for scalable persistence; arrays load back as lazy
/// proxies, so graph loading never touches chunk data.
class RdfRelationalStore {
 public:
  static Result<std::unique_ptr<RdfRelationalStore>> Attach(
      relstore::Database* db,
      std::shared_ptr<RelationalArrayStorage> arrays);

  /// Appends every triple of `graph` to the store. Resident array values
  /// are chunked into the array tables; proxies already backed by this
  /// store are stored by reference.
  Status SaveGraph(const Graph& graph);

  /// Loads all stored triples into `graph`. Array values come back as lazy
  /// ArrayProxy terms configured with `apr`.
  Status LoadGraph(Graph* graph, const AprConfig& apr = AprConfig()) const;

  /// Number of triples in each partition, for tests and stats.
  struct PartitionCounts {
    uint64_t resources = 0;
    uint64_t numbers = 0;
    uint64_t literals = 0;
    uint64_t arrays = 0;
  };
  Result<PartitionCounts> CountPartitions() const;

 private:
  RdfRelationalStore(relstore::Database* db,
                     std::shared_ptr<RelationalArrayStorage> arrays)
      : db_(db), arrays_(std::move(arrays)) {}

  relstore::Database* db_;
  std::shared_ptr<RelationalArrayStorage> arrays_;
};

}  // namespace scisparql

#endif  // SCISPARQL_STORAGE_RDF_REL_STORE_H_
