#include "storage/snapshot.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "common/crc32c.h"
#include "rdf/term_codec.h"

namespace scisparql {
namespace storage {

namespace {

constexpr char kMagic[4] = {'S', 'S', 'N', 'P'};
constexpr uint32_t kFormat = 1;
constexpr uint8_t kSectionTag = 0x01;
constexpr uint8_t kFooterTag = 0x02;

std::string EncodeFooterPayload(const SnapshotFooter& footer) {
  std::string payload;
  rdf::PutU64(&payload, footer.wal_lsn);
  rdf::PutU32(&payload, static_cast<uint32_t>(footer.graphs.size()));
  for (const SnapshotGraphInfo& g : footer.graphs) {
    rdf::PutString(&payload, g.iri);
    rdf::PutU64(&payload, g.version);
    rdf::PutU64(&payload, g.triples);
  }
  rdf::PutU64(&payload, footer.term);
  return payload;
}

Result<SnapshotFooter> DecodeFooterPayload(const std::string& payload) {
  SnapshotFooter footer;
  size_t pos = 0;
  uint32_t n_graphs;
  if (!rdf::GetU64(payload, &pos, &footer.wal_lsn) ||
      !rdf::GetU32(payload, &pos, &n_graphs)) {
    return Status::IoError("snapshot footer truncated");
  }
  footer.graphs.resize(n_graphs);
  for (SnapshotGraphInfo& g : footer.graphs) {
    if (!rdf::GetString(payload, &pos, &g.iri) ||
        !rdf::GetU64(payload, &pos, &g.version) ||
        !rdf::GetU64(payload, &pos, &g.triples)) {
      return Status::IoError("snapshot footer truncated");
    }
  }
  // The fencing term was appended to the payload later; snapshots written
  // before it simply end here and recover as term 0 (adopted upward).
  if (pos < payload.size()) {
    if (!rdf::GetU64(payload, &pos, &footer.term)) {
      return Status::IoError("snapshot footer truncated");
    }
  }
  return footer;
}

}  // namespace

Status WriteSnapshot(Vfs* vfs, const std::string& path,
                     const std::vector<SnapshotSection>& sections,
                     const SnapshotFooter& footer) {
  std::string blob(kMagic, 4);
  rdf::PutU32(&blob, kFormat);
  for (const SnapshotSection& sec : sections) {
    blob.push_back(static_cast<char>(kSectionTag));
    rdf::PutU32(&blob, static_cast<uint32_t>(sec.graph_iri.size()));
    blob.append(sec.graph_iri);
    rdf::PutU64(&blob, sec.turtle.size());
    blob.append(sec.turtle);
    uint32_t crc = Crc32c(sec.graph_iri);
    crc = Crc32cExtend(crc, sec.turtle.data(), sec.turtle.size());
    rdf::PutU32(&blob, Crc32cMask(crc));
  }
  std::string payload = EncodeFooterPayload(footer);
  blob.push_back(static_cast<char>(kFooterTag));
  rdf::PutU32(&blob, static_cast<uint32_t>(payload.size()));
  blob.append(payload);
  rdf::PutU32(&blob, Crc32cMask(Crc32c(payload)));

  std::string tmp = path + ".tmp";
  {
    SCISPARQL_ASSIGN_OR_RETURN(std::unique_ptr<VfsFile> f,
                               vfs->Open(tmp, Vfs::OpenMode::kTruncate));
    SCISPARQL_RETURN_NOT_OK(f->WriteAt(0, blob.data(), blob.size()));
    SCISPARQL_RETURN_NOT_OK(f->Sync());
  }
  return vfs->Rename(tmp, path);
}

Result<SnapshotContents> ReadSnapshot(Vfs* vfs, const std::string& path) {
  SCISPARQL_ASSIGN_OR_RETURN(std::unique_ptr<VfsFile> f,
                             vfs->Open(path, Vfs::OpenMode::kRead));
  SCISPARQL_ASSIGN_OR_RETURN(uint64_t size, f->Size());
  std::string data(size, '\0');
  SCISPARQL_ASSIGN_OR_RETURN(size_t got, f->ReadAt(0, data.data(), size));
  if (got != size) return Status::IoError("snapshot short read: " + path);

  size_t pos = 0;
  uint32_t format;
  if (data.size() < 8 || std::memcmp(data.data(), kMagic, 4) != 0) {
    return Status::IoError("bad snapshot magic: " + path);
  }
  pos = 4;
  if (!rdf::GetU32(data, &pos, &format) || format != kFormat) {
    return Status::IoError("unsupported snapshot format: " + path);
  }

  SnapshotContents out;
  bool saw_footer = false;
  while (pos < data.size()) {
    uint8_t tag = static_cast<uint8_t>(data[pos++]);
    if (tag == kSectionTag) {
      SnapshotSection sec;
      uint32_t iri_len, stored_crc;
      uint64_t body_len;
      if (!rdf::GetU32(data, &pos, &iri_len) || pos + iri_len > data.size()) {
        return Status::IoError("snapshot section truncated: " + path);
      }
      sec.graph_iri.assign(data, pos, iri_len);
      pos += iri_len;
      if (!rdf::GetU64(data, &pos, &body_len) || pos + body_len > data.size()) {
        return Status::IoError("snapshot section truncated: " + path);
      }
      sec.turtle.assign(data, pos, body_len);
      pos += body_len;
      if (!rdf::GetU32(data, &pos, &stored_crc)) {
        return Status::IoError("snapshot section truncated: " + path);
      }
      uint32_t crc = Crc32c(sec.graph_iri);
      crc = Crc32cExtend(crc, sec.turtle.data(), sec.turtle.size());
      if (Crc32cUnmask(stored_crc) != crc) {
        return Status::IoError("snapshot section checksum mismatch: " + path +
                               " (graph '" + sec.graph_iri + "')");
      }
      out.sections.push_back(std::move(sec));
    } else if (tag == kFooterTag) {
      uint32_t payload_len, stored_crc;
      if (!rdf::GetU32(data, &pos, &payload_len) ||
          pos + payload_len > data.size()) {
        return Status::IoError("snapshot footer truncated: " + path);
      }
      std::string payload = data.substr(pos, payload_len);
      pos += payload_len;
      if (!rdf::GetU32(data, &pos, &stored_crc) ||
          Crc32cUnmask(stored_crc) != Crc32c(payload)) {
        return Status::IoError("snapshot footer checksum mismatch: " + path);
      }
      SCISPARQL_ASSIGN_OR_RETURN(out.footer, DecodeFooterPayload(payload));
      saw_footer = true;
      if (pos != data.size()) {
        return Status::IoError("trailing bytes after snapshot footer: " + path);
      }
    } else {
      return Status::IoError("unknown snapshot tag: " + path);
    }
  }
  // A snapshot without a footer was cut off before the final write — the
  // atomic-rename protocol should make this impossible, but a damaged
  // filesystem can still hand it to us.
  if (!saw_footer) return Status::IoError("snapshot missing footer: " + path);
  return out;
}

bool IsSnapshotFile(Vfs* vfs, const std::string& path) {
  auto f = vfs->Open(path, Vfs::OpenMode::kRead);
  if (!f.ok()) return false;
  char magic[4];
  auto got = (*f)->ReadAt(0, magic, 4);
  return got.ok() && *got == 4 && std::memcmp(magic, kMagic, 4) == 0;
}

std::string SnapshotFileName(uint64_t seq) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "snap-%016" PRIx64 ".ssnp", seq);
  return buf;
}

Result<std::vector<std::pair<uint64_t, std::string>>> ListSnapshots(
    Vfs* vfs, const std::string& dir) {
  std::vector<std::pair<uint64_t, std::string>> snaps;
  auto names = vfs->ListDir(dir);
  if (!names.ok()) {
    if (names.status().code() == StatusCode::kNotFound) return snaps;
    return names.status();
  }
  for (const std::string& name : *names) {
    if (name.size() != 5 + 16 + 5 || name.rfind("snap-", 0) != 0 ||
        name.compare(name.size() - 5, 5, ".ssnp") != 0) {
      continue;
    }
    uint64_t seq = 0;
    bool valid = true;
    for (size_t i = 5; i < 21 && valid; ++i) {
      char c = name[i];
      if (c >= '0' && c <= '9') seq = (seq << 4) | static_cast<uint64_t>(c - '0');
      else if (c >= 'a' && c <= 'f') seq = (seq << 4) | static_cast<uint64_t>(c - 'a' + 10);
      else valid = false;
    }
    if (valid) snaps.emplace_back(seq, dir + "/" + name);
  }
  std::sort(snaps.begin(), snaps.end());
  return snaps;
}

}  // namespace storage
}  // namespace scisparql
