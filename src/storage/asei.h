#ifndef SCISPARQL_STORAGE_ASEI_H_
#define SCISPARQL_STORAGE_ASEI_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "array/array.h"
#include "common/status.h"
#include "relstore/database.h"
#include "relstore/spd.h"

namespace scisparql {

using ArrayId = uint32_t;

/// Descriptor of an externally stored array. Arrays are laid out row-major
/// and split into fixed-size one-dimensional chunks (the paper deliberately
/// avoids multi-dimensional tiling, Section 2.5: "we split the arrays into
/// one-dimensional chunks, so that the chunk size is the only parameter").
struct StoredArrayMeta {
  ArrayId id = 0;
  ElementType etype = ElementType::kDouble;
  std::vector<int64_t> shape;
  int64_t chunk_elems = 8192;  ///< elements per chunk (64 KiB of doubles)

  int64_t NumElements() const {
    int64_t n = 1;
    for (int64_t d : shape) n *= d;
    return n;
  }
  int64_t NumChunks() const {
    int64_t n = NumElements();
    return n == 0 ? 0 : (n + chunk_elems - 1) / chunk_elems;
  }
};

/// Cumulative access statistics a back-end maintains, read by the
/// benchmark harness.
struct StorageStats {
  uint64_t queries = 0;         ///< round trips issued to the back-end
  uint64_t chunks_fetched = 0;  ///< chunks transferred
  uint64_t bytes_fetched = 0;   ///< payload bytes transferred
};

/// Array Storage Extensibility Interface (ASEI, Section 6.1): the contract
/// every array back-end implements so SSDM can place APR (array-proxy-
/// resolve) calls against it. Back-ends advertise capabilities; SSDM
/// delegates what the back-end supports (e.g. aggregates) and emulates the
/// rest client-side.
class ArrayStorage {
 public:
  virtual ~ArrayStorage() = default;

  virtual std::string name() const = 0;

  /// True when the back-end can evaluate whole-array aggregates without
  /// shipping chunks to the client (used by AAPR, Section 6.1).
  virtual bool SupportsAggregatePushdown() const { return false; }

  /// Persists a resident array; returns its storage-assigned id.
  virtual Result<ArrayId> Store(const NumericArray& array,
                                int64_t chunk_elems) = 0;

  virtual Result<StoredArrayMeta> GetMeta(ArrayId id) const = 0;

  /// Fetches the given chunks; `cb(chunk_id, bytes, len)` is invoked once
  /// per chunk in unspecified order. `chunk_ids` need not be sorted.
  virtual Status FetchChunks(
      ArrayId id, std::span<const uint64_t> chunk_ids,
      const std::function<void(uint64_t, const uint8_t*, size_t)>& cb) = 0;

  /// Fetches chunk intervals produced by the Sequence Pattern Detector.
  /// Default implementation expands intervals to explicit ids; back-ends
  /// that can serve ranges natively override it.
  virtual Status FetchIntervals(
      ArrayId id, std::span<const relstore::Interval> intervals,
      const std::function<void(uint64_t, const uint8_t*, size_t)>& cb);

  /// Whole-array aggregate evaluated inside the back-end. Only valid when
  /// SupportsAggregatePushdown(); default returns Unsupported.
  virtual Result<double> AggregateWhole(ArrayId id, AggOp op);

  /// Deletes a stored array; default Unsupported.
  virtual Status Remove(ArrayId id);

  const StorageStats& stats() const { return stats_; }
  void ResetStats() { stats_ = StorageStats(); }

 protected:
  StorageStats stats_;
};

/// How an APR call turns the needed chunk set into back-end requests — the
/// client half of the Section 6.2.3 strategies.
enum class RetrievalStrategy : uint8_t {
  kNaive,     ///< one FetchChunks call per chunk
  kBuffered,  ///< batched FetchChunks calls of at most `buffer_size` chunks
  kSpd,       ///< SPD-detected interval fetches
};

const char* RetrievalStrategyName(RetrievalStrategy s);

/// Per-connection APR configuration (strategy + batch buffer size swept by
/// Experiments 1 and 2).
struct AprConfig {
  RetrievalStrategy strategy = RetrievalStrategy::kSpd;
  size_t buffer_size = 256;  ///< max chunk refs per batched request
};

}  // namespace scisparql

#endif  // SCISPARQL_STORAGE_ASEI_H_
