#include "storage/fault_fs.h"

#include <algorithm>

namespace scisparql {
namespace storage {

namespace {

/// File wrapper: routes every mutating call through the owner's fault
/// machinery; reads only check the crashed state.
class FaultyFile : public VfsFile {
 public:
  FaultyFile(FaultyVfs* owner, std::unique_ptr<VfsFile> base)
      : owner_(owner), base_(std::move(base)) {}

  Result<size_t> ReadAt(uint64_t off, void* buf, size_t n) override {
    SCISPARQL_RETURN_NOT_OK(owner_->CheckAlive());
    return base_->ReadAt(off, buf, n);
  }

  Status WriteAt(uint64_t off, const void* buf, size_t n) override {
    FaultyVfs::OpDecision d = owner_->NextOp(/*is_sync=*/false);
    if (!d.fail) return base_->WriteAt(off, buf, n);
    if (d.persist_prefix && d.partial_bytes > 0) {
      // A short / torn write: a prefix of the buffer reaches the device
      // before the failure. Deliberately persisted through the base so
      // recovery sees exactly the torn bytes.
      size_t k = std::min(d.partial_bytes, n);
      (void)base_->WriteAt(off, buf, k);
    }
    return Status::IoError(d.message);
  }

  Result<uint64_t> Size() override {
    SCISPARQL_RETURN_NOT_OK(owner_->CheckAlive());
    return base_->Size();
  }

  Status Truncate(uint64_t size) override {
    FaultyVfs::OpDecision d = owner_->NextOp(/*is_sync=*/false);
    if (!d.fail) return base_->Truncate(size);
    return Status::IoError(d.message);
  }

  Status Sync() override {
    FaultyVfs::OpDecision d = owner_->NextOp(/*is_sync=*/true);
    if (!d.fail) return base_->Sync();
    return Status::IoError(d.message);
  }

 private:
  FaultyVfs* owner_;
  std::unique_ptr<VfsFile> base_;
};

}  // namespace

void FaultyVfs::ScheduleFault(uint64_t op_index, FaultKind kind,
                              size_t partial_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  faults_.push_back({op_index, kind, partial_bytes});
}

void FaultyVfs::FailAllWrites(bool on) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_all_writes_ = on;
}

void FaultyVfs::FailAllSyncs(bool on) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_all_syncs_ = on;
}

void FaultyVfs::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  faults_.clear();
  ops_ = 0;
  fired_ = 0;
  crashed_ = false;
  fail_all_writes_ = false;
  fail_all_syncs_ = false;
}

uint64_t FaultyVfs::op_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ops_;
}

uint64_t FaultyVfs::faults_fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_;
}

bool FaultyVfs::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

Status FaultyVfs::CheckAlive() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return Status::IoError("injected crash: process is dead");
  return Status::OK();
}

FaultyVfs::OpDecision FaultyVfs::NextOp(bool is_sync) {
  std::lock_guard<std::mutex> lock(mu_);
  OpDecision d;
  if (crashed_) {
    d.fail = true;
    d.message = "injected crash: process is dead";
    return d;
  }
  uint64_t index = ops_++;
  for (auto it = faults_.begin(); it != faults_.end(); ++it) {
    if (it->op_index != index) continue;
    ++fired_;
    d.fail = true;
    switch (it->kind) {
      case FaultKind::kShortWrite:
        d.persist_prefix = true;
        d.partial_bytes = it->partial_bytes;
        d.message = "injected short write";
        break;
      case FaultKind::kTornWrite:
        d.persist_prefix = true;
        d.partial_bytes = it->partial_bytes;
        d.message = "injected torn write (crash)";
        crashed_ = true;
        break;
      case FaultKind::kEnospc:
        d.message = "injected ENOSPC: no space left on device";
        break;
      case FaultKind::kSyncFail:
        d.message = "injected fsync failure";
        break;
      case FaultKind::kCrash:
        d.message = "injected crash";
        crashed_ = true;
        break;
    }
    faults_.erase(it);
    return d;
  }
  if (is_sync ? (fail_all_syncs_ || fail_all_writes_) : fail_all_writes_) {
    ++fired_;
    d.fail = true;
    d.message = is_sync ? "injected persistent fsync failure"
                        : "injected persistent write failure";
  }
  return d;
}

Result<std::unique_ptr<VfsFile>> FaultyVfs::Open(const std::string& path,
                                                 OpenMode mode) {
  SCISPARQL_RETURN_NOT_OK(CheckAlive());
  auto base = base_->Open(path, mode);
  if (!base.ok()) return base.status();
  return std::unique_ptr<VfsFile>(
      new FaultyFile(this, std::move(*base)));
}

Status FaultyVfs::Rename(const std::string& from, const std::string& to) {
  OpDecision d = NextOp(/*is_sync=*/false);
  if (d.fail) return Status::IoError(d.message);
  return base_->Rename(from, to);
}

Status FaultyVfs::Remove(const std::string& path) {
  OpDecision d = NextOp(/*is_sync=*/false);
  if (d.fail) return Status::IoError(d.message);
  return base_->Remove(path);
}

bool FaultyVfs::Exists(const std::string& path) { return base_->Exists(path); }

Status FaultyVfs::CreateDir(const std::string& path) {
  SCISPARQL_RETURN_NOT_OK(CheckAlive());
  return base_->CreateDir(path);
}

Result<std::vector<std::string>> FaultyVfs::ListDir(const std::string& dir) {
  SCISPARQL_RETURN_NOT_OK(CheckAlive());
  return base_->ListDir(dir);
}

}  // namespace storage
}  // namespace scisparql
