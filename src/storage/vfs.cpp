#include "storage/vfs.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace scisparql {
namespace storage {

namespace {

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

class PosixFile : public VfsFile {
 public:
  explicit PosixFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}
  ~PosixFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Result<size_t> ReadAt(uint64_t off, void* buf, size_t n) override {
    size_t done = 0;
    while (done < n) {
      ssize_t r = ::pread(fd_, static_cast<char*>(buf) + done, n - done,
                          static_cast<off_t>(off + done));
      if (r < 0) {
        if (errno == EINTR) continue;
        return Status::IoError(ErrnoMessage("read failed on", path_));
      }
      if (r == 0) break;  // EOF
      done += static_cast<size_t>(r);
    }
    return done;
  }

  Status WriteAt(uint64_t off, const void* buf, size_t n) override {
    size_t done = 0;
    while (done < n) {
      ssize_t w = ::pwrite(fd_, static_cast<const char*>(buf) + done,
                           n - done, static_cast<off_t>(off + done));
      if (w < 0) {
        if (errno == EINTR) continue;
        return Status::IoError(ErrnoMessage("write failed on", path_));
      }
      if (w == 0) {
        return Status::IoError("zero-length write on " + path_);
      }
      done += static_cast<size_t>(w);
    }
    return Status::OK();
  }

  Result<uint64_t> Size() override {
    struct stat st;
    if (::fstat(fd_, &st) != 0) {
      return Status::IoError(ErrnoMessage("stat failed on", path_));
    }
    return static_cast<uint64_t>(st.st_size);
  }

  Status Truncate(uint64_t size) override {
    if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
      return Status::IoError(ErrnoMessage("truncate failed on", path_));
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) {
      return Status::IoError(ErrnoMessage("fsync failed on", path_));
    }
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixVfs : public Vfs {
 public:
  Result<std::unique_ptr<VfsFile>> Open(const std::string& path,
                                        OpenMode mode) override {
    int flags = 0;
    switch (mode) {
      case OpenMode::kRead:
        flags = O_RDONLY;
        break;
      case OpenMode::kReadWrite:
        flags = O_RDWR | O_CREAT;
        break;
      case OpenMode::kTruncate:
        flags = O_RDWR | O_CREAT | O_TRUNC;
        break;
    }
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) {
      if (errno == ENOENT) {
        return Status::NotFound("no such file: " + path);
      }
      return Status::IoError(ErrnoMessage("cannot open", path));
    }
    return std::unique_ptr<VfsFile>(new PosixFile(fd, path));
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return Status::IoError(ErrnoMessage("rename failed for", from));
    }
    return SyncDirOf(to);
  }

  Status Remove(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      if (errno == ENOENT) return Status::NotFound("no such file: " + path);
      return Status::IoError(ErrnoMessage("unlink failed for", path));
    }
    return Status::OK();
  }

  bool Exists(const std::string& path) override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  }

  Status CreateDir(const std::string& path) override {
    if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::IoError(ErrnoMessage("mkdir failed for", path));
    }
    return Status::OK();
  }

  Result<std::vector<std::string>> ListDir(const std::string& dir) override {
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) {
      if (errno == ENOENT) {
        return Status::NotFound("no such directory: " + dir);
      }
      return Status::IoError(ErrnoMessage("opendir failed for", dir));
    }
    std::vector<std::string> names;
    while (dirent* e = ::readdir(d)) {
      std::string name = e->d_name;
      if (name == "." || name == "..") continue;
      names.push_back(std::move(name));
    }
    ::closedir(d);
    return names;
  }

 private:
  /// fsyncs the directory containing `path`, making a just-completed
  /// rename durable. Best effort on filesystems that refuse dir fsync.
  Status SyncDirOf(const std::string& path) {
    size_t slash = path.find_last_of('/');
    std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) return Status::OK();
    ::fsync(fd);
    ::close(fd);
    return Status::OK();
  }
};

}  // namespace

Vfs* DefaultVfs() {
  static PosixVfs* vfs = new PosixVfs();
  return vfs;
}

}  // namespace storage
}  // namespace scisparql
