#include "storage/memory_backend.h"

#include <cstring>

namespace scisparql {

Result<ArrayId> MemoryArrayStorage::Store(const NumericArray& array,
                                          int64_t chunk_elems) {
  Entry e;
  e.array = array.Compact();
  e.meta.id = next_id_++;
  e.meta.etype = array.etype();
  e.meta.shape = array.shape();
  e.meta.chunk_elems = chunk_elems;
  ArrayId id = e.meta.id;
  arrays_.emplace(id, std::move(e));
  return id;
}

Result<const MemoryArrayStorage::Entry*> MemoryArrayStorage::Find(
    ArrayId id) const {
  auto it = arrays_.find(id);
  if (it == arrays_.end()) {
    return Status::NotFound("no array with id " + std::to_string(id));
  }
  return &it->second;
}

Result<StoredArrayMeta> MemoryArrayStorage::GetMeta(ArrayId id) const {
  SCISPARQL_ASSIGN_OR_RETURN(const Entry* e, Find(id));
  return e->meta;
}

Status MemoryArrayStorage::FetchChunks(
    ArrayId id, std::span<const uint64_t> chunk_ids,
    const std::function<void(uint64_t, const uint8_t*, size_t)>& cb) {
  SCISPARQL_ASSIGN_OR_RETURN(const Entry* e, Find(id));
  const int64_t total = e->meta.NumElements();
  const int64_t ce = e->meta.chunk_elems;
  const int64_t esize = ElementSize(e->meta.etype);
  // A compact array's buffer is one contiguous row-major span; a chunk is
  // a byte slice of it.
  ++stats_.queries;
  for (uint64_t cid : chunk_ids) {
    int64_t first = static_cast<int64_t>(cid) * ce;
    if (first >= total) {
      return Status::OutOfRange("chunk id beyond array end");
    }
    int64_t n = std::min(ce, total - first);
    // Reconstruct the raw bytes from the compact array.
    std::vector<uint8_t> bytes(static_cast<size_t>(n * esize));
    for (int64_t i = 0; i < n; ++i) {
      if (e->meta.etype == ElementType::kDouble) {
        double v = e->array.DoubleAt(first + i);
        std::memcpy(bytes.data() + i * 8, &v, 8);
      } else {
        int64_t v = e->array.IntAt(first + i);
        std::memcpy(bytes.data() + i * 8, &v, 8);
      }
    }
    ++stats_.chunks_fetched;
    stats_.bytes_fetched += bytes.size();
    cb(cid, bytes.data(), bytes.size());
  }
  return Status::OK();
}

Result<double> MemoryArrayStorage::AggregateWhole(ArrayId id, AggOp op) {
  SCISPARQL_ASSIGN_OR_RETURN(const Entry* e, Find(id));
  ++stats_.queries;
  return ResidentArray(e->array).Aggregate(op);
}

Status MemoryArrayStorage::Remove(ArrayId id) {
  if (arrays_.erase(id) == 0) {
    return Status::NotFound("no array with id " + std::to_string(id));
  }
  return Status::OK();
}

}  // namespace scisparql
