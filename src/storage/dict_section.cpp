#include "storage/dict_section.h"

#include <cstring>
#include <vector>

#include "rdf/term_codec.h"

namespace scisparql {
namespace storage {

namespace {

constexpr char kMagic[5] = {'\0', 'S', 'S', 'D', 'S'};
constexpr uint32_t kFormat = 1;

/// Term framing inside the section, mirroring the WAL's: inline bytes or
/// an array-storage back-end reference.
constexpr uint8_t kTermInline = 0;
constexpr uint8_t kTermProxyRef = 1;

// Snapshots must be self-contained (loadable with no array storage
// attached), so arrays — including proxies — are always materialized
// inline; SerializeTerm fetches proxy-backed data. The proxy-ref tag is
// still understood on decode for forward compatibility.
Status PutTerm(const Term& term, std::string* out) {
  out->push_back(static_cast<char>(kTermInline));
  return rdf::SerializeTerm(term, out);
}

Result<Term> GetTerm(
    const std::string& data, size_t* pos,
    const std::function<Result<Term>(const std::string&, uint64_t)>&
        resolve_ref) {
  if (*pos >= data.size()) {
    return Status::Internal("truncated dictionary-section term");
  }
  uint8_t tag = static_cast<uint8_t>(data[(*pos)++]);
  if (tag == kTermInline) return rdf::DeserializeTerm(data, pos);
  if (tag == kTermProxyRef) {
    std::string storage_name;
    uint64_t id;
    if (!rdf::GetString(data, pos, &storage_name) ||
        !rdf::GetU64(data, pos, &id)) {
      return Status::Internal("truncated dictionary-section array ref");
    }
    if (!resolve_ref) {
      return Status::IoError("snapshot references array storage '" +
                             storage_name + "' but no resolver is attached");
    }
    return resolve_ref(storage_name, id);
  }
  return Status::Internal("unknown dictionary-section term tag");
}

}  // namespace

bool IsDictSection(const std::string& body) {
  return body.size() >= sizeof(kMagic) &&
         std::memcmp(body.data(), kMagic, sizeof(kMagic)) == 0;
}

Result<std::string> EncodeDictSection(const Graph& g) {
  const TermDictionary& dict = g.dict();
  // Section-local remap: only terms live triples actually reference are
  // written (tombstoned rows may pin dictionary entries nothing uses).
  std::vector<uint32_t> local(dict.size(), TermDictionary::kNoId);
  std::vector<uint32_t> used;
  g.ForEachId([&](const IdTriple& t) {
    for (uint32_t id : {t.s, t.p, t.o}) {
      if (local[id] == TermDictionary::kNoId) {
        local[id] = static_cast<uint32_t>(used.size());
        used.push_back(id);
      }
    }
  });

  std::string out(kMagic, sizeof(kMagic));
  rdf::PutU32(&out, kFormat);
  rdf::PutU32(&out, static_cast<uint32_t>(used.size()));
  Status term_status = Status::OK();
  for (uint32_t id : used) {
    Status st = PutTerm(dict.term(id), &out);
    if (!st.ok() && term_status.ok()) term_status = st;
  }
  SCISPARQL_RETURN_NOT_OK(term_status);
  rdf::PutU32(&out, static_cast<uint32_t>(g.size()));
  g.ForEachId([&](const IdTriple& t) {
    rdf::PutU32(&out, local[t.s]);
    rdf::PutU32(&out, local[t.p]);
    rdf::PutU32(&out, local[t.o]);
  });
  return out;
}

Status DecodeDictSection(
    const std::string& body,
    const std::function<Result<Term>(const std::string&, uint64_t)>&
        resolve_ref,
    Graph* g) {
  if (!IsDictSection(body)) {
    return Status::Internal("not a dictionary section");
  }
  size_t pos = sizeof(kMagic);
  uint32_t format, n_terms;
  if (!rdf::GetU32(body, &pos, &format) || format != kFormat) {
    return Status::Internal("unsupported dictionary-section format");
  }
  if (!rdf::GetU32(body, &pos, &n_terms)) {
    return Status::Internal("truncated dictionary-section header");
  }
  std::vector<Term> terms;
  terms.reserve(n_terms);
  for (uint32_t i = 0; i < n_terms; ++i) {
    SCISPARQL_ASSIGN_OR_RETURN(Term t, GetTerm(body, &pos, resolve_ref));
    terms.push_back(std::move(t));
  }
  uint32_t n_triples;
  if (!rdf::GetU32(body, &pos, &n_triples)) {
    return Status::Internal("truncated dictionary-section triple count");
  }
  for (uint32_t i = 0; i < n_triples; ++i) {
    uint32_t s, p, o;
    if (!rdf::GetU32(body, &pos, &s) || !rdf::GetU32(body, &pos, &p) ||
        !rdf::GetU32(body, &pos, &o)) {
      return Status::Internal("truncated dictionary-section triples");
    }
    if (s >= terms.size() || p >= terms.size() || o >= terms.size()) {
      return Status::Internal("dictionary-section index out of range");
    }
    g->Add(terms[s], terms[p], terms[o]);
  }
  return Status::OK();
}

}  // namespace storage
}  // namespace scisparql
