#include "storage/file_backend.h"

#include <cstring>
#include <limits>
#include <memory>

namespace scisparql {

// Container file format (.ssa = "SciSPARQL array")
// ------------------------------------------------
//   u32  magic 'SSAR'
//   u8   element type
//   u8   rank
//   u16  reserved
//   u64  chunk_elems
//   u64  dims[rank]
//   raw row-major element data, 8 bytes per element

namespace {

constexpr uint32_t kMagic = 0x53534152;

size_t HeaderSize(int rank) { return 16 + 8 * static_cast<size_t>(rank); }

}  // namespace

FileArrayStorage::FileArrayStorage(std::string dir, storage::Vfs* vfs)
    : dir_(std::move(dir)),
      vfs_(vfs == nullptr ? storage::DefaultVfs() : vfs) {}

std::string FileArrayStorage::PathFor(ArrayId id) const {
  auto it = linked_.find(id);
  if (it != linked_.end()) return it->second;
  return dir_ + "/arr_" + std::to_string(id) + ".ssa";
}

Result<ArrayId> FileArrayStorage::Store(const NumericArray& array,
                                        int64_t chunk_elems) {
  NumericArray compact = array.Compact();
  ArrayId id = next_id_++;
  SCISPARQL_ASSIGN_OR_RETURN(
      std::unique_ptr<storage::VfsFile> f,
      vfs_->Open(PathFor(id), storage::Vfs::OpenMode::kTruncate));
  // Header and dims are assembled in one buffer written with a single
  // checked positional write; the element payload follows in one more.
  const int rank = static_cast<int>(compact.rank());
  std::string head(HeaderSize(rank), '\0');
  std::memcpy(head.data(), &kMagic, 4);
  head[4] = static_cast<char>(compact.etype());
  head[5] = static_cast<char>(rank);
  head[6] = head[7] = 0;
  std::memcpy(head.data() + 8, &chunk_elems, 8);
  {
    size_t off = 16;
    for (int64_t d : compact.shape()) {
      std::memcpy(head.data() + off, &d, 8);
      off += 8;
    }
  }
  SCISPARQL_RETURN_NOT_OK(f->WriteAt(0, head.data(), head.size()));

  // Compact arrays are contiguous row-major; copy elements one by one to
  // stay independent of the internal buffer layout.
  const int64_t n = compact.NumElements();
  std::string body(static_cast<size_t>(n) * 8, '\0');
  for (int64_t i = 0; i < n; ++i) {
    if (compact.etype() == ElementType::kDouble) {
      double v = compact.DoubleAt(i);
      std::memcpy(body.data() + i * 8, &v, 8);
    } else {
      int64_t v = compact.IntAt(i);
      std::memcpy(body.data() + i * 8, &v, 8);
    }
  }
  SCISPARQL_RETURN_NOT_OK(f->WriteAt(head.size(), body.data(), body.size()));
  SCISPARQL_RETURN_NOT_OK(f->Sync());

  StoredArrayMeta meta;
  meta.id = id;
  meta.etype = compact.etype();
  meta.shape = compact.shape();
  meta.chunk_elems = chunk_elems;
  meta_cache_[id] = std::move(meta);
  return id;
}

Result<StoredArrayMeta> FileArrayStorage::ReadHeader(ArrayId id) const {
  auto f = vfs_->Open(PathFor(id), storage::Vfs::OpenMode::kRead);
  if (!f.ok()) return Status::NotFound("no array file: " + PathFor(id));
  uint8_t header[16];
  SCISPARQL_ASSIGN_OR_RETURN(size_t got,
                             (*f)->ReadAt(0, header, sizeof(header)));
  if (got != sizeof(header)) return Status::IoError("short array file header");
  uint32_t magic;
  std::memcpy(&magic, header, 4);
  if (magic != kMagic) return Status::IoError("bad array file magic");
  StoredArrayMeta meta;
  meta.id = id;
  meta.etype = static_cast<ElementType>(header[4]);
  int rank = header[5];
  std::memcpy(&meta.chunk_elems, header + 8, 8);
  meta.shape.resize(rank);
  if (rank > 0) {
    SCISPARQL_ASSIGN_OR_RETURN(
        got, (*f)->ReadAt(16, meta.shape.data(),
                          static_cast<size_t>(rank) * 8));
    if (got != static_cast<size_t>(rank) * 8) {
      return Status::IoError("short array file header (dims)");
    }
  }
  return meta;
}

Result<StoredArrayMeta> FileArrayStorage::GetMeta(ArrayId id) const {
  auto it = meta_cache_.find(id);
  if (it != meta_cache_.end()) return it->second;
  SCISPARQL_ASSIGN_OR_RETURN(StoredArrayMeta meta, ReadHeader(id));
  meta_cache_[id] = meta;
  return meta;
}

Status FileArrayStorage::FetchChunks(
    ArrayId id, std::span<const uint64_t> chunk_ids,
    const std::function<void(uint64_t, const uint8_t*, size_t)>& cb) {
  SCISPARQL_ASSIGN_OR_RETURN(StoredArrayMeta meta, GetMeta(id));
  auto f = vfs_->Open(PathFor(id), storage::Vfs::OpenMode::kRead);
  if (!f.ok()) return Status::NotFound("no array file: " + PathFor(id));
  const size_t header = HeaderSize(static_cast<int>(meta.shape.size()));
  const int64_t total = meta.NumElements();
  ++stats_.queries;
  std::vector<uint8_t> buf;
  for (uint64_t cid : chunk_ids) {
    int64_t first = static_cast<int64_t>(cid) * meta.chunk_elems;
    if (first >= total) return Status::OutOfRange("chunk id beyond array");
    int64_t n = std::min<int64_t>(meta.chunk_elems, total - first);
    buf.resize(static_cast<size_t>(n * 8));
    ++seeks_;
    SCISPARQL_ASSIGN_OR_RETURN(
        size_t got,
        (*f)->ReadAt(header + static_cast<uint64_t>(first) * 8, buf.data(),
                     buf.size()));
    if (got != buf.size()) return Status::IoError("short chunk read");
    ++stats_.chunks_fetched;
    stats_.bytes_fetched += buf.size();
    cb(cid, buf.data(), buf.size());
  }
  return Status::OK();
}

Status FileArrayStorage::FetchIntervals(
    ArrayId id, std::span<const relstore::Interval> intervals,
    const std::function<void(uint64_t, const uint8_t*, size_t)>& cb) {
  // Files are sequential devices: an interval becomes one seek plus one
  // sequential read spanning [start, last]; chunks not in the stride are
  // read but dropped (still cheaper than a seek per chunk).
  SCISPARQL_ASSIGN_OR_RETURN(StoredArrayMeta meta, GetMeta(id));
  auto f = vfs_->Open(PathFor(id), storage::Vfs::OpenMode::kRead);
  if (!f.ok()) return Status::NotFound("no array file: " + PathFor(id));
  const size_t header = HeaderSize(static_cast<int>(meta.shape.size()));
  const int64_t total = meta.NumElements();
  ++stats_.queries;
  std::vector<uint8_t> buf;
  for (const relstore::Interval& iv : intervals) {
    if (iv.count == 0) continue;
    int64_t first_elem = static_cast<int64_t>(iv.start) * meta.chunk_elems;
    if (first_elem >= total) return Status::OutOfRange("interval beyond array");
    int64_t last_chunk_first =
        static_cast<int64_t>(iv.last()) * meta.chunk_elems;
    int64_t end_elem =
        std::min<int64_t>(last_chunk_first + meta.chunk_elems, total);
    int64_t span = end_elem - first_elem;
    buf.resize(static_cast<size_t>(span * 8));
    ++seeks_;
    SCISPARQL_ASSIGN_OR_RETURN(
        size_t got,
        (*f)->ReadAt(header + static_cast<uint64_t>(first_elem) * 8,
                     buf.data(), buf.size()));
    if (got != buf.size()) return Status::IoError("short interval read");
    stats_.bytes_fetched += buf.size();
    for (uint64_t cid = iv.start; cid <= iv.last(); cid += iv.stride) {
      int64_t coff = (static_cast<int64_t>(cid) * meta.chunk_elems -
                      first_elem) * 8;
      int64_t n = std::min<int64_t>(
          meta.chunk_elems,
          total - static_cast<int64_t>(cid) * meta.chunk_elems);
      ++stats_.chunks_fetched;
      cb(cid, buf.data() + coff, static_cast<size_t>(n * 8));
      if (iv.stride == 0) break;
    }
  }
  return Status::OK();
}

Result<double> FileArrayStorage::AggregateWhole(ArrayId id, AggOp op) {
  // "Server-side" aggregate: stream the file once without materializing a
  // resident array in the engine.
  SCISPARQL_ASSIGN_OR_RETURN(StoredArrayMeta meta, GetMeta(id));
  const int64_t chunks = meta.NumChunks();
  if (chunks == 0) {
    if (op == AggOp::kSum || op == AggOp::kCount) return 0.0;
    return Status::InvalidArgument("aggregate over empty array");
  }
  double sum = 0;
  double mn = std::numeric_limits<double>::infinity();
  double mx = -std::numeric_limits<double>::infinity();
  int64_t count = 0;
  relstore::Interval whole{0, 1, static_cast<uint64_t>(chunks)};
  SCISPARQL_RETURN_NOT_OK(FetchIntervals(
      id, std::span<const relstore::Interval>(&whole, 1),
      [&](uint64_t, const uint8_t* bytes, size_t len) {
        size_t n = len / 8;
        for (size_t i = 0; i < n; ++i) {
          double v;
          if (meta.etype == ElementType::kDouble) {
            std::memcpy(&v, bytes + i * 8, 8);
          } else {
            int64_t iv;
            std::memcpy(&iv, bytes + i * 8, 8);
            v = static_cast<double>(iv);
          }
          sum += v;
          mn = std::min(mn, v);
          mx = std::max(mx, v);
          ++count;
        }
      }));
  switch (op) {
    case AggOp::kSum:
      return sum;
    case AggOp::kAvg:
      if (count == 0) return Status::InvalidArgument("avg of empty array");
      return sum / static_cast<double>(count);
    case AggOp::kMin:
      if (count == 0) return Status::InvalidArgument("min of empty array");
      return mn;
    case AggOp::kMax:
      if (count == 0) return Status::InvalidArgument("max of empty array");
      return mx;
    case AggOp::kCount:
      return static_cast<double>(count);
  }
  return Status::Internal("unknown aggregate");
}

Status FileArrayStorage::Remove(ArrayId id) {
  std::string path = PathFor(id);
  meta_cache_.erase(id);
  linked_.erase(id);
  Status st = vfs_->Remove(path);
  if (!st.ok()) return Status::NotFound("no array file: " + path);
  return Status::OK();
}

Result<ArrayId> FileArrayStorage::LinkExisting(const std::string& path) {
  ArrayId id = next_id_++;
  linked_[id] = path;
  // Validate eagerly so a broken link fails at link time, not query time.
  SCISPARQL_ASSIGN_OR_RETURN(StoredArrayMeta meta, ReadHeader(id));
  meta_cache_[id] = meta;
  return id;
}

}  // namespace scisparql
