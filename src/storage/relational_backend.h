#ifndef SCISPARQL_STORAGE_RELATIONAL_BACKEND_H_
#define SCISPARQL_STORAGE_RELATIONAL_BACKEND_H_

#include <memory>
#include <string>

#include "relstore/database.h"
#include "storage/asei.h"

namespace scisparql {

/// Relational array back-end (Section 6.2): arrays live in an RDBMS —
/// here our embedded relstore engine — under the SSDM-managed storage
/// schema:
///
///   ARRAYS(array_id, etype, chunk_elems, shape_blob)   indexed by array_id
///   CHUNKS(key = array_id<<32 | chunk_id, data_blob)   indexed by key
///
/// Chunk retrieval maps the three SQL formulation strategies of 6.2.3 onto
/// the relstore query layer: per-key point queries, one IN-list query, or
/// SPD interval queries (BETWEEN + stride predicate).
class RelationalArrayStorage : public ArrayStorage {
 public:
  /// Creates/opens the schema inside `db` (not owned).
  static Result<std::unique_ptr<RelationalArrayStorage>> Attach(
      relstore::Database* db);

  std::string name() const override { return "relational"; }
  bool SupportsAggregatePushdown() const override { return true; }

  Result<ArrayId> Store(const NumericArray& array,
                        int64_t chunk_elems) override;
  Result<StoredArrayMeta> GetMeta(ArrayId id) const override;
  Status FetchChunks(
      ArrayId id, std::span<const uint64_t> chunk_ids,
      const std::function<void(uint64_t, const uint8_t*, size_t)>& cb)
      override;
  Status FetchIntervals(
      ArrayId id, std::span<const relstore::Interval> intervals,
      const std::function<void(uint64_t, const uint8_t*, size_t)>& cb)
      override;
  Result<double> AggregateWhole(ArrayId id, AggOp op) override;
  Status Remove(ArrayId id) override;

  /// Strategy used by FetchChunks (FetchIntervals is always interval-based).
  void set_strategy(relstore::SelectStrategy s) { strategy_ = s; }
  relstore::SelectStrategy strategy() const { return strategy_; }

  /// relstore-level counters from the last Fetch* call.
  const relstore::SelectStats& last_select_stats() const {
    return last_stats_;
  }

  relstore::Database* db() { return db_; }

 private:
  explicit RelationalArrayStorage(relstore::Database* db) : db_(db) {}

  static uint64_t ChunkKey(ArrayId id, uint64_t chunk) {
    return (static_cast<uint64_t>(id) << 32) | chunk;
  }

  relstore::Database* db_;
  relstore::SelectStrategy strategy_ = relstore::SelectStrategy::kInList;
  relstore::SelectStats last_stats_;
  ArrayId next_id_ = 1;
  mutable std::map<ArrayId, StoredArrayMeta> meta_cache_;
};

}  // namespace scisparql

#endif  // SCISPARQL_STORAGE_RELATIONAL_BACKEND_H_
