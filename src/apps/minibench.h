#ifndef SCISPARQL_APPS_MINIBENCH_H_
#define SCISPARQL_APPS_MINIBENCH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/array_proxy.h"

namespace scisparql {
namespace apps {

/// Array access patterns of the mini-benchmark query generator
/// (Section 6.3.1). The patterns span the best and worst cases of each
/// storage choice: contiguous rows favour sequential interval reads,
/// strided columns defeat 1-D chunk locality, random elements defeat
/// everything except per-chunk caching.
enum class AccessPattern : uint8_t {
  kSingleElement,  ///< a[i, j]
  kRow,            ///< a[i, :]           (contiguous span)
  kColumn,         ///< a[:, j]           (stride = row length)
  kStridedRows,    ///< a[lo:hi:k, :]     (regular blocks)
  kDiagonal,       ///< a[i, i] for all i (stride = row length + 1)
  kRandomElements, ///< n uniformly random cells
  kWholeArray,     ///< a[:, :]
};

const char* AccessPatternName(AccessPattern p);
std::vector<AccessPattern> AllAccessPatterns();

/// One generated benchmark query: either a single array view, or (for the
/// random pattern) a bag of single-element views resolved together via
/// ResolveProxyBag (Section 6.2.4).
struct GeneratedAccess {
  AccessPattern pattern;
  std::vector<std::shared_ptr<ArrayValue>> views;
  int64_t expected_elements = 0;  ///< logical elements the views cover
};

/// Builds the views of `pattern` over a stored 2-D array opened as
/// `base` (a whole-array proxy). `param` scales the pattern: the row
/// stride for kStridedRows, the number of cells for kRandomElements
/// (ignored otherwise). Deterministic in `seed`.
Result<GeneratedAccess> GeneratePattern(
    const std::shared_ptr<ArrayProxy>& base, AccessPattern pattern,
    int64_t param, uint64_t seed);

/// Equivalent SciSPARQL dereference text for documentation/EXPERIMENTS.md
/// ("?a[17, :]" etc.).
std::string PatternAsSubscript(AccessPattern pattern,
                               const std::vector<int64_t>& shape,
                               int64_t param);

}  // namespace apps
}  // namespace scisparql

#endif  // SCISPARQL_APPS_MINIBENCH_H_
