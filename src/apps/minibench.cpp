#include "apps/minibench.h"

#include <sstream>

namespace scisparql {
namespace apps {

const char* AccessPatternName(AccessPattern p) {
  switch (p) {
    case AccessPattern::kSingleElement:
      return "single-element";
    case AccessPattern::kRow:
      return "row";
    case AccessPattern::kColumn:
      return "column";
    case AccessPattern::kStridedRows:
      return "strided-rows";
    case AccessPattern::kDiagonal:
      return "diagonal";
    case AccessPattern::kRandomElements:
      return "random";
    case AccessPattern::kWholeArray:
      return "whole-array";
  }
  return "?";
}

std::vector<AccessPattern> AllAccessPatterns() {
  return {AccessPattern::kSingleElement, AccessPattern::kRow,
          AccessPattern::kColumn,        AccessPattern::kStridedRows,
          AccessPattern::kDiagonal,      AccessPattern::kRandomElements,
          AccessPattern::kWholeArray};
}

namespace {

uint64_t Mix(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Result<GeneratedAccess> GeneratePattern(
    const std::shared_ptr<ArrayProxy>& base, AccessPattern pattern,
    int64_t param, uint64_t seed) {
  const std::vector<int64_t>& shape = base->shape();
  if (shape.size() != 2) {
    return Status::InvalidArgument("mini-benchmark expects 2-D arrays");
  }
  const int64_t rows = shape[0];
  const int64_t cols = shape[1];
  uint64_t state = seed;

  GeneratedAccess out;
  out.pattern = pattern;

  auto subscript = [&](std::vector<Sub> subs)
      -> Result<std::shared_ptr<ArrayValue>> {
    return base->Subscript(subs);
  };

  switch (pattern) {
    case AccessPattern::kSingleElement: {
      int64_t i = static_cast<int64_t>(Mix(state) % rows);
      int64_t j = static_cast<int64_t>(Mix(state) % cols);
      SCISPARQL_ASSIGN_OR_RETURN(
          auto view, subscript({Sub::Index(i), Sub::Index(j)}));
      out.views.push_back(std::move(view));
      out.expected_elements = 1;
      return out;
    }
    case AccessPattern::kRow: {
      int64_t i = static_cast<int64_t>(Mix(state) % rows);
      SCISPARQL_ASSIGN_OR_RETURN(
          auto view, subscript({Sub::Index(i), Sub::All(cols)}));
      out.views.push_back(std::move(view));
      out.expected_elements = cols;
      return out;
    }
    case AccessPattern::kColumn: {
      int64_t j = static_cast<int64_t>(Mix(state) % cols);
      SCISPARQL_ASSIGN_OR_RETURN(
          auto view, subscript({Sub::All(rows), Sub::Index(j)}));
      out.views.push_back(std::move(view));
      out.expected_elements = rows;
      return out;
    }
    case AccessPattern::kStridedRows: {
      int64_t stride = param > 0 ? param : 4;
      int64_t count = (rows - 1) / stride + 1;
      SCISPARQL_ASSIGN_OR_RETURN(
          auto view,
          subscript({Sub::Range(0, count, stride), Sub::All(cols)}));
      out.views.push_back(std::move(view));
      out.expected_elements = count * cols;
      return out;
    }
    case AccessPattern::kDiagonal: {
      // One single-element view per diagonal cell, resolved as a bag.
      int64_t n = std::min(rows, cols);
      for (int64_t i = 0; i < n; ++i) {
        SCISPARQL_ASSIGN_OR_RETURN(
            auto view, subscript({Sub::Index(i), Sub::Index(i)}));
        out.views.push_back(std::move(view));
      }
      out.expected_elements = n;
      return out;
    }
    case AccessPattern::kRandomElements: {
      int64_t n = param > 0 ? param : 64;
      for (int64_t k = 0; k < n; ++k) {
        int64_t i = static_cast<int64_t>(Mix(state) % rows);
        int64_t j = static_cast<int64_t>(Mix(state) % cols);
        SCISPARQL_ASSIGN_OR_RETURN(
            auto view, subscript({Sub::Index(i), Sub::Index(j)}));
        out.views.push_back(std::move(view));
      }
      out.expected_elements = n;
      return out;
    }
    case AccessPattern::kWholeArray: {
      SCISPARQL_ASSIGN_OR_RETURN(
          auto view, subscript({Sub::All(rows), Sub::All(cols)}));
      out.views.push_back(std::move(view));
      out.expected_elements = rows * cols;
      return out;
    }
  }
  return Status::Internal("unknown access pattern");
}

std::string PatternAsSubscript(AccessPattern pattern,
                               const std::vector<int64_t>& shape,
                               int64_t param) {
  std::ostringstream out;
  switch (pattern) {
    case AccessPattern::kSingleElement:
      out << "?a[i, j]";
      break;
    case AccessPattern::kRow:
      out << "?a[i, :]";
      break;
    case AccessPattern::kColumn:
      out << "?a[:, j]";
      break;
    case AccessPattern::kStridedRows:
      out << "?a[1:" << (shape.empty() ? 0 : shape[0]) << ":"
          << (param > 0 ? param : 4) << ", :]";
      break;
    case AccessPattern::kDiagonal:
      out << "?a[i, i] for all i";
      break;
    case AccessPattern::kRandomElements:
      out << (param > 0 ? param : 64) << " random ?a[i, j]";
      break;
    case AccessPattern::kWholeArray:
      out << "?a[:, :]";
      break;
  }
  return out.str();
}

}  // namespace apps
}  // namespace scisparql
