#include "apps/bistab.h"

#include <cmath>
#include <sstream>

namespace scisparql {
namespace apps {

namespace {

/// Deterministic 64-bit mix (splitmix64) so datasets are reproducible.
uint64_t Mix(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double Uniform(uint64_t& state) {
  return static_cast<double>(Mix(state) >> 11) / 9007199254740992.0;
}

/// Simulates a bistable two-species birth/death process: species A toggles
/// between a low (~20) and a high (~80) quasi-stable level with rare
/// switches; species B mirrors it. The rates shift the switching bias, so
/// queries filtering on rates see correlated outcomes, like in the paper's
/// application.
NumericArray SimulateTrajectory(int timesteps, double k1, double ka,
                                double kd, double k4, uint64_t seed) {
  NumericArray out =
      NumericArray::Zeros(ElementType::kDouble, {timesteps, 2});
  uint64_t state = seed;
  double high_bias = k1 / (k1 + k4);  // in (0,1): probability mass of high
  bool high = Uniform(state) < high_bias;
  double a = high ? 80 : 20;
  for (int t = 0; t < timesteps; ++t) {
    // Rare state switches; rate constants set the switch probabilities.
    double switch_p = (high ? kd : ka) * 0.0005;
    if (Uniform(state) < switch_p) high = !high;
    double target = high ? 80 : 20;
    a += 0.2 * (target - a) + (Uniform(state) - 0.5) * 4.0;
    double b = 100.0 - a + (Uniform(state) - 0.5) * 2.0;
    int64_t idx_a[] = {t, 0};
    int64_t idx_b[] = {t, 1};
    (void)out.Set(idx_a, a);
    (void)out.Set(idx_b, b);
  }
  return out;
}

}  // namespace

Result<BistabStats> GenerateBistab(SSDM* engine, const BistabConfig& config) {
  BistabStats stats;
  Graph& g = engine->dataset().default_graph();
  const std::string ns = kBistabNs;
  uint64_t state = config.seed;

  Term experiment = Term::Iri(ns + "experiment1");
  g.Add(experiment, Term::Iri(vocab::kRdfType), Term::Iri(ns + "Experiment"));
  g.Add(experiment, Term::Iri(ns + "description"),
        Term::String("synthetic BISTAB parameter sweep"));

  int task_no = 0;
  for (int pc = 0; pc < config.parameter_cases; ++pc) {
    double k1 = 10.0 + 40.0 * Uniform(state);
    double ka = 30.0 + 60.0 * Uniform(state);
    double kd = 1.0 + 9.0 * Uniform(state);
    double k4 = 40.0 + 40.0 * Uniform(state);
    for (int r = 0; r < config.realizations; ++r) {
      ++task_no;
      Term task = Term::Iri(ns + "task" + std::to_string(task_no));
      g.Add(experiment, Term::Iri(ns + "hasTask"), task);
      g.Add(task, Term::Iri(vocab::kRdfType), Term::Iri(ns + "Task"));
      g.Add(task, Term::Iri(ns + "k_1"), Term::Double(k1));
      g.Add(task, Term::Iri(ns + "k_a"), Term::Double(ka));
      g.Add(task, Term::Iri(ns + "k_d"), Term::Double(kd));
      g.Add(task, Term::Iri(ns + "k_4"), Term::Double(k4));
      g.Add(task, Term::Iri(ns + "realization"), Term::Integer(r + 1));

      NumericArray trajectory = SimulateTrajectory(
          config.timesteps, k1, ka, kd, k4, Mix(state));
      stats.array_elements += trajectory.NumElements();
      Term value;
      if (config.storage.empty()) {
        value = Term::Array(ResidentArray::Make(std::move(trajectory)));
      } else {
        SCISPARQL_ASSIGN_OR_RETURN(
            value, engine->StoreArray(trajectory, config.storage,
                                      config.chunk_elems));
      }
      g.Add(task, Term::Iri(ns + "result"), value);
      ++stats.tasks;
    }
  }
  stats.triples = g.size();
  return stats;
}

namespace {

std::string Prefix() {
  return std::string("PREFIX bi: <") + kBistabNs + ">\n";
}

}  // namespace

std::string BistabQ1(double k1_min) {
  std::ostringstream q;
  q << Prefix()
    << "SELECT ?task ?k1 WHERE {\n"
       "  ?task a bi:Task ; bi:k_1 ?k1 ; bi:realization 1 .\n"
       "  FILTER (?k1 > "
    << k1_min
    << ")\n"
       "} ORDER BY ?k1";
  return q.str();
}

std::string BistabQ2(double k1_min) {
  // Final state of species A: last row, first column (1-based subscripts);
  // the row index ADIMS(?r)[1] is the trajectory length.
  std::ostringstream q2;
  q2 << Prefix()
     << "SELECT ?task ?final WHERE {\n"
        "  ?task a bi:Task ; bi:k_1 ?k1 ; bi:result ?r .\n"
        "  FILTER (?k1 > "
     << k1_min
     << ")\n"
        "  BIND (?r[ADIMS(?r)[1], 1] AS ?final)\n"
        "} ORDER BY ?task";
  return q2.str();
}

std::string BistabQ3(double threshold) {
  std::ostringstream q;
  q << Prefix()
    << "SELECT ?task ?mean WHERE {\n"
       "  ?task a bi:Task ; bi:result ?r .\n"
       "  BIND (AAVG(?r[:, 1]) AS ?mean)\n"
       "  FILTER (?mean > "
    << threshold
    << ")\n"
       "} ORDER BY DESC(?mean)";
  return q.str();
}

std::string BistabQ4(int timesteps) {
  std::ostringstream q;
  q << Prefix()
    << "SELECT ?k1 (AVG(?high) AS ?high_fraction) "
       "(COUNT(*) AS ?realizations) WHERE {\n"
       "  ?task a bi:Task ; bi:k_1 ?k1 ; bi:result ?r .\n"
       "  BIND (IF(?r["
    << timesteps
    << ", 1] > 50, 1.0, 0.0) AS ?high)\n"
       "} GROUP BY ?k1 ORDER BY ?k1";
  return q.str();
}

}  // namespace apps
}  // namespace scisparql
