#ifndef SCISPARQL_APPS_BISTAB_H_
#define SCISPARQL_APPS_BISTAB_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "engine/ssdm.h"

namespace scisparql {
namespace apps {

/// Synthetic stand-in for the BISTAB application of Section 6.4 — a
/// computational-biology parameter sweep where a stochastic bistable
/// chemical system is simulated repeatedly. Each *task* is one (parameter
/// case, realization) pair; its inputs are the kinetic rates k_1, k_a,
/// k_d, k_4 and its output is a trajectory array (timesteps x species).
///
/// The original dataset is not public; this generator reproduces its
/// *shape* — the cardinalities (many tasks, few parameters each, one large
/// array per task) and the bistable switching behaviour the application
/// queries look for — with a deterministic pseudo-random process.
struct BistabConfig {
  int parameter_cases = 10;   ///< distinct (k_1, k_a, k_d, k_4) tuples
  int realizations = 10;      ///< stochastic repetitions per case
  int timesteps = 1000;       ///< trajectory length
  uint64_t seed = 42;
  std::string storage;        ///< back-end name; "" keeps arrays resident
  int64_t chunk_elems = 8192;
};

struct BistabStats {
  int tasks = 0;
  size_t triples = 0;
  int64_t array_elements = 0;
};

inline constexpr const char* kBistabNs = "http://example.org/bistab#";

/// Populates the engine's default graph with the BISTAB dataset. Each task
/// node carries:
///   bi:k_1 bi:k_a bi:k_d bi:k_4   (xsd:double rates)
///   bi:realization                (xsd:integer)
///   bi:result                     (timesteps x 2 array: species A and B)
/// and the experiment node links every task with bi:hasTask.
Result<BistabStats> GenerateBistab(SSDM* engine, const BistabConfig& config);

/// The four application queries of Section 6.4.4, reproduced over the
/// synthetic data model. All use prefix bi: = kBistabNs.
///
/// Q1 — metadata-only: parameter-case selection (no array access).
/// Q2 — single-element access: final state of species A per matching task.
/// Q3 — array aggregation: tasks whose mean species-A level exceeds a
///      threshold (AAPR delegates to the back-end when possible).
/// Q4 — cross-task post-processing: per-parameter-case fraction of
///      realizations that ended in the high state.
std::string BistabQ1(double k1_min);
std::string BistabQ2(double k1_min);
std::string BistabQ3(double threshold);
std::string BistabQ4(int timesteps);

}  // namespace apps
}  // namespace scisparql

#endif  // SCISPARQL_APPS_BISTAB_H_
