#ifndef SCISPARQL_SPARQL_PARSER_H_
#define SCISPARQL_SPARQL_PARSER_H_

#include <string>

#include "common/status.h"
#include "sparql/ast.h"

namespace scisparql {
namespace sparql {

/// Parses one SciSPARQL statement (query, DEFINE FUNCTION, or update).
/// `defaults` provides prefixes available without a PREFIX declaration
/// (the engine passes its session prefixes).
Result<ast::Statement> ParseStatement(const std::string& text,
                                      const PrefixMap& defaults);

/// Convenience wrapper asserting the statement is a query.
Result<std::shared_ptr<ast::SelectQuery>> ParseQuery(
    const std::string& text, const PrefixMap& defaults);

}  // namespace sparql
}  // namespace scisparql

#endif  // SCISPARQL_SPARQL_PARSER_H_
