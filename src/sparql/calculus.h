#ifndef SCISPARQL_SPARQL_CALCULUS_H_
#define SCISPARQL_SPARQL_CALCULUS_H_

#include <string>

#include "common/status.h"
#include "sparql/ast.h"

namespace scisparql {

class Graph;

namespace opt {
class StatsRegistry;
}  // namespace opt

namespace sparql {

/// Renders a parsed SciSPARQL query in the ObjectLog-style domain calculus
/// the thesis translates to (Section 5.4.5): the query becomes a rule whose
/// head carries the projections and whose body is a conjunction of
/// `triple(s, p, v)` predicates, filter predicates, and the structured
/// operators the translation introduces — leftjoin() for OPTIONAL,
/// union() for alternatives, path closures, aggregation wrappers, and the
/// array operators (aref, asub, apr for proxy resolution points).
///
/// The rendering is a faithful *view* of the translation, not a second
/// execution path: the executor consumes the same structure operationally.
///
/// Example:
///   SELECT ?n WHERE { ?p foaf:name "Alice" ; foaf:knows ?f .
///                     ?f foaf:name ?n }
/// renders as
///   result(?n) <-
///     triple(?p, <...name>, "Alice") AND
///     triple(?p, <...knows>, ?f) AND
///     triple(?f, <...name>, ?n)
Result<std::string> RenderCalculus(const ast::SelectQuery& query);

/// Statistics-aware variant: consecutive triple() conjuncts are rendered
/// in the order the cost-based optimizer would execute them against
/// `graph` (using `stats` when it has a collector for the graph), showing
/// the post-optimization translation of Section 5.4.5. Either pointer may
/// be null, which degrades to the textual rendering above.
Result<std::string> RenderCalculus(const ast::SelectQuery& query,
                                   const Graph* graph,
                                   const opt::StatsRegistry* stats);

/// Normalizes a filter expression to disjunctive normal form
/// (Section 5.4.4): NOT is pushed to the leaves (De Morgan), and AND is
/// distributed over OR, yielding OR-of-ANDs. Non-boolean sub-expressions
/// are treated as atoms. The input is not modified; the result shares
/// atom subtrees with it.
ast::ExprPtr NormalizeDnf(const ast::ExprPtr& expr);

/// Counts the disjuncts of a DNF expression (1 when no top-level OR).
int CountDisjuncts(const ast::ExprPtr& expr);

}  // namespace sparql
}  // namespace scisparql

#endif  // SCISPARQL_SPARQL_CALCULUS_H_
