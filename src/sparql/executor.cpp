#include "sparql/executor.h"

#include <algorithm>
#include <cassert>
#include <charconv>
#include <chrono>
#include <cmath>
#include <optional>
#include <set>
#include <sstream>
#include <unordered_set>

#include "loaders/turtle.h"
#include "opt/planner.h"
#include "sparql/id_join.h"

namespace scisparql {
namespace sparql {

namespace {

using ast::GraphPattern;
using ast::PatternElement;
using ast::SelectQuery;
using ast::TriplePattern;
using ast::VarOrTerm;

/// Current solution under construction. Vars absent from the map are
/// unbound. std::map keeps copies cheapish and iteration deterministic.
using Binding = std::map<std::string, Term>;

/// Continuation invoked for every solution; returns false to stop the
/// enumeration early (ASK, LIMIT, EXISTS).
using Cont = std::function<Result<bool>()>;

bool IsInternalVar(const std::string& name) {
  return !name.empty() && name[0] == '.';
}

void CollectPatternVars(const GraphPattern& gp, std::vector<std::string>* out,
                        std::set<std::string>* seen);

/// Collects the user-visible variables one pattern element can bind. Also
/// used to decide how far a group-scoped FILTER must be deferred.
void CollectElementVars(const PatternElement& e, std::vector<std::string>* out,
                        std::set<std::string>* seen) {
  auto add = [&](const std::string& v) {
    if (!IsInternalVar(v) && seen->insert(v).second) out->push_back(v);
  };
  auto add_vt = [&](const VarOrTerm& vt) {
    if (vt.is_var) add(vt.var);
  };
  switch (e.kind) {
    case PatternElement::Kind::kTriple:
      add_vt(e.triple.s);
      add_vt(e.triple.p);
      add_vt(e.triple.o);
      break;
    case PatternElement::Kind::kBind:
      add(e.bind_var);
      break;
    case PatternElement::Kind::kValues:
      for (const std::string& v : e.values.vars) add(v);
      break;
    case PatternElement::Kind::kGraph:
      add_vt(e.graph_name);
      if (e.child) CollectPatternVars(*e.child, out, seen);
      break;
    case PatternElement::Kind::kUnion:
      for (const auto& b : e.branches) CollectPatternVars(*b, out, seen);
      break;
    case PatternElement::Kind::kOptional:
    case PatternElement::Kind::kGroup:
      if (e.child) CollectPatternVars(*e.child, out, seen);
      break;
    case PatternElement::Kind::kSubSelect:
      if (e.subquery != nullptr) {
        for (const auto& p : e.subquery->projections) add(p.name);
      }
      break;
    default:
      break;
  }
}

/// Collects user-visible variables of a pattern in first-appearance order.
void CollectPatternVars(const GraphPattern& gp, std::vector<std::string>* out,
                        std::set<std::string>* seen) {
  for (const PatternElement& e : gp.elements) {
    CollectElementVars(e, out, seen);
  }
}

/// Variables mentioned by an expression.
void CollectExprVars(const ast::Expr& e, std::set<std::string>* out) {
  switch (e.kind) {
    case ast::Expr::Kind::kVar:
      out->insert(e.var);
      break;
    case ast::Expr::Kind::kBinary:
      CollectExprVars(*e.left, out);
      CollectExprVars(*e.right, out);
      break;
    case ast::Expr::Kind::kUnary:
      CollectExprVars(*e.left, out);
      break;
    case ast::Expr::Kind::kCall:
      for (const auto& a : e.args) CollectExprVars(*a, out);
      break;
    case ast::Expr::Kind::kAggregate:
      if (e.agg_arg) CollectExprVars(*e.agg_arg, out);
      break;
    case ast::Expr::Kind::kSubscript:
      CollectExprVars(*e.base, out);
      for (const auto& s : e.subscripts) {
        if (s.index) CollectExprVars(*s.index, out);
        if (s.lo) CollectExprVars(*s.lo, out);
        if (s.hi) CollectExprVars(*s.hi, out);
        if (s.stride) CollectExprVars(*s.stride, out);
      }
      break;
    case ast::Expr::Kind::kExists:
      // EXISTS correlates on every variable its pattern mentions; a pushed
      // filter must wait until those are bound (or proven never-bound).
      if (e.exists_pattern) {
        std::vector<std::string> vars;
        std::set<std::string> seen;
        CollectPatternVars(*e.exists_pattern, &vars, &seen);
        out->insert(vars.begin(), vars.end());
      }
      break;
    default:
      break;
  }
}

void CollectAggNodes(const ast::Expr& e,
                     std::vector<const ast::Expr*>* out) {
  if (e.kind == ast::Expr::Kind::kAggregate) {
    out->push_back(&e);
    return;  // aggregates do not nest
  }
  if (e.left) CollectAggNodes(*e.left, out);
  if (e.right) CollectAggNodes(*e.right, out);
  for (const auto& a : e.args) CollectAggNodes(*a, out);
  if (e.base) CollectAggNodes(*e.base, out);
}

/// Locale-independent parse of an XSD numeric lexical form: optional
/// sign, digits with at most one '.', optional exponent — the union of
/// the xsd:integer / xsd:decimal / xsd:double lexical spaces (minus
/// INF/NaN, which have no useful sort value). Deliberately rejects what
/// strtod would additionally accept: leading whitespace, hex ("0x10"),
/// "inf"/"nan", and locale decimal separators.
std::optional<double> ParseXsdNumericLexical(const std::string& lex) {
  const char* begin = lex.data();
  const char* end = begin + lex.size();
  const char* q = begin;
  if (q != end && (*q == '+' || *q == '-')) ++q;
  const char* int_start = q;
  while (q != end && *q >= '0' && *q <= '9') ++q;
  bool has_int_digits = q != int_start;
  bool has_frac_digits = false;
  if (q != end && *q == '.') {
    ++q;
    const char* frac_start = q;
    while (q != end && *q >= '0' && *q <= '9') ++q;
    has_frac_digits = q != frac_start;
  }
  if (!has_int_digits && !has_frac_digits) return std::nullopt;
  if (q != end && (*q == 'e' || *q == 'E')) {
    ++q;
    if (q != end && (*q == '+' || *q == '-')) ++q;
    const char* exp_start = q;
    while (q != end && *q >= '0' && *q <= '9') ++q;
    if (q == exp_start) return std::nullopt;
  }
  if (q != end) return std::nullopt;
  // from_chars does not accept a leading '+'; the validation above makes
  // any other partial consumption (e.g. the trailing '.' of "5.")
  // value-preserving.
  const char* from = *begin == '+' ? begin + 1 : begin;
  double v = 0;
  auto [ptr, ec] = std::from_chars(from, end, v);
  (void)ptr;
  if (ec != std::errc()) return std::nullopt;  // out-of-range exponent etc.
  return v;
}

/// Numeric sort key for ORDER BY: native numerics by value, plus typed
/// literals with an XSD numeric datatype whose lexical form fully parses
/// (Term::Compare alone would order e.g. xsd:decimal literals lexically
/// against xsd:integer values). Returns nullopt for everything else.
std::optional<double> NumericOrderKey(const Term& t) {
  if (t.IsNumeric()) {
    Result<double> v = t.AsDouble();
    if (v.ok()) return *v;
    return std::nullopt;
  }
  if (t.kind() != Term::Kind::kTypedLiteral) return std::nullopt;
  static const char kXsd[] = "http://www.w3.org/2001/XMLSchema#";
  const std::string& dt = t.datatype();
  if (dt.compare(0, sizeof(kXsd) - 1, kXsd) != 0) return std::nullopt;
  static const std::set<std::string> kNumericTypes = {
      "integer",          "decimal",         "double",
      "float",            "int",             "long",
      "short",            "byte",            "nonNegativeInteger",
      "nonPositiveInteger", "negativeInteger", "positiveInteger",
      "unsignedLong",     "unsignedInt",     "unsignedShort",
      "unsignedByte"};
  if (kNumericTypes.count(dt.substr(sizeof(kXsd) - 1)) == 0) {
    return std::nullopt;
  }
  const std::string& lex = t.lexical();
  if (lex.empty()) return std::nullopt;
  return ParseXsdNumericLexical(lex);
}

/// True for the literal kinds Term::Compare ranks together (between IRIs
/// and arrays in the term order).
bool IsLiteralBand(const Term& t) {
  switch (t.kind()) {
    case Term::Kind::kString:
    case Term::Kind::kInteger:
    case Term::Kind::kDouble:
    case Term::Kind::kBoolean:
    case Term::Kind::kTypedLiteral:
      return true;
    default:
      return false;
  }
}

/// Sub-rank inside the literal band: plain strings, then the numeric
/// group, then booleans, then typed literals without a numeric key. This
/// mirrors Term::Compare's kind order except that numeric-keyed typed
/// literals join the numeric group.
int LiteralSubRank(const Term& t, bool has_numeric_key) {
  if (has_numeric_key) return 1;
  switch (t.kind()) {
    case Term::Kind::kString:
      return 0;
    case Term::Kind::kBoolean:
      return 2;
    default:
      return 3;
  }
}

/// ORDER BY comparator: mixed numeric bindings (xsd:integer vs xsd:double
/// vs numeric typed literals) compare by value; everything else falls back
/// to the SPARQL term order. Literal-band terms are sub-ranked first so
/// the result is a strict weak order — comparing a numeric-keyed typed
/// literal by value against numerics but lexically against keyless typed
/// literals (while those compare to numerics by kind) would cycle, which
/// is undefined behavior under std::sort.
int CompareOrderKeys(const Term& a, const Term& b) {
  if (!IsLiteralBand(a) || !IsLiteralBand(b)) return Term::Compare(a, b);
  std::optional<double> na = NumericOrderKey(a);
  std::optional<double> nb = NumericOrderKey(b);
  int sa = LiteralSubRank(a, na.has_value());
  int sb = LiteralSubRank(b, nb.has_value());
  if (sa != sb) return sa < sb ? -1 : 1;
  if (na.has_value() && nb.has_value()) {
    if (*na < *nb) return -1;
    if (*nb < *na) return 1;
  }
  // Equal numeric values (or a keyless subclass): the term order is a
  // deterministic tiebreak that keeps equal-value groups well-defined.
  return Term::Compare(a, b);
}

/// Extracts sargable conjuncts (?v op numeric-constant) from a FILTER
/// expression for the cardinality estimator. Walks through top-level ANDs;
/// anything non-sargable is simply skipped (it only loses a hint).
void ExtractFilterHints(const ast::Expr& e,
                        std::vector<opt::FilterHint>* out) {
  if (e.kind != ast::Expr::Kind::kBinary) return;
  if (e.bop == ast::BinaryOp::kAnd) {
    if (e.left) ExtractFilterHints(*e.left, out);
    if (e.right) ExtractFilterHints(*e.right, out);
    return;
  }
  opt::RangeOp op;
  switch (e.bop) {
    case ast::BinaryOp::kLt: op = opt::RangeOp::kLt; break;
    case ast::BinaryOp::kLe: op = opt::RangeOp::kLe; break;
    case ast::BinaryOp::kGt: op = opt::RangeOp::kGt; break;
    case ast::BinaryOp::kGe: op = opt::RangeOp::kGe; break;
    case ast::BinaryOp::kEq: op = opt::RangeOp::kEq; break;
    case ast::BinaryOp::kNe: op = opt::RangeOp::kNe; break;
    default: return;
  }
  auto flip = [](opt::RangeOp o) {
    switch (o) {
      case opt::RangeOp::kLt: return opt::RangeOp::kGt;
      case opt::RangeOp::kLe: return opt::RangeOp::kGe;
      case opt::RangeOp::kGt: return opt::RangeOp::kLt;
      case opt::RangeOp::kGe: return opt::RangeOp::kLe;
      default: return o;
    }
  };
  auto numeric_const = [](const ast::Expr* x) -> std::optional<double> {
    if (x == nullptr || x->kind != ast::Expr::Kind::kTerm) return std::nullopt;
    if (!x->term.IsNumeric()) return std::nullopt;
    Result<double> v = x->term.AsDouble();
    if (!v.ok()) return std::nullopt;
    return *v;
  };
  const ast::Expr* l = e.left.get();
  const ast::Expr* r = e.right.get();
  if (l != nullptr && l->kind == ast::Expr::Kind::kVar) {
    if (std::optional<double> c = numeric_const(r)) {
      out->push_back({l->var, op, *c});
    }
  } else if (r != nullptr && r->kind == ast::Expr::Kind::kVar) {
    if (std::optional<double> c = numeric_const(l)) {
      out->push_back({r->var, flip(op), *c});
    }
  }
}

/// Builds the plan-memo key for a resolved BGP: every pattern position
/// rendered as either its constant term or its variable name, plus the
/// filter hints that feed the cost model. Returns false (no memoization)
/// when a resolved constant is an array — rendering one would materialize
/// the proxy, which costs more than planning.
bool MemoSignature(const std::vector<opt::PatternDesc>& descs,
                   const std::vector<opt::FilterHint>& hints,
                   std::string* out) {
  std::string sig;
  auto pos = [&sig](const std::optional<Term>& c, const std::string& var) {
    if (c.has_value()) {
      if (c->kind() == Term::Kind::kArray) return false;
      sig += c->ToString();
    } else {
      sig += '?';
      sig += var;
    }
    sig += '\x1f';
    return true;
  };
  for (const opt::PatternDesc& d : descs) {
    if (!pos(d.s, d.s_var) || !pos(d.p, d.p_var) || !pos(d.o, d.o_var)) {
      return false;
    }
    if (d.is_path) sig += '~';
    sig += '\x1e';
  }
  for (const opt::FilterHint& h : hints) {
    sig += h.var;
    sig += static_cast<char>('0' + static_cast<int>(h.op));
    sig += std::to_string(h.bound);
    sig += '\x1f';
  }
  *out = std::move(sig);
  return true;
}

/// Lexicographic row comparator on Term::Compare, for DISTINCT/dedup sets.
struct RowLess {
  bool operator()(const std::vector<Term>& a,
                  const std::vector<Term>& b) const {
    size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i) {
      int c = Term::Compare(a[i], b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// ExecImpl: one query execution.
// ---------------------------------------------------------------------------

class ExecImpl {
 public:
  ExecImpl(Dataset* dataset, FunctionRegistry* registry,
           const ExecOptions& options)
      : dataset_(dataset),
        registry_(registry),
        options_(options),
        // A trace sink turns on the same per-scan profiling EXPLAIN uses,
        // so EXPLAIN ANALYZE and EXPLAIN report identical actual counts.
        profile_(options.trace != nullptr) {}

  struct State {
    const Graph* graph;
    Binding binding;
  };

  /// One evaluated ORDER BY key. SPARQL's term order puts unbound lowest,
  /// but an *erroring* key expression is not the same thing as an unbound
  /// variable — conflating them makes `ORDER BY (1/?x)` interleave its
  /// failures with genuinely unbound rows. Errors carry their own flag and
  /// sort in a separate band.
  struct OrderKeyVal {
    Term term;
    bool error = false;
  };

  OrderKeyVal EvalOrderKey(const ast::Expr& e, State& st, EvalContext& ctx) {
    if (e.kind == ast::Expr::Kind::kVar &&
        st.binding.find(e.var) == st.binding.end()) {
      return {};  // genuinely unbound: lowest band, not an error
    }
    Result<Term> v = EvalExpr(e, ctx);
    if (!v.ok()) return {Term(), true};
    return {*v, false};
  }

  /// Cooperative deadline/cancellation check for the hot loops. The flag
  /// and clock reads are amortized over 64 calls so the common (uncontexted
  /// or healthy) path stays one predictable branch.
  Status CheckInterrupt() {
    if (options_.query == nullptr) return Status::OK();
    if ((++interrupt_tick_ & 0x3F) != 0) return Status::OK();
    return options_.query->Check();
  }

  // --- Pattern evaluation. ---

  /// Element order used for evaluation. SPARQL FILTERs scope over the
  /// *whole* group, so a FILTER whose variables can still be bound by a
  /// later element (typically an OPTIONAL) is deferred to just after the
  /// last such element instead of being evaluated where it appears
  /// textually (where the unbound variable would make it an error and
  /// reject every solution). Cached per pattern for the query's lifetime.
  const std::vector<const PatternElement*>& GroupView(const GraphPattern& gp) {
    auto cached = group_views_.find(&gp);
    if (cached != group_views_.end()) return cached->second;
    const auto& elems = gp.elements;
    std::vector<int> defer_after(elems.size(), -1);
    for (size_t f = 0; f < elems.size(); ++f) {
      if (elems[f].kind != PatternElement::Kind::kFilter) continue;
      std::set<std::string> fvars;
      CollectExprVars(*elems[f].expr, &fvars);
      for (size_t j = f + 1; j < elems.size(); ++j) {
        if (elems[j].kind == PatternElement::Kind::kFilter) continue;
        std::vector<std::string> evars;
        std::set<std::string> seen;
        CollectElementVars(elems[j], &evars, &seen);
        for (const std::string& v : evars) {
          if (fvars.count(v) > 0) {
            defer_after[f] = static_cast<int>(j);
            break;
          }
        }
      }
    }
    std::vector<const PatternElement*> view;
    view.reserve(elems.size());
    for (size_t i = 0; i < elems.size(); ++i) {
      if (elems[i].kind == PatternElement::Kind::kFilter &&
          defer_after[i] >= 0) {
        continue;
      }
      view.push_back(&elems[i]);
      for (size_t f = 0; f < elems.size(); ++f) {
        if (defer_after[f] == static_cast<int>(i)) view.push_back(&elems[f]);
      }
    }
    return group_views_.emplace(&gp, std::move(view)).first->second;
  }

  Result<bool> EvalGroup(const GraphPattern& gp, State& st, const Cont& k) {
    return EvalSteps(GroupView(gp), 0, st, k);
  }

  Result<bool> EvalSteps(const std::vector<const PatternElement*>& elems,
                         size_t i, State& st, const Cont& k) {
    SCISPARQL_RETURN_NOT_OK(CheckInterrupt());
    if (i >= elems.size()) return k();

    // Gather a maximal run of triple patterns into one BGP, pulling in any
    // directly following FILTERs so they can be pushed into the join.
    if (elems[i]->kind == PatternElement::Kind::kTriple) {
      std::vector<const TriplePattern*> bgp;
      std::vector<const ast::Expr*> filters;
      size_t j = i;
      while (j < elems.size()) {
        if (elems[j]->kind == PatternElement::Kind::kTriple) {
          bgp.push_back(&elems[j]->triple);
          ++j;
        } else if (options_.push_filters &&
                   elems[j]->kind == PatternElement::Kind::kFilter) {
          filters.push_back(elems[j]->expr.get());
          ++j;
        } else {
          break;
        }
      }
      auto next = [this, &elems, j, &st, &k]() {
        return EvalSteps(elems, j, st, k);
      };
      return EvalBgp(bgp, filters, st, next);
    }

    const PatternElement& e = *elems[i];
    auto next = [this, &elems, i, &st, &k]() {
      return EvalSteps(elems, i + 1, st, k);
    };

    switch (e.kind) {
      case PatternElement::Kind::kFilter: {
        SCISPARQL_ASSIGN_OR_RETURN(bool pass, EvalFilter(*e.expr, st));
        if (!pass) return true;
        return next();
      }
      case PatternElement::Kind::kBind:
        return EvalBind(e, st, next);
      case PatternElement::Kind::kOptional:
        return EvalOptional(e, st, next);
      case PatternElement::Kind::kUnion: {
        for (const auto& branch : e.branches) {
          State sub{st.graph, st.binding};
          SCISPARQL_ASSIGN_OR_RETURN(
              bool more, EvalGroup(*branch, sub, [&]() -> Result<bool> {
                // Continue the outer steps with the branch's bindings.
                State merged{st.graph, sub.binding};
                std::swap(st.binding, merged.binding);
                auto restore = [&]() { std::swap(st.binding, merged.binding); };
                auto r = EvalSteps(elems, i + 1, st, k);
                restore();
                return r;
              }));
          if (!more) return false;
        }
        return true;
      }
      case PatternElement::Kind::kGroup: {
        return EvalGroup(*e.child, st, next);
      }
      case PatternElement::Kind::kGraph:
        return EvalGraph(e, st, next);
      case PatternElement::Kind::kValues:
        return EvalValues(e, st, next);
      case PatternElement::Kind::kMinus:
        return EvalMinus(e, st, next);
      case PatternElement::Kind::kSubSelect:
        return EvalSubSelect(e, st, next);
      default:
        return Status::Internal("unexpected pattern element");
    }
  }

  Result<bool> EvalFilter(const ast::Expr& expr, State& st) {
    EvalContext ctx = MakeCtx(st);
    Result<Term> v = EvalExpr(expr, ctx);
    if (!v.ok()) return false;  // evaluation error = filter rejects
    Result<bool> b = EffectiveBooleanValue(*v);
    if (!b.ok()) return false;
    return *b;
  }

  Result<bool> EvalBind(const PatternElement& e, State& st, const Cont& k) {
    if (st.binding.count(e.bind_var) > 0) {
      return Status::InvalidArgument("BIND to already-bound variable ?" +
                                     e.bind_var);
    }
    EvalContext ctx = MakeCtx(st);

    // Variables bound to array subscripts (Section 4.1.2): when the BIND
    // expression is an array dereference whose index positions contain
    // *unbound* variables, the dereference acts as a generator — one
    // solution per element, with the index variables bound to the
    // (1-based) subscripts.
    if (e.expr->kind == ast::Expr::Kind::kSubscript) {
      SCISPARQL_ASSIGN_OR_RETURN(std::optional<bool> generated,
                                 EvalSubscriptGenerator(e, st, ctx, k));
      if (generated.has_value()) return *generated;
    }

    // DAPLEX bag semantics for SciSPARQL-defined functions: a BIND whose
    // expression is a direct call of a parameterized view emits one
    // solution per element of the result bag (Section 4.2).
    if (e.expr->kind == ast::Expr::Kind::kCall && registry_ != nullptr) {
      const ast::FunctionDef* def = registry_->FindDefined(e.expr->fn);
      if (def != nullptr) {
        std::vector<Term> args;
        for (const auto& a : e.expr->args) {
          SCISPARQL_ASSIGN_OR_RETURN(Term t, EvalExpr(*a, ctx));
          args.push_back(std::move(t));
        }
        SCISPARQL_ASSIGN_OR_RETURN(std::vector<Term> bag,
                                   CallDefined(*def, args));
        for (Term& value : bag) {
          st.binding[e.bind_var] = std::move(value);
          Result<bool> r = k();
          st.binding.erase(e.bind_var);
          if (!r.ok()) return r;
          if (!*r) return false;
        }
        return true;
      }
    }

    Result<Term> v = EvalExpr(*e.expr, ctx);
    if (v.ok() && !v->IsUndef()) {
      st.binding[e.bind_var] = std::move(*v);
      Result<bool> r = k();
      st.binding.erase(e.bind_var);
      return r;
    }
    // Error: the variable stays unbound, the solution survives.
    return k();
  }

  /// Implements the subscript-generator form of BIND. Returns nullopt when
  /// the expression is an ordinary dereference (no unbound index vars) and
  /// the generic path should handle it; otherwise the continue/stop flag.
  Result<std::optional<bool>> EvalSubscriptGenerator(const PatternElement& e,
                                                     State& st,
                                                     EvalContext& ctx,
                                                     const Cont& k) {
    const ast::Expr& deref = *e.expr;
    // The base array must be computable already.
    Result<Term> base = EvalExpr(*deref.base, ctx);
    if (!base.ok() || !base->IsArray()) return std::optional<bool>();
    const auto& arr = base->array();
    const std::vector<int64_t>& shape = arr->shape();
    if (deref.subscripts.size() != shape.size()) return std::optional<bool>();

    // Classify each dimension: enumerated (unbound index variable) or
    // fixed (anything else, evaluated by the normal rules).
    struct Dim {
      bool enumerated = false;
      std::string var;
    };
    std::vector<Dim> dims(shape.size());
    bool any_enumerated = false;
    for (size_t d = 0; d < deref.subscripts.size(); ++d) {
      const ast::SubscriptExpr& s = deref.subscripts[d];
      if (!s.is_range && s.index != nullptr &&
          s.index->kind == ast::Expr::Kind::kVar &&
          st.binding.count(s.index->var) == 0 &&
          !IsInternalVar(s.index->var)) {
        dims[d].enumerated = true;
        dims[d].var = s.index->var;
        any_enumerated = true;
      }
    }
    if (!any_enumerated) return std::optional<bool>();

    // Iterate the Cartesian product of the enumerated dimensions; for each
    // combination bind the index variables (1-based) and evaluate the
    // dereference through the ordinary evaluator (so fixed dims, ranges
    // and bounds checks behave identically).
    std::vector<size_t> enum_dims;
    for (size_t d = 0; d < dims.size(); ++d) {
      if (dims[d].enumerated) enum_dims.push_back(d);
    }
    std::vector<int64_t> idx(enum_dims.size(), 1);
    bool more = true;
    while (more) {
      for (size_t p = 0; p < enum_dims.size(); ++p) {
        st.binding[dims[enum_dims[p]].var] = Term::Integer(idx[p]);
      }
      Result<Term> v = EvalExpr(deref, ctx);
      Result<bool> r = true;
      if (v.ok() && !v->IsUndef()) {
        st.binding[e.bind_var] = std::move(*v);
        r = k();
        st.binding.erase(e.bind_var);
      }
      for (size_t p = 0; p < enum_dims.size(); ++p) {
        st.binding.erase(dims[enum_dims[p]].var);
      }
      if (!r.ok()) return r.status();
      if (!*r) return std::optional<bool>(false);
      // Advance the multi-index (1-based, bounded by the shape).
      size_t p = 0;
      while (p < enum_dims.size() &&
             ++idx[p] > shape[enum_dims[p]]) {
        idx[p] = 1;
        ++p;
      }
      if (p == enum_dims.size()) more = false;
    }
    return std::optional<bool>(true);
  }

  Result<bool> EvalOptional(const PatternElement& e, State& st,
                            const Cont& k) {
    bool any = false;
    SCISPARQL_ASSIGN_OR_RETURN(
        bool more, EvalGroup(*e.child, st, [&]() -> Result<bool> {
          any = true;
          return k();
        }));
    if (!more) return false;
    if (!any) return k();
    return true;
  }

  Result<bool> EvalGraph(const PatternElement& e, State& st, const Cont& k) {
    const GraphPattern& child = *e.child;
    if (!e.graph_name.is_var) {
      const Graph* g = dataset_->FindNamed(e.graph_name.term.iri());
      if (g == nullptr) return true;  // no such graph: no solutions
      const Graph* saved = st.graph;
      st.graph = g;
      Result<bool> r = EvalGroup(child, st, k);
      st.graph = saved;
      return r;
    }
    const std::string& var = e.graph_name.var;
    auto it = st.binding.find(var);
    if (it != st.binding.end()) {
      if (!it->second.IsIri()) return true;
      const Graph* g = dataset_->FindNamed(it->second.iri());
      if (g == nullptr) return true;
      const Graph* saved = st.graph;
      st.graph = g;
      Result<bool> r = EvalGroup(child, st, k);
      st.graph = saved;
      return r;
    }
    for (const auto& [iri, g] : dataset_->named_graphs()) {
      st.binding[var] = Term::Iri(iri);
      const Graph* saved = st.graph;
      st.graph = &g;
      Result<bool> r = EvalGroup(child, st, k);
      st.graph = saved;
      st.binding.erase(var);
      if (!r.ok()) return r;
      if (!*r) return false;
    }
    return true;
  }

  Result<bool> EvalValues(const PatternElement& e, State& st, const Cont& k) {
    for (const auto& row : e.values.rows) {
      std::vector<std::string> bound_here;
      bool compatible = true;
      for (size_t c = 0; c < e.values.vars.size(); ++c) {
        const Term& v = row[c];
        if (v.IsUndef()) continue;
        auto it = st.binding.find(e.values.vars[c]);
        if (it != st.binding.end()) {
          if (!(it->second == v)) {
            compatible = false;
            break;
          }
        } else {
          st.binding[e.values.vars[c]] = v;
          bound_here.push_back(e.values.vars[c]);
        }
      }
      Result<bool> r = compatible ? k() : Result<bool>(true);
      for (const std::string& v : bound_here) st.binding.erase(v);
      if (!r.ok()) return r;
      if (!*r) return false;
    }
    return true;
  }

  Result<bool> EvalMinus(const PatternElement& e, State& st, const Cont& k) {
    // MINUS: drop the current solution when some solution of the child
    // pattern is compatible with it and shares at least one variable.
    auto cache_it = minus_cache_.find(e.child.get());
    if (cache_it == minus_cache_.end()) {
      std::vector<Binding> solutions;
      State sub{st.graph, Binding()};
      SCISPARQL_ASSIGN_OR_RETURN(bool ok,
                                 EvalGroup(*e.child, sub, [&]() -> Result<bool> {
                                   solutions.push_back(sub.binding);
                                   return true;
                                 }));
      (void)ok;
      cache_it = minus_cache_.emplace(e.child.get(), std::move(solutions)).first;
    }
    for (const Binding& other : cache_it->second) {
      bool shares = false;
      bool compatible = true;
      for (const auto& [var, value] : other) {
        auto it = st.binding.find(var);
        if (it == st.binding.end()) continue;
        shares = true;
        if (!(it->second == value)) {
          compatible = false;
          break;
        }
      }
      if (shares && compatible) return true;  // dropped
    }
    return k();
  }

  Result<bool> EvalSubSelect(const PatternElement& e, State& st,
                             const Cont& k) {
    // SPARQL subqueries evaluate bottom-up: the inner SELECT runs once
    // (against the dataset's default graph), then its projected rows join
    // with the outer solution on shared variable names.
    auto it = subselect_cache_.find(e.subquery.get());
    if (it == subselect_cache_.end()) {
      SCISPARQL_ASSIGN_OR_RETURN(QueryResult rows,
                                 Select(*e.subquery, Binding()));
      it = subselect_cache_.emplace(e.subquery.get(), std::move(rows)).first;
    }
    const QueryResult& rows = it->second;
    for (const auto& row : rows.rows) {
      std::vector<std::string> bound_here;
      bool compatible = true;
      for (size_t c = 0; c < rows.columns.size() && c < row.size(); ++c) {
        if (row[c].IsUndef()) continue;
        auto found = st.binding.find(rows.columns[c]);
        if (found != st.binding.end()) {
          if (!(found->second == row[c])) {
            compatible = false;
            break;
          }
        } else {
          st.binding[rows.columns[c]] = row[c];
          bound_here.push_back(rows.columns[c]);
        }
      }
      Result<bool> r = compatible ? k() : Result<bool>(true);
      for (const std::string& v : bound_here) st.binding.erase(v);
      if (!r.ok()) return r;
      if (!*r) return false;
    }
    return true;
  }

  // --- BGP evaluation with cost-based ordering (Section 5.4). ---

  /// Abstracts a triple pattern for the cost model: variables already bound
  /// in the current solution are resolved to constants, the rest stay
  /// symbolic so the estimator can discount them as join variables.
  opt::PatternDesc MakeDesc(const TriplePattern& tp, const State& st) const {
    opt::PatternDesc d;
    auto fill = [&](const VarOrTerm& vt, std::optional<Term>* c,
                    std::string* var) {
      if (!vt.is_var) {
        *c = vt.term;
        return;
      }
      auto it = st.binding.find(vt.var);
      if (it != st.binding.end()) {
        *c = it->second;
      } else {
        *var = vt.var;
      }
    };
    fill(tp.s, &d.s, &d.s_var);
    if (tp.path != nullptr) {
      d.is_path = true;
    } else {
      fill(tp.p, &d.p, &d.p_var);
    }
    fill(tp.o, &d.o, &d.o_var);
    return d;
  }

  /// A BGP's execution order plus per-step cumulative estimates (what
  /// EXPLAIN prints next to the actual counts).
  struct OrderedBgp {
    std::vector<const TriplePattern*> patterns;
    std::vector<int64_t> est;  // estimated cumulative rows after each step
    bool reordered = false;
  };

  OrderedBgp OrderBgp(const std::vector<const TriplePattern*>& bgp,
                      const std::vector<const ast::Expr*>& filters,
                      const State& st) const {
    std::vector<opt::PatternDesc> descs;
    descs.reserve(bgp.size());
    for (const TriplePattern* tp : bgp) descs.push_back(MakeDesc(*tp, st));
    std::vector<opt::FilterHint> hints;
    for (const ast::Expr* f : filters) ExtractFilterHints(*f, &hints);
    const opt::GraphStats* stats =
        options_.stats == nullptr ? nullptr : options_.stats->Find(st.graph);
    opt::CardinalityEstimator estimator(st.graph, stats);

    OrderedBgp out;
    if (!options_.optimize_join_order) {
      // Textual order; still estimate each step so EXPLAIN has numbers.
      std::set<std::string> bound;
      double card = 1.0;
      for (const TriplePattern* tp : bgp) {
        const opt::PatternDesc& d = descs[out.patterns.size()];
        int64_t step = estimator.Estimate(d, bound, hints);
        card = std::min(1e15, card * static_cast<double>(step));
        out.patterns.push_back(tp);
        out.est.push_back(static_cast<int64_t>(std::max(1.0, card)));
        for (const std::string& v : d.Vars()) bound.insert(v);
      }
      return out;
    }

    // Plan memo: the same resolved-pattern signature planned against the
    // same graph version reuses the prior join order; on version drift the
    // memo entry is dropped and the enumeration runs again.
    std::string memo_sig;
    bool memoizable = options_.plan_memo != nullptr && st.graph != nullptr &&
                      MemoSignature(descs, hints, &memo_sig);
    if (memoizable) {
      cache::PlanMemo::Entry hit;
      if (options_.plan_memo->Lookup(memo_sig, st.graph, st.graph->version(),
                                     &hit) &&
          hit.order.size() == bgp.size()) {
        for (size_t i = 0; i < hit.order.size(); ++i) {
          out.patterns.push_back(bgp[hit.order[i]]);
        }
        out.est = std::move(hit.est);
        out.reordered = hit.reordered;
        return out;
      }
    }

    opt::BgpPlan plan = opt::PlanBgp(descs, hints, estimator);
    for (const opt::PlannedStep& s : plan.steps) {
      out.patterns.push_back(bgp[s.input_index]);
      out.est.push_back(s.cumulative);
    }
    out.reordered = plan.reordered;
    if (memoizable) {
      cache::PlanMemo::Entry e;
      for (const opt::PlannedStep& s : plan.steps) {
        e.order.push_back(s.input_index);
      }
      e.est = out.est;
      e.reordered = out.reordered;
      e.graph = st.graph;
      e.graph_version = st.graph->version();
      options_.plan_memo->Insert(memo_sig, std::move(e));
    }
    return out;
  }

  Result<bool> EvalBgp(const std::vector<const TriplePattern*>& bgp,
                       const std::vector<const ast::Expr*>& filters,
                       State& st, const Cont& k) {
    std::chrono::steady_clock::time_point opt_start;
    if (profile_) opt_start = std::chrono::steady_clock::now();
    OrderedBgp ordered = OrderBgp(bgp, filters, st);
    if (profile_) {
      optimize_nanos_ += std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now() - opt_start)
                             .count();
    }
    if (profile_ && !bgp.empty()) {
      // Remember the first plan chosen for this (textual) BGP so EXPLAIN
      // can render estimated vs. actual cardinalities side by side.
      plan_records_.emplace(bgp[0],
                            PlanRecord{ordered.patterns, ordered.est,
                                       ordered.reordered});
    }
    std::optional<Result<bool>> fast =
        TryEvalBgpIds(ordered, bgp, filters, st, k);
    if (fast.has_value()) return *fast;
    std::vector<bool> filter_done(filters.size(), false);
    return EvalBgpRec(ordered.patterns, filters, &filter_done, 0, st, k);
  }

  /// Attempts to evaluate the ordered BGP over the graph's dictionary-ID
  /// permutation indexes (merge / hash joins instead of nested
  /// scan-and-bind), merging any pending delta at a snapshot epoch
  /// captured on entry. Returns nullopt when the fast path does not apply
  /// — single pattern, property paths, a graph whose ID space is not
  /// join-safe, a constant past the exact int<->double cast range, or an
  /// intermediate result past the materialization cap — and the caller
  /// falls back to scan-and-bind.
  std::optional<Result<bool>> TryEvalBgpIds(
      const OrderedBgp& ordered, const std::vector<const TriplePattern*>& bgp,
      const std::vector<const ast::Expr*>& filters, State& st, const Cont& k) {
    if (!options_.use_id_joins || st.graph == nullptr) return std::nullopt;
    if (ordered.patterns.size() < 2) return std::nullopt;
    for (const TriplePattern* tp : ordered.patterns) {
      if (tp->path != nullptr) return std::nullopt;
    }
    const TermDictionary& dict = st.graph->dict();
    if (!dict.join_safe()) return std::nullopt;

    // Pin the read snapshot *before* touching the dictionary or the
    // delta: writers intern a batch's terms and splice its delta cells
    // under the delta mutex before publishing its epoch, so every batch
    // with epoch <= snapshot is fully resolvable below, and every later
    // batch is excluded by the epoch filter — exactly MatchAt(snapshot)
    // semantics, even while writers keep committing mid-query.
    const uint64_t snapshot = st.graph->SnapshotEpoch();
    DeltaIdRuns delta_runs;
    st.graph->SnapshotDeltaIds(snapshot, &delta_runs);

    // Lower the patterns to the ID space: constants and already-bound
    // variables resolve through the dictionary, unbound variables get
    // dense output slots.
    std::vector<std::string> slot_vars;
    std::map<std::string, int> slot_of;
    bool missing_const = false;
    bool lossy_const = false;
    auto resolve_const = [&](const Term& t) -> uint32_t {
      std::optional<uint32_t> id = dict.Find(t);
      // Under join_safe() the graph holds at most one representation of
      // any numeric value, but it may be the other kind than the query
      // constant (2 matches a stored 2.0); probe the other exact kind.
      // The probes cast across int64/double, which is only injective
      // below 2^53 — past that, several integers widen to one double
      // (9007199254740993 widens to 9007199254740992.0), so a cast-based
      // probe could pin the constant to the ID of a merely-adjacent
      // stored value or miss an equal one. Such constants mark the
      // lowering lossy and the BGP falls back to term-space
      // scan-and-bind, whose Term::operator== is authoritative.
      if (!id.has_value() && t.kind() == Term::Kind::kInteger) {
        const int64_t i = t.integer();
        if (i > -TermDictionary::kExactCastBound &&
            i < TermDictionary::kExactCastBound) {
          id = dict.Find(Term::Double(static_cast<double>(i)));
          // 0 and -0.0 compare equal but intern apart (bit identity).
          if (!id.has_value() && i == 0) id = dict.Find(Term::Double(-0.0));
        } else {
          lossy_const = true;
          return 0;
        }
      } else if (!id.has_value() && t.kind() == Term::Kind::kDouble) {
        const double d = t.dbl();
        if (d == std::floor(d) && std::isfinite(d)) {
          if (d > -static_cast<double>(TermDictionary::kExactCastBound) &&
              d < static_cast<double>(TermDictionary::kExactCastBound)) {
            id = dict.Find(Term::Integer(static_cast<int64_t>(d)));
            if (!id.has_value() && d == 0.0) {
              id = dict.Find(Term::Double(std::signbit(d) ? 0.0 : -0.0));
            }
          } else if (d >= -9223372036854775808.0 &&
                     d < 9223372036854775808.0) {
            // Integral double past 2^53 but within the int64 span: a
            // whole range of integers compares equal to it.
            lossy_const = true;
            return 0;
          }
          // Past the int64 span no integer can equal it: an exact miss
          // is a definitive miss.
        }
      }
      if (!id.has_value()) {
        missing_const = true;
        return 0;
      }
      return *id;
    };
    auto lower = [&](const VarOrTerm& vt) -> IdSlot {
      IdSlot s;
      if (vt.is_var) {
        auto bound = st.binding.find(vt.var);
        if (bound == st.binding.end()) {
          auto [it, fresh] =
              slot_of.emplace(vt.var, static_cast<int>(slot_vars.size()));
          if (fresh) slot_vars.push_back(vt.var);
          s.is_var = true;
          s.slot = it->second;
          return s;
        }
        s.const_id = resolve_const(bound->second);
        return s;
      }
      s.const_id = resolve_const(vt.term);
      return s;
    };
    std::vector<IdPattern> pats;
    pats.reserve(ordered.patterns.size());
    for (const TriplePattern* tp : ordered.patterns) {
      IdPattern p;
      p.s = lower(tp->s);
      p.p = lower(tp->p);
      p.o = lower(tp->o);
      pats.push_back(p);
    }
    if (lossy_const) return std::nullopt;
    if (missing_const) {
      // A constant absent from the dictionary occurs in no triple — delta
      // triples included, since Apply interns them before publishing
      // their epoch and our snapshot was captured before these Finds ran:
      // the BGP has zero solutions and evaluation simply continues.
      return Result<bool>(true);
    }
    // Re-check join safety: a writer may have interned an aliasing
    // numeric (or an array term) since the entry check, in which case the
    // IDs just resolved are no longer trustworthy equality witnesses. The
    // flag only ever flips towards unsafe, so passing here proves every
    // Find above ran against an alias-free dictionary.
    if (!dict.join_safe()) return std::nullopt;

    const IdIndexes& idx = st.graph->EnsureIdIndexes();
    // A batch committing between the snapshot capture above and this
    // point cannot leak post-snapshot rows into the join: the base table
    // and its permutations are immutable under the shared lock (folds and
    // base-mode writes require exclusivity, so the epoch can only have
    // grown by delta commits), and every delta op carries its batch's
    // epoch, which the run resolution filtered against `snapshot`.
    assert(st.graph->SnapshotEpoch() >= snapshot);
    IdJoinResult res;
    bool overflow = false;
    std::function<Status()> interrupt;
    if (options_.query != nullptr) {
      interrupt = [this]() { return CheckInterrupt(); };
    }
    Status js = ExecuteIdJoin(idx, delta_runs.empty() ? nullptr : &delta_runs,
                              pats, options_.id_join_max_rows, interrupt,
                              &res, &overflow);
    if (!js.ok()) return Result<bool>(js);
    if (overflow) return std::nullopt;

    if (profile_) RecordIdJoinProfile(ordered, bgp, slot_vars, res);

    // Emit the solutions: bind the slot variables through pre-inserted
    // map cells (Binding is node-based, so the iterators survive whatever
    // the continuation does to other keys), then apply every pushed
    // filter — the same end-of-BGP accept/reject state scan-and-bind
    // reaches, since EvalFilter maps evaluation errors to rejection.
    std::vector<Binding::iterator> cells;
    cells.reserve(res.slots.size());
    for (int slot : res.slots) {
      cells.push_back(
          st.binding.emplace(slot_vars[static_cast<size_t>(slot)], Term())
              .first);
    }
    bool keep_going = true;
    Status inner = Status::OK();
    const size_t stride = res.slots.size();
    for (size_t r = 0; r < res.rows && keep_going; ++r) {
      Status alive = CheckInterrupt();
      if (!alive.ok()) {
        inner = alive;
        break;
      }
      for (size_t c = 0; c < stride; ++c) {
        cells[c]->second = dict.term(res.data[r * stride + c]);
      }
      bool pass = true;
      for (const ast::Expr* f : filters) {
        Result<bool> pb = EvalFilter(*f, st);
        if (!pb.ok()) {
          inner = pb.status();
          keep_going = false;
          pass = false;
          break;
        }
        if (!*pb) {
          pass = false;
          break;
        }
      }
      if (!pass) continue;
      Result<bool> kr = k();
      if (!kr.ok()) {
        inner = kr.status();
        break;
      }
      if (!*kr) keep_going = false;
    }
    for (int slot : res.slots) {
      st.binding.erase(slot_vars[static_cast<size_t>(slot)]);
    }
    if (!inner.ok()) return Result<bool>(inner);
    return Result<bool>(keep_going);
  }

  /// Folds an ID-join run into the EXPLAIN / trace profile: per-pattern
  /// scan and output cardinalities, plus the physical-operator labels on
  /// the BGP's plan record (first run wins, matching plan capture).
  void RecordIdJoinProfile(const OrderedBgp& ordered,
                           const std::vector<const TriplePattern*>& bgp,
                           const std::vector<std::string>& slot_vars,
                           const IdJoinResult& res) {
    for (size_t i = 0; i < res.steps.size() && i < ordered.patterns.size();
         ++i) {
      scan_input_[ordered.patterns[i]] +=
          static_cast<int64_t>(res.steps[i].scan_rows);
      scan_actual_[ordered.patterns[i]] +=
          static_cast<int64_t>(res.steps[i].out_rows);
    }
    if (bgp.empty()) return;
    auto it = plan_records_.find(bgp[0]);
    if (it == plan_records_.end() || !it->second.phys.empty()) return;
    for (const IdJoinStep& s : res.steps) {
      std::string label = std::string(opt::PhysicalOpName(s.op)) + "(" +
                          PermName(s.perm);
      // Mark scans that merged a pending delta run, so EXPLAIN under
      // concurrent writes shows the ID path holding rather than falling
      // back to term scans.
      if (s.delta) label += "+delta";
      if (s.op == opt::PhysicalOp::kMergeJoin && s.join_slot >= 0) {
        label += " on ?" + slot_vars[static_cast<size_t>(s.join_slot)];
      } else if (s.op == opt::PhysicalOp::kHashJoin) {
        label += s.build_left ? ", build=left" : ", build=scan";
      }
      label += ")";
      it->second.phys.push_back(std::move(label));
    }
  }

  Result<bool> EvalBgpRec(const std::vector<const TriplePattern*>& patterns,
                          const std::vector<const ast::Expr*>& filters,
                          std::vector<bool>* filter_done, size_t i, State& st,
                          const Cont& k) {
    // The join loop re-enters here once per candidate binding per pattern,
    // which makes it the natural cancellation point for BGP evaluation.
    SCISPARQL_RETURN_NOT_OK(CheckInterrupt());
    // Apply any pushed filter whose variables are now all bound.
    std::vector<size_t> applied_here;
    for (size_t f = 0; f < filters.size(); ++f) {
      if ((*filter_done)[f]) continue;
      std::set<std::string> vars;
      CollectExprVars(*filters[f], &vars);
      bool ready = true;
      for (const std::string& v : vars) {
        if (st.binding.count(v) == 0) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;
      (*filter_done)[f] = true;
      applied_here.push_back(f);
      SCISPARQL_ASSIGN_OR_RETURN(bool pass, EvalFilter(*filters[f], st));
      if (!pass) {
        for (size_t g : applied_here) (*filter_done)[g] = false;
        return true;
      }
    }
    auto undo_filters = [&]() {
      for (size_t g : applied_here) (*filter_done)[g] = false;
    };

    if (i >= patterns.size()) {
      // Remaining filters reference unbound vars: evaluate (will reject
      // solutions via error->false) to respect SPARQL semantics.
      for (size_t f = 0; f < filters.size(); ++f) {
        if ((*filter_done)[f]) continue;
        SCISPARQL_ASSIGN_OR_RETURN(bool pass, EvalFilter(*filters[f], st));
        if (!pass) {
          undo_filters();
          return true;
        }
      }
      Result<bool> r = k();
      undo_filters();
      return r;
    }

    const TriplePattern& tp = *patterns[i];
    Result<bool> result = true;

    if (tp.path != nullptr) {
      result = EvalPathPattern(tp, patterns, filters, filter_done, i, st, k);
      undo_filters();
      return result;
    }

    auto resolve = [&](const VarOrTerm& vt) -> Term {
      if (!vt.is_var) return vt.term;
      auto it = st.binding.find(vt.var);
      return it == st.binding.end() ? Term() : it->second;
    };
    Term s = resolve(tp.s);
    Term p = resolve(tp.p);
    Term o = resolve(tp.o);

    Status inner_status = Status::OK();
    bool keep_going = true;
    st.graph->Match(s, p, o, [&](const Triple& t) -> bool {
      if (profile_) ++scan_input_[patterns[i]];
      // Bind wildcard positions, checking repeated-variable consistency.
      std::vector<std::string> bound_here;
      auto bind_pos = [&](const VarOrTerm& vt, const Term& value) -> bool {
        if (!vt.is_var) return true;
        auto it = st.binding.find(vt.var);
        if (it != st.binding.end()) return it->second == value;
        st.binding[vt.var] = value;
        bound_here.push_back(vt.var);
        return true;
      };
      bool consistent = bind_pos(tp.s, t.s) && bind_pos(tp.p, t.p) &&
                        bind_pos(tp.o, t.o);
      if (consistent) {
        if (profile_) ++scan_actual_[patterns[i]];
        Result<bool> r =
            EvalBgpRec(patterns, filters, filter_done, i + 1, st, k);
        if (!r.ok()) {
          inner_status = r.status();
          keep_going = false;
        } else if (!*r) {
          keep_going = false;
        }
      }
      for (const std::string& v : bound_here) st.binding.erase(v);
      return keep_going;
    });
    undo_filters();
    SCISPARQL_RETURN_NOT_OK(inner_status);
    return keep_going;
  }

  Result<bool> EvalPathPattern(
      const TriplePattern& tp,
      const std::vector<const TriplePattern*>& patterns,
      const std::vector<const ast::Expr*>& filters,
      std::vector<bool>* filter_done, size_t i, State& st, const Cont& k) {
    auto resolve = [&](const VarOrTerm& vt) -> std::optional<Term> {
      if (!vt.is_var) return vt.term;
      auto it = st.binding.find(vt.var);
      if (it == st.binding.end()) return std::nullopt;
      return it->second;
    };
    std::optional<Term> s = resolve(tp.s);
    std::optional<Term> o = resolve(tp.o);
    bool keep_going = true;
    Status inner_status = Status::OK();
    Status path_status = EvalPath(
        *tp.path, s, o, *st.graph,
        [&](const Term& sv, const Term& ov) -> bool {
          if (profile_) ++scan_input_[patterns[i]];
          std::vector<std::string> bound_here;
          bool consistent = true;
          auto bind_pos = [&](const VarOrTerm& vt, const Term& value) {
            if (!vt.is_var) return;
            auto it = st.binding.find(vt.var);
            if (it != st.binding.end()) {
              if (!(it->second == value)) consistent = false;
            } else {
              st.binding[vt.var] = value;
              bound_here.push_back(vt.var);
            }
          };
          bind_pos(tp.s, sv);
          if (consistent) bind_pos(tp.o, ov);
          if (consistent) {
            if (profile_) ++scan_actual_[patterns[i]];
            Result<bool> r =
                EvalBgpRec(patterns, filters, filter_done, i + 1, st, k);
            if (!r.ok()) {
              inner_status = r.status();
              keep_going = false;
            } else if (!*r) {
              keep_going = false;
            }
          }
          for (const std::string& v : bound_here) st.binding.erase(v);
          return keep_going;
        });
    SCISPARQL_RETURN_NOT_OK(path_status);
    SCISPARQL_RETURN_NOT_OK(inner_status);
    return keep_going;
  }

  // --- Property path evaluation (Section 3.4). ---

  using PairCb = std::function<bool(const Term&, const Term&)>;

  Status EvalPath(const ast::Path& path, const std::optional<Term>& start,
                  const std::optional<Term>& end, const Graph& g,
                  const PairCb& cb) {
    using K = ast::Path::Kind;
    switch (path.kind) {
      case K::kLink: {
        Term p = Term::Iri(path.iri);
        Term s = start.value_or(Term());
        Term o = end.value_or(Term());
        g.Match(s, p, o,
                [&](const Triple& t) -> bool { return cb(t.s, t.o); });
        return Status::OK();
      }
      case K::kInverse:
        return EvalPath(*path.a, end, start, g,
                        [&cb](const Term& s, const Term& o) {
                          return cb(o, s);
                        });
      case K::kSequence: {
        Status status = Status::OK();
        bool more = true;
        if (start.has_value() || !end.has_value()) {
          // Forward: a from start, then b to end.
          SCISPARQL_RETURN_NOT_OK(EvalPath(
              *path.a, start, std::nullopt, g,
              [&](const Term& s, const Term& mid) -> bool {
                Status st2 = EvalPath(*path.b, mid, end, g,
                                      [&](const Term&, const Term& o) {
                                        more = cb(s, o);
                                        return more;
                                      });
                if (!st2.ok()) {
                  status = st2;
                  return false;
                }
                return more;
              }));
          return status;
        }
        // Backward: b to end, then a to the midpoint.
        SCISPARQL_RETURN_NOT_OK(EvalPath(
            *path.b, std::nullopt, end, g,
            [&](const Term& mid, const Term& o) -> bool {
              Status st2 = EvalPath(*path.a, std::nullopt, mid, g,
                                    [&](const Term& s, const Term&) {
                                      more = cb(s, o);
                                      return more;
                                    });
              if (!st2.ok()) {
                status = st2;
                return false;
              }
              return more;
            }));
        return status;
      }
      case K::kAlternative: {
        bool more = true;
        SCISPARQL_RETURN_NOT_OK(
            EvalPath(*path.a, start, end, g, [&](const Term& s, const Term& o) {
              more = cb(s, o);
              return more;
            }));
        if (!more) return Status::OK();
        return EvalPath(*path.b, start, end, g, cb);
      }
      case K::kZeroOrOne: {
        // Zero step: start == end (or, unbound, every node with itself).
        std::set<std::vector<Term>, RowLess> emitted;
        bool more = true;
        auto emit_once = [&](const Term& s, const Term& o) -> bool {
          if (!emitted.insert({s, o}).second) return true;
          more = cb(s, o);
          return more;
        };
        if (start.has_value() && end.has_value()) {
          if (*start == *end && !emit_once(*start, *end)) return Status::OK();
        } else if (start.has_value()) {
          if (!emit_once(*start, *start)) return Status::OK();
        } else if (end.has_value()) {
          if (!emit_once(*end, *end)) return Status::OK();
        } else {
          for (const Term& n : NodeUniverse(g)) {
            if (!emit_once(n, n)) return Status::OK();
          }
        }
        if (!more) return Status::OK();
        return EvalPath(*path.a, start, end, g, emit_once);
      }
      case K::kZeroOrMore:
      case K::kOneOrMore: {
        bool include_zero = path.kind == K::kZeroOrMore;
        if (start.has_value()) {
          return ClosureFrom(*path.a, *start, end, g, include_zero, false, cb);
        }
        if (end.has_value()) {
          // Traverse the inverse path from the bound end.
          return ClosureFrom(*path.a, *end, std::nullopt, g, include_zero,
                             true, [&cb](const Term& o, const Term& s) {
                               return cb(s, o);
                             });
        }
        for (const Term& n : NodeUniverse(g)) {
          bool more = true;
          SCISPARQL_RETURN_NOT_OK(ClosureFrom(
              *path.a, n, std::nullopt, g, include_zero, false,
              [&](const Term& s, const Term& o) {
                more = cb(s, o);
                return more;
              }));
          if (!more) return Status::OK();
        }
        return Status::OK();
      }
      case K::kNegatedSet: {
        Term s = start.value_or(Term());
        Term o = end.value_or(Term());
        bool more = true;
        g.Match(s, Term(), o, [&](const Triple& t) -> bool {
          if (!t.p.IsIri()) return true;
          for (const std::string& iri : path.negated) {
            if (t.p.iri() == iri) return true;
          }
          more = cb(t.s, t.o);
          return more;
        });
        if (!more || path.negated_inverse.empty()) return Status::OK();
        // Inverse part: edges o <- s whose predicate is not in the set.
        g.Match(o, Term(), s, [&](const Triple& t) -> bool {
          if (!t.p.IsIri()) return true;
          for (const std::string& iri : path.negated_inverse) {
            if (t.p.iri() == iri) return true;
          }
          return cb(t.o, t.s);
        });
        return Status::OK();
      }
    }
    return Status::Internal("unknown path kind");
  }

  /// Breadth-first transitive closure of `step` starting at `origin`.
  Status ClosureFrom(const ast::Path& step, const Term& origin,
                     const std::optional<Term>& end, const Graph& g,
                     bool include_zero, bool inverse, const PairCb& cb) {
    // `visited` guards the frontier (each node is expanded once);
    // `emitted` guards result pairs. They differ for the origin: when the
    // origin is reachable through a cycle, one-or-more must report it even
    // though it was never *enqueued* again.
    std::unordered_set<Term, TermHash> visited;
    std::unordered_set<Term, TermHash> emitted;
    std::vector<Term> frontier = {origin};
    visited.insert(origin);
    int64_t budget = options_.max_path_visits;
    Status interrupted = Status::OK();
    bool more = true;
    auto emit = [&](const Term& node) -> bool {
      if (!emitted.insert(node).second) return true;
      if (end.has_value() && !(*end == node)) return true;
      more = cb(origin, node);
      return more;
    };
    if (include_zero && !emit(origin)) return Status::OK();
    while (!frontier.empty() && more) {
      std::vector<Term> next;
      for (const Term& node : frontier) {
        if (!more) break;
        std::optional<Term> from = inverse ? std::nullopt
                                           : std::optional<Term>(node);
        std::optional<Term> to =
            inverse ? std::optional<Term>(node) : std::nullopt;
        SCISPARQL_RETURN_NOT_OK(
            EvalPath(step, from, to, g, [&](const Term& s, const Term& o) {
              const Term& reached = inverse ? s : o;
              if (--budget <= 0) {
                more = false;
                return false;
              }
              // A pathological closure can expand for a long time without
              // ever re-entering the BGP loop, so the deadline/cancel
              // valve sits right next to the visit budget.
              Status alive = CheckInterrupt();
              if (!alive.ok()) {
                interrupted = alive;
                more = false;
                return false;
              }
              if (visited.insert(reached).second) next.push_back(reached);
              return emit(reached);
            }));
      }
      frontier = std::move(next);
    }
    return interrupted;
  }

  const std::vector<Term>& NodeUniverse(const Graph& g) {
    if (universe_graph_ != &g) {
      universe_.clear();
      std::unordered_set<Term, TermHash> seen;
      g.ForEach([&](const Triple& t) {
        if (seen.insert(t.s).second) universe_.push_back(t.s);
        if (seen.insert(t.o).second) universe_.push_back(t.o);
      });
      universe_graph_ = &g;
    }
    return universe_;
  }

  // --- Expression context. ---

  EvalContext MakeCtx(State& st) {
    EvalContext ctx;
    ctx.registry = registry_;
    ctx.query = options_.query;
    ctx.eval_stats = profile_ ? &eval_counters_ : nullptr;
    ctx.lookup = [&st](const std::string& name) -> Term {
      auto it = st.binding.find(name);
      return it == st.binding.end() ? Term() : it->second;
    };
    ctx.eval_exists = [this, &st](const GraphPattern& gp) -> Result<bool> {
      bool found = false;
      State sub{st.graph, st.binding};
      SCISPARQL_ASSIGN_OR_RETURN(bool ok,
                                 EvalGroup(gp, sub, [&found]() -> Result<bool> {
                                   found = true;
                                   return false;  // stop at first
                                 }));
      (void)ok;
      return found;
    };
    ctx.call_defined = [this](const ast::FunctionDef& def,
                              const std::vector<Term>& args) {
      return CallDefined(def, args);
    };
    return ctx;
  }

  // --- Query forms. ---

  Result<std::vector<Binding>> CollectSolutions(const SelectQuery& q,
                                                Binding initial) {
    const Graph* graph = &dataset_->default_graph();
    // FROM <g>: query the merge of the named graphs instead of the default.
    Graph merged;
    if (!q.from.empty()) {
      for (const std::string& iri : q.from) {
        const Graph* g = dataset_->FindNamed(iri);
        if (g != nullptr) {
          g->ForEach([&merged](const Triple& t) { merged.Add(t); });
        }
      }
      graph = &merged;
    }
    State st{graph, std::move(initial)};
    std::vector<Binding> out;
    SCISPARQL_ASSIGN_OR_RETURN(bool ok,
                               EvalGroup(q.where, st, [&]() -> Result<bool> {
                                 out.push_back(st.binding);
                                 return true;
                               }));
    (void)ok;
    return out;
  }

  /// Projections with expansion of SELECT *.
  std::vector<SelectQuery::Projection> EffectiveProjections(
      const SelectQuery& q) {
    if (!q.select_all) return q.projections;
    std::vector<std::string> vars;
    std::set<std::string> seen;
    CollectPatternVars(q.where, &vars, &seen);
    std::vector<SelectQuery::Projection> out;
    for (const std::string& v : vars) {
      out.push_back({ast::Expr::MakeVar(v), v});
    }
    return out;
  }

  bool HasAggregates(const SelectQuery& q,
                     const std::vector<SelectQuery::Projection>& projs) {
    if (!q.group_by.empty()) return true;
    std::vector<const ast::Expr*> aggs;
    for (const auto& p : projs) CollectAggNodes(*p.expr, &aggs);
    for (const auto& h : q.having) CollectAggNodes(*h, &aggs);
    return !aggs.empty();
  }

  Result<Term> EvalAggregate(const ast::Expr& agg,
                             const std::vector<Binding>& rows,
                             const Graph* graph) {
    std::vector<Term> values;
    std::set<std::vector<Term>, RowLess> distinct;
    for (const Binding& row : rows) {
      SCISPARQL_RETURN_NOT_OK(CheckInterrupt());
      if (agg.agg_arg == nullptr) {
        // COUNT(*).
        values.push_back(Term::Integer(1));
        continue;
      }
      State st{graph, row};
      EvalContext ctx = MakeCtx(st);
      Result<Term> v = EvalExpr(*agg.agg_arg, ctx);
      if (!v.ok() || v->IsUndef()) continue;  // errors are skipped
      if (agg.agg_distinct && !distinct.insert({*v}).second) continue;
      values.push_back(std::move(*v));
    }
    switch (agg.agg) {
      case ast::AggFunc::kCount:
        return Term::Integer(static_cast<int64_t>(values.size()));
      case ast::AggFunc::kSum:
      case ast::AggFunc::kAvg: {
        double sum = 0;
        bool all_int = true;
        for (const Term& v : values) {
          SCISPARQL_ASSIGN_OR_RETURN(double d, v.AsDouble());
          if (v.kind() != Term::Kind::kInteger) all_int = false;
          sum += d;
        }
        if (agg.agg == ast::AggFunc::kSum) {
          if (all_int) return Term::Integer(static_cast<int64_t>(sum));
          return Term::Double(sum);
        }
        if (values.empty()) return Status::TypeError("AVG of empty group");
        return Term::Double(sum / static_cast<double>(values.size()));
      }
      case ast::AggFunc::kMin:
      case ast::AggFunc::kMax: {
        if (values.empty()) {
          return Status::TypeError("MIN/MAX of empty group");
        }
        Term best = values[0];
        for (size_t i = 1; i < values.size(); ++i) {
          int c = Term::Compare(values[i], best);
          if ((agg.agg == ast::AggFunc::kMin && c < 0) ||
              (agg.agg == ast::AggFunc::kMax && c > 0)) {
            best = values[i];
          }
        }
        return best;
      }
      case ast::AggFunc::kGroupConcat: {
        std::string out;
        for (size_t i = 0; i < values.size(); ++i) {
          if (i > 0) out += agg.agg_sep;
          if (values[i].kind() == Term::Kind::kString) {
            out += values[i].lexical();
          } else {
            out += values[i].ToString();
          }
        }
        return Term::String(std::move(out));
      }
      case ast::AggFunc::kSample:
        if (values.empty()) return Status::TypeError("SAMPLE of empty group");
        return values[0];
    }
    return Status::Internal("unknown aggregate");
  }

  Result<QueryResult> Select(const SelectQuery& q, Binding initial) {
    SCISPARQL_ASSIGN_OR_RETURN(std::vector<Binding> solutions,
                               CollectSolutions(q, std::move(initial)));
    std::vector<SelectQuery::Projection> projs = EffectiveProjections(q);
    const Graph* graph = &dataset_->default_graph();

    QueryResult result;
    for (const auto& p : projs) result.columns.push_back(p.name);

    struct OutRow {
      std::vector<Term> cells;
      std::vector<OrderKeyVal> order_keys;
    };
    std::vector<OutRow> rows;

    if (HasAggregates(q, projs)) {
      // Group solutions.
      std::map<std::vector<Term>, std::vector<Binding>, RowLess> groups;
      for (const Binding& sol : solutions) {
        std::vector<Term> key;
        State st{graph, sol};
        EvalContext ctx = MakeCtx(st);
        for (const auto& ge : q.group_by) {
          Result<Term> v = EvalExpr(*ge, ctx);
          key.push_back(v.ok() ? *v : Term());
        }
        groups[key].push_back(sol);
      }
      if (groups.empty() && q.group_by.empty()) {
        groups[{}] = {};  // single empty group: COUNT(*) = 0 etc.
      }
      // Aggregate nodes used anywhere in the output.
      std::vector<const ast::Expr*> agg_nodes;
      for (const auto& p : projs) CollectAggNodes(*p.expr, &agg_nodes);
      for (const auto& h : q.having) CollectAggNodes(*h, &agg_nodes);
      for (const auto& o : q.order_by) CollectAggNodes(*o.expr, &agg_nodes);

      for (const auto& [key, members] : groups) {
        std::map<const ast::Expr*, Term> agg_values;
        bool agg_error = false;
        for (const ast::Expr* node : agg_nodes) {
          Result<Term> v = EvalAggregate(*node, members, graph);
          if (v.ok()) {
            agg_values[node] = *v;
          } else {
            agg_error = true;  // leaves the aggregate undefined
          }
        }
        (void)agg_error;
        // Representative binding: first member, or group-key bindings.
        Binding rep = members.empty() ? Binding() : members.front();
        State st{graph, rep};
        EvalContext ctx = MakeCtx(st);
        ctx.agg_values = &agg_values;
        // HAVING.
        bool keep = true;
        for (const auto& h : q.having) {
          Result<Term> v = EvalExpr(*h, ctx);
          if (!v.ok()) {
            keep = false;
            break;
          }
          Result<bool> b = EffectiveBooleanValue(*v);
          if (!b.ok() || !*b) {
            keep = false;
            break;
          }
        }
        if (!keep) continue;
        OutRow row;
        for (const auto& p : projs) {
          // A failing projection yields an unbound cell, same as an
          // OPTIONAL that did not match.
          Result<Term> v = EvalExpr(*p.expr, ctx);
          row.cells.push_back(v.ok() ? *v : Term());
        }
        for (const auto& o : q.order_by) {
          row.order_keys.push_back(EvalOrderKey(*o.expr, st, ctx));
        }
        rows.push_back(std::move(row));
      }
    } else {
      for (const Binding& sol : solutions) {
        SCISPARQL_RETURN_NOT_OK(CheckInterrupt());
        State st{graph, sol};
        EvalContext ctx = MakeCtx(st);
        OutRow row;
        for (const auto& p : projs) {
          Result<Term> v = EvalExpr(*p.expr, ctx);
          row.cells.push_back(v.ok() ? *v : Term());
        }
        for (const auto& o : q.order_by) {
          row.order_keys.push_back(EvalOrderKey(*o.expr, st, ctx));
        }
        rows.push_back(std::move(row));
      }
    }

    // ORDER BY.
    if (!q.order_by.empty()) {
      std::stable_sort(
          rows.begin(), rows.end(), [&q](const OutRow& a, const OutRow& b) {
            for (size_t i = 0; i < q.order_by.size(); ++i) {
              const OrderKeyVal& ka = a.order_keys[i];
              const OrderKeyVal& kb = b.order_keys[i];
              // Error'd keys form their own band after every non-error
              // key (ahead of them under DESC, like any comparison);
              // within the band the stable sort preserves input order.
              int c = ka.error != kb.error
                          ? (ka.error ? 1 : -1)
                          : CompareOrderKeys(ka.term, kb.term);
              if (c != 0) {
                return q.order_by[i].ascending ? c < 0 : c > 0;
              }
            }
            return false;
          });
    }

    // DISTINCT / REDUCED.
    if (q.distinct || q.reduced) {
      std::set<std::vector<Term>, RowLess> seen;
      std::vector<OutRow> unique;
      for (OutRow& row : rows) {
        if (seen.insert(row.cells).second) unique.push_back(std::move(row));
      }
      rows = std::move(unique);
    }

    // OFFSET / LIMIT.
    size_t begin = std::min(static_cast<size_t>(std::max<int64_t>(q.offset, 0)),
                            rows.size());
    size_t end = rows.size();
    if (q.limit >= 0) {
      end = std::min(end, begin + static_cast<size_t>(q.limit));
    }
    for (size_t i = begin; i < end; ++i) {
      result.rows.push_back(std::move(rows[i].cells));
    }
    return result;
  }

  Result<bool> Ask(const SelectQuery& q) {
    const Graph* graph = &dataset_->default_graph();
    State st{graph, Binding()};
    bool found = false;
    SCISPARQL_ASSIGN_OR_RETURN(bool ok,
                               EvalGroup(q.where, st, [&found]() -> Result<bool> {
                                 found = true;
                                 return false;
                               }));
    (void)ok;
    return found;
  }

  Result<Graph> Construct(const SelectQuery& q) {
    SCISPARQL_ASSIGN_OR_RETURN(std::vector<Binding> solutions,
                               CollectSolutions(q, Binding()));
    Graph out;
    int blank_round = 0;
    for (const Binding& sol : solutions) {
      ++blank_round;
      std::map<std::string, Term> blank_map;
      bool ok = true;
      std::vector<Triple> staged;
      for (const TriplePattern& tp : q.construct_template) {
        auto instantiate = [&](const VarOrTerm& vt) -> Term {
          if (vt.is_var) {
            if (IsInternalVar(vt.var)) {
              // Collection / blank-list scaffolding in the template:
              // fresh blank per solution.
              auto [it, inserted] = blank_map.emplace(
                  vt.var, Term::Blank(vt.var + "_" +
                                      std::to_string(blank_round)));
              (void)inserted;
              return it->second;
            }
            auto it = sol.find(vt.var);
            return it == sol.end() ? Term() : it->second;
          }
          if (vt.term.IsBlank()) {
            auto [it, inserted] = blank_map.emplace(
                vt.term.blank_label(),
                Term::Blank(vt.term.blank_label() + "_" +
                            std::to_string(blank_round)));
            (void)inserted;
            return it->second;
          }
          return vt.term;
        };
        Triple t{instantiate(tp.s), instantiate(tp.p), instantiate(tp.o)};
        if (t.s.IsUndef() || t.p.IsUndef() || t.o.IsUndef() ||
            t.s.IsLiteral() || !(t.p.IsIri())) {
          ok = false;
          break;
        }
        staged.push_back(std::move(t));
      }
      if (!ok) continue;
      for (Triple& t : staged) out.Add(std::move(t));
    }
    return out;
  }

  Result<Graph> Describe(const SelectQuery& q) {
    // Collect the resources to describe.
    std::vector<Term> targets;
    auto add_target = [&targets](Term t) {
      for (const Term& existing : targets) {
        if (existing == t) return;
      }
      targets.push_back(std::move(t));
    };
    if (q.has_where) {
      SCISPARQL_ASSIGN_OR_RETURN(std::vector<Binding> solutions,
                                 CollectSolutions(q, Binding()));
      for (const Binding& sol : solutions) {
        for (const VarOrTerm& target : q.describe_targets) {
          if (target.is_var) {
            auto it = sol.find(target.var);
            if (it != sol.end()) add_target(it->second);
          } else {
            add_target(target.term);
          }
        }
      }
    } else {
      for (const VarOrTerm& target : q.describe_targets) {
        if (!target.is_var) add_target(target.term);
      }
    }
    // Concise bounded description: all triples with the target as subject,
    // expanding blank-node objects transitively.
    const Graph& g = dataset_->default_graph();
    Graph out;
    std::unordered_set<Term, TermHash> visited;
    std::vector<Term> frontier = targets;
    while (!frontier.empty()) {
      Term node = frontier.back();
      frontier.pop_back();
      if (!visited.insert(node).second) continue;
      for (const Triple& t : g.MatchAll(node, Term(), Term())) {
        out.Add(t);
        if (t.o.IsBlank()) frontier.push_back(t.o);
      }
    }
    return out;
  }

  /// Forwards a graph's mutation callbacks to both the previously
  /// installed listener (the statistics collector) and a MutationSink,
  /// for the duration of one Update(). Capturing at the Graph level —
  /// rather than at the update-operation level — means indirect mutations
  /// (collection consolidation, LOAD) are recorded too.
  class CaptureListener : public GraphListener {
   public:
    CaptureListener(Graph* graph, std::string graph_iri, MutationSink* sink)
        : graph_(graph),
          graph_iri_(std::move(graph_iri)),
          sink_(sink),
          prev_(graph->listener()) {
      graph_->SetListener(this);
    }
    ~CaptureListener() override {
      if (graph_ != nullptr) graph_->SetListener(prev_);
    }
    void OnAdd(const Triple& t) override {
      if (prev_ != nullptr) prev_->OnAdd(t);
      sink_->OnAdd(graph_iri_, t);
    }
    void OnRemove(const Triple& t) override {
      if (prev_ != nullptr) prev_->OnRemove(t);
      sink_->OnRemove(graph_iri_, t);
    }
    void OnClear() override {
      if (prev_ != nullptr) prev_->OnClear();
      sink_->OnClear(graph_iri_);
    }
    void OnGraphDestroyed() override {
      if (prev_ != nullptr) prev_->OnGraphDestroyed();
      graph_ = nullptr;  // nothing to restore; the graph is gone
    }

   private:
    Graph* graph_;
    std::string graph_iri_;
    MutationSink* sink_;
    GraphListener* prev_;
  };

  /// Forwards Graph::Apply's per-copy callbacks to a MutationSink with the
  /// graph IRI attached — the batch path's WAL capture. Unlike
  /// CaptureListener it swaps no graph state, so several writers can apply
  /// batches to the same graph concurrently, each with its own observer.
  class SinkObserver : public GraphListener {
   public:
    SinkObserver(std::string graph_iri, MutationSink* sink)
        : graph_iri_(std::move(graph_iri)), sink_(sink) {}
    void OnAdd(const Triple& t) override { sink_->OnAdd(graph_iri_, t); }
    void OnRemove(const Triple& t) override {
      sink_->OnRemove(graph_iri_, t);
    }
    void OnClear() override {}
    void OnGraphDestroyed() override {}

   private:
    std::string graph_iri_;
    MutationSink* sink_;
  };

  /// Returns the number of triples touched: net size change for data
  /// blocks and LOAD, staged delete+insert volume for pattern updates,
  /// triples dropped for CLEAR.
  ///
  /// The data and pattern forms (INSERT DATA, DELETE DATA, DELETE WHERE,
  /// DELETE/INSERT) stage their mutations into one WriteBatch and commit
  /// it with a single Graph::Apply — atomic to concurrent readers and safe
  /// under the scheduler's shared lock. LOAD and CLEAR mutate graph and
  /// dataset structure directly; the scheduler classifies them exclusive.
  Result<int64_t> Update(const ast::UpdateOp& op) {
    using K = ast::UpdateOp::Kind;
    Graph* target = op.graph.empty() ? &dataset_->default_graph()
                                     : &dataset_->GetOrCreateNamed(op.graph);
    std::optional<SinkObserver> observe;
    if (options_.mutations != nullptr && op.kind != K::kClear &&
        op.kind != K::kLoad) {
      observe.emplace(op.graph, options_.mutations);
    }
    GraphListener* observer = observe ? &*observe : nullptr;
    switch (op.kind) {
      case K::kInsertData: {
        // Instantiate into a staging graph — blank labels still drawn from
        // the target so they stay unique there — consolidate numeric
        // collections exactly as Turtle loading does, then commit the
        // staged content as one batch.
        Graph staging;
        Binding empty;
        SCISPARQL_RETURN_NOT_OK(InstantiateInto(op.insert_template, empty,
                                                &staging, true, target));
        SCISPARQL_ASSIGN_OR_RETURN(int n,
                                   loaders::ConsolidateCollections(&staging));
        (void)n;
        WriteBatch batch;
        batch.reserve(staging.size());
        staging.ForEach([&batch](const Triple& t) { batch.Add(t); });
        Graph::ApplyResult r = target->Apply(std::move(batch), observer);
        return r.added - r.removed;
      }
      case K::kDeleteData: {
        WriteBatch batch;
        batch.reserve(op.delete_template.size());
        for (const TriplePattern& tp : op.delete_template) {
          if (tp.s.is_var || tp.p.is_var || tp.o.is_var) {
            return Status::InvalidArgument("DELETE DATA must be ground");
          }
          batch.RemoveAll(Triple{tp.s.term, tp.p.term, tp.o.term});
        }
        return target->Apply(std::move(batch), observer).removed;
      }
      case K::kDeleteWhere:
      case K::kModify: {
        SelectQuery probe;
        probe.where = op.where;
        probe.select_all = true;
        SCISPARQL_ASSIGN_OR_RETURN(std::vector<Binding> solutions,
                                   CollectSolutions(probe, Binding()));
        // Stage deletions and insertions, then apply as one batch (so an
        // update never observes its own effects, per SPARQL Update
        // semantics, and readers see either none or all of it).
        std::vector<Triple> to_delete;
        std::vector<Triple> to_insert;
        for (const Binding& sol : solutions) {
          SCISPARQL_RETURN_NOT_OK(
              StageTemplate(op.delete_template, sol, &to_delete));
          SCISPARQL_RETURN_NOT_OK(
              StageTemplate(op.insert_template, sol, &to_insert));
        }
        WriteBatch batch;
        batch.reserve(to_delete.size() + to_insert.size());
        for (Triple& t : to_delete) batch.RemoveAll(std::move(t));
        for (Triple& t : to_insert) batch.Add(std::move(t));
        int64_t staged =
            static_cast<int64_t>(to_delete.size() + to_insert.size());
        target->Apply(std::move(batch), observer);
        return staged;
      }
      case K::kLoad: {
        // Exclusive-class: the loader mutates the target through many
        // small applies, so the listener-swap capture that also sees the
        // loader's indirect mutations is still the right hook here.
        std::optional<CaptureListener> capture;
        if (options_.mutations != nullptr) {
          capture.emplace(target, op.graph, options_.mutations);
        }
        int64_t before = static_cast<int64_t>(target->size());
        loaders::TurtleOptions topt;
        SCISPARQL_RETURN_NOT_OK(
            loaders::LoadTurtleFile(op.load_source, target, topt));
        return static_cast<int64_t>(target->size()) - before;
      }
      case K::kClear: {
        // CLEAR logs as one logical record (the per-triple stream would be
        // both huge and redundant).
        if (options_.mutations != nullptr) {
          if (op.clear_all) {
            options_.mutations->OnClearAll();
          } else {
            options_.mutations->OnClear(op.graph);
          }
        }
        if (op.clear_all) {
          int64_t dropped =
              static_cast<int64_t>(dataset_->default_graph().size());
          dataset_->default_graph().Clear();
          std::vector<std::string> names;
          for (const auto& [iri, g] : dataset_->named_graphs()) {
            dropped += static_cast<int64_t>(g.size());
            names.push_back(iri);
          }
          for (const std::string& iri : names) dataset_->DropNamed(iri);
          return dropped;
        }
        int64_t dropped = static_cast<int64_t>(target->size());
        target->Clear();
        return dropped;
      }
    }
    return Status::Internal("unknown update kind");
  }

  Status StageTemplate(const std::vector<TriplePattern>& tmpl,
                       const Binding& sol, std::vector<Triple>* out) {
    for (const TriplePattern& tp : tmpl) {
      auto instantiate = [&](const VarOrTerm& vt) -> Term {
        if (!vt.is_var) return vt.term;
        auto it = sol.find(vt.var);
        return it == sol.end() ? Term() : it->second;
      };
      Triple t{instantiate(tp.s), instantiate(tp.p), instantiate(tp.o)};
      if (t.s.IsUndef() || t.p.IsUndef() || t.o.IsUndef()) continue;
      out->push_back(std::move(t));
    }
    return Status::OK();
  }

  /// Instantiates a template into `target`. Fresh blank labels are drawn
  /// from `blank_namer` when given (the batch update path instantiates
  /// into a staging graph but needs labels unique in the real target);
  /// FreshBlankLabel is atomic, so this is safe under the shared lock.
  Status InstantiateInto(const std::vector<TriplePattern>& tmpl,
                         const Binding& sol, Graph* target, bool fresh_blanks,
                         Graph* blank_namer = nullptr) {
    Graph* namer = blank_namer != nullptr ? blank_namer : target;
    std::map<std::string, Term> blank_map;
    for (const TriplePattern& tp : tmpl) {
      auto instantiate = [&](const VarOrTerm& vt) -> Result<Term> {
        if (vt.is_var) {
          // Parser-generated variables (from collections `(...)` and
          // blank-node lists `[...]` inside the data block) become fresh
          // blank nodes, like explicit blank labels do.
          if (IsInternalVar(vt.var)) {
            auto it = blank_map.find(vt.var);
            if (it == blank_map.end()) {
              it = blank_map
                       .emplace(vt.var,
                                Term::Blank(namer->FreshBlankLabel()))
                       .first;
            }
            return it->second;
          }
          auto it = sol.find(vt.var);
          if (it == sol.end()) {
            return Status::InvalidArgument("unbound variable in data block");
          }
          return it->second;
        }
        if (fresh_blanks && vt.term.IsBlank()) {
          auto it = blank_map.find(vt.term.blank_label());
          if (it == blank_map.end()) {
            it = blank_map
                     .emplace(vt.term.blank_label(),
                              Term::Blank(namer->FreshBlankLabel()))
                     .first;
          }
          return it->second;
        }
        return vt.term;
      };
      SCISPARQL_ASSIGN_OR_RETURN(Term s, instantiate(tp.s));
      SCISPARQL_ASSIGN_OR_RETURN(Term p, instantiate(tp.p));
      SCISPARQL_ASSIGN_OR_RETURN(Term o, instantiate(tp.o));
      target->Add(std::move(s), std::move(p), std::move(o));
    }
    return Status::OK();
  }

  Result<std::vector<Term>> CallDefined(const ast::FunctionDef& def,
                                        const std::vector<Term>& args) {
    if (++call_depth_ > 64) {
      --call_depth_;
      return Status::InvalidArgument("function recursion too deep: " +
                                     def.name);
    }
    Binding initial;
    for (size_t i = 0; i < def.params.size(); ++i) {
      initial[def.params[i]] = args[i];
    }
    Result<QueryResult> result = Select(*def.body, std::move(initial));
    --call_depth_;
    SCISPARQL_RETURN_NOT_OK(result.status());
    std::vector<Term> bag;
    for (const auto& row : result->rows) {
      if (!row.empty() && !row[0].IsUndef()) bag.push_back(row[0]);
    }
    return bag;
  }

  Result<std::string> Explain(const SelectQuery& q) {
    // EXPLAIN is analyze-style: run the query once with per-scan profiling
    // so the plan can report estimated *and* actual cardinalities.
    profile_ = true;
    Result<std::vector<Binding>> sols = CollectSolutions(q, Binding());
    profile_ = options_.trace != nullptr;
    std::ostringstream out;
    out << "plan for " << (q.form == SelectQuery::Form::kSelect ? "SELECT"
                           : q.form == SelectQuery::Form::kAsk ? "ASK"
                                                               : "CONSTRUCT")
        << ":\n";
    if (!sols.ok()) {
      out << "  (execution failed: " << sols.status().message() << ")\n";
    }
    ExplainGroup(q.where, 1, &out);
    if (!q.group_by.empty()) out << "  group-by (" << q.group_by.size() << " keys)\n";
    if (!q.order_by.empty()) out << "  order-by (" << q.order_by.size() << " keys)\n";
    if (q.distinct) out << "  distinct\n";
    if (q.limit >= 0) out << "  limit " << q.limit << "\n";
    if (sols.ok()) out << "  solutions: " << sols->size() << "\n";
    return out.str();
  }

  void ExplainGroup(const GraphPattern& gp, int depth, std::ostringstream* out) {
    std::string pad(static_cast<size_t>(depth) * 2, ' ');
    State st{&dataset_->default_graph(), Binding()};
    size_t i = 0;
    // Same element order the evaluator uses (group-scoped FILTERs moved
    // past the elements that bind their variables).
    const std::vector<const PatternElement*>& elems = GroupView(gp);
    while (i < elems.size()) {
      if (elems[i]->kind == PatternElement::Kind::kTriple) {
        std::vector<const TriplePattern*> bgp;
        std::vector<const ast::Expr*> filters;
        size_t j = i;
        while (j < elems.size() &&
               (elems[j]->kind == PatternElement::Kind::kTriple ||
                (options_.push_filters &&
                 elems[j]->kind == PatternElement::Kind::kFilter))) {
          if (elems[j]->kind == PatternElement::Kind::kTriple) {
            bgp.push_back(&elems[j]->triple);
          } else {
            filters.push_back(elems[j]->expr.get());
          }
          ++j;
        }
        // Prefer the plan recorded during the profiled run (it saw the
        // real graph and bindings); fall back to planning statically for
        // pattern runs that never executed.
        const PlanRecord* rec = nullptr;
        auto it = plan_records_.find(bgp.empty() ? nullptr : bgp[0]);
        if (it != plan_records_.end()) rec = &it->second;
        OrderedBgp planned;
        if (rec == nullptr) planned = OrderBgp(bgp, filters, st);
        const std::vector<const TriplePattern*>& order =
            rec != nullptr ? rec->order : planned.patterns;
        const std::vector<int64_t>& est = rec != nullptr ? rec->est
                                                         : planned.est;
        bool reordered = rec != nullptr ? rec->reordered : planned.reordered;
        *out << pad << "bgp ("
             << (options_.optimize_join_order ? "cost-ordered"
                                              : "parse-ordered")
             << (reordered ? ", reordered" : "") << "):\n";
        for (size_t s = 0; s < order.size(); ++s) {
          const TriplePattern* tp = order[s];
          int64_t actual = 0;
          auto ait = scan_actual_.find(tp);
          if (ait != scan_actual_.end()) actual = ait->second;
          *out << pad << "  scan " << tp->s.ToString() << " "
               << (tp->path ? std::string("<path>") : tp->p.ToString()) << " "
               << tp->o.ToString() << "  (est " << est[s] << ", actual "
               << actual << ")";
          if (rec != nullptr && s < rec->phys.size()) {
            *out << "  [" << rec->phys[s] << "]";
          }
          *out << "\n";
        }
        i = j;
        continue;
      }
      const PatternElement& e = *elems[i];
      switch (e.kind) {
        case PatternElement::Kind::kFilter:
          *out << pad << "filter\n";
          break;
        case PatternElement::Kind::kBind:
          *out << pad << "bind ?" << e.bind_var << "\n";
          break;
        case PatternElement::Kind::kOptional:
          *out << pad << "optional:\n";
          ExplainGroup(*e.child, depth + 1, out);
          break;
        case PatternElement::Kind::kUnion:
          *out << pad << "union (" << e.branches.size() << " branches):\n";
          for (const auto& b : e.branches) ExplainGroup(*b, depth + 1, out);
          break;
        case PatternElement::Kind::kGraph:
          *out << pad << "graph " << e.graph_name.ToString() << ":\n";
          ExplainGroup(*e.child, depth + 1, out);
          break;
        case PatternElement::Kind::kMinus:
          *out << pad << "minus:\n";
          ExplainGroup(*e.child, depth + 1, out);
          break;
        case PatternElement::Kind::kValues:
          *out << pad << "values (" << e.values.rows.size() << " rows)\n";
          break;
        case PatternElement::Kind::kGroup:
          *out << pad << "group:\n";
          ExplainGroup(*e.child, depth + 1, out);
          break;
        default:
          break;
      }
      ++i;
    }
  }

  /// Appends the profiled operator detail under the trace's attach point:
  /// one "bgp" span per executed BGP with a "scan" child per step (pattern
  /// text, estimated cardinality, rows in, rows out), an "optimize" span
  /// with the accumulated join-ordering time, and the expression-eval
  /// counters. Called by the facade after the query finishes.
  void EmitTrace() {
    obs::QueryTrace* trace = options_.trace;
    if (trace == nullptr) return;
    obs::TraceSpan* at = trace->attach_point();
    for (const auto& [first, rec] : plan_records_) {
      obs::TraceSpan* bgp = trace->AddChild(at, "bgp");
      if (rec.reordered) bgp->SetAttr("reordered", "yes");
      for (size_t s = 0; s < rec.order.size(); ++s) {
        const TriplePattern* tp = rec.order[s];
        obs::TraceSpan* scan = trace->AddChild(bgp, "scan");
        scan->SetAttr("pattern",
                      tp->s.ToString() + " " +
                          (tp->path ? std::string("<path>") : tp->p.ToString()) +
                          " " + tp->o.ToString());
        scan->SetAttr("est", rec.est[s]);
        if (s < rec.phys.size()) scan->SetAttr("phys", rec.phys[s]);
        auto in = scan_input_.find(tp);
        scan->SetAttr("in", in == scan_input_.end() ? 0 : in->second);
        auto out = scan_actual_.find(tp);
        scan->SetAttr("out", out == scan_actual_.end() ? 0 : out->second);
      }
    }
    if (optimize_nanos_ > 0) {
      obs::TraceSpan* opt = trace->AddChild(at, "optimize");
      opt->wall_ms = static_cast<double>(optimize_nanos_) / 1e6;
    }
    if (eval_counters_.elem_calls > 0) {
      at->SetAttr("eval_elem_calls", eval_counters_.elem_calls);
    }
  }

 private:
  /// Plan chosen for one textual BGP (keyed by its first triple pattern),
  /// captured during a profiled (EXPLAIN) run.
  struct PlanRecord {
    std::vector<const TriplePattern*> order;
    std::vector<int64_t> est;
    bool reordered = false;
    /// Physical-operator labels per step when the ID-join path ran
    /// ("index-scan(SPO)", "merge-join(POS on ?x)", ...); empty when the
    /// BGP executed via scan-and-bind.
    std::vector<std::string> phys;
  };

  Dataset* dataset_;
  FunctionRegistry* registry_;
  const ExecOptions& options_;
  uint32_t interrupt_tick_ = 0;
  int call_depth_ = 0;
  std::map<const GraphPattern*, std::vector<Binding>> minus_cache_;
  std::map<const SelectQuery*, QueryResult> subselect_cache_;
  std::vector<Term> universe_;
  const Graph* universe_graph_ = nullptr;
  /// Evaluation-order views per group (node-stable map: EvalSteps holds
  /// references into the values across recursion).
  std::map<const GraphPattern*, std::vector<const PatternElement*>>
      group_views_;
  /// EXPLAIN / tracing profiling: per-scan candidate (in) and consistent
  /// (out) binding counts, recorded plans, optimizer time and eval-loop
  /// counters.
  bool profile_ = false;
  std::map<const TriplePattern*, int64_t> scan_actual_;
  std::map<const TriplePattern*, int64_t> scan_input_;
  std::map<const TriplePattern*, PlanRecord> plan_records_;
  int64_t optimize_nanos_ = 0;
  EvalCounters eval_counters_;
};

// ---------------------------------------------------------------------------
// Executor facade.
// ---------------------------------------------------------------------------

Executor::Executor(Dataset* dataset, FunctionRegistry* registry,
                   ExecOptions options)
    : dataset_(dataset), registry_(registry), options_(options) {}

Result<QueryResult> Executor::Select(const ast::SelectQuery& q) {
  ExecImpl impl(dataset_, registry_, options_);
  Result<QueryResult> r = impl.Select(q, {});
  impl.EmitTrace();
  return r;
}

Result<bool> Executor::Ask(const ast::SelectQuery& q) {
  ExecImpl impl(dataset_, registry_, options_);
  Result<bool> r = impl.Ask(q);
  impl.EmitTrace();
  return r;
}

Result<Graph> Executor::Construct(const ast::SelectQuery& q) {
  ExecImpl impl(dataset_, registry_, options_);
  Result<Graph> r = impl.Construct(q);
  impl.EmitTrace();
  return r;
}

Result<Graph> Executor::Describe(const ast::SelectQuery& q) {
  ExecImpl impl(dataset_, registry_, options_);
  Result<Graph> r = impl.Describe(q);
  impl.EmitTrace();
  return r;
}

Result<int64_t> Executor::Update(const ast::UpdateOp& op) {
  ExecImpl impl(dataset_, registry_, options_);
  return impl.Update(op);
}

Result<std::string> Executor::Explain(const ast::SelectQuery& q) {
  ExecImpl impl(dataset_, registry_, options_);
  return impl.Explain(q);
}

Result<std::vector<Term>> Executor::CallDefined(const ast::FunctionDef& def,
                                                const std::vector<Term>& args) {
  ExecImpl impl(dataset_, registry_, options_);
  return impl.CallDefined(def, args);
}

std::string QueryResult::ToTable(size_t max_rows) const {
  std::vector<size_t> widths(columns.size());
  std::vector<std::vector<std::string>> cells;
  for (size_t c = 0; c < columns.size(); ++c) {
    widths[c] = columns[c].size();
  }
  size_t shown = std::min(max_rows, rows.size());
  for (size_t r = 0; r < shown; ++r) {
    std::vector<std::string> row;
    for (size_t c = 0; c < rows[r].size(); ++c) {
      row.push_back(rows[r][c].ToString());
      if (c < widths.size()) widths[c] = std::max(widths[c], row[c].size());
    }
    cells.push_back(std::move(row));
  }
  std::ostringstream out;
  auto line = [&]() {
    for (size_t c = 0; c < columns.size(); ++c) {
      out << "+" << std::string(widths[c] + 2, '-');
    }
    out << "+\n";
  };
  line();
  for (size_t c = 0; c < columns.size(); ++c) {
    out << "| " << columns[c]
        << std::string(widths[c] - columns[c].size() + 1, ' ');
  }
  out << "|\n";
  line();
  for (const auto& row : cells) {
    for (size_t c = 0; c < columns.size(); ++c) {
      std::string cell = c < row.size() ? row[c] : "";
      out << "| " << cell << std::string(widths[c] - cell.size() + 1, ' ');
    }
    out << "|\n";
  }
  line();
  if (rows.size() > shown) {
    out << "(" << rows.size() - shown << " more rows)\n";
  }
  return out.str();
}

}  // namespace sparql
}  // namespace scisparql
