#ifndef SCISPARQL_SPARQL_AST_H_
#define SCISPARQL_SPARQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "rdf/namespaces.h"
#include "rdf/term.h"

namespace scisparql {
namespace ast {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

/// Binary operators, in SPARQL precedence groups (|| < && < comparisons <
/// additive < multiplicative).
enum class BinaryOp : uint8_t {
  kOr,
  kAnd,
  kEq,
  kNe,
  kLt,
  kGt,
  kLe,
  kGe,
  kAdd,
  kSub,
  kMul,
  kDiv,
};

enum class UnaryOp : uint8_t { kNot, kNeg, kPlus };

/// Aggregate function names (Section 3.5).
enum class AggFunc : uint8_t {
  kCount,
  kSum,
  kAvg,
  kMin,
  kMax,
  kGroupConcat,
  kSample,
};

/// One dimension of a SciSPARQL array dereference (Section 4.1.1):
/// `?a[i]`, `?a[lo:hi]`, `?a[lo:hi:stride]`, `?a[:]`. Omitted bounds
/// (null exprs) default to the full extent. Language subscripts are
/// 1-based and inclusive.
struct SubscriptExpr {
  bool is_range = false;
  ExprPtr index;   ///< single-index form
  ExprPtr lo;      ///< range form; null = 1
  ExprPtr hi;      ///< range form; null = dimension size
  ExprPtr stride;  ///< range form; null = 1
};

struct Expr {
  enum class Kind : uint8_t {
    kTerm,       ///< constant RDF term
    kVar,        ///< ?x
    kBinary,
    kUnary,
    kCall,       ///< builtin / foreign / SciSPARQL-defined function call
    kAggregate,
    kExists,     ///< EXISTS { ... } / NOT EXISTS { ... }
    kSubscript,  ///< base[sub, sub, ...] array dereference
    kStar,       ///< `*` placeholder inside a partial application (closure)
  };

  Kind kind = Kind::kTerm;

  // kTerm
  Term term;
  // kVar
  std::string var;
  // kBinary / kUnary
  BinaryOp bop = BinaryOp::kOr;
  UnaryOp uop = UnaryOp::kNot;
  ExprPtr left, right;  // unary uses left only
  // kCall: `fn` is a full IRI or a builtin name (upper-cased); args may
  // contain kStar placeholders forming a lexical closure (Section 4.3).
  std::string fn;
  std::vector<ExprPtr> args;
  // kAggregate
  AggFunc agg = AggFunc::kCount;
  bool agg_distinct = false;
  ExprPtr agg_arg;          // null = COUNT(*)
  std::string agg_sep;      // GROUP_CONCAT separator
  // kExists
  bool exists_negated = false;
  std::shared_ptr<struct GraphPattern> exists_pattern;
  // kSubscript
  ExprPtr base;
  std::vector<SubscriptExpr> subscripts;

  static ExprPtr MakeTerm(Term t) {
    auto e = std::make_shared<Expr>();
    e->kind = Kind::kTerm;
    e->term = std::move(t);
    return e;
  }
  static ExprPtr MakeVar(std::string name) {
    auto e = std::make_shared<Expr>();
    e->kind = Kind::kVar;
    e->var = std::move(name);
    return e;
  }
  static ExprPtr MakeBinary(BinaryOp op, ExprPtr l, ExprPtr r) {
    auto e = std::make_shared<Expr>();
    e->kind = Kind::kBinary;
    e->bop = op;
    e->left = std::move(l);
    e->right = std::move(r);
    return e;
  }
  static ExprPtr MakeUnary(UnaryOp op, ExprPtr operand) {
    auto e = std::make_shared<Expr>();
    e->kind = Kind::kUnary;
    e->uop = op;
    e->left = std::move(operand);
    return e;
  }
  static ExprPtr MakeCall(std::string fn, std::vector<ExprPtr> args) {
    auto e = std::make_shared<Expr>();
    e->kind = Kind::kCall;
    e->fn = std::move(fn);
    e->args = std::move(args);
    return e;
  }
};

// ---------------------------------------------------------------------------
// Property paths (Section 3.4)
// ---------------------------------------------------------------------------

struct Path;
using PathPtr = std::shared_ptr<Path>;

struct Path {
  enum class Kind : uint8_t {
    kLink,        ///< plain IRI edge
    kInverse,     ///< ^p
    kSequence,    ///< p1 / p2
    kAlternative, ///< p1 | p2
    kZeroOrMore,  ///< p*
    kOneOrMore,   ///< p+
    kZeroOrOne,   ///< p?
    kNegatedSet,  ///< !(p1 | ^p2 | ...)
  };

  Kind kind = Kind::kLink;
  std::string iri;                   // kLink
  PathPtr a, b;                      // children
  std::vector<std::string> negated;          // forward edges of kNegatedSet
  std::vector<std::string> negated_inverse;  // inverse edges of kNegatedSet

  static PathPtr Link(std::string iri) {
    auto p = std::make_shared<Path>();
    p->kind = Kind::kLink;
    p->iri = std::move(iri);
    return p;
  }
  static PathPtr Unary(Kind k, PathPtr child) {
    auto p = std::make_shared<Path>();
    p->kind = k;
    p->a = std::move(child);
    return p;
  }
  static PathPtr Binary(Kind k, PathPtr a, PathPtr b) {
    auto p = std::make_shared<Path>();
    p->kind = k;
    p->a = std::move(a);
    p->b = std::move(b);
    return p;
  }
};

// ---------------------------------------------------------------------------
// Graph patterns (Sections 3.2-3.3)
// ---------------------------------------------------------------------------

/// A triple pattern position: a constant term or a variable. (Expressions
/// appear only in FILTER/BIND, per the grammar.)
struct VarOrTerm {
  bool is_var = false;
  std::string var;
  Term term;

  static VarOrTerm Var(std::string name) {
    VarOrTerm v;
    v.is_var = true;
    v.var = std::move(name);
    return v;
  }
  static VarOrTerm Const(Term t) {
    VarOrTerm v;
    v.term = std::move(t);
    return v;
  }
  std::string ToString() const { return is_var ? "?" + var : term.ToString(); }
};

/// Triple pattern whose predicate may be a variable, a plain IRI, or a
/// complex property path.
struct TriplePattern {
  VarOrTerm s;
  VarOrTerm p;     ///< used when `path` is null (IRI or variable predicate)
  PathPtr path;    ///< non-null for complex paths
  VarOrTerm o;
};

struct GraphPattern;
using GraphPatternPtr = std::shared_ptr<GraphPattern>;

/// VALUES inline data block.
struct ValuesBlock {
  std::vector<std::string> vars;
  std::vector<std::vector<Term>> rows;  // Undef = the UNDEF keyword
};

struct PatternElement {
  enum class Kind : uint8_t {
    kTriple,
    kOptional,
    kUnion,      ///< two or more alternative groups
    kGraph,      ///< GRAPH g { ... }
    kFilter,
    kBind,
    kValues,
    kMinus,
    kGroup,      ///< nested plain group { ... }
    kSubSelect,  ///< { SELECT ... } nested query
  };

  Kind kind = Kind::kTriple;
  TriplePattern triple;
  GraphPatternPtr child;                   // optional / graph / minus / group
  std::vector<GraphPatternPtr> branches;   // union
  VarOrTerm graph_name;                    // graph
  ExprPtr expr;                            // filter / bind
  std::string bind_var;                    // bind
  ValuesBlock values;                      // values
  std::shared_ptr<struct SelectQuery> subquery;  // sub-select
};

struct GraphPattern {
  std::vector<PatternElement> elements;
};

// ---------------------------------------------------------------------------
// Queries, function definitions and updates (Chapter 4)
// ---------------------------------------------------------------------------

struct SelectQuery {
  enum class Form : uint8_t { kSelect, kAsk, kConstruct, kDescribe };

  Form form = Form::kSelect;
  bool distinct = false;
  bool reduced = false;

  /// Projections: expression + output name. Empty with select_all=true
  /// means SELECT *.
  struct Projection {
    ExprPtr expr;
    std::string name;
  };
  bool select_all = false;
  std::vector<Projection> projections;

  std::vector<TriplePattern> construct_template;

  /// DESCRIBE targets: variables and/or constant IRIs. An empty WHERE is
  /// allowed for constant targets.
  std::vector<VarOrTerm> describe_targets;
  bool has_where = true;

  std::vector<std::string> from;        // FROM <g> (merged into default)
  std::vector<std::string> from_named;  // FROM NAMED <g>

  GraphPattern where;

  std::vector<ExprPtr> group_by;
  std::vector<ExprPtr> having;
  struct OrderKey {
    ExprPtr expr;
    bool ascending = true;
  };
  std::vector<OrderKey> order_by;
  int64_t limit = -1;   // -1 = none
  int64_t offset = 0;
};

/// DEFINE FUNCTION name(?a, ?b) AS <select query> — a parameterized view
/// (Section 4.2). Calls follow DAPLEX semantics: the body yields a bag of
/// values of its first projection.
struct FunctionDef {
  std::string name;  // full IRI or plain identifier
  std::vector<std::string> params;
  std::shared_ptr<SelectQuery> body;
};

/// Update operations (SPARQL 1.1 Update subset + LOAD of Turtle files).
struct UpdateOp {
  enum class Kind : uint8_t {
    kInsertData,
    kDeleteData,
    kDeleteWhere,
    kModify,  ///< DELETE {...} INSERT {...} WHERE {...}
    kLoad,
    kClear,
  };

  Kind kind = Kind::kInsertData;
  std::vector<TriplePattern> insert_template;  // ground for kInsertData
  std::vector<TriplePattern> delete_template;
  GraphPattern where;
  std::string load_source;   // file path or IRI for LOAD
  std::string graph;         // target graph IRI ("" = default)
  bool clear_all = false;    // CLEAR ALL
};

/// PREPARE name(?a, ?b) AS <select query> — a named, parameterized
/// statement registered with the engine's cache layer. EXECUTE binds the
/// parameters to ground terms and runs the shared body, skipping the
/// parse/plan phases on every call.
struct PrepareStmt {
  std::string name;
  std::vector<std::string> params;
  std::shared_ptr<SelectQuery> body;
};

/// EXECUTE name(arg, ...) with ground-term arguments.
struct ExecuteStmt {
  std::string name;
  std::vector<Term> args;
};

/// A parsed SciSPARQL statement.
struct Statement {
  std::variant<std::shared_ptr<SelectQuery>, FunctionDef, UpdateOp,
               PrepareStmt, ExecuteStmt>
      node;
  PrefixMap prefixes;
};

}  // namespace ast
}  // namespace scisparql

#endif  // SCISPARQL_SPARQL_AST_H_
