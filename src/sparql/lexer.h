#ifndef SCISPARQL_SPARQL_LEXER_H_
#define SCISPARQL_SPARQL_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace scisparql {
namespace sparql {

enum class TokenType : uint8_t {
  kEof,
  kIri,         // <http://...> (brackets stripped)
  kPname,       // prefix:local or prefix: or :local (kept verbatim)
  kBlank,       // _:label (label kept)
  kVar,         // ?x / $x (name kept)
  kString,      // quoted string (unescaped)
  kLangTag,     // @en
  kDtypeMarker, // ^^
  kInteger,
  kDecimal,     // 1.5 / .5
  kDouble,      // 1e3
  kKeyword,     // bare identifier (SELECT, a, true, ...)
  kPunct,       // one of: { } ( ) [ ] , ; . | / ^ * + ? ! = < > & :
                //   and two-char: != <= >= && || :=
};

struct Token {
  TokenType type = TokenType::kEof;
  std::string text;  // payload (see TokenType comments)
  int line = 1;
  int col = 1;

  bool IsPunct(const char* p) const {
    return type == TokenType::kPunct && text == p;
  }
  /// Case-insensitive keyword check.
  bool IsKeyword(const char* kw) const;
};

/// Tokenizes a SciSPARQL (or Turtle) document. Both languages share this
/// lexer; the parsers interpret the token stream.
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace sparql
}  // namespace scisparql

#endif  // SCISPARQL_SPARQL_LEXER_H_
