#ifndef SCISPARQL_SPARQL_EXECUTOR_H_
#define SCISPARQL_SPARQL_EXECUTOR_H_

#include <map>
#include <string>
#include <vector>

#include "cache/plan_memo.h"
#include "common/status.h"
#include "obs/trace.h"
#include "rdf/graph.h"
#include "sched/query_context.h"
#include "sparql/ast.h"
#include "sparql/eval.h"
#include "sparql/functions.h"
#include "storage/asei.h"

namespace scisparql {

namespace opt {
class StatsRegistry;
}  // namespace opt

namespace sparql {

/// A SELECT result: column names plus rows of terms (Undef = unbound).
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<std::vector<Term>> rows;

  /// Fixed-width text rendering for examples and debugging.
  std::string ToTable(size_t max_rows = 50) const;
};

/// Execution options — the knobs the E8 ablation benchmark flips.
/// Receiver of the physical mutations an Update() applies — the durability
/// layer's WAL capture hook. Callbacks fire synchronously, in application
/// order, for every logical mutation including indirect ones (collection
/// consolidation after INSERT DATA, triples added by LOAD), so replaying
/// the recorded stream against the pre-update dataset reproduces the
/// post-update dataset exactly without re-evaluating patterns.
class MutationSink {
 public:
  virtual ~MutationSink() = default;
  /// `graph_iri` is "" for the default graph.
  virtual void OnAdd(const std::string& graph_iri, const Triple& t) = 0;
  virtual void OnRemove(const std::string& graph_iri, const Triple& t) = 0;
  virtual void OnClear(const std::string& graph_iri) = 0;
  virtual void OnClearAll() = 0;
};

struct ExecOptions {
  /// Cost-based ordering of BGP triple patterns (Section 5.4's cost-based
  /// optimization): exhaustive DP for small BGPs, greedy beyond. Off =
  /// execute in parse order.
  bool optimize_join_order = true;

  /// Hoist FILTERs to the earliest point where their variables are bound.
  bool push_filters = true;

  /// Evaluate multi-pattern BGPs over the dictionary-ID permutation
  /// indexes — prefix-range index scans combined by merge / hash joins —
  /// whenever the graph's ID space is join-safe (no arrays, no mixed
  /// numeric representations). Off = always scan-and-bind.
  bool use_id_joins = true;

  /// Row cap for ID-join intermediate results. Past it the BGP falls back
  /// to scan-and-bind, which streams bindings instead of materializing
  /// the join.
  size_t id_join_max_rows = 8u << 20;

  /// Graph statistics registry feeding the join-order cost model
  /// (per-predicate counts, distinct-value counts, histograms). Not owned;
  /// may be null, in which case the optimizer falls back to raw
  /// index-bucket estimates with fixed join discounts.
  const opt::StatsRegistry* stats = nullptr;

  /// APR configuration threaded into array proxies created during
  /// execution.
  AprConfig apr;

  /// Safety valve for property-path closure evaluation.
  int64_t max_path_visits = 1000000;

  /// Deadline / cancellation context for this execution (not owned; may be
  /// null). Observed cooperatively in the executor's hot loops, so a
  /// timed-out or cancelled query returns DeadlineExceeded / Cancelled
  /// mid-flight instead of running to completion.
  const sched::QueryContext* query = nullptr;

  /// Trace sink (not owned; may be null). Non-null turns on profiling: the
  /// executor records per-scan input/output cardinalities and optimizer
  /// time, and appends operator spans under trace->attach_point() when the
  /// query finishes. Null keeps the hot loops at one branch.
  obs::QueryTrace* trace = nullptr;

  /// Memo of optimized BGP join orders for this statement (not owned; may
  /// be null). The engine's plan cache hands the same memo to every
  /// execution of a cached statement, so the Selinger enumeration runs
  /// once per (BGP signature, graph version) instead of once per query.
  cache::PlanMemo* plan_memo = nullptr;

  /// Mutation capture for Update() (not owned; may be null). The engine
  /// installs its WAL collector here per update statement; queries never
  /// touch it.
  MutationSink* mutations = nullptr;
};

/// Evaluates SciSPARQL queries and updates against a Dataset. The executor
/// implements the operational semantics of Section 5.4.2: graph-pattern
/// elements evaluate left to right with sideways information passing;
/// within a basic graph pattern the optimizer is free to reorder joins.
class Executor {
 public:
  Executor(Dataset* dataset, FunctionRegistry* registry,
           ExecOptions options = ExecOptions());

  Result<QueryResult> Select(const ast::SelectQuery& q);
  Result<bool> Ask(const ast::SelectQuery& q);
  Result<Graph> Construct(const ast::SelectQuery& q);
  /// DESCRIBE: concise bounded description (subject triples plus
  /// transitive blank-node expansion) of the target resources.
  Result<Graph> Describe(const ast::SelectQuery& q);
  /// Executes an update / LOAD / CLEAR operation; returns the number of
  /// triples touched (inserted + deleted).
  Result<int64_t> Update(const ast::UpdateOp& op);

  /// Text description of the executed plan (BGP order, pushed filters).
  Result<std::string> Explain(const ast::SelectQuery& q);

  /// Runs the body of a SciSPARQL-defined function with arguments bound to
  /// its parameters; returns the bag of first-projection values.
  Result<std::vector<Term>> CallDefined(const ast::FunctionDef& def,
                                        const std::vector<Term>& args);

  const ExecOptions& options() const { return options_; }
  ExecOptions& options() { return options_; }

 private:
  friend class ExecImpl;

  Dataset* dataset_;
  FunctionRegistry* registry_;
  ExecOptions options_;
};

}  // namespace sparql
}  // namespace scisparql

#endif  // SCISPARQL_SPARQL_EXECUTOR_H_
