#include "sparql/functions.h"

#include <set>

#include "common/string_util.h"

namespace scisparql {
namespace sparql {

std::string FunctionRegistry::Normalize(const std::string& name) {
  // IRIs are case-sensitive; bare identifiers are not.
  if (name.find("://") != std::string::npos || name.find(':') != std::string::npos) {
    return name;
  }
  return AsciiToUpper(name);
}

void FunctionRegistry::RegisterForeign(const std::string& name,
                                       ForeignFunction fn) {
  foreign_[Normalize(name)] = std::move(fn);
  ++generation_;
}

const ForeignFunction* FunctionRegistry::FindForeign(
    const std::string& name) const {
  auto it = foreign_.find(Normalize(name));
  return it == foreign_.end() ? nullptr : &it->second;
}

Status FunctionRegistry::Define(ast::FunctionDef def) {
  if (def.body == nullptr) {
    return Status::InvalidArgument("function body missing");
  }
  defined_[Normalize(def.name)] = std::move(def);
  ++generation_;
  return Status::OK();
}

const ast::FunctionDef* FunctionRegistry::FindDefined(
    const std::string& name) const {
  auto it = defined_.find(Normalize(name));
  return it == defined_.end() ? nullptr : &it->second;
}

std::vector<std::string> FunctionRegistry::ForeignNames() const {
  std::vector<std::string> out;
  for (const auto& [name, fn] : foreign_) out.push_back(name);
  return out;
}

std::vector<std::string> FunctionRegistry::DefinedNames() const {
  std::vector<std::string> out;
  for (const auto& [name, fn] : defined_) out.push_back(name);
  return out;
}

bool IsBuiltinFunction(const std::string& upper_name) {
  static const std::set<std::string> kBuiltins = {
      // SPARQL 1.1 core.
      "BOUND", "IF", "COALESCE", "STR", "LANG", "LANGMATCHES", "DATATYPE",
      "IRI", "URI", "STRLEN", "SUBSTR", "UCASE", "LCASE", "CONTAINS",
      "STRSTARTS", "STRENDS", "STRBEFORE", "STRAFTER", "CONCAT", "REPLACE",
      "REGEX", "ABS", "CEIL", "FLOOR", "ROUND", "SAMETERM", "ISIRI",
      "ISURI", "ISBLANK", "ISLITERAL", "ISNUMERIC", "STRDT", "STRLANG",
      // SciSPARQL numeric extensions.
      "SQRT", "EXP", "LN", "LOG10", "POW", "MOD",
      // SciSPARQL array built-ins (Section 4.1.3).
      "ISARRAY", "ADIMS", "ARANK", "AELEMS", "ASUM", "AAVG", "AMIN",
      "AMAX", "TRANSPOSE", "RESHAPE", "ARRAY", "IOTA",
      // Second-order array algebra (Section 4.3.1).
      "MAP", "CONDENSE",
  };
  return kBuiltins.count(upper_name) > 0;
}

}  // namespace sparql
}  // namespace scisparql
